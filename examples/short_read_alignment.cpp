// Short-read batch alignment: Illumina-class reads aligned with the
// unified AlignmentEngine and cross-checked against other registered
// backends — demonstrating the paper's claim that the implementations
// handle "both short and long reads", plus multi-threaded batching.
//
//   ./build/examples/short_read_alignment [reads] [threads]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "genasmx/common/verify.hpp"
#include "genasmx/engine/engine.hpp"
#include "genasmx/mapper/mapper.hpp"
#include "genasmx/readsim/genome.hpp"
#include "genasmx/readsim/read_simulator.hpp"
#include "genasmx/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace gx;
  const std::size_t n_reads =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500;
  const std::size_t n_threads =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0;

  readsim::GenomeConfig gcfg;
  gcfg.length = 400'000;
  const auto genome = readsim::generateGenome(gcfg);
  const auto reads = readsim::simulateReads(
      genome, readsim::ReadSimConfig::illumina(n_reads, 150));
  mapper::Mapper mapper{std::string(genome)};

  // Build (target, query) pairs from the best candidate of each read.
  std::vector<mapper::AlignmentPair> pairs;
  for (const auto& r : reads) {
    auto rp = mapper::buildAlignmentPairs(mapper, r.seq, 1);
    for (auto& p : rp) pairs.push_back(std::move(p));
  }
  std::printf("aligning %zu short-read pairs (150 bp, ~0.3%% error)\n",
              pairs.size());

  // Improved GenASM across the engine's thread pool. 150 bp reads take
  // the solver's direct global path (no windowing).
  engine::EngineConfig ec;
  ec.backend = "improved";
  ec.threads = n_threads;
  engine::AlignmentEngine eng(ec);
  util::Timer timer;
  const auto results = eng.alignBatch(pairs);
  const double genasm_s = timer.seconds();

  // Cross-check against the Edlib-class backend and verify every CIGAR.
  const auto myers_aligner = engine::makeAligner("myers");
  std::size_t verified = 0, optimal = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (!results[i].ok) continue;
    const auto v = common::verifyAlignment(pairs[i].target, pairs[i].query,
                                           results[i].cigar);
    verified += v.valid;
    optimal += results[i].edit_distance ==
               myers_aligner->distance(pairs[i].target, pairs[i].query);
  }
  std::printf("GenASM improved (x%zu threads): %.3fs (%.0f pairs/s)\n",
              eng.threads(), genasm_s,
              static_cast<double>(pairs.size()) / genasm_s);
  std::printf("verified CIGARs : %zu/%zu\n", verified, pairs.size());
  std::printf("optimal cost    : %zu/%zu (global mode is exact)\n", optimal,
              pairs.size());

  // Affine scoring view of the same pairs (KSW2-class backend).
  const auto ksw_aligner = engine::makeAligner("ksw");
  timer.reset();
  long long total_score = 0;
  for (const auto& p : pairs) {
    total_score += ksw_aligner->align(p.target, p.query).score;
  }
  std::printf("KSW2-class affine pass: %.3fs, mean score %.1f\n",
              timer.seconds(),
              static_cast<double>(total_score) /
                  static_cast<double>(pairs.size()));
  return 0;
}
