// Short-read batch alignment: Illumina-class reads aligned with all four
// aligners and cross-checked — demonstrating the paper's claim that the
// implementations handle "both short and long reads", plus multi-threaded
// batching with the thread pool.
//
//   ./build/examples/short_read_alignment [reads] [threads]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "genasmx/common/verify.hpp"
#include "genasmx/core/genasm_improved.hpp"
#include "genasmx/ksw/ksw_affine.hpp"
#include "genasmx/mapper/mapper.hpp"
#include "genasmx/myers/myers.hpp"
#include "genasmx/readsim/genome.hpp"
#include "genasmx/readsim/read_simulator.hpp"
#include "genasmx/util/thread_pool.hpp"
#include "genasmx/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace gx;
  const std::size_t n_reads =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500;
  const std::size_t n_threads =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0;

  readsim::GenomeConfig gcfg;
  gcfg.length = 400'000;
  const auto genome = readsim::generateGenome(gcfg);
  const auto reads = readsim::simulateReads(
      genome, readsim::ReadSimConfig::illumina(n_reads, 150));
  mapper::Mapper mapper{std::string(genome)};

  // Build (target, query) pairs from the best candidate of each read.
  std::vector<mapper::AlignmentPair> pairs;
  for (const auto& r : reads) {
    auto rp = mapper::buildAlignmentPairs(mapper, r.seq, 1);
    for (auto& p : rp) pairs.push_back(std::move(p));
  }
  std::printf("aligning %zu short-read pairs (150 bp, ~0.3%% error)\n",
              pairs.size());

  // Improved GenASM across the thread pool.
  util::ThreadPool pool(n_threads);
  std::vector<common::AlignmentResult> results(pairs.size());
  util::Timer timer;
  pool.parallel_for(pairs.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      results[i] =
          core::alignGlobalImproved(pairs[i].target, pairs[i].query);
    }
  });
  const double genasm_s = timer.seconds();

  // Cross-check against the Edlib-class aligner and verify every CIGAR.
  myers::MyersAligner myers_aligner;
  std::size_t verified = 0, optimal = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (!results[i].ok) continue;
    const auto v = common::verifyAlignment(pairs[i].target, pairs[i].query,
                                           results[i].cigar);
    verified += v.valid;
    optimal += results[i].edit_distance ==
               myers_aligner.distance(pairs[i].target, pairs[i].query);
  }
  std::printf("GenASM improved (x%zu threads): %.3fs (%.0f pairs/s)\n",
              pool.size(), genasm_s,
              static_cast<double>(pairs.size()) / genasm_s);
  std::printf("verified CIGARs : %zu/%zu\n", verified, pairs.size());
  std::printf("optimal cost    : %zu/%zu (global mode is exact)\n", optimal,
              pairs.size());

  // Affine scoring view of the same pairs (KSW2-class).
  ksw::KswAligner ksw_aligner;
  timer.reset();
  long long total_score = 0;
  for (const auto& p : pairs) {
    total_score += ksw_aligner.align(p.target, p.query).score;
  }
  std::printf("KSW2-class affine pass: %.3fs, mean score %.1f\n",
              timer.seconds(),
              static_cast<double>(total_score) /
                  static_cast<double>(pairs.size()));
  return 0;
}
