// Long-read pipeline: the paper's methodology end to end, at laptop
// scale, with PAF output.
//
//   genome -> PBSIM2-class PacBio reads -> minimizer index -> all-chains
//   candidates (-P) -> improved-GenASM alignment -> PAF records
//
//   ./build/examples/long_read_pipeline [reads] [read_length]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "genasmx/common/verify.hpp"
#include "genasmx/engine/registry.hpp"
#include "genasmx/io/paf.hpp"
#include "genasmx/mapper/mapper.hpp"
#include "genasmx/readsim/genome.hpp"
#include "genasmx/readsim/read_simulator.hpp"
#include "genasmx/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace gx;
  const std::size_t n_reads =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10;
  const std::size_t read_len =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5'000;

  util::Timer timer;
  readsim::GenomeConfig gcfg;
  gcfg.length = std::max<std::size_t>(500'000, read_len * 50);
  gcfg.repeat_fraction = 0.15;
  const auto genome = readsim::generateGenome(gcfg);
  std::fprintf(stderr, "[%.2fs] genome: %zu bp\n", timer.seconds(),
               genome.size());

  const auto reads = readsim::simulateReads(
      genome, readsim::ReadSimConfig::pacbioClr(n_reads, read_len));
  std::fprintf(stderr, "[%.2fs] reads: %zu x %zu bp (PacBio CLR, ~10%% err)\n",
               timer.seconds(), reads.size(), read_len);

  mapper::Mapper mapper{std::string(genome)};
  std::fprintf(stderr, "[%.2fs] index: %zu minimizers\n", timer.seconds(),
               mapper.index().size());

  const auto aligner = engine::makeAligner("windowed-improved");
  std::size_t aligned = 0, correct_locus = 0;
  for (const auto& read : reads) {
    const auto candidates = mapper.map(read.seq);
    bool found = false;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const auto& cand = candidates[c];
      const std::string target{mapper.candidateText(cand)};
      const std::string query = cand.reverse
                                    ? common::reverseComplement(read.seq)
                                    : read.seq;
      const auto res = aligner->align(target, query);
      if (!res.ok) continue;
      ++aligned;

      io::PafRecord paf;
      paf.query_name = read.name;
      paf.query_len = read.seq.size();
      paf.query_begin = 0;
      paf.query_end = read.seq.size();
      paf.reverse = cand.reverse;
      paf.target_name = "synthetic_genome";
      paf.target_len = genome.size();
      paf.target_begin = cand.ref_begin;
      paf.target_end = cand.ref_end;
      paf.mapq = c == 0 ? 60 : 0;
      paf.cigar = res.cigar;
      io::finalizeFromCigar(paf);
      io::writePaf(std::cout, paf);

      const bool overlaps = cand.ref_begin < read.origin_pos + read.origin_len &&
                            read.origin_pos < cand.ref_end;
      found |= overlaps && cand.reverse == read.reverse_strand;
    }
    correct_locus += found;
  }
  std::fprintf(stderr,
               "[%.2fs] aligned %zu candidate pairs; %zu/%zu reads located "
               "at their true origin\n",
               timer.seconds(), aligned, correct_locus, reads.size());
  return 0;
}
