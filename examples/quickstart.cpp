// Quickstart: align two sequences with the improved GenASM algorithm and
// inspect the result. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [TARGET QUERY]
//
// With no arguments a small demo pair is used.

#include <cstdio>
#include <string>

#include "genasmx/common/verify.hpp"
#include "genasmx/core/genasm_improved.hpp"
#include "genasmx/engine/registry.hpp"

int main(int argc, char** argv) {
  using namespace gx;
  std::string target = "ACGTACGTACGTTTGACAGCTAGCTAGGTACCACGT";
  std::string query = "ACGTACGAACGTTTGACGCTAGCTAGGTACCACGT";
  if (argc == 3) {
    target = argv[1];
    query = argv[2];
  }

  // Backends are created by name through the registry; "improved" runs
  // the paper's algorithm — direct global alignment for short pairs and
  // the windowed driver beyond 512 bp (what the benchmarks use).
  const engine::AlignerPtr aligner = engine::makeAligner("improved");
  const common::AlignmentResult res = aligner->align(target, query);
  if (!res.ok) {
    std::printf("alignment failed\n");
    return 1;
  }

  std::printf("backend       : %s\n",
              std::string(aligner->name()).c_str());
  std::printf("edit distance : %d\n", res.edit_distance);
  std::printf("CIGAR         : %s\n", res.cigar.str().c_str());

  // Always verify: consumes both sequences exactly, '='/'X' match chars.
  const auto v = common::verifyAlignment(target, query, res.cigar);
  std::printf("verified      : %s (cost %llu)\n", v.valid ? "yes" : "no",
              static_cast<unsigned long long>(v.cost));
  std::printf("\n%s", common::renderAlignment(target, query, res.cigar).c_str());

  // The three improvements can be toggled individually (ablation). The
  // solver-level entry point exposes the DP-memory instrumentation the
  // engine interface intentionally hides.
  core::ImprovedOptions no_et = core::ImprovedOptions::all();
  no_et.early_termination = false;
  util::MemStats with_et_stats, no_et_stats;
  (void)core::alignGlobalImproved(target, query, -1, {}, &with_et_stats);
  (void)core::alignGlobalImproved(target, query, -1, no_et, &no_et_stats);
  std::printf("\nDP entries computed with early termination: %llu, without: %llu\n",
              static_cast<unsigned long long>(with_et_stats.dp_entries),
              static_cast<unsigned long long>(no_et_stats.dp_entries));
  return 0;
}
