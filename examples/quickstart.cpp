// Quickstart: align two sequences with the improved GenASM algorithm and
// inspect the result. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [TARGET QUERY]
//
// With no arguments a small demo pair is used.

#include <cstdio>
#include <string>

#include "genasmx/common/verify.hpp"
#include "genasmx/core/genasm_improved.hpp"
#include "genasmx/core/windowed.hpp"

int main(int argc, char** argv) {
  using namespace gx;
  std::string target = "ACGTACGTACGTTTGACAGCTAGCTAGGTACCACGT";
  std::string query = "ACGTACGAACGTTTGACGCTAGCTAGGTACCACGT";
  if (argc == 3) {
    target = argv[1];
    query = argv[2];
  }

  // Short pairs: direct global alignment.
  // Long pairs: the windowed driver (this is what the benchmarks use).
  const common::AlignmentResult res =
      query.size() <= 512 ? core::alignGlobalImproved(target, query)
                          : core::alignWindowedImproved(target, query);
  if (!res.ok) {
    std::printf("alignment failed\n");
    return 1;
  }

  std::printf("edit distance : %d\n", res.edit_distance);
  std::printf("CIGAR         : %s\n", res.cigar.str().c_str());

  // Always verify: consumes both sequences exactly, '='/'X' match chars.
  const auto v = common::verifyAlignment(target, query, res.cigar);
  std::printf("verified      : %s (cost %llu)\n", v.valid ? "yes" : "no",
              static_cast<unsigned long long>(v.cost));
  std::printf("\n%s", common::renderAlignment(target, query, res.cigar).c_str());

  // The three improvements can be toggled individually (ablation):
  core::ImprovedOptions no_et = core::ImprovedOptions::all();
  no_et.early_termination = false;
  util::MemStats with_et_stats, no_et_stats;
  (void)core::alignGlobalImproved(target, query, -1, {}, &with_et_stats);
  (void)core::alignGlobalImproved(target, query, -1, no_et, &no_et_stats);
  std::printf("\nDP entries computed with early termination: %llu, without: %llu\n",
              static_cast<unsigned long long>(with_et_stats.dp_entries),
              static_cast<unsigned long long>(no_et_stats.dp_entries));
  return 0;
}
