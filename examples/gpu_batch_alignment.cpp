// GPU batch alignment on the simulated A6000: the paper's GPU story in
// one runnable program. Builds a candidate workload, runs the improved
// and unimproved GenASM kernels, and prints the capacity/occupancy/
// traffic diagnostics that explain the speedup.
//
//   ./build/examples/gpu_batch_alignment [reads] [read_length]

#include <cstdio>
#include <cstdlib>

#include "genasmx/gpukernels/genasm_kernels.hpp"
#include "genasmx/gpusim/perf_model.hpp"
#include "genasmx/mapper/mapper.hpp"
#include "genasmx/readsim/genome.hpp"
#include "genasmx/readsim/read_simulator.hpp"

int main(int argc, char** argv) {
  using namespace gx;
  const std::size_t n_reads =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20;
  const std::size_t read_len =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2'000;

  readsim::GenomeConfig gcfg;
  gcfg.length = std::max<std::size_t>(400'000, read_len * 40);
  const auto genome = readsim::generateGenome(gcfg);
  const auto reads = readsim::simulateReads(
      genome, readsim::ReadSimConfig::pacbioClr(n_reads, read_len));
  mapper::Mapper mapper{std::string(genome)};
  std::vector<mapper::AlignmentPair> pairs;
  for (const auto& r : reads) {
    auto rp = mapper::buildAlignmentPairs(mapper, r.seq, 4);
    for (auto& p : rp) pairs.push_back(std::move(p));
  }

  gpusim::Device device;  // sim-A6000
  const auto& spec = device.spec();
  std::printf("device: %s (%d SMs, %.0f GB/s DRAM, %zu KiB shared/block)\n",
              spec.name.c_str(), spec.num_sms, spec.dram_bandwidth_gbps,
              spec.shared_mem_per_block / 1024);
  std::printf("batch : %zu alignment pairs, one per thread block\n\n",
              pairs.size());

  const auto improved = gpukernels::alignBatchImproved(device, pairs);
  const auto baseline = gpukernels::alignBatchBaseline(device, pairs);

  auto show = [&](const char* name, const gpukernels::GpuBatchOutput& out) {
    std::printf("%s\n", name);
    std::printf("  shared/block        : %zu bytes (fits: %s)\n",
                out.launch.shared_per_block,
                out.spilled_blocks == 0 ? "yes" : "no");
    std::printf("  occupancy           : %d blocks/SM (%.0f%% threads)\n",
                out.time.blocks_per_sm, out.time.occupancy * 100);
    std::printf("  DRAM traffic        : %.2f MB\n",
                out.launch.global_bytes / 1e6);
    std::printf("  shared traffic      : %.2f MB\n",
                out.launch.shared_bytes / 1e6);
    std::printf("  model bounds (us)   : compute %.1f, dram %.1f, shared %.1f, "
                "latency %.1f\n",
                out.time.compute_s * 1e6, out.time.dram_s * 1e6,
                out.time.shared_s * 1e6, out.time.latency_s * 1e6);
    std::printf("  modeled throughput  : %.0f alignments/s\n\n",
                out.alignments_per_second);
  };
  show("GenASM improved kernel (this paper)", improved);
  show("GenASM baseline kernel (MICRO'20)", baseline);

  std::printf("improved vs baseline: %.1fx (paper reports 5.9x on a real "
              "A6000)\n",
              improved.alignments_per_second / baseline.alignments_per_second);

  // Results are bit-exact with the CPU implementation.
  std::size_t agree = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    agree += improved.results[i].cigar == baseline.results[i].cigar;
  }
  std::printf("result cross-check  : %zu/%zu identical CIGARs between "
              "kernels\n",
              agree, pairs.size());
  return 0;
}
