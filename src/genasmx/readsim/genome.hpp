#pragma once
// Synthetic reference genome generation (substitute for the human genome
// in the paper's methodology). Runtime behaviour of all aligners depends
// on sequence length and error structure rather than biological content;
// a repeat structure is injected so the mapper's seeding/chaining sees
// realistic multi-mapping candidates (the paper's -P "all chains" setup).

#include <cstdint>
#include <string>

namespace gx::readsim {

struct GenomeConfig {
  std::size_t length = 1'000'000;
  /// Fraction of the genome covered by copied (repeated) segments.
  double repeat_fraction = 0.05;
  /// Length of each repeated segment.
  std::size_t repeat_unit = 2'000;
  /// Per-copy divergence applied to repeats (substitution rate), so
  /// repeats are near- but not exact duplicates.
  double repeat_divergence = 0.02;
  std::uint64_t seed = 42;
};

/// Generate a random ACGT genome with the configured repeat structure.
[[nodiscard]] std::string generateGenome(const GenomeConfig& cfg = {});

}  // namespace gx::readsim
