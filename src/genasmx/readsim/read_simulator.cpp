#include "genasmx/readsim/read_simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "genasmx/common/sequence.hpp"
#include "genasmx/util/prng.hpp"

namespace gx::readsim {

ReadSimConfig ReadSimConfig::pacbioClr(std::size_t count, std::size_t length) {
  ReadSimConfig cfg;
  cfg.read_count = count;
  cfg.read_length = length;
  cfg.errors = ErrorModel{};  // 10%, 1:6:3
  return cfg;
}

ReadSimConfig ReadSimConfig::illumina(std::size_t count, std::size_t length) {
  ReadSimConfig cfg;
  cfg.read_count = count;
  cfg.read_length = length;
  cfg.errors.error_rate = 0.003;
  cfg.errors.sub_frac = 0.90;
  cfg.errors.ins_frac = 0.05;
  cfg.errors.del_frac = 0.05;
  cfg.errors.rate_jitter = 0.10;
  return cfg;
}

std::vector<SimulatedRead> simulateReads(std::string_view genome,
                                         const ReadSimConfig& cfg) {
  if (genome.size() < cfg.read_length * 2) {
    throw std::invalid_argument(
        "simulateReads: genome too short for requested read length");
  }
  util::Xoshiro256 rng(cfg.seed);
  const ErrorModel& em = cfg.errors;
  const double mix_total = em.sub_frac + em.ins_frac + em.del_frac;
  const double p_sub = em.sub_frac / mix_total;
  const double p_ins = em.ins_frac / mix_total;

  std::vector<SimulatedRead> reads;
  reads.reserve(cfg.read_count);
  for (std::size_t r = 0; r < cfg.read_count; ++r) {
    SimulatedRead read;
    read.name = "read_" + std::to_string(r);
    read.reverse_strand = cfg.both_strands && rng.chance(0.5);
    const double rate =
        em.error_rate *
        (1.0 + em.rate_jitter * (2.0 * rng.uniform01() - 1.0));

    // Sample an origin leaving generous room for deletion-driven overrun.
    const std::size_t span_budget = cfg.read_length * 2;
    const std::size_t pos = rng.below(genome.size() - span_budget);
    read.origin_pos = pos;
    read.true_edits = 0;

    std::string seq;
    seq.reserve(cfg.read_length);
    std::size_t gi = pos;  // genome cursor
    while (seq.size() < cfg.read_length && gi < genome.size()) {
      if (rng.uniform01() < rate) {
        ++read.true_edits;
        const double kind = rng.uniform01();
        if (kind < p_sub) {  // substitution
          const char base = genome[gi++];
          char next = base;
          while (next == base) next = common::kBases[rng.below(4)];
          seq.push_back(next);
        } else if (kind < p_sub + p_ins) {  // insertion (extra read base)
          seq.push_back(common::kBases[rng.below(4)]);
        } else {  // deletion (skip a genome base)
          ++gi;
        }
      } else {
        seq.push_back(genome[gi++]);
      }
    }
    read.origin_len = gi - pos;
    read.seq = read.reverse_strand ? common::reverseComplement(seq)
                                   : std::move(seq);
    reads.push_back(std::move(read));
  }
  return reads;
}

}  // namespace gx::readsim
