#include "genasmx/readsim/read_simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "genasmx/common/sequence.hpp"
#include "genasmx/util/prng.hpp"

namespace gx::readsim {
namespace {

/// One sequencing-eligible contig: a view plus the truth-name label.
struct ContigSpan {
  const std::string* name;  ///< nullptr for the flat-genome overload
  std::string_view text;
};

/// Shared simulation core. The flat overload is the single-span case
/// with plain read_<i> names; the RNG call sequence is identical either
/// way, so single-contig references reproduce the flat overload's
/// origins byte for byte at the same seed.
std::vector<SimulatedRead> simulateCore(const std::vector<ContigSpan>& contigs,
                                        const ReadSimConfig& cfg,
                                        bool encode_truth_in_names) {
  // Origin sampling: uniform over the union of eligible start positions,
  // i.e. contigs weighted by their eligible length. The span budget
  // leaves generous room for deletion-driven overrun, and keeping the
  // whole budget inside one contig guarantees no read crosses a
  // boundary.
  const std::size_t span_budget = cfg.read_length * 2;
  std::vector<std::size_t> starts(contigs.size(), 0);
  std::size_t total_starts = 0;
  for (std::size_t c = 0; c < contigs.size(); ++c) {
    const std::size_t len = contigs[c].text.size();
    starts[c] = len > span_budget ? len - span_budget : 0;
    total_starts += starts[c];
  }
  if (total_starts == 0) {
    throw std::invalid_argument(
        "simulateReads: no contig long enough for requested read length");
  }

  util::Xoshiro256 rng(cfg.seed);
  const ErrorModel& em = cfg.errors;
  const double mix_total = em.sub_frac + em.ins_frac + em.del_frac;
  const double p_sub = em.sub_frac / mix_total;
  const double p_ins = em.ins_frac / mix_total;

  std::vector<SimulatedRead> reads;
  reads.reserve(cfg.read_count);
  for (std::size_t r = 0; r < cfg.read_count; ++r) {
    SimulatedRead read;
    read.reverse_strand = cfg.both_strands && rng.chance(0.5);
    const double rate =
        em.error_rate *
        (1.0 + em.rate_jitter * (2.0 * rng.uniform01() - 1.0));

    // One draw across all contigs, mapped to (contig, local position).
    std::size_t pos = rng.below(total_starts);
    std::uint32_t contig = 0;
    while (pos >= starts[contig]) {
      pos -= starts[contig];
      ++contig;
    }
    const std::string_view text = contigs[contig].text;
    read.origin_contig = contig;
    read.origin_pos = pos;
    read.true_edits = 0;

    std::string seq;
    seq.reserve(cfg.read_length);
    std::size_t gi = pos;  // contig-local cursor
    while (seq.size() < cfg.read_length && gi < text.size()) {
      if (rng.uniform01() < rate) {
        ++read.true_edits;
        const double kind = rng.uniform01();
        if (kind < p_sub) {  // substitution
          const char base = text[gi++];
          char next = base;
          while (next == base) next = common::kBases[rng.below(4)];
          seq.push_back(next);
        } else if (kind < p_sub + p_ins) {  // insertion (extra read base)
          seq.push_back(common::kBases[rng.below(4)]);
        } else {  // deletion (skip a reference base)
          ++gi;
        }
      } else {
        seq.push_back(text[gi++]);
      }
    }
    read.origin_len = gi - pos;
    read.seq = read.reverse_strand ? common::reverseComplement(seq)
                                   : std::move(seq);
    read.name = "read_" + std::to_string(r);
    if (encode_truth_in_names) {
      read.name += "!" + *contigs[contig].name + "!" +
                   std::to_string(read.origin_pos) + "!" +
                   (read.reverse_strand ? "-" : "+");
    }
    reads.push_back(std::move(read));
  }
  return reads;
}

}  // namespace

ReadSimConfig ReadSimConfig::pacbioClr(std::size_t count, std::size_t length) {
  ReadSimConfig cfg;
  cfg.read_count = count;
  cfg.read_length = length;
  cfg.errors = ErrorModel{};  // 10%, 1:6:3
  return cfg;
}

ReadSimConfig ReadSimConfig::illumina(std::size_t count, std::size_t length) {
  ReadSimConfig cfg;
  cfg.read_count = count;
  cfg.read_length = length;
  cfg.errors.error_rate = 0.003;
  cfg.errors.sub_frac = 0.90;
  cfg.errors.ins_frac = 0.05;
  cfg.errors.del_frac = 0.05;
  cfg.errors.rate_jitter = 0.10;
  return cfg;
}

std::vector<SimulatedRead> simulateReads(std::string_view genome,
                                         const ReadSimConfig& cfg) {
  if (genome.size() < cfg.read_length * 2) {
    throw std::invalid_argument(
        "simulateReads: genome too short for requested read length");
  }
  return simulateCore({ContigSpan{nullptr, genome}}, cfg, false);
}

std::vector<SimulatedRead> simulateReads(const refmodel::Reference& ref,
                                         const ReadSimConfig& cfg) {
  std::vector<ContigSpan> contigs;
  contigs.reserve(ref.contigCount());
  for (std::uint32_t c = 0; c < ref.contigCount(); ++c) {
    contigs.push_back(ContigSpan{&ref.name(c), ref.contigView(c)});
  }
  return simulateCore(contigs, cfg, true);
}

}  // namespace gx::readsim
