#include "genasmx/readsim/genome.hpp"

#include <algorithm>

#include "genasmx/common/sequence.hpp"
#include "genasmx/util/prng.hpp"

namespace gx::readsim {

std::string generateGenome(const GenomeConfig& cfg) {
  util::Xoshiro256 rng(cfg.seed);
  std::string genome = common::randomSequence(rng, cfg.length);
  if (cfg.repeat_fraction <= 0.0 || cfg.repeat_unit == 0 ||
      cfg.repeat_unit * 2 > cfg.length) {
    return genome;
  }
  const std::size_t copies = static_cast<std::size_t>(
      cfg.repeat_fraction * static_cast<double>(cfg.length) /
      static_cast<double>(cfg.repeat_unit));
  for (std::size_t c = 0; c < copies; ++c) {
    const std::size_t src = rng.below(cfg.length - cfg.repeat_unit);
    const std::size_t dst = rng.below(cfg.length - cfg.repeat_unit);
    for (std::size_t i = 0; i < cfg.repeat_unit; ++i) {
      char base = genome[src + i];
      if (rng.chance(cfg.repeat_divergence)) {
        char next = base;
        while (next == base) next = common::kBases[rng.below(4)];
        base = next;
      }
      genome[dst + i] = base;
    }
  }
  return genome;
}

}  // namespace gx::readsim
