#pragma once
// PBSIM2-class read simulator: samples reads from a reference genome and
// corrupts them with a configurable error model. Substitutes the paper's
// "500 PacBio reads of length 10 kb simulated with PBSIM2".
//
// Error model: each emitted base independently suffers an error with the
// per-read error rate (jittered around the configured mean, as real
// sequencers vary per read); the error type is drawn from the configured
// substitution/insertion/deletion mix. Defaults follow the PacBio CLR
// profile PBSIM uses (indel-heavy: 10% errors at roughly 1:6:3 sub:ins:del).
//
// Multi-contig references: the Reference overload samples read origins
// across contigs proportional to each contig's eligible length, never
// crosses a contig boundary, and encodes the (contig, offset, strand)
// truth in the read name — read_<i>!<contig>!<pos>!<+|-> — so round-trip
// mapping accuracy is checkable per contig from a FASTQ alone.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "genasmx/refmodel/reference.hpp"

namespace gx::readsim {

struct ErrorModel {
  double error_rate = 0.10;  ///< mean per-base error probability
  double sub_frac = 0.10;    ///< error-type mix (normalized internally)
  double ins_frac = 0.60;
  double del_frac = 0.30;
  double rate_jitter = 0.30;  ///< per-read rate multiplier in [1-j, 1+j]
};

struct ReadSimConfig {
  std::size_t read_count = 500;
  std::size_t read_length = 10'000;  ///< emitted read length (paper: 10 kb)
  ErrorModel errors{};
  bool both_strands = true;
  std::uint64_t seed = 7;

  /// The paper's long-read workload: PacBio CLR, 10 kb, ~10% error.
  [[nodiscard]] static ReadSimConfig pacbioClr(std::size_t count = 500,
                                               std::size_t length = 10'000);
  /// Short-read workload: Illumina-like, substitution-dominated ~0.3%.
  [[nodiscard]] static ReadSimConfig illumina(std::size_t count = 1000,
                                              std::size_t length = 150);
};

struct SimulatedRead {
  std::string name;
  std::string seq;               ///< as sequenced (reverse strand: revcomp'd)
  std::uint32_t origin_contig = 0;  ///< contig id of the origin
  std::size_t origin_pos;        ///< contig-local coordinate of the origin
  std::size_t origin_len;        ///< reference characters the read covers
  bool reverse_strand;
  std::uint32_t true_edits;      ///< errors injected while sequencing
};

/// Simulate cfg.read_count reads from a single flat genome (contig 0,
/// plain read_<i> names — the pre-multi-contig shape). Deterministic in
/// cfg.seed. Throws std::invalid_argument if the genome is too short for
/// the requested read length.
[[nodiscard]] std::vector<SimulatedRead> simulateReads(
    std::string_view genome, const ReadSimConfig& cfg);

/// Simulate from a multi-contig reference: origins length-proportional
/// across contigs, boundary-safe, truth-encoding read names (see header
/// comment). For a single-contig Reference the sampled origins are
/// identical to the flat overload at the same seed. Throws
/// std::invalid_argument if no contig is long enough.
[[nodiscard]] std::vector<SimulatedRead> simulateReads(
    const refmodel::Reference& ref, const ReadSimConfig& cfg);

}  // namespace gx::readsim
