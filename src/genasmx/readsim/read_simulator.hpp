#pragma once
// PBSIM2-class read simulator: samples reads from a reference genome and
// corrupts them with a configurable error model. Substitutes the paper's
// "500 PacBio reads of length 10 kb simulated with PBSIM2".
//
// Error model: each emitted base independently suffers an error with the
// per-read error rate (jittered around the configured mean, as real
// sequencers vary per read); the error type is drawn from the configured
// substitution/insertion/deletion mix. Defaults follow the PacBio CLR
// profile PBSIM uses (indel-heavy: 10% errors at roughly 1:6:3 sub:ins:del).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gx::readsim {

struct ErrorModel {
  double error_rate = 0.10;  ///< mean per-base error probability
  double sub_frac = 0.10;    ///< error-type mix (normalized internally)
  double ins_frac = 0.60;
  double del_frac = 0.30;
  double rate_jitter = 0.30;  ///< per-read rate multiplier in [1-j, 1+j]
};

struct ReadSimConfig {
  std::size_t read_count = 500;
  std::size_t read_length = 10'000;  ///< emitted read length (paper: 10 kb)
  ErrorModel errors{};
  bool both_strands = true;
  std::uint64_t seed = 7;

  /// The paper's long-read workload: PacBio CLR, 10 kb, ~10% error.
  [[nodiscard]] static ReadSimConfig pacbioClr(std::size_t count = 500,
                                               std::size_t length = 10'000);
  /// Short-read workload: Illumina-like, substitution-dominated ~0.3%.
  [[nodiscard]] static ReadSimConfig illumina(std::size_t count = 1000,
                                              std::size_t length = 150);
};

struct SimulatedRead {
  std::string name;
  std::string seq;            ///< as sequenced (reverse strand: revcomp'd)
  std::size_t origin_pos;     ///< forward-genome coordinate of the origin
  std::size_t origin_len;     ///< genome characters the read covers
  bool reverse_strand;
  std::uint32_t true_edits;   ///< errors injected while sequencing
};

/// Simulate cfg.read_count reads from `genome`. Deterministic in cfg.seed.
[[nodiscard]] std::vector<SimulatedRead> simulateReads(
    std::string_view genome, const ReadSimConfig& cfg);

}  // namespace gx::readsim
