#pragma once
// CIGAR representation of pairwise alignments.
//
// Conventions used across the library:
//   query  = the read / pattern,
//   target = the reference / text,
//   '='  match        (consumes one query and one target character)
//   'X'  mismatch     (consumes one of each)
//   'I'  insertion    (consumes one query character only)
//   'D'  deletion     (consumes one target character only)
// Edit distance of an alignment = #X + #I + #D.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gx::common {

enum class EditOp : std::uint8_t { Match, Mismatch, Insertion, Deletion };

[[nodiscard]] constexpr char opChar(EditOp op) noexcept {
  switch (op) {
    case EditOp::Match: return '=';
    case EditOp::Mismatch: return 'X';
    case EditOp::Insertion: return 'I';
    case EditOp::Deletion: return 'D';
  }
  return '?';
}

[[nodiscard]] constexpr bool opConsumesQuery(EditOp op) noexcept {
  return op != EditOp::Deletion;
}
[[nodiscard]] constexpr bool opConsumesTarget(EditOp op) noexcept {
  return op != EditOp::Insertion;
}
[[nodiscard]] constexpr bool opIsError(EditOp op) noexcept {
  return op != EditOp::Match;
}

struct CigarUnit {
  EditOp op;
  std::uint32_t len;
  friend bool operator==(const CigarUnit&, const CigarUnit&) = default;
};

/// Run-length encoded list of edit operations. push() merges adjacent
/// identical operations so the representation is always canonical.
class Cigar {
 public:
  Cigar() = default;

  void push(EditOp op, std::uint32_t len = 1);
  void append(const Cigar& other);
  void clear() noexcept { units_.clear(); }

  [[nodiscard]] bool empty() const noexcept { return units_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return units_.size(); }
  [[nodiscard]] const std::vector<CigarUnit>& units() const noexcept {
    return units_;
  }

  /// Total number of edit operations (= alignment columns).
  [[nodiscard]] std::uint64_t opCount() const noexcept;
  /// Query characters consumed (= read length for a full alignment).
  [[nodiscard]] std::uint64_t queryLength() const noexcept;
  /// Target characters consumed.
  [[nodiscard]] std::uint64_t targetLength() const noexcept;
  /// Unit-cost edit distance: #X + #I + #D.
  [[nodiscard]] std::uint64_t editDistance() const noexcept;
  /// Count of a specific operation.
  [[nodiscard]] std::uint64_t count(EditOp op) const noexcept;

  /// Keep only the first n operations (splitting a run if needed).
  /// Used by GenASM windowing, which commits W-O ops per window.
  [[nodiscard]] Cigar prefix(std::uint64_t n) const;

  /// Render as e.g. "32=1X4I7=" ; parse the same format back.
  [[nodiscard]] std::string str() const;
  [[nodiscard]] static Cigar parse(std::string_view text);

  friend bool operator==(const Cigar&, const Cigar&) = default;

 private:
  std::vector<CigarUnit> units_;
};

/// A cigar with its flanking indel runs stripped, plus how many query /
/// target characters each stripped flank consumed. Mapping pipelines use
/// this to turn a window-global alignment (which pays the candidate
/// window's slack as boundary indels) into tight PAF coordinates.
struct CigarTrim {
  Cigar cigar;
  std::uint64_t query_lead = 0;    ///< query chars in the leading trim
  std::uint64_t query_trail = 0;   ///< query chars in the trailing trim
  std::uint64_t target_lead = 0;   ///< target chars in the leading trim
  std::uint64_t target_trail = 0;  ///< target chars in the trailing trim
};

/// Strip leading and trailing insertion/deletion runs so the alignment
/// starts and ends on a match/mismatch column.
[[nodiscard]] CigarTrim trimIndelEnds(const Cigar& cigar);

/// A finished pairwise alignment.
struct AlignmentResult {
  bool ok = false;         ///< false => no alignment within the threshold
  int edit_distance = -1;  ///< unit-cost distance (or -1)
  int score = 0;           ///< affine score, where applicable (ksw)
  Cigar cigar;
};

}  // namespace gx::common
