#include "genasmx/common/verify.hpp"

#include <sstream>

namespace gx::common {

VerifyResult verifyAlignment(std::string_view target, std::string_view query,
                             const Cigar& cigar) {
  VerifyResult r;
  std::size_t ti = 0;
  std::size_t qi = 0;
  for (const auto& u : cigar.units()) {
    for (std::uint32_t step = 0; step < u.len; ++step) {
      switch (u.op) {
        case EditOp::Match:
          if (ti >= target.size() || qi >= query.size()) {
            r.error = "match op runs past sequence end";
            return r;
          }
          if (target[ti] != query[qi]) {
            std::ostringstream os;
            os << "match op at target[" << ti << "]='" << target[ti]
               << "' query[" << qi << "]='" << query[qi] << "' disagrees";
            r.error = os.str();
            return r;
          }
          ++ti;
          ++qi;
          break;
        case EditOp::Mismatch:
          if (ti >= target.size() || qi >= query.size()) {
            r.error = "mismatch op runs past sequence end";
            return r;
          }
          if (target[ti] == query[qi]) {
            r.error = "mismatch op on equal characters";
            return r;
          }
          ++ti;
          ++qi;
          ++r.cost;
          break;
        case EditOp::Insertion:
          if (qi >= query.size()) {
            r.error = "insertion op runs past query end";
            return r;
          }
          ++qi;
          ++r.cost;
          break;
        case EditOp::Deletion:
          if (ti >= target.size()) {
            r.error = "deletion op runs past target end";
            return r;
          }
          ++ti;
          ++r.cost;
          break;
      }
    }
  }
  if (ti != target.size()) {
    std::ostringstream os;
    os << "target not fully consumed: " << ti << " of " << target.size();
    r.error = os.str();
    return r;
  }
  if (qi != query.size()) {
    std::ostringstream os;
    os << "query not fully consumed: " << qi << " of " << query.size();
    r.error = os.str();
    return r;
  }
  r.valid = true;
  return r;
}

std::string renderAlignment(std::string_view target, std::string_view query,
                            const Cigar& cigar, std::size_t max_cols) {
  std::string t_line, bar, q_line;
  std::size_t ti = 0, qi = 0;
  for (const auto& u : cigar.units()) {
    for (std::uint32_t s = 0; s < u.len; ++s) {
      if (t_line.size() >= max_cols) goto done;
      switch (u.op) {
        case EditOp::Match:
          t_line += ti < target.size() ? target[ti++] : '?';
          q_line += qi < query.size() ? query[qi++] : '?';
          bar += '|';
          break;
        case EditOp::Mismatch:
          t_line += ti < target.size() ? target[ti++] : '?';
          q_line += qi < query.size() ? query[qi++] : '?';
          bar += '.';
          break;
        case EditOp::Insertion:
          t_line += '-';
          q_line += qi < query.size() ? query[qi++] : '?';
          bar += ' ';
          break;
        case EditOp::Deletion:
          t_line += ti < target.size() ? target[ti++] : '?';
          q_line += '-';
          bar += ' ';
          break;
      }
    }
  }
done:
  std::string out;
  out += "T: " + t_line + "\n   " + bar + "\nQ: " + q_line + "\n";
  return out;
}

}  // namespace gx::common
