#pragma once
// Structured error model for the whole stack. Every failure that crosses
// a subsystem boundary (io, mapper, engine, pipeline, tools) carries an
// ErrorCode from the taxonomy below plus machine-readable context (file
// path, 1-based line, byte offset, record name), and renders as ONE
// actionable line — a hard requirement for a mapper that must stay up
// through malformed client input: callers branch on code(), humans read
// what().
//
// The taxonomy drives policy, not just wording:
//   kMalformedInput   bad bytes from outside (FASTQ syntax, corrupt
//                     index) — skippable per record under a degradation
//                     policy, never a reason to kill a server
//   kIoTransient      the operation may succeed if retried (EINTR/
//                     EAGAIN short writes) — retried with bounded
//                     backoff before escalating
//   kIoFatal          the environment is broken (ENOSPC, EIO, missing
//                     file) — fail the run cleanly, exit non-zero
//   kResourceLimit    an admission cap tripped (read too long, batch
//                     too large) — degrade the unit, keep the run
//   kInternal         a broken invariant in our own code — never
//                     degraded away silently
//
// Error derives from std::runtime_error so pre-taxonomy catch sites keep
// working; Status is the non-throwing mirror for APIs that aggregate
// failures (engine task capture, pipeline RunReport) instead of
// unwinding.

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gx::common {

enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kMalformedInput,
  kIoTransient,
  kIoFatal,
  kResourceLimit,
  kInternal,
};

inline constexpr std::size_t kErrorCodeCount = 6;

/// Stable kebab-case name ("malformed-input", ...) used in rendered
/// messages, RunReport counters, and CI greps.
[[nodiscard]] std::string_view errorCodeName(ErrorCode code) noexcept;

/// Where in the input the failure happened. All fields optional; unset
/// fields are omitted from the rendered message.
struct ErrorContext {
  std::string path;      ///< file involved ("" = none/unknown)
  std::string record;    ///< record name or index ("" = none)
  std::uint64_t line = 0;        ///< 1-based line number (0 = unknown)
  std::uint64_t byte_offset = kNoOffset;  ///< byte offset (kNoOffset = unknown)

  static constexpr std::uint64_t kNoOffset = ~std::uint64_t{0};
};

/// Render "message [code] context..." as one line. Exposed so Status and
/// non-throwing paths produce byte-identical wording to Error::what().
[[nodiscard]] std::string formatError(ErrorCode code, std::string_view message,
                                      const ErrorContext& ctx);

/// The throwing form: an exception that is also a structured value.
/// what() is the one-line rendering of (code, message, context).
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message, ErrorContext ctx = {})
      : std::runtime_error(formatError(code, message, ctx)),
        code_(code),
        ctx_(std::move(ctx)) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const ErrorContext& context() const noexcept { return ctx_; }

 private:
  ErrorCode code_;
  ErrorContext ctx_;
};

/// The non-throwing mirror: a code plus the already-rendered one-line
/// message. Default-constructed Status is ok.
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Capture an in-flight exception as a Status (Error keeps its code;
  /// anything else maps to kInternal — foreign exceptions are by
  /// definition invariants we did not model).
  [[nodiscard]] static Status fromCurrentException() noexcept;

  [[nodiscard]] bool ok() const noexcept { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Per-code occurrence counters, indexable by ErrorCode. The aggregation
/// unit of RunReport and the fault-matrix assertions.
struct ErrorCounts {
  std::array<std::uint64_t, kErrorCodeCount> counts{};

  void add(ErrorCode code, std::uint64_t n = 1) noexcept {
    counts[static_cast<std::size_t>(code)] += n;
  }
  [[nodiscard]] std::uint64_t operator[](ErrorCode code) const noexcept {
    return counts[static_cast<std::size_t>(code)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (std::size_t i = 1; i < kErrorCodeCount; ++i) t += counts[i];
    return t;  // kOk excluded
  }
};

}  // namespace gx::common
