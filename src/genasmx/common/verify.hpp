#pragma once
// Alignment verification: the single source of truth tests and benchmarks
// use to decide whether an aligner's output is *valid* (consumes both
// sequences exactly, '='/'X' agree with the characters) and what it costs.

#include <string>
#include <string_view>

#include "genasmx/common/cigar.hpp"

namespace gx::common {

struct VerifyResult {
  bool valid = false;
  std::string error;        ///< human-readable reason when !valid
  std::uint64_t cost = 0;   ///< unit edit cost of the alignment when valid
};

/// Check `cigar` as a *global* alignment of query against target.
[[nodiscard]] VerifyResult verifyAlignment(std::string_view target,
                                           std::string_view query,
                                           const Cigar& cigar);

/// Render a 3-line visual alignment (target / bars / query) for debugging
/// and examples; columns beyond max_cols are elided.
[[nodiscard]] std::string renderAlignment(std::string_view target,
                                          std::string_view query,
                                          const Cigar& cigar,
                                          std::size_t max_cols = 120);

}  // namespace gx::common
