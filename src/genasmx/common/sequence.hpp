#pragma once
// Nucleotide sequence utilities shared by every subsystem: the ACGT
// alphabet, 2-bit encoding/packing, reverse/complement, and random
// sequence helpers used in tests.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "genasmx/util/prng.hpp"

namespace gx::common {

inline constexpr int kAlphabetSize = 4;
inline constexpr char kBases[kAlphabetSize + 1] = "ACGT";

/// Map ACGT (case-insensitive) to 0..3. Any other character (incl. N)
/// maps to 0; alignment semantics treat it as 'A'.
[[nodiscard]] constexpr std::uint8_t baseCode(char c) noexcept {
  switch (c) {
    case 'A': case 'a': return 0;
    case 'C': case 'c': return 1;
    case 'G': case 'g': return 2;
    case 'T': case 't': return 3;
    default: return 0;
  }
}

[[nodiscard]] constexpr char codeBase(std::uint8_t code) noexcept {
  return kBases[code & 3u];
}

[[nodiscard]] constexpr char complement(char c) noexcept {
  switch (c) {
    case 'A': case 'a': return 'T';
    case 'C': case 'c': return 'G';
    case 'G': case 'g': return 'C';
    case 'T': case 't': return 'A';
    default: return 'A';
  }
}

/// Reverse a sequence (no complement). GenASM runs its automaton on
/// reversed windows so traceback emits operations front-to-back.
[[nodiscard]] std::string reversed(std::string_view s);

/// Reverse `src` into `dst` with a single reverse-copy pass, reusing
/// dst's capacity. The windowed hot loop reverses two buffers per window;
/// steady state this allocates nothing.
inline void reverseInto(std::string& dst, std::string_view src) {
  dst.resize(src.size());
  for (std::size_t j = 0; j < src.size(); ++j) {
    dst[j] = src[src.size() - 1 - j];
  }
}

/// Reverse complement (for minus-strand mapping).
[[nodiscard]] std::string reverseComplement(std::string_view s);

/// Uniform random ACGT string.
[[nodiscard]] std::string randomSequence(util::Xoshiro256& rng, std::size_t len);

/// Apply `edits` random single-character edits (sub/ins/del mix) to `s`.
/// Used heavily by property tests to build pairs with a known error bound.
[[nodiscard]] std::string mutateSequence(util::Xoshiro256& rng,
                                         std::string_view s, std::size_t edits);

/// 2-bit packed immutable sequence; 32 bases per 64-bit word. The mapper
/// indexes multi-megabase genomes through this to stay cache-friendly.
class PackedSequence {
 public:
  PackedSequence() = default;
  explicit PackedSequence(std::string_view s);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] std::uint8_t code(std::size_t i) const noexcept {
    return static_cast<std::uint8_t>((words_[i >> 5] >> ((i & 31) * 2)) & 3u);
  }
  [[nodiscard]] char at(std::size_t i) const noexcept {
    return codeBase(code(i));
  }

  /// Decode [pos, pos+len) back to an ACGT string (clamped to size()).
  [[nodiscard]] std::string decode(std::size_t pos, std::size_t len) const;

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace gx::common
