#include "genasmx/common/cigar.hpp"

#include <cstdlib>
#include <stdexcept>

namespace gx::common {

void Cigar::push(EditOp op, std::uint32_t len) {
  if (len == 0) return;
  if (!units_.empty() && units_.back().op == op) {
    units_.back().len += len;
  } else {
    units_.push_back({op, len});
  }
}

void Cigar::append(const Cigar& other) {
  for (const auto& u : other.units_) push(u.op, u.len);
}

std::uint64_t Cigar::opCount() const noexcept {
  std::uint64_t n = 0;
  for (const auto& u : units_) n += u.len;
  return n;
}

std::uint64_t Cigar::queryLength() const noexcept {
  std::uint64_t n = 0;
  for (const auto& u : units_)
    if (opConsumesQuery(u.op)) n += u.len;
  return n;
}

std::uint64_t Cigar::targetLength() const noexcept {
  std::uint64_t n = 0;
  for (const auto& u : units_)
    if (opConsumesTarget(u.op)) n += u.len;
  return n;
}

std::uint64_t Cigar::editDistance() const noexcept {
  std::uint64_t n = 0;
  for (const auto& u : units_)
    if (opIsError(u.op)) n += u.len;
  return n;
}

std::uint64_t Cigar::count(EditOp op) const noexcept {
  std::uint64_t n = 0;
  for (const auto& u : units_)
    if (u.op == op) n += u.len;
  return n;
}

Cigar Cigar::prefix(std::uint64_t n) const {
  Cigar out;
  for (const auto& u : units_) {
    if (n == 0) break;
    const std::uint32_t take =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(u.len, n));
    out.push(u.op, take);
    n -= take;
  }
  return out;
}

std::string Cigar::str() const {
  std::string out;
  for (const auto& u : units_) {
    out += std::to_string(u.len);
    out += opChar(u.op);
  }
  return out;
}

Cigar Cigar::parse(std::string_view text) {
  Cigar out;
  std::uint64_t len = 0;
  bool have_len = false;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      len = len * 10 + static_cast<std::uint64_t>(c - '0');
      have_len = true;
      continue;
    }
    if (!have_len) throw std::invalid_argument("cigar: op without length");
    EditOp op;
    switch (c) {
      case '=': case 'M': op = EditOp::Match; break;
      case 'X': op = EditOp::Mismatch; break;
      case 'I': op = EditOp::Insertion; break;
      case 'D': op = EditOp::Deletion; break;
      default: throw std::invalid_argument("cigar: unknown op");
    }
    out.push(op, static_cast<std::uint32_t>(len));
    len = 0;
    have_len = false;
  }
  if (have_len) throw std::invalid_argument("cigar: trailing length");
  return out;
}

CigarTrim trimIndelEnds(const Cigar& cigar) {
  const auto& units = cigar.units();
  std::size_t lo = 0;
  std::size_t hi = units.size();
  CigarTrim out;
  auto is_indel = [](EditOp op) {
    return op == EditOp::Insertion || op == EditOp::Deletion;
  };
  for (; lo < hi && is_indel(units[lo].op); ++lo) {
    (units[lo].op == EditOp::Insertion ? out.query_lead : out.target_lead) +=
        units[lo].len;
  }
  for (; hi > lo && is_indel(units[hi - 1].op); --hi) {
    (units[hi - 1].op == EditOp::Insertion ? out.query_trail
                                           : out.target_trail) +=
        units[hi - 1].len;
  }
  for (std::size_t i = lo; i < hi; ++i) {
    out.cigar.push(units[i].op, units[i].len);
  }
  return out;
}

}  // namespace gx::common
