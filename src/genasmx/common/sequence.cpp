#include "genasmx/common/sequence.hpp"

#include <algorithm>

namespace gx::common {

std::string reversed(std::string_view s) {
  return std::string(s.rbegin(), s.rend());
}

std::string reverseComplement(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (auto it = s.rbegin(); it != s.rend(); ++it) out.push_back(complement(*it));
  return out;
}

std::string randomSequence(util::Xoshiro256& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) c = kBases[rng.below(4)];
  return s;
}

std::string mutateSequence(util::Xoshiro256& rng, std::string_view s,
                           std::size_t edits) {
  std::string out(s);
  for (std::size_t e = 0; e < edits; ++e) {
    const std::uint64_t kind = rng.below(3);
    if (out.empty() || kind == 1) {  // insertion
      const std::size_t pos = rng.below(out.size() + 1);
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
                 kBases[rng.below(4)]);
    } else if (kind == 0) {  // substitution (force a different base)
      const std::size_t pos = rng.below(out.size());
      const char old = out[pos];
      char next = old;
      while (next == old) next = kBases[rng.below(4)];
      out[pos] = next;
    } else {  // deletion
      const std::size_t pos = rng.below(out.size());
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos));
    }
  }
  return out;
}

PackedSequence::PackedSequence(std::string_view s) : size_(s.size()) {
  words_.assign((size_ + 31) / 32, 0);
  for (std::size_t i = 0; i < size_; ++i) {
    words_[i >> 5] |= static_cast<std::uint64_t>(baseCode(s[i]))
                      << ((i & 31) * 2);
  }
}

std::string PackedSequence::decode(std::size_t pos, std::size_t len) const {
  std::string out;
  if (pos >= size_) return out;
  len = std::min(len, size_ - pos);
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) out.push_back(at(pos + i));
  return out;
}

}  // namespace gx::common
