#include "genasmx/common/error.hpp"

#include <exception>

namespace gx::common {

std::string_view errorCodeName(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kMalformedInput:
      return "malformed-input";
    case ErrorCode::kIoTransient:
      return "io-transient";
    case ErrorCode::kIoFatal:
      return "io-fatal";
    case ErrorCode::kResourceLimit:
      return "resource-limit";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string formatError(ErrorCode code, std::string_view message,
                        const ErrorContext& ctx) {
  // One line, message first (the part a human acts on), then the
  // machine-greppable classification and location.
  std::string out;
  out.reserve(message.size() + 64);
  out += message;
  out += " [";
  out += errorCodeName(code);
  out += ']';
  if (!ctx.path.empty()) {
    out += " in '";
    out += ctx.path;
    out += '\'';
  }
  if (!ctx.record.empty()) {
    out += " record '";
    out += ctx.record;
    out += '\'';
  }
  if (ctx.line != 0) {
    out += " line ";
    out += std::to_string(ctx.line);
  }
  if (ctx.byte_offset != ErrorContext::kNoOffset) {
    out += " byte ";
    out += std::to_string(ctx.byte_offset);
  }
  return out;
}

Status Status::fromCurrentException() noexcept {
  try {
    throw;
  } catch (const Error& e) {
    return Status(e.code(), e.what());
  } catch (const std::bad_alloc& e) {
    return Status(ErrorCode::kResourceLimit,
                  std::string("allocation failed: ") + e.what() +
                      " [resource-limit]");
  } catch (const std::exception& e) {
    return Status(ErrorCode::kInternal,
                  std::string(e.what()) + " [internal]");
  } catch (...) {
    return Status(ErrorCode::kInternal, "unknown exception [internal]");
  }
}

}  // namespace gx::common
