#include "genasmx/bitvector/bitvector.hpp"

namespace gx::bitvector {

int wordsNeeded(int len) noexcept {
  if (len <= 0) return 1;
  return (len + 63) / 64;
}

}  // namespace gx::bitvector
