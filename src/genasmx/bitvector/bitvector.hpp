#pragma once
// Multi-word bitvector engine underpinning both GenASM variants.
//
// GenASM's status bitvectors are *active-low*: bit j == 0 means "the
// pattern prefix of length j+1 is matchable". Merging alternative
// transitions is therefore a bitwise AND, and the pattern masks PM[c]
// carry a 0 exactly where the pattern character equals c.
//
// BitVec<NW> is a fixed-size little-endian array of NW 64-bit words
// (bit j lives in word j/64). NW=1 covers GenASM's default W=64 window;
// larger NW instantiations power the window-size design-space sweep.

#include <array>
#include <cstdint>
#include <string_view>

#include "genasmx/common/sequence.hpp"

namespace gx::bitvector {

template <int NW>
struct BitVec {
  static_assert(NW >= 1 && NW <= 8, "supported widths: 64..512 bits");
  static constexpr int kWords = NW;
  static constexpr int kBits = NW * 64;

  std::array<std::uint64_t, NW> w{};  // w[0] holds bits 0..63

  [[nodiscard]] static constexpr BitVec zeros() noexcept { return BitVec{}; }

  [[nodiscard]] static constexpr BitVec allOnes() noexcept {
    BitVec v;
    for (auto& x : v.w) x = ~0ULL;
    return v;
  }

  /// Bits [0, n) cleared, bits [n, kBits) set — the GenASM column-0
  /// initialisation R[0][d] = ~0 << d (n = d zeros at the bottom).
  [[nodiscard]] static constexpr BitVec onesAbove(int n) noexcept {
    BitVec v = allOnes();
    if (n <= 0) return v;
    if (n >= kBits) return zeros();
    const int full = n / 64;
    for (int i = 0; i < full; ++i) v.w[i] = 0;
    const int rem = n % 64;
    if (rem != 0) v.w[full] &= ~0ULL << rem;
    return v;
  }

  [[nodiscard]] constexpr bool bit(int j) const noexcept {
    return (w[j >> 6] >> (j & 63)) & 1ULL;
  }
  constexpr void setBit(int j) noexcept { w[j >> 6] |= 1ULL << (j & 63); }
  constexpr void clearBit(int j) noexcept { w[j >> 6] &= ~(1ULL << (j & 63)); }

  /// Shift left by one, shifting `insert_one ? 1 : 0` into bit 0.
  /// Active-low semantics: inserting 0 models a free empty-prefix state
  /// (semi-global text start); inserting 1 blocks it (global alignment).
  [[nodiscard]] constexpr BitVec shl1(bool insert_one) const noexcept {
    BitVec r;
    std::uint64_t carry = insert_one ? 1ULL : 0ULL;
    for (int i = 0; i < NW; ++i) {
      r.w[i] = (w[i] << 1) | carry;
      carry = w[i] >> 63;
    }
    return r;
  }

  friend constexpr BitVec operator&(const BitVec& a, const BitVec& b) noexcept {
    BitVec r;
    for (int i = 0; i < NW; ++i) r.w[i] = a.w[i] & b.w[i];
    return r;
  }
  friend constexpr BitVec operator|(const BitVec& a, const BitVec& b) noexcept {
    BitVec r;
    for (int i = 0; i < NW; ++i) r.w[i] = a.w[i] | b.w[i];
    return r;
  }
  friend constexpr BitVec operator~(const BitVec& a) noexcept {
    BitVec r;
    for (int i = 0; i < NW; ++i) r.w[i] = ~a.w[i];
    return r;
  }
  friend constexpr bool operator==(const BitVec&, const BitVec&) = default;
};

/// Per-character pattern masks. PM[c] bit j == 0 iff pattern[j] == c.
/// The pattern is taken exactly as passed: GenASM callers pass the
/// *reversed* window so traceback emits operations front-to-back.
template <int NW>
struct PatternMasks {
  std::array<BitVec<NW>, common::kAlphabetSize> pm;

  PatternMasks() {
    for (auto& v : pm) v = BitVec<NW>::allOnes();
  }

  explicit PatternMasks(std::string_view pattern) { assign(pattern); }

  /// Rebuild the masks for a new pattern in place. Solvers keep a
  /// PatternMasks member and call this per window, so the mask table is
  /// constructed into long-lived storage instead of a fresh object.
  void assign(std::string_view pattern) {
    for (auto& v : pm) v = BitVec<NW>::allOnes();
    for (std::size_t j = 0; j < pattern.size() && j < BitVec<NW>::kBits; ++j) {
      pm[common::baseCode(pattern[j])].clearBit(static_cast<int>(j));
    }
  }

  [[nodiscard]] const BitVec<NW>& forChar(char c) const noexcept {
    return pm[common::baseCode(c)];
  }
};

/// Number of 64-bit words needed for a pattern of `len` characters.
[[nodiscard]] int wordsNeeded(int len) noexcept;

}  // namespace gx::bitvector
