#pragma once
// Monotonic wall-clock timing for benchmarks and examples.

#include <chrono>
#include <cstdint>

namespace gx::util {

class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }
  [[nodiscard]] std::uint64_t nanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gx::util
