#include "genasmx/util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace gx::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (pending_error_) {
    std::exception_ptr err = std::exchange(pending_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t step = (n + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < n; begin += step) {
    const std::size_t end = std::min(begin + step, n);
    submit([&fn, begin, end] { fn(begin, end); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      if (err && !pending_error_) pending_error_ = err;
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace gx::util
