#include "genasmx/util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace gx::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    tasks_.push(Task{std::move(task), nullptr});
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (pending_error_) {
    std::exception_ptr err = std::exchange(pending_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t step = (n + chunks - 1) / chunks;
  // The group outlives every chunk because we block on it below, so the
  // workers may hold raw pointers into this frame.
  Group group;
  {
    std::lock_guard lock(mu_);
    for (std::size_t begin = 0; begin < n; begin += step) {
      const std::size_t end = std::min(begin + step, n);
      tasks_.push(Task{[&fn, begin, end] { fn(begin, end); }, &group});
      ++group.in_flight;
    }
  }
  cv_task_.notify_all();
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [&group] { return group.in_flight == 0; });
  if (group.error) {
    std::exception_ptr err = std::exchange(group.error, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr err;
    try {
      task.fn();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      if (task.group != nullptr) {
        if (err && !task.group->error) task.group->error = err;
        if (--task.group->in_flight == 0) cv_idle_.notify_all();
      } else {
        if (err && !pending_error_) pending_error_ = err;
        if (--in_flight_ == 0) cv_idle_.notify_all();
      }
    }
  }
}

}  // namespace gx::util
