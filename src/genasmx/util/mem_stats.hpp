#pragma once
// Instrumentation for the paper's two headline claims:
//   E3 — 24x reduction in DP memory *footprint*
//   E4 — 12x reduction in the *number of DP memory accesses*
//
// Aligner inner loops are templated on a counter policy so that the
// instrumented build pays the bookkeeping cost only when counting is
// requested; the default NullMemCounter compiles to nothing.

#include <cstddef>
#include <cstdint>

namespace gx::util {

/// Aggregated DP-memory statistics for one (or many) alignment problems.
struct MemStats {
  // Traffic to/from DP data structures, in individual word accesses.
  std::uint64_t dp_stores = 0;   ///< bitvector / cell words written
  std::uint64_t dp_loads = 0;    ///< bitvector / cell words read
  // Footprint accounting.
  std::uint64_t bytes_allocated = 0;  ///< total DP bytes requested
  std::uint64_t bytes_freed = 0;      ///< total DP bytes released
  std::uint64_t bytes_peak = 0;       ///< high-water mark of live DP bytes
  std::uint64_t problems = 0;         ///< number of window problems folded in
  // Scratch-arena accounting: heap growth events of the solvers' reusable
  // buffers. Steady state (warm arena, stable window geometry) must be 0
  // — the perf harness records this per window.
  std::uint64_t scratch_allocs = 0;  ///< arena grow events (heap reallocs)
  std::uint64_t scratch_bytes = 0;   ///< bytes added by arena growth
  // Work-shape accounting consumed by the GPU performance model.
  std::uint64_t dp_entries = 0;       ///< DP entries actually computed
  std::uint64_t wavefront_steps = 0;  ///< dependency chain length (columns +
                                      ///< levels per window problem)

  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return dp_stores + dp_loads;
  }

  /// Alloc/free symmetry: every solve must release exactly the logical DP
  /// bytes it claimed. Tests assert this after each solver entry point.
  [[nodiscard]] bool balanced() const noexcept {
    return bytes_allocated == bytes_freed;
  }

  MemStats& operator+=(const MemStats& o) noexcept {
    dp_stores += o.dp_stores;
    dp_loads += o.dp_loads;
    bytes_allocated += o.bytes_allocated;
    bytes_freed += o.bytes_freed;
    if (o.bytes_peak > bytes_peak) bytes_peak = o.bytes_peak;
    problems += o.problems;
    scratch_allocs += o.scratch_allocs;
    scratch_bytes += o.scratch_bytes;
    dp_entries += o.dp_entries;
    wavefront_steps += o.wavefront_steps;
    return *this;
  }
};

/// No-op policy: every call folds to nothing at -O2.
struct NullMemCounter {
  static constexpr bool enabled = false;
  void store(std::uint64_t = 1) noexcept {}
  void load(std::uint64_t = 1) noexcept {}
  void alloc(std::uint64_t) noexcept {}
  void free(std::uint64_t) noexcept {}
  void problem() noexcept {}
  void entry(std::uint64_t = 1) noexcept {}
  void wavefront(std::uint64_t) noexcept {}
  void scratch(std::uint64_t) noexcept {}
};

/// Counting policy: accumulates into a MemStats plus tracks live bytes for
/// the peak-footprint measurement.
class CountingMemCounter {
 public:
  static constexpr bool enabled = true;
  explicit CountingMemCounter(MemStats& sink) noexcept : sink_(&sink) {}

  void store(std::uint64_t n = 1) noexcept { sink_->dp_stores += n; }
  void load(std::uint64_t n = 1) noexcept { sink_->dp_loads += n; }
  void alloc(std::uint64_t bytes) noexcept {
    sink_->bytes_allocated += bytes;
    live_ += bytes;
    if (live_ > sink_->bytes_peak) sink_->bytes_peak = live_;
  }
  void free(std::uint64_t bytes) noexcept {
    sink_->bytes_freed += bytes;
    live_ = (bytes > live_) ? 0 : live_ - bytes;
  }
  void problem() noexcept { ++sink_->problems; }
  void entry(std::uint64_t n = 1) noexcept { sink_->dp_entries += n; }
  void wavefront(std::uint64_t steps) noexcept {
    sink_->wavefront_steps += steps;
  }
  void scratch(std::uint64_t bytes) noexcept {
    ++sink_->scratch_allocs;
    sink_->scratch_bytes += bytes;
  }

 private:
  MemStats* sink_;
  std::uint64_t live_ = 0;
};

}  // namespace gx::util
