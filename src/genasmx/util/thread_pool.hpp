#pragma once
// Minimal fixed-size thread pool with a blocking task queue plus a
// chunked parallel_for used to parallelize alignment batches.
//
// Alignment pairs are embarrassingly parallel (the paper runs 48 CPU
// threads); the pool keeps per-task overhead low by handing out index
// ranges rather than single indices.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gx::util {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue an arbitrary task. Fire and forget; use wait_idle() to join.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. If any task threw,
  /// rethrows the first captured exception here (on the waiting thread);
  /// the remaining tasks still ran to completion first, so the pool is
  /// reusable afterwards. Before this existed, a throwing task escaped
  /// worker_loop and took the whole process down via std::terminate.
  void wait_idle();

  /// Run fn(begin, end) over [0, n) split into `size()*4` chunks, blocking
  /// until completion. fn must be safe to call concurrently. Rethrows the
  /// first exception any chunk threw (see wait_idle); callers that need
  /// per-chunk isolation catch inside fn.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr pending_error_;  ///< first task throw, for wait_idle
};

}  // namespace gx::util
