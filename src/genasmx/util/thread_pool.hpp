#pragma once
// Minimal fixed-size thread pool with a blocking task queue plus a
// chunked parallel_for used to parallelize alignment batches.
//
// Alignment pairs are embarrassingly parallel (the paper runs 48 CPU
// threads); the pool keeps per-task overhead low by handing out index
// ranges rather than single indices.
//
// parallel_for is safe to call from several caller threads at once:
// each call tracks its own chunks in a per-call task group, so a
// caller only waits for (and only sees exceptions from) its own work.
// The server layer relies on this to share one AlignmentEngine across
// concurrent mapping sessions.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gx::util {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue an arbitrary task. Fire and forget; use wait_idle() to join.
  void submit(std::function<void()> task);

  /// Block until every group-less submitted task has finished. If any
  /// such task threw, rethrows the first captured exception here (on the
  /// waiting thread); the remaining tasks still ran to completion first,
  /// so the pool is reusable afterwards. Before this existed, a throwing
  /// task escaped worker_loop and took the whole process down via
  /// std::terminate. Tasks spawned by other callers' parallel_for are
  /// invisible here — their group owns them.
  void wait_idle();

  /// Run fn(begin, end) over [0, n) split into `size()*4` chunks, blocking
  /// until completion. fn must be safe to call concurrently. Rethrows the
  /// first exception any chunk threw (see wait_idle); callers that need
  /// per-chunk isolation catch inside fn. Concurrent calls from different
  /// threads are independent: each waits only for its own chunks.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  /// One parallel_for call's accounting, stack-allocated by the caller.
  struct Group {
    std::size_t in_flight = 0;
    std::exception_ptr error;  ///< first chunk throw in this group
  };

  struct Task {
    std::function<void()> fn;
    Group* group = nullptr;  ///< nullptr = global (submit/wait_idle)
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;  ///< group-less tasks only
  bool stop_ = false;
  std::exception_ptr pending_error_;  ///< first group-less throw
};

}  // namespace gx::util
