#pragma once
// Minimal fixed-size thread pool with a blocking task queue plus a
// chunked parallel_for used to parallelize alignment batches.
//
// Alignment pairs are embarrassingly parallel (the paper runs 48 CPU
// threads); the pool keeps per-task overhead low by handing out index
// ranges rather than single indices.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gx::util {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue an arbitrary task. Fire and forget; use wait_idle() to join.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run fn(begin, end) over [0, n) split into `size()*4` chunks, blocking
  /// until completion. fn must be safe to call concurrently.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace gx::util
