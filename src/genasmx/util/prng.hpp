#pragma once
// Deterministic, fast pseudo-random number generation (xoshiro256**).
//
// All stochastic components of the library (read simulation, test case
// generation, benchmark workloads) draw from this generator so that every
// experiment is reproducible from a single 64-bit seed.

#include <cstdint>
#include <limits>

namespace gx::util {

/// splitmix64: used to expand a single seed into xoshiro's state.
constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna: 256-bit state, passes BigCrush,
/// ~1 ns per draw. Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9b1f63a4c0ffee42ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift reduction
  /// (slightly biased for astronomically large bounds; fine for workloads).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  constexpr bool chance(double p) noexcept { return uniform01() < p; }

  /// Fork an independent stream (for per-thread / per-read determinism).
  constexpr Xoshiro256 fork() noexcept {
    return Xoshiro256(operator()() ^ 0xd1b54a32d192ed03ULL);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace gx::util
