#include "genasmx/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>

namespace gx::util {

Summary::Summary(std::size_t max_samples) : cap_(max_samples) {
  samples_.reserve(std::min<std::size_t>(max_samples, 4096));
}

void Summary::add(double x) {
  ++n_;
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);

  if (samples_.size() < cap_) {
    samples_.push_back(x);
    sorted_ = false;
  } else {
    // xorshift64* for reservoir index selection.
    rng_state_ ^= rng_state_ >> 12;
    rng_state_ ^= rng_state_ << 25;
    rng_state_ ^= rng_state_ >> 27;
    const std::uint64_t r = rng_state_ * 0x2545f4914f6cdd1dULL;
    const std::size_t idx = static_cast<std::size_t>(r % n_);
    if (idx < cap_) {
      samples_[idx] = x;
      sorted_ = false;
    }
  }
}

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (double s : other.samples_) {
    if (samples_.size() < cap_) samples_.push_back(s);
  }
  sorted_ = false;
}

double Summary::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos =
      (q / 100.0) * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string Summary::str() const {
  std::ostringstream os;
  os << "n=" << n_ << " mean=" << mean() << " sd=" << stddev()
     << " min=" << min() << " p50=" << percentile(50) << " p95="
     << percentile(95) << " max=" << max();
  return os.str();
}

}  // namespace gx::util
