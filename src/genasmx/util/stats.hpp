#pragma once
// Streaming summary statistics used by benchmarks (throughput tables,
// latency percentiles) and by readsim's self-tests.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gx::util {

/// Online mean / variance (Welford) plus exact percentiles over retained
/// samples. Retention is bounded; beyond the cap, reservoir sampling keeps
/// percentile estimates unbiased.
class Summary {
 public:
  explicit Summary(std::size_t max_samples = 1 << 20);

  void add(double x);
  void merge(const Summary& other);

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Exact percentile over retained samples, q in [0,100].
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// One-line human readable rendering ("n=.. mean=.. p50=.. p95=..").
  [[nodiscard]] std::string str() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::size_t cap_;
  mutable std::vector<double> samples_;  // sorted lazily by percentile()
  mutable bool sorted_ = true;
  std::uint64_t rng_state_ = 0x2545f4914f6cdd1dULL;  // for reservoir sampling
};

}  // namespace gx::util
