#include "genasmx/ksw/ksw_affine.hpp"

#include <algorithm>
#include <limits>

namespace gx::ksw {
namespace {

constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 4;

struct Band {
  // For target row i, query columns [lo(i), hi(i)] are inside the band.
  int dlo, dhi;  // j - i in [dlo, dhi]
  int m;         // query length

  [[nodiscard]] int lo(int i) const noexcept { return std::max(0, i + dlo); }
  [[nodiscard]] int hi(int i) const noexcept { return std::min(m, i + dhi); }
};

Band makeBand(int n, int m, int band) {
  Band b;
  b.m = m;
  if (band < 0) {
    b.dlo = -n;
    b.dhi = m;
  } else {
    b.dlo = std::min(0, m - n) - band;
    b.dhi = std::max(0, m - n) + band;
  }
  return b;
}

}  // namespace

int KswAligner::score(std::string_view target, std::string_view query) {
  const int n = static_cast<int>(target.size());
  const int m = static_cast<int>(query.size());
  const auto& p = cfg_.params;
  if (m == 0) return n == 0 ? 0 : -(p.gap_open + p.gap_extend * n);
  if (n == 0) return -(p.gap_open + p.gap_extend * m);
  const Band band = makeBand(n, m, cfg_.band);

  // h_[j] = H(i-1, j) at loop entry (kNegInf outside the previous band);
  // e_[j] = E(i-1, j). hcur_ receives row i.
  h_.assign(m + 1, kNegInf);
  e_.assign(m + 1, kNegInf);
  hcur_.assign(m + 1, kNegInf);
  h_[0] = 0;
  for (int j = 1; j <= band.hi(0); ++j) {
    h_[j] = -(p.gap_open + p.gap_extend * j);
  }
  for (int i = 1; i <= n; ++i) {
    const int lo = band.lo(i);
    const int hi = band.hi(i);
    // Clear only the band slice (plus one-cell margins) of the buffer
    // being reused; cells further out are never read (bands move right
    // monotonically), keeping banded rows O(band), not O(m).
    std::fill(hcur_.begin() + std::max(0, lo - 1),
              hcur_.begin() + std::min(m, hi + 1) + 1, kNegInf);
    if (lo == 0) hcur_[0] = -(p.gap_open + p.gap_extend * i);
    std::int32_t f = kNegInf;
    for (int j = std::max(1, lo); j <= hi; ++j) {
      const std::int32_t e_open =
          h_[j] == kNegInf ? kNegInf : h_[j] - p.gap_open - p.gap_extend;
      const std::int32_t e_ext =
          e_[j] == kNegInf ? kNegInf : e_[j] - p.gap_extend;
      const std::int32_t e_val = std::max(e_open, e_ext);
      const std::int32_t f_open =
          hcur_[j - 1] == kNegInf ? kNegInf
                                  : hcur_[j - 1] - p.gap_open - p.gap_extend;
      f = std::max(f == kNegInf ? kNegInf : f - p.gap_extend, f_open);
      const std::int32_t d0 = h_[j - 1];
      const std::int32_t dscore =
          d0 == kNegInf
              ? kNegInf
              : d0 + (target[i - 1] == query[j - 1] ? p.match : -p.mismatch);
      hcur_[j] = std::max({dscore, e_val, f});
      e_[j] = e_val;
    }
    std::swap(h_, hcur_);
  }
  return h_[m] <= kNegInf / 2 ? kNegInf : h_[m];
}

common::AlignmentResult KswAligner::align(std::string_view target,
                                          std::string_view query) {
  const int n = static_cast<int>(target.size());
  const int m = static_cast<int>(query.size());
  const auto& p = cfg_.params;
  common::AlignmentResult res;
  if (m == 0 || n == 0) {
    res.ok = true;
    if (n > 0) {
      res.cigar.push(common::EditOp::Deletion, static_cast<std::uint32_t>(n));
      res.score = -(p.gap_open + p.gap_extend * n);
    } else if (m > 0) {
      res.cigar.push(common::EditOp::Insertion, static_cast<std::uint32_t>(m));
      res.score = -(p.gap_open + p.gap_extend * m);
    }
    res.edit_distance = static_cast<int>(res.cigar.editDistance());
    return res;
  }

  const Band band = makeBand(n, m, cfg_.band);
  const int width = band.dhi - band.dlo + 1;  // banded row width
  auto dirIndex = [&](int i, int j) {
    return static_cast<std::size_t>(i - 1) * width + (j - i - band.dlo);
  };
  dir_.assign(static_cast<std::size_t>(n) * width, 0);

  // Full H/E rows with band masking (kNegInf outside).
  std::vector<std::int32_t> hrow(m + 1, kNegInf), erow(m + 1, kNegInf);
  std::vector<std::int32_t> hprev(m + 1, kNegInf);
  hrow[0] = 0;
  for (int j = 1; j <= band.hi(0); ++j) {
    hrow[j] = -(p.gap_open + p.gap_extend * j);
  }
  for (int i = 1; i <= n; ++i) {
    std::swap(hprev, hrow);
    const int lo = band.lo(i);
    const int hi = band.hi(i);
    std::fill(hrow.begin() + std::max(0, lo - 1),
              hrow.begin() + std::min(m, hi + 1) + 1, kNegInf);
    if (lo == 0) hrow[0] = -(p.gap_open + p.gap_extend * i);
    std::int32_t f = kNegInf;
    for (int j = std::max(1, lo); j <= hi; ++j) {
      std::uint8_t dir = 0;
      // E (vertical gap, consumes target).
      const std::int32_t e_open = hprev[j] == kNegInf
                                      ? kNegInf
                                      : hprev[j] - p.gap_open - p.gap_extend;
      const std::int32_t e_ext =
          erow[j] == kNegInf ? kNegInf : erow[j] - p.gap_extend;
      const std::int32_t e_val = std::max(e_open, e_ext);
      if (e_ext > e_open) dir |= 4;  // E extends
      // F (horizontal gap, consumes query).
      const std::int32_t f_open = hrow[j - 1] == kNegInf
                                      ? kNegInf
                                      : hrow[j - 1] - p.gap_open - p.gap_extend;
      const std::int32_t f_ext = f == kNegInf ? kNegInf : f - p.gap_extend;
      f = std::max(f_open, f_ext);
      if (f_ext > f_open) dir |= 8;  // F extends
      // Diagonal.
      const std::int32_t d0 = hprev[j - 1];
      const std::int32_t dscore =
          d0 == kNegInf
              ? kNegInf
              : d0 + (target[i - 1] == query[j - 1] ? p.match : -p.mismatch);
      std::int32_t hval = dscore;  // dir 0 = diag (preferred on ties)
      if (e_val > hval) {
        hval = e_val;
        dir = (dir & ~3u) | 1;
      }
      if (f > hval) {
        hval = f;
        dir = (dir & ~3u) | 2;
      }
      hrow[j] = hval;
      erow[j] = e_val;
      dir_[dirIndex(i, j)] = dir;
    }
    // Mask stale E values outside the band for the next row.
    if (lo > 0) erow[lo - 1] = kNegInf;
  }
  if (hrow[m] <= kNegInf / 2) return res;  // band never reached the corner
  res.score = hrow[m];

  // Traceback across the three-layer automaton.
  enum Layer { LH, LE, LF };
  Layer layer = LH;
  int i = n, j = m;
  std::vector<common::CigarUnit> rev;
  auto pushRev = [&rev](common::EditOp op) {
    if (!rev.empty() && rev.back().op == op) {
      ++rev.back().len;
    } else {
      rev.push_back({op, 1});
    }
  };
  while (i > 0 || j > 0) {
    if (i == 0) {
      pushRev(common::EditOp::Insertion);
      --j;
      continue;
    }
    if (j == 0) {
      pushRev(common::EditOp::Deletion);
      --i;
      continue;
    }
    const std::uint8_t dir = dir_[dirIndex(i, j)];
    if (layer == LH) {
      switch (dir & 3) {
        case 0: {
          const bool eq = target[i - 1] == query[j - 1];
          pushRev(eq ? common::EditOp::Match : common::EditOp::Mismatch);
          --i;
          --j;
          break;
        }
        case 1:
          layer = LE;
          break;
        default:
          layer = LF;
          break;
      }
      continue;
    }
    if (layer == LE) {
      pushRev(common::EditOp::Deletion);  // vertical gap consumes target
      layer = (dir & 4) ? LE : LH;
      --i;
      continue;
    }
    // LF
    pushRev(common::EditOp::Insertion);
    layer = (dir & 8) ? LF : LH;
    --j;
  }
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
    res.cigar.push(it->op, it->len);
  }
  res.ok = true;
  res.edit_distance = static_cast<int>(res.cigar.editDistance());
  return res;
}

int kswScore(std::string_view target, std::string_view query,
             const KswConfig& cfg) {
  KswAligner aligner(cfg);
  return aligner.score(target, query);
}

common::AlignmentResult kswAlign(std::string_view target,
                                 std::string_view query,
                                 const KswConfig& cfg) {
  KswAligner aligner(cfg);
  return aligner.align(target, query);
}

}  // namespace gx::ksw
