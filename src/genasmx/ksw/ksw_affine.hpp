#pragma once
// KSW2-class aligner: banded global alignment with affine gap costs
// (Gotoh three-state recurrence), the algorithm minimap2 uses for base-
// level alignment of chained candidates (Suzuki & Kasahara 2018, Li 2018).
//
// This reimplements the published algorithm's semantics — global affine
// DP restricted to a diagonal band, with full traceback — with a scalar
// kernel. KSW2 itself adds SIMD striping on top of the same recurrence;
// that constant factor is documented in EXPERIMENTS.md when comparing
// against the paper's measured speedups.

#include <cstdint>
#include <string_view>
#include <vector>

#include "genasmx/common/cigar.hpp"
#include "genasmx/refdp/affine_dp.hpp"

namespace gx::ksw {

struct KswConfig {
  refdp::AffineParams params{};
  /// Band half-width around the main diagonal (after correcting for the
  /// length difference). -1 disables banding (exact full DP).
  int band = -1;
};

/// Global affine score (no traceback). With banding the result is exact
/// whenever the optimal path stays inside the band, otherwise a lower
/// bound — the same contract as ksw2 with a fixed bandwidth.
[[nodiscard]] int kswScore(std::string_view target, std::string_view query,
                           const KswConfig& cfg = {});

/// Global affine alignment with traceback.
[[nodiscard]] common::AlignmentResult kswAlign(std::string_view target,
                                               std::string_view query,
                                               const KswConfig& cfg = {});

/// Reusable-buffer aligner for batch workloads.
class KswAligner {
 public:
  explicit KswAligner(KswConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] int score(std::string_view target, std::string_view query);
  [[nodiscard]] common::AlignmentResult align(std::string_view target,
                                              std::string_view query);

  [[nodiscard]] const KswConfig& config() const noexcept { return cfg_; }

 private:
  /// Direction byte per banded cell:
  ///   bits 0-1: source of H (0 diag, 1 E=vertical gap, 2 F=horizontal gap)
  ///   bit 2: E extends an existing vertical gap
  ///   bit 3: F extends an existing horizontal gap
  KswConfig cfg_;
  std::vector<std::int32_t> h_, e_, hcur_;
  std::vector<std::uint8_t> dir_;
};

}  // namespace gx::ksw
