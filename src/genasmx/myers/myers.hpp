#pragma once
// Edlib-class aligner: Myers (1999) block bit-parallel edit distance in
// the Hyyro formulation, with an Ukkonen band over 64-row blocks and
// Edlib-style band doubling, plus a block-based global traceback.
//
// This is the from-scratch reimplementation of the "Edlib" baseline the
// paper benchmarks against (Sosic & Sikic, Bioinformatics 2017): same
// inner loop (calculateBlock), same banding strategy, same O(n*d/64)
// asymptotics for distance and alignment.
//
// Orientation: the *query* is the vertical (bit-parallel) dimension, the
// *target* is processed column by column. Alignment mode is global (NW).

#include <cstdint>
#include <string_view>
#include <vector>

#include "genasmx/common/cigar.hpp"

namespace gx::myers {

/// Tuning knobs; defaults mirror Edlib's behaviour.
struct MyersConfig {
  /// First band half-width tried; -1 selects max(64, |n-m| rounded up).
  int initial_k = -1;
  /// Hard cap on the band; -1 means "up to max(n, m)" (always succeeds).
  int max_k = -1;
};

/// Global (NW) edit distance. Returns -1 only if cfg.max_k is set and the
/// distance exceeds it.
[[nodiscard]] int myersDistance(std::string_view target,
                                std::string_view query,
                                const MyersConfig& cfg = {});

/// Global (NW) alignment with traceback.
[[nodiscard]] common::AlignmentResult myersAlign(std::string_view target,
                                                 std::string_view query,
                                                 const MyersConfig& cfg = {});

/// Reusable-buffer aligner for batch workloads (benchmarks).
class MyersAligner {
 public:
  explicit MyersAligner(MyersConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] int distance(std::string_view target, std::string_view query);
  [[nodiscard]] common::AlignmentResult align(std::string_view target,
                                              std::string_view query);

 private:
  struct ColumnTrace {
    std::uint32_t offset;  ///< index into pv_/mv_/anchor_ storage
    std::int32_t b_lo;
    std::int32_t b_hi;
  };

  /// One banded run over the whole target. If Trace is true, per-column
  /// Pv/Mv and per-block bottom-score anchors are recorded for traceback.
  /// Returns the bottom-right score, or -1 if it exceeds k.
  template <bool Trace>
  int run(std::string_view target, std::string_view query, int k);

  /// Exact cell value D(i, j) reconstructed from the recorded trace; cells
  /// above the recorded band return a large sentinel (kInf).
  [[nodiscard]] int cellValue(int i, int j) const;

  void buildEq(std::string_view query);
  bool traceback(std::string_view target, std::string_view query,
                 common::Cigar& cigar) const;

  MyersConfig cfg_;
  int m_ = 0;        ///< query length
  int blocks_ = 0;   ///< ceil(m/64)
  std::vector<std::uint64_t> eq_;  ///< [block*4 + base] match masks
  // Live band state for one run.
  std::vector<std::uint64_t> pv_, mv_;
  std::vector<int> anchors_;  ///< score at each block's bottom row
  // Trace storage (align mode).
  std::vector<ColumnTrace> cols_;
  std::vector<std::uint64_t> tpv_, tmv_;
  std::vector<std::int32_t> tanchor_;
};

}  // namespace gx::myers
