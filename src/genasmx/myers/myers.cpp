#include "genasmx/myers/myers.hpp"

#include <algorithm>
#include <cstdlib>

#include "genasmx/common/sequence.hpp"

namespace gx::myers {
namespace {

constexpr int kInf = 1 << 29;
constexpr std::uint64_t kHighBit = 1ULL << 63;

/// Edlib's calculateBlock (Hyyro's formulation of Myers' recurrence).
/// Advances one 64-row block by one text column. hin/hout are the
/// horizontal deltas entering the block top / leaving the block bottom.
inline int advanceBlock(std::uint64_t& pv, std::uint64_t& mv,
                        std::uint64_t eq, int hin, std::uint64_t& ph_out,
                        std::uint64_t& mh_out) noexcept {
  const std::uint64_t xv = eq | mv;
  eq |= static_cast<std::uint64_t>(hin < 0);
  const std::uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
  std::uint64_t ph = mv | ~(xh | pv);
  std::uint64_t mh = pv & xh;
  int hout = 0;
  if (ph & kHighBit) hout = 1;
  if (mh & kHighBit) hout = -1;
  ph_out = ph;  // pre-shift deltas: bit r = h-delta at pattern row 64b+r+1
  mh_out = mh;
  ph <<= 1;
  mh <<= 1;
  mh |= static_cast<std::uint64_t>(hin < 0);
  ph |= static_cast<std::uint64_t>(hin > 0);
  pv = mh | ~(xv | ph);
  mv = ph & xv;
  return hout;
}

}  // namespace

void MyersAligner::buildEq(std::string_view query) {
  m_ = static_cast<int>(query.size());
  blocks_ = (m_ + 63) / 64;
  eq_.assign(static_cast<std::size_t>(blocks_) * 4, 0);
  for (int i = 0; i < m_; ++i) {
    const int b = i / 64;
    const int base = common::baseCode(query[i]);
    eq_[static_cast<std::size_t>(b) * 4 + base] |= 1ULL << (i % 64);
  }
}

template <bool Trace>
int MyersAligner::run(std::string_view target, std::string_view query, int k) {
  const int n = static_cast<int>(target.size());
  (void)query;
  pv_.assign(blocks_, 0);
  mv_.assign(blocks_, 0);
  anchors_.assign(blocks_, 0);
  if constexpr (Trace) {
    cols_.clear();
    cols_.reserve(n);
    tpv_.clear();
    tmv_.clear();
    tanchor_.clear();
  }

  auto bottomRow = [&](int b) { return std::min(64 * (b + 1), m_); };

  int cur_lo = 0;
  int cur_hi = -1;
  for (int j = 1; j <= n; ++j) {
    const int lo_row = j - k;
    const int hi_row = j + k;
    const int new_lo = lo_row <= 1 ? 0 : (lo_row - 1) / 64;
    const int new_hi = hi_row >= m_ ? blocks_ - 1 : (hi_row - 1) / 64;
    // Grow the band at the bottom: fresh blocks start as all-(+1)
    // vertical deltas, consistent with treating out-of-band cells
    // pessimistically.
    for (int b = cur_hi + 1; b <= new_hi; ++b) {
      pv_[b] = ~0ULL;
      mv_[b] = 0;
      anchors_[b] = b == 0 ? bottomRow(0)
                           : anchors_[b - 1] + (bottomRow(b) - bottomRow(b - 1));
    }
    cur_hi = std::max(cur_hi, new_hi);
    cur_lo = std::max(cur_lo, new_lo);

    const int code = common::baseCode(target[j - 1]);
    int hin = 1;  // exact at row 0; pessimistic once the band top dropped
    const std::uint32_t offset = static_cast<std::uint32_t>(tpv_.size());
    for (int b = cur_lo; b <= cur_hi; ++b) {
      std::uint64_t ph, mh;
      const int hout =
          advanceBlock(pv_[b], mv_[b],
                       eq_[static_cast<std::size_t>(b) * 4 + code], hin, ph, mh);
      const int bbit = (bottomRow(b) - 1) & 63;
      anchors_[b] +=
          static_cast<int>((ph >> bbit) & 1) - static_cast<int>((mh >> bbit) & 1);
      hin = hout;
      if constexpr (Trace) {
        tpv_.push_back(pv_[b]);
        tmv_.push_back(mv_[b]);
        tanchor_.push_back(anchors_[b]);
      }
    }
    if constexpr (Trace) {
      cols_.push_back(ColumnTrace{offset, cur_lo, cur_hi});
    }
  }

  if (cur_hi != blocks_ - 1) return -1;  // band never reached the last row
  const int score = anchors_[blocks_ - 1];
  return score <= k ? score : -1;
}

int MyersAligner::distance(std::string_view target, std::string_view query) {
  const int n = static_cast<int>(target.size());
  const int m = static_cast<int>(query.size());
  if (m == 0) return n;
  if (n == 0) return m;
  buildEq(query);

  const int diff = std::abs(n - m);
  const int k_ceiling =
      cfg_.max_k >= 0 ? cfg_.max_k : std::max(n, m);
  if (k_ceiling < diff) return -1;
  int k = cfg_.initial_k > 0 ? cfg_.initial_k : std::max(64, diff);
  k = std::max(k, diff);
  k = std::min(k, k_ceiling);
  for (;;) {
    const int d = run<false>(target, query, k);
    if (d >= 0) return d;
    if (k >= k_ceiling) return -1;
    k = std::min(k * 2, k_ceiling);
  }
}

int MyersAligner::cellValue(int i, int j) const {
  if (j == 0) return i;
  if (i == 0) return j;
  const ColumnTrace& ct = cols_[static_cast<std::size_t>(j - 1)];
  const int b = (i - 1) / 64;
  if (b < ct.b_lo || b > ct.b_hi) return kInf;
  const std::size_t idx = ct.offset + static_cast<std::size_t>(b - ct.b_lo);
  const int bottom = std::min(64 * (b + 1), m_);
  int v = tanchor_[idx];
  const std::uint64_t pv = tpv_[idx];
  const std::uint64_t mv = tmv_[idx];
  for (int r = bottom; r > i; --r) {
    const int bit = (r - 1) & 63;
    v -= static_cast<int>((pv >> bit) & 1) - static_cast<int>((mv >> bit) & 1);
  }
  return v;
}

bool MyersAligner::traceback(std::string_view target, std::string_view query,
                             common::Cigar& cigar) const {
  int i = m_;
  int j = static_cast<int>(target.size());
  int v = cellValue(i, j);
  std::vector<common::CigarUnit> rev;
  auto pushRev = [&rev](common::EditOp op) {
    if (!rev.empty() && rev.back().op == op) {
      ++rev.back().len;
    } else {
      rev.push_back({op, 1});
    }
  };
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0) {
      const int diag = cellValue(i - 1, j - 1);
      const bool eqc = target[j - 1] == query[i - 1];
      if (eqc && diag == v) {
        pushRev(common::EditOp::Match);
        --i;
        --j;
        v = diag;
        continue;
      }
      if (diag + 1 == v) {
        pushRev(common::EditOp::Mismatch);
        --i;
        --j;
        v = diag;
        continue;
      }
    }
    if (i > 0 && cellValue(i - 1, j) + 1 == v) {
      pushRev(common::EditOp::Insertion);  // consumes query only
      --i;
      --v;
      continue;
    }
    if (j > 0 && cellValue(i, j - 1) + 1 == v) {
      pushRev(common::EditOp::Deletion);  // consumes target only
      --j;
      --v;
      continue;
    }
    return false;  // inconsistent trace (must not happen)
  }
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
    cigar.push(it->op, it->len);
  }
  return true;
}

common::AlignmentResult MyersAligner::align(std::string_view target,
                                            std::string_view query) {
  common::AlignmentResult res;
  const int n = static_cast<int>(target.size());
  const int m = static_cast<int>(query.size());
  if (m == 0 || n == 0) {
    res.ok = true;
    res.edit_distance = std::max(n, m);
    res.score = -res.edit_distance;
    if (n > 0) {
      res.cigar.push(common::EditOp::Deletion, static_cast<std::uint32_t>(n));
    } else if (m > 0) {
      res.cigar.push(common::EditOp::Insertion, static_cast<std::uint32_t>(m));
    }
    return res;
  }
  const int d = distance(target, query);
  if (d < 0) return res;
  // One more banded pass with k = d records exactly the trace the
  // traceback needs (all cells on optimal paths are exact within the band).
  const int traced = run<true>(target, query, std::max(d, 1));
  if (traced != d) return res;
  if (!traceback(target, query, res.cigar)) return res;
  res.ok = true;
  res.edit_distance = d;
  res.score = -d;
  return res;
}

int myersDistance(std::string_view target, std::string_view query,
                  const MyersConfig& cfg) {
  const int n = static_cast<int>(target.size());
  const int m = static_cast<int>(query.size());
  if (m == 0) return n;
  if (n == 0) return m;
  MyersAligner aligner(cfg);
  return aligner.distance(target, query);
}

common::AlignmentResult myersAlign(std::string_view target,
                                   std::string_view query,
                                   const MyersConfig& cfg) {
  MyersAligner aligner(cfg);
  return aligner.align(target, query);
}

}  // namespace gx::myers
