#include "genasmx/mapper/mapper.hpp"

#include <algorithm>
#include <stdexcept>

#include "genasmx/common/sequence.hpp"
#include "genasmx/mapper/minimizer.hpp"

namespace gx::mapper {

Mapper::Mapper(refmodel::Reference ref, MapperConfig cfg,
               util::ThreadPool* index_pool)
    : cfg_(cfg) {
  cfg_.chain.kmer = cfg_.k;
  auto owned = std::make_unique<Owned>();
  owned->ref = std::move(ref);
  owned->index.build(owned->ref, cfg_.k, cfg_.w, cfg_.max_occ, index_pool);
  view_ = owned->index.view(owned->ref);
  owned_ = std::move(owned);
}

Mapper::Mapper(std::string genome, MapperConfig cfg)
    : Mapper(refmodel::Reference("ref", std::move(genome)), cfg) {}

Mapper::Mapper(IndexView view, MapperConfig cfg) : cfg_(cfg), view_(view) {
  if (!view_.valid()) {
    throw std::invalid_argument("Mapper: invalid IndexView");
  }
  // Seeding must extract read minimizers with the same k/w the index was
  // built with, and the occurrence cap is baked into the stored arrays.
  cfg_.k = view_.k();
  cfg_.w = view_.w();
  cfg_.max_occ = view_.maxOcc();
  cfg_.chain.kmer = cfg_.k;
}

std::vector<Candidate> Mapper::map(std::string_view read) const {
  std::vector<Minimizer> mins;
  return map(read, mins);
}

std::vector<Candidate> Mapper::map(std::string_view read,
                                   std::vector<Minimizer>& mins_out) const {
  std::vector<Candidate> out;
  mins_out = extractMinimizers(read, cfg_.k, cfg_.w);
  const auto& read_mins = mins_out;
  if (read_mins.empty()) return out;
  const refmodel::Reference& ref = reference();

  // Split anchors by relative strand. For minus-strand anchors, flip the
  // read coordinate so chaining sees a co-linear picture. Anchors carry
  // their contig id so the chaining DP can reject cross-contig pairs.
  std::vector<Anchor> fwd, rev;
  const std::uint32_t rl = static_cast<std::uint32_t>(read.size());
  for (const auto& m : read_mins) {
    for (const auto& hit : view_.lookup(m.key)) {
      const std::uint32_t contig = ref.contigOf(hit.pos);
      const bool opposite = hit.reverse != m.reverse;
      if (!opposite) {
        fwd.push_back(Anchor{m.pos, hit.pos, contig});
      } else {
        rev.push_back(Anchor{
            rl - m.pos - static_cast<std::uint32_t>(cfg_.k), hit.pos, contig});
      }
    }
  }

  auto emit = [&](std::vector<Anchor> anchors, bool reverse) {
    for (const Chain& c : chainAnchors(std::move(anchors), cfg_.chain)) {
      const refmodel::Contig& contig = ref.contig(c.contig);
      Candidate cand;
      cand.contig = c.contig;
      cand.reverse = reverse;
      cand.score = c.score;
      cand.anchors = c.anchors;
      cand.read_begin = c.read_begin;
      cand.read_end = std::min<std::size_t>(c.read_end, read.size());
      // Extend the chain's reference span by the unchained read flanks
      // plus a fixed margin, clamped to the chain's contig: a candidate
      // window never spans a contig boundary.
      const std::size_t local_begin = c.ref_begin - contig.offset;
      const std::size_t local_end = c.ref_end - contig.offset;
      const std::size_t left_flank = c.read_begin + cfg_.margin;
      const std::size_t right_flank =
          (read.size() - c.read_end) + cfg_.margin;
      cand.ref_begin = local_begin > left_flank ? local_begin - left_flank : 0;
      cand.ref_end = std::min(contig.length, local_end + right_flank);
      out.push_back(cand);
    }
  };
  emit(std::move(fwd), false);
  emit(std::move(rev), true);
  std::sort(out.begin(), out.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });
  return out;
}

std::vector<AlignmentPair> buildAlignmentPairs(const Mapper& mapper,
                                               std::string_view read,
                                               std::size_t max_candidates) {
  std::vector<AlignmentPair> pairs;
  const auto candidates = mapper.map(read);
  const std::size_t n = std::min(candidates.size(), max_candidates);
  pairs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Candidate& c = candidates[i];
    AlignmentPair p;
    p.target = std::string(mapper.candidateText(c));
    p.query = c.reverse ? common::reverseComplement(read) : std::string(read);
    pairs.push_back(std::move(p));
  }
  return pairs;
}

}  // namespace gx::mapper
