#pragma once
// On-disk minimizer index: a versioned, checksummed, flat-POD file
// format written once by `genasmx_index` and reopened zero-copy via
// mmap, so mapping a genome-scale reference cold-starts in milliseconds
// instead of paying a full FASTA parse + index build per invocation
// (shasta's MemoryMapped::Vector idiom: container-shaped views over
// flat sections, built multithreaded, reopened read-only, one physical
// copy shared by N processes through the page cache).
//
// Layout (all integers little-endian host order, every section 64-byte
// aligned, zero padding between sections):
//
//   [0, 128)   IndexFileHeader   magic, version, endianness marker,
//                                k/w/max_occ, section offsets, sizes,
//                                payload + header checksums
//   contigs    IndexContigRecord[n_contigs]   per-contig section
//                                offsets: name-pool slice and sequence-
//                                section slice (the natural shard
//                                boundaries for future per-contig index
//                                files)
//   kept       uint64[n_contigs]  kept minimizers per contig
//   names      contig name pool (bytes, not NUL-terminated)
//   seq        reference backing buffer (contigs concatenated)
//   keys       uint64[n_entries]  sorted minimizer keys
//   values     uint64[n_entries]  pos << 1 | strand, same order
//
// The loader (MappedIndex) validates magic, endianness, version, both
// checksums, the declared file size, and every section bound before
// exposing anything, and rejects mismatches with actionable errors
// (IndexIoError). Because keys/values are mapped verbatim, an index
// served from disk answers every lookup identically to the
// MinimizerIndex it was written from — the byte-identical-PAF contract.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "genasmx/common/error.hpp"
#include "genasmx/io/mmap_file.hpp"
#include "genasmx/mapper/index.hpp"
#include "genasmx/mapper/index_view.hpp"
#include "genasmx/refmodel/reference.hpp"

namespace gx::mapper {

inline constexpr char kIndexMagic[8] = {'G', 'X', 'M', 'I',
                                        'N', 'I', 'D', 'X'};
inline constexpr std::uint32_t kIndexFormatVersion = 1;
inline constexpr std::uint32_t kIndexEndianMarker = 0x01020304u;
inline constexpr std::size_t kIndexSectionAlign = 64;

/// Fixed 128-byte file header. POD on purpose: it is memcpy'd straight
/// out of the mapping.
struct IndexFileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian;  ///< kIndexEndianMarker as written by the host
  std::uint32_t k;
  std::uint32_t w;
  std::uint32_t max_occ;
  std::uint32_t reserved32;
  std::uint64_t n_entries;
  std::uint64_t n_contigs;
  // The contig record section always starts at byte 128 (right after
  // this header); the remaining sections carry explicit offsets.
  std::uint64_t kept_off;
  std::uint64_t names_off;
  std::uint64_t names_bytes;
  std::uint64_t seq_off;
  std::uint64_t seq_bytes;
  std::uint64_t keys_off;
  std::uint64_t values_off;
  std::uint64_t file_bytes;     ///< total expected file size
  std::uint64_t payload_hash;   ///< FNV-1a64 over [128, file_bytes)
  std::uint64_t header_hash;    ///< FNV-1a64 over header, hash fields 0
};
static_assert(sizeof(IndexFileHeader) == 128,
              "IndexFileHeader must stay exactly 128 bytes (format v1)");

/// One contig's slice of the name pool and sequence section — the
/// per-contig section offsets that make future index sharding a matter
/// of slicing, not reformatting.
struct IndexContigRecord {
  std::uint64_t name_off;  ///< into the name pool
  std::uint64_t name_len;
  std::uint64_t seq_off;   ///< into the sequence section (== global coord)
  std::uint64_t seq_len;
  std::uint64_t reserved[4];
};
static_assert(sizeof(IndexContigRecord) == 64,
              "IndexContigRecord must stay exactly 64 bytes (format v1)");

/// Thrown for every malformed-file condition (bad magic, version or
/// endianness mismatch, truncation, checksum failure, inconsistent
/// section table) and for write failures. The message always says what
/// was wrong and what to do about it. Part of the structured error
/// taxonomy: malformed files carry kMalformedInput, write/environment
/// failures kIoFatal, so a server can refuse a bad index upload without
/// treating it like a dying disk.
class IndexIoError : public common::Error {
 public:
  explicit IndexIoError(
      const std::string& message,
      common::ErrorCode code = common::ErrorCode::kMalformedInput,
      common::ErrorContext ctx = {})
      : common::Error(code, message, std::move(ctx)) {}
};

/// Serialize `index` (built over `ref`) to `path`. Overwrites an
/// existing file. Throws IndexIoError on I/O failure or if the index
/// and reference disagree on contig count.
void writeIndexFile(const std::string& path, const MinimizerIndex& index,
                    const refmodel::Reference& ref);

struct MappedIndexOptions {
  /// Verify the payload checksum at open. The scan runs at memory
  /// bandwidth — still orders of magnitude cheaper than a rebuild —
  /// but it faults in every page, so genuinely lazy cold starts on
  /// huge indexes may opt out (the header checksum is always checked).
  bool verify_payload = true;
};

/// A minimizer index served zero-copy from a mmap'd file. Owns the
/// mapping and the (externally backed) Reference over its sequence
/// section; view() is the same IndexView surface MinimizerIndex::view()
/// returns, so Mapper/MappingPipeline cannot tell the two apart.
///
/// Not movable: the view points into the object. Hold it directly or
/// behind a unique_ptr, and keep it alive as long as any view copy.
class MappedIndex {
 public:
  using Options = MappedIndexOptions;

  /// Open and validate `path`. Throws IndexIoError with an actionable
  /// message on any mismatch (see class comment on the format).
  explicit MappedIndex(const std::string& path, Options opt = {});

  /// Validate and serve an already-opened mapping (or an in-memory
  /// buffer via MappedFile::fromBytes). `name` stands in for the path in
  /// diagnostics. This is the seam the fuzz harnesses and the fault
  /// matrix drive: arbitrary bytes go through the exact validation path
  /// the mmap loader uses, no filesystem required.
  explicit MappedIndex(io::MappedFile file, Options opt = {},
                       std::string name = "<memory>");

  MappedIndex(const MappedIndex&) = delete;
  MappedIndex& operator=(const MappedIndex&) = delete;
  MappedIndex(MappedIndex&&) = delete;
  MappedIndex& operator=(MappedIndex&&) = delete;

  [[nodiscard]] const IndexView& view() const noexcept { return view_; }
  [[nodiscard]] const refmodel::Reference& reference() const noexcept {
    return ref_;
  }
  [[nodiscard]] std::size_t fileBytes() const noexcept {
    return file_.size();
  }

 private:
  io::MappedFile file_;
  refmodel::Reference ref_;  ///< external backing over the seq section
  IndexView view_;
};

/// FNV-1a over 64-bit words (n must be a multiple of 8 — every hashed
/// region in the format is). Exposed for tests.
[[nodiscard]] std::uint64_t indexFileHash(const void* data, std::size_t n,
                                          std::uint64_t seed =
                                              1469598103934665603ULL);

}  // namespace gx::mapper
