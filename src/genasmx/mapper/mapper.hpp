#pragma once
// End-to-end candidate generation: minimizer seeding + chaining over a
// multi-contig reference, producing the (read, reference window) pairs
// the aligners consume. Substitutes "minimap2 with -P" in the paper's
// methodology (all chains kept, primary and secondary).
//
// Coordinate model: the index and the chaining DP run in the Reference's
// global coordinate space (one sorted anchor array, one index); emitted
// Candidates are contig-local — they carry a contig id plus [begin, end)
// offsets within that contig, and their windows are clamped to the
// contig's bounds so no candidate ever spans a contig boundary.
//
// Index source: the Mapper consumes an IndexView — it never asks where
// the sorted key/value arrays live. Build-and-own (the Reference/
// MapperConfig ctors construct a MinimizerIndex internally) and serve-
// from-disk (construct from MappedIndex::view()) run the same seeding
// code on the same arrays, which is what makes their PAF byte-identical.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "genasmx/mapper/chain.hpp"
#include "genasmx/mapper/index.hpp"
#include "genasmx/mapper/index_view.hpp"
#include "genasmx/mapper/minimizer.hpp"
#include "genasmx/refmodel/reference.hpp"

namespace gx::util {
class ThreadPool;
}

namespace gx::mapper {

struct MapperConfig {
  int k = 15;
  int w = 10;
  int max_occ = 64;       ///< minimizer occurrence cap (repeat masking)
  ChainParams chain{};    ///< chain.kmer is forced to k
  /// Reference slack added around each chain. Must stay *below* the
  /// aligner's window size: GenASM windowed alignment is start-anchored
  /// (candidates come from base-accurate chain starts, as in the original
  /// GenASM pipeline), and a junk flank of a full window would leave the
  /// first window with no signal to lock onto.
  std::size_t margin = 16;
};

struct Candidate {
  std::uint32_t contig = 0;   ///< contig id in the Reference
  std::size_t ref_begin = 0;  ///< candidate window [begin, end), contig-local
  std::size_t ref_end = 0;
  /// Chain's query span [begin, end) in *oriented-read* coordinates: for
  /// reverse candidates these index into reverseComplement(read), i.e.
  /// the query string the aligner actually consumes. PAF emission flips
  /// them back to forward-read coordinates.
  std::size_t read_begin = 0;
  std::size_t read_end = 0;
  bool reverse = false;  ///< read maps to the reverse strand
  double score = 0;
  int anchors = 0;
};

class Mapper {
 public:
  /// Index `ref` and own the result. A non-null `index_pool` parallelizes
  /// the index build per contig (result identical to the serial build).
  explicit Mapper(refmodel::Reference ref, MapperConfig cfg = {},
                  util::ThreadPool* index_pool = nullptr);

  /// Flat-genome convenience: one contig named "ref".
  explicit Mapper(std::string genome, MapperConfig cfg = {});

  /// Seed/chain against an externally owned index (e.g. a MappedIndex).
  /// The view's backing storage — and the Reference it points at — must
  /// outlive the Mapper. k, w and max_occ are taken from the view (they
  /// are properties of the index build, not free knobs); the rest of
  /// `cfg` (chaining, margin) applies as usual.
  explicit Mapper(IndexView view, MapperConfig cfg = {});

  [[nodiscard]] const refmodel::Reference& reference() const noexcept {
    return view_.reference();
  }
  /// The concatenated backing buffer (global coordinate space).
  [[nodiscard]] std::string_view genome() const noexcept {
    return reference().view();
  }
  [[nodiscard]] const MapperConfig& config() const noexcept { return cfg_; }
  /// The query surface of whatever index this Mapper seeds from.
  [[nodiscard]] const IndexView& index() const noexcept { return view_; }

  /// All candidate locations for `read`, best chain first.
  [[nodiscard]] std::vector<Candidate> map(std::string_view read) const;

  /// Same, but also hands the caller the read's extracted minimizers (the
  /// single sequence scan seeding already performs) so downstream stages —
  /// e.g. the sketch prefilter — can reuse them instead of rescanning.
  [[nodiscard]] std::vector<Candidate> map(
      std::string_view read, std::vector<Minimizer>& mins_out) const;

  /// The reference text of a candidate window.
  [[nodiscard]] std::string_view candidateText(const Candidate& c) const {
    return reference().contigView(c.contig).substr(c.ref_begin,
                                                   c.ref_end - c.ref_begin);
  }

 private:
  /// Build-and-own storage. Behind a unique_ptr so the Mapper stays
  /// movable while view_'s pointers into it remain valid (the arrays
  /// don't move when the Mapper does).
  struct Owned {
    refmodel::Reference ref;
    MinimizerIndex index;
  };

  std::unique_ptr<const Owned> owned_;  ///< null when viewing external storage
  MapperConfig cfg_;
  IndexView view_;
};

/// A ready-to-align pair: reference window text plus the read oriented to
/// the mapping strand.
struct AlignmentPair {
  std::string target;  ///< reference window
  std::string query;   ///< read (reverse-complemented for minus strand)
};

/// Expand a read's candidates into alignment pairs (the benchmark unit).
[[nodiscard]] std::vector<AlignmentPair> buildAlignmentPairs(
    const Mapper& mapper, std::string_view read,
    std::size_t max_candidates = ~std::size_t(0));

}  // namespace gx::mapper
