#pragma once
// (w,k)-minimizer extraction (Roberts et al. 2004; minimap2's seeding
// primitive). Canonical k-mers (min of forward and reverse-complement
// encodings) make seeding strand-symmetric.

#include <cstdint>
#include <string_view>
#include <vector>

namespace gx::mapper {

struct Minimizer {
  std::uint64_t key;   ///< hashed canonical k-mer
  std::uint32_t pos;   ///< start position of the k-mer
  bool reverse;        ///< canonical form came from the reverse strand
};

/// Invertible 64-bit mix (splitmix64 finalizer) used to de-bias k-mer
/// ranking, as minimap2 does.
[[nodiscard]] constexpr std::uint64_t hash64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Reusable working state for extractMinimizers. Holds the window ring
/// buffer so repeated extractions allocate nothing once warm; capacity
/// growth is counted so callers can assert the steady-state contract.
class MinimizerScratch {
 public:
  /// Number of times any internal buffer had to grow. Constant across
  /// calls once the scratch has seen the largest (k, w) it will serve.
  [[nodiscard]] std::uint64_t growEvents() const noexcept {
    return grow_events_;
  }

 private:
  friend void extractMinimizers(std::string_view, int, int, std::size_t,
                                std::vector<Minimizer>&, MinimizerScratch&);
  struct Entry {
    std::uint64_t key;
    std::uint32_t pos;
    bool reverse;
  };
  std::vector<Entry> ring_;
  std::uint64_t grow_events_ = 0;
};

/// Extract the minimizers of `seq` for k-mer size k (<= 31) and window w.
/// Consecutive duplicate (key, pos) picks are emitted once.
///
/// `emit_from` supports block-split extraction of one long sequence:
/// windows whose last k-mer starts before `emit_from` are processed as
/// warm-up only — they seed the duplicate-suppression state but emit
/// nothing. Splitting a sequence into blocks that overlap by w + k - 1
/// characters and emitting each block from its first owned window
/// reproduces the monolithic extraction exactly: the pick of window p
/// depends only on the ring of k-mers [p-w+1, p], and the suppression
/// state entering window p is always the pick of window p-1 (whether or
/// not it was emitted), which one warm-up window reconstructs.
[[nodiscard]] std::vector<Minimizer> extractMinimizers(
    std::string_view seq, int k, int w, std::size_t emit_from = 0);

/// Allocation-free variant: clears `out` and appends the minimizers,
/// reusing both `out`'s capacity and the window ring in `scratch`.
void extractMinimizers(std::string_view seq, int k, int w,
                       std::size_t emit_from, std::vector<Minimizer>& out,
                       MinimizerScratch& scratch);

}  // namespace gx::mapper
