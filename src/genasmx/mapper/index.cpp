#include "genasmx/mapper/index.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "genasmx/mapper/index_view.hpp"
#include "genasmx/mapper/minimizer.hpp"
#include "genasmx/util/thread_pool.hpp"

namespace gx::mapper {
namespace {

/// One (key, packed value) index entry. Entries are unique — extraction
/// dedups (key, pos) and global positions are contig-disjoint — so
/// sorting by the full pair is a total order and every merge schedule
/// (serial, parallel, any tree shape) yields the same array.
using Entry = std::pair<std::uint64_t, std::uint64_t>;

std::vector<Entry> extractShard(std::size_t offset, std::string_view text,
                                int k, int w, std::size_t emit_from) {
  const auto mins = extractMinimizers(text, k, w, emit_from);
  std::vector<Entry> entries;
  entries.reserve(mins.size());
  for (const Minimizer& m : mins) {
    const std::uint64_t global = static_cast<std::uint64_t>(offset) + m.pos;
    entries.emplace_back(m.key, (global << 1) | (m.reverse ? 1 : 0));
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

}  // namespace

void MinimizerIndex::build(const refmodel::Reference& ref, int k, int w,
                           int max_occ, util::ThreadPool* pool,
                           std::size_t block_bp) {
  std::vector<Shard> shards;
  shards.reserve(ref.contigCount());
  for (std::uint32_t c = 0; c < ref.contigCount(); ++c) {
    const std::size_t offset = ref.contig(c).offset;
    const std::string_view text = ref.contigView(c);
    if (block_bp == 0 || text.size() <= block_bp) {
      shards.push_back(Shard{c, offset, text, 0});
      continue;
    }
    // Large contig: overlapping extraction blocks. Block b owns the
    // windows whose last k-mer starts in [b*block, (b+1)*block); its
    // text additionally carries w warm-up characters on the left (one
    // warm-up window rebuilds the duplicate-suppression state, see
    // extractMinimizers) and k-1 overhang characters on the right (the
    // last owned k-mer's tail).
    const std::size_t warm = static_cast<std::size_t>(w);
    const std::size_t tail = static_cast<std::size_t>(k) - 1;
    for (std::size_t start = 0; start < text.size(); start += block_bp) {
      const std::size_t end = std::min(text.size(), start + block_bp);
      const std::size_t tstart = start >= warm ? start - warm : 0;
      const std::size_t tend = std::min(text.size(), end + tail);
      shards.push_back(Shard{c, offset + tstart,
                             text.substr(tstart, tend - tstart),
                             start - tstart});
    }
  }
  buildShards(shards, ref.contigCount(), k, w, max_occ, pool, &ref);
}

void MinimizerIndex::build(std::string_view genome, int k, int w,
                           int max_occ) {
  buildShards({Shard{0, 0, genome, 0}}, 1, k, w, max_occ, nullptr, nullptr);
}

void MinimizerIndex::buildShards(const std::vector<Shard>& shards,
                                 std::size_t contig_count, int k, int w,
                                 int max_occ, util::ThreadPool* pool,
                                 const refmodel::Reference* ref_for_stats) {
  k_ = k;
  w_ = w;
  max_occ_ = max_occ;
  keys_.clear();
  values_.clear();
  per_contig_kept_.assign(contig_count > 0 ? contig_count : 1, 0);
  if (shards.empty()) return;

  // IndexHit (and the Anchor/Chain types downstream) hold positions in
  // 32 bits; a reference past 4 Gbp would wrap its coordinates silently,
  // so refuse it here — the one place every build path funnels through.
  const std::uint64_t total_bp =
      static_cast<std::uint64_t>(shards.back().offset) +
      shards.back().text.size();
  if (total_bp > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "MinimizerIndex: reference exceeds the 32-bit position space "
        "(4 Gbp)");
  }

  // Stage 1 — per-shard extraction + sort (parallel over shards; large
  // contigs contribute several block shards, so even a single-chromosome
  // reference fans out here).
  std::vector<std::vector<Entry>> sorted(shards.size());
  const auto extract_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      sorted[i] = extractShard(shards[i].offset, shards[i].text, k, w,
                               shards[i].emit_from);
    }
  };
  if (pool != nullptr && shards.size() > 1) {
    pool->parallel_for(shards.size(), extract_range);
  } else {
    extract_range(0, shards.size());
  }
  // Per-contig stats start at the extraction counts; the cap pass below
  // subtracts dropped groups, so the common (kept) path never resolves a
  // position back to its contig.
  for (std::size_t i = 0; i < shards.size(); ++i) {
    per_contig_kept_[shards[i].contig] += sorted[i].size();
  }

  // Stage 2 — pairwise merge tree. Each round halves the shard count;
  // merges within a round are independent, so they fan out on the pool.
  while (sorted.size() > 1) {
    const std::size_t pairs = sorted.size() / 2;
    std::vector<std::vector<Entry>> next(pairs + sorted.size() % 2);
    const auto merge_range = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        std::vector<Entry> merged;
        merged.resize(sorted[2 * i].size() + sorted[2 * i + 1].size());
        std::merge(sorted[2 * i].begin(), sorted[2 * i].end(),
                   sorted[2 * i + 1].begin(), sorted[2 * i + 1].end(),
                   merged.begin());
        next[i] = std::move(merged);
      }
    };
    if (pool != nullptr && pairs > 1) {
      pool->parallel_for(pairs, merge_range);
    } else {
      merge_range(0, pairs);
    }
    if (sorted.size() % 2 != 0) {
      next.back() = std::move(sorted.back());
    }
    sorted = std::move(next);
  }
  const std::vector<Entry>& merged = sorted.front();

  // Stage 3 — occurrence cap + emission (serial linear pass).
  keys_.reserve(merged.size());
  values_.reserve(merged.size());
  std::size_t i = 0;
  while (i < merged.size()) {
    std::size_t j = i;
    while (j < merged.size() && merged[j].first == merged[i].first) ++j;
    if (j - i <= static_cast<std::size_t>(max_occ)) {
      for (std::size_t t = i; t < j; ++t) {
        keys_.push_back(merged[t].first);
        values_.push_back(merged[t].second);
      }
    } else {
      // Capped out: charge the drop back to each entry's contig. Only
      // over-represented (repeat) keys pay the O(log C) resolution.
      for (std::size_t t = i; t < j; ++t) {
        const std::size_t pos = static_cast<std::size_t>(merged[t].second >> 1);
        const std::size_t c =
            ref_for_stats != nullptr ? ref_for_stats->contigOf(pos) : 0;
        --per_contig_kept_[c];
      }
    }
    i = j;
  }
}

std::size_t MinimizerIndex::distinctKeys() const noexcept {
  std::size_t n = 0;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    n += i == 0 || keys_[i] != keys_[i - 1];
  }
  return n;
}

std::vector<IndexHit> MinimizerIndex::lookup(std::uint64_t key) const {
  std::vector<IndexHit> hits;
  auto [lo, hi] = std::equal_range(keys_.begin(), keys_.end(), key);
  const std::size_t begin = static_cast<std::size_t>(lo - keys_.begin());
  const std::size_t end = static_cast<std::size_t>(hi - keys_.begin());
  hits.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    hits.push_back(IndexHit{static_cast<std::uint32_t>(values_[i] >> 1),
                            (values_[i] & 1) != 0});
  }
  return hits;
}

IndexView MinimizerIndex::view(const refmodel::Reference& ref) const {
  return IndexView(&ref, keys_.data(), values_.data(), keys_.size(),
                   per_contig_kept_.data(), k_, w_, max_occ_);
}

}  // namespace gx::mapper
