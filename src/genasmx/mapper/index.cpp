#include "genasmx/mapper/index.hpp"

#include <algorithm>
#include <numeric>

#include "genasmx/mapper/minimizer.hpp"

namespace gx::mapper {

void MinimizerIndex::build(std::string_view genome, int k, int w,
                           int max_occ) {
  k_ = k;
  w_ = w;
  const auto mins = extractMinimizers(genome, k, w);
  keys_.resize(mins.size());
  values_.resize(mins.size());
  std::vector<std::size_t> order(mins.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return mins[a].key < mins[b].key;
  });
  std::size_t out = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j < order.size() && mins[order[j]].key == mins[order[i]].key) ++j;
    if (j - i <= static_cast<std::size_t>(max_occ)) {
      for (std::size_t t = i; t < j; ++t) {
        const Minimizer& m = mins[order[t]];
        keys_[out] = m.key;
        values_[out] =
            (static_cast<std::uint64_t>(m.pos) << 1) | (m.reverse ? 1 : 0);
        ++out;
      }
    }
    i = j;
  }
  keys_.resize(out);
  values_.resize(out);
}

std::size_t MinimizerIndex::distinctKeys() const noexcept {
  std::size_t n = 0;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    n += i == 0 || keys_[i] != keys_[i - 1];
  }
  return n;
}

std::vector<IndexHit> MinimizerIndex::lookup(std::uint64_t key) const {
  std::vector<IndexHit> hits;
  auto [lo, hi] = std::equal_range(keys_.begin(), keys_.end(), key);
  const std::size_t begin = static_cast<std::size_t>(lo - keys_.begin());
  const std::size_t end = static_cast<std::size_t>(hi - keys_.begin());
  hits.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    hits.push_back(IndexHit{static_cast<std::uint32_t>(values_[i] >> 1),
                            (values_[i] & 1) != 0});
  }
  return hits;
}

}  // namespace gx::mapper
