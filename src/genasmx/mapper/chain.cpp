#include "genasmx/mapper/chain.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gx::mapper {

std::vector<Chain> chainAnchors(std::vector<Anchor> anchors,
                                const ChainParams& params) {
  std::vector<Chain> chains;
  const std::size_t n = anchors.size();
  if (n == 0) return chains;
  std::sort(anchors.begin(), anchors.end(), [](const Anchor& a, const Anchor& b) {
    return a.ref_pos != b.ref_pos ? a.ref_pos < b.ref_pos
                                  : a.read_pos < b.read_pos;
  });

  std::vector<double> f(n);
  std::vector<std::int64_t> parent(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    f[i] = params.kmer;  // chain of just this anchor
    const std::size_t j0 =
        i > static_cast<std::size_t>(params.lookback)
            ? i - static_cast<std::size_t>(params.lookback)
            : 0;
    for (std::size_t j = i; j-- > j0;) {
      const std::int64_t dr = static_cast<std::int64_t>(anchors[i].ref_pos) -
                              anchors[j].ref_pos;
      const std::int64_t dq = static_cast<std::int64_t>(anchors[i].read_pos) -
                              anchors[j].read_pos;
      if (anchors[i].contig != anchors[j].contig) continue;
      if (dr <= 0 || dq <= 0) continue;
      if (dr > params.max_gap || dq > params.max_gap) continue;
      const double gap_cost =
          params.gap_scale * static_cast<double>(std::llabs(dr - dq));
      const double gain =
          static_cast<double>(std::min<std::int64_t>(
              {dr, dq, static_cast<std::int64_t>(params.kmer)})) -
          gap_cost;
      const double cand = f[j] + gain;
      if (cand > f[i]) {
        f[i] = cand;
        parent[i] = static_cast<std::int64_t>(j);
      }
    }
  }

  // Emit all chains best-first; each anchor belongs to one chain.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return f[a] > f[b]; });
  std::vector<bool> used(n, false);
  for (std::size_t oi : order) {
    if (used[oi]) continue;
    // Walk the chain; abort if it runs into an anchor already claimed by
    // a better chain (this tail was already reported).
    std::vector<std::size_t> members;
    std::int64_t cur = static_cast<std::int64_t>(oi);
    bool clean = true;
    while (cur >= 0) {
      if (used[static_cast<std::size_t>(cur)]) {
        clean = false;
        break;
      }
      members.push_back(static_cast<std::size_t>(cur));
      cur = parent[static_cast<std::size_t>(cur)];
    }
    for (std::size_t m : members) used[m] = true;
    if (!clean && members.size() < static_cast<std::size_t>(params.min_anchors)) {
      continue;
    }
    if (members.size() < static_cast<std::size_t>(params.min_anchors)) continue;
    Chain c;
    c.score = f[oi];
    c.anchors = static_cast<int>(members.size());
    const Anchor& first = anchors[members.back()];
    const Anchor& last = anchors[members.front()];
    c.read_begin = first.read_pos;
    c.read_end = last.read_pos + static_cast<std::uint32_t>(params.kmer);
    c.ref_begin = first.ref_pos;
    c.ref_end = last.ref_pos + static_cast<std::uint32_t>(params.kmer);
    c.contig = first.contig;
    chains.push_back(c);
  }
  return chains;
}

}  // namespace gx::mapper
