#pragma once
// Anchor chaining (minimap2's chaining DP, simplified): given co-linear
// seed anchors between a read and the reference, find high-scoring chains
// under a gap-cost model. All chains above the threshold are returned,
// mirroring the paper's use of minimap2 -P (keep all secondary chains).

#include <cstdint>
#include <vector>

namespace gx::mapper {

struct Anchor {
  std::uint32_t read_pos;
  std::uint32_t ref_pos;      ///< global (contig-table) coordinate
  std::uint32_t contig = 0;   ///< contig id; pairs never chain across ids
};

struct ChainParams {
  int kmer = 15;            ///< anchor width (score unit)
  int max_gap = 2'000;      ///< max ref/read gap between chained anchors
  int lookback = 64;        ///< DP predecessor window
  int min_anchors = 3;      ///< minimum anchors per emitted chain
  double gap_scale = 0.05;  ///< per-base penalty for gap-length mismatch
};

struct Chain {
  double score = 0;
  std::uint32_t read_begin = 0, read_end = 0;  ///< [begin, end) read span
  std::uint32_t ref_begin = 0, ref_end = 0;    ///< [begin, end) global ref span
  std::uint32_t contig = 0;  ///< every member anchor's contig
  int anchors = 0;
};

/// Chain `anchors` (single strand). Anchors are sorted internally; a
/// chain never links anchors from different contigs, so each emitted
/// chain lies within one contig (alignments against the nonexistent
/// sequence "between" contigs cannot arise). Returns all chains with
/// >= min_anchors anchors, best first.
[[nodiscard]] std::vector<Chain> chainAnchors(std::vector<Anchor> anchors,
                                              const ChainParams& params);

}  // namespace gx::mapper
