#pragma once
// IndexView — the non-owning query surface of a minimizer index. The
// mapper, chainer, and pipeline consume this instead of MinimizerIndex
// directly, so they are agnostic to where the index lives: a freshly
// built MinimizerIndex (MinimizerIndex::view()) and a mmap'd index file
// (MappedIndex::view()) present the identical surface, and because both
// expose the very same sorted key/value arrays, the two paths are
// byte-identical all the way to PAF output.
//
// An IndexView is a handful of pointers — copy it freely, but the owner
// (the MinimizerIndex + Reference, or the MappedIndex) must outlive
// every copy.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "genasmx/mapper/index.hpp"
#include "genasmx/refmodel/reference.hpp"

namespace gx::mapper {

class IndexView {
 public:
  IndexView() = default;

  /// Wrap raw index sections. `keys`/`values` are the sorted arrays
  /// (length `n`), `per_contig_kept` is index-aligned with `ref`'s
  /// contig table. All pointers are borrowed.
  IndexView(const refmodel::Reference* ref, const std::uint64_t* keys,
            const std::uint64_t* values, std::size_t n,
            const std::uint64_t* per_contig_kept, int k, int w, int max_occ)
      : ref_(ref),
        keys_(keys),
        values_(values),
        n_(n),
        per_contig_kept_(per_contig_kept),
        k_(k),
        w_(w),
        max_occ_(max_occ) {}

  [[nodiscard]] bool valid() const noexcept { return ref_ != nullptr; }
  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] int w() const noexcept { return w_; }
  [[nodiscard]] int maxOcc() const noexcept { return max_occ_; }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  /// The contig table + sequence the index was built over.
  [[nodiscard]] const refmodel::Reference& reference() const noexcept {
    return *ref_;
  }

  /// Kept (post-cap) minimizers of one contig.
  [[nodiscard]] std::uint64_t perContigKept(std::uint32_t contig) const {
    return per_contig_kept_[contig];
  }

  /// Raw sorted sections, for serialization and equality checks.
  [[nodiscard]] const std::uint64_t* keysData() const noexcept {
    return keys_;
  }
  [[nodiscard]] const std::uint64_t* valuesData() const noexcept {
    return values_;
  }
  [[nodiscard]] const std::uint64_t* perContigKeptData() const noexcept {
    return per_contig_kept_;
  }

  [[nodiscard]] std::size_t distinctKeys() const noexcept {
    std::size_t n = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      n += i == 0 || keys_[i] != keys_[i - 1];
    }
    return n;
  }

  /// All reference hits of `key` (empty if unknown or masked), in
  /// ascending global position order — same semantics and same binary
  /// search as MinimizerIndex::lookup, so every index source answers
  /// queries identically.
  [[nodiscard]] std::vector<IndexHit> lookup(std::uint64_t key) const {
    std::size_t lo = 0, hi = n_;
    while (lo < hi) {  // lower_bound over the sorted key array
      const std::size_t mid = lo + (hi - lo) / 2;
      if (keys_[mid] < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    std::size_t end = lo;
    while (end < n_ && keys_[end] == key) ++end;
    std::vector<IndexHit> hits;
    hits.reserve(end - lo);
    for (std::size_t i = lo; i < end; ++i) {
      hits.push_back(IndexHit{static_cast<std::uint32_t>(values_[i] >> 1),
                              (values_[i] & 1) != 0});
    }
    return hits;
  }

 private:
  const refmodel::Reference* ref_ = nullptr;
  const std::uint64_t* keys_ = nullptr;
  const std::uint64_t* values_ = nullptr;
  std::size_t n_ = 0;
  const std::uint64_t* per_contig_kept_ = nullptr;
  int k_ = 0;
  int w_ = 0;
  int max_occ_ = 0;
};

}  // namespace gx::mapper
