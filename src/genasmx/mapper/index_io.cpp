#include "genasmx/mapper/index_io.hpp"

#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

namespace gx::mapper {
namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::size_t align64(std::size_t off) {
  return (off + kIndexSectionAlign - 1) & ~(kIndexSectionAlign - 1);
}

/// The section layout is a pure function of the sizes, shared by the
/// writer and the loader's bounds check.
struct Layout {
  std::uint64_t contigs_off, kept_off, names_off, seq_off, keys_off,
      values_off, file_bytes;
};

Layout computeLayout(std::uint64_t n_contigs, std::uint64_t names_bytes,
                     std::uint64_t seq_bytes, std::uint64_t n_entries) {
  Layout l{};
  l.contigs_off = sizeof(IndexFileHeader);
  l.kept_off = align64(l.contigs_off + n_contigs * sizeof(IndexContigRecord));
  l.names_off = align64(l.kept_off + n_contigs * sizeof(std::uint64_t));
  l.seq_off = align64(l.names_off + names_bytes);
  l.keys_off = align64(l.seq_off + seq_bytes);
  l.values_off = align64(l.keys_off + n_entries * sizeof(std::uint64_t));
  l.file_bytes = l.values_off + n_entries * sizeof(std::uint64_t);
  return l;
}

/// Streams sections to disk while accumulating the payload hash, so the
/// writer never materializes a second copy of a genome-scale index.
class SectionWriter {
 public:
  SectionWriter(std::ofstream& out, const std::string& path)
      : out_(out), path_(path) {
    // Leave room for the header; it is finalized (with both hashes) and
    // written last.
    const std::vector<char> zeros(sizeof(IndexFileHeader), 0);
    put(zeros.data(), zeros.size());
  }

  void write(const void* data, std::size_t n) {
    hashBytes(data, n);
    put(data, n);
    pos_ += n;
  }

  void padTo(std::uint64_t off) {
    static constexpr char kZeros[kIndexSectionAlign] = {};
    while (pos_ < off) {
      const std::size_t n =
          std::min<std::uint64_t>(off - pos_, sizeof(kZeros));
      write(kZeros, n);
    }
  }

  [[nodiscard]] std::uint64_t payloadHash() const noexcept { return hash_; }
  [[nodiscard]] std::uint64_t pos() const noexcept { return pos_; }

 private:
  void put(const void* data, std::size_t n) {
    if (!out_.write(static_cast<const char*>(data),
                    static_cast<std::streamsize>(n))) {
      throw IndexIoError("writeIndexFile: write to '" + path_ +
                             "' failed (disk full or permissions?)",
                         common::ErrorCode::kIoFatal);
    }
  }

  void hashBytes(const void* data, std::size_t n) {
    // Word-at-a-time FNV-1a. Sections are not individually 8-aligned in
    // the stream order (names/seq have arbitrary sizes), so carry a
    // partial word across write() calls.
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      word_ |= static_cast<std::uint64_t>(p[i]) << (8 * word_fill_);
      if (++word_fill_ == 8) {
        hash_ = (hash_ ^ word_) * kFnvPrime;
        word_ = 0;
        word_fill_ = 0;
      }
    }
  }

  std::ofstream& out_;
  const std::string& path_;
  std::uint64_t pos_ = sizeof(IndexFileHeader);
  std::uint64_t hash_ = 1469598103934665603ULL;
  std::uint64_t word_ = 0;
  unsigned word_fill_ = 0;
};

std::uint64_t headerHash(IndexFileHeader h) {
  h.payload_hash = 0;
  h.header_hash = 0;
  return indexFileHash(&h, sizeof(h));
}

[[noreturn]] void reject(const std::string& path, const std::string& why) {
  throw IndexIoError("MappedIndex: '" + path + "': " + why);
}

}  // namespace

std::uint64_t indexFileHash(const void* data, std::size_t n,
                            std::uint64_t seed) {
  std::uint64_t h = seed;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t word = 0;
  for (std::size_t i = 0; i + 8 <= n; i += 8) {
    std::memcpy(&word, p + i, 8);
    h = (h ^ word) * kFnvPrime;
  }
  return h;
}

void writeIndexFile(const std::string& path, const MinimizerIndex& index,
                    const refmodel::Reference& ref) {
  if (ref.empty()) {
    throw IndexIoError("writeIndexFile: empty reference");
  }
  if (index.perContigKept().size() != ref.contigCount()) {
    throw IndexIoError(
        "writeIndexFile: index and reference disagree on contig count (" +
        std::to_string(index.perContigKept().size()) + " vs " +
        std::to_string(ref.contigCount()) +
        ") — was the index built over this reference?");
  }

  std::uint64_t names_bytes = 0;
  for (const auto& c : ref.contigs()) names_bytes += c.name.size();
  const Layout l = computeLayout(ref.contigCount(), names_bytes,
                                 ref.size(), index.size());

  IndexFileHeader h{};
  std::memcpy(h.magic, kIndexMagic, sizeof(h.magic));
  h.version = kIndexFormatVersion;
  h.endian = kIndexEndianMarker;
  h.k = static_cast<std::uint32_t>(index.k());
  h.w = static_cast<std::uint32_t>(index.w());
  h.max_occ = static_cast<std::uint32_t>(index.maxOcc());
  h.n_entries = index.size();
  h.n_contigs = ref.contigCount();
  h.kept_off = l.kept_off;
  h.names_off = l.names_off;
  h.names_bytes = names_bytes;
  h.seq_off = l.seq_off;
  h.seq_bytes = ref.size();
  h.keys_off = l.keys_off;
  h.values_off = l.values_off;
  h.file_bytes = l.file_bytes;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw IndexIoError("writeIndexFile: cannot open '" + path +
                           "' for writing",
                       common::ErrorCode::kIoFatal);
  }
  SectionWriter w(out, path);

  std::uint64_t name_off = 0;
  for (const auto& c : ref.contigs()) {
    IndexContigRecord rec{};
    rec.name_off = name_off;
    rec.name_len = c.name.size();
    rec.seq_off = c.offset;
    rec.seq_len = c.length;
    w.write(&rec, sizeof(rec));
    name_off += c.name.size();
  }
  w.padTo(l.kept_off);
  w.write(index.perContigKept().data(),
          index.perContigKept().size() * sizeof(std::uint64_t));
  w.padTo(l.names_off);
  for (const auto& c : ref.contigs()) w.write(c.name.data(), c.name.size());
  w.padTo(l.seq_off);
  w.write(ref.view().data(), ref.view().size());
  w.padTo(l.keys_off);
  w.write(index.keys().data(), index.keys().size() * sizeof(std::uint64_t));
  w.padTo(l.values_off);
  w.write(index.values().data(),
          index.values().size() * sizeof(std::uint64_t));

  if (w.pos() != l.file_bytes) {
    throw IndexIoError("writeIndexFile: internal layout mismatch",
                       common::ErrorCode::kInternal);
  }
  h.payload_hash = w.payloadHash();
  h.header_hash = headerHash(h);
  out.seekp(0);
  if (!out.write(reinterpret_cast<const char*>(&h), sizeof(h)) ||
      !out.flush()) {
    throw IndexIoError("writeIndexFile: finalizing '" + path + "' failed",
                       common::ErrorCode::kIoFatal);
  }
}

MappedIndex::MappedIndex(const std::string& path, Options opt)
    : MappedIndex(io::MappedFile::open(path), opt, path) {}

MappedIndex::MappedIndex(io::MappedFile file, Options opt, std::string name)
    : file_(std::move(file)) {
  const std::string& path = name;
  if (file_.size() < sizeof(IndexFileHeader)) {
    reject(path, "truncated: " + std::to_string(file_.size()) +
                     " bytes is smaller than the " +
                     std::to_string(sizeof(IndexFileHeader)) +
                     "-byte header — rebuild with genasmx_index");
  }
  IndexFileHeader h{};
  std::memcpy(&h, file_.data(), sizeof(h));
  if (std::memcmp(h.magic, kIndexMagic, sizeof(h.magic)) != 0) {
    reject(path,
           "not a genasmx minimizer index (bad magic) — build one with "
           "genasmx_index");
  }
  if (h.endian != kIndexEndianMarker) {
    reject(path,
           "endianness mismatch: the index was written on a host with "
           "different byte order — rebuild with genasmx_index on this host");
  }
  if (h.version != kIndexFormatVersion) {
    reject(path, "unsupported format version " + std::to_string(h.version) +
                     " (this build reads version " +
                     std::to_string(kIndexFormatVersion) +
                     ") — rebuild with genasmx_index");
  }
  if (h.header_hash != headerHash(h)) {
    reject(path,
           "header checksum mismatch (corrupt file?) — rebuild with "
           "genasmx_index");
  }
  if (h.file_bytes != file_.size()) {
    reject(path, "declared size " + std::to_string(h.file_bytes) +
                     " does not match the file's " +
                     std::to_string(file_.size()) +
                     " bytes (truncated copy?) — rebuild with genasmx_index");
  }
  if (h.n_contigs == 0 || h.seq_bytes == 0 || h.k == 0 || h.w == 0 ||
      h.max_occ == 0) {
    reject(path, "degenerate header fields (corrupt file?) — rebuild with "
                 "genasmx_index");
  }
  // Section table sanity: the layout is a pure function of the sizes,
  // so a header that disagrees with it was not written by this code.
  const Layout l =
      computeLayout(h.n_contigs, h.names_bytes, h.seq_bytes, h.n_entries);
  if (h.kept_off != l.kept_off || h.names_off != l.names_off ||
      h.seq_off != l.seq_off || h.keys_off != l.keys_off ||
      h.values_off != l.values_off || h.file_bytes != l.file_bytes) {
    reject(path, "inconsistent section table (corrupt file?) — rebuild "
                 "with genasmx_index");
  }

  file_.adviseWillNeed();
  const char* base = reinterpret_cast<const char*>(file_.data());
  if (opt.verify_payload &&
      h.payload_hash != indexFileHash(base + sizeof(IndexFileHeader),
                                      h.file_bytes -
                                          sizeof(IndexFileHeader))) {
    reject(path,
           "payload checksum mismatch (corrupt file?) — rebuild with "
           "genasmx_index");
  }

  // Materialize the contig table (names are copied — they are tiny);
  // the sequence stays a view into the mapping.
  std::vector<refmodel::Contig> contigs;
  contigs.reserve(h.n_contigs);
  const auto* recs =
      reinterpret_cast<const IndexContigRecord*>(base + l.contigs_off);
  for (std::uint64_t c = 0; c < h.n_contigs; ++c) {
    const IndexContigRecord& rec = recs[c];
    if (rec.name_off + rec.name_len > h.names_bytes) {
      reject(path, "contig " + std::to_string(c) +
                       " name overruns the name pool (corrupt file?) — "
                       "rebuild with genasmx_index");
    }
    refmodel::Contig contig;
    contig.name.assign(base + h.names_off + rec.name_off, rec.name_len);
    contig.offset = rec.seq_off;
    contig.length = rec.seq_len;
    contigs.push_back(std::move(contig));
  }
  try {
    ref_ = refmodel::Reference::fromExternal(
        std::string_view(base + h.seq_off, h.seq_bytes), std::move(contigs));
  } catch (const std::invalid_argument& e) {
    reject(path, std::string("bad contig table: ") + e.what() +
                     " — rebuild with genasmx_index");
  }

  view_ = IndexView(
      &ref_, reinterpret_cast<const std::uint64_t*>(base + h.keys_off),
      reinterpret_cast<const std::uint64_t*>(base + h.values_off),
      h.n_entries,
      reinterpret_cast<const std::uint64_t*>(base + h.kept_off),
      static_cast<int>(h.k), static_cast<int>(h.w),
      static_cast<int>(h.max_occ));
}

}  // namespace gx::mapper
