#pragma once
// Sorted-array minimizer index over a reference genome (minimap2-style):
// build once, then O(log N) lookups returning all reference positions of
// a minimizer. Over-represented minimizers (repeats) are masked with an
// occurrence cap, like minimap2's -f filtering.

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace gx::mapper {

/// Packed index entry value: position << 1 | strand.
struct IndexHit {
  std::uint32_t pos;
  bool reverse;
};

class MinimizerIndex {
 public:
  MinimizerIndex() = default;

  /// Build over `genome` with minimizer parameters (k, w). Minimizers
  /// occurring more than max_occ times are dropped.
  void build(std::string_view genome, int k, int w, int max_occ);

  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] int w() const noexcept { return w_; }
  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }
  [[nodiscard]] std::size_t distinctKeys() const noexcept;

  /// All reference hits of `key` (empty if unknown or masked).
  [[nodiscard]] std::vector<IndexHit> lookup(std::uint64_t key) const;

 private:
  int k_ = 0;
  int w_ = 0;
  std::vector<std::uint64_t> keys_;    ///< sorted
  std::vector<std::uint64_t> values_;  ///< pos << 1 | strand, same order
};

}  // namespace gx::mapper
