#pragma once
// Sorted-array minimizer index over a multi-contig reference (minimap2-
// style): build once, then O(log N) lookups returning all reference
// positions of a minimizer. Positions are global (contig-table)
// coordinates; extraction runs per contig so no seed ever spans a contig
// boundary. Over-represented minimizers (repeats) are masked with an
// occurrence cap, like minimap2's -f filtering.
//
// Build is shard-then-merge: each contig's minimizers are extracted and
// sorted as an independent shard, then shards are pairwise-merged and
// the occurrence cap applied in one final pass. Handing a ThreadPool to
// build() fans the shard and merge stages out across workers; the
// algorithm is identical either way, so the parallel build produces a
// bit-identical index to the serial one (asserted by tests).

#include <cstdint>
#include <string_view>
#include <vector>

#include "genasmx/refmodel/reference.hpp"

namespace gx::util {
class ThreadPool;
}

namespace gx::mapper {

class IndexView;

/// Packed index entry value: position << 1 | strand.
struct IndexHit {
  std::uint32_t pos;  ///< global (contig-table) coordinate
  bool reverse;
};

/// Extraction block size for large contigs: contigs longer than this are
/// split into overlapping blocks so a single-chromosome reference still
/// fans its index build out across workers. Block extraction is
/// bit-identical to monolithic extraction (see extractMinimizers'
/// emit_from contract), so the block size is a pure scheduling knob.
inline constexpr std::size_t kIndexBlockBp = 1u << 18;

class MinimizerIndex {
 public:
  MinimizerIndex() = default;

  /// Build over `ref` with minimizer parameters (k, w). Each contig is
  /// extracted as one shard — or, past `block_bp` characters, as several
  /// overlapping blocks with warm-up windows, so large contigs
  /// parallelize too. Minimizers occurring more than max_occ times are
  /// dropped. A non-null `pool` parallelizes shard extraction/sort and
  /// the merge tree. Neither the pool nor the block size changes the
  /// result: every schedule yields a bit-identical index (asserted by
  /// tests and the tracked bench). Throws std::invalid_argument for a
  /// reference past 4 Gbp (positions are stored in 32 bits throughout
  /// the mapper stack).
  void build(const refmodel::Reference& ref, int k, int w, int max_occ,
             util::ThreadPool* pool = nullptr,
             std::size_t block_bp = kIndexBlockBp);

  /// Flat-genome convenience: one anonymous contig, serial build.
  void build(std::string_view genome, int k, int w, int max_occ);

  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] int w() const noexcept { return w_; }
  [[nodiscard]] int maxOcc() const noexcept { return max_occ_; }
  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }
  [[nodiscard]] std::size_t distinctKeys() const noexcept;

  /// Kept (post-cap) minimizers per contig, index-aligned with the
  /// Reference's contig table. One entry for the flat-genome build.
  /// uint64 rather than size_t: these counts are serialized verbatim
  /// into the on-disk contig table (see index_io.hpp).
  [[nodiscard]] const std::vector<std::uint64_t>& perContigKept()
      const noexcept {
    return per_contig_kept_;
  }

  /// The raw sorted sections, shared with IndexView and the on-disk
  /// writer.
  [[nodiscard]] const std::vector<std::uint64_t>& keys() const noexcept {
    return keys_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& values() const noexcept {
    return values_;
  }

  /// All reference hits of `key` (empty if unknown or masked), in
  /// ascending global position order.
  [[nodiscard]] std::vector<IndexHit> lookup(std::uint64_t key) const;

  /// The non-owning query surface over this index and the reference it
  /// was built from. `ref` and this index must outlive the view.
  [[nodiscard]] IndexView view(const refmodel::Reference& ref) const;

  /// Bit-identical comparison over the full sorted arrays — the build-
  /// determinism contract (parallel == serial) is asserted with this.
  friend bool operator==(const MinimizerIndex& a,
                         const MinimizerIndex& b) noexcept {
    return a.k_ == b.k_ && a.w_ == b.w_ && a.max_occ_ == b.max_occ_ &&
           a.keys_ == b.keys_ && a.values_ == b.values_ &&
           a.per_contig_kept_ == b.per_contig_kept_;
  }

 private:
  struct Shard {
    std::uint32_t contig;   ///< owning contig (per-contig stats)
    std::size_t offset;     ///< global coordinate of the shard text start
    std::string_view text;  ///< block text, including warm-up overlap
    std::size_t emit_from;  ///< first owned window, text-relative
  };
  void buildShards(const std::vector<Shard>& shards, std::size_t contig_count,
                   int k, int w, int max_occ, util::ThreadPool* pool,
                   const refmodel::Reference* ref_for_stats);

  int k_ = 0;
  int w_ = 0;
  int max_occ_ = 0;
  std::vector<std::uint64_t> keys_;    ///< sorted
  std::vector<std::uint64_t> values_;  ///< pos << 1 | strand, same order
  std::vector<std::uint64_t> per_contig_kept_;
};

}  // namespace gx::mapper
