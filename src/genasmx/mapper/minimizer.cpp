#include "genasmx/mapper/minimizer.hpp"

#include <stdexcept>

#include "genasmx/common/sequence.hpp"

namespace gx::mapper {

std::vector<Minimizer> extractMinimizers(std::string_view seq, int k, int w,
                                         std::size_t emit_from) {
  std::vector<Minimizer> out;
  MinimizerScratch scratch;
  extractMinimizers(seq, k, w, emit_from, out, scratch);
  return out;
}

void extractMinimizers(std::string_view seq, int k, int w,
                       std::size_t emit_from, std::vector<Minimizer>& out,
                       MinimizerScratch& scratch) {
  if (k < 4 || k > 31) throw std::invalid_argument("minimizer: k in [4,31]");
  if (w < 1) throw std::invalid_argument("minimizer: w >= 1");
  out.clear();
  const std::size_t out_cap = out.capacity();
  const std::size_t n = seq.size();
  if (n < static_cast<std::size_t>(k)) return;

  const std::uint64_t mask = (k == 32) ? ~0ULL : ((1ULL << (2 * k)) - 1);
  const int shift = 2 * (k - 1);
  std::uint64_t fwd = 0, rev = 0;

  // Monotone deque over the last w k-mer ranks (sliding-window minimum,
  // O(1) amortized per position), backed by a reused circular buffer.
  // Ties pop equal keys from the back, so the front is always the
  // *newest* occurrence of the window's minimal key — exactly the pick
  // the original O(w) window rescan made (min key, then max pos), which
  // keeps every downstream byte (index, seeding, PAF) identical while
  // making extraction cheap enough to sketch candidate windows with.
  using Entry = MinimizerScratch::Entry;
  if (scratch.ring_.capacity() < static_cast<std::size_t>(w)) {
    ++scratch.grow_events_;
  }
  scratch.ring_.resize(static_cast<std::size_t>(w));
  Entry* const ring = scratch.ring_.data();
  const std::size_t wz = static_cast<std::size_t>(w);
  std::size_t dq_head = 0, dq_tail = 0;  ///< logical deque range [head, tail)
  std::uint32_t last_pos = ~0u;

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t code = common::baseCode(seq[i]);
    fwd = ((fwd << 2) | code) & mask;
    rev = (rev >> 2) | ((3ULL ^ code) << shift);
    if (i + 1 < static_cast<std::size_t>(k)) continue;
    const std::uint32_t pos = static_cast<std::uint32_t>(i + 1 - k);
    const bool use_rev = rev < fwd;
    const std::uint64_t key = hash64(use_rev ? rev : fwd);
    // Expire entries that slid out of the window [pos-w+1, pos], then
    // drop every back entry the new k-mer dominates (>= keeps the
    // newest of equal keys). Size stays <= w, so the circular indexing
    // never wraps onto a live entry.
    while (dq_head < dq_tail && ring[dq_head % wz].pos + wz <= pos) ++dq_head;
    while (dq_head < dq_tail && ring[(dq_tail - 1) % wz].key >= key) --dq_tail;
    ring[dq_tail++ % wz] = Entry{key, pos, use_rev};

    const std::size_t kmers_seen = pos + 1;
    if (kmers_seen < static_cast<std::size_t>(w)) continue;
    const Entry* best = &ring[dq_head % wz];
    if (pos < emit_from) {
      // Warm-up window of a block-split extraction: seed the suppression
      // state exactly as the monolithic pass would have left it (after
      // any window, last_pos equals that window's pick) without emitting.
      last_pos = best->pos;
      continue;
    }
    if (best->pos != last_pos) {
      out.push_back(Minimizer{best->key, best->pos, best->reverse});
      last_pos = best->pos;
    }
  }
  if (out.capacity() != out_cap) ++scratch.grow_events_;
}

}  // namespace gx::mapper
