#include "genasmx/mapper/minimizer.hpp"

#include <stdexcept>

#include "genasmx/common/sequence.hpp"

namespace gx::mapper {

std::vector<Minimizer> extractMinimizers(std::string_view seq, int k, int w,
                                         std::size_t emit_from) {
  if (k < 4 || k > 31) throw std::invalid_argument("minimizer: k in [4,31]");
  if (w < 1) throw std::invalid_argument("minimizer: w >= 1");
  std::vector<Minimizer> out;
  const std::size_t n = seq.size();
  if (n < static_cast<std::size_t>(k)) return out;

  const std::uint64_t mask = (k == 32) ? ~0ULL : ((1ULL << (2 * k)) - 1);
  const int shift = 2 * (k - 1);
  std::uint64_t fwd = 0, rev = 0;

  // Ring buffer of the last w k-mer ranks.
  struct Entry {
    std::uint64_t key;
    std::uint32_t pos;
    bool reverse;
  };
  std::vector<Entry> ring(static_cast<std::size_t>(w));
  std::uint32_t last_pos = ~0u;

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t code = common::baseCode(seq[i]);
    fwd = ((fwd << 2) | code) & mask;
    rev = (rev >> 2) | ((3ULL ^ code) << shift);
    if (i + 1 < static_cast<std::size_t>(k)) continue;
    const std::uint32_t pos = static_cast<std::uint32_t>(i + 1 - k);
    const bool use_rev = rev < fwd;
    const std::uint64_t key = hash64(use_rev ? rev : fwd);
    ring[pos % w] = Entry{key, pos, use_rev};

    const std::size_t kmers_seen = pos + 1;
    if (kmers_seen < static_cast<std::size_t>(w)) continue;
    // Rescan the window for its minimum; w is small (<= ~32) so this
    // stays cache-resident and branch-predictable.
    const Entry* best = &ring[0];
    for (int r = 1; r < w; ++r) {
      if (ring[r].key < best->key ||
          (ring[r].key == best->key && ring[r].pos > best->pos)) {
        best = &ring[r];
      }
    }
    if (pos < emit_from) {
      // Warm-up window of a block-split extraction: seed the suppression
      // state exactly as the monolithic pass would have left it (after
      // any window, last_pos equals that window's pick) without emitting.
      last_pos = best->pos;
      continue;
    }
    if (best->pos != last_pos) {
      out.push_back(Minimizer{best->key, best->pos, best->reverse});
      last_pos = best->pos;
    }
  }
  return out;
}

}  // namespace gx::mapper
