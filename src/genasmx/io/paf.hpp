#pragma once
// PAF (Pairwise mApping Format) records — minimap2's output format —
// with the cg:Z: CIGAR extension tag.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "genasmx/common/cigar.hpp"
#include "genasmx/common/error.hpp"

namespace gx::io {

struct PafRecord {
  std::string query_name;
  std::size_t query_len = 0;
  std::size_t query_begin = 0;
  std::size_t query_end = 0;
  bool reverse = false;
  std::string target_name;
  std::size_t target_len = 0;
  std::size_t target_begin = 0;
  std::size_t target_end = 0;
  std::size_t matches = 0;        ///< residue matches
  std::size_t alignment_len = 0;  ///< alignment block length
  int mapq = 255;
  common::Cigar cigar;  ///< optional; emitted as cg:Z: when non-empty
};

/// Build the aggregate fields (matches, alignment_len) from the cigar.
void finalizeFromCigar(PafRecord& rec);

/// Serialize one record as a PAF line (no trailing newline). Throws
/// std::invalid_argument for an inconsistent record (matches >
/// alignment_len) — a malformed line must never reach the output.
[[nodiscard]] std::string toPafLine(const PafRecord& rec);

void writePaf(std::ostream& out, const PafRecord& rec);

/// Batched PAF writer: serializes records into an internal buffer and
/// flushes it to the stream in large writes, so per-record ostream
/// overhead stays off the pipeline's emission path. Records appear in
/// write() order; flush happens at the threshold, on flush()/close(),
/// and on destruction.
///
/// Failure model: every flush checks the stream afterwards — a failed
/// stream raises common::Error (kIoFatal, "disk full?") instead of
/// silently producing a truncated PAF with exit 0. Transient faults
/// (EINTR/EAGAIN-class interruptions, short writes — observable through
/// the fault-injection seam; ostreams hide the real errno) are retried
/// with bounded backoff before escalating to kIoTransient. Call close()
/// explicitly to surface the final flush's errors; the destructor
/// flushes best-effort but must not throw.
class PafWriter {
 public:
  explicit PafWriter(std::ostream& out, std::size_t flush_threshold = 1 << 20);
  ~PafWriter();

  PafWriter(const PafWriter&) = delete;
  PafWriter& operator=(const PafWriter&) = delete;

  void write(const PafRecord& rec);

  /// Flush buffered records to the stream. Throws common::Error
  /// (kIoFatal) if the stream has failed, (kIoTransient) if transient
  /// faults persisted past the retry budget.
  void flush();

  /// Final flush + stream check; idempotent. After close() the writer
  /// accepts no further records (write() asserts via kInternal).
  void close();

  /// Records accepted so far.
  [[nodiscard]] std::size_t written() const noexcept { return written_; }
  /// Flush-to-stream write operations performed so far (the ordinal the
  /// fault-injection `*@out:N` clauses address).
  [[nodiscard]] std::uint64_t flushes() const noexcept { return flushes_; }
  /// Transient write faults absorbed by the retry loop so far.
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }

 private:
  void sinkWrite(const char* data, std::size_t n);

  std::ostream& out_;
  std::string buf_;
  std::size_t flush_threshold_;
  std::size_t written_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t retries_ = 0;
  bool closed_ = false;
};

}  // namespace gx::io
