#pragma once
// PAF (Pairwise mApping Format) records — minimap2's output format —
// with the cg:Z: CIGAR extension tag.

#include <iosfwd>
#include <string>

#include "genasmx/common/cigar.hpp"

namespace gx::io {

struct PafRecord {
  std::string query_name;
  std::size_t query_len = 0;
  std::size_t query_begin = 0;
  std::size_t query_end = 0;
  bool reverse = false;
  std::string target_name;
  std::size_t target_len = 0;
  std::size_t target_begin = 0;
  std::size_t target_end = 0;
  std::size_t matches = 0;        ///< residue matches
  std::size_t alignment_len = 0;  ///< alignment block length
  int mapq = 255;
  common::Cigar cigar;  ///< optional; emitted as cg:Z: when non-empty
};

/// Build the aggregate fields (matches, alignment_len) from the cigar.
void finalizeFromCigar(PafRecord& rec);

/// Serialize one record as a PAF line (no trailing newline). Throws
/// std::invalid_argument for an inconsistent record (matches >
/// alignment_len) — a malformed line must never reach the output.
[[nodiscard]] std::string toPafLine(const PafRecord& rec);

void writePaf(std::ostream& out, const PafRecord& rec);

/// Batched PAF writer: serializes records into an internal buffer and
/// flushes it to the stream in large writes, so per-record ostream
/// overhead stays off the pipeline's emission path. Records appear in
/// write() order; flush happens at the threshold, on flush(), and on
/// destruction.
class PafWriter {
 public:
  explicit PafWriter(std::ostream& out, std::size_t flush_threshold = 1 << 20);
  ~PafWriter();

  PafWriter(const PafWriter&) = delete;
  PafWriter& operator=(const PafWriter&) = delete;

  void write(const PafRecord& rec);
  void flush();

  /// Records accepted so far.
  [[nodiscard]] std::size_t written() const noexcept { return written_; }

 private:
  std::ostream& out_;
  std::string buf_;
  std::size_t flush_threshold_;
  std::size_t written_ = 0;
};

}  // namespace gx::io
