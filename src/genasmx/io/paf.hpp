#pragma once
// PAF (Pairwise mApping Format) records — minimap2's output format —
// with the cg:Z: CIGAR extension tag.

#include <iosfwd>
#include <string>

#include "genasmx/common/cigar.hpp"

namespace gx::io {

struct PafRecord {
  std::string query_name;
  std::size_t query_len = 0;
  std::size_t query_begin = 0;
  std::size_t query_end = 0;
  bool reverse = false;
  std::string target_name;
  std::size_t target_len = 0;
  std::size_t target_begin = 0;
  std::size_t target_end = 0;
  std::size_t matches = 0;        ///< residue matches
  std::size_t alignment_len = 0;  ///< alignment block length
  int mapq = 255;
  common::Cigar cigar;  ///< optional; emitted as cg:Z: when non-empty
};

/// Build the aggregate fields (matches, alignment_len) from the cigar.
void finalizeFromCigar(PafRecord& rec);

/// Serialize one record as a PAF line (no trailing newline).
[[nodiscard]] std::string toPafLine(const PafRecord& rec);

void writePaf(std::ostream& out, const PafRecord& rec);

}  // namespace gx::io
