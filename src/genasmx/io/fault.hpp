#pragma once
// Deterministic fault injection for the io layer. A FaultPlan is pure
// data parsed from a spec string (the GENASMX_FAULT environment variable
// or a tool's --fault flag); the io seams — FastxReader, MappedFile,
// PafWriter — consult the process-wide installed plan at well-defined
// points, passing their OWN position counters, so a given (plan, input)
// pair always fails at exactly the same byte/record/write. That
// determinism is what makes the failure-isolation layer testable: the
// fault matrix in tests/test_faults.cpp replays the same faults the ops
// runbook would describe, and asserts one-line errors and counted skips
// instead of crashes.
//
// Spec grammar: comma-separated clauses, each `kind@site:arg`.
//
//   truncate@N        input stream appears to end at byte offset N
//   truncate@in:N     (same, explicit site)
//   eio@rec:N         reading input record N (0-based) raises EIO
//   truncate@map:N    MappedFile::open sees at most N bytes
//   enospc@out:N      output write N (0-based flush count) fails ENOSPC
//   eio@out:N         output write N fails EIO (persists across retries)
//   eintr@out:N       output write N is interrupted once, retry succeeds
//   eagain@out:N      output write N would block once, retry succeeds
//   short@out:N       output write N writes only half, rest on retry
//   close@conn:N      server connection N (accept order, 0-based) is
//                     closed abruptly after its next request header
//   stall@conn:N      server connection N stops draining responses —
//                     every write sees an unwritable socket until the
//                     slow-client timeout sheds it
//   torn@conn:N       server connection N's next request body reads as
//                     EOF mid-frame (a torn frame)
//
// The plan itself holds no mutable state (queries take the caller's
// counters), so one plan can serve concurrent readers/writers and a
// replayed run is bit-for-bit repeatable.

#include <cstdint>
#include <string_view>
#include <vector>

#include "genasmx/common/error.hpp"

namespace gx::io {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kTruncate,
  kEio,
  kEnospc,
  kEintr,
  kEagain,
  kShortWrite,
  kClose,  ///< abrupt connection close (site 'conn' only)
  kStall,  ///< connection stops draining responses (site 'conn' only)
  kTorn,   ///< request frame ends early (site 'conn' only)
};

enum class FaultSite : std::uint8_t {
  kInput,        ///< byte-offset faults on the read stream
  kInputRecord,  ///< per-record faults on the read stream
  kMap,          ///< MappedFile::open
  kOutput,       ///< PafWriter flush-to-stream writes
  kConn,         ///< server connections, by accept order
};

struct FaultClause {
  FaultKind kind = FaultKind::kNone;
  FaultSite site = FaultSite::kInput;
  std::uint64_t arg = 0;  ///< byte offset or ordinal, per site
};

class FaultPlan {
 public:
  static constexpr std::uint64_t kNoLimit = ~std::uint64_t{0};

  FaultPlan() = default;

  /// Parse a spec (see grammar above). Throws common::Error
  /// (kMalformedInput) naming the offending clause on bad syntax.
  [[nodiscard]] static FaultPlan parse(std::string_view spec);

  [[nodiscard]] bool empty() const noexcept { return clauses_.empty(); }
  [[nodiscard]] const std::vector<FaultClause>& clauses() const noexcept {
    return clauses_;
  }

  /// Smallest input-truncation offset, or kNoLimit.
  [[nodiscard]] std::uint64_t inputTruncateAt() const noexcept;

  /// Should parsing input record `record_index` (0-based) raise EIO?
  [[nodiscard]] bool inputRecordEio(std::uint64_t record_index) const noexcept;

  /// Smallest map-truncation size, or kNoLimit.
  [[nodiscard]] std::uint64_t mapTruncateAt() const noexcept;

  /// Fault for output write `write_index`, attempt `attempt` (0-based
  /// per write). Transient kinds (EINTR/EAGAIN/short) fire only on
  /// attempt 0 — a retry deterministically succeeds; persistent kinds
  /// (ENOSPC/EIO) fire on every attempt.
  [[nodiscard]] FaultKind outputFault(std::uint64_t write_index,
                                      std::uint64_t attempt) const noexcept;

  /// Should server connection `conn_index` (accept order, 0-based) be
  /// closed abruptly / stop draining responses / tear its next frame?
  [[nodiscard]] bool connClose(std::uint64_t conn_index) const noexcept;
  [[nodiscard]] bool connStall(std::uint64_t conn_index) const noexcept;
  [[nodiscard]] bool connTorn(std::uint64_t conn_index) const noexcept;

 private:
  std::vector<FaultClause> clauses_;
};

/// The process-wide active plan consulted by the io seams; nullptr (the
/// default) means every seam check is a single relaxed atomic load.
[[nodiscard]] const FaultPlan* activeFaultPlan() noexcept;

/// Install `plan` for the lifetime of the guard (tests, tool main).
/// Plans do not nest meaningfully — the innermost guard wins, and its
/// destructor restores the previous plan. Not for concurrent
/// installation from multiple threads.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultPlan plan);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultPlan plan_;
  const FaultPlan* previous_;
};

}  // namespace gx::io
