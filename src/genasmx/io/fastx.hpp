#pragma once
// Minimal FASTA/FASTQ reading and writing (uncompressed), enough to move
// workloads in and out of the pipeline and interoperate with standard
// tooling.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace gx::io {

struct FastxRecord {
  std::string name;     ///< header without '>'/'@' and without comment
  std::string comment;  ///< text after the first whitespace, if any
  std::string seq;
  std::string qual;  ///< empty for FASTA
};

/// Incremental FASTA/FASTQ parser: pulls one record (or one batch) at a
/// time so pipelines can stream arbitrarily large read sets at bounded
/// memory. Auto-detects FASTA vs FASTQ per record; throws
/// std::runtime_error on malformed input.
class FastxReader {
 public:
  /// The stream must outlive the reader.
  explicit FastxReader(std::istream& in) : in_(in) {}

  /// Parse the next record into `rec` (contents replaced). Returns false
  /// at end of input.
  bool next(FastxRecord& rec);

  /// Parse up to `max_records` records; an empty result means EOF.
  [[nodiscard]] std::vector<FastxRecord> nextBatch(std::size_t max_records);

 private:
  bool nextLine(std::string& line);

  std::istream& in_;
  std::string pending_;  ///< lookahead line (the next record's header)
  bool have_pending_ = false;
};

/// Parse all records from a stream; auto-detects FASTA vs FASTQ per
/// record. Throws std::runtime_error on malformed input.
[[nodiscard]] std::vector<FastxRecord> readFastx(std::istream& in);
[[nodiscard]] std::vector<FastxRecord> readFastxFile(const std::string& path);

/// Write records: FASTQ if a record has quality, FASTA otherwise.
void writeFastx(std::ostream& out, const std::vector<FastxRecord>& records,
                std::size_t line_width = 80);
void writeFastxFile(const std::string& path,
                    const std::vector<FastxRecord>& records,
                    std::size_t line_width = 80);

}  // namespace gx::io
