#pragma once
// Minimal FASTA/FASTQ reading and writing (uncompressed), enough to move
// workloads in and out of the pipeline and interoperate with standard
// tooling.
//
// Failure model: every parse error is a common::Error with code
// kMalformedInput and full context — 1-based line number, byte offset of
// the offending line, record name where known — so a bad record deep in
// a multi-GB FASTQ is locatable without bisection. A reader constructed
// with OnBadRecord::kSkip or kWarn degrades per record instead of
// throwing: it resyncs to the next '@'/'>' header line, counts the skip,
// and keeps streaming (the contract a resident mapping server needs to
// survive arbitrary client input). kAbort (the default) preserves the
// historical throw-on-first-error behaviour.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "genasmx/common/error.hpp"
#include "genasmx/io/fault.hpp"

namespace gx::io {

struct FastxRecord {
  std::string name;     ///< header without '>'/'@' and without comment
  std::string comment;  ///< text after the first whitespace, if any
  std::string seq;
  std::string qual;  ///< empty for FASTA
};

/// What a reader does with a malformed record.
enum class OnBadRecord : std::uint8_t {
  kAbort,  ///< throw common::Error (kMalformedInput) — historical default
  kSkip,   ///< silently resync to the next header and count the skip
  kWarn,   ///< like kSkip, plus the one-line error on the warn stream
};

struct FastxPolicy {
  OnBadRecord on_bad_record = OnBadRecord::kAbort;
  /// Warn target for kWarn (nullptr selects std::cerr).
  std::ostream* warn_stream = nullptr;
  /// Input path used in diagnostics ("" = anonymous stream).
  std::string path;
};

/// Incremental FASTA/FASTQ parser: pulls one record (or one batch) at a
/// time so pipelines can stream arbitrarily large read sets at bounded
/// memory. Auto-detects FASTA vs FASTQ per record.
///
/// Under kAbort, next() throws common::Error (kMalformedInput, with
/// line/byte context) on malformed input; under kSkip/kWarn it only
/// throws for I/O failures (kIoFatal) and malformed records increment
/// skipped(). Resync scans forward to the next line starting with '@'
/// or '>' — like every FASTQ recovery heuristic it can mistake a
/// quality line starting with '@' for a header, costing at most one
/// extra skipped pseudo-record.
class FastxReader {
 public:
  /// The stream must outlive the reader.
  explicit FastxReader(std::istream& in, FastxPolicy policy = {})
      : in_(in), policy_(std::move(policy)) {
    if (const FaultPlan* plan = activeFaultPlan()) {
      truncate_at_ = plan->inputTruncateAt();
    }
  }

  /// Parse the next record into `rec` (contents replaced). Returns false
  /// at end of input.
  bool next(FastxRecord& rec);

  /// Parse up to `max_records` records; an empty result means EOF.
  [[nodiscard]] std::vector<FastxRecord> nextBatch(std::size_t max_records);

  /// Malformed records skipped so far (kSkip/kWarn policies only).
  [[nodiscard]] std::size_t skipped() const noexcept { return skipped_; }
  /// Records successfully returned so far.
  [[nodiscard]] std::size_t records() const noexcept { return records_; }
  /// 1-based line number of the most recently consumed line.
  [[nodiscard]] std::uint64_t line() const noexcept { return cur_line_; }
  /// Byte offset of the start of the most recently consumed line.
  [[nodiscard]] std::uint64_t byteOffset() const noexcept { return cur_off_; }

 private:
  bool nextLine(std::string& line);
  void pushPending(std::string line);
  bool nextRaw(FastxRecord& rec);  ///< throws common::Error on malformed
  void resync();
  [[noreturn]] void raise(common::ErrorCode code, const std::string& message,
                          const std::string& record_name) const;

  std::istream& in_;
  FastxPolicy policy_;
  std::string pending_;  ///< lookahead line (the next record's header)
  bool have_pending_ = false;
  std::uint64_t pending_line_ = 0;  ///< saved position of the pending line
  std::uint64_t pending_off_ = 0;
  std::uint64_t line_no_ = 0;   ///< lines consumed from the stream
  std::uint64_t byte_off_ = 0;  ///< bytes consumed from the stream
  std::uint64_t cur_line_ = 0;  ///< position of the last returned line
  std::uint64_t cur_off_ = 0;
  std::uint64_t truncate_at_ = ~std::uint64_t{0};  ///< fault seam
  bool truncated_ = false;  ///< fault truncation reached: behave as EOF
  std::size_t records_ = 0;
  std::size_t skipped_ = 0;
};

/// Parse all records from a stream; auto-detects FASTA vs FASTQ per
/// record. Throws common::Error (kMalformedInput) on malformed input.
[[nodiscard]] std::vector<FastxRecord> readFastx(std::istream& in);
[[nodiscard]] std::vector<FastxRecord> readFastxFile(const std::string& path);

/// Write records: FASTQ if a record has quality, FASTA otherwise.
void writeFastx(std::ostream& out, const std::vector<FastxRecord>& records,
                std::size_t line_width = 80);
void writeFastxFile(const std::string& path,
                    const std::vector<FastxRecord>& records,
                    std::size_t line_width = 80);

}  // namespace gx::io
