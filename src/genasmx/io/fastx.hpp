#pragma once
// Minimal FASTA/FASTQ reading and writing (uncompressed), enough to move
// workloads in and out of the pipeline and interoperate with standard
// tooling.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace gx::io {

struct FastxRecord {
  std::string name;     ///< header without '>'/'@' and without comment
  std::string comment;  ///< text after the first whitespace, if any
  std::string seq;
  std::string qual;  ///< empty for FASTA
};

/// Parse all records from a stream; auto-detects FASTA vs FASTQ per
/// record. Throws std::runtime_error on malformed input.
[[nodiscard]] std::vector<FastxRecord> readFastx(std::istream& in);
[[nodiscard]] std::vector<FastxRecord> readFastxFile(const std::string& path);

/// Write records: FASTQ if a record has quality, FASTA otherwise.
void writeFastx(std::ostream& out, const std::vector<FastxRecord>& records,
                std::size_t line_width = 80);
void writeFastxFile(const std::string& path,
                    const std::vector<FastxRecord>& records,
                    std::size_t line_width = 80);

}  // namespace gx::io
