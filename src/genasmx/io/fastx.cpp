#include "genasmx/io/fastx.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gx::io {
namespace {

void splitHeader(std::string_view line, FastxRecord& rec) {
  const std::size_t ws = line.find_first_of(" \t");
  if (ws == std::string_view::npos) {
    rec.name = std::string(line);
  } else {
    rec.name = std::string(line.substr(0, ws));
    const std::size_t rest = line.find_first_not_of(" \t", ws);
    if (rest != std::string_view::npos) {
      rec.comment = std::string(line.substr(rest));
    }
  }
}

}  // namespace

bool FastxReader::nextLine(std::string& line) {
  if (have_pending_) {
    line = std::move(pending_);
    have_pending_ = false;
    return true;
  }
  if (!std::getline(in_, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

bool FastxReader::next(FastxRecord& rec) {
  rec = FastxRecord{};
  std::string line;
  // Skip blank separator lines between records.
  do {
    if (!nextLine(line)) return false;
  } while (line.empty());

  if (line[0] == '>') {
    splitHeader(std::string_view(line).substr(1), rec);
    // Sequence lines until the next record header or EOF. A header line
    // becomes the lookahead for the following next() call.
    std::string seq_line;
    while (nextLine(seq_line)) {
      if (!seq_line.empty() && (seq_line[0] == '>' || seq_line[0] == '@')) {
        pending_ = std::move(seq_line);
        have_pending_ = true;
        break;
      }
      rec.seq += seq_line;
    }
    return true;
  }
  if (line[0] == '@') {
    splitHeader(std::string_view(line).substr(1), rec);
    if (!nextLine(rec.seq)) {
      throw std::runtime_error("fastx: truncated FASTQ record " + rec.name);
    }
    std::string plus;
    if (!nextLine(plus) || plus.empty() || plus[0] != '+') {
      throw std::runtime_error("fastx: missing '+' line in " + rec.name);
    }
    if (!nextLine(rec.qual)) {
      throw std::runtime_error("fastx: missing quality line in " + rec.name);
    }
    if (rec.qual.size() != rec.seq.size()) {
      throw std::runtime_error("fastx: quality/sequence length mismatch in " +
                               rec.name);
    }
    return true;
  }
  throw std::runtime_error("fastx: unexpected line: " + line);
}

std::vector<FastxRecord> FastxReader::nextBatch(std::size_t max_records) {
  std::vector<FastxRecord> records;
  FastxRecord rec;
  while (records.size() < max_records && next(rec)) {
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<FastxRecord> readFastx(std::istream& in) {
  FastxReader reader(in);
  std::vector<FastxRecord> records;
  FastxRecord rec;
  while (reader.next(rec)) records.push_back(std::move(rec));
  return records;
}

std::vector<FastxRecord> readFastxFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("fastx: cannot open " + path);
  return readFastx(in);
}

void writeFastx(std::ostream& out, const std::vector<FastxRecord>& records,
                std::size_t line_width) {
  for (const auto& rec : records) {
    if (!rec.qual.empty()) {
      out << '@' << rec.name;
      if (!rec.comment.empty()) out << ' ' << rec.comment;
      out << '\n' << rec.seq << "\n+\n" << rec.qual << '\n';
    } else {
      out << '>' << rec.name;
      if (!rec.comment.empty()) out << ' ' << rec.comment;
      out << '\n';
      for (std::size_t i = 0; i < rec.seq.size(); i += line_width) {
        out << std::string_view(rec.seq).substr(i, line_width) << '\n';
      }
      if (rec.seq.empty()) out << '\n';
    }
  }
}

void writeFastxFile(const std::string& path,
                    const std::vector<FastxRecord>& records,
                    std::size_t line_width) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("fastx: cannot open " + path);
  writeFastx(out, records, line_width);
}

}  // namespace gx::io
