#include "genasmx/io/fastx.hpp"

#include <fstream>
#include <iostream>
#include <sstream>

namespace gx::io {
namespace {

void splitHeader(std::string_view line, FastxRecord& rec) {
  const std::size_t ws = line.find_first_of(" \t");
  if (ws == std::string_view::npos) {
    rec.name = std::string(line);
  } else {
    rec.name = std::string(line.substr(0, ws));
    const std::size_t rest = line.find_first_not_of(" \t", ws);
    if (rest != std::string_view::npos) {
      rec.comment = std::string(line.substr(rest));
    }
  }
}

/// Bounded excerpt of an arbitrary input line for diagnostics: never
/// echo unbounded (or binary) client bytes back into a log line.
std::string excerpt(std::string_view line) {
  constexpr std::size_t kMax = 40;
  std::string out;
  const std::size_t n = std::min(line.size(), kMax);
  out.reserve(n + 3);
  for (std::size_t i = 0; i < n; ++i) {
    const char c = line[i];
    out += (c >= 0x20 && c < 0x7f) ? c : '?';
  }
  if (line.size() > kMax) out += "...";
  return out;
}

}  // namespace

void FastxReader::raise(common::ErrorCode code, const std::string& message,
                        const std::string& record_name) const {
  common::ErrorContext ctx;
  ctx.path = policy_.path;
  ctx.record = record_name;
  ctx.line = cur_line_;
  ctx.byte_offset = cur_off_;
  throw common::Error(code, message, std::move(ctx));
}

bool FastxReader::nextLine(std::string& line) {
  if (have_pending_) {
    line = std::move(pending_);
    have_pending_ = false;
    cur_line_ = pending_line_;
    cur_off_ = pending_off_;
    return true;
  }
  if (truncated_ || byte_off_ >= truncate_at_) return false;
  const std::uint64_t start = byte_off_;
  if (!std::getline(in_, line)) return false;
  byte_off_ += line.size() + (in_.eof() ? 0 : 1);
  ++line_no_;
  cur_line_ = line_no_;
  cur_off_ = start;
  if (byte_off_ > truncate_at_) {
    // Injected truncation lands mid-line: deliver the prefix, then EOF.
    line.resize(truncate_at_ > start
                    ? static_cast<std::size_t>(truncate_at_ - start)
                    : 0);
    truncated_ = true;
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

void FastxReader::pushPending(std::string line) {
  pending_ = std::move(line);
  have_pending_ = true;
  pending_line_ = cur_line_;
  pending_off_ = cur_off_;
}

bool FastxReader::nextRaw(FastxRecord& rec) {
  rec = FastxRecord{};
  if (const FaultPlan* plan = activeFaultPlan();
      plan != nullptr && plan->inputRecordEio(records_ + skipped_)) {
    raise(common::ErrorCode::kIoFatal,
          "fastx: I/O error (EIO) reading input — device failing? (injected "
          "fault)",
          "");
  }
  std::string line;
  // Skip blank separator lines between records.
  do {
    if (!nextLine(line)) return false;
  } while (line.empty());

  if (line[0] == '>') {
    splitHeader(std::string_view(line).substr(1), rec);
    // Sequence lines until the next record header or EOF. A header line
    // becomes the lookahead for the following next() call.
    std::string seq_line;
    while (nextLine(seq_line)) {
      if (!seq_line.empty() && (seq_line[0] == '>' || seq_line[0] == '@')) {
        pushPending(std::move(seq_line));
        break;
      }
      rec.seq += seq_line;
    }
    ++records_;
    return true;
  }
  if (line[0] == '@') {
    splitHeader(std::string_view(line).substr(1), rec);
    if (!nextLine(rec.seq)) {
      raise(common::ErrorCode::kMalformedInput,
            "fastx: FASTQ record truncated after header (no sequence line)",
            rec.name);
    }
    std::string plus;
    if (!nextLine(plus)) {
      raise(common::ErrorCode::kMalformedInput,
            "fastx: FASTQ record truncated after sequence (no '+' line)",
            rec.name);
    }
    if (plus.empty() || plus[0] != '+') {
      raise(common::ErrorCode::kMalformedInput,
            "fastx: expected '+' separator, got '" + excerpt(plus) + "'",
            rec.name);
    }
    if (!nextLine(rec.qual)) {
      raise(common::ErrorCode::kMalformedInput,
            "fastx: FASTQ record truncated after '+' (no quality line)",
            rec.name);
    }
    if (rec.qual.size() != rec.seq.size()) {
      raise(common::ErrorCode::kMalformedInput,
            "fastx: quality length " + std::to_string(rec.qual.size()) +
                " != sequence length " + std::to_string(rec.seq.size()),
            rec.name);
    }
    ++records_;
    return true;
  }
  raise(common::ErrorCode::kMalformedInput,
        "fastx: expected '>' or '@' header, got '" + excerpt(line) + "'", "");
}

void FastxReader::resync() {
  std::string line;
  while (nextLine(line)) {
    if (!line.empty() && (line[0] == '>' || line[0] == '@')) {
      pushPending(std::move(line));
      return;
    }
  }
}

bool FastxReader::next(FastxRecord& rec) {
  for (;;) {
    try {
      return nextRaw(rec);
    } catch (const common::Error& e) {
      if (policy_.on_bad_record == OnBadRecord::kAbort ||
          e.code() != common::ErrorCode::kMalformedInput) {
        throw;
      }
      ++skipped_;
      if (policy_.on_bad_record == OnBadRecord::kWarn) {
        std::ostream& warn =
            policy_.warn_stream != nullptr ? *policy_.warn_stream : std::cerr;
        warn << "[fastx] skipping bad record: " << e.what() << '\n';
      }
      resync();
    }
  }
}

std::vector<FastxRecord> FastxReader::nextBatch(std::size_t max_records) {
  std::vector<FastxRecord> records;
  FastxRecord rec;
  while (records.size() < max_records && next(rec)) {
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<FastxRecord> readFastx(std::istream& in) {
  FastxReader reader(in);
  std::vector<FastxRecord> records;
  FastxRecord rec;
  while (reader.next(rec)) records.push_back(std::move(rec));
  return records;
}

std::vector<FastxRecord> readFastxFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw common::Error(common::ErrorCode::kIoFatal,
                        "fastx: cannot open file for reading",
                        {.path = path});
  }
  FastxPolicy policy;
  policy.path = path;
  FastxReader reader(in, std::move(policy));
  std::vector<FastxRecord> records;
  FastxRecord rec;
  while (reader.next(rec)) records.push_back(std::move(rec));
  return records;
}

void writeFastx(std::ostream& out, const std::vector<FastxRecord>& records,
                std::size_t line_width) {
  for (const auto& rec : records) {
    if (!rec.qual.empty()) {
      out << '@' << rec.name;
      if (!rec.comment.empty()) out << ' ' << rec.comment;
      out << '\n' << rec.seq << "\n+\n" << rec.qual << '\n';
    } else {
      out << '>' << rec.name;
      if (!rec.comment.empty()) out << ' ' << rec.comment;
      out << '\n';
      for (std::size_t i = 0; i < rec.seq.size(); i += line_width) {
        out << std::string_view(rec.seq).substr(i, line_width) << '\n';
      }
      if (rec.seq.empty()) out << '\n';
    }
  }
}

void writeFastxFile(const std::string& path,
                    const std::vector<FastxRecord>& records,
                    std::size_t line_width) {
  std::ofstream out(path);
  if (!out) {
    throw common::Error(common::ErrorCode::kIoFatal,
                        "fastx: cannot open file for writing",
                        {.path = path});
  }
  writeFastx(out, records, line_width);
  out.flush();
  if (!out) {
    throw common::Error(common::ErrorCode::kIoFatal,
                        "fastx: write failed (disk full?)", {.path = path});
  }
}

}  // namespace gx::io
