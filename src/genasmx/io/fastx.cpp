#include "genasmx/io/fastx.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gx::io {
namespace {

void splitHeader(std::string_view line, FastxRecord& rec) {
  const std::size_t ws = line.find_first_of(" \t");
  if (ws == std::string_view::npos) {
    rec.name = std::string(line);
  } else {
    rec.name = std::string(line.substr(0, ws));
    const std::size_t rest = line.find_first_not_of(" \t", ws);
    if (rest != std::string_view::npos) {
      rec.comment = std::string(line.substr(rest));
    }
  }
}

}  // namespace

std::vector<FastxRecord> readFastx(std::istream& in) {
  std::vector<FastxRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line[0] == '>') {
      FastxRecord rec;
      splitHeader(std::string_view(line).substr(1), rec);
      // Sequence lines until the next header or EOF.
      while (in.peek() != '>' && in.peek() != '@' && in.peek() != EOF) {
        std::string seq_line;
        if (!std::getline(in, seq_line)) break;
        if (!seq_line.empty() && seq_line.back() == '\r') seq_line.pop_back();
        rec.seq += seq_line;
      }
      records.push_back(std::move(rec));
    } else if (line[0] == '@') {
      FastxRecord rec;
      splitHeader(std::string_view(line).substr(1), rec);
      if (!std::getline(in, rec.seq)) {
        throw std::runtime_error("fastx: truncated FASTQ record " + rec.name);
      }
      std::string plus;
      if (!std::getline(in, plus) || plus.empty() || plus[0] != '+') {
        throw std::runtime_error("fastx: missing '+' line in " + rec.name);
      }
      if (!std::getline(in, rec.qual)) {
        throw std::runtime_error("fastx: missing quality line in " + rec.name);
      }
      if (!rec.seq.empty() && rec.seq.back() == '\r') rec.seq.pop_back();
      if (!rec.qual.empty() && rec.qual.back() == '\r') rec.qual.pop_back();
      if (rec.qual.size() != rec.seq.size()) {
        throw std::runtime_error("fastx: quality/sequence length mismatch in " +
                                 rec.name);
      }
      records.push_back(std::move(rec));
    } else {
      throw std::runtime_error("fastx: unexpected line: " + line);
    }
  }
  return records;
}

std::vector<FastxRecord> readFastxFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("fastx: cannot open " + path);
  return readFastx(in);
}

void writeFastx(std::ostream& out, const std::vector<FastxRecord>& records,
                std::size_t line_width) {
  for (const auto& rec : records) {
    if (!rec.qual.empty()) {
      out << '@' << rec.name;
      if (!rec.comment.empty()) out << ' ' << rec.comment;
      out << '\n' << rec.seq << "\n+\n" << rec.qual << '\n';
    } else {
      out << '>' << rec.name;
      if (!rec.comment.empty()) out << ' ' << rec.comment;
      out << '\n';
      for (std::size_t i = 0; i < rec.seq.size(); i += line_width) {
        out << std::string_view(rec.seq).substr(i, line_width) << '\n';
      }
      if (rec.seq.empty()) out << '\n';
    }
  }
}

void writeFastxFile(const std::string& path,
                    const std::vector<FastxRecord>& records,
                    std::size_t line_width) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("fastx: cannot open " + path);
  writeFastx(out, records, line_width);
}

}  // namespace gx::io
