#include "genasmx/io/mmap_file.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "genasmx/common/error.hpp"
#include "genasmx/io/fault.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define GENASMX_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <fstream>
#endif

namespace gx::io {
namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw common::Error(common::ErrorCode::kIoFatal,
                      "MappedFile: cannot " + what + ": " +
                          std::strerror(errno),
                      {.path = path});
}

/// Fault seam: a `truncate@map:N` clause makes every mapped file look at
/// most N bytes long, simulating a truncated copy without touching disk.
std::size_t clampToFaultPlan(std::size_t size) {
  if (const FaultPlan* plan = activeFaultPlan()) {
    const std::uint64_t at = plan->mapTruncateAt();
    if (at < size) return static_cast<std::size_t>(at);
  }
  return size;
}

}  // namespace

MappedFile MappedFile::open(const std::string& path) {
  MappedFile f;
#if GENASMX_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("open", path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("stat", path);
  }
  const std::size_t size = clampToFaultPlan(static_cast<std::size_t>(st.st_size));
  if (size > 0) {
    // MAP_PRIVATE on a read-only mapping: pages stay shared with the
    // page cache (no copy happens without a write), so N mapping
    // processes reference one physical copy of the index.
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      fail("mmap", path);
    }
    f.data_ = static_cast<const std::byte*>(addr);
    f.mapped_ = true;
  }
  ::close(fd);  // the mapping keeps its own reference
  f.size_ = size;
#else
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw common::Error(common::ErrorCode::kIoFatal,
                        "MappedFile: cannot open", {.path = path});
  }
  const std::streamoff raw_size = in.tellg();
  in.seekg(0);
  const std::size_t size =
      clampToFaultPlan(static_cast<std::size_t>(raw_size));
  f.owned_.resize(size);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(f.owned_.data()),
               static_cast<std::streamsize>(size))) {
    throw common::Error(common::ErrorCode::kIoFatal,
                        "MappedFile: cannot read", {.path = path});
  }
  f.data_ = f.owned_.data();
  f.size_ = f.owned_.size();
#endif
  f.open_ = true;
  return f;
}

MappedFile MappedFile::fromBytes(std::vector<std::byte> bytes) {
  MappedFile f;
  f.owned_ = std::move(bytes);
  f.data_ = f.owned_.data();
  f.size_ = f.owned_.size();
  f.open_ = true;
  return f;
}

void MappedFile::adviseWillNeed() const noexcept {
#if GENASMX_HAVE_MMAP
  if (mapped_ && size_ > 0) {
    ::madvise(const_cast<std::byte*>(data_), size_, MADV_WILLNEED);
  }
#endif
}

void MappedFile::adviseRandom() const noexcept {
#if GENASMX_HAVE_MMAP
  if (mapped_ && size_ > 0) {
    ::madvise(const_cast<std::byte*>(data_), size_, MADV_RANDOM);
  }
#endif
}

void MappedFile::reset() noexcept {
#if GENASMX_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  open_ = false;
  mapped_ = false;
  owned_.clear();
}

}  // namespace gx::io
