#include "genasmx/io/paf.hpp"

#include <chrono>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "genasmx/io/fault.hpp"

namespace gx::io {

void finalizeFromCigar(PafRecord& rec) {
  rec.matches = rec.cigar.count(common::EditOp::Match);
  rec.alignment_len = rec.cigar.opCount();
}

std::string toPafLine(const PafRecord& rec) {
  if (rec.matches > rec.alignment_len) {
    throw std::invalid_argument(
        "paf: record '" + rec.query_name + "' has matches (" +
        std::to_string(rec.matches) + ") > alignment_len (" +
        std::to_string(rec.alignment_len) + ")");
  }
  std::ostringstream os;
  os << rec.query_name << '\t' << rec.query_len << '\t' << rec.query_begin
     << '\t' << rec.query_end << '\t' << (rec.reverse ? '-' : '+') << '\t'
     << rec.target_name << '\t' << rec.target_len << '\t' << rec.target_begin
     << '\t' << rec.target_end << '\t' << rec.matches << '\t'
     << rec.alignment_len << '\t' << rec.mapq;
  if (!rec.cigar.empty()) {
    os << "\tcg:Z:" << rec.cigar.str();
  }
  return os.str();
}

void writePaf(std::ostream& out, const PafRecord& rec) {
  out << toPafLine(rec) << '\n';
}

PafWriter::PafWriter(std::ostream& out, std::size_t flush_threshold)
    : out_(out), flush_threshold_(flush_threshold) {
  buf_.reserve(flush_threshold_);
}

PafWriter::~PafWriter() {
  // Best-effort: a destructor must not throw. Errors here leave the
  // stream failed, so a caller that cares (every tool does) calls
  // close() first and gets the exception there.
  try {
    if (!closed_) flush();
  } catch (...) {
  }
}

void PafWriter::write(const PafRecord& rec) {
  if (closed_) {
    throw common::Error(common::ErrorCode::kInternal,
                        "paf: write() after close()");
  }
  buf_ += toPafLine(rec);
  buf_ += '\n';
  ++written_;
  if (buf_.size() >= flush_threshold_) flush();
}

void PafWriter::sinkWrite(const char* data, std::size_t n) {
  // One logical write op = one fault-plan ordinal, however many retries
  // it takes. Transient faults (interrupted / would-block / short
  // writes) retry with bounded exponential backoff; persistent ones
  // surface as a clean one-line fatal error.
  constexpr int kMaxTransientRetries = 4;
  const std::uint64_t write_index = flushes_++;
  const FaultPlan* plan = activeFaultPlan();
  std::size_t done = 0;
  int transient = 0;
  for (std::uint64_t attempt = 0;; ++attempt) {
    if (plan != nullptr) {
      switch (plan->outputFault(write_index, attempt)) {
        case FaultKind::kNone:
          break;
        case FaultKind::kEnospc:
          throw common::Error(
              common::ErrorCode::kIoFatal,
              "paf: write failed: no space left on device (ENOSPC) — free "
              "disk space and re-run; output is incomplete");
        case FaultKind::kEio:
          throw common::Error(
              common::ErrorCode::kIoFatal,
              "paf: write failed: I/O error (EIO) — output device failing; "
              "output is incomplete");
        case FaultKind::kEintr:
        case FaultKind::kEagain:
          if (++transient > kMaxTransientRetries) {
            throw common::Error(
                common::ErrorCode::kIoTransient,
                "paf: write kept failing transiently after " +
                    std::to_string(kMaxTransientRetries) + " retries");
          }
          ++retries_;
          std::this_thread::sleep_for(
              std::chrono::microseconds(50u << transient));
          continue;
        case FaultKind::kShortWrite: {
          // Deliver half now; the loop picks up the remainder (attempt
          // > 0, so the clause no longer fires).
          const std::size_t half = (n - done + 1) / 2;
          out_.write(data + done, static_cast<std::streamsize>(half));
          if (!out_) break;  // fall through to the stream check below
          done += half;
          ++retries_;
          continue;
        }
        case FaultKind::kTruncate:
          break;  // not an output fault; unreachable (parser rejects it)
      }
    }
    if (done < n && out_) {
      out_.write(data + done, static_cast<std::streamsize>(n - done));
    }
    if (!out_) {
      throw common::Error(
          common::ErrorCode::kIoFatal,
          "paf: output stream write failed (disk full or closed pipe?) — "
          "output is incomplete");
    }
    return;
  }
}

void PafWriter::flush() {
  if (!buf_.empty()) {
    sinkWrite(buf_.data(), buf_.size());
    buf_.clear();
  }
  out_.flush();
  if (!out_) {
    throw common::Error(
        common::ErrorCode::kIoFatal,
        "paf: output flush failed (disk full?) — output is incomplete");
  }
}

void PafWriter::close() {
  if (closed_) return;
  flush();
  closed_ = true;
}

}  // namespace gx::io
