#include "genasmx/io/paf.hpp"

#include <ostream>
#include <sstream>

namespace gx::io {

void finalizeFromCigar(PafRecord& rec) {
  rec.matches = rec.cigar.count(common::EditOp::Match);
  rec.alignment_len = rec.cigar.opCount();
}

std::string toPafLine(const PafRecord& rec) {
  std::ostringstream os;
  os << rec.query_name << '\t' << rec.query_len << '\t' << rec.query_begin
     << '\t' << rec.query_end << '\t' << (rec.reverse ? '-' : '+') << '\t'
     << rec.target_name << '\t' << rec.target_len << '\t' << rec.target_begin
     << '\t' << rec.target_end << '\t' << rec.matches << '\t'
     << rec.alignment_len << '\t' << rec.mapq;
  if (!rec.cigar.empty()) {
    os << "\tcg:Z:" << rec.cigar.str();
  }
  return os.str();
}

void writePaf(std::ostream& out, const PafRecord& rec) {
  out << toPafLine(rec) << '\n';
}

}  // namespace gx::io
