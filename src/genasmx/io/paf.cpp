#include "genasmx/io/paf.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gx::io {

void finalizeFromCigar(PafRecord& rec) {
  rec.matches = rec.cigar.count(common::EditOp::Match);
  rec.alignment_len = rec.cigar.opCount();
}

std::string toPafLine(const PafRecord& rec) {
  if (rec.matches > rec.alignment_len) {
    throw std::invalid_argument(
        "paf: record '" + rec.query_name + "' has matches (" +
        std::to_string(rec.matches) + ") > alignment_len (" +
        std::to_string(rec.alignment_len) + ")");
  }
  std::ostringstream os;
  os << rec.query_name << '\t' << rec.query_len << '\t' << rec.query_begin
     << '\t' << rec.query_end << '\t' << (rec.reverse ? '-' : '+') << '\t'
     << rec.target_name << '\t' << rec.target_len << '\t' << rec.target_begin
     << '\t' << rec.target_end << '\t' << rec.matches << '\t'
     << rec.alignment_len << '\t' << rec.mapq;
  if (!rec.cigar.empty()) {
    os << "\tcg:Z:" << rec.cigar.str();
  }
  return os.str();
}

void writePaf(std::ostream& out, const PafRecord& rec) {
  out << toPafLine(rec) << '\n';
}

PafWriter::PafWriter(std::ostream& out, std::size_t flush_threshold)
    : out_(out), flush_threshold_(flush_threshold) {
  buf_.reserve(flush_threshold_);
}

PafWriter::~PafWriter() { flush(); }

void PafWriter::write(const PafRecord& rec) {
  buf_ += toPafLine(rec);
  buf_ += '\n';
  ++written_;
  if (buf_.size() >= flush_threshold_) flush();
}

void PafWriter::flush() {
  if (!buf_.empty()) {
    out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
  }
  out_.flush();
}

}  // namespace gx::io
