#include "genasmx/io/fault.hpp"

#include <atomic>
#include <string>

namespace gx::io {
namespace {

std::atomic<const FaultPlan*> g_active{nullptr};

[[noreturn]] void badSpec(std::string_view clause, const std::string& why) {
  throw common::Error(
      common::ErrorCode::kMalformedInput,
      "fault: bad clause '" + std::string(clause) + "': " + why +
          " (grammar: kind@site:arg, e.g. truncate@4096, eio@rec:17, "
          "enospc@out:2)");
}

bool parseU64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (~std::uint64_t{0} - (c - '0')) / 10) return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

FaultClause parseClause(std::string_view clause) {
  const std::size_t at = clause.find('@');
  if (at == std::string_view::npos) badSpec(clause, "missing '@'");
  const std::string_view kind_s = clause.substr(0, at);
  std::string_view rest = clause.substr(at + 1);

  FaultClause c;
  if (kind_s == "truncate") {
    c.kind = FaultKind::kTruncate;
  } else if (kind_s == "eio") {
    c.kind = FaultKind::kEio;
  } else if (kind_s == "enospc") {
    c.kind = FaultKind::kEnospc;
  } else if (kind_s == "eintr") {
    c.kind = FaultKind::kEintr;
  } else if (kind_s == "eagain") {
    c.kind = FaultKind::kEagain;
  } else if (kind_s == "short") {
    c.kind = FaultKind::kShortWrite;
  } else if (kind_s == "close") {
    c.kind = FaultKind::kClose;
  } else if (kind_s == "stall") {
    c.kind = FaultKind::kStall;
  } else if (kind_s == "torn") {
    c.kind = FaultKind::kTorn;
  } else {
    badSpec(clause, "unknown kind '" + std::string(kind_s) + "'");
  }

  // Site is optional for truncate (defaults to the input stream):
  // `truncate@4096` == `truncate@in:4096`.
  const std::size_t colon = rest.find(':');
  std::string_view site_s, arg_s;
  if (colon == std::string_view::npos) {
    site_s = "in";
    arg_s = rest;
  } else {
    site_s = rest.substr(0, colon);
    arg_s = rest.substr(colon + 1);
  }
  if (site_s == "in") {
    c.site = FaultSite::kInput;
  } else if (site_s == "rec") {
    c.site = FaultSite::kInputRecord;
  } else if (site_s == "map") {
    c.site = FaultSite::kMap;
  } else if (site_s == "out") {
    c.site = FaultSite::kOutput;
  } else if (site_s == "conn") {
    c.site = FaultSite::kConn;
  } else {
    badSpec(clause, "unknown site '" + std::string(site_s) + "'");
  }
  if (!parseU64(arg_s, c.arg)) {
    badSpec(clause, "bad numeric argument '" + std::string(arg_s) + "'");
  }

  // Reject combinations no seam implements, so a typo'd plan fails at
  // parse time instead of silently never firing.
  const bool conn_kind = c.kind == FaultKind::kClose ||
                         c.kind == FaultKind::kStall ||
                         c.kind == FaultKind::kTorn;
  switch (c.site) {
    case FaultSite::kInput:
    case FaultSite::kMap:
      if (c.kind != FaultKind::kTruncate) {
        badSpec(clause, "only 'truncate' applies to this site");
      }
      break;
    case FaultSite::kInputRecord:
      if (c.kind != FaultKind::kEio) {
        badSpec(clause, "only 'eio' applies to site 'rec'");
      }
      break;
    case FaultSite::kOutput:
      if (c.kind == FaultKind::kTruncate || conn_kind) {
        badSpec(clause, "kind does not apply to site 'out'");
      }
      break;
    case FaultSite::kConn:
      if (!conn_kind) {
        badSpec(clause,
                "only 'close'/'stall'/'torn' apply to site 'conn'");
      }
      break;
  }
  return c;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view clause = spec.substr(pos, comma - pos);
    // Tolerate surrounding whitespace — the spec typically arrives via an
    // environment variable or shell-quoted flag.
    while (!clause.empty() && (clause.front() == ' ' || clause.front() == '\t'))
      clause.remove_prefix(1);
    while (!clause.empty() && (clause.back() == ' ' || clause.back() == '\t'))
      clause.remove_suffix(1);
    if (!clause.empty()) plan.clauses_.push_back(parseClause(clause));
    pos = comma + 1;
  }
  return plan;
}

std::uint64_t FaultPlan::inputTruncateAt() const noexcept {
  std::uint64_t at = kNoLimit;
  for (const FaultClause& c : clauses_) {
    if (c.kind == FaultKind::kTruncate && c.site == FaultSite::kInput &&
        c.arg < at) {
      at = c.arg;
    }
  }
  return at;
}

bool FaultPlan::inputRecordEio(std::uint64_t record_index) const noexcept {
  for (const FaultClause& c : clauses_) {
    if (c.kind == FaultKind::kEio && c.site == FaultSite::kInputRecord &&
        c.arg == record_index) {
      return true;
    }
  }
  return false;
}

std::uint64_t FaultPlan::mapTruncateAt() const noexcept {
  std::uint64_t at = kNoLimit;
  for (const FaultClause& c : clauses_) {
    if (c.kind == FaultKind::kTruncate && c.site == FaultSite::kMap &&
        c.arg < at) {
      at = c.arg;
    }
  }
  return at;
}

FaultKind FaultPlan::outputFault(std::uint64_t write_index,
                                 std::uint64_t attempt) const noexcept {
  for (const FaultClause& c : clauses_) {
    if (c.site != FaultSite::kOutput || c.arg != write_index) continue;
    const bool persistent =
        c.kind == FaultKind::kEnospc || c.kind == FaultKind::kEio;
    if (persistent || attempt == 0) return c.kind;
  }
  return FaultKind::kNone;
}

bool FaultPlan::connClose(std::uint64_t conn_index) const noexcept {
  for (const FaultClause& c : clauses_) {
    if (c.kind == FaultKind::kClose && c.site == FaultSite::kConn &&
        c.arg == conn_index) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::connStall(std::uint64_t conn_index) const noexcept {
  for (const FaultClause& c : clauses_) {
    if (c.kind == FaultKind::kStall && c.site == FaultSite::kConn &&
        c.arg == conn_index) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::connTorn(std::uint64_t conn_index) const noexcept {
  for (const FaultClause& c : clauses_) {
    if (c.kind == FaultKind::kTorn && c.site == FaultSite::kConn &&
        c.arg == conn_index) {
      return true;
    }
  }
  return false;
}

const FaultPlan* activeFaultPlan() noexcept {
  return g_active.load(std::memory_order_relaxed);
}

ScopedFaultInjection::ScopedFaultInjection(FaultPlan plan)
    : plan_(std::move(plan)),
      previous_(g_active.load(std::memory_order_relaxed)) {
  g_active.store(plan_.empty() ? previous_ : &plan_,
                 std::memory_order_release);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  g_active.store(previous_, std::memory_order_release);
}

}  // namespace gx::io
