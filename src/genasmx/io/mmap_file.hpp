#pragma once
// MappedFile — read-only memory mapping of a whole file, the zero-copy
// substrate under MappedIndex (shasta's MemoryMapped idiom: flat POD
// sections reopened read-only, with N processes sharing one physical
// copy through the page cache). On POSIX this is open+mmap+madvise; on
// other platforms it degrades to reading the file into an owned buffer,
// so callers never see the difference beyond cold-start cost.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gx::io {

class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept { swap(other); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      reset();
      swap(other);
    }
    return *this;
  }
  ~MappedFile() { reset(); }

  /// Map `path` read-only. Throws std::runtime_error (with errno detail)
  /// if the file cannot be opened, stat'ed, or mapped. An empty file
  /// maps to an empty (but open) MappedFile.
  [[nodiscard]] static MappedFile open(const std::string& path);

  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool isOpen() const noexcept { return open_; }

  /// Hint the kernel the whole mapping will be read soon (prefetch).
  /// Best-effort: a no-op where madvise is unavailable.
  void adviseWillNeed() const noexcept;
  /// Hint random access (index lookups binary-search the key section).
  void adviseRandom() const noexcept;

 private:
  void reset() noexcept;
  void swap(MappedFile& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(open_, other.open_);
    std::swap(mapped_, other.mapped_);
    owned_.swap(other.owned_);
  }

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool open_ = false;
  bool mapped_ = false;            ///< true: data_ came from mmap
  std::vector<std::byte> owned_;   ///< non-POSIX fallback buffer
};

}  // namespace gx::io
