#pragma once
// Baseline GenASM window solver, reproducing the MICRO'20 algorithm the
// paper improves upon:
//
//   * GenASM-DC runs column-major (one text character at a time, all
//     distance levels per column), exactly like the hardware pipeline.
//   * Every (column, level) entry stores all four transition bitvectors
//     (match / substitution / deletion / insertion) for GenASM-TB.
//   * No early termination and no storage pruning: the full
//     n x (k+1) x 4 table is written for every problem.
//
// This is the comparator for all three of the paper's improvements; the
// improved solver lives in genasmx/core/genasm_improved.hpp.

#include <cstdint>
#include <string_view>
#include <vector>

#include "genasmx/bitvector/bitvector.hpp"
#include "genasmx/common/cigar.hpp"
#include "genasmx/genasm/genasm_common.hpp"
#include "genasmx/util/mem_stats.hpp"

namespace gx::genasm {

template <int NW>
class BaselineWindowSolver {
 public:
  using Vec = bitvector::BitVec<NW>;

  /// Align pattern_rev against text_rev (both pre-reversed, see
  /// genasm_common.hpp). Counter is the DP-memory instrumentation policy.
  template <class Counter = util::NullMemCounter>
  WindowResult solve(std::string_view text_rev, std::string_view pattern_rev,
                     const WindowSpec& spec, Counter counter = Counter{}) {
    WindowResult out;
    solve(text_rev, pattern_rev, spec, out, counter);
    return out;
  }

  /// In-place overload (see ImprovedWindowSolver): resets and refills
  /// `out`, preserving its cigar capacity across windows.
  template <class Counter = util::NullMemCounter>
  void solve(std::string_view text_rev, std::string_view pattern_rev,
             const WindowSpec& spec, WindowResult& out,
             Counter counter = Counter{}) {
    out.ok = false;
    out.distance = -1;
    out.traceback_complete = false;
    out.cigar.clear();
    const int n = static_cast<int>(text_rev.size());
    const int m = static_cast<int>(pattern_rev.size());
    if (m <= 0 || m > Vec::kBits) return;
    const int k = spec.max_edits >= 0 ? spec.max_edits
                                      : autoEditCap(n, m, spec.anchor);
    const int levels = k + 1;

    // Logical per-problem DP footprint; the flat scratch buffers grow
    // monotonically and are reused across calls, so footprint is
    // accounted explicitly (and symmetrically freed below).
    const std::uint64_t edge_bytes =
        std::uint64_t(4) * std::uint64_t(n) * levels * sizeof(Vec);
    const std::uint64_t col_bytes = std::uint64_t(2) * levels * sizeof(Vec);
    counter.alloc(edge_bytes + col_bytes);
    counter.problem();

    masks_.assign(pattern_rev);
    ensureScratch(edges_, static_cast<std::size_t>(n) * levels, counter);
    ensureScratch(prev_, static_cast<std::size_t>(levels), counter);
    ensureScratch(cur_, static_cast<std::size_t>(levels), counter);

    // Column 0: pattern prefix j+1 needs j+1 insertions.
    for (int d = 0; d < levels; ++d) {
      prev_[d] = Vec::onesAbove(d);
      counter.store(NW);
    }

    // Column-major GenASM-DC.
    for (int i = 1; i <= n; ++i) {
      const Vec& pm = masks_.forChar(text_rev[i - 1]);
      Edges* col = &edges_[static_cast<std::size_t>(i - 1) * levels];
      for (int d = 0; d < levels; ++d) {
        // One load per entry: prev_[d]. The other operands are register-
        // carried, as in the MICRO'20 pipeline: prev_[d-1] was read as
        // prev_[d] on the previous level iteration and cur_[d-1] was just
        // computed.
        counter.load(NW);
        const Vec match =
            prev_[d].shl1(shiftInOne(spec.anchor, i - 1, d)) | pm;
        Vec r = match;
        Vec sub = Vec::allOnes();
        Vec del = Vec::allOnes();
        Vec ins = Vec::allOnes();
        if (d > 0) {
          sub = prev_[d - 1].shl1(shiftInOne(spec.anchor, i - 1, d - 1));
          del = prev_[d - 1];
          ins = cur_[d - 1].shl1(shiftInOne(spec.anchor, i, d - 1));
          r = match & sub & del & ins;
        }
        cur_[d] = r;
        col[d] = Edges{match, sub, del, ins};
        counter.store(5 * NW);  // working entry + four stored edge vectors
        counter.entry();
      }
      std::swap(prev_, cur_);
    }
    // GPU dependency-chain shape: the column-major pipeline drains after
    // n columns + (k+1) levels of wavefront steps.
    counter.wavefront(static_cast<std::uint64_t>(n) + levels);

    // prev_ holds the final column; find the minimal solved level.
    int dmin = -1;
    for (int d = 0; d < levels; ++d) {
      counter.load(NW);
      if (!prev_[d].bit(m - 1)) {
        dmin = d;
        break;
      }
    }
    if (dmin >= 0) {
      out.distance = dmin;
      out.ok = traceback(text_rev, spec, n, m, dmin, levels, out, counter);
    }
    counter.free(edge_bytes + col_bytes);
  }

  /// Distance-only fast path (see genasm::solveDistanceTwoRow): the
  /// baseline has no cheap d_min kernel in hardware, but exposing one
  /// keeps Aligner::distance() honest for every backend. Scratch is
  /// shared with solve() — both only ever grow it.
  template <class Counter = util::NullMemCounter>
  int solveDistance(std::string_view text_rev, std::string_view pattern_rev,
                    const WindowSpec& spec, Counter counter = Counter{}) {
    return solveDistanceTwoRow<NW>(text_rev, pattern_rev, spec, masks_,
                                   prev_, cur_, counter);
  }

 private:
  struct Edges {
    Vec match, sub, del, ins;
  };

  /// Probe for the shared genasm::walkTraceback: one stored-edge-vector
  /// load resolves the match transition; only when the match fails (and
  /// a lower level exists) are the other three edge vectors loaded —
  /// the lazy accounting GenASM-TB's hardware walk pays.
  template <class Counter>
  bool traceback(std::string_view text_rev, const WindowSpec& spec, int n,
                 int m, int dmin, int levels, WindowResult& out,
                 Counter& counter) {
    (void)text_rev;
    const TbStatus status = walkTraceback(
        spec.anchor, n, m, dmin, tbOpBudget(spec.tb_op_limit),
        [&](int i, int pl, int d) {
          const Edges& e =
              edges_[static_cast<std::size_t>(i - 1) * levels + d];
          counter.load(NW);
          TbFlags f;
          f.match = !e.match.bit(pl - 1);
          if (!f.match && d >= 1) {
            counter.load(3 * NW);
            f.del = !e.del.bit(pl - 1);
            f.ins = !e.ins.bit(pl - 1);
            f.sub = !e.sub.bit(pl - 1);
          }
          return f;
        },
        [&](common::EditOp op, std::uint32_t count) {
          out.cigar.push(op, count);
        });
    out.traceback_complete = status == TbStatus::Complete;
    return status != TbStatus::Bad;
  }

  // Flat scratch, grown monotonically and reused across solves (and, via
  // the engine's per-worker aligner pool, across reads and batches).
  std::vector<Edges> edges_;
  std::vector<Vec> prev_, cur_;
  bitvector::PatternMasks<NW> masks_;
};

/// Convenience: fully global baseline alignment of query against target
/// (both <= 512 characters; longer inputs go through the windowed driver
/// in genasmx/core/windowed.hpp). Reverses internally.
[[nodiscard]] common::AlignmentResult alignGlobalBaseline(
    std::string_view target, std::string_view query, int max_edits = -1,
    util::MemStats* stats = nullptr);

}  // namespace gx::genasm
