#pragma once
// Shared definitions for the GenASM window solvers (baseline and improved).
//
// Orientation convention
// ----------------------
// Window solvers receive the text and pattern windows *reversed*. The
// Bitap automaton naturally allows a match to begin at any text position
// (free text prefix in solver orientation); on reversed inputs this frees
// the *end* of the original window — exactly the lookahead GenASM's
// windowing heuristic needs — while anchoring the original *start* of
// both sequences. Traceback walks from the automaton's end state, so
// operations are emitted front-to-back in original orientation and the
// windowing driver can commit the first W-O of them directly.
//
// Anchoring
// ---------
//   StartOnly : original text start anchored, original text end free
//               (the normal mid-read window mode).
//   BothEnds  : fully global; implemented by feeding a 1 into bit 0 on
//               every shift unless the empty-prefix state is still
//               affordable (i <= d), see BitVec::shl1.

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "genasmx/bitvector/bitvector.hpp"
#include "genasmx/common/cigar.hpp"
#include "genasmx/common/sequence.hpp"
#include "genasmx/util/mem_stats.hpp"

namespace gx::genasm {

enum class Anchor {
  StartOnly,  ///< anchored at original start; original text end free
  BothEnds,   ///< global alignment of the two windows
};

/// One window-alignment request (solver orientation, i.e. pre-reversed).
struct WindowSpec {
  Anchor anchor = Anchor::StartOnly;
  int max_edits = -1;    ///< level cap k; -1 selects the always-solvable cap
  int tb_op_limit = -1;  ///< emit at most this many traceback ops; -1 = all
};

/// Window-alignment outcome. The cigar is in original orientation,
/// truncated to tb_op_limit operations when a limit was set.
struct WindowResult {
  bool ok = false;
  int distance = -1;          ///< d_min found by the distance calculation
  common::Cigar cigar;        ///< possibly truncated (see tb_op_limit)
  bool traceback_complete = false;  ///< false iff truncated by the limit
};

/// The always-solvable per-window level cap: with a free text end the
/// worst case is inserting the whole pattern (m); fully global alignment
/// additionally needs to delete all text (max(n, m) edits).
[[nodiscard]] constexpr int autoEditCap(int text_len, int pattern_len,
                                        Anchor anchor) noexcept {
  return anchor == Anchor::StartOnly ? pattern_len
                                     : (text_len > pattern_len ? text_len
                                                               : pattern_len);
}

/// Empty-prefix ("bit -1") availability: in StartOnly mode the automaton
/// may begin matching at any text offset, so the state is always free; in
/// BothEnds mode it costs one deletion per skipped text character and is
/// affordable only while i <= d. Returns the *bit value* shifted into bit
/// 0 (active-low: 0 = state available).
[[nodiscard]] constexpr bool shiftInOne(Anchor anchor, int i, int d) noexcept {
  return anchor == Anchor::BothEnds && i > d;
}

/// Global (BothEnds) alignment through a caller-owned solver and reversal
/// buffers — the allocation-free path the engine's per-worker aligners
/// use. Handles the empty-query degenerate case the solvers reject.
template <class Solver, class Counter = util::NullMemCounter>
common::AlignmentResult alignGlobalWith(Solver& solver, std::string& t_rev,
                                        std::string& q_rev,
                                        std::string_view target,
                                        std::string_view query, int max_edits,
                                        Counter counter = Counter{}) {
  common::AlignmentResult out;
  if (query.empty()) {
    out.ok = true;
    out.edit_distance = static_cast<int>(target.size());
    out.score = -out.edit_distance;
    if (!target.empty()) {
      out.cigar.push(common::EditOp::Deletion,
                     static_cast<std::uint32_t>(target.size()));
    }
    return out;
  }
  WindowSpec spec;
  spec.anchor = Anchor::BothEnds;
  spec.max_edits = max_edits;
  common::reverseInto(t_rev, target);
  common::reverseInto(q_rev, query);
  WindowResult wr = solver.solve(t_rev, q_rev, spec, counter);
  if (!wr.ok) return out;
  out.ok = true;
  out.edit_distance = wr.distance;
  out.score = -wr.distance;
  out.cigar = std::move(wr.cigar);
  return out;
}

/// Global (BothEnds) distance through solveDistance: the two-row kernel,
/// with the caller's result cap folded into the level cap so hopeless
/// problems stop at cap+1 levels. Returns the exact distance when it is
/// <= cap (or cap < 0), else -1.
template <class Solver, class Counter = util::NullMemCounter>
int distanceGlobalWith(Solver& solver, std::string& t_rev, std::string& q_rev,
                       std::string_view target, std::string_view query,
                       int max_edits, int cap, Counter counter = Counter{}) {
  if (query.empty()) {
    const int d = static_cast<int>(target.size());
    return (cap >= 0 && d > cap) ? -1 : d;
  }
  WindowSpec spec;
  spec.anchor = Anchor::BothEnds;
  int k = max_edits >= 0
              ? max_edits
              : autoEditCap(static_cast<int>(target.size()),
                            static_cast<int>(query.size()), Anchor::BothEnds);
  if (cap >= 0 && cap < k) k = cap;
  spec.max_edits = k;
  common::reverseInto(t_rev, target);
  common::reverseInto(q_rev, query);
  return solver.solveDistance(t_rev, q_rev, spec, counter);
}

/// Outcome of walkTraceback: Complete walks emitted every operation,
/// Truncated walks stopped at the op limit (still a usable window
/// result — the windowed driver discards the tail anyway), Bad walks
/// hit a state no stored transition explains (must not happen on a
/// consistent table; callers report ok == false).
enum class TbStatus {
  Complete,
  Truncated,
  Bad,
};

/// Transition availability at one traceback state, as reported by a
/// backend's probe. All flags follow the active-low bitvector convention
/// already resolved to booleans: true = the transition is usable.
struct TbFlags {
  bool match = false;
  bool del = false;
  bool ins = false;
  bool sub = false;
};

/// THE GenASM traceback walk — the single implementation every backend
/// runs (baseline solver, improved solver, and the SIMD lane solver all
/// consume it; nothing else may duplicate this loop). The walk owns all
/// control flow the backends previously hand-synchronized:
///
///   * the op budget (`limit`): hitting it truncates the walk;
///   * the pl == 0 tail in BothEnds mode (unconsumed reversed-text
///     prefix == the original window's trailing characters, emitted as
///     one bulk deletion);
///   * the i == 0 edge (only insertions remain, affordable iff pl <= d);
///   * the match > del > ins > sub priority. Indels commit eagerly (as
///     leftmost as possible): windowed alignment discards each window's
///     tail, so deferring a gap repair into the discarded suffix would
///     leave the window cursors permanently off-diagonal.
///
/// Backends supply only their storage access (`probe(i, pl, d)` returns
/// the four transition flags for the current state) and their output
/// (`emit(op, count)` — a cigar push or an operation counter). Probes
/// are also where each backend's DP-memory accounting lives, so the
/// MemStats comparison between solvers stays exactly as measured before
/// the walks were unified.
template <class Probe, class Emit>
TbStatus walkTraceback(Anchor anchor, int n, int m, int dmin,
                       std::uint64_t limit, Probe&& probe, Emit&& emit) {
  int i = n;
  int pl = m;  // matched pattern prefix length
  int d = dmin;
  std::uint64_t ops = 0;
  const bool both = anchor == Anchor::BothEnds;

  while (pl > 0 || (both && i > 0)) {
    if (ops >= limit) return TbStatus::Truncated;
    if (pl == 0) {
      // BothEnds tail: the unconsumed reversed-text prefix is the
      // original window's trailing characters — emit deletions.
      const std::uint64_t take =
          std::min<std::uint64_t>(static_cast<std::uint64_t>(i), limit - ops);
      emit(common::EditOp::Deletion, static_cast<std::uint32_t>(take));
      ops += take;
      i -= static_cast<int>(take);
      d -= static_cast<int>(take);
      continue;
    }
    if (i == 0) {
      // Only insertions can remain; affordable iff pl <= d.
      if (d >= 1 && pl <= d) {
        emit(common::EditOp::Insertion, 1);
        --pl;
        --d;
        ++ops;
        continue;
      }
      return TbStatus::Bad;
    }
    const TbFlags f = probe(i, pl, d);
    if (f.match) {
      emit(common::EditOp::Match, 1);
      --i;
      --pl;
    } else if (f.del) {
      emit(common::EditOp::Deletion, 1);
      --i;
      --d;
    } else if (f.ins) {
      emit(common::EditOp::Insertion, 1);
      --pl;
      --d;
    } else if (f.sub) {
      emit(common::EditOp::Mismatch, 1);
      --i;
      --pl;
      --d;
    } else {
      return TbStatus::Bad;  // inconsistent table (must not happen)
    }
    ++ops;
  }
  return TbStatus::Complete;
}

/// spec.tb_op_limit as walkTraceback's op budget (-1 = unbounded).
[[nodiscard]] constexpr std::uint64_t tbOpBudget(int tb_op_limit) noexcept {
  return tb_op_limit < 0 ? ~0ULL : static_cast<std::uint64_t>(tb_op_limit);
}

/// Monotone scratch growth: solver arenas only ever grow, so repeated
/// solves over a stable window geometry perform zero heap allocations.
/// Growth events are recorded in MemStats::scratch_allocs so the perf
/// harness can assert steady-state allocation-freedom.
template <class T, class Counter>
void ensureScratch(std::vector<T>& buf, std::size_t n, Counter& counter) {
  if (buf.size() < n) {
    counter.scratch((n - buf.size()) * sizeof(T));
    buf.resize(n);
  }
}

/// Distance-only GenASM-DC: the level-major two-working-row loop with
/// inherent early termination and *no* row persistence or traceback —
/// the cheapest possible d_min kernel (O(n) space regardless of k).
/// Shared by both window solvers; `masks`/`prev`/`cur` are caller-owned
/// scratch so steady-state calls allocate nothing. Returns d_min, or -1
/// when the problem is unsolvable within the level cap (or m is out of
/// range for the bitvector width).
template <int NW, class Counter>
int solveDistanceTwoRow(std::string_view text_rev, std::string_view pattern_rev,
                        const WindowSpec& spec,
                        bitvector::PatternMasks<NW>& masks,
                        std::vector<bitvector::BitVec<NW>>& prev,
                        std::vector<bitvector::BitVec<NW>>& cur,
                        Counter& counter) {
  using Vec = bitvector::BitVec<NW>;
  const int n = static_cast<int>(text_rev.size());
  const int m = static_cast<int>(pattern_rev.size());
  if (m <= 0 || m > Vec::kBits) return -1;
  const int k =
      spec.max_edits >= 0 ? spec.max_edits : autoEditCap(n, m, spec.anchor);
  const int levels = k + 1;

  masks.assign(pattern_rev);
  ensureScratch(prev, static_cast<std::size_t>(n) + 1, counter);
  ensureScratch(cur, static_cast<std::size_t>(n) + 1, counter);
  const std::uint64_t work_bytes =
      std::uint64_t(2) * (n + 1) * sizeof(Vec);
  counter.alloc(work_bytes);
  counter.problem();

  int dmin = -1;
  int computed_levels = 0;
  for (int d = 0; d < levels && dmin < 0; ++d) {
    computed_levels = d + 1;
    cur[0] = Vec::onesAbove(d);
    counter.store(NW);
    for (int i = 1; i <= n; ++i) {
      const Vec& pm = masks.forChar(text_rev[i - 1]);
      Vec r = cur[i - 1].shl1(shiftInOne(spec.anchor, i - 1, d)) | pm;
      if (d > 0) {
        counter.load(NW);  // prev[i]; the rest is register-carried
        r = r & prev[i - 1].shl1(shiftInOne(spec.anchor, i - 1, d - 1)) &
            prev[i - 1] &
            prev[i].shl1(shiftInOne(spec.anchor, i, d - 1));
      }
      cur[i] = r;
      counter.store(NW);
      counter.entry();
    }
    counter.load(NW);
    if (!cur[n].bit(m - 1)) {
      dmin = d;
    } else {
      std::swap(prev, cur);
    }
  }
  counter.wavefront(static_cast<std::uint64_t>(n) + computed_levels);
  counter.free(work_bytes);
  return dmin;
}

}  // namespace gx::genasm
