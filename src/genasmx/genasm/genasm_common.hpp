#pragma once
// Shared definitions for the GenASM window solvers (baseline and improved).
//
// Orientation convention
// ----------------------
// Window solvers receive the text and pattern windows *reversed*. The
// Bitap automaton naturally allows a match to begin at any text position
// (free text prefix in solver orientation); on reversed inputs this frees
// the *end* of the original window — exactly the lookahead GenASM's
// windowing heuristic needs — while anchoring the original *start* of
// both sequences. Traceback walks from the automaton's end state, so
// operations are emitted front-to-back in original orientation and the
// windowing driver can commit the first W-O of them directly.
//
// Anchoring
// ---------
//   StartOnly : original text start anchored, original text end free
//               (the normal mid-read window mode).
//   BothEnds  : fully global; implemented by feeding a 1 into bit 0 on
//               every shift unless the empty-prefix state is still
//               affordable (i <= d), see BitVec::shl1.

#include <string_view>

#include "genasmx/common/cigar.hpp"
#include "genasmx/util/mem_stats.hpp"

namespace gx::genasm {

enum class Anchor {
  StartOnly,  ///< anchored at original start; original text end free
  BothEnds,   ///< global alignment of the two windows
};

/// One window-alignment request (solver orientation, i.e. pre-reversed).
struct WindowSpec {
  Anchor anchor = Anchor::StartOnly;
  int max_edits = -1;    ///< level cap k; -1 selects the always-solvable cap
  int tb_op_limit = -1;  ///< emit at most this many traceback ops; -1 = all
};

/// Window-alignment outcome. The cigar is in original orientation,
/// truncated to tb_op_limit operations when a limit was set.
struct WindowResult {
  bool ok = false;
  int distance = -1;          ///< d_min found by the distance calculation
  common::Cigar cigar;        ///< possibly truncated (see tb_op_limit)
  bool traceback_complete = false;  ///< false iff truncated by the limit
};

/// The always-solvable per-window level cap: with a free text end the
/// worst case is inserting the whole pattern (m); fully global alignment
/// additionally needs to delete all text (max(n, m) edits).
[[nodiscard]] constexpr int autoEditCap(int text_len, int pattern_len,
                                        Anchor anchor) noexcept {
  return anchor == Anchor::StartOnly ? pattern_len
                                     : (text_len > pattern_len ? text_len
                                                               : pattern_len);
}

/// Empty-prefix ("bit -1") availability: in StartOnly mode the automaton
/// may begin matching at any text offset, so the state is always free; in
/// BothEnds mode it costs one deletion per skipped text character and is
/// affordable only while i <= d. Returns the *bit value* shifted into bit
/// 0 (active-low: 0 = state available).
[[nodiscard]] constexpr bool shiftInOne(Anchor anchor, int i, int d) noexcept {
  return anchor == Anchor::BothEnds && i > d;
}

}  // namespace gx::genasm
