#pragma once
// Log-bucketed latency histogram shared by the server's aggregate stats
// and the load generator. Values 0..15 are exact; above that, each
// power-of-two range splits into 16 sub-buckets, bounding quantile error
// at ~6% while keeping the footprint a flat constant-size array — no
// allocation on the record path, trivially mergeable across threads.

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace gx::server {

class LatencyHistogram {
 public:
  static constexpr std::size_t kSub = 16;
  static constexpr std::size_t kBuckets = kSub + (64 - 4) * kSub;

  void record(std::uint64_t value) noexcept {
    ++buckets_[bucketOf(value)];
    ++count_;
    max_ = std::max(max_, value);
  }

  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }

  /// Value at quantile q in [0, 1]: the upper edge of the bucket holding
  /// the q-th sample (clamped to the observed max). 0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen > rank) return std::min(bucketUpper(i), max_);
    }
    return max_;
  }

 private:
  static std::size_t bucketOf(std::uint64_t v) noexcept {
    if (v < kSub) return static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(v);  // >= 4 here
    const auto sub = static_cast<std::size_t>((v >> (msb - 4)) & (kSub - 1));
    return kSub + static_cast<std::size_t>(msb - 4) * kSub + sub;
  }

  static std::uint64_t bucketUpper(std::size_t b) noexcept {
    if (b < kSub) return static_cast<std::uint64_t>(b);
    const std::size_t msb = (b - kSub) / kSub + 4;
    const std::uint64_t sub = (b - kSub) % kSub;
    // Bucket covers [base + sub*step, base + (sub+1)*step).
    const std::uint64_t base = std::uint64_t{1} << msb;
    const std::uint64_t step = base / kSub;
    return base + (sub + 1) * step - 1;
  }

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace gx::server
