#pragma once
// The genasmx_mapd wire protocol: a line-oriented header followed by a
// byte-counted body, in both directions. Byte counting (never sentinel
// lines) is what makes framing robust against hostile payloads — FASTQ
// quality lines can contain any byte, so no in-band terminator is safe.
//
// Requests (client -> server):
//
//   MAP id=<token> bytes=<N> [deadline_ms=<D>]\n   followed by N payload
//       bytes of FASTA/FASTQ. deadline_ms bounds the request's total
//       server-side latency; 0 or absent = no deadline.
//   STATS\n                                        aggregate counters as
//       a JSON body in an OK reply (id "stats").
//   PING\n                                         liveness probe; OK
//       reply (id "ping") with an empty body.
//
// Responses (server -> client):
//
//   OK id=<token> reads=<N> records=<R> bytes=<B> skipped=<S> failed=<F>
//      usec=<U>\n                                  followed by B body
//       bytes (PAF records with cg:Z: CIGARs for MAP, JSON for STATS).
//       skipped counts malformed input records dropped by the server's
//       degradation policy; failed counts reads degraded after per-read
//       mapping failures (both also visible in STATS aggregates).
//   ERR id=<token> code=<kebab-error-code> retry=<0|1> reason=<word>
//      msg=<free text to end of line>\n            no body. code is the
//       PR-8 error taxonomy (common::errorCodeName); retry=1 marks
//       transient conditions (queue-full shedding, deadline expiry)
//       where the client should back off and resend, retry=0 permanent
//       ones (malformed header/payload, oversized request).
//
// Reasons: queue-full, deadline, too-large, bad-header, torn-frame,
// internal. A request id is an opaque token (no whitespace); the server
// echoes it verbatim so clients can pipeline requests per connection.

#include <cstdint>
#include <string>
#include <string_view>

#include "genasmx/common/error.hpp"

namespace gx::server {

enum class RequestKind : std::uint8_t { kMap, kStats, kPing };

struct RequestHeader {
  RequestKind kind = RequestKind::kMap;
  std::string id;
  std::uint64_t bytes = 0;        ///< payload size (MAP only)
  std::uint64_t deadline_ms = 0;  ///< 0 = no deadline
};

/// Parse one request header line (without the trailing '\n'). Returns a
/// kMalformedInput status naming the defect on any deviation — the
/// server answers those with an ERR bad-header reply and drops the
/// connection, since a client that cannot frame a header cannot be
/// resynchronized in a byte-counted protocol.
[[nodiscard]] common::Status parseRequestHeader(std::string_view line,
                                                RequestHeader& out);

/// Serialize a request header (the client side of the grammar above).
[[nodiscard]] std::string formatRequestHeader(const RequestHeader& h);

struct ResponseHeader {
  bool ok = false;
  std::string id;
  // OK fields.
  std::uint64_t reads = 0;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;  ///< body size following the header line
  std::uint64_t skipped = 0;
  std::uint64_t failed = 0;
  std::uint64_t usec = 0;  ///< server-side latency, enqueue to reply
  // ERR fields.
  common::ErrorCode code = common::ErrorCode::kOk;
  bool retry = false;
  std::string reason;
  std::string msg;
};

[[nodiscard]] common::Status parseResponseHeader(std::string_view line,
                                                 ResponseHeader& out);

[[nodiscard]] std::string formatOkHeader(const ResponseHeader& h);
[[nodiscard]] std::string formatErrHeader(std::string_view id,
                                          common::ErrorCode code, bool retry,
                                          std::string_view reason,
                                          std::string_view msg);

/// True iff `id` is a well-formed request id: 1..128 bytes, printable,
/// no whitespace (it must survive a space-delimited header line).
[[nodiscard]] bool validRequestId(std::string_view id) noexcept;

}  // namespace gx::server
