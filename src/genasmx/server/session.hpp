#pragma once
// MapSession — the reusable per-worker mapping unit behind genasmx_mapd.
// Where the batch tools construct one run-to-completion MappingPipeline
// per process, a session wraps a pipeline built over a SHARED immutable
// index and a SHARED AlignmentEngine (see the pipeline's shared-engine
// constructor): each server worker owns one session (its own scratch,
// stats, and sketch pools), while the SIMD lanes, spare-aligner pool,
// and mmap'd index are process-wide. mapGroup() is the cross-request
// coalescing point: several small requests are mapped as ONE pipeline
// batch — per-read output is independent of batch boundaries, so every
// request's PAF is byte-identical to a solo genasmx_map run — and the
// flat record vector is split back per request afterwards.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "genasmx/common/error.hpp"
#include "genasmx/engine/engine.hpp"
#include "genasmx/io/fastx.hpp"
#include "genasmx/mapper/mapper.hpp"
#include "genasmx/pipeline/pipeline.hpp"

namespace gx::server {

/// One request's outcome within a mapGroup() call. status.ok() selects
/// the OK reply (paf/reads/records/skipped/failed filled in); otherwise
/// the ERR reply carries status's code and message.
struct RequestResult {
  common::Status status;
  std::string paf;  ///< serialized PAF records, byte-identical to batch mode
  std::uint64_t reads = 0;
  std::uint64_t records = 0;
  std::uint64_t skipped = 0;  ///< malformed records dropped by policy
  std::uint64_t failed = 0;   ///< reads degraded after per-read failures
};

class MapSession {
 public:
  /// `index`'s owner and `shared_engine` must outlive the session.
  MapSession(mapper::IndexView index, engine::AlignmentEngine& shared_engine,
             pipeline::PipelineConfig cfg);

  /// Map a group of request payloads (FASTA/FASTQ bytes) as one coalesced
  /// pipeline batch under one cooperative cancellation. results is
  /// resized to payloads.size(); every request gets exactly one result.
  /// Per-request isolation: a payload that fails to parse (under the
  /// abort policy) poisons only its own result; a cancellation fires for
  /// the whole group (callers pass the group's LATEST deadline, so when
  /// it fires every member's deadline has passed).
  void mapGroup(const std::vector<std::string_view>& payloads,
                const pipeline::Cancellation& cancel,
                std::vector<RequestResult>& results);

  [[nodiscard]] const pipeline::StageTimes& stageTimes() const noexcept {
    return pipeline_.stageTimes();
  }
  [[nodiscard]] const pipeline::PipelineStats& stats() const noexcept {
    return pipeline_.stats();
  }
  [[nodiscard]] const pipeline::RunReport& report() const noexcept {
    return pipeline_.report();
  }

 private:
  io::OnBadRecord on_bad_record_;
  pipeline::MappingPipeline pipeline_;
};

}  // namespace gx::server
