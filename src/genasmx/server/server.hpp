#pragma once
// MapServer — the resident mapping daemon behind tools/genasmx_mapd: one
// process mmaps the index once and serves many concurrent clients over a
// Unix or TCP socket speaking the protocol in protocol.hpp.
//
// Thread model:
//   - serve() runs the accept loop (poll-ticked so drain is observed).
//   - One reader thread per connection parses frames and enqueues
//     requests into ONE bounded central queue. A full queue answers with
//     an explicit retryable queue-full reply — load shedding is a
//     protocol feature, never a silent hang.
//   - `workers` mapping threads each own a MapSession (per-worker
//     scratch over the SHARED index + engine) and pop request *groups*
//     from the queue: cross-request coalescing keeps the SIMD lanes full
//     under bursty small requests, and per-read batch-boundary
//     independence keeps every request's PAF byte-identical to a solo
//     batch run.
//
// Robustness invariants (tests/test_server.cpp pins each):
//   - Per-request deadlines: checked before dispatch, cooperatively at
//     pipeline stage boundaries (the group's latest deadline), and
//     before the reply is written; expiry is a retryable ERR, never a
//     wedged client.
//   - Per-connection isolation: a malformed header, torn frame, abrupt
//     disconnect, or stalled reader kills at most its own connection.
//   - Slow-client write timeouts: a reply blocked longer than
//     write_timeout_ms sheds that connection instead of wedging a
//     mapping worker.
//   - Graceful drain: requestDrain() (async-signal-safe) stops
//     accepting, finishes every in-flight request, flushes stats, and
//     serve() returns; zero leaked sessions or fds.
//   - Connection fault injection: close@conn:N / stall@conn:N /
//     torn@conn:N (io::FaultPlan) make all of the above deterministic.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "genasmx/engine/engine.hpp"
#include "genasmx/mapper/mapper.hpp"
#include "genasmx/pipeline/pipeline.hpp"
#include "genasmx/server/histogram.hpp"
#include "genasmx/server/session.hpp"

namespace gx::server {

struct ServerConfig {
  /// Unix-domain listener path ("" = none). Stale paths are unlinked.
  std::string unix_path;
  /// TCP listener on 127.0.0.1 (-1 = none, 0 = ephemeral; see tcpPort()).
  int tcp_port = -1;
  /// Mapping worker threads (each owns one MapSession).
  std::size_t workers = 1;
  /// Bounded admission queue: requests queued beyond this are shed with
  /// a retryable queue-full reply.
  std::size_t max_queue = 64;
  /// Coalescing bounds per worker group: at most this many requests ...
  std::size_t coalesce_requests = 8;
  /// ... and at most this much payload per group.
  std::size_t coalesce_bytes = std::size_t{1} << 20;
  /// Requests larger than this are rejected (too-large, permanent).
  std::uint64_t max_request_bytes = std::uint64_t{64} << 20;
  /// A reply write blocked longer than this sheds the connection; also
  /// bounds how long a mid-frame read may linger once drain started.
  int write_timeout_ms = 5000;
  /// Poll tick for the accept loop and connection reads (drain latency).
  int poll_interval_ms = 50;
  /// Mapping configuration; cfg.pipeline.engine selects backend/threads
  /// for the one shared engine.
  pipeline::PipelineConfig pipeline{};
};

/// Aggregate counters, snapshotted under one mutex. Latency covers OK
/// replies only, enqueue to reply, in microseconds.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t requests = 0;        ///< MAP frames fully received
  std::uint64_t ok_replies = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t malformed = 0;       ///< bad headers / rejected frames
  std::uint64_t torn_frames = 0;     ///< EOF mid-frame (real or injected)
  std::uint64_t write_timeouts = 0;  ///< slow clients shed mid-reply
  std::uint64_t faults_injected = 0; ///< conn-site fault clauses fired
  std::uint64_t reads = 0;
  std::uint64_t records = 0;
  std::uint64_t skipped_records = 0;
  std::uint64_t failed_reads = 0;
  LatencyHistogram latency;
  pipeline::StageTimes stage_times;  ///< summed across worker sessions
};

class MapServer {
 public:
  /// `index`'s owner must outlive the server. Throws common::Error
  /// (kIoFatal) if no listener can be bound; start() does the binding so
  /// a constructed server has its sockets ready before serve().
  MapServer(mapper::IndexView index, ServerConfig cfg);
  ~MapServer();

  MapServer(const MapServer&) = delete;
  MapServer& operator=(const MapServer&) = delete;

  /// Bind + listen on the configured endpoints. Call once, before
  /// serve(). Throws common::Error(kIoFatal) on bind/listen failure.
  void start();

  /// Accept and serve until requestDrain(): spawns workers, runs the
  /// accept loop, then drains — stops accepting, finishes in-flight
  /// requests, joins every thread, closes every fd — and returns.
  void serve();

  /// Async-signal-safe drain trigger (a single atomic store): the
  /// SIGTERM handler's whole job.
  void requestDrain() noexcept {
    drain_.store(true, std::memory_order_release);
  }

  [[nodiscard]] bool draining() const noexcept {
    return drain_.load(std::memory_order_acquire);
  }

  /// Bound TCP port (useful with tcp_port = 0), -1 if no TCP listener.
  [[nodiscard]] int tcpPort() const noexcept { return tcp_port_; }

  [[nodiscard]] ServerStats statsSnapshot() const;
  /// The --stats-json / STATS payload: one JSON object of the counters,
  /// latency quantiles, stage times, and throughput.
  [[nodiscard]] std::string statsJson() const;

 private:
  struct Connection;
  using ConnPtr = std::shared_ptr<Connection>;

  struct Request {
    ConnPtr conn;
    std::string id;
    std::string payload;
    std::chrono::steady_clock::time_point deadline;
    std::chrono::steady_clock::time_point enqueued;
    bool has_deadline = false;
  };

  enum class ReadStatus { kOk, kEof, kClosed, kDrain, kTimeout };

  void acceptOne(int listen_fd);
  void readerLoop(ConnPtr conn);
  void workerLoop();
  void processGroup(MapSession& session, std::vector<Request>& group);

  ReadStatus fill(Connection& conn, std::string& inbuf, bool mid_frame,
                  std::chrono::steady_clock::time_point& frame_start);
  ReadStatus readLine(Connection& conn, std::string& inbuf, std::string& line);
  ReadStatus readPayload(Connection& conn, std::string& inbuf,
                         std::uint64_t want, std::string& payload);
  /// Write header+body under the connection's write mutex with the
  /// slow-client timeout. Returns false if the connection was shed.
  bool writeReply(Connection& conn, std::string_view header,
                  std::string_view body = {});
  void noteConnectionClosed();

  mapper::IndexView index_;
  ServerConfig cfg_;
  engine::AlignmentEngine engine_;  ///< ONE engine shared by all sessions

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  std::atomic<bool> drain_{false};
  std::atomic<std::uint64_t> next_conn_index_{0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  std::size_t readers_active_ = 0;  ///< guarded by queue_mu_

  std::vector<std::thread> reader_threads_;  ///< accept loop only, then join
  std::vector<std::thread> worker_threads_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace gx::server
