#include "genasmx/server/session.hpp"

#include <sstream>
#include <utility>

#include "genasmx/io/paf.hpp"

namespace gx::server {

MapSession::MapSession(mapper::IndexView index,
                       engine::AlignmentEngine& shared_engine,
                       pipeline::PipelineConfig cfg)
    : on_bad_record_(cfg.on_bad_record),
      pipeline_(index, shared_engine, std::move(cfg)) {}

void MapSession::mapGroup(const std::vector<std::string_view>& payloads,
                          const pipeline::Cancellation& cancel,
                          std::vector<RequestResult>& results) {
  results.clear();
  results.resize(payloads.size());

  // Parse every payload independently first — per-request isolation
  // demands that one unparseable request cannot keep its groupmates from
  // mapping. Reads from all parseable requests concatenate into one
  // batch; read_count[r] recovers request r's slice of the output.
  std::vector<io::FastxRecord> all_reads;
  std::vector<std::size_t> read_count(payloads.size(), 0);
  for (std::size_t r = 0; r < payloads.size(); ++r) {
    std::istringstream in{std::string(payloads[r])};
    io::FastxPolicy policy;
    policy.on_bad_record = on_bad_record_;
    policy.path = "request";
    io::FastxReader reader(in, std::move(policy));
    const std::size_t first = all_reads.size();
    try {
      io::FastxRecord rec;
      while (reader.next(rec)) all_reads.push_back(std::move(rec));
      read_count[r] = all_reads.size() - first;
      results[r].reads = read_count[r];
      results[r].skipped = reader.skipped();
    } catch (...) {
      // Malformed payload under the abort policy (or an internal parser
      // failure): fail this request alone, drop its partial reads.
      all_reads.resize(first);
      results[r].status = common::Status::fromCurrentException();
      results[r].reads = 0;
    }
  }

  pipeline::BatchOutputMap outmap;
  std::vector<io::PafRecord> records;
  try {
    records = pipeline_.mapBatch(all_reads, cancel, &outmap);
  } catch (...) {
    // The batch died as a whole — in practice only the cooperative
    // cancellation throws here (per-read failures degrade in place).
    // Every not-already-failed request shares the batch's fate; the
    // group deadline is the latest member deadline, so each of them is
    // individually past due.
    const common::Status st = common::Status::fromCurrentException();
    for (std::size_t r = 0; r < payloads.size(); ++r) {
      if (results[r].status.ok()) results[r].status = st;
    }
    return;
  }

  // Split the flat record vector back per request: read i emitted
  // outmap.records_per_read[i] consecutive records, reads are grouped in
  // input order, and requests contributed contiguous read ranges.
  std::size_t read_idx = 0;
  std::size_t rec_idx = 0;
  for (std::size_t r = 0; r < payloads.size(); ++r) {
    if (!results[r].status.ok()) continue;
    RequestResult& res = results[r];
    for (std::size_t k = 0; k < read_count[r]; ++k, ++read_idx) {
      const std::uint32_t n = outmap.records_per_read[read_idx];
      for (std::uint32_t j = 0; j < n; ++j, ++rec_idx) {
        res.paf += io::toPafLine(records[rec_idx]);
        res.paf += '\n';
      }
      res.records += n;
      res.failed += outmap.read_failed[read_idx];
    }
  }
}

}  // namespace gx::server
