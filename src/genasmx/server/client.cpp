#include "genasmx/server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gx::server {
namespace {

using common::Error;
using common::ErrorCode;
using common::Status;

Status errnoStatus(ErrorCode code, const std::string& what) {
  return Status(code, what + ": " + std::string(std::strerror(errno)));
}

}  // namespace

void MapClient::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

Status MapClient::connectUnix(const std::string& path) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status(ErrorCode::kMalformedInput,
                  "unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return errnoStatus(ErrorCode::kIoTransient, "socket(AF_UNIX)");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = errnoStatus(ErrorCode::kIoTransient, "connect(" + path + ")");
    close();
    return st;
  }
  return Status();
}

Status MapClient::connectTcp(int port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return errnoStatus(ErrorCode::kIoTransient, "socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = errnoStatus(
        ErrorCode::kIoTransient, "connect(127.0.0.1:" + std::to_string(port) + ")");
    close();
    return st;
  }
  return Status();
}

Status MapClient::sendRaw(std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errnoStatus(ErrorCode::kIoFatal, "send");
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return Status();
}

void MapClient::abortMidFrame(std::string_view id,
                              std::uint64_t promised_bytes,
                              std::string_view sent) {
  RequestHeader h;
  h.kind = RequestKind::kMap;
  h.id = std::string(id);
  h.bytes = promised_bytes;
  (void)sendRaw(formatRequestHeader(h));
  (void)sendRaw(sent);
  close();
}

Status MapClient::readLine(std::string& line) {
  for (;;) {
    const std::size_t nl = inbuf_.find('\n');
    if (nl != std::string::npos) {
      line.assign(inbuf_, 0, nl);
      inbuf_.erase(0, nl + 1);
      return Status();
    }
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status(ErrorCode::kIoFatal, "server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return errnoStatus(ErrorCode::kIoFatal, "recv");
    }
    inbuf_.append(buf, static_cast<std::size_t>(n));
  }
}

Status MapClient::readExact(std::size_t want, std::string& out) {
  out.clear();
  for (;;) {
    const std::size_t take = std::min(want - out.size(), inbuf_.size());
    out.append(inbuf_, 0, take);
    inbuf_.erase(0, take);
    if (out.size() >= want) return Status();
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status(ErrorCode::kIoFatal, "server closed mid-body");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return errnoStatus(ErrorCode::kIoFatal, "recv");
    }
    inbuf_.append(buf, static_cast<std::size_t>(n));
  }
}

Status MapClient::readReply(ResponseHeader& reply, std::string& body) {
  std::string line;
  Status st = readLine(line);
  if (!st.ok()) return st;
  st = parseResponseHeader(line, reply);
  if (!st.ok()) return st;
  body.clear();
  if (reply.ok && reply.bytes > 0) {
    st = readExact(static_cast<std::size_t>(reply.bytes), body);
    if (!st.ok()) return st;
  }
  return Status();
}

Status MapClient::map(std::string_view id, std::string_view fastq,
                      std::uint64_t deadline_ms, ResponseHeader& reply,
                      std::string& body) {
  RequestHeader h;
  h.kind = RequestKind::kMap;
  h.id = std::string(id);
  h.bytes = fastq.size();
  h.deadline_ms = deadline_ms;
  Status st = sendRaw(formatRequestHeader(h));
  if (!st.ok()) return st;
  st = sendRaw(fastq);
  if (!st.ok()) return st;
  return readReply(reply, body);
}

Status MapClient::stats(std::string& json) {
  RequestHeader h;
  h.kind = RequestKind::kStats;
  Status st = sendRaw(formatRequestHeader(h));
  if (!st.ok()) return st;
  ResponseHeader reply;
  st = readReply(reply, json);
  if (!st.ok()) return st;
  if (!reply.ok) {
    return Status(reply.code, "STATS refused: " + reply.msg);
  }
  return Status();
}

Status MapClient::ping() {
  RequestHeader h;
  h.kind = RequestKind::kPing;
  Status st = sendRaw(formatRequestHeader(h));
  if (!st.ok()) return st;
  ResponseHeader reply;
  std::string body;
  st = readReply(reply, body);
  if (!st.ok()) return st;
  if (!reply.ok) return Status(reply.code, "PING refused: " + reply.msg);
  return Status();
}

}  // namespace gx::server
