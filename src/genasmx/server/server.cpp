#include "genasmx/server/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "genasmx/io/fault.hpp"
#include "genasmx/server/protocol.hpp"

namespace gx::server {
namespace {

using common::Error;
using common::ErrorCode;

constexpr std::size_t kMaxHeaderBytes = 4096;

[[noreturn]] void sysFail(const std::string& what) {
  throw Error(ErrorCode::kIoFatal,
              what + " failed: " + std::string(std::strerror(errno)));
}

void setNonBlocking(int fd) {
  // Listener sockets only: accept() must never block the poll tick.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::chrono::steady_clock::time_point noDeadline() {
  return std::chrono::steady_clock::time_point::max();
}

}  // namespace

/// Per-connection state shared between its reader thread and any worker
/// holding one of its queued requests. The LAST shared_ptr drop closes
/// the fd (after every pending reply was written or shed), which is what
/// makes "zero leaked sessions" a refcount invariant rather than a
/// bookkeeping discipline.
struct MapServer::Connection {
  Connection(MapServer& s, int fd_in, std::uint64_t idx)
      : server(s), fd(fd_in), index(idx) {
    if (const io::FaultPlan* plan = io::activeFaultPlan()) {
      stall = plan->connStall(index);
      close_after_header = plan->connClose(index);
      torn = plan->connTorn(index);
    }
  }
  ~Connection() {
    if (fd >= 0) ::close(fd);
    server.noteConnectionClosed();
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  MapServer& server;
  int fd;
  std::uint64_t index;
  std::mutex write_mu;
  /// Shed or errored: readers stop parsing, workers stop replying.
  std::atomic<bool> dead{false};
  // Injected connection faults, resolved once at accept time.
  bool stall = false;
  bool close_after_header = false;
  bool torn = false;
};

MapServer::MapServer(mapper::IndexView index, ServerConfig cfg)
    : index_(index), cfg_(std::move(cfg)), engine_(cfg_.pipeline.engine) {}

MapServer::~MapServer() {
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (!cfg_.unix_path.empty()) ::unlink(cfg_.unix_path.c_str());
}

void MapServer::start() {
  if (cfg_.unix_path.empty() && cfg_.tcp_port < 0) {
    throw Error(ErrorCode::kMalformedInput,
                "server: no listener configured (need unix_path or tcp_port)");
  }
  if (!cfg_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw Error(ErrorCode::kMalformedInput,
                  "server: unix socket path too long: " + cfg_.unix_path);
    }
    std::memcpy(addr.sun_path, cfg_.unix_path.c_str(),
                cfg_.unix_path.size() + 1);
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) sysFail("socket(AF_UNIX)");
    ::unlink(cfg_.unix_path.c_str());  // stale socket from a dead server
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      sysFail("bind(" + cfg_.unix_path + ")");
    }
    if (::listen(unix_fd_, 128) != 0) sysFail("listen(" + cfg_.unix_path + ")");
    setNonBlocking(unix_fd_);
  }
  if (cfg_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) sysFail("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      sysFail("bind(127.0.0.1:" + std::to_string(cfg_.tcp_port) + ")");
    }
    if (::listen(tcp_fd_, 128) != 0) sysFail("listen(tcp)");
    setNonBlocking(tcp_fd_);
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      sysFail("getsockname");
    }
    tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  started_ = std::chrono::steady_clock::now();
}

void MapServer::acceptOne(int listen_fd) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return;  // raced away or transient; the poll tick retries
  const std::uint64_t idx =
      next_conn_index_.fetch_add(1, std::memory_order_relaxed);
  auto conn = std::make_shared<Connection>(*this, fd, idx);
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.connections_accepted;
  }
  {
    std::lock_guard lock(queue_mu_);
    ++readers_active_;
  }
  reader_threads_.emplace_back(
      [this, conn = std::move(conn)]() mutable { readerLoop(std::move(conn)); });
}

void MapServer::serve() {
  if (unix_fd_ < 0 && tcp_fd_ < 0) start();

  worker_threads_.reserve(cfg_.workers ? cfg_.workers : 1);
  for (std::size_t w = 0; w < (cfg_.workers ? cfg_.workers : 1); ++w) {
    worker_threads_.emplace_back([this] { workerLoop(); });
  }

  while (!draining()) {
    pollfd pfds[2];
    nfds_t n = 0;
    if (unix_fd_ >= 0) pfds[n++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) pfds[n++] = {tcp_fd_, POLLIN, 0};
    const int rc = ::poll(pfds, n, cfg_.poll_interval_ms);
    if (rc <= 0) continue;  // tick (or EINTR): re-check the drain flag
    for (nfds_t i = 0; i < n; ++i) {
      if ((pfds[i].revents & POLLIN) != 0) acceptOne(pfds[i].fd);
    }
  }

  // Drain: stop accepting first so no new connection can arrive, then
  // let readers finish their current frame and exit, then let workers
  // empty the queue. Joining in that order IS the drain protocol.
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
    ::unlink(cfg_.unix_path.c_str());
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  for (auto& t : reader_threads_) t.join();
  reader_threads_.clear();
  queue_cv_.notify_all();  // wake workers that were idle before drain
  for (auto& t : worker_threads_) t.join();
  worker_threads_.clear();
}

// ---------------------------------------------------------------- reads

MapServer::ReadStatus MapServer::fill(
    Connection& conn, std::string& inbuf, bool mid_frame,
    std::chrono::steady_clock::time_point& frame_start) {
  for (;;) {
    if (conn.dead.load(std::memory_order_acquire)) return ReadStatus::kClosed;
    pollfd p{conn.fd, POLLIN, 0};
    const int rc = ::poll(&p, 1, cfg_.poll_interval_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kClosed;
    }
    if (rc == 0) {
      if (draining()) {
        if (!mid_frame && inbuf.empty()) return ReadStatus::kDrain;
        // Mid-frame during drain: give the client one write-timeout's
        // worth of grace to finish the frame, then cut it loose — a
        // stalled sender must not hold drain hostage.
        if (frame_start == noDeadline()) {
          frame_start = std::chrono::steady_clock::now();
        } else if (std::chrono::steady_clock::now() - frame_start >
                   std::chrono::milliseconds(cfg_.write_timeout_ms)) {
          return ReadStatus::kTimeout;
        }
      }
      continue;
    }
    char buf[65536];
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n == 0) return ReadStatus::kEof;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return ReadStatus::kClosed;
    }
    inbuf.append(buf, static_cast<std::size_t>(n));
    return ReadStatus::kOk;
  }
}

MapServer::ReadStatus MapServer::readLine(Connection& conn, std::string& inbuf,
                                          std::string& line) {
  auto frame_start = noDeadline();
  for (;;) {
    const std::size_t nl = inbuf.find('\n');
    if (nl != std::string::npos) {
      line.assign(inbuf, 0, nl);
      inbuf.erase(0, nl + 1);
      return ReadStatus::kOk;
    }
    if (inbuf.size() > kMaxHeaderBytes) return ReadStatus::kClosed;
    const ReadStatus rs = fill(conn, inbuf, !inbuf.empty(), frame_start);
    if (rs != ReadStatus::kOk) return rs;
  }
}

MapServer::ReadStatus MapServer::readPayload(Connection& conn,
                                             std::string& inbuf,
                                             std::uint64_t want,
                                             std::string& payload) {
  auto frame_start = noDeadline();
  payload.clear();
  for (;;) {
    if (!inbuf.empty()) {
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(want - payload.size(), inbuf.size()));
      payload.append(inbuf, 0, take);
      inbuf.erase(0, take);
    }
    if (payload.size() >= want) return ReadStatus::kOk;
    const ReadStatus rs = fill(conn, inbuf, true, frame_start);
    if (rs != ReadStatus::kOk) return rs;
  }
}

// ---------------------------------------------------------------- writes

bool MapServer::writeReply(Connection& conn, std::string_view header,
                           std::string_view body) {
  std::lock_guard lock(conn.write_mu);
  if (conn.dead.load(std::memory_order_acquire)) return false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(cfg_.write_timeout_ms);
  const auto shed = [&] {
    conn.dead.store(true, std::memory_order_release);
    ::shutdown(conn.fd, SHUT_RDWR);  // unblock the reader immediately
    std::lock_guard slock(stats_mu_);
    ++stats_.write_timeouts;
    return false;
  };
  for (std::string_view part : {header, body}) {
    while (!part.empty()) {
      if (conn.stall) {
        // Injected slow client: the socket never becomes writable. Burn
        // the timeout deterministically instead of poking the real fd.
        std::this_thread::sleep_until(deadline);
        {
          std::lock_guard slock(stats_mu_);
          ++stats_.faults_injected;
        }
        return shed();
      }
      pollfd p{conn.fd, POLLOUT, 0};
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return shed();
      const int rc = ::poll(&p, 1, static_cast<int>(left.count()));
      if (rc < 0) {
        if (errno == EINTR) continue;
        conn.dead.store(true, std::memory_order_release);
        return false;
      }
      if (rc == 0) return shed();
      const ssize_t n =
          ::send(conn.fd, part.data(), part.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        // EPIPE / ECONNRESET: the client is gone; only it is affected.
        conn.dead.store(true, std::memory_order_release);
        return false;
      }
      part.remove_prefix(static_cast<std::size_t>(n));
    }
  }
  return true;
}

// ---------------------------------------------------------------- reader

void MapServer::readerLoop(ConnPtr conn) {
  std::string inbuf;
  std::string line;
  for (;;) {
    const ReadStatus rs = readLine(*conn, inbuf, line);
    if (rs != ReadStatus::kOk) {
      // EOF between frames is a clean disconnect; anything torn
      // mid-frame was already counted where it happened.
      if ((rs == ReadStatus::kEof || rs == ReadStatus::kTimeout) &&
          !inbuf.empty()) {
        std::lock_guard lock(stats_mu_);
        ++stats_.torn_frames;
      }
      break;
    }

    RequestHeader hdr;
    const common::Status st = parseRequestHeader(line, hdr);
    if (!st.ok()) {
      // A client that cannot frame a header cannot be resynchronized in
      // a byte-counted protocol: answer once, then drop only it.
      {
        std::lock_guard lock(stats_mu_);
        ++stats_.malformed;
      }
      writeReply(*conn, formatErrHeader("-", st.code(), false, "bad-header",
                                        st.message()));
      break;
    }

    if (conn->close_after_header) {
      // close@conn:N — the deterministic stand-in for a client that
      // vanishes right after sending a header.
      std::lock_guard lock(stats_mu_);
      ++stats_.faults_injected;
      break;
    }

    if (hdr.kind == RequestKind::kPing) {
      ResponseHeader ok;
      ok.ok = true;
      ok.id = hdr.id;
      if (!writeReply(*conn, formatOkHeader(ok))) break;
      continue;
    }
    if (hdr.kind == RequestKind::kStats) {
      const std::string json = statsJson();
      ResponseHeader ok;
      ok.ok = true;
      ok.id = hdr.id;
      ok.bytes = json.size();
      if (!writeReply(*conn, formatOkHeader(ok), json)) break;
      continue;
    }

    // MAP: byte-counted payload follows.
    if (hdr.bytes > cfg_.max_request_bytes) {
      // Oversized requests are rejected without buffering the payload;
      // the framing is unrecoverable after that, so the connection ends
      // with the (permanent) error reply.
      {
        std::lock_guard lock(stats_mu_);
        ++stats_.malformed;
      }
      writeReply(*conn,
                 formatErrHeader(hdr.id, ErrorCode::kResourceLimit, false,
                                 "too-large",
                                 "request exceeds max_request_bytes=" +
                                     std::to_string(cfg_.max_request_bytes)));
      break;
    }

    const std::uint64_t want =
        conn->torn ? hdr.bytes / 2 : hdr.bytes;  // torn@conn:N — see below
    std::string payload;
    const ReadStatus prs = readPayload(*conn, inbuf, want, payload);
    if (prs != ReadStatus::kOk) {
      // The client disconnected (or stalled past drain grace) inside its
      // own frame: a torn frame. Nothing can be replied to a gone peer;
      // the request is simply never admitted.
      std::lock_guard lock(stats_mu_);
      ++stats_.torn_frames;
      break;
    }
    if (conn->torn) {
      // torn@conn:N — the payload "ended" mid-frame even though the real
      // client sent it all: deterministic torn-frame handling.
      std::lock_guard lock(stats_mu_);
      ++stats_.torn_frames;
      ++stats_.faults_injected;
      break;
    }

    Request req;
    req.conn = conn;
    req.id = hdr.id;
    req.payload = std::move(payload);
    req.enqueued = std::chrono::steady_clock::now();
    req.has_deadline = hdr.deadline_ms != 0;
    req.deadline = req.has_deadline
                       ? req.enqueued + std::chrono::milliseconds(
                                            hdr.deadline_ms)
                       : noDeadline();
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.requests;
    }
    bool admitted = false;
    {
      std::lock_guard lock(queue_mu_);
      if (queue_.size() < cfg_.max_queue) {
        queue_.push_back(std::move(req));
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
    } else {
      // Explicit backpressure: the queue is the admission boundary, and
      // a full queue is the client's signal to back off and retry — the
      // connection stays usable.
      {
        std::lock_guard lock(stats_mu_);
        ++stats_.shed_queue_full;
      }
      if (!writeReply(*conn,
                      formatErrHeader(hdr.id, ErrorCode::kResourceLimit, true,
                                      "queue-full",
                                      "admission queue full (max_queue=" +
                                          std::to_string(cfg_.max_queue) +
                                          "); retry with backoff"))) {
        break;
      }
    }
  }
  {
    std::lock_guard lock(queue_mu_);
    --readers_active_;
  }
  queue_cv_.notify_all();  // workers may now see "no more producers"
}

// ---------------------------------------------------------------- worker

void MapServer::workerLoop() {
  MapSession session(index_, engine_, cfg_.pipeline);
  pipeline::StageTimes folded{};  // session times already added to stats_
  std::vector<Request> group;
  for (;;) {
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || (draining() && readers_active_ == 0);
      });
      if (queue_.empty()) break;  // drained: no requests, no producers
      group.clear();
      std::size_t bytes = 0;
      while (!queue_.empty() && group.size() < cfg_.coalesce_requests) {
        const std::size_t next_bytes = queue_.front().payload.size();
        if (!group.empty() && bytes + next_bytes > cfg_.coalesce_bytes) break;
        bytes += next_bytes;
        group.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    processGroup(session, group);
    const pipeline::StageTimes delta = session.stageTimes() - folded;
    folded = session.stageTimes();
    std::lock_guard lock(stats_mu_);
    stats_.stage_times.seed_chain_s += delta.seed_chain_s;
    stats_.stage_times.phase1_distance_s += delta.phase1_distance_s;
    stats_.stage_times.sketch_s += delta.sketch_s;
    stats_.stage_times.traceback_s += delta.traceback_s;
    stats_.stage_times.output_s += delta.output_s;
  }
}

void MapServer::processGroup(MapSession& session, std::vector<Request>& group) {
  // Pre-dispatch shed: a request whose deadline already passed (or whose
  // client is already gone) must not consume mapping work. The reply is
  // the same retryable deadline error the mid-flight path produces.
  const auto deadline_reply = [&](const Request& req) {
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.shed_deadline;
    }
    writeReply(*req.conn,
               formatErrHeader(req.id, ErrorCode::kResourceLimit, true,
                               "deadline",
                               "deadline_ms elapsed before the reply; retry "
                               "with a larger deadline"));
  };

  std::vector<Request*> live;
  live.reserve(group.size());
  auto now = std::chrono::steady_clock::now();
  for (Request& req : group) {
    if (req.conn->dead.load(std::memory_order_acquire)) continue;
    if (req.has_deadline && now >= req.deadline) {
      deadline_reply(req);
      continue;
    }
    live.push_back(&req);
  }
  if (live.empty()) return;

  // Cooperative cancellation at the group's LATEST deadline: when it
  // fires, every member is individually past due, so cancelling the
  // whole batch sheds exactly the requests that are already dead. Any
  // member without a deadline keeps the group uncancellable.
  pipeline::Cancellation cancel;
  cancel.deadline = std::chrono::steady_clock::time_point::min();
  for (const Request* req : live) {
    cancel.deadline = std::max(cancel.deadline, req->deadline);
  }

  std::vector<std::string_view> payloads;
  payloads.reserve(live.size());
  for (const Request* req : live) payloads.emplace_back(req->payload);

  std::vector<RequestResult> results;
  session.mapGroup(payloads, cancel, results);

  now = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < live.size(); ++r) {
    const Request& req = *live[r];
    RequestResult& res = results[r];
    if (!res.status.ok()) {
      if (res.status.code() == ErrorCode::kResourceLimit) {
        deadline_reply(req);  // the group cancellation fired
      } else {
        const bool transient = res.status.code() != ErrorCode::kMalformedInput;
        writeReply(*req.conn,
                   formatErrHeader(req.id, res.status.code(), transient,
                                   transient ? "internal" : "bad-payload",
                                   res.status.message()));
      }
      continue;
    }
    if (req.has_deadline && now >= req.deadline) {
      deadline_reply(req);
      continue;
    }
    ResponseHeader ok;
    ok.ok = true;
    ok.id = req.id;
    ok.reads = res.reads;
    ok.records = res.records;
    ok.bytes = res.paf.size();
    ok.skipped = res.skipped;
    ok.failed = res.failed;
    const auto usec = std::chrono::duration_cast<std::chrono::microseconds>(
        now - req.enqueued);
    ok.usec = static_cast<std::uint64_t>(usec.count());
    const bool written = writeReply(*req.conn, formatOkHeader(ok), res.paf);
    std::lock_guard lock(stats_mu_);
    if (written) {
      ++stats_.ok_replies;
      stats_.latency.record(ok.usec);
    }
    stats_.reads += res.reads;
    stats_.records += res.records;
    stats_.skipped_records += res.skipped;
    stats_.failed_reads += res.failed;
  }
}

// ---------------------------------------------------------------- stats

void MapServer::noteConnectionClosed() {
  std::lock_guard lock(stats_mu_);
  ++stats_.connections_closed;
}

ServerStats MapServer::statsSnapshot() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

std::string MapServer::statsJson() const {
  const ServerStats s = statsSnapshot();
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  std::ostringstream out;
  out << "{\n";
  out << "  \"connections\": {\"accepted\": " << s.connections_accepted
      << ", \"closed\": " << s.connections_closed << "},\n";
  out << "  \"requests\": {\"received\": " << s.requests
      << ", \"ok\": " << s.ok_replies
      << ", \"shed_queue_full\": " << s.shed_queue_full
      << ", \"shed_deadline\": " << s.shed_deadline
      << ", \"malformed\": " << s.malformed
      << ", \"torn_frames\": " << s.torn_frames
      << ", \"write_timeouts\": " << s.write_timeouts
      << ", \"faults_injected\": " << s.faults_injected << "},\n";
  out << "  \"reads\": " << s.reads << ",\n";
  out << "  \"records\": " << s.records << ",\n";
  out << "  \"skipped_records\": " << s.skipped_records << ",\n";
  out << "  \"failed_reads\": " << s.failed_reads << ",\n";
  out << "  \"latency_usec\": {\"count\": " << s.latency.count()
      << ", \"p50\": " << s.latency.quantile(0.50)
      << ", \"p90\": " << s.latency.quantile(0.90)
      << ", \"p99\": " << s.latency.quantile(0.99)
      << ", \"max\": " << s.latency.max() << "},\n";
  out << "  \"stage_seconds\": {\"seed_chain\": " << s.stage_times.seed_chain_s
      << ", \"phase1_distance\": " << s.stage_times.phase1_distance_s
      << ", \"sketch\": " << s.stage_times.sketch_s
      << ", \"phase2_traceback\": " << s.stage_times.traceback_s
      << ", \"output\": " << s.stage_times.output_s << "},\n";
  out << "  \"workers\": " << (cfg_.workers ? cfg_.workers : 1) << ",\n";
  out << "  \"pool_threads\": " << engine_.threads() << ",\n";
  out << "  \"uptime_s\": " << uptime << ",\n";
  out << "  \"reads_per_sec\": "
      << (uptime > 0 ? static_cast<double>(s.reads) / uptime : 0.0) << "\n";
  out << "}\n";
  return out.str();
}

}  // namespace gx::server
