#pragma once
// MapClient — a small blocking client for the genasmx_mapd protocol,
// shared by tests/test_server.cpp and tools/genasmx_loadgen. One client
// owns one connection; requests are issued sequentially (the protocol
// allows pipelining, but every current caller wants request/reply). The
// raw-send helpers exist so fault tests can speak the protocol *badly*
// on purpose: torn frames, garbage headers, half-closed sockets.

#include <cstdint>
#include <string>
#include <string_view>

#include "genasmx/common/error.hpp"
#include "genasmx/server/protocol.hpp"

namespace gx::server {

class MapClient {
 public:
  MapClient() = default;
  ~MapClient() { close(); }
  MapClient(MapClient&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  MapClient& operator=(MapClient&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  MapClient(const MapClient&) = delete;
  MapClient& operator=(const MapClient&) = delete;

  /// Connect to a Unix-domain / TCP(127.0.0.1) listener. kIoTransient on
  /// failure (the server may simply not be up yet; callers retry).
  [[nodiscard]] common::Status connectUnix(const std::string& path);
  [[nodiscard]] common::Status connectTcp(int port);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close() noexcept;

  /// One MAP round-trip: send the request, read the reply (header +
  /// body). On a wire-level failure the returned status is non-ok and
  /// `reply` is unspecified; a server-side ERR reply is a *successful*
  /// round-trip (ok status, reply.ok == false). `body` receives the PAF
  /// payload of an OK reply.
  [[nodiscard]] common::Status map(std::string_view id, std::string_view fastq,
                                   std::uint64_t deadline_ms,
                                   ResponseHeader& reply, std::string& body);

  /// STATS round-trip; `json` receives the server's counters.
  [[nodiscard]] common::Status stats(std::string& json);

  /// PING round-trip.
  [[nodiscard]] common::Status ping();

  // ---- raw helpers for fault tests / the load generator ----

  /// Send exactly these bytes (no framing added). kIoFatal on failure.
  [[nodiscard]] common::Status sendRaw(std::string_view bytes);

  /// Send a MAP header promising `promised_bytes`, then only `sent`
  /// payload bytes, then close: a deliberate torn frame.
  void abortMidFrame(std::string_view id, std::uint64_t promised_bytes,
                     std::string_view sent);

  /// Read one reply (header line + byte-counted body) off the wire.
  [[nodiscard]] common::Status readReply(ResponseHeader& reply,
                                         std::string& body);

 private:
  [[nodiscard]] common::Status readLine(std::string& line);
  [[nodiscard]] common::Status readExact(std::size_t n, std::string& out);

  int fd_ = -1;
  std::string inbuf_;
};

}  // namespace gx::server
