#include "genasmx/server/protocol.hpp"

#include <vector>

namespace gx::server {
namespace {

using common::ErrorCode;
using common::Status;

Status malformed(const std::string& why) {
  return Status(ErrorCode::kMalformedInput, "protocol: " + why);
}

/// Split a header line on single spaces. Empty tokens (double spaces,
/// trailing space) are rejected by the callers' token checks.
std::vector<std::string_view> splitTokens(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    std::size_t sp = line.find(' ', pos);
    if (sp == std::string_view::npos) sp = line.size();
    out.push_back(line.substr(pos, sp - pos));
    pos = sp + 1;
  }
  return out;
}

bool parseU64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.size() > 20) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (~std::uint64_t{0} - static_cast<std::uint64_t>(c - '0')) / 10) {
      return false;
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

/// "key=value" -> (key, value); false if there is no '='.
bool splitKv(std::string_view tok, std::string_view& key,
             std::string_view& value) {
  const std::size_t eq = tok.find('=');
  if (eq == std::string_view::npos) return false;
  key = tok.substr(0, eq);
  value = tok.substr(eq + 1);
  return true;
}

ErrorCode codeFromName(std::string_view name) {
  for (std::size_t i = 0; i < common::kErrorCodeCount; ++i) {
    const auto code = static_cast<ErrorCode>(i);
    if (common::errorCodeName(code) == name) return code;
  }
  return ErrorCode::kInternal;  // unknown code still parses as an error
}

}  // namespace

bool validRequestId(std::string_view id) noexcept {
  if (id.empty() || id.size() > 128) return false;
  for (const char c : id) {
    if (c <= ' ' || c > '~') return false;  // printable, no whitespace
  }
  return true;
}

Status parseRequestHeader(std::string_view line, RequestHeader& out) {
  out = RequestHeader{};
  const auto toks = splitTokens(line);
  if (toks.empty() || toks[0].empty()) return malformed("empty request line");
  if (toks[0] == "STATS") {
    if (toks.size() != 1) return malformed("STATS takes no arguments");
    out.kind = RequestKind::kStats;
    out.id = "stats";
    return {};
  }
  if (toks[0] == "PING") {
    if (toks.size() != 1) return malformed("PING takes no arguments");
    out.kind = RequestKind::kPing;
    out.id = "ping";
    return {};
  }
  if (toks[0] != "MAP") {
    return malformed("unknown verb '" + std::string(toks[0]) + "'");
  }
  out.kind = RequestKind::kMap;
  bool have_id = false;
  bool have_bytes = false;
  for (std::size_t i = 1; i < toks.size(); ++i) {
    std::string_view key, value;
    if (!splitKv(toks[i], key, value)) {
      return malformed("bad token '" + std::string(toks[i]) +
                       "' (want key=value)");
    }
    if (key == "id") {
      if (!validRequestId(value)) return malformed("bad request id");
      out.id = std::string(value);
      have_id = true;
    } else if (key == "bytes") {
      if (!parseU64(value, out.bytes)) return malformed("bad bytes value");
      have_bytes = true;
    } else if (key == "deadline_ms") {
      if (!parseU64(value, out.deadline_ms)) {
        return malformed("bad deadline_ms value");
      }
    } else {
      return malformed("unknown key '" + std::string(key) + "'");
    }
  }
  if (!have_id) return malformed("MAP requires id=");
  if (!have_bytes) return malformed("MAP requires bytes=");
  return {};
}

std::string formatRequestHeader(const RequestHeader& h) {
  switch (h.kind) {
    case RequestKind::kStats:
      return "STATS\n";
    case RequestKind::kPing:
      return "PING\n";
    case RequestKind::kMap:
      break;
  }
  std::string line = "MAP id=" + h.id + " bytes=" + std::to_string(h.bytes);
  if (h.deadline_ms != 0) {
    line += " deadline_ms=" + std::to_string(h.deadline_ms);
  }
  line += '\n';
  return line;
}

Status parseResponseHeader(std::string_view line, ResponseHeader& out) {
  out = ResponseHeader{};
  const auto toks = splitTokens(line);
  if (toks.empty() || toks[0].empty()) return malformed("empty response line");
  const bool ok = toks[0] == "OK";
  if (!ok && toks[0] != "ERR") {
    return malformed("unknown response verb '" + std::string(toks[0]) + "'");
  }
  out.ok = ok;
  for (std::size_t i = 1; i < toks.size(); ++i) {
    std::string_view key, value;
    if (!splitKv(toks[i], key, value)) {
      return malformed("bad token '" + std::string(toks[i]) + "'");
    }
    if (key == "msg") {
      // msg= swallows the rest of the line, spaces included.
      const std::size_t at = line.find(" msg=");
      out.msg = std::string(line.substr(at + 5));
      break;
    }
    if (key == "id") {
      out.id = std::string(value);
    } else if (ok && key == "reads") {
      if (!parseU64(value, out.reads)) return malformed("bad reads value");
    } else if (ok && key == "records") {
      if (!parseU64(value, out.records)) return malformed("bad records value");
    } else if (ok && key == "bytes") {
      if (!parseU64(value, out.bytes)) return malformed("bad bytes value");
    } else if (ok && key == "skipped") {
      if (!parseU64(value, out.skipped)) return malformed("bad skipped value");
    } else if (ok && key == "failed") {
      if (!parseU64(value, out.failed)) return malformed("bad failed value");
    } else if (ok && key == "usec") {
      if (!parseU64(value, out.usec)) return malformed("bad usec value");
    } else if (!ok && key == "code") {
      out.code = codeFromName(value);
    } else if (!ok && key == "retry") {
      out.retry = value == "1";
    } else if (!ok && key == "reason") {
      out.reason = std::string(value);
    } else {
      return malformed("unknown key '" + std::string(key) + "'");
    }
  }
  return {};
}

std::string formatOkHeader(const ResponseHeader& h) {
  std::string line = "OK id=" + h.id;
  line += " reads=" + std::to_string(h.reads);
  line += " records=" + std::to_string(h.records);
  line += " bytes=" + std::to_string(h.bytes);
  line += " skipped=" + std::to_string(h.skipped);
  line += " failed=" + std::to_string(h.failed);
  line += " usec=" + std::to_string(h.usec);
  line += '\n';
  return line;
}

std::string formatErrHeader(std::string_view id, common::ErrorCode code,
                            bool retry, std::string_view reason,
                            std::string_view msg) {
  std::string line = "ERR id=";
  line += id;
  line += " code=";
  line += common::errorCodeName(code);
  line += retry ? " retry=1" : " retry=0";
  line += " reason=";
  line += reason;
  line += " msg=";
  // The message must not break the line-oriented framing.
  for (const char c : msg) line += (c == '\n' || c == '\r') ? ' ' : c;
  line += '\n';
  return line;
}

}  // namespace gx::server
