#pragma once
// The paper's primary contribution: GenASM with three algorithmic
// improvements, each independently toggleable for the ablation study
// (bench_ablation, E5).
//
//   1. Entry compression ("store the AND", ImprovedOptions::
//      compress_entries): the DP table keeps only R[i][d] — the bitwise
//      AND of the four transition vectors — and the traceback recomputes
//      transition bits on demand from stored neighbours. One stored
//      vector per entry instead of four.
//
//   2. Early termination (ImprovedOptions::early_termination): GenASM-DC
//      is restructured *level-major* (row d for every column, then row
//      d+1), which is legal because row d depends only on rows d-1 and d.
//      The first row whose final column solves the problem ends the
//      computation; rows above d_min are never computed nor allocated.
//
//   3. Traceback-reachability pruning (ImprovedOptions::
//      traceback_pruning): windowed alignment commits only the first
//      W-O traceback operations, and each operation moves the text
//      cursor by at most one column, so a traceback limited to L ops can
//      only ever read columns i >= n - L - 1. Entries left of that are
//      computed (the recurrence needs them transiently) but never stored.
//
// The DC working state is two rows (levels d-1 and d); like the original
// hardware's pipeline registers it is transient, but we still count its
// traffic and footprint so the comparison against the baseline is honest.

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <vector>

#include "genasmx/bitvector/bitvector.hpp"
#include "genasmx/common/cigar.hpp"
#include "genasmx/genasm/genasm_common.hpp"
#include "genasmx/util/mem_stats.hpp"

namespace gx::core {

using genasm::Anchor;
using genasm::WindowResult;
using genasm::WindowSpec;

struct ImprovedOptions {
  bool compress_entries = true;
  bool early_termination = true;
  bool traceback_pruning = true;

  [[nodiscard]] static ImprovedOptions all() noexcept { return {}; }
  [[nodiscard]] static ImprovedOptions none() noexcept {
    return {false, false, false};
  }
};

template <int NW>
class ImprovedWindowSolver {
 public:
  using Vec = bitvector::BitVec<NW>;

  explicit ImprovedWindowSolver(ImprovedOptions opts = {}) : opts_(opts) {}

  [[nodiscard]] const ImprovedOptions& options() const noexcept {
    return opts_;
  }
  void setOptions(ImprovedOptions opts) noexcept { opts_ = opts; }

  template <class Counter = util::NullMemCounter>
  WindowResult solve(std::string_view text_rev, std::string_view pattern_rev,
                     const WindowSpec& spec, Counter counter = Counter{}) {
    WindowResult out;
    solve(text_rev, pattern_rev, spec, out, counter);
    return out;
  }

  /// In-place overload: `out` is reset and refilled, keeping its cigar's
  /// capacity, so callers looping over windows (alignWindowed) reuse one
  /// WindowResult instead of allocating a cigar per window.
  template <class Counter = util::NullMemCounter>
  void solve(std::string_view text_rev, std::string_view pattern_rev,
             const WindowSpec& spec, WindowResult& out,
             Counter counter = Counter{}) {
    out.ok = false;
    out.distance = -1;
    out.traceback_complete = false;
    out.cigar.clear();
    const int n = static_cast<int>(text_rev.size());
    const int m = static_cast<int>(pattern_rev.size());
    if (m <= 0 || m > Vec::kBits) return;
    const int k = spec.max_edits >= 0
                      ? spec.max_edits
                      : genasm::autoEditCap(n, m, spec.anchor);
    const int levels = k + 1;

    // Improvement 3: persistent storage is limited to the columns a
    // traceback of at most tb_op_limit operations can read.
    col_lo_ = 0;
    if (opts_.traceback_pruning && spec.tb_op_limit >= 0) {
      col_lo_ = n - spec.tb_op_limit - 1;
      if (col_lo_ < 0) col_lo_ = 0;
    }
    stride_ = n - col_lo_ + 1;   // stored columns col_lo_ .. n
    edge_cols_ = stride_ - 1;    // uncompressed mode stores (col_lo_, n]

    const std::uint64_t work_bytes =
        std::uint64_t(2) * (n + 1) * sizeof(Vec);
    // Logical footprint per persisted level: exactly what the traceback
    // can read — stride_ compressed entries, or four edge vectors for
    // each of the edge_cols_ stored columns (the old accounting charged
    // 4*stride_ in uncompressed mode, one phantom column; alloc and free
    // now both use the real figure, so MemStats stays balanced).
    const std::uint64_t row_bytes =
        opts_.compress_entries
            ? static_cast<std::uint64_t>(stride_) * sizeof(Vec)
            : std::uint64_t(4) * edge_cols_ * sizeof(Vec);
    counter.alloc(work_bytes);
    counter.problem();
    std::uint64_t persisted_bytes = 0;

    masks_.assign(pattern_rev);
    genasm::ensureScratch(work_prev_, static_cast<std::size_t>(n) + 1,
                          counter);
    genasm::ensureScratch(work_cur_, static_cast<std::size_t>(n) + 1,
                          counter);

    int dmin = -1;
    int computed_levels = 0;
    for (int d = 0; d < levels; ++d) {
      computed_levels = d + 1;
      // The flat arena grows level by level (monotonically, across
      // solves), so early-terminating solves never claim deeper levels
      // and steady-state windows allocate nothing.
      Vec* edge_row = nullptr;
      if (opts_.compress_entries) {
        genasm::ensureScratch(
            rows_, static_cast<std::size_t>(d + 1) * stride_, counter);
      } else {
        genasm::ensureScratch(
            edge_rows_, static_cast<std::size_t>(d + 1) * edge_cols_ * 4,
            counter);
        edge_row =
            edge_rows_.data() + static_cast<std::size_t>(d) * edge_cols_ * 4;
      }
      // Row d, column 0.
      work_cur_[0] = Vec::onesAbove(d);
      counter.store(NW);
      for (int i = 1; i <= n; ++i) {
        const Vec& pm = masks_.forChar(text_rev[i - 1]);
        // Register-carry accounting (mirrors the baseline's): the only
        // fresh operand per entry is work_prev_[i]; work_cur_[i-1] was
        // just computed and work_prev_[i-1] was the previous iteration's
        // work_prev_[i].
        const Vec match =
            work_cur_[i - 1].shl1(genasm::shiftInOne(spec.anchor, i - 1, d)) |
            pm;
        Vec r = match;
        Vec sub = Vec::allOnes();
        Vec del = Vec::allOnes();
        Vec ins = Vec::allOnes();
        if (d > 0) {
          counter.load(NW);  // work_prev_[i]
          sub = work_prev_[i - 1].shl1(
              genasm::shiftInOne(spec.anchor, i - 1, d - 1));
          del = work_prev_[i - 1];
          ins =
              work_prev_[i].shl1(genasm::shiftInOne(spec.anchor, i, d - 1));
          r = match & sub & del & ins;
        }
        work_cur_[i] = r;
        counter.store(NW);
        counter.entry();
        if (edge_row != nullptr && i > col_lo_) {
          Vec* e = edge_row + static_cast<std::size_t>(i - col_lo_ - 1) * 4;
          e[0] = match;
          e[1] = sub;
          e[2] = del;
          e[3] = ins;
          counter.store(4 * NW);
        }
      }
      // Persist the traceback-visible slice of this row (columns
      // col_lo_..n; the work buffers are monotone-grown, so the end
      // bound is n + 1, not end()).
      if (opts_.compress_entries) {
        std::copy(work_cur_.begin() + col_lo_, work_cur_.begin() + (n + 1),
                  rows_.begin() + static_cast<std::ptrdiff_t>(
                                      static_cast<std::size_t>(d) * stride_));
        counter.store(static_cast<std::uint64_t>(stride_) * NW);
      }
      counter.alloc(row_bytes);
      persisted_bytes += row_bytes;

      counter.load(NW);
      if (dmin < 0 && !work_cur_[n].bit(m - 1)) {
        dmin = d;
        if (opts_.early_termination) break;  // improvement 2
      }
      std::swap(work_prev_, work_cur_);
    }
    // GPU dependency-chain shape: level-major wavefront drains after
    // n columns + the number of levels actually computed.
    counter.wavefront(static_cast<std::uint64_t>(n) + computed_levels);

    if (dmin >= 0) {
      out.distance = dmin;
      out.ok = traceback(text_rev, pattern_rev, spec, n, m, dmin, out, counter);
    }
    counter.free(work_bytes + persisted_bytes);
  }

  /// Distance-only fast path: two working rows, no row persistence, no
  /// traceback (see genasm::solveDistanceTwoRow). Returns d_min or -1.
  template <class Counter = util::NullMemCounter>
  int solveDistance(std::string_view text_rev, std::string_view pattern_rev,
                    const WindowSpec& spec, Counter counter = Counter{}) {
    return genasm::solveDistanceTwoRow<NW>(text_rev, pattern_rev, spec,
                                           masks_, work_prev_, work_cur_,
                                           counter);
  }

 private:
  /// Bit (active-low) of stored R[col][lvl] at index `bitidx`.
  /// bitidx == -1 addresses the empty-prefix state; column 0 is always
  /// resolved analytically (R[0][lvl] = onesAbove(lvl)), which keeps the
  /// pruned store free of columns the traceback cannot reach.
  template <class Counter>
  bool rBitIsOne(Anchor anchor, int col, int lvl, int bitidx,
                 Counter& counter) const {
    if (bitidx < 0) return genasm::shiftInOne(anchor, col, lvl);
    if (col == 0) return bitidx >= lvl;
    counter.load(NW);
    return rows_[static_cast<std::size_t>(lvl) * stride_ +
                 static_cast<std::size_t>(col - col_lo_)]
        .bit(bitidx);
  }

  /// Probes for the shared genasm::walkTraceback. Compressed mode
  /// (improvement 1) recomputes the four transition bits on demand from
  /// stored R entries — note the match probe short-circuits on the
  /// character comparison, so a mismatching column costs no load; the
  /// uncompressed ablation loads the four stored edge vectors at once.
  template <class Counter>
  bool traceback(std::string_view text_rev, std::string_view pattern_rev,
                 const WindowSpec& spec, int n, int m, int dmin,
                 WindowResult& out, Counter& counter) {
    const auto emit = [&](common::EditOp op, std::uint32_t count) {
      out.cigar.push(op, count);
    };
    const std::uint64_t budget = genasm::tbOpBudget(spec.tb_op_limit);
    genasm::TbStatus status;
    if (opts_.compress_entries) {
      status = genasm::walkTraceback(
          spec.anchor, n, m, dmin, budget,
          [&](int i, int pl, int d) {
            genasm::TbFlags f;
            f.match =
                common::baseCode(pattern_rev[pl - 1]) ==
                    common::baseCode(text_rev[i - 1]) &&
                !rBitIsOne(spec.anchor, i - 1, d, pl - 2, counter);
            f.sub = d >= 1 &&
                    !rBitIsOne(spec.anchor, i - 1, d - 1, pl - 2, counter);
            f.del = d >= 1 &&
                    !rBitIsOne(spec.anchor, i - 1, d - 1, pl - 1, counter);
            f.ins =
                d >= 1 && !rBitIsOne(spec.anchor, i, d - 1, pl - 2, counter);
            return f;
          },
          emit);
    } else {
      status = genasm::walkTraceback(
          spec.anchor, n, m, dmin, budget,
          [&](int i, int pl, int d) {
            const Vec* e =
                edge_rows_.data() +
                (static_cast<std::size_t>(d) * edge_cols_ +
                 static_cast<std::size_t>(i - col_lo_ - 1)) *
                    4;
            counter.load(4 * NW);
            genasm::TbFlags f;
            f.match = !e[0].bit(pl - 1);
            f.sub = d >= 1 && !e[1].bit(pl - 1);
            f.del = d >= 1 && !e[2].bit(pl - 1);
            f.ins = d >= 1 && !e[3].bit(pl - 1);
            return f;
          },
          emit);
    }
    out.traceback_complete = status == genasm::TbStatus::Complete;
    return status != genasm::TbStatus::Bad;
  }

  ImprovedOptions opts_;
  int col_lo_ = 0;
  int stride_ = 0;
  int edge_cols_ = 0;
  // Flat, stride-indexed scratch arenas, sized monotonically and reused
  // across windows / reads / batch tasks (via the engine's per-worker
  // aligner pool): level lvl's pruned columns live at
  // rows_[lvl*stride_ ..] (compressed) or edge_rows_[lvl*edge_cols_*4 ..]
  // (uncompressed ablation). Steady-state solves allocate nothing.
  std::vector<Vec> rows_;
  std::vector<Vec> edge_rows_;
  std::vector<Vec> work_prev_, work_cur_;
  bitvector::PatternMasks<NW> masks_;
};

/// Convenience: fully global improved alignment (query <= 512 chars;
/// longer inputs go through genasmx/core/windowed.hpp).
[[nodiscard]] common::AlignmentResult alignGlobalImproved(
    std::string_view target, std::string_view query, int max_edits = -1,
    const ImprovedOptions& opts = {}, util::MemStats* stats = nullptr);

}  // namespace gx::core
