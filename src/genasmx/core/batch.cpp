#include "genasmx/core/batch.hpp"

#include "genasmx/engine/engine.hpp"

namespace gx::core {

std::vector<common::AlignmentResult> alignBatch(
    const std::vector<mapper::AlignmentPair>& pairs, const BatchConfig& cfg) {
  engine::EngineConfig ec;
  ec.backend = cfg.baseline ? "windowed-baseline" : "windowed-improved";
  ec.aligner.window = cfg.window;
  ec.aligner.improved = cfg.options;
  ec.threads = cfg.threads;
  return engine::AlignmentEngine(ec).alignBatch(pairs);
}

}  // namespace gx::core
