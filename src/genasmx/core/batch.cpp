#include "genasmx/core/batch.hpp"

#include "genasmx/util/thread_pool.hpp"

namespace gx::core {

std::vector<common::AlignmentResult> alignBatch(
    const std::vector<mapper::AlignmentPair>& pairs, const BatchConfig& cfg) {
  cfg.window.validate();
  std::vector<common::AlignmentResult> results(pairs.size());
  util::ThreadPool pool(cfg.threads);
  pool.parallel_for(pairs.size(), [&](std::size_t begin, std::size_t end) {
    // One solver per chunk: scratch buffers amortize across the share.
    if (cfg.baseline) {
      genasm::BaselineWindowSolver<1> solver;
      for (std::size_t i = begin; i < end; ++i) {
        results[i] = alignWindowed(solver, pairs[i].target, pairs[i].query,
                                   cfg.window);
      }
    } else {
      ImprovedWindowSolver<1> solver(cfg.options);
      for (std::size_t i = begin; i < end; ++i) {
        results[i] = alignWindowed(solver, pairs[i].target, pairs[i].query,
                                   cfg.window);
      }
    }
  });
  return results;
}

}  // namespace gx::core
