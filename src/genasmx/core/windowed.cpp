#include "genasmx/core/windowed.hpp"

#include <vector>

namespace gx::core {
namespace {

template <int NW, class Counter>
common::AlignmentResult runBaseline(std::string_view target,
                                    std::string_view query,
                                    const WindowConfig& cfg, Counter counter) {
  genasm::BaselineWindowSolver<NW> solver;
  return alignWindowed(solver, target, query, cfg, counter);
}

template <int NW, class Counter>
common::AlignmentResult runImproved(std::string_view target,
                                    std::string_view query,
                                    const WindowConfig& cfg,
                                    const ImprovedOptions& opts,
                                    Counter counter) {
  ImprovedWindowSolver<NW> solver(opts);
  return alignWindowed(solver, target, query, cfg, counter);
}

template <int NW, class Counter>
int runBaselineDistance(std::string_view target, std::string_view query,
                        const WindowConfig& cfg, int cap, Counter counter) {
  genasm::BaselineWindowSolver<NW> solver;
  WindowBuffers bufs;
  return distanceWindowed(solver, target, query, cfg, cap, bufs, counter);
}

template <int NW, class Counter>
int runImprovedDistance(std::string_view target, std::string_view query,
                        const WindowConfig& cfg, const ImprovedOptions& opts,
                        int cap, Counter counter) {
  ImprovedWindowSolver<NW> solver(opts);
  WindowBuffers bufs;
  return distanceWindowed(solver, target, query, cfg, cap, bufs, counter);
}

}  // namespace

common::AlignmentResult alignWindowedBaseline(std::string_view target,
                                              std::string_view query,
                                              const WindowConfig& cfg,
                                              util::MemStats* stats) {
  const int nw = bitvector::wordsNeeded(cfg.window);
  auto run = [&](auto counter) -> common::AlignmentResult {
    switch (nw) {
      case 1: return runBaseline<1>(target, query, cfg, counter);
      case 2: return runBaseline<2>(target, query, cfg, counter);
      case 3: return runBaseline<3>(target, query, cfg, counter);
      case 4: return runBaseline<4>(target, query, cfg, counter);
      default: return runBaseline<8>(target, query, cfg, counter);
    }
  };
  if (stats) return run(util::CountingMemCounter(*stats));
  return run(util::NullMemCounter{});
}

common::AlignmentResult alignWindowedImproved(std::string_view target,
                                              std::string_view query,
                                              const WindowConfig& cfg,
                                              const ImprovedOptions& opts,
                                              util::MemStats* stats) {
  const int nw = bitvector::wordsNeeded(cfg.window);
  auto run = [&](auto counter) -> common::AlignmentResult {
    switch (nw) {
      case 1: return runImproved<1>(target, query, cfg, opts, counter);
      case 2: return runImproved<2>(target, query, cfg, opts, counter);
      case 3: return runImproved<3>(target, query, cfg, opts, counter);
      case 4: return runImproved<4>(target, query, cfg, opts, counter);
      default: return runImproved<8>(target, query, cfg, opts, counter);
    }
  };
  if (stats) return run(util::CountingMemCounter(*stats));
  return run(util::NullMemCounter{});
}

int distanceWindowedBaseline(std::string_view target, std::string_view query,
                             const WindowConfig& cfg, int cap,
                             util::MemStats* stats) {
  const int nw = bitvector::wordsNeeded(cfg.window);
  auto run = [&](auto counter) -> int {
    switch (nw) {
      case 1: return runBaselineDistance<1>(target, query, cfg, cap, counter);
      case 2: return runBaselineDistance<2>(target, query, cfg, cap, counter);
      case 3: return runBaselineDistance<3>(target, query, cfg, cap, counter);
      case 4: return runBaselineDistance<4>(target, query, cfg, cap, counter);
      default: return runBaselineDistance<8>(target, query, cfg, cap, counter);
    }
  };
  if (stats) return run(util::CountingMemCounter(*stats));
  return run(util::NullMemCounter{});
}

void distanceWindowedBatch(simd::SimdBatchSolver& solver,
                           const WindowConfig& cfg,
                           const BatchedDistanceRequest* requests,
                           std::size_t count, int* results) {
  cfg.validate();
  const std::size_t W = static_cast<std::size_t>(cfg.window);
  const std::size_t final_slack =
      static_cast<std::size_t>(cfg.textWindow() - cfg.window);

  // Per-request march state — distanceWindowed()'s locals, one per lane.
  struct March {
    std::size_t ti = 0;
    std::size_t qi = 0;
    std::uint64_t acc = 0;
    std::uint64_t budget = ~0ULL;
    bool done = false;
    bool is_final = false;  ///< current window is the final window
  };
  std::vector<March> st(count);
  std::size_t live = count;
  for (std::size_t r = 0; r < count; ++r) {
    st[r].budget = requests[r].cap < 0
                       ? ~0ULL
                       : static_cast<std::uint64_t>(requests[r].cap);
  }
  const auto finish = [&](std::size_t r, int value) {
    st[r].done = true;
    results[r] = value;
    --live;
  };

  std::vector<simd::WindowProblem> probs;
  std::vector<simd::WindowOutcome> outs;
  std::vector<std::size_t> lane_req;

  // Each sweep advances every live request by exactly one window: the
  // current windows of all live requests are packed into lanes and
  // solved together, then each lane applies the scalar march update.
  while (live > 0) {
    probs.clear();
    lane_req.clear();
    for (std::size_t r = 0; r < count; ++r) {
      if (st[r].done) continue;
      const std::string_view target = requests[r].target;
      const std::string_view query = requests[r].query;
      const std::size_t rem_t = target.size() - st[r].ti;
      const std::size_t rem_q = query.size() - st[r].qi;
      if (rem_q == 0) {
        st[r].acc += rem_t;  // trailing deletions
        finish(r, st[r].acc > st[r].budget ? -1
                                           : static_cast<int>(st[r].acc));
        continue;
      }
      if (rem_t == 0) {
        st[r].acc += rem_q;  // trailing insertions
        finish(r, st[r].acc > st[r].budget ? -1
                                           : static_cast<int>(st[r].acc));
        continue;
      }
      simd::WindowProblem p;
      p.max_edits = cfg.max_edits;
      if (rem_q <= W) {
        st[r].is_final = true;
        const std::size_t tw_len = std::min(rem_t, rem_q + final_slack);
        p.text = target.substr(st[r].ti, tw_len);
        p.pattern = query.substr(st[r].qi, rem_q);
        p.tb_op_limit = -1;
      } else {
        st[r].is_final = false;
        const std::size_t tw_len =
            std::min(rem_t, static_cast<std::size_t>(cfg.textWindow()));
        p.text = target.substr(st[r].ti, tw_len);
        p.pattern = query.substr(st[r].qi, W);
        p.tb_op_limit = cfg.window - cfg.overlap;
      }
      probs.push_back(p);
      lane_req.push_back(r);
    }
    if (probs.empty()) break;
    outs.resize(probs.size());
    solver.solveWindowBatch(genasm::Anchor::StartOnly, probs.data(),
                            probs.size(), outs.data());
    for (std::size_t j = 0; j < lane_req.size(); ++j) {
      const std::size_t r = lane_req[j];
      const simd::WindowOutcome& out = outs[j];
      March& m = st[r];
      if (!out.ok) {
        finish(r, -1);
        continue;
      }
      if (m.is_final) {
        m.acc += out.edits;
        const std::size_t rem_t = requests[r].target.size() - m.ti;
        if (out.text_consumed < rem_t) m.acc += rem_t - out.text_consumed;
        finish(r, m.acc > m.budget ? -1 : static_cast<int>(m.acc));
        continue;
      }
      if (out.text_consumed == 0 && out.pattern_consumed == 0) {
        finish(r, -1);  // defensive: no progress
        continue;
      }
      m.acc += out.edits;
      if (m.acc > m.budget) {
        finish(r, -1);  // total >= acc, so the cap is blown
        continue;
      }
      m.ti += out.text_consumed;
      m.qi += out.pattern_consumed;
    }
  }
}

int distanceWindowedImproved(std::string_view target, std::string_view query,
                             const WindowConfig& cfg,
                             const ImprovedOptions& opts, int cap,
                             util::MemStats* stats) {
  const int nw = bitvector::wordsNeeded(cfg.window);
  auto run = [&](auto counter) -> int {
    switch (nw) {
      case 1:
        return runImprovedDistance<1>(target, query, cfg, opts, cap, counter);
      case 2:
        return runImprovedDistance<2>(target, query, cfg, opts, cap, counter);
      case 3:
        return runImprovedDistance<3>(target, query, cfg, opts, cap, counter);
      case 4:
        return runImprovedDistance<4>(target, query, cfg, opts, cap, counter);
      default:
        return runImprovedDistance<8>(target, query, cfg, opts, cap, counter);
    }
  };
  if (stats) return run(util::CountingMemCounter(*stats));
  return run(util::NullMemCounter{});
}

}  // namespace gx::core
