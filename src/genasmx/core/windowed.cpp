#include "genasmx/core/windowed.hpp"

namespace gx::core {
namespace {

template <int NW, class Counter>
common::AlignmentResult runBaseline(std::string_view target,
                                    std::string_view query,
                                    const WindowConfig& cfg, Counter counter) {
  genasm::BaselineWindowSolver<NW> solver;
  return alignWindowed(solver, target, query, cfg, counter);
}

template <int NW, class Counter>
common::AlignmentResult runImproved(std::string_view target,
                                    std::string_view query,
                                    const WindowConfig& cfg,
                                    const ImprovedOptions& opts,
                                    Counter counter) {
  ImprovedWindowSolver<NW> solver(opts);
  return alignWindowed(solver, target, query, cfg, counter);
}

template <int NW, class Counter>
int runBaselineDistance(std::string_view target, std::string_view query,
                        const WindowConfig& cfg, int cap, Counter counter) {
  genasm::BaselineWindowSolver<NW> solver;
  WindowBuffers bufs;
  return distanceWindowed(solver, target, query, cfg, cap, bufs, counter);
}

template <int NW, class Counter>
int runImprovedDistance(std::string_view target, std::string_view query,
                        const WindowConfig& cfg, const ImprovedOptions& opts,
                        int cap, Counter counter) {
  ImprovedWindowSolver<NW> solver(opts);
  WindowBuffers bufs;
  return distanceWindowed(solver, target, query, cfg, cap, bufs, counter);
}

}  // namespace

common::AlignmentResult alignWindowedBaseline(std::string_view target,
                                              std::string_view query,
                                              const WindowConfig& cfg,
                                              util::MemStats* stats) {
  const int nw = bitvector::wordsNeeded(cfg.window);
  auto run = [&](auto counter) -> common::AlignmentResult {
    switch (nw) {
      case 1: return runBaseline<1>(target, query, cfg, counter);
      case 2: return runBaseline<2>(target, query, cfg, counter);
      case 3: return runBaseline<3>(target, query, cfg, counter);
      case 4: return runBaseline<4>(target, query, cfg, counter);
      default: return runBaseline<8>(target, query, cfg, counter);
    }
  };
  if (stats) return run(util::CountingMemCounter(*stats));
  return run(util::NullMemCounter{});
}

common::AlignmentResult alignWindowedImproved(std::string_view target,
                                              std::string_view query,
                                              const WindowConfig& cfg,
                                              const ImprovedOptions& opts,
                                              util::MemStats* stats) {
  const int nw = bitvector::wordsNeeded(cfg.window);
  auto run = [&](auto counter) -> common::AlignmentResult {
    switch (nw) {
      case 1: return runImproved<1>(target, query, cfg, opts, counter);
      case 2: return runImproved<2>(target, query, cfg, opts, counter);
      case 3: return runImproved<3>(target, query, cfg, opts, counter);
      case 4: return runImproved<4>(target, query, cfg, opts, counter);
      default: return runImproved<8>(target, query, cfg, opts, counter);
    }
  };
  if (stats) return run(util::CountingMemCounter(*stats));
  return run(util::NullMemCounter{});
}

int distanceWindowedBaseline(std::string_view target, std::string_view query,
                             const WindowConfig& cfg, int cap,
                             util::MemStats* stats) {
  const int nw = bitvector::wordsNeeded(cfg.window);
  auto run = [&](auto counter) -> int {
    switch (nw) {
      case 1: return runBaselineDistance<1>(target, query, cfg, cap, counter);
      case 2: return runBaselineDistance<2>(target, query, cfg, cap, counter);
      case 3: return runBaselineDistance<3>(target, query, cfg, cap, counter);
      case 4: return runBaselineDistance<4>(target, query, cfg, cap, counter);
      default: return runBaselineDistance<8>(target, query, cfg, cap, counter);
    }
  };
  if (stats) return run(util::CountingMemCounter(*stats));
  return run(util::NullMemCounter{});
}

int distanceWindowedImproved(std::string_view target, std::string_view query,
                             const WindowConfig& cfg,
                             const ImprovedOptions& opts, int cap,
                             util::MemStats* stats) {
  const int nw = bitvector::wordsNeeded(cfg.window);
  auto run = [&](auto counter) -> int {
    switch (nw) {
      case 1:
        return runImprovedDistance<1>(target, query, cfg, opts, cap, counter);
      case 2:
        return runImprovedDistance<2>(target, query, cfg, opts, cap, counter);
      case 3:
        return runImprovedDistance<3>(target, query, cfg, opts, cap, counter);
      case 4:
        return runImprovedDistance<4>(target, query, cfg, opts, cap, counter);
      default:
        return runImprovedDistance<8>(target, query, cfg, opts, cap, counter);
    }
  };
  if (stats) return run(util::CountingMemCounter(*stats));
  return run(util::NullMemCounter{});
}

}  // namespace gx::core
