#include "genasmx/core/windowed.hpp"

#include <vector>

namespace gx::core {
namespace {

template <int NW, class Counter>
common::AlignmentResult runBaseline(std::string_view target,
                                    std::string_view query,
                                    const WindowConfig& cfg, Counter counter) {
  genasm::BaselineWindowSolver<NW> solver;
  return alignWindowed(solver, target, query, cfg, counter);
}

template <int NW, class Counter>
common::AlignmentResult runImproved(std::string_view target,
                                    std::string_view query,
                                    const WindowConfig& cfg,
                                    const ImprovedOptions& opts,
                                    Counter counter) {
  ImprovedWindowSolver<NW> solver(opts);
  return alignWindowed(solver, target, query, cfg, counter);
}

template <int NW, class Counter>
int runBaselineDistance(std::string_view target, std::string_view query,
                        const WindowConfig& cfg, int cap, Counter counter) {
  genasm::BaselineWindowSolver<NW> solver;
  WindowBuffers bufs;
  return distanceWindowed(solver, target, query, cfg, cap, bufs, counter);
}

template <int NW, class Counter>
int runImprovedDistance(std::string_view target, std::string_view query,
                        const WindowConfig& cfg, const ImprovedOptions& opts,
                        int cap, Counter counter) {
  ImprovedWindowSolver<NW> solver(opts);
  WindowBuffers bufs;
  return distanceWindowed(solver, target, query, cfg, cap, bufs, counter);
}

}  // namespace

common::AlignmentResult alignWindowedBaseline(std::string_view target,
                                              std::string_view query,
                                              const WindowConfig& cfg,
                                              util::MemStats* stats) {
  const int nw = bitvector::wordsNeeded(cfg.window);
  auto run = [&](auto counter) -> common::AlignmentResult {
    switch (nw) {
      case 1: return runBaseline<1>(target, query, cfg, counter);
      case 2: return runBaseline<2>(target, query, cfg, counter);
      case 3: return runBaseline<3>(target, query, cfg, counter);
      case 4: return runBaseline<4>(target, query, cfg, counter);
      default: return runBaseline<8>(target, query, cfg, counter);
    }
  };
  if (stats) return run(util::CountingMemCounter(*stats));
  return run(util::NullMemCounter{});
}

common::AlignmentResult alignWindowedImproved(std::string_view target,
                                              std::string_view query,
                                              const WindowConfig& cfg,
                                              const ImprovedOptions& opts,
                                              util::MemStats* stats) {
  const int nw = bitvector::wordsNeeded(cfg.window);
  auto run = [&](auto counter) -> common::AlignmentResult {
    switch (nw) {
      case 1: return runImproved<1>(target, query, cfg, opts, counter);
      case 2: return runImproved<2>(target, query, cfg, opts, counter);
      case 3: return runImproved<3>(target, query, cfg, opts, counter);
      case 4: return runImproved<4>(target, query, cfg, opts, counter);
      default: return runImproved<8>(target, query, cfg, opts, counter);
    }
  };
  if (stats) return run(util::CountingMemCounter(*stats));
  return run(util::NullMemCounter{});
}

int distanceWindowedBaseline(std::string_view target, std::string_view query,
                             const WindowConfig& cfg, int cap,
                             util::MemStats* stats) {
  const int nw = bitvector::wordsNeeded(cfg.window);
  auto run = [&](auto counter) -> int {
    switch (nw) {
      case 1: return runBaselineDistance<1>(target, query, cfg, cap, counter);
      case 2: return runBaselineDistance<2>(target, query, cfg, cap, counter);
      case 3: return runBaselineDistance<3>(target, query, cfg, cap, counter);
      case 4: return runBaselineDistance<4>(target, query, cfg, cap, counter);
      default: return runBaselineDistance<8>(target, query, cfg, cap, counter);
    }
  };
  if (stats) return run(util::CountingMemCounter(*stats));
  return run(util::NullMemCounter{});
}

namespace {

/// Build the current window problem for one live request — the shared
/// cursor-to-window mapping of distanceWindowed()/alignWindowed().
/// Pre: rem_t > 0 && rem_q > 0.
simd::WindowProblem currentWindow(const WindowConfig& cfg,
                                  std::string_view target,
                                  std::string_view query,
                                  WindowedBatchScratch::March& m) {
  const std::size_t W = static_cast<std::size_t>(cfg.window);
  const std::size_t rem_t = target.size() - m.ti;
  const std::size_t rem_q = query.size() - m.qi;
  simd::WindowProblem p;
  p.max_edits = cfg.max_edits;
  if (rem_q <= W) {
    m.is_final = true;
    const std::size_t final_slack =
        static_cast<std::size_t>(cfg.textWindow() - cfg.window);
    const std::size_t tw_len = std::min(rem_t, rem_q + final_slack);
    p.text = target.substr(m.ti, tw_len);
    p.pattern = query.substr(m.qi, rem_q);
    p.tb_op_limit = -1;
  } else {
    m.is_final = false;
    const std::size_t tw_len =
        std::min(rem_t, static_cast<std::size_t>(cfg.textWindow()));
    p.text = target.substr(m.ti, tw_len);
    p.pattern = query.substr(m.qi, W);
    p.tb_op_limit = cfg.window - cfg.overlap;
  }
  return p;
}

}  // namespace

void distanceWindowedBatch(simd::SimdBatchSolver& solver,
                           const WindowConfig& cfg,
                           const BatchedDistanceRequest* requests,
                           std::size_t count, int* results,
                           WindowedBatchScratch& scratch) {
  cfg.validate();

  // Per-request march state — distanceWindowed()'s locals, one per lane.
  // Arena capacities (including the per-sweep probs/lane_req push_backs,
  // bounded by count) are sized up front so steady-state marches grow
  // nothing.
  scratch.ensure(scratch.st, count);
  scratch.ensure(scratch.probs, count);
  scratch.ensure(scratch.lane_req, count);
  auto& st = scratch.st;
  auto& probs = scratch.probs;
  auto& outs = scratch.outs;
  auto& lane_req = scratch.lane_req;

  std::size_t live = count;
  for (std::size_t r = 0; r < count; ++r) {
    st[r] = WindowedBatchScratch::March{};
    st[r].budget = requests[r].cap < 0
                       ? ~0ULL
                       : static_cast<std::uint64_t>(requests[r].cap);
  }
  const auto finish = [&](std::size_t r, int value) {
    st[r].done = true;
    results[r] = value;
    --live;
  };

  // Each sweep advances every live request by exactly one window: the
  // current windows of all live requests are packed into lanes and
  // solved together, then each lane applies the scalar march update.
  while (live > 0) {
    probs.clear();
    lane_req.clear();
    for (std::size_t r = 0; r < count; ++r) {
      if (st[r].done) continue;
      const std::string_view target = requests[r].target;
      const std::string_view query = requests[r].query;
      const std::size_t rem_t = target.size() - st[r].ti;
      const std::size_t rem_q = query.size() - st[r].qi;
      if (rem_q == 0) {
        st[r].acc += rem_t;  // trailing deletions
        finish(r, st[r].acc > st[r].budget ? -1
                                           : static_cast<int>(st[r].acc));
        continue;
      }
      if (rem_t == 0) {
        st[r].acc += rem_q;  // trailing insertions
        finish(r, st[r].acc > st[r].budget ? -1
                                           : static_cast<int>(st[r].acc));
        continue;
      }
      probs.push_back(currentWindow(cfg, target, query, st[r]));
      lane_req.push_back(r);
    }
    if (probs.empty()) break;
    scratch.ensure(outs, probs.size());
    solver.solveWindowBatch(genasm::Anchor::StartOnly, probs.data(),
                            probs.size(), outs.data());
    for (std::size_t j = 0; j < lane_req.size(); ++j) {
      const std::size_t r = lane_req[j];
      const simd::WindowOutcome& out = outs[j];
      WindowedBatchScratch::March& m = st[r];
      if (!out.ok) {
        finish(r, -1);
        continue;
      }
      if (m.is_final) {
        m.acc += out.edits;
        const std::size_t rem_t = requests[r].target.size() - m.ti;
        if (out.text_consumed < rem_t) m.acc += rem_t - out.text_consumed;
        finish(r, m.acc > m.budget ? -1 : static_cast<int>(m.acc));
        continue;
      }
      if (out.text_consumed == 0 && out.pattern_consumed == 0) {
        finish(r, -1);  // defensive: no progress
        continue;
      }
      m.acc += out.edits;
      if (m.acc > m.budget) {
        finish(r, -1);  // total >= acc, so the cap is blown
        continue;
      }
      m.ti += out.text_consumed;
      m.qi += out.pattern_consumed;
    }
  }
}

void distanceWindowedBatch(simd::SimdBatchSolver& solver,
                           const WindowConfig& cfg,
                           const BatchedDistanceRequest* requests,
                           std::size_t count, int* results) {
  WindowedBatchScratch scratch;
  distanceWindowedBatch(solver, cfg, requests, count, results, scratch);
}

void alignWindowedBatch(simd::SimdBatchSolver& solver, const WindowConfig& cfg,
                        const BatchedAlignRequest* requests, std::size_t count,
                        common::AlignmentResult* results,
                        WindowedBatchScratch& scratch) {
  cfg.validate();

  scratch.ensure(scratch.st, count);
  scratch.ensure(scratch.probs, count);
  scratch.ensure(scratch.lane_req, count);
  auto& st = scratch.st;
  auto& probs = scratch.probs;
  auto& wrs = scratch.wrs;
  auto& lane_req = scratch.lane_req;

  std::size_t live = count;
  for (std::size_t r = 0; r < count; ++r) {
    st[r] = WindowedBatchScratch::March{};
    // In-place reset, preserving cigar capacity, exactly as
    // alignWindowed()'s fresh AlignmentResult starts out.
    common::AlignmentResult& out = results[r];
    out.ok = false;
    out.edit_distance = -1;
    out.score = 0;
    out.cigar.clear();
  }
  const auto finishFail = [&](std::size_t r) {
    st[r].done = true;
    --live;  // results[r].ok stays false; the partial cigar stands
  };
  const auto finishOk = [&](std::size_t r) {
    st[r].done = true;
    --live;
    common::AlignmentResult& out = results[r];
    out.ok = true;
    out.edit_distance = static_cast<int>(out.cigar.editDistance());
    out.score = -out.edit_distance;
  };

  // Lock-step march, one window per live request per sweep — the same
  // sweep structure as distanceWindowedBatch, with alignWindowed()'s
  // commit logic applied per lane.
  while (live > 0) {
    probs.clear();
    lane_req.clear();
    for (std::size_t r = 0; r < count; ++r) {
      if (st[r].done) continue;
      const std::string_view target = requests[r].target;
      const std::string_view query = requests[r].query;
      const std::size_t rem_t = target.size() - st[r].ti;
      const std::size_t rem_q = query.size() - st[r].qi;
      if (rem_q == 0) {
        if (rem_t > 0) {
          results[r].cigar.push(common::EditOp::Deletion,
                                static_cast<std::uint32_t>(rem_t));
        }
        finishOk(r);
        continue;
      }
      if (rem_t == 0) {
        results[r].cigar.push(common::EditOp::Insertion,
                              static_cast<std::uint32_t>(rem_q));
        finishOk(r);
        continue;
      }
      probs.push_back(currentWindow(cfg, target, query, st[r]));
      lane_req.push_back(r);
    }
    if (probs.empty()) break;
    scratch.ensure(wrs, probs.size());
    solver.alignBatch(genasm::Anchor::StartOnly, probs.data(), probs.size(),
                      wrs.data());
    for (std::size_t j = 0; j < lane_req.size(); ++j) {
      const std::size_t r = lane_req[j];
      const genasm::WindowResult& wr = wrs[j];
      WindowedBatchScratch::March& m = st[r];
      common::AlignmentResult& out = results[r];
      if (!wr.ok) {
        finishFail(r);
        continue;
      }
      if (m.is_final) {
        out.cigar.append(wr.cigar);
        const std::size_t rem_t = requests[r].target.size() - m.ti;
        const std::uint64_t consumed = wr.cigar.targetLength();
        if (consumed < rem_t) {
          out.cigar.push(common::EditOp::Deletion,
                         static_cast<std::uint32_t>(rem_t - consumed));
        }
        finishOk(r);
        continue;
      }
      const std::uint64_t tc = wr.cigar.targetLength();
      const std::uint64_t qc = wr.cigar.queryLength();
      if (tc == 0 && qc == 0) {
        finishFail(r);  // defensive: no progress
        continue;
      }
      out.cigar.append(wr.cigar);
      m.ti += tc;
      m.qi += qc;
    }
  }
}

void alignWindowedBatch(simd::SimdBatchSolver& solver, const WindowConfig& cfg,
                        const BatchedAlignRequest* requests, std::size_t count,
                        common::AlignmentResult* results) {
  WindowedBatchScratch scratch;
  alignWindowedBatch(solver, cfg, requests, count, results, scratch);
}

int distanceWindowedImproved(std::string_view target, std::string_view query,
                             const WindowConfig& cfg,
                             const ImprovedOptions& opts, int cap,
                             util::MemStats* stats) {
  const int nw = bitvector::wordsNeeded(cfg.window);
  auto run = [&](auto counter) -> int {
    switch (nw) {
      case 1:
        return runImprovedDistance<1>(target, query, cfg, opts, cap, counter);
      case 2:
        return runImprovedDistance<2>(target, query, cfg, opts, cap, counter);
      case 3:
        return runImprovedDistance<3>(target, query, cfg, opts, cap, counter);
      case 4:
        return runImprovedDistance<4>(target, query, cfg, opts, cap, counter);
      default:
        return runImprovedDistance<8>(target, query, cfg, opts, cap, counter);
    }
  };
  if (stats) return run(util::CountingMemCounter(*stats));
  return run(util::NullMemCounter{});
}

}  // namespace gx::core
