#pragma once
// Multi-threaded batch alignment — the embarrassingly-parallel outer loop
// the paper runs with 48 CPU threads. Thin compatibility shim over
// engine::AlignmentEngine (genasmx/engine/engine.hpp), which owns the
// thread pool and per-worker solver scratch reuse; prefer the engine (or
// the AlignerRegistry) directly in new code — it reaches every backend,
// not just the two GenASM windowed solvers.

#include <vector>

#include "genasmx/core/windowed.hpp"
#include "genasmx/mapper/mapper.hpp"

namespace gx::core {

struct BatchConfig {
  WindowConfig window{};
  ImprovedOptions options{};
  /// 0 selects hardware concurrency.
  std::size_t threads = 0;
  /// Use the unimproved baseline solver instead (comparison runs).
  bool baseline = false;
};

/// Align every pair; results[i] corresponds to pairs[i]. Deterministic:
/// identical to the sequential loop regardless of thread count.
[[nodiscard]] std::vector<common::AlignmentResult> alignBatch(
    const std::vector<mapper::AlignmentPair>& pairs,
    const BatchConfig& cfg = {});

}  // namespace gx::core
