#pragma once
// Multi-threaded batch alignment — the embarrassingly-parallel outer loop
// the paper runs with 48 CPU threads. Pairs are distributed over a thread
// pool; each worker reuses one solver's scratch buffers across its share.

#include <vector>

#include "genasmx/core/windowed.hpp"
#include "genasmx/mapper/mapper.hpp"

namespace gx::core {

struct BatchConfig {
  WindowConfig window{};
  ImprovedOptions options{};
  /// 0 selects hardware concurrency.
  std::size_t threads = 0;
  /// Use the unimproved baseline solver instead (comparison runs).
  bool baseline = false;
};

/// Align every pair; results[i] corresponds to pairs[i]. Deterministic:
/// identical to the sequential loop regardless of thread count.
[[nodiscard]] std::vector<common::AlignmentResult> alignBatch(
    const std::vector<mapper::AlignmentPair>& pairs,
    const BatchConfig& cfg = {});

}  // namespace gx::core
