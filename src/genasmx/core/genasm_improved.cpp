#include "genasmx/core/genasm_improved.hpp"

#include <string>

#include "genasmx/common/sequence.hpp"

namespace gx::core {
namespace {

template <int NW, class Counter>
common::AlignmentResult runGlobal(std::string_view target,
                                  std::string_view query, int max_edits,
                                  const ImprovedOptions& opts,
                                  Counter counter) {
  ImprovedWindowSolver<NW> solver(opts);
  std::string t_rev, q_rev;
  return genasm::alignGlobalWith(solver, t_rev, q_rev, target, query,
                                 max_edits, counter);
}

template <class Counter>
common::AlignmentResult dispatch(std::string_view target,
                                 std::string_view query, int max_edits,
                                 const ImprovedOptions& opts,
                                 Counter counter) {
  switch (bitvector::wordsNeeded(static_cast<int>(query.size()))) {
    case 1: return runGlobal<1>(target, query, max_edits, opts, counter);
    case 2: return runGlobal<2>(target, query, max_edits, opts, counter);
    case 3: return runGlobal<3>(target, query, max_edits, opts, counter);
    case 4: return runGlobal<4>(target, query, max_edits, opts, counter);
    case 5: return runGlobal<5>(target, query, max_edits, opts, counter);
    case 6: return runGlobal<6>(target, query, max_edits, opts, counter);
    case 7: return runGlobal<7>(target, query, max_edits, opts, counter);
    case 8: return runGlobal<8>(target, query, max_edits, opts, counter);
    default: return {};
  }
}

}  // namespace

common::AlignmentResult alignGlobalImproved(std::string_view target,
                                            std::string_view query,
                                            int max_edits,
                                            const ImprovedOptions& opts,
                                            util::MemStats* stats) {
  if (query.empty()) {
    common::AlignmentResult r;
    r.ok = true;
    r.edit_distance = static_cast<int>(target.size());
    r.score = -r.edit_distance;
    if (!target.empty()) {
      r.cigar.push(common::EditOp::Deletion,
                   static_cast<std::uint32_t>(target.size()));
    }
    return r;
  }
  if (stats) {
    return dispatch(target, query, max_edits, opts,
                    util::CountingMemCounter(*stats));
  }
  return dispatch(target, query, max_edits, opts, util::NullMemCounter{});
}

}  // namespace gx::core
