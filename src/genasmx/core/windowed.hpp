#pragma once
// GenASM windowed (tiled) alignment of arbitrarily long sequences.
//
// Long reads are aligned in windows of W pattern characters against W
// text characters. Each window is solved with a free original-text end
// (lookahead); only the first W-O traceback operations are committed,
// the cursors advance by what those operations consumed, and the next
// window starts there. The final window (<= W remaining pattern
// characters) is solved fully globally so the overall alignment consumes
// both sequences exactly.
//
// This driver is generic over the window solver, so the unimproved
// baseline and the improved algorithm share identical windowing logic —
// the measured differences (E1-E5) come from the solvers alone.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "genasmx/common/cigar.hpp"
#include "genasmx/common/sequence.hpp"
#include "genasmx/core/genasm_improved.hpp"
#include "genasmx/genasm/genasm_baseline.hpp"
#include "genasmx/simd/batch_solver.hpp"
#include "genasmx/util/mem_stats.hpp"

namespace gx::core {

struct WindowConfig {
  int window = 64;    ///< W: pattern characters per window
  int overlap = 24;   ///< O: trailing traceback ops discarded per window
  int max_edits = -1; ///< per-window level cap; -1 = always-solvable cap
  /// Extra text characters per window beyond the pattern window; -1
  /// selects window/2. The slack matters: with equal windows, an indel
  /// skew or a candidate start flank forces the true alignment to pay
  /// both the skew *and* a phantom insertion tail inside each window,
  /// at which point a random-DNA scatter path (~0.47 edits/char) can
  /// win d_min and permanently derail the stitching.
  int lookahead = -1;

  [[nodiscard]] int textWindow() const noexcept {
    return window + (lookahead >= 0 ? lookahead : window / 2);
  }

  void validate() const {
    if (window < 2 || window > 512) {
      throw std::invalid_argument("WindowConfig: window must be in [2,512]");
    }
    if (overlap < 1 || overlap >= window) {
      throw std::invalid_argument(
          "WindowConfig: overlap must be in [1, window)");
    }
    if (lookahead > 4 * window) {
      throw std::invalid_argument(
          "WindowConfig: lookahead must be <= 4*window");
    }
  }
};

/// Reusable per-worker state for the windowed drivers: the two reversal
/// buffers and the per-window result (cigar capacity included). Owned by
/// the caller (the engine's aligner instances keep one each), so a long
/// read — and every read after it — runs the window loop with zero
/// steady-state allocations.
struct WindowBuffers {
  std::string t_rev, q_rev;
  genasm::WindowResult wr;
};

/// Align query against target using `solver` for each window.
/// Solver must provide solve(text_rev, pattern_rev, spec, out, counter)
/// handling patterns up to cfg.window characters.
template <class Solver, class Counter = util::NullMemCounter>
common::AlignmentResult alignWindowed(Solver& solver, std::string_view target,
                                      std::string_view query,
                                      const WindowConfig& cfg,
                                      WindowBuffers& bufs,
                                      Counter counter = Counter{}) {
  cfg.validate();
  common::AlignmentResult out;
  const std::size_t W = static_cast<std::size_t>(cfg.window);
  std::size_t ti = 0;
  std::size_t qi = 0;

  std::string& t_rev = bufs.t_rev;
  std::string& q_rev = bufs.q_rev;
  genasm::WindowResult& wr = bufs.wr;

  // Window specs are loop-invariant; build them once.
  genasm::WindowSpec mid_spec;
  mid_spec.anchor = genasm::Anchor::StartOnly;
  mid_spec.max_edits = cfg.max_edits;
  mid_spec.tb_op_limit = cfg.window - cfg.overlap;
  genasm::WindowSpec final_spec;
  final_spec.anchor = genasm::Anchor::StartOnly;
  final_spec.max_edits = cfg.max_edits;

  while (true) {
    const std::size_t rem_t = target.size() - ti;
    const std::size_t rem_q = query.size() - qi;
    if (rem_q == 0) {
      if (rem_t > 0) {
        out.cigar.push(common::EditOp::Deletion,
                       static_cast<std::uint32_t>(rem_t));
      }
      break;
    }
    if (rem_t == 0) {
      out.cigar.push(common::EditOp::Insertion,
                     static_cast<std::uint32_t>(rem_q));
      break;
    }

    if (rem_q <= W) {
      // Final window: the remaining pattern against a text tail, solved
      // in the same free-text-end mode as mid-read windows so the DP
      // working set stays steady-state sized (k <= W levels; a fully
      // global final solve would need k up to n+m). The pattern is fully
      // consumed; whatever text the traceback leaves unconsumed becomes
      // trailing deletions, which is also where a global alignment would
      // spend them on well-sized candidates.
      const std::size_t tw_len =
          std::min(rem_t, rem_q + static_cast<std::size_t>(
                                      cfg.textWindow() - cfg.window));
      common::reverseInto(t_rev, target.substr(ti, tw_len));
      common::reverseInto(q_rev, query.substr(qi, rem_q));
      solver.solve(t_rev, q_rev, final_spec, wr, counter);
      if (!wr.ok) return out;  // out.ok == false
      out.cigar.append(wr.cigar);
      const std::uint64_t consumed = wr.cigar.targetLength();
      if (consumed < rem_t) {
        out.cigar.push(common::EditOp::Deletion,
                       static_cast<std::uint32_t>(rem_t - consumed));
      }
      break;
    }

    // Mid-read window.
    const std::size_t tw_len =
        std::min(rem_t, static_cast<std::size_t>(cfg.textWindow()));
    common::reverseInto(t_rev, target.substr(ti, tw_len));
    common::reverseInto(q_rev, query.substr(qi, W));
    solver.solve(t_rev, q_rev, mid_spec, wr, counter);
    if (!wr.ok) return out;
    const std::uint64_t tc = wr.cigar.targetLength();
    const std::uint64_t qc = wr.cigar.queryLength();
    if (tc == 0 && qc == 0) return out;  // defensive: no progress
    out.cigar.append(wr.cigar);
    ti += tc;
    qi += qc;
  }

  out.ok = true;
  out.edit_distance = static_cast<int>(out.cigar.editDistance());
  out.score = -out.edit_distance;
  return out;
}

/// Convenience overload with driver-local buffers (tests, one-shot use).
template <class Solver, class Counter = util::NullMemCounter>
common::AlignmentResult alignWindowed(Solver& solver, std::string_view target,
                                      std::string_view query,
                                      const WindowConfig& cfg,
                                      Counter counter = Counter{}) {
  WindowBuffers bufs;
  return alignWindowed(solver, target, query, cfg, bufs, counter);
}

/// Windowed edit distance with an exact result cap. Mirrors
/// alignWindowed() window for window — the per-window solves and their
/// tracebacks are identical (the windowing heuristic needs each window's
/// committed operations to advance its cursors), only the output cigar is
/// never accumulated. `cap` makes candidate scoring cheap: edits only
/// accumulate, so the march aborts as soon as the committed total
/// provably exceeds the cap. Returns the distance alignWindowed()'s
/// result would report when it is <= cap (or cap < 0), else -1; also -1
/// whenever alignWindowed() would fail (ok == false).
template <class Solver, class Counter = util::NullMemCounter>
int distanceWindowed(Solver& solver, std::string_view target,
                     std::string_view query, const WindowConfig& cfg,
                     int cap, WindowBuffers& bufs,
                     Counter counter = Counter{}) {
  cfg.validate();
  const std::size_t W = static_cast<std::size_t>(cfg.window);
  std::size_t ti = 0;
  std::size_t qi = 0;
  std::uint64_t acc = 0;  // committed edits so far; only ever grows
  const std::uint64_t budget =
      cap < 0 ? ~0ULL : static_cast<std::uint64_t>(cap);

  std::string& t_rev = bufs.t_rev;
  std::string& q_rev = bufs.q_rev;
  genasm::WindowResult& wr = bufs.wr;

  genasm::WindowSpec mid_spec;
  mid_spec.anchor = genasm::Anchor::StartOnly;
  mid_spec.max_edits = cfg.max_edits;
  mid_spec.tb_op_limit = cfg.window - cfg.overlap;
  genasm::WindowSpec final_spec;
  final_spec.anchor = genasm::Anchor::StartOnly;
  final_spec.max_edits = cfg.max_edits;

  while (true) {
    const std::size_t rem_t = target.size() - ti;
    const std::size_t rem_q = query.size() - qi;
    if (rem_q == 0) {
      acc += rem_t;  // trailing deletions
      break;
    }
    if (rem_t == 0) {
      acc += rem_q;  // trailing insertions
      break;
    }

    if (rem_q <= W) {
      const std::size_t tw_len =
          std::min(rem_t, rem_q + static_cast<std::size_t>(
                                      cfg.textWindow() - cfg.window));
      common::reverseInto(t_rev, target.substr(ti, tw_len));
      common::reverseInto(q_rev, query.substr(qi, rem_q));
      solver.solve(t_rev, q_rev, final_spec, wr, counter);
      if (!wr.ok) return -1;
      acc += wr.cigar.editDistance();
      const std::uint64_t consumed = wr.cigar.targetLength();
      if (consumed < rem_t) acc += rem_t - consumed;
      break;
    }

    const std::size_t tw_len =
        std::min(rem_t, static_cast<std::size_t>(cfg.textWindow()));
    common::reverseInto(t_rev, target.substr(ti, tw_len));
    common::reverseInto(q_rev, query.substr(qi, W));
    solver.solve(t_rev, q_rev, mid_spec, wr, counter);
    if (!wr.ok) return -1;
    const std::uint64_t tc = wr.cigar.targetLength();
    const std::uint64_t qc = wr.cigar.queryLength();
    if (tc == 0 && qc == 0) return -1;  // defensive: no progress
    acc += wr.cigar.editDistance();
    if (acc > budget) return -1;  // total >= acc, so the cap is blown
    ti += tc;
    qi += qc;
  }
  if (acc > budget) return -1;
  return static_cast<int>(acc);
}

/// One capped windowed-distance problem for the batched march (original
/// orientation, same semantics as distanceWindowed's arguments).
struct BatchedDistanceRequest {
  std::string_view target;
  std::string_view query;
  int cap = -1;  ///< exact result cap; -1 = uncapped
};

/// One windowed-alignment problem for the batched march (original
/// orientation, same semantics as alignWindowed's arguments).
struct BatchedAlignRequest {
  std::string_view target;
  std::string_view query;
};

/// Reusable arenas for the batched window marches. Owned by the caller
/// (the engine's aligners keep one per worker); a steady-state march
/// over stable batch sizes grows nothing — allocs() counts growth
/// events, mirroring SimdBatchSolver::scratchAllocs(), and the bench
/// asserts both stay flat at steady state.
struct WindowedBatchScratch {
  /// distanceWindowed()/alignWindowed()'s loop locals, one per request.
  struct March {
    std::size_t ti = 0;
    std::size_t qi = 0;
    std::uint64_t acc = 0;
    std::uint64_t budget = ~0ULL;
    bool done = false;
    bool is_final = false;  ///< current window is the final window
  };

  std::vector<March> st;
  std::vector<simd::WindowProblem> probs;
  std::vector<simd::WindowOutcome> outs;
  std::vector<genasm::WindowResult> wrs;  ///< cigar capacity persists
  std::vector<std::size_t> lane_req;

  /// Arena growth events since construction.
  [[nodiscard]] std::uint64_t allocs() const noexcept { return grow_events_; }

  /// Grow-only resize with alloc-event accounting (elements beyond a
  /// smaller later batch keep stale state; the marches reset what they
  /// index).
  template <class T>
  void ensure(std::vector<T>& buf, std::size_t n) {
    if (buf.capacity() < n) ++grow_events_;
    if (buf.size() < n) buf.resize(n);
  }

 private:
  std::uint64_t grow_events_ = 0;
};

/// Batched counterpart of distanceWindowed(): marches every request's
/// window chain concurrently, packing the current windows of all live
/// requests into SIMD lanes (the paper's inter-window parallelism —
/// windows of *different* problems run in lock-step lanes; each
/// problem's own windows stay sequential, as the stitching requires).
/// results[i] equals distanceWindowed(solver, target, query, cfg, cap)
/// for both GenASM window solvers: per-window solves are bit-identical
/// (see SimdBatchSolver) and the march logic is the same, so capped
/// kills and no-progress aborts fire at exactly the same windows.
void distanceWindowedBatch(simd::SimdBatchSolver& solver,
                           const WindowConfig& cfg,
                           const BatchedDistanceRequest* requests,
                           std::size_t count, int* results,
                           WindowedBatchScratch& scratch);

/// Convenience overload with march-local scratch (tests, one-shot use).
void distanceWindowedBatch(simd::SimdBatchSolver& solver,
                           const WindowConfig& cfg,
                           const BatchedDistanceRequest* requests,
                           std::size_t count, int* results);

/// Batched counterpart of alignWindowed(): the same lock-step march as
/// distanceWindowedBatch, but each lane's committed window cigars are
/// accumulated, so results[i] — ok, cigar, edit_distance, score — is
/// bit-identical to alignWindowed(solver, target, query, cfg) with the
/// matching scalar solver. Results are reset in place (cigar capacity
/// preserved), so reusing a results arena allocates nothing at steady
/// state.
void alignWindowedBatch(simd::SimdBatchSolver& solver,
                        const WindowConfig& cfg,
                        const BatchedAlignRequest* requests,
                        std::size_t count, common::AlignmentResult* results,
                        WindowedBatchScratch& scratch);

/// Convenience overload with march-local scratch (tests, one-shot use).
void alignWindowedBatch(simd::SimdBatchSolver& solver,
                        const WindowConfig& cfg,
                        const BatchedAlignRequest* requests,
                        std::size_t count, common::AlignmentResult* results);

/// Windowed alignment with the unimproved baseline solver.
[[nodiscard]] common::AlignmentResult alignWindowedBaseline(
    std::string_view target, std::string_view query,
    const WindowConfig& cfg = {}, util::MemStats* stats = nullptr);

/// Windowed alignment with the improved solver (the paper's system).
[[nodiscard]] common::AlignmentResult alignWindowedImproved(
    std::string_view target, std::string_view query,
    const WindowConfig& cfg = {}, const ImprovedOptions& opts = {},
    util::MemStats* stats = nullptr);

/// Capped windowed distance with the baseline solver.
[[nodiscard]] int distanceWindowedBaseline(std::string_view target,
                                           std::string_view query,
                                           const WindowConfig& cfg = {},
                                           int cap = -1,
                                           util::MemStats* stats = nullptr);

/// Capped windowed distance with the improved solver.
[[nodiscard]] int distanceWindowedImproved(std::string_view target,
                                           std::string_view query,
                                           const WindowConfig& cfg = {},
                                           const ImprovedOptions& opts = {},
                                           int cap = -1,
                                           util::MemStats* stats = nullptr);

}  // namespace gx::core
