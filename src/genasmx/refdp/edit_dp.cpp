#include "genasmx/refdp/edit_dp.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace gx::refdp {

namespace {
constexpr int kInf = std::numeric_limits<int>::max() / 4;
}  // namespace

int editDistance(std::string_view target, std::string_view query) {
  const std::size_t n = target.size();
  const std::size_t m = query.size();
  // Roll over the query dimension.
  std::vector<int> row(m + 1);
  for (std::size_t j = 0; j <= m; ++j) row[j] = static_cast<int>(j);
  for (std::size_t i = 1; i <= n; ++i) {
    int diag = row[0];
    row[0] = static_cast<int>(i);
    for (std::size_t j = 1; j <= m; ++j) {
      const int sub = diag + (target[i - 1] == query[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({sub, row[j] + 1, row[j - 1] + 1});
    }
  }
  return row[m];
}

int editDistanceBanded(std::string_view target, std::string_view query, int k) {
  const int n = static_cast<int>(target.size());
  const int m = static_cast<int>(query.size());
  if (std::abs(n - m) > k) return -1;
  // row[j] for j within [i-k, i+k] band (query index j, target index i).
  std::vector<int> prev(m + 1, kInf), cur(m + 1, kInf);
  for (int j = 0; j <= std::min(m, k); ++j) prev[j] = j;
  for (int i = 1; i <= n; ++i) {
    const int jlo = std::max(0, i - k);
    const int jhi = std::min(m, i + k);
    std::fill(cur.begin(), cur.end(), kInf);
    if (jlo == 0) cur[0] = i;
    for (int j = std::max(1, jlo); j <= jhi; ++j) {
      const int sub =
          prev[j - 1] + (target[i - 1] == query[j - 1] ? 0 : 1);
      const int del = prev[j] == kInf ? kInf : prev[j] + 1;
      const int ins = cur[j - 1] == kInf ? kInf : cur[j - 1] + 1;
      cur[j] = std::min({sub, del, ins});
    }
    std::swap(prev, cur);
  }
  return prev[m] <= k ? prev[m] : -1;
}

common::AlignmentResult align(std::string_view target, std::string_view query) {
  const std::size_t n = target.size();
  const std::size_t m = query.size();
  common::AlignmentResult res;

  // Full matrix of distances; fine for oracle-scale inputs.
  std::vector<int> dp((n + 1) * (m + 1));
  auto at = [&](std::size_t i, std::size_t j) -> int& {
    return dp[i * (m + 1) + j];
  };
  for (std::size_t j = 0; j <= m; ++j) at(0, j) = static_cast<int>(j);
  for (std::size_t i = 1; i <= n; ++i) {
    at(i, 0) = static_cast<int>(i);
    for (std::size_t j = 1; j <= m; ++j) {
      const int sub =
          at(i - 1, j - 1) + (target[i - 1] == query[j - 1] ? 0 : 1);
      at(i, j) = std::min({sub, at(i - 1, j) + 1, at(i, j - 1) + 1});
    }
  }
  res.edit_distance = at(n, m);

  // Traceback from (n, m); ops collected back-to-front.
  std::vector<common::CigarUnit> rev;
  auto pushRev = [&rev](common::EditOp op) {
    if (!rev.empty() && rev.back().op == op) {
      ++rev.back().len;
    } else {
      rev.push_back({op, 1});
    }
  };
  std::size_t i = n, j = m;
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0) {
      const bool eq = target[i - 1] == query[j - 1];
      if (at(i, j) == at(i - 1, j - 1) + (eq ? 0 : 1)) {
        pushRev(eq ? common::EditOp::Match : common::EditOp::Mismatch);
        --i;
        --j;
        continue;
      }
    }
    if (i > 0 && at(i, j) == at(i - 1, j) + 1) {
      pushRev(common::EditOp::Deletion);
      --i;
      continue;
    }
    pushRev(common::EditOp::Insertion);
    --j;
  }
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
    res.cigar.push(it->op, it->len);
  }
  res.ok = true;
  res.score = -res.edit_distance;
  return res;
}

}  // namespace gx::refdp
