#pragma once
// Reference Gotoh affine-gap global aligner (oracle for the KSW2-class
// aligner). Score maximization: match adds +A, mismatch subtracts B,
// a gap of length l subtracts q + l*e (KSW2 / minimap2 convention).

#include <string_view>

#include "genasmx/common/cigar.hpp"

namespace gx::refdp {

struct AffineParams {
  int match = 2;       ///< A: added per matching column
  int mismatch = 4;    ///< B: subtracted per mismatching column
  int gap_open = 4;    ///< q: subtracted once per gap
  int gap_extend = 2;  ///< e: subtracted per gap column

  /// Parameters under which -score equals unit edit distance; used by
  /// property tests to tie the affine aligners to the edit-distance ones.
  [[nodiscard]] static AffineParams editDistanceEquivalent() noexcept {
    return AffineParams{0, 1, 0, 1};
  }
};

/// Global affine score only, O(n*m) time, O(m) space.
[[nodiscard]] int affineScore(std::string_view target, std::string_view query,
                              const AffineParams& p);

/// Global affine alignment with traceback (full matrices).
[[nodiscard]] common::AlignmentResult alignAffine(std::string_view target,
                                                  std::string_view query,
                                                  const AffineParams& p);

}  // namespace gx::refdp
