#include "genasmx/refdp/affine_dp.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace gx::refdp {

namespace {
constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

struct Cells {
  int h;  // best score ending in match/mismatch or anything (the H matrix)
  int e;  // best score with gap in query open (deletion run, target consumed)
  int f;  // best score with gap in target open (insertion run)
};
}  // namespace

int affineScore(std::string_view target, std::string_view query,
                const AffineParams& p) {
  const std::size_t n = target.size();
  const std::size_t m = query.size();
  std::vector<int> H(m + 1), F(m + 1);
  H[0] = 0;
  for (std::size_t j = 1; j <= m; ++j) {
    H[j] = -(p.gap_open + p.gap_extend * static_cast<int>(j));
    F[j] = kNegInf;
  }
  for (std::size_t i = 1; i <= n; ++i) {
    int diag = H[0];
    H[0] = -(p.gap_open + p.gap_extend * static_cast<int>(i));
    int e = kNegInf;  // E for current row, column j (gap in query)
    // E needs the previous row's H: track via rolling arrays.
    // We store E per column in F? No: E extends vertically (target gap runs
    // along i), F horizontally (query gap runs along j).
    for (std::size_t j = 1; j <= m; ++j) {
      // F[j]: vertical gap (deletion in query == target consumed) carried
      // across rows at column j.
      F[j] = std::max(F[j] - p.gap_extend, H[j] - p.gap_open - p.gap_extend);
      // e: horizontal gap within the row.
      e = std::max(e - p.gap_extend, H[j - 1] - p.gap_open - p.gap_extend);
      const int match_score =
          diag + (target[i - 1] == query[j - 1] ? p.match : -p.mismatch);
      diag = H[j];
      H[j] = std::max({match_score, e, F[j]});
    }
  }
  return H[m];
}

common::AlignmentResult alignAffine(std::string_view target,
                                    std::string_view query,
                                    const AffineParams& p) {
  const std::size_t n = target.size();
  const std::size_t m = query.size();
  common::AlignmentResult res;

  std::vector<Cells> dp((n + 1) * (m + 1));
  auto at = [&](std::size_t i, std::size_t j) -> Cells& {
    return dp[i * (m + 1) + j];
  };
  at(0, 0) = {0, kNegInf, kNegInf};
  for (std::size_t j = 1; j <= m; ++j) {
    const int g = -(p.gap_open + p.gap_extend * static_cast<int>(j));
    at(0, j) = {g, kNegInf, g};
  }
  for (std::size_t i = 1; i <= n; ++i) {
    const int g = -(p.gap_open + p.gap_extend * static_cast<int>(i));
    at(i, 0) = {g, g, kNegInf};
    for (std::size_t j = 1; j <= m; ++j) {
      Cells c;
      c.e = std::max(at(i - 1, j).e - p.gap_extend,
                     at(i - 1, j).h - p.gap_open - p.gap_extend);
      c.f = std::max(at(i, j - 1).f - p.gap_extend,
                     at(i, j - 1).h - p.gap_open - p.gap_extend);
      const int diag =
          at(i - 1, j - 1).h +
          (target[i - 1] == query[j - 1] ? p.match : -p.mismatch);
      c.h = std::max({diag, c.e, c.f});
      at(i, j) = c;
    }
  }
  res.score = at(n, m).h;

  // Traceback over the three-layer automaton.
  enum Layer { LH, LE, LF };
  Layer layer = LH;
  std::size_t i = n, j = m;
  std::vector<common::CigarUnit> rev;
  auto pushRev = [&rev](common::EditOp op) {
    if (!rev.empty() && rev.back().op == op) {
      ++rev.back().len;
    } else {
      rev.push_back({op, 1});
    }
  };
  while (i > 0 || j > 0) {
    const Cells& c = at(i, j);
    if (layer == LH) {
      if (i > 0 && j > 0) {
        const bool eq = target[i - 1] == query[j - 1];
        const int diag = at(i - 1, j - 1).h + (eq ? p.match : -p.mismatch);
        if (c.h == diag) {
          pushRev(eq ? common::EditOp::Match : common::EditOp::Mismatch);
          --i;
          --j;
          continue;
        }
      }
      if (i > 0 && c.h == c.e) {
        layer = LE;
        continue;
      }
      layer = LF;
      continue;
    }
    if (layer == LE) {
      // Vertical gap: consumes target => deletion in query. Prefer closing
      // the gap when opening and extending tie (keeps runs canonical
      // without affecting the score).
      pushRev(common::EditOp::Deletion);
      const Cells& up = at(i - 1, j);
      layer = (c.e == up.h - p.gap_open - p.gap_extend) ? LH : LE;
      --i;
      continue;
    }
    // layer == LF: horizontal gap => insertion in query.
    pushRev(common::EditOp::Insertion);
    const Cells& left = at(i, j - 1);
    layer = (c.f == left.h - p.gap_open - p.gap_extend) ? LH : LF;
    --j;
  }
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
    res.cigar.push(it->op, it->len);
  }
  res.ok = true;
  res.edit_distance = static_cast<int>(res.cigar.editDistance());
  return res;
}

}  // namespace gx::refdp
