#pragma once
// Reference (oracle) edit-distance implementations: textbook O(n*m)
// Needleman-Wunsch with unit costs, with and without traceback.
// Every bit-parallel aligner in this repository is property-tested
// against these.

#include <string_view>

#include "genasmx/common/cigar.hpp"

namespace gx::refdp {

/// Unit-cost global edit distance, O(n*m) time, O(min(n,m)) space.
[[nodiscard]] int editDistance(std::string_view target, std::string_view query);

/// Unit-cost global edit distance restricted to |i-j| bands of half-width
/// k (Ukkonen). Returns -1 if the distance exceeds k.
[[nodiscard]] int editDistanceBanded(std::string_view target,
                                     std::string_view query, int k);

/// Global alignment with traceback. Deterministic tie-breaking:
/// match/mismatch preferred over deletion over insertion.
[[nodiscard]] common::AlignmentResult align(std::string_view target,
                                            std::string_view query);

}  // namespace gx::refdp
