#pragma once
// Analytical (roofline + dependency-chain) timing model for the GPU
// simulator. The model is deliberately simple and fully documented: time
// is the maximum of four independently-derived bounds. Absolute numbers
// carry the usual analytical-model uncertainty; the *ratios* between
// kernels — which is what the paper's E2/E5 experiments compare — are
// driven by counted work and the shared-vs-DRAM capacity cliff.

#include "genasmx/gpusim/device.hpp"

namespace gx::gpusim {

struct TimeBreakdown {
  double compute_s = 0;  ///< total ops / (SMs x issue rate x clock)
  double dram_s = 0;     ///< global traffic / DRAM bandwidth
  double shared_s = 0;   ///< shared traffic / aggregate shared bandwidth
  double latency_s = 0;  ///< dependency chains / concurrent blocks
  double total_s = 0;    ///< max of the four bounds
  int blocks_per_sm = 0;
  double occupancy = 0;  ///< resident threads / max threads per SM
};

/// Occupancy: how many blocks one SM can host given thread and shared-
/// memory budgets (CUDA's standard limiter set).
[[nodiscard]] int blocksPerSm(const DeviceSpec& spec, int block_threads,
                              std::size_t shared_per_block) noexcept;

[[nodiscard]] TimeBreakdown modelTime(const DeviceSpec& spec,
                                      const LaunchStats& stats) noexcept;

}  // namespace gx::gpusim
