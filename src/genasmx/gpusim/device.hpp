#pragma once
// SIMT GPU execution simulator — the substitute for the paper's NVIDIA
// A6000 (no CUDA device is available in this environment; see DESIGN.md,
// "Hardware/data substitutions").
//
// Kernels are written as *block programs*: a callable invoked once per
// thread block that (a) performs the real computation functionally — the
// simulator's results are bit-exact with the CPU implementation — and
// (b) declares its memory traffic and work shape through the
// BlockContext. Shared-memory capacity is enforced: a block program asks
// for its DP working set in shared memory and is refused when it does
// not fit, exactly the capacity cliff the paper's improvements target.
// An analytical roofline model (perf_model.hpp) turns the collected
// counters into time.

#include <cstdint>
#include <functional>
#include <string>

namespace gx::gpusim {

struct DeviceSpec {
  std::string name = "sim-A6000";
  int num_sms = 84;
  int warp_size = 32;
  int max_threads_per_sm = 1536;
  int max_blocks_per_sm = 16;
  /// CUDA's opt-in per-block shared memory limit on GA102 (A6000).
  std::size_t shared_mem_per_block = 100 * 1024;
  std::size_t shared_mem_per_sm = 128 * 1024;
  double core_clock_ghz = 1.41;
  double dram_bandwidth_gbps = 768.0;  ///< GDDR6 peak
  /// Modeled aggregate shared-memory bandwidth per SM (bytes/cycle).
  double shared_bytes_per_cycle_per_sm = 128.0;
  /// Effective scalar-op issue rate per SM per cycle. Set to one warp's
  /// width: dependency-chained bit-vector code sustains roughly one warp
  /// instruction per cycle per SM (see EXPERIMENTS.md, model notes).
  double issue_ops_per_cycle_per_sm = 32.0;

  [[nodiscard]] static DeviceSpec a6000() { return DeviceSpec{}; }
};

/// Per-block instrumentation facade handed to block programs.
class BlockContext {
 public:
  BlockContext(int block_id, int threads, std::size_t shared_capacity)
      : block_id_(block_id), threads_(threads), shared_capacity_(shared_capacity) {}

  [[nodiscard]] int blockId() const noexcept { return block_id_; }
  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Reserve shared memory; returns false (and records the refusal) when
  /// the block's shared arena would exceed the device's per-block limit.
  [[nodiscard]] bool sharedAlloc(std::size_t bytes) noexcept {
    if (shared_used_ + bytes > shared_capacity_) {
      ++failed_shared_allocs_;
      return false;
    }
    shared_used_ += bytes;
    if (shared_used_ > shared_high_) shared_high_ = shared_used_;
    return true;
  }
  void sharedFree(std::size_t bytes) noexcept {
    shared_used_ = bytes > shared_used_ ? 0 : shared_used_ - bytes;
  }
  [[nodiscard]] std::size_t sharedCapacity() const noexcept {
    return shared_capacity_;
  }
  [[nodiscard]] std::size_t sharedHighWater() const noexcept {
    return shared_high_;
  }

  void sharedLoad(std::uint64_t bytes) noexcept { shared_bytes_ += bytes; }
  void sharedStore(std::uint64_t bytes) noexcept { shared_bytes_ += bytes; }
  void globalLoad(std::uint64_t bytes) noexcept { global_bytes_ += bytes; }
  void globalStore(std::uint64_t bytes) noexcept { global_bytes_ += bytes; }

  /// Declare computational work: `ops` total scalar operations across the
  /// block's threads and `critical_cycles` of unavoidable dependency
  /// chain (wavefront depth x per-step cost).
  void work(double ops, double critical_cycles) noexcept {
    ops_ += ops;
    critical_cycles_ += critical_cycles;
  }

  [[nodiscard]] double ops() const noexcept { return ops_; }
  [[nodiscard]] double criticalCycles() const noexcept {
    return critical_cycles_;
  }
  [[nodiscard]] std::uint64_t globalBytes() const noexcept {
    return global_bytes_;
  }
  [[nodiscard]] std::uint64_t sharedBytes() const noexcept {
    return shared_bytes_;
  }
  [[nodiscard]] std::uint64_t failedSharedAllocs() const noexcept {
    return failed_shared_allocs_;
  }

 private:
  int block_id_;
  int threads_;
  std::size_t shared_capacity_;
  std::size_t shared_used_ = 0;
  std::size_t shared_high_ = 0;
  double ops_ = 0;
  double critical_cycles_ = 0;
  std::uint64_t global_bytes_ = 0;
  std::uint64_t shared_bytes_ = 0;
  std::uint64_t failed_shared_allocs_ = 0;
};

/// Aggregated counters of one kernel launch.
struct LaunchStats {
  int grid = 0;
  int block_threads = 0;
  std::size_t shared_per_block = 0;  ///< max shared high-water over blocks
  double total_ops = 0;
  double critical_cycles_total = 0;  ///< summed per-block dependency chains
  std::uint64_t global_bytes = 0;
  std::uint64_t shared_bytes = 0;
  std::uint64_t failed_shared_allocs = 0;
};

class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec::a6000()) : spec_(spec) {}

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }

  /// Execute `block_program` for every block id in [0, grid), collecting
  /// counters. Execution is functional and deterministic.
  LaunchStats launch(int grid, int block_threads,
                     const std::function<void(BlockContext&)>& block_program);

 private:
  DeviceSpec spec_;
};

}  // namespace gx::gpusim
