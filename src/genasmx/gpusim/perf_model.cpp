#include "genasmx/gpusim/perf_model.hpp"

#include <algorithm>

namespace gx::gpusim {

int blocksPerSm(const DeviceSpec& spec, int block_threads,
                std::size_t shared_per_block) noexcept {
  int blocks = spec.max_blocks_per_sm;
  blocks = std::min(blocks, spec.max_threads_per_sm / std::max(1, block_threads));
  if (shared_per_block > 0) {
    blocks = std::min(
        blocks, static_cast<int>(spec.shared_mem_per_sm / shared_per_block));
  }
  return std::max(blocks, 1);
}

TimeBreakdown modelTime(const DeviceSpec& spec,
                        const LaunchStats& stats) noexcept {
  TimeBreakdown t;
  t.blocks_per_sm =
      blocksPerSm(spec, stats.block_threads, stats.shared_per_block);
  t.occupancy =
      std::min(1.0, static_cast<double>(t.blocks_per_sm) *
                        stats.block_threads / spec.max_threads_per_sm);
  const double clock_hz = spec.core_clock_ghz * 1e9;

  t.compute_s = stats.total_ops /
                (spec.num_sms * spec.issue_ops_per_cycle_per_sm * clock_hz);
  t.dram_s = static_cast<double>(stats.global_bytes) /
             (spec.dram_bandwidth_gbps * 1e9);
  t.shared_s = static_cast<double>(stats.shared_bytes) /
               (spec.num_sms * spec.shared_bytes_per_cycle_per_sm * clock_hz);
  // Dependency chains: with C blocks resident device-wide, the summed
  // critical path drains at C chains at a time (1 step/cycle each).
  const double concurrency =
      static_cast<double>(t.blocks_per_sm) * spec.num_sms;
  t.latency_s = stats.critical_cycles_total / (concurrency * clock_hz);

  t.total_s = std::max({t.compute_s, t.dram_s, t.shared_s, t.latency_s});
  return t;
}

}  // namespace gx::gpusim
