#include "genasmx/gpusim/device.hpp"

#include <algorithm>
#include <stdexcept>

namespace gx::gpusim {

LaunchStats Device::launch(
    int grid, int block_threads,
    const std::function<void(BlockContext&)>& block_program) {
  if (grid < 0) throw std::invalid_argument("gpusim: negative grid");
  if (block_threads < 1 || block_threads > 1024) {
    throw std::invalid_argument("gpusim: block size must be in [1, 1024]");
  }
  LaunchStats stats;
  stats.grid = grid;
  stats.block_threads = block_threads;
  for (int b = 0; b < grid; ++b) {
    BlockContext ctx(b, block_threads, spec_.shared_mem_per_block);
    block_program(ctx);
    stats.total_ops += ctx.ops();
    stats.critical_cycles_total += ctx.criticalCycles();
    stats.global_bytes += ctx.globalBytes();
    stats.shared_bytes += ctx.sharedBytes();
    stats.failed_shared_allocs += ctx.failedSharedAllocs();
    stats.shared_per_block = std::max(stats.shared_per_block,
                                      ctx.sharedHighWater());
  }
  return stats;
}

}  // namespace gx::gpusim
