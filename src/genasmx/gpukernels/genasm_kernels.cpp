#include "genasmx/gpukernels/genasm_kernels.hpp"

#include <stdexcept>

namespace gx::gpukernels {
namespace {

/// Shared kernel skeleton: functional alignment + instrumented memory
/// attribution + work declaration. `AlignFn` runs one pair and fills a
/// per-block MemStats.
template <class AlignFn>
GpuBatchOutput runBatch(gpusim::Device& device,
                        const std::vector<mapper::AlignmentPair>& pairs,
                        int block_threads, const KernelCostModel& cost,
                        AlignFn&& align_pair) {
  GpuBatchOutput out;
  out.results.resize(pairs.size());

  auto block_program = [&](gpusim::BlockContext& ctx) {
    const auto& pair = pairs[static_cast<std::size_t>(ctx.blockId())];
    util::MemStats local;
    common::AlignmentResult res = align_pair(pair, local);

    // Sequences stream in from DRAM, 2-bit packed.
    ctx.globalLoad((pair.target.size() + pair.query.size() + 3) / 4);

    // DP working set: request shared memory; spill to DRAM if refused.
    const std::size_t want = local.bytes_peak;
    const bool in_shared = ctx.sharedAlloc(want);
    const std::uint64_t dp_bytes = (local.dp_loads + local.dp_stores) * 8;
    if (in_shared) {
      ctx.sharedLoad(local.dp_loads * 8);
      ctx.sharedStore(local.dp_stores * 8);
    } else {
      ctx.globalLoad(local.dp_loads * 8);
      ctx.globalStore(local.dp_stores * 8);
      ++out.spilled_blocks;
    }
    (void)dp_bytes;

    // Result CIGAR written back (run-length units, 4B each).
    const std::uint64_t tb_ops = res.ok ? res.cigar.opCount() : 0;
    ctx.globalStore(res.ok ? res.cigar.size() * 4 + 16 : 16);

    ctx.work(cost.ops_per_entry * static_cast<double>(local.dp_entries) +
                 cost.ops_per_tb_op * static_cast<double>(tb_ops),
             cost.cycles_per_wavefront_step *
                     static_cast<double>(local.wavefront_steps) +
                 cost.cycles_per_tb_op * static_cast<double>(tb_ops) +
                 cost.window_overhead_cycles *
                     static_cast<double>(local.problems));
    if (in_shared) ctx.sharedFree(want);

    out.mem += local;
    out.results[static_cast<std::size_t>(ctx.blockId())] = std::move(res);
  };

  out.launch = device.launch(static_cast<int>(pairs.size()), block_threads,
                             block_program);
  out.time = gpusim::modelTime(device.spec(), out.launch);
  out.alignments_per_second =
      out.time.total_s > 0
          ? static_cast<double>(pairs.size()) / out.time.total_s
          : 0.0;
  return out;
}

}  // namespace

GpuBatchOutput alignBatchImproved(gpusim::Device& device,
                                  const std::vector<mapper::AlignmentPair>& pairs,
                                  const core::WindowConfig& wcfg,
                                  const core::ImprovedOptions& opts,
                                  int block_threads,
                                  const KernelCostModel& cost) {
  wcfg.validate();
  if (bitvector::wordsNeeded(wcfg.window) > 1) {
    throw std::invalid_argument(
        "gpukernels: GPU kernels are tuned for windows <= 64 (one machine "
        "word per bitvector), as in the paper");
  }
  core::ImprovedWindowSolver<1> solver(opts);
  return runBatch(device, pairs, block_threads, cost,
                  [&](const mapper::AlignmentPair& pair,
                      util::MemStats& stats) {
                    return core::alignWindowed(
                        solver, pair.target, pair.query, wcfg,
                        util::CountingMemCounter(stats));
                  });
}

GpuBatchOutput alignBatchBaseline(gpusim::Device& device,
                                  const std::vector<mapper::AlignmentPair>& pairs,
                                  const core::WindowConfig& wcfg,
                                  int block_threads,
                                  const KernelCostModel& cost) {
  wcfg.validate();
  if (bitvector::wordsNeeded(wcfg.window) > 1) {
    throw std::invalid_argument(
        "gpukernels: GPU kernels are tuned for windows <= 64 (one machine "
        "word per bitvector), as in the paper");
  }
  genasm::BaselineWindowSolver<1> solver;
  return runBatch(device, pairs, block_threads, cost,
                  [&](const mapper::AlignmentPair& pair,
                      util::MemStats& stats) {
                    return core::alignWindowed(
                        solver, pair.target, pair.query, wcfg,
                        util::CountingMemCounter(stats));
                  });
}

}  // namespace gx::gpukernels
