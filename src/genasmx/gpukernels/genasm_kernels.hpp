#pragma once
// GenASM kernels for the simulated GPU: one alignment pair per thread
// block (the decomposition the paper's GPU implementation uses — each
// block owns one (read, candidate) pair and its windows stream through
// the block's working set).
//
// The improved kernel asks the device for its per-window DP working set
// in *shared memory*; thanks to the paper's three improvements it fits
// (a few KiB), so its DP traffic never leaves the SM. The baseline
// kernel asks for the unimproved working set (hundreds of KiB), is
// refused by the capacity check, and spills every DP access to DRAM —
// mechanically reproducing the bottleneck the paper identifies.

#include <vector>

#include "genasmx/common/cigar.hpp"
#include "genasmx/core/windowed.hpp"
#include "genasmx/gpusim/device.hpp"
#include "genasmx/gpusim/perf_model.hpp"
#include "genasmx/mapper/mapper.hpp"
#include "genasmx/util/mem_stats.hpp"

namespace gx::gpukernels {

/// Documented cost constants turning counted DP work into GPU cycles;
/// see EXPERIMENTS.md ("GPU model notes") for their derivation.
struct KernelCostModel {
  double ops_per_entry = 64;            ///< scalar ops per DP entry
  double cycles_per_wavefront_step = 24;  ///< dependency-chain step cost
  double cycles_per_tb_op = 24;         ///< serial traceback step cost
  double ops_per_tb_op = 24;
  double window_overhead_cycles = 200;  ///< per-window setup/sync
};

struct GpuBatchOutput {
  std::vector<common::AlignmentResult> results;  ///< bit-exact with CPU
  gpusim::LaunchStats launch;
  gpusim::TimeBreakdown time;
  util::MemStats mem;                  ///< aggregated DP instrumentation
  std::uint64_t spilled_blocks = 0;    ///< blocks whose table went to DRAM
  double alignments_per_second = 0;    ///< modeled throughput
};

/// Improved-GenASM kernel (the paper's GPU implementation).
[[nodiscard]] GpuBatchOutput alignBatchImproved(
    gpusim::Device& device, const std::vector<mapper::AlignmentPair>& pairs,
    const core::WindowConfig& wcfg = {}, const core::ImprovedOptions& opts = {},
    int block_threads = 64, const KernelCostModel& cost = {});

/// Unimproved-GenASM kernel (the paper's "GPU implementation of GenASM
/// without our improvements" comparator).
[[nodiscard]] GpuBatchOutput alignBatchBaseline(
    gpusim::Device& device, const std::vector<mapper::AlignmentPair>& pairs,
    const core::WindowConfig& wcfg = {}, int block_threads = 64,
    const KernelCostModel& cost = {});

}  // namespace gx::gpukernels
