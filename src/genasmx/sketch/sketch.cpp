#include "genasmx/sketch/sketch.hpp"

#include <algorithm>
#include <stdexcept>

namespace gx::sketch {

namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

void validate(const SketchParams& params) {
  if (params.slots < 8 || params.slots > 4096 ||
      (params.slots & (params.slots - 1)) != 0) {
    throw std::invalid_argument(
        "sketch: slots must be a power of two in [8, 4096]");
  }
}

template <typename T>
void reserveCounted(std::vector<T>& v, std::size_t n,
                    std::uint64_t& grow_events) {
  if (v.capacity() < n) {
    ++grow_events;
    v.reserve(n);
  }
}

}  // namespace

void sketchKeys(const std::uint64_t* keys, std::size_t count,
                const SketchParams& params, SketchScratch& scratch,
                SequenceSketch& out) {
  validate(params);
  out.reset(params.slots);
  if (count == 0) return;

  // Sort keys so equal keys form runs; the j-th occurrence of a key is
  // hashed as element (key, j), which is what makes the sketch weighted.
  reserveCounted(scratch.keys_, count, scratch.grow_events_);
  scratch.keys_.assign(keys, keys + count);
  std::sort(scratch.keys_.begin(), scratch.keys_.end());

  const std::uint64_t slot_mask = static_cast<std::uint64_t>(params.slots) - 1;
  std::uint64_t* const sig = out.sig_.data();
  std::size_t run = 0;
  std::uint64_t base = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (run == 0 || scratch.keys_[i] != scratch.keys_[i - 1]) {
      base = mapper::hash64(scratch.keys_[i] ^ params.seed);
      run = 0;
    }
    const std::uint64_t h =
        (run == 0) ? base : mapper::hash64(base + kGolden * run);
    ++run;
    const std::size_t slot = static_cast<std::size_t>(h & slot_mask);
    if (h < sig[slot]) sig[slot] = h;
  }
  out.elements_ = count;

  // Densify: every empty slot borrows from the nearest filled slot to
  // its left (circularly), so signatures stay comparable slot-for-slot
  // regardless of which slots the elements happened to land in.
  const std::size_t slots = out.sig_.size();
  std::size_t first = 0;
  while (sig[first] == SequenceSketch::kEmpty) ++first;
  std::uint64_t carry = sig[first];
  for (std::size_t step = 1; step < slots; ++step) {
    const std::size_t i = (first + step) & slot_mask;
    if (sig[i] == SequenceSketch::kEmpty) {
      sig[i] = carry;
    } else {
      carry = sig[i];
    }
  }
}

void sketchMinimizers(const mapper::Minimizer* mins, std::size_t count,
                      const SketchParams& params, SketchScratch& scratch,
                      SequenceSketch& out) {
  // Gather the bare keys, then defer to the key-multiset core. The
  // gather buffer is keys_ itself: sketchKeys re-assigns it from the
  // caller pointer, so hand it a second scratch-free staging area.
  validate(params);
  if (count == 0) {
    out.reset(params.slots);
    return;
  }
  reserveCounted(scratch.key_stage_, count, scratch.grow_events_);
  scratch.key_stage_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    scratch.key_stage_.push_back(mins[i].key);
  }
  sketchKeys(scratch.key_stage_.data(), count, params, scratch, out);
}

void sketchWindow(std::string_view seq, int k, int w,
                  const SketchParams& params, SketchScratch& scratch,
                  SequenceSketch& out) {
  mapper::extractMinimizers(seq, k, w, 0, scratch.mins_, scratch.min_scratch_);
  ++scratch.sequence_scans_;
  sketchMinimizers(scratch.mins_.data(), scratch.mins_.size(), params, scratch,
                   out);
}

double estimateSimilarity(const SequenceSketch& a, const SequenceSketch& b) {
  if (a.empty() || b.empty()) return 0.0;
  if (a.slots() != b.slots()) {
    throw std::invalid_argument("sketch: comparing different slot counts");
  }
  const auto& sa = a.signature();
  const auto& sb = b.signature();
  int equal = 0;
  for (std::size_t i = 0; i < sa.size(); ++i) equal += (sa[i] == sb[i]);
  return static_cast<double>(equal) / static_cast<double>(sa.size());
}

}  // namespace gx::sketch
