#pragma once
// k-mer weighted-minhash sketching for cheap read~window similarity
// estimates (Broder 1997 resemblance; Ioffe 2010 weighted sets; Li 2015
// densified one-permutation hashing; Ondov et al. 2016 "Mash" applies
// the same estimator to genomic k-mer sets).
//
// A sequence is reduced to its canonical (w,k)-minimizer multiset, each
// (key, occurrence-index) element is hashed once, and the hashes are
// scattered into S buckets keeping the minimum per bucket; empty buckets
// borrow circularly from the next filled one ("densification") so two
// sketches are always comparable slot-for-slot. The fraction of equal
// slots is an unbiased estimate of the weighted Jaccard similarity of
// the two minimizer multisets. Occurrence indices make the sketch
// multiplicity-aware: a tandem repeat of 10 copies and one of 2 copies
// share only the first two occurrences of each k-mer, so collapsed-set
// MinHash's blindness to copy number is avoided.
//
// All working state lives in caller-owned SketchScratch / SequenceSketch
// objects so steady-state sketching performs zero heap allocations;
// capacity growth is counted for the zero-alloc tests.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "genasmx/mapper/minimizer.hpp"

namespace gx::sketch {

struct SketchParams {
  /// Signature slots (power of two in [8, 4096]). More slots lowers the
  /// estimator's variance (stddev ~ 1/sqrt(slots)) at linear cost.
  int slots = 128;
  /// Salt folded into every element hash; sketches built with different
  /// seeds are incomparable.
  std::uint64_t seed = 0x5eedf00dULL;
};

/// A densified one-permutation minhash signature. Reusable: reset() only
/// reallocates when the slot count grows.
class SequenceSketch {
 public:
  /// Prepare an empty signature with `slots` slots.
  void reset(int slots) {
    sig_.assign(static_cast<std::size_t>(slots), kEmpty);
    elements_ = 0;
  }

  [[nodiscard]] int slots() const noexcept {
    return static_cast<int>(sig_.size());
  }
  /// Number of (key, occurrence) elements folded in; 0 means "no signal"
  /// (too-short sequence) and compares as similarity 0 to everything.
  [[nodiscard]] std::size_t elements() const noexcept { return elements_; }
  [[nodiscard]] bool empty() const noexcept { return elements_ == 0; }
  [[nodiscard]] const std::vector<std::uint64_t>& signature() const noexcept {
    return sig_;
  }

  static constexpr std::uint64_t kEmpty = ~0ULL;

 private:
  friend void sketchKeys(const std::uint64_t*, std::size_t,
                         const SketchParams&, class SketchScratch&,
                         SequenceSketch&);
  std::vector<std::uint64_t> sig_;
  std::size_t elements_ = 0;
};

/// Flat preallocated working buffers for sketch construction. One per
/// worker thread; never shared concurrently.
class SketchScratch {
 public:
  /// Times any internal buffer grew. Constant once warm.
  [[nodiscard]] std::uint64_t growEvents() const noexcept {
    return grow_events_ + min_scratch_.growEvents();
  }
  /// Full sequence scans performed (one per sketchWindow call). Callers
  /// that reuse pre-extracted minimizers via sketchMinimizers never
  /// increment this — the pipeline asserts reads are scanned only once.
  [[nodiscard]] std::uint64_t sequenceScans() const noexcept {
    return sequence_scans_;
  }

 private:
  friend void sketchKeys(const std::uint64_t*, std::size_t,
                         const SketchParams&, SketchScratch&, SequenceSketch&);
  friend void sketchMinimizers(const mapper::Minimizer*, std::size_t,
                               const SketchParams&, SketchScratch&,
                               SequenceSketch&);
  friend void sketchWindow(std::string_view, int, int, const SketchParams&,
                           SketchScratch&, SequenceSketch&);
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint64_t> key_stage_;
  std::vector<mapper::Minimizer> mins_;
  mapper::MinimizerScratch min_scratch_;
  std::uint64_t grow_events_ = 0;
  std::uint64_t sequence_scans_ = 0;
};

/// Build the weighted-minhash signature of a bare key multiset (order
/// irrelevant). This is the core entry point: callers that already hold
/// minimizer keys — a read's seeding extraction, or a position-range
/// slice of the reference index — sketch without touching sequence.
void sketchKeys(const std::uint64_t* keys, std::size_t count,
                const SketchParams& params, SketchScratch& scratch,
                SequenceSketch& out);

/// Convenience over sketchKeys for a minimizer array (positions/strands
/// are ignored — only key multiplicity matters, so one read sketch
/// serves both strands).
void sketchMinimizers(const mapper::Minimizer* mins, std::size_t count,
                      const SketchParams& params, SketchScratch& scratch,
                      SequenceSketch& out);

/// Extract the (w,k)-minimizers of `seq` into scratch (counted as one
/// sequence scan) and sketch them.
void sketchWindow(std::string_view seq, int k, int w,
                  const SketchParams& params, SketchScratch& scratch,
                  SequenceSketch& out);

/// Fraction of equal signature slots — an estimate of the weighted
/// Jaccard similarity of the underlying minimizer multisets, in [0, 1].
/// Returns 0 if either sketch is empty; throws if slot counts differ.
[[nodiscard]] double estimateSimilarity(const SequenceSketch& a,
                                        const SequenceSketch& b);

}  // namespace gx::sketch
