// Portable scalar-lane fill kernel: the bit-identical reference the
// vector kernels are checked against, and the dispatch target on
// non-x86 hosts or under GENASMX_FORCE_SCALAR. L = 1, so the SoA layout
// degenerates to one contiguous bitvector per column.

#include "genasmx/simd/kernels.hpp"

namespace gx::simd::detail {
namespace {

void fillLevelScalar(const FillArgs& a) {
  constexpr int L = 1;
  const int nw = a.nw;
  const std::size_t colstride = static_cast<std::size_t>(nw) * L;
  for (int i = 1; i <= a.n_max; ++i) {
    std::uint64_t* cur_i = a.cur + static_cast<std::size_t>(i) * colstride;
    const std::uint64_t* cur_im1 = cur_i - colstride;
    const std::uint64_t* pm_i =
        a.pm + static_cast<std::size_t>(i - 1) * colstride;
    const std::uint64_t bc = (a.both_ends && i - 1 > a.d) ? 1u : 0u;
    if (a.d == 0) {
      std::uint64_t carry = bc;
      for (int w = 0; w < nw; ++w) {
        const std::uint64_t c = cur_im1[w];
        cur_i[w] = ((c << 1) | carry) | pm_i[w];
        carry = c >> 63;
      }
    } else {
      const std::uint64_t bp = (a.both_ends && i - 1 > a.d - 1) ? 1u : 0u;
      const std::uint64_t bpi = (a.both_ends && i > a.d - 1) ? 1u : 0u;
      const std::uint64_t* prev_i =
          a.prev + static_cast<std::size_t>(i) * colstride;
      const std::uint64_t* prev_im1 = prev_i - colstride;
      std::uint64_t carry_c = bc;
      std::uint64_t carry_p = bp;
      std::uint64_t carry_pi = bpi;
      for (int w = 0; w < nw; ++w) {
        const std::uint64_t c = cur_im1[w];
        const std::uint64_t p = prev_im1[w];
        const std::uint64_t pi = prev_i[w];
        std::uint64_t r = ((c << 1) | carry_c) | pm_i[w];
        r &= (p << 1) | carry_p;
        r &= p;
        r &= (pi << 1) | carry_pi;
        carry_c = c >> 63;
        carry_p = p >> 63;
        carry_pi = pi >> 63;
        cur_i[w] = r;
      }
    }
  }
}

}  // namespace

const FillFn kFillScalar = &fillLevelScalar;

}  // namespace gx::simd::detail
