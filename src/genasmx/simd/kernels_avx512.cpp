// AVX-512 fill kernel: 8 x 64-bit lanes per vector op. This TU is the
// only one compiled with -mavx512f -mavx512bw (see CMakeLists); it must
// contain no code that runs before dispatch confirms CPU support.
// Without the flags the kernel is null and dispatch settles on AVX2,
// SSE2, or scalar.

#include "genasmx/simd/kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__)
#include <immintrin.h>

namespace gx::simd::detail {
namespace {

void fillLevelAvx512(const FillArgs& a) {
  constexpr int L = 8;
  const int nw = a.nw;
  const std::size_t colstride = static_cast<std::size_t>(nw) * L;
  for (int i = 1; i <= a.n_max; ++i) {
    std::uint64_t* cur_i = a.cur + static_cast<std::size_t>(i) * colstride;
    const std::uint64_t* cur_im1 = cur_i - colstride;
    const std::uint64_t* pm_i =
        a.pm + static_cast<std::size_t>(i - 1) * colstride;
    const long long bc = (a.both_ends && i - 1 > a.d) ? 1 : 0;
    if (a.d == 0) {
      __m512i carry = _mm512_set1_epi64(bc);
      for (int w = 0; w < nw; ++w) {
        const __m512i c = _mm512_loadu_si512(cur_im1 + w * L);
        const __m512i pm = _mm512_loadu_si512(pm_i + w * L);
        const __m512i r = _mm512_or_si512(
            _mm512_or_si512(_mm512_slli_epi64(c, 1), carry), pm);
        carry = _mm512_srli_epi64(c, 63);
        _mm512_storeu_si512(cur_i + w * L, r);
      }
    } else {
      const long long bp = (a.both_ends && i - 1 > a.d - 1) ? 1 : 0;
      const long long bpi = (a.both_ends && i > a.d - 1) ? 1 : 0;
      const std::uint64_t* prev_i =
          a.prev + static_cast<std::size_t>(i) * colstride;
      const std::uint64_t* prev_im1 = prev_i - colstride;
      __m512i carry_c = _mm512_set1_epi64(bc);
      __m512i carry_p = _mm512_set1_epi64(bp);
      __m512i carry_pi = _mm512_set1_epi64(bpi);
      for (int w = 0; w < nw; ++w) {
        const __m512i c = _mm512_loadu_si512(cur_im1 + w * L);
        const __m512i p = _mm512_loadu_si512(prev_im1 + w * L);
        const __m512i pi = _mm512_loadu_si512(prev_i + w * L);
        const __m512i pm = _mm512_loadu_si512(pm_i + w * L);
        __m512i r = _mm512_or_si512(
            _mm512_or_si512(_mm512_slli_epi64(c, 1), carry_c), pm);
        r = _mm512_and_si512(r,
                             _mm512_or_si512(_mm512_slli_epi64(p, 1), carry_p));
        r = _mm512_and_si512(r, p);
        r = _mm512_and_si512(
            r, _mm512_or_si512(_mm512_slli_epi64(pi, 1), carry_pi));
        carry_c = _mm512_srli_epi64(c, 63);
        carry_p = _mm512_srli_epi64(p, 63);
        carry_pi = _mm512_srli_epi64(pi, 63);
        _mm512_storeu_si512(cur_i + w * L, r);
      }
    }
  }
}

}  // namespace

const FillFn kFillAvx512 = &fillLevelAvx512;

}  // namespace gx::simd::detail

#else  // !(__AVX512F__ && __AVX512BW__)

namespace gx::simd::detail {
const FillFn kFillAvx512 = nullptr;
}  // namespace gx::simd::detail

#endif
