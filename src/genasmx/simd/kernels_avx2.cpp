// AVX2 fill kernel: 4 x 64-bit lanes per vector op. This TU is the only
// one compiled with -mavx2 (see CMakeLists); it must contain no code
// that runs before dispatch confirms CPU support. Without the flag the
// kernel is null and dispatch settles on SSE2 or scalar.

#include "genasmx/simd/kernels.hpp"

#if defined(__AVX2__)
#include <immintrin.h>

namespace gx::simd::detail {
namespace {

void fillLevelAvx2(const FillArgs& a) {
  constexpr int L = 4;
  const int nw = a.nw;
  const std::size_t colstride = static_cast<std::size_t>(nw) * L;
  for (int i = 1; i <= a.n_max; ++i) {
    std::uint64_t* cur_i = a.cur + static_cast<std::size_t>(i) * colstride;
    const std::uint64_t* cur_im1 = cur_i - colstride;
    const std::uint64_t* pm_i =
        a.pm + static_cast<std::size_t>(i - 1) * colstride;
    const long long bc = (a.both_ends && i - 1 > a.d) ? 1 : 0;
    if (a.d == 0) {
      __m256i carry = _mm256_set1_epi64x(bc);
      for (int w = 0; w < nw; ++w) {
        const __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(cur_im1 + w * L));
        const __m256i pm = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(pm_i + w * L));
        const __m256i r = _mm256_or_si256(
            _mm256_or_si256(_mm256_slli_epi64(c, 1), carry), pm);
        carry = _mm256_srli_epi64(c, 63);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(cur_i + w * L), r);
      }
    } else {
      const long long bp = (a.both_ends && i - 1 > a.d - 1) ? 1 : 0;
      const long long bpi = (a.both_ends && i > a.d - 1) ? 1 : 0;
      const std::uint64_t* prev_i =
          a.prev + static_cast<std::size_t>(i) * colstride;
      const std::uint64_t* prev_im1 = prev_i - colstride;
      __m256i carry_c = _mm256_set1_epi64x(bc);
      __m256i carry_p = _mm256_set1_epi64x(bp);
      __m256i carry_pi = _mm256_set1_epi64x(bpi);
      for (int w = 0; w < nw; ++w) {
        const __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(cur_im1 + w * L));
        const __m256i p = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(prev_im1 + w * L));
        const __m256i pi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(prev_i + w * L));
        const __m256i pm = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(pm_i + w * L));
        __m256i r = _mm256_or_si256(
            _mm256_or_si256(_mm256_slli_epi64(c, 1), carry_c), pm);
        r = _mm256_and_si256(r,
                             _mm256_or_si256(_mm256_slli_epi64(p, 1), carry_p));
        r = _mm256_and_si256(r, p);
        r = _mm256_and_si256(
            r, _mm256_or_si256(_mm256_slli_epi64(pi, 1), carry_pi));
        carry_c = _mm256_srli_epi64(c, 63);
        carry_p = _mm256_srli_epi64(p, 63);
        carry_pi = _mm256_srli_epi64(pi, 63);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(cur_i + w * L), r);
      }
    }
  }
}

}  // namespace

const FillFn kFillAvx2 = &fillLevelAvx2;

}  // namespace gx::simd::detail

#else  // !__AVX2__

namespace gx::simd::detail {
const FillFn kFillAvx2 = nullptr;
}  // namespace gx::simd::detail

#endif
