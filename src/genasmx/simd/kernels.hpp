#pragma once
// Internal contract between SimdBatchSolver and the per-ISA fill
// kernels. One level of the GenASM-DC recurrence is advanced for every
// lane of a group at once; everything else (pattern-mask packing, lane
// bookkeeping, convergence checks, traceback) is ISA-independent scalar
// code in batch_solver.cpp.
//
// Memory layout is structure-of-arrays with the lane index innermost:
// word w of column i of lane l lives at row[(i * nw + w) * L + l], so a
// single vector load picks up the same word of all L lanes. Carries for
// the shift-left-by-one propagate word to word by reloading word w-1 and
// extracting its top bit — columns are short (nw <= 8) and cache-hot.

#include <cstdint>

namespace gx::simd::detail {

/// One DP level over columns 1..n_max for all L lanes of a group.
/// Computes, per lane (active-low bitvectors, see genasm_common.hpp):
///   cur[i] = shl1(cur[i-1], s(i-1, d)) | pm[i-1]            (d == 0)
///   cur[i] = (shl1(cur[i-1], s(i-1, d)) | pm[i-1])
///            & shl1(prev[i-1], s(i-1, d-1)) & prev[i-1]
///            & shl1(prev[i], s(i, d-1))                     (d > 0)
/// where s(i, d) = shiftInOne(anchor, i, d) is lane-uniform. cur[0] is
/// initialised by the caller (onesAbove(d), also lane-uniform).
struct FillArgs {
  std::uint64_t* cur;         ///< (n_max + 1) x nw x L words
  const std::uint64_t* prev;  ///< same layout; unread when d == 0
  const std::uint64_t* pm;    ///< n_max x nw x L pattern-mask words
  int n_max;                  ///< columns 1..n_max are computed
  int nw;                     ///< bitvector words per lane
  int d;                      ///< current level
  bool both_ends;             ///< Anchor::BothEnds (s() non-zero)
};

using FillFn = void (*)(const FillArgs&);

/// Scalar single-lane reference (always available, L = 1).
extern const FillFn kFillScalar;
/// Vector kernels; nullptr where the build lacks the instruction set.
extern const FillFn kFillSse2;
extern const FillFn kFillAvx2;
extern const FillFn kFillAvx512;

}  // namespace gx::simd::detail
