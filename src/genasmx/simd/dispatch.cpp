#include "genasmx/simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "genasmx/simd/kernels.hpp"

namespace gx::simd {
namespace {

bool cpuSupports(IsaLevel level) noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  switch (level) {
    case IsaLevel::Avx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0;
    case IsaLevel::Avx2: return __builtin_cpu_supports("avx2") != 0;
    case IsaLevel::Sse2: return __builtin_cpu_supports("sse2") != 0;
    default: return true;
  }
#else
  return level == IsaLevel::Scalar;
#endif
}

bool envForcesScalar() noexcept {
  const char* v = std::getenv("GENASMX_FORCE_SCALAR");
  if (v == nullptr || v[0] == '\0') return false;
  return !(v[0] == '0' && v[1] == '\0');
}

IsaLevel detect() noexcept {
#if defined(GENASMX_FORCE_SCALAR)
  return IsaLevel::Scalar;
#else
  if (envForcesScalar()) return IsaLevel::Scalar;
  if (isaSupported(IsaLevel::Avx512)) return IsaLevel::Avx512;
  if (isaSupported(IsaLevel::Avx2)) return IsaLevel::Avx2;
  if (isaSupported(IsaLevel::Sse2)) return IsaLevel::Sse2;
  return IsaLevel::Scalar;
#endif
}

/// Next level down the clamp chain Avx512 -> Avx2 -> Sse2 -> Scalar.
IsaLevel lowerLevel(IsaLevel level) noexcept {
  switch (level) {
    case IsaLevel::Avx512: return IsaLevel::Avx2;
    case IsaLevel::Avx2: return IsaLevel::Sse2;
    default: return IsaLevel::Scalar;
  }
}

std::atomic<int>& activeSlot() noexcept {
  // -1 = not yet detected. Plain int so the atomic stays lock-free.
  static std::atomic<int> slot{-1};
  return slot;
}

}  // namespace

std::string_view isaName(IsaLevel level) noexcept {
  switch (level) {
    case IsaLevel::Avx512: return "avx512";
    case IsaLevel::Avx2: return "avx2";
    case IsaLevel::Sse2: return "sse2";
    default: return "scalar";
  }
}

bool isaSupported(IsaLevel level) noexcept {
  switch (level) {
    case IsaLevel::Avx512:
      return detail::kFillAvx512 != nullptr && cpuSupports(level);
    case IsaLevel::Avx2:
      return detail::kFillAvx2 != nullptr && cpuSupports(level);
    case IsaLevel::Sse2:
      return detail::kFillSse2 != nullptr && cpuSupports(level);
    default:
      return true;
  }
}

IsaLevel activeIsa() noexcept {
  int v = activeSlot().load(std::memory_order_acquire);
  if (v < 0) {
    v = static_cast<int>(detect());
    activeSlot().store(v, std::memory_order_release);
  }
  return static_cast<IsaLevel>(v);
}

IsaLevel clampIsa(IsaLevel level) noexcept {
  while (level != IsaLevel::Scalar && !isaSupported(level)) {
    level = lowerLevel(level);
  }
  return level;
}

IsaLevel forceIsa(IsaLevel level) noexcept {
  level = clampIsa(level);
  activeSlot().store(static_cast<int>(level), std::memory_order_release);
  return level;
}

}  // namespace gx::simd
