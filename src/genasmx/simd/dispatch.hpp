#pragma once
// Runtime ISA dispatch for the lane-parallel GenASM kernels.
//
// The batched solvers pack independent windows into structure-of-arrays
// lanes and advance them with one vector op per bitvector word: 8 lanes
// on AVX-512, 4 on AVX2, 2 on SSE2, and a portable scalar single-lane
// fallback that is the bit-identical reference everywhere else.
// Selection happens once at
// runtime (CPUID-class detection); every level produces identical
// results, so dispatch is a pure throughput decision.
//
// Overrides on the *default* dispatch (what activeIsa() hands to every
// solver constructed without an explicit level):
//   * CMake -DGENASMX_FORCE_SCALAR=ON makes detection return Scalar.
//   * GENASMX_FORCE_SCALAR=1 in the environment does the same at
//     startup — the CI fallback legs run the production flows this way.
//   * forceIsa() re-pins the cached level programmatically.
// Explicitly constructing a SimdBatchSolver with a level (or calling
// forceIsa) still selects any isaSupported() kernel — that is how the
// equivalence tests sweep the vector kernels even on forced-scalar
// builds; the force knobs pin the default, they do not disable the
// kernels.

#include <string_view>

namespace gx::simd {

enum class IsaLevel {
  Scalar = 0,  ///< one lane, plain uint64 ops — portable reference
  Sse2 = 1,    ///< 2 x 64-bit lanes (x86-64 baseline)
  Avx2 = 2,    ///< 4 x 64-bit lanes
  Avx512 = 3,  ///< 8 x 64-bit lanes (needs AVX-512 F + BW)
};

/// Lanes per SIMD register at this level.
[[nodiscard]] constexpr int isaLanes(IsaLevel level) noexcept {
  switch (level) {
    case IsaLevel::Avx512: return 8;
    case IsaLevel::Avx2: return 4;
    case IsaLevel::Sse2: return 2;
    default: return 1;
  }
}

[[nodiscard]] std::string_view isaName(IsaLevel level) noexcept;

/// True when `level`'s kernel was compiled in AND the CPU executes it.
[[nodiscard]] bool isaSupported(IsaLevel level) noexcept;

/// `level` clamped down the chain Avx512 -> Avx2 -> Sse2 -> Scalar to
/// the nearest supported one.
[[nodiscard]] IsaLevel clampIsa(IsaLevel level) noexcept;

/// The best supported level after applying the force-scalar overrides.
/// Detected once and cached; forceIsa() replaces the cached value.
[[nodiscard]] IsaLevel activeIsa() noexcept;

/// Pin the active level (clamped to a supported one). Test hook; returns
/// the level actually installed.
IsaLevel forceIsa(IsaLevel level) noexcept;

}  // namespace gx::simd
