// SSE2 fill kernel: 2 x 64-bit lanes per vector op. SSE2 is part of the
// x86-64 baseline, so this TU needs no special flags there; elsewhere it
// compiles to a null kernel and dispatch falls back to scalar lanes.

#include "genasmx/simd/kernels.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>

namespace gx::simd::detail {
namespace {

void fillLevelSse2(const FillArgs& a) {
  constexpr int L = 2;
  const int nw = a.nw;
  const std::size_t colstride = static_cast<std::size_t>(nw) * L;
  for (int i = 1; i <= a.n_max; ++i) {
    std::uint64_t* cur_i = a.cur + static_cast<std::size_t>(i) * colstride;
    const std::uint64_t* cur_im1 = cur_i - colstride;
    const std::uint64_t* pm_i =
        a.pm + static_cast<std::size_t>(i - 1) * colstride;
    const long long bc = (a.both_ends && i - 1 > a.d) ? 1 : 0;
    if (a.d == 0) {
      __m128i carry = _mm_set1_epi64x(bc);
      for (int w = 0; w < nw; ++w) {
        const __m128i c =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(cur_im1 + w * L));
        const __m128i pm =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(pm_i + w * L));
        const __m128i r =
            _mm_or_si128(_mm_or_si128(_mm_slli_epi64(c, 1), carry), pm);
        carry = _mm_srli_epi64(c, 63);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(cur_i + w * L), r);
      }
    } else {
      const long long bp = (a.both_ends && i - 1 > a.d - 1) ? 1 : 0;
      const long long bpi = (a.both_ends && i > a.d - 1) ? 1 : 0;
      const std::uint64_t* prev_i =
          a.prev + static_cast<std::size_t>(i) * colstride;
      const std::uint64_t* prev_im1 = prev_i - colstride;
      __m128i carry_c = _mm_set1_epi64x(bc);
      __m128i carry_p = _mm_set1_epi64x(bp);
      __m128i carry_pi = _mm_set1_epi64x(bpi);
      for (int w = 0; w < nw; ++w) {
        const __m128i c =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(cur_im1 + w * L));
        const __m128i p =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(prev_im1 + w * L));
        const __m128i pi =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(prev_i + w * L));
        const __m128i pm =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(pm_i + w * L));
        __m128i r =
            _mm_or_si128(_mm_or_si128(_mm_slli_epi64(c, 1), carry_c), pm);
        r = _mm_and_si128(r, _mm_or_si128(_mm_slli_epi64(p, 1), carry_p));
        r = _mm_and_si128(r, p);
        r = _mm_and_si128(r, _mm_or_si128(_mm_slli_epi64(pi, 1), carry_pi));
        carry_c = _mm_srli_epi64(c, 63);
        carry_p = _mm_srli_epi64(p, 63);
        carry_pi = _mm_srli_epi64(pi, 63);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(cur_i + w * L), r);
      }
    }
  }
}

}  // namespace

const FillFn kFillSse2 = &fillLevelSse2;

}  // namespace gx::simd::detail

#else  // !__SSE2__

namespace gx::simd::detail {
const FillFn kFillSse2 = nullptr;
}  // namespace gx::simd::detail

#endif
