#pragma once
// SimdBatchSolver — lane-parallel batched GenASM kernels.
//
// The paper's central observation is that windowed alignment is a pile
// of small independent bitvector DPs; per-window cost is low, so real
// throughput comes from running many windows at once. This solver packs
// L independent window problems into structure-of-arrays SIMD lanes
// (AVX2 4x64, SSE2 2x64, scalar 1x64 — see dispatch.hpp) and advances
// every lane through the shared level-major DP loop, masking lanes off
// as they converge or exceed their per-lane edit cap.
//
// Two entry points, both with a hard bit-identical guarantee:
//
//   * solveDistanceBatch — the two-working-row distance kernel: every
//     lane result equals BaselineWindowSolver/ImprovedWindowSolver::
//     solveDistance on the same (reversed) inputs. No row persistence.
//   * solveWindowBatch — the full window solve the windowed drivers
//     march on: the DP fill runs lane-parallel with per-level row
//     persistence, then a per-lane scalar traceback (the improved
//     solver's compressed-entry walk) reproduces solve()'s committed
//     operation counts exactly — distance, edit total, and text/pattern
//     consumption match WindowResult field for field.
//
// Inputs are taken in ORIGINAL orientation; the solver indexes them
// reversed internally (text_rev[i-1] == text[n-i]), so callers skip the
// per-problem reversal copies the scalar path pays.
//
// Instances own monotone scratch arenas and are not thread-safe: keep
// one per worker (the engine's aligners each hold one).

#include <cstdint>
#include <string_view>
#include <vector>

#include "genasmx/genasm/genasm_common.hpp"
#include "genasmx/simd/dispatch.hpp"
#include "genasmx/simd/kernels.hpp"

namespace gx::simd {

/// One window problem, original orientation. max_edits is the per-lane
/// level cap (-1 = the always-solvable autoEditCap); tb_op_limit bounds
/// the traceback in solveWindowBatch (ignored by solveDistanceBatch).
struct WindowProblem {
  std::string_view text;
  std::string_view pattern;
  int max_edits = -1;
  int tb_op_limit = -1;
};

/// solveWindowBatch outcome: the WindowResult-derived values the
/// windowed distance march consumes. `edits`/`text_consumed`/
/// `pattern_consumed` are the committed cigar's editDistance(),
/// targetLength(), and queryLength() (post tb_op_limit truncation).
struct WindowOutcome {
  bool ok = false;
  int distance = -1;
  std::uint64_t edits = 0;
  std::uint64_t text_consumed = 0;
  std::uint64_t pattern_consumed = 0;
};

class SimdBatchSolver {
 public:
  /// Unsupported levels are clamped downward (Avx2 -> Sse2 -> Scalar).
  explicit SimdBatchSolver(IsaLevel isa = activeIsa());

  [[nodiscard]] IsaLevel isa() const noexcept { return isa_; }
  [[nodiscard]] int lanes() const noexcept { return lanes_; }

  /// results[i] = d_min of problems[i], or -1 when unsolvable within the
  /// cap (or the pattern is empty / beyond 512 characters) — exactly the
  /// scalar solveDistance contract. Any count; lanes are grouped
  /// internally.
  void solveDistanceBatch(genasm::Anchor anchor, const WindowProblem* problems,
                          std::size_t count, int* results);

  /// outs[i] mirrors the scalar window solve of problems[i] (see
  /// WindowOutcome). Any count.
  void solveWindowBatch(genasm::Anchor anchor, const WindowProblem* problems,
                        std::size_t count, WindowOutcome* outs);

 private:
  struct Lane {
    int n = 0;
    int m = 0;
    int k = 0;
    int dmin = -1;
    bool valid = false;
    bool active = false;
    const WindowProblem* prob = nullptr;
  };

  /// Decode a group of <= lanes_ problems, pick the group geometry
  /// (nw = words covering the widest pattern, n_max), and pack the
  /// per-column pattern-mask words. Returns the number of valid lanes.
  int packGroup(genasm::Anchor anchor, const WindowProblem* problems,
                std::size_t base, std::size_t group, int& nw, int& n_max);

  void runDistanceGroup(genasm::Anchor anchor, std::size_t group, int nw,
                        int n_max, int valid);
  void runWindowGroup(genasm::Anchor anchor, std::size_t group, int nw,
                      int n_max, int valid, WindowOutcome* outs);

  [[nodiscard]] bool tracebackLane(genasm::Anchor anchor, const Lane& lane,
                                   int lane_idx, int nw, int n_max,
                                   WindowOutcome& out) const;

  IsaLevel isa_;
  int lanes_;
  detail::FillFn fill_;
  std::vector<Lane> lane_state_;
  std::vector<std::uint64_t> pm_;     ///< n_max x nw x L mask words
  std::vector<std::uint64_t> row_a_;  ///< two-row distance mode
  std::vector<std::uint64_t> row_b_;
  std::vector<std::uint64_t> rows_;   ///< per-level persisted rows
};

}  // namespace gx::simd
