#pragma once
// SimdBatchSolver — lane-parallel batched GenASM kernels.
//
// The paper's central observation is that windowed alignment is a pile
// of small independent bitvector DPs; per-window cost is low, so real
// throughput comes from running many windows at once. This solver packs
// L independent window problems into structure-of-arrays SIMD lanes
// (AVX-512 8x64, AVX2 4x64, SSE2 2x64, scalar 1x64 — see dispatch.hpp)
// and advances every lane through the shared level-major DP loop,
// masking lanes off as they converge or exceed their per-lane edit cap.
//
// Three entry points, all with a hard bit-identical guarantee:
//
//   * solveDistanceBatch — the two-working-row distance kernel: every
//     lane result equals BaselineWindowSolver/ImprovedWindowSolver::
//     solveDistance on the same (reversed) inputs. No row persistence.
//   * solveWindowBatch — the counting window solve the windowed
//     *distance* march consumes: lane-parallel fill with per-level row
//     persistence, then a per-lane walk of the shared traceback
//     (genasm::walkTraceback) counting committed operations — distance,
//     edit total, and text/pattern consumption match the scalar
//     WindowResult field for field.
//   * alignBatch — the full window solve: identical fill and walk, but
//     the committed operations build each problem's cigar, so outs[i]
//     mirrors the scalar solver's solve() (WindowResult) exactly. This
//     is what the batched *alignment* march and the global <=512 bp
//     alignment batches run on.
//
// Inputs are taken in ORIGINAL orientation; the solver indexes them
// reversed internally (text_rev[i-1] == text[n-i]), so callers skip the
// per-problem reversal copies the scalar path pays.
//
// Shape sorting (on by default, setShapeSort): a group's geometry pads
// every lane to the widest member's pattern words and text length, so
// ragged batches waste word-updates. The solver therefore packs lanes
// in shape order — a deterministic index sort by (pattern words, text
// length, edit budget) — and scatters results back to input positions.
// Per-lane results are unchanged by construction: a lane's DP columns
// and traceback reads never touch another lane's words, and group
// geometry only pads. Occupancy is tracked in stats() so the perf
// harness can report padding with and without the sort.
//
// Instances own monotone scratch arenas and are not thread-safe: keep
// one per worker (the engine's aligners each hold one). scratchAllocs()
// counts arena growth events — steady-state batches over a stable
// geometry must not advance it (the bench asserts this).

#include <cstdint>
#include <string_view>
#include <vector>

#include "genasmx/genasm/genasm_common.hpp"
#include "genasmx/simd/dispatch.hpp"
#include "genasmx/simd/kernels.hpp"

namespace gx::simd {

/// One window problem, original orientation. max_edits is the per-lane
/// level cap (-1 = the always-solvable autoEditCap); tb_op_limit bounds
/// the traceback (ignored by solveDistanceBatch).
struct WindowProblem {
  std::string_view text;
  std::string_view pattern;
  int max_edits = -1;
  int tb_op_limit = -1;
};

/// solveWindowBatch outcome: the WindowResult-derived values the
/// windowed distance march consumes. `edits`/`text_consumed`/
/// `pattern_consumed` are the committed cigar's editDistance(),
/// targetLength(), and queryLength() (post tb_op_limit truncation).
struct WindowOutcome {
  bool ok = false;
  int distance = -1;
  std::uint64_t edits = 0;
  std::uint64_t text_consumed = 0;
  std::uint64_t pattern_consumed = 0;
};

/// Accumulated lane-packing occupancy. Slot counts say how many lane
/// positions carried a real problem; word counts say how much of the
/// issued per-level fill work was useful (a lane's own pattern words x
/// its own text length) versus the group geometry it was padded to —
/// the figure shape sorting improves on ragged batches.
struct BatchStats {
  std::uint64_t groups = 0;
  std::uint64_t lane_slots = 0;    ///< L per group, summed
  std::uint64_t lanes_filled = 0;  ///< slots holding a valid problem
  std::uint64_t packed_words = 0;  ///< group geometry: L x nw x n_max
  std::uint64_t useful_words = 0;  ///< per valid lane: own nw x own n
};

class SimdBatchSolver {
 public:
  /// Unsupported levels are clamped downward (Avx512 -> Avx2 -> Sse2 ->
  /// Scalar).
  explicit SimdBatchSolver(IsaLevel isa = activeIsa());

  [[nodiscard]] IsaLevel isa() const noexcept { return isa_; }
  [[nodiscard]] int lanes() const noexcept { return lanes_; }

  /// Shape sorting knob (default on). Results are bit-identical either
  /// way; off exists for the occupancy A/B in the perf harness.
  void setShapeSort(bool on) noexcept { shape_sort_ = on; }
  [[nodiscard]] bool shapeSort() const noexcept { return shape_sort_; }

  [[nodiscard]] const BatchStats& stats() const noexcept { return stats_; }
  void resetStats() noexcept { stats_ = BatchStats{}; }

  /// Scratch arena growth events since construction; a steady-state
  /// batch over a stable geometry must leave this unchanged.
  [[nodiscard]] std::uint64_t scratchAllocs() const noexcept {
    return scratch_grows_;
  }

  /// results[i] = d_min of problems[i], or -1 when unsolvable within the
  /// cap (or the pattern is empty / beyond 512 characters) — exactly the
  /// scalar solveDistance contract. Any count; lanes are grouped
  /// internally.
  void solveDistanceBatch(genasm::Anchor anchor, const WindowProblem* problems,
                          std::size_t count, int* results);

  /// outs[i] mirrors the scalar window solve of problems[i] (see
  /// WindowOutcome). Any count.
  void solveWindowBatch(genasm::Anchor anchor, const WindowProblem* problems,
                        std::size_t count, WindowOutcome* outs);

  /// outs[i] mirrors the scalar solver's solve() of problems[i]: ok,
  /// distance, cigar (truncated to tb_op_limit), traceback_complete.
  /// Each out is reset in place, preserving its cigar capacity, so
  /// callers reusing an outs arena across batches allocate nothing at
  /// steady state. Any count.
  void alignBatch(genasm::Anchor anchor, const WindowProblem* problems,
                  std::size_t count, genasm::WindowResult* outs);

 private:
  struct Lane {
    int n = 0;
    int m = 0;
    int k = 0;
    int dmin = -1;
    bool valid = false;
    bool active = false;
    const WindowProblem* prob = nullptr;
  };

  /// Arena growth with the instance's alloc-event accounting.
  template <class T>
  void ensureScratch(std::vector<T>& buf, std::size_t n) {
    if (buf.capacity() < n) ++scratch_grows_;
    if (buf.size() < n) buf.resize(n);
  }

  /// Fill order_[0..count): identity, or the deterministic shape sort
  /// (descending pattern words / text length / edit budget, input order
  /// breaking ties — equivalent to a stable sort, without its per-call
  /// temporary buffer).
  void prepareOrder(genasm::Anchor anchor, const WindowProblem* problems,
                    std::size_t count);

  /// Decode a group of <= lanes_ problems (problems[order[0..group)]),
  /// pick the group geometry (nw = words covering the widest pattern,
  /// n_max), pack the per-column pattern-mask words, and record
  /// occupancy. Returns the number of valid lanes.
  int packGroup(genasm::Anchor anchor, const WindowProblem* problems,
                const std::size_t* order, std::size_t group, int& nw,
                int& n_max);

  void runDistanceGroup(genasm::Anchor anchor, int nw, int n_max, int valid);

  /// Level-major lane-parallel fill with per-level row persistence into
  /// rows_ — shared by solveWindowBatch and alignBatch (their lane
  /// tracebacks read the persisted rows).
  void runPersistedFill(genasm::Anchor anchor, int nw, int n_max, int valid);

  /// Lane probe + the shared genasm::walkTraceback; Emit receives the
  /// committed operations (cigar push or counting, caller's choice).
  template <class Emit>
  [[nodiscard]] genasm::TbStatus walkLane(genasm::Anchor anchor,
                                          const Lane& lane, int lane_idx,
                                          int nw, int n_max, Emit&& emit) const;

  [[nodiscard]] bool tracebackLane(genasm::Anchor anchor, const Lane& lane,
                                   int lane_idx, int nw, int n_max,
                                   WindowOutcome& out) const;

  IsaLevel isa_;
  int lanes_;
  detail::FillFn fill_;
  bool shape_sort_ = true;
  BatchStats stats_;
  std::uint64_t scratch_grows_ = 0;
  std::vector<Lane> lane_state_;
  std::vector<std::size_t> order_;    ///< packing order (see prepareOrder)
  std::vector<std::uint64_t> pm_;     ///< n_max x nw x L mask words
  std::vector<std::uint64_t> row_a_;  ///< two-row distance mode
  std::vector<std::uint64_t> row_b_;
  std::vector<std::uint64_t> rows_;   ///< per-level persisted rows
};

}  // namespace gx::simd
