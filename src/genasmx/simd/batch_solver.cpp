#include "genasmx/simd/batch_solver.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>
#include <utility>

#include "genasmx/bitvector/bitvector.hpp"
#include "genasmx/common/sequence.hpp"

namespace gx::simd {
namespace {

/// Patterns past this length never reach the lane kernels: the widest
/// scalar solver instantiation (BitVec<8>) rejects them too, and the
/// windowed drivers cap windows at 512.
constexpr int kMaxPatternBits = bitvector::BitVec<8>::kBits;

/// Word w of BitVec::onesAbove(d): bits [0, d) cleared, rest set.
std::uint64_t onesAboveWord(int d, int w) noexcept {
  const int lo = w * 64;
  if (d <= lo) return ~0ULL;
  if (d >= lo + 64) return 0;
  return ~0ULL << (d - lo);
}

detail::FillFn fillFor(IsaLevel isa) noexcept {
  switch (isa) {
    case IsaLevel::Avx512: return detail::kFillAvx512;
    case IsaLevel::Avx2: return detail::kFillAvx2;
    case IsaLevel::Sse2: return detail::kFillSse2;
    default: return detail::kFillScalar;
  }
}

}  // namespace

SimdBatchSolver::SimdBatchSolver(IsaLevel isa)
    : isa_(clampIsa(isa)),
      lanes_(isaLanes(isa_)),
      fill_(fillFor(isa_)) {
  lane_state_.resize(static_cast<std::size_t>(lanes_));
}

void SimdBatchSolver::prepareOrder(genasm::Anchor anchor,
                                   const WindowProblem* problems,
                                   std::size_t count) {
  ensureScratch(order_, count);
  order_.resize(count);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  if (!shape_sort_ || count <= static_cast<std::size_t>(lanes_)) return;

  // Deterministic shape key: problems sharing pattern width and text
  // length pack into groups with no padding at all; the descending
  // order keeps the widest (most padding-prone) shapes together. An
  // in-place index sort with the input position as the final tiebreak
  // is exactly a stable sort, minus stable_sort's per-call temporary
  // buffer (which would break steady-state allocation-freedom).
  const auto key = [&](std::size_t idx) {
    const WindowProblem& p = problems[idx];
    const int m = static_cast<int>(p.pattern.size());
    const int n = static_cast<int>(p.text.size());
    if (m <= 0 || m > kMaxPatternBits) return std::tuple<int, int, int>{};
    const int k = p.max_edits >= 0 ? p.max_edits
                                   : genasm::autoEditCap(n, m, anchor);
    return std::tuple<int, int, int>{bitvector::wordsNeeded(m), n, k};
  };
  std::sort(order_.begin(), order_.end(),
            [&](std::size_t a, std::size_t b) {
              const auto ka = key(a);
              const auto kb = key(b);
              if (ka != kb) return ka > kb;
              return a < b;
            });
}

int SimdBatchSolver::packGroup(genasm::Anchor anchor,
                               const WindowProblem* problems,
                               const std::size_t* order, std::size_t group,
                               int& nw, int& n_max) {
  nw = 1;
  n_max = 0;
  int valid = 0;
  std::uint64_t useful = 0;
  for (int l = 0; l < lanes_; ++l) {
    Lane& lane = lane_state_[static_cast<std::size_t>(l)];
    lane = Lane{};
    if (static_cast<std::size_t>(l) >= group) continue;
    const WindowProblem& p = problems[order[static_cast<std::size_t>(l)]];
    lane.prob = &p;
    lane.n = static_cast<int>(p.text.size());
    lane.m = static_cast<int>(p.pattern.size());
    if (lane.m <= 0 || lane.m > kMaxPatternBits) continue;  // invalid lane
    lane.k = p.max_edits >= 0 ? p.max_edits
                              : genasm::autoEditCap(lane.n, lane.m, anchor);
    lane.valid = true;
    lane.active = true;
    ++valid;
    const int lw = bitvector::wordsNeeded(lane.m);
    useful += static_cast<std::uint64_t>(lw) *
              static_cast<std::uint64_t>(lane.n);
    nw = std::max(nw, lw);
    n_max = std::max(n_max, lane.n);
  }
  ++stats_.groups;
  stats_.lane_slots += static_cast<std::uint64_t>(lanes_);
  stats_.lanes_filled += static_cast<std::uint64_t>(valid);
  stats_.packed_words += static_cast<std::uint64_t>(lanes_) *
                         static_cast<std::uint64_t>(nw) *
                         static_cast<std::uint64_t>(n_max);
  stats_.useful_words += useful;
  if (valid == 0) return 0;

  // Pack the per-column pattern-mask words, lane index innermost. Lanes
  // are padded with all-ones (active-low: "no match") past their own
  // text and in invalid slots; padded columns can never contaminate a
  // live lane's columns <= n because the recurrence only looks left.
  const std::size_t colstride =
      static_cast<std::size_t>(nw) * static_cast<std::size_t>(lanes_);
  const std::size_t pm_words = static_cast<std::size_t>(n_max) * colstride;
  ensureScratch(pm_, pm_words);
  std::fill(pm_.begin(),
            pm_.begin() + static_cast<std::ptrdiff_t>(pm_words), ~0ULL);
  for (int l = 0; l < lanes_; ++l) {
    const Lane& lane = lane_state_[static_cast<std::size_t>(l)];
    if (!lane.valid) continue;
    // mask[c] is PM[c] for the reversed pattern: bit j == 0 iff
    // pattern_rev[j] == c, i.e. pattern[m-1-j] == c.
    std::uint64_t mask[common::kAlphabetSize][8];
    for (auto& row : mask) std::fill(row, row + nw, ~0ULL);
    const std::string_view pattern = lane.prob->pattern;
    for (int j = 0; j < lane.m; ++j) {
      mask[common::baseCode(pattern[static_cast<std::size_t>(lane.m - 1 - j)])]
          [j >> 6] &= ~(1ULL << (j & 63));
    }
    const std::string_view text = lane.prob->text;
    for (int i = 1; i <= lane.n; ++i) {
      const std::uint8_t c =
          common::baseCode(text[static_cast<std::size_t>(lane.n - i)]);
      std::uint64_t* dst =
          pm_.data() + static_cast<std::size_t>(i - 1) * colstride +
          static_cast<std::size_t>(l);
      for (int w = 0; w < nw; ++w) {
        dst[static_cast<std::size_t>(w) * lanes_] = mask[c][w];
      }
    }
  }
  return valid;
}

void SimdBatchSolver::runDistanceGroup(genasm::Anchor anchor, int nw,
                                       int n_max, int valid) {
  const std::size_t colstride =
      static_cast<std::size_t>(nw) * static_cast<std::size_t>(lanes_);
  const std::size_t row_words =
      static_cast<std::size_t>(n_max + 1) * colstride;
  ensureScratch(row_a_, row_words);
  ensureScratch(row_b_, row_words);
  std::uint64_t* cur = row_a_.data();
  std::uint64_t* prev = row_b_.data();
  const bool both = anchor == genasm::Anchor::BothEnds;

  int remaining = valid;
  for (int d = 0; remaining > 0; ++d) {
    int n_act = 0;
    for (const Lane& lane : lane_state_) {
      if (lane.active) n_act = std::max(n_act, lane.n);
    }
    for (int w = 0; w < nw; ++w) {
      const std::uint64_t v = onesAboveWord(d, w);
      std::uint64_t* dst = cur + static_cast<std::size_t>(w) * lanes_;
      for (int l = 0; l < lanes_; ++l) dst[l] = v;
    }
    fill_(detail::FillArgs{cur, prev, pm_.data(), n_act, nw, d, both});
    for (int l = 0; l < lanes_; ++l) {
      Lane& lane = lane_state_[static_cast<std::size_t>(l)];
      if (!lane.active) continue;
      const int mb = lane.m - 1;
      const std::uint64_t v =
          cur[(static_cast<std::size_t>(lane.n) * nw +
               static_cast<std::size_t>(mb >> 6)) *
                  lanes_ +
              static_cast<std::size_t>(l)];
      if (((v >> (mb & 63)) & 1) == 0) {
        lane.dmin = d;
        lane.active = false;
        --remaining;
      } else if (d == lane.k) {
        lane.dmin = -1;
        lane.active = false;
        --remaining;
      }
    }
    std::swap(cur, prev);
  }
}

void SimdBatchSolver::runPersistedFill(genasm::Anchor anchor, int nw,
                                       int n_max, int valid) {
  const std::size_t colstride =
      static_cast<std::size_t>(nw) * static_cast<std::size_t>(lanes_);
  const std::size_t row_words =
      static_cast<std::size_t>(n_max + 1) * colstride;
  const bool both = anchor == genasm::Anchor::BothEnds;

  // Level-major fill with per-level row persistence: the arena grows one
  // row at a time (monotonically across groups), so lanes that converge
  // early never claim deeper levels.
  int remaining = valid;
  for (int d = 0; remaining > 0; ++d) {
    ensureScratch(rows_, static_cast<std::size_t>(d + 1) * row_words);
    std::uint64_t* cur = rows_.data() + static_cast<std::size_t>(d) * row_words;
    const std::uint64_t* prev =
        d > 0 ? rows_.data() + static_cast<std::size_t>(d - 1) * row_words
              : nullptr;
    int n_act = 0;
    for (const Lane& lane : lane_state_) {
      if (lane.active) n_act = std::max(n_act, lane.n);
    }
    for (int w = 0; w < nw; ++w) {
      const std::uint64_t v = onesAboveWord(d, w);
      std::uint64_t* dst = cur + static_cast<std::size_t>(w) * lanes_;
      for (int l = 0; l < lanes_; ++l) dst[l] = v;
    }
    fill_(detail::FillArgs{cur, prev, pm_.data(), n_act, nw, d, both});
    for (int l = 0; l < lanes_; ++l) {
      Lane& lane = lane_state_[static_cast<std::size_t>(l)];
      if (!lane.active) continue;
      const int mb = lane.m - 1;
      const std::uint64_t v =
          cur[(static_cast<std::size_t>(lane.n) * nw +
               static_cast<std::size_t>(mb >> 6)) *
                  lanes_ +
              static_cast<std::size_t>(l)];
      if (((v >> (mb & 63)) & 1) == 0) {
        lane.dmin = d;
        lane.active = false;
        --remaining;
      } else if (d == lane.k) {
        lane.dmin = -1;
        lane.active = false;
        --remaining;
      }
    }
  }
}

/// Per-lane probe for the shared genasm::walkTraceback: the improved
/// solver's compressed-entry derivation (recompute transition bits from
/// stored R values), reading the persisted SoA rows. The walk itself —
/// priority, op budget, edge branches — is the one templated
/// implementation in genasm_common.hpp, so the lane solves cannot drift
/// from the scalar solvers' committed operation sequences.
template <class Emit>
genasm::TbStatus SimdBatchSolver::walkLane(genasm::Anchor anchor,
                                           const Lane& lane, int lane_idx,
                                           int nw, int n_max,
                                           Emit&& emit) const {
  const std::size_t colstride =
      static_cast<std::size_t>(nw) * static_cast<std::size_t>(lanes_);
  const std::size_t row_words =
      static_cast<std::size_t>(n_max + 1) * colstride;
  const std::string_view text = lane.prob->text;
  const std::string_view pattern = lane.prob->pattern;
  const int n = lane.n;
  const int m = lane.m;

  // Stored R[col][lvl] bit, active-low (see ImprovedWindowSolver::
  // rBitIsOne): bitidx -1 is the empty-prefix state, column 0 is
  // analytic (onesAbove(lvl)).
  const auto rBitIsOne = [&](int col, int lvl, int bitidx) -> bool {
    if (bitidx < 0) return genasm::shiftInOne(anchor, col, lvl);
    if (col == 0) return bitidx >= lvl;
    const std::uint64_t v =
        rows_[static_cast<std::size_t>(lvl) * row_words +
              (static_cast<std::size_t>(col) * nw +
               static_cast<std::size_t>(bitidx >> 6)) *
                  lanes_ +
              static_cast<std::size_t>(lane_idx)];
    return ((v >> (bitidx & 63)) & 1) != 0;
  };

  return genasm::walkTraceback(
      anchor, n, m, lane.dmin, genasm::tbOpBudget(lane.prob->tb_op_limit),
      [&](int i, int pl, int d) {
        // text_rev[i-1] == text[n-i]; pattern_rev[pl-1] == pattern[m-pl].
        genasm::TbFlags f;
        f.match =
            common::baseCode(pattern[static_cast<std::size_t>(m - pl)]) ==
                common::baseCode(text[static_cast<std::size_t>(n - i)]) &&
            !rBitIsOne(i - 1, d, pl - 2);
        f.del = d >= 1 && !rBitIsOne(i - 1, d - 1, pl - 1);
        f.ins = d >= 1 && !rBitIsOne(i, d - 1, pl - 2);
        f.sub = d >= 1 && !rBitIsOne(i - 1, d - 1, pl - 2);
        return f;
      },
      std::forward<Emit>(emit));
}

bool SimdBatchSolver::tracebackLane(genasm::Anchor anchor, const Lane& lane,
                                    int lane_idx, int nw, int n_max,
                                    WindowOutcome& out) const {
  const genasm::TbStatus status = walkLane(
      anchor, lane, lane_idx, nw, n_max,
      [&](common::EditOp op, std::uint32_t count) {
        switch (op) {
          case common::EditOp::Match:
            out.text_consumed += count;
            out.pattern_consumed += count;
            break;
          case common::EditOp::Mismatch:
            out.text_consumed += count;
            out.pattern_consumed += count;
            out.edits += count;
            break;
          case common::EditOp::Deletion:
            out.text_consumed += count;
            out.edits += count;
            break;
          case common::EditOp::Insertion:
            out.pattern_consumed += count;
            out.edits += count;
            break;
        }
      });
  return status != genasm::TbStatus::Bad;
}

void SimdBatchSolver::solveDistanceBatch(genasm::Anchor anchor,
                                         const WindowProblem* problems,
                                         std::size_t count, int* results) {
  prepareOrder(anchor, problems, count);
  for (std::size_t base = 0; base < count;
       base += static_cast<std::size_t>(lanes_)) {
    const std::size_t group =
        std::min<std::size_t>(static_cast<std::size_t>(lanes_), count - base);
    const std::size_t* order = order_.data() + base;
    int nw = 1;
    int n_max = 0;
    const int valid = packGroup(anchor, problems, order, group, nw, n_max);
    if (valid > 0) runDistanceGroup(anchor, nw, n_max, valid);
    for (std::size_t l = 0; l < group; ++l) {
      results[order[l]] = lane_state_[l].valid ? lane_state_[l].dmin : -1;
    }
  }
}

void SimdBatchSolver::solveWindowBatch(genasm::Anchor anchor,
                                       const WindowProblem* problems,
                                       std::size_t count, WindowOutcome* outs) {
  prepareOrder(anchor, problems, count);
  for (std::size_t base = 0; base < count;
       base += static_cast<std::size_t>(lanes_)) {
    const std::size_t group =
        std::min<std::size_t>(static_cast<std::size_t>(lanes_), count - base);
    const std::size_t* order = order_.data() + base;
    int nw = 1;
    int n_max = 0;
    const int valid = packGroup(anchor, problems, order, group, nw, n_max);
    if (valid > 0) runPersistedFill(anchor, nw, n_max, valid);
    for (std::size_t l = 0; l < group; ++l) {
      const Lane& lane = lane_state_[l];
      WindowOutcome& out = outs[order[l]];
      out = WindowOutcome{};
      if (!lane.valid || lane.dmin < 0) continue;  // ok stays false
      out.distance = lane.dmin;
      out.ok = tracebackLane(anchor, lane, static_cast<int>(l), nw, n_max, out);
    }
  }
}

void SimdBatchSolver::alignBatch(genasm::Anchor anchor,
                                 const WindowProblem* problems,
                                 std::size_t count,
                                 genasm::WindowResult* outs) {
  prepareOrder(anchor, problems, count);
  for (std::size_t base = 0; base < count;
       base += static_cast<std::size_t>(lanes_)) {
    const std::size_t group =
        std::min<std::size_t>(static_cast<std::size_t>(lanes_), count - base);
    const std::size_t* order = order_.data() + base;
    int nw = 1;
    int n_max = 0;
    const int valid = packGroup(anchor, problems, order, group, nw, n_max);
    if (valid > 0) runPersistedFill(anchor, nw, n_max, valid);
    for (std::size_t l = 0; l < group; ++l) {
      const Lane& lane = lane_state_[l];
      // In-place reset, as the scalar solvers' in-place solve() does:
      // the cigar keeps its capacity across batches.
      genasm::WindowResult& out = outs[order[l]];
      out.ok = false;
      out.distance = -1;
      out.traceback_complete = false;
      out.cigar.clear();
      if (!lane.valid || lane.dmin < 0) continue;  // ok stays false
      out.distance = lane.dmin;
      const genasm::TbStatus status = walkLane(
          anchor, lane, static_cast<int>(l), nw, n_max,
          [&](common::EditOp op, std::uint32_t cnt) {
            out.cigar.push(op, cnt);
          });
      out.ok = status != genasm::TbStatus::Bad;
      out.traceback_complete = status == genasm::TbStatus::Complete;
    }
  }
}

}  // namespace gx::simd
