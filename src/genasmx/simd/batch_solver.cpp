#include "genasmx/simd/batch_solver.hpp"

#include <algorithm>

#include "genasmx/bitvector/bitvector.hpp"
#include "genasmx/common/sequence.hpp"

namespace gx::simd {
namespace {

/// Patterns past this length never reach the lane kernels: the widest
/// scalar solver instantiation (BitVec<8>) rejects them too, and the
/// windowed drivers cap windows at 512.
constexpr int kMaxPatternBits = bitvector::BitVec<8>::kBits;

/// Word w of BitVec::onesAbove(d): bits [0, d) cleared, rest set.
std::uint64_t onesAboveWord(int d, int w) noexcept {
  const int lo = w * 64;
  if (d <= lo) return ~0ULL;
  if (d >= lo + 64) return 0;
  return ~0ULL << (d - lo);
}

detail::FillFn fillFor(IsaLevel isa) noexcept {
  switch (isa) {
    case IsaLevel::Avx2: return detail::kFillAvx2;
    case IsaLevel::Sse2: return detail::kFillSse2;
    default: return detail::kFillScalar;
  }
}

void ensureWords(std::vector<std::uint64_t>& buf, std::size_t n) {
  if (buf.size() < n) buf.resize(n);
}

}  // namespace

SimdBatchSolver::SimdBatchSolver(IsaLevel isa)
    : isa_(isaSupported(isa) ? isa : IsaLevel::Scalar),
      lanes_(isaLanes(isa_)),
      fill_(fillFor(isa_)) {
  lane_state_.resize(static_cast<std::size_t>(lanes_));
}

int SimdBatchSolver::packGroup(genasm::Anchor anchor,
                               const WindowProblem* problems, std::size_t base,
                               std::size_t group, int& nw, int& n_max) {
  nw = 1;
  n_max = 0;
  int valid = 0;
  for (int l = 0; l < lanes_; ++l) {
    Lane& lane = lane_state_[static_cast<std::size_t>(l)];
    lane = Lane{};
    if (static_cast<std::size_t>(l) >= group) continue;
    const WindowProblem& p = problems[base + static_cast<std::size_t>(l)];
    lane.prob = &p;
    lane.n = static_cast<int>(p.text.size());
    lane.m = static_cast<int>(p.pattern.size());
    if (lane.m <= 0 || lane.m > kMaxPatternBits) continue;  // invalid lane
    lane.k = p.max_edits >= 0 ? p.max_edits
                              : genasm::autoEditCap(lane.n, lane.m, anchor);
    lane.valid = true;
    lane.active = true;
    ++valid;
    nw = std::max(nw, bitvector::wordsNeeded(lane.m));
    n_max = std::max(n_max, lane.n);
  }
  if (valid == 0) return 0;

  // Pack the per-column pattern-mask words, lane index innermost. Lanes
  // are padded with all-ones (active-low: "no match") past their own
  // text and in invalid slots; padded columns can never contaminate a
  // live lane's columns <= n because the recurrence only looks left.
  const std::size_t colstride =
      static_cast<std::size_t>(nw) * static_cast<std::size_t>(lanes_);
  const std::size_t pm_words = static_cast<std::size_t>(n_max) * colstride;
  ensureWords(pm_, pm_words);
  std::fill(pm_.begin(),
            pm_.begin() + static_cast<std::ptrdiff_t>(pm_words), ~0ULL);
  for (int l = 0; l < lanes_; ++l) {
    const Lane& lane = lane_state_[static_cast<std::size_t>(l)];
    if (!lane.valid) continue;
    // mask[c] is PM[c] for the reversed pattern: bit j == 0 iff
    // pattern_rev[j] == c, i.e. pattern[m-1-j] == c.
    std::uint64_t mask[common::kAlphabetSize][8];
    for (auto& row : mask) std::fill(row, row + nw, ~0ULL);
    const std::string_view pattern = lane.prob->pattern;
    for (int j = 0; j < lane.m; ++j) {
      mask[common::baseCode(pattern[static_cast<std::size_t>(lane.m - 1 - j)])]
          [j >> 6] &= ~(1ULL << (j & 63));
    }
    const std::string_view text = lane.prob->text;
    for (int i = 1; i <= lane.n; ++i) {
      const std::uint8_t c =
          common::baseCode(text[static_cast<std::size_t>(lane.n - i)]);
      std::uint64_t* dst =
          pm_.data() + static_cast<std::size_t>(i - 1) * colstride +
          static_cast<std::size_t>(l);
      for (int w = 0; w < nw; ++w) {
        dst[static_cast<std::size_t>(w) * lanes_] = mask[c][w];
      }
    }
  }
  return valid;
}

void SimdBatchSolver::runDistanceGroup(genasm::Anchor anchor,
                                       std::size_t group, int nw, int n_max,
                                       int valid) {
  (void)group;
  const std::size_t colstride =
      static_cast<std::size_t>(nw) * static_cast<std::size_t>(lanes_);
  const std::size_t row_words =
      static_cast<std::size_t>(n_max + 1) * colstride;
  ensureWords(row_a_, row_words);
  ensureWords(row_b_, row_words);
  std::uint64_t* cur = row_a_.data();
  std::uint64_t* prev = row_b_.data();
  const bool both = anchor == genasm::Anchor::BothEnds;

  int remaining = valid;
  for (int d = 0; remaining > 0; ++d) {
    int n_act = 0;
    for (const Lane& lane : lane_state_) {
      if (lane.active) n_act = std::max(n_act, lane.n);
    }
    for (int w = 0; w < nw; ++w) {
      const std::uint64_t v = onesAboveWord(d, w);
      std::uint64_t* dst = cur + static_cast<std::size_t>(w) * lanes_;
      for (int l = 0; l < lanes_; ++l) dst[l] = v;
    }
    fill_(detail::FillArgs{cur, prev, pm_.data(), n_act, nw, d, both});
    for (int l = 0; l < lanes_; ++l) {
      Lane& lane = lane_state_[static_cast<std::size_t>(l)];
      if (!lane.active) continue;
      const int mb = lane.m - 1;
      const std::uint64_t v =
          cur[(static_cast<std::size_t>(lane.n) * nw +
               static_cast<std::size_t>(mb >> 6)) *
                  lanes_ +
              static_cast<std::size_t>(l)];
      if (((v >> (mb & 63)) & 1) == 0) {
        lane.dmin = d;
        lane.active = false;
        --remaining;
      } else if (d == lane.k) {
        lane.dmin = -1;
        lane.active = false;
        --remaining;
      }
    }
    std::swap(cur, prev);
  }
}

void SimdBatchSolver::runWindowGroup(genasm::Anchor anchor, std::size_t group,
                                     int nw, int n_max, int valid,
                                     WindowOutcome* outs) {
  const std::size_t colstride =
      static_cast<std::size_t>(nw) * static_cast<std::size_t>(lanes_);
  const std::size_t row_words =
      static_cast<std::size_t>(n_max + 1) * colstride;
  const bool both = anchor == genasm::Anchor::BothEnds;

  // Level-major fill with per-level row persistence: the arena grows one
  // row at a time (monotonically across groups), so lanes that converge
  // early never claim deeper levels.
  int remaining = valid;
  for (int d = 0; remaining > 0; ++d) {
    ensureWords(rows_, static_cast<std::size_t>(d + 1) * row_words);
    std::uint64_t* cur = rows_.data() + static_cast<std::size_t>(d) * row_words;
    const std::uint64_t* prev =
        d > 0 ? rows_.data() + static_cast<std::size_t>(d - 1) * row_words
              : nullptr;
    int n_act = 0;
    for (const Lane& lane : lane_state_) {
      if (lane.active) n_act = std::max(n_act, lane.n);
    }
    for (int w = 0; w < nw; ++w) {
      const std::uint64_t v = onesAboveWord(d, w);
      std::uint64_t* dst = cur + static_cast<std::size_t>(w) * lanes_;
      for (int l = 0; l < lanes_; ++l) dst[l] = v;
    }
    fill_(detail::FillArgs{cur, prev, pm_.data(), n_act, nw, d, both});
    for (int l = 0; l < lanes_; ++l) {
      Lane& lane = lane_state_[static_cast<std::size_t>(l)];
      if (!lane.active) continue;
      const int mb = lane.m - 1;
      const std::uint64_t v =
          cur[(static_cast<std::size_t>(lane.n) * nw +
               static_cast<std::size_t>(mb >> 6)) *
                  lanes_ +
              static_cast<std::size_t>(l)];
      if (((v >> (mb & 63)) & 1) == 0) {
        lane.dmin = d;
        lane.active = false;
        --remaining;
      } else if (d == lane.k) {
        lane.dmin = -1;
        lane.active = false;
        --remaining;
      }
    }
  }

  for (int l = 0; l < lanes_ && static_cast<std::size_t>(l) < group; ++l) {
    const Lane& lane = lane_state_[static_cast<std::size_t>(l)];
    WindowOutcome& out = outs[l];
    out = WindowOutcome{};
    if (!lane.valid || lane.dmin < 0) continue;  // ok stays false
    out.distance = lane.dmin;
    out.ok = tracebackLane(anchor, lane, l, nw, n_max, out);
  }
}

/// Per-lane scalar traceback over the persisted SoA rows — the improved
/// solver's compressed-entry walk (recompute transition bits from stored
/// R values), counting committed operations instead of building a cigar.
/// Identical operation sequence, therefore identical edit totals and
/// consumption, for both window solvers (their tracebacks agree bit for
/// bit; tests pin this).
///
/// LOCKSTEP WARNING: this walk must mirror ImprovedWindowSolver::
/// traceback (and the baseline's) exactly — transition-bit derivation,
/// the match > del > ins > sub priority, and the pl==0 / i==0 /
/// tb_op_limit branches. Any change to a solver traceback must be
/// mirrored here or the batched distance march silently diverges from
/// the scalar flows (test_simd's window-solve and march parity suites
/// are the tripwire).
bool SimdBatchSolver::tracebackLane(genasm::Anchor anchor, const Lane& lane,
                                    int lane_idx, int nw, int n_max,
                                    WindowOutcome& out) const {
  const std::size_t colstride =
      static_cast<std::size_t>(nw) * static_cast<std::size_t>(lanes_);
  const std::size_t row_words =
      static_cast<std::size_t>(n_max + 1) * colstride;
  const std::string_view text = lane.prob->text;
  const std::string_view pattern = lane.prob->pattern;
  const int n = lane.n;
  const int m = lane.m;

  // Stored R[col][lvl] bit, active-low (see ImprovedWindowSolver::
  // rBitIsOne): bitidx -1 is the empty-prefix state, column 0 is
  // analytic (onesAbove(lvl)).
  const auto rBitIsOne = [&](int col, int lvl, int bitidx) -> bool {
    if (bitidx < 0) return genasm::shiftInOne(anchor, col, lvl);
    if (col == 0) return bitidx >= lvl;
    const std::uint64_t v =
        rows_[static_cast<std::size_t>(lvl) * row_words +
              (static_cast<std::size_t>(col) * nw +
               static_cast<std::size_t>(bitidx >> 6)) *
                  lanes_ +
              static_cast<std::size_t>(lane_idx)];
    return ((v >> (bitidx & 63)) & 1) != 0;
  };

  int i = n;
  int pl = m;
  int d = lane.dmin;
  const int limit_ops = lane.prob->tb_op_limit;
  const std::uint64_t limit =
      limit_ops < 0 ? ~0ULL : static_cast<std::uint64_t>(limit_ops);
  std::uint64_t ops = 0;
  const bool both = anchor == genasm::Anchor::BothEnds;

  while (pl > 0 || (both && i > 0)) {
    if (ops >= limit) return true;  // truncated (traceback incomplete)
    if (pl == 0) {
      // BothEnds tail: unconsumed reversed-text prefix becomes trailing
      // deletions in original orientation.
      const std::uint64_t take =
          std::min<std::uint64_t>(static_cast<std::uint64_t>(i), limit - ops);
      out.text_consumed += take;
      out.edits += take;
      ops += take;
      i -= static_cast<int>(take);
      d -= static_cast<int>(take);
      continue;
    }
    if (i == 0) {
      if (d >= 1 && pl <= d) {
        out.pattern_consumed += 1;
        out.edits += 1;
        --pl;
        --d;
        ++ops;
        continue;
      }
      return false;  // inconsistent table (must not happen)
    }
    // text_rev[i-1] == text[n-i]; pattern_rev[pl-1] == pattern[m-pl].
    const bool match_ok =
        common::baseCode(pattern[static_cast<std::size_t>(m - pl)]) ==
            common::baseCode(text[static_cast<std::size_t>(n - i)]) &&
        !rBitIsOne(i - 1, d, pl - 2);
    const bool del_ok = d >= 1 && !rBitIsOne(i - 1, d - 1, pl - 1);
    const bool ins_ok = d >= 1 && !rBitIsOne(i, d - 1, pl - 2);
    const bool sub_ok = d >= 1 && !rBitIsOne(i - 1, d - 1, pl - 2);
    // Priority match > del > ins > sub — identical to both solvers'
    // tracebacks (indels commit eagerly; see the baseline's note).
    if (match_ok) {
      out.text_consumed += 1;
      out.pattern_consumed += 1;
      --i;
      --pl;
    } else if (del_ok) {
      out.text_consumed += 1;
      out.edits += 1;
      --i;
      --d;
    } else if (ins_ok) {
      out.pattern_consumed += 1;
      out.edits += 1;
      --pl;
      --d;
    } else if (sub_ok) {
      out.text_consumed += 1;
      out.pattern_consumed += 1;
      out.edits += 1;
      --i;
      --pl;
      --d;
    } else {
      return false;  // inconsistent table (must not happen)
    }
    ++ops;
  }
  return true;
}

void SimdBatchSolver::solveDistanceBatch(genasm::Anchor anchor,
                                         const WindowProblem* problems,
                                         std::size_t count, int* results) {
  for (std::size_t base = 0; base < count;
       base += static_cast<std::size_t>(lanes_)) {
    const std::size_t group =
        std::min<std::size_t>(static_cast<std::size_t>(lanes_), count - base);
    int nw = 1;
    int n_max = 0;
    const int valid = packGroup(anchor, problems, base, group, nw, n_max);
    if (valid > 0) runDistanceGroup(anchor, group, nw, n_max, valid);
    for (std::size_t l = 0; l < group; ++l) {
      results[base + l] = lane_state_[l].valid ? lane_state_[l].dmin : -1;
    }
  }
}

void SimdBatchSolver::solveWindowBatch(genasm::Anchor anchor,
                                       const WindowProblem* problems,
                                       std::size_t count, WindowOutcome* outs) {
  for (std::size_t base = 0; base < count;
       base += static_cast<std::size_t>(lanes_)) {
    const std::size_t group =
        std::min<std::size_t>(static_cast<std::size_t>(lanes_), count - base);
    int nw = 1;
    int n_max = 0;
    const int valid = packGroup(anchor, problems, base, group, nw, n_max);
    if (valid > 0) {
      runWindowGroup(anchor, group, nw, n_max, valid, outs + base);
    } else {
      for (std::size_t l = 0; l < group; ++l) outs[base + l] = WindowOutcome{};
    }
  }
}

}  // namespace gx::simd
