#pragma once
// Multi-contig reference model: a contig table (name, length, global
// offset) over one contiguous backing buffer, as real references are
// multi-sequence FASTA files (chromosomes/contigs). Mirrors minimap2's
// contig-table design: seeding and chaining run in a single global
// coordinate space (one index, one anchor sort), while everything the
// user sees — PAF target names, lengths, coordinates — is contig-local.
// globalToLocal()/localToGlobal() convert between the two in O(log C).
//
// The backing buffer comes in two flavours behind the same API: owned
// (addContig copies into an internal string — the build-from-FASTA path)
// and external (fromExternal adopts a caller-managed buffer, e.g. the
// sequence section of a mmap'd index file, so a genome-scale reference
// costs no copy at load). Every accessor reads through view(), so the
// two flavours are indistinguishable downstream.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "genasmx/io/fastx.hpp"

namespace gx::refmodel {

struct Contig {
  std::string name;
  std::size_t offset = 0;  ///< start in the backing buffer (global coord)
  std::size_t length = 0;
};

/// A global position resolved to its contig.
struct ContigPos {
  std::uint32_t contig = 0;
  std::size_t pos = 0;  ///< contig-local offset
};

class Reference {
 public:
  Reference() = default;

  /// Single-contig convenience (the pre-multi-contig flat-genome shape).
  Reference(std::string name, std::string seq);

  /// Adopt an external backing buffer (e.g. the sequence section of a
  /// mmap'd index file) without copying it. `contigs` must tile
  /// `backing` exactly: offsets strictly increasing from 0, each contig
  /// non-empty, lengths summing to backing.size(). Throws
  /// std::invalid_argument otherwise. The caller keeps `backing` alive
  /// for the Reference's lifetime; addContig on the result throws.
  [[nodiscard]] static Reference fromExternal(std::string_view backing,
                                              std::vector<Contig> contigs);

  /// Append a contig (owned mode only). Throws std::invalid_argument for
  /// an empty sequence (a zero-length contig would alias its successor's
  /// global offset) and std::logic_error on an external-backed Reference.
  void addContig(std::string name, std::string_view seq);

  /// True when the backing buffer is caller-managed (fromExternal).
  [[nodiscard]] bool externallyBacked() const noexcept {
    return ext_.data() != nullptr;
  }

  [[nodiscard]] std::size_t size() const noexcept { return view().size(); }
  [[nodiscard]] bool empty() const noexcept { return contigs_.empty(); }
  [[nodiscard]] std::uint32_t contigCount() const noexcept {
    return static_cast<std::uint32_t>(contigs_.size());
  }
  [[nodiscard]] const std::vector<Contig>& contigs() const noexcept {
    return contigs_;
  }
  [[nodiscard]] const Contig& contig(std::uint32_t id) const {
    return contigs_.at(id);
  }
  [[nodiscard]] const std::string& name(std::uint32_t id) const {
    return contigs_.at(id).name;
  }

  /// The whole backing buffer (contigs concatenated, global coords).
  [[nodiscard]] std::string_view view() const noexcept {
    return ext_.data() != nullptr ? ext_ : std::string_view(seq_);
  }

  /// The text of one contig (a view into the backing buffer).
  [[nodiscard]] std::string_view contigView(std::uint32_t id) const {
    const Contig& c = contigs_.at(id);
    return view().substr(c.offset, c.length);
  }

  /// Resolve a global position to (contig, local offset). O(log C).
  /// Throws std::out_of_range for global >= size().
  [[nodiscard]] ContigPos globalToLocal(std::size_t global) const;

  /// Contig id containing a global position. O(log C).
  [[nodiscard]] std::uint32_t contigOf(std::size_t global) const {
    return globalToLocal(global).contig;
  }

  /// (contig, local) -> global coordinate. Throws std::out_of_range for
  /// an unknown contig or local > length (== length is allowed so
  /// half-open interval ends convert cleanly).
  [[nodiscard]] std::size_t localToGlobal(std::uint32_t id,
                                          std::size_t local) const;

 private:
  std::string seq_;              ///< owned mode: all contigs, concatenated
  std::string_view ext_;         ///< external mode: caller-managed buffer
  std::vector<Contig> contigs_;  ///< offsets strictly increasing
};

/// Build a Reference from parsed FASTA records (record order preserved).
/// Throws std::invalid_argument on an empty record set, an empty contig
/// sequence, or a duplicate contig name (PAF target names must resolve
/// to one contig).
[[nodiscard]] Reference referenceFromFastx(
    const std::vector<io::FastxRecord>& records);

}  // namespace gx::refmodel
