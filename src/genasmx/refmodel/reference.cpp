#include "genasmx/refmodel/reference.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace gx::refmodel {

Reference::Reference(std::string name, std::string seq) {
  if (seq.empty()) {
    throw std::invalid_argument("Reference: empty contig '" + name + "'");
  }
  Contig c;
  c.name = std::move(name);
  c.offset = 0;
  c.length = seq.size();
  seq_ = std::move(seq);
  contigs_.push_back(std::move(c));
}

void Reference::addContig(std::string name, std::string_view seq) {
  if (externallyBacked()) {
    throw std::logic_error(
        "Reference::addContig: external backing is immutable");
  }
  if (seq.empty()) {
    throw std::invalid_argument("Reference: empty contig '" + name + "'");
  }
  Contig c;
  c.name = std::move(name);
  c.offset = seq_.size();
  c.length = seq.size();
  seq_.append(seq);
  contigs_.push_back(std::move(c));
}

Reference Reference::fromExternal(std::string_view backing,
                                  std::vector<Contig> contigs) {
  if (backing.empty() || contigs.empty()) {
    throw std::invalid_argument(
        "Reference::fromExternal: empty backing or contig table");
  }
  std::size_t expect = 0;
  for (const Contig& c : contigs) {
    if (c.length == 0) {
      throw std::invalid_argument("Reference::fromExternal: empty contig '" +
                                  c.name + "'");
    }
    if (c.offset != expect) {
      throw std::invalid_argument(
          "Reference::fromExternal: contig '" + c.name +
          "' does not tile the backing buffer (offset " +
          std::to_string(c.offset) + ", expected " + std::to_string(expect) +
          ")");
    }
    expect += c.length;
  }
  if (expect != backing.size()) {
    throw std::invalid_argument(
        "Reference::fromExternal: contig lengths sum to " +
        std::to_string(expect) + " but the backing buffer holds " +
        std::to_string(backing.size()) + " bytes");
  }
  Reference ref;
  ref.ext_ = backing;
  ref.contigs_ = std::move(contigs);
  return ref;
}

ContigPos Reference::globalToLocal(std::size_t global) const {
  if (global >= size()) {
    throw std::out_of_range("Reference::globalToLocal: position past end");
  }
  // Last contig whose offset is <= global: upper_bound on offsets, step
  // back one. Offsets are strictly increasing (no empty contigs).
  const auto it = std::upper_bound(
      contigs_.begin(), contigs_.end(), global,
      [](std::size_t pos, const Contig& c) { return pos < c.offset; });
  const std::uint32_t id =
      static_cast<std::uint32_t>((it - contigs_.begin()) - 1);
  return ContigPos{id, global - contigs_[id].offset};
}

std::size_t Reference::localToGlobal(std::uint32_t id,
                                     std::size_t local) const {
  const Contig& c = contigs_.at(id);
  if (local > c.length) {
    throw std::out_of_range("Reference::localToGlobal: position past contig");
  }
  return c.offset + local;
}

Reference referenceFromFastx(const std::vector<io::FastxRecord>& records) {
  if (records.empty()) {
    throw std::invalid_argument("referenceFromFastx: no records");
  }
  Reference ref;
  std::unordered_set<std::string_view> seen;
  for (const auto& rec : records) {
    if (!seen.insert(rec.name).second) {
      throw std::invalid_argument("referenceFromFastx: duplicate contig '" +
                                  rec.name + "'");
    }
    ref.addContig(rec.name, rec.seq);
  }
  return ref;
}

}  // namespace gx::refmodel
