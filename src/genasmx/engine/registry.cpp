#include "genasmx/engine/registry.hpp"

#include <memory>
#include <stdexcept>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "genasmx/bitvector/bitvector.hpp"
#include "genasmx/genasm/genasm_baseline.hpp"
#include "genasmx/refdp/affine_dp.hpp"
#include "genasmx/refdp/edit_dp.hpp"
#include "genasmx/simd/batch_solver.hpp"

namespace gx::engine {
namespace {

using common::AlignmentResult;

// Query lengths the single-window global GenASM solvers can hold; longer
// queries silently switch to the windowed driver with the same config.
constexpr std::size_t kGlobalGenasmMax = bitvector::BitVec<8>::kBits;

/// Run fn with the bit-width as an integral_constant, so a runtime
/// wordsNeeded() value selects the right solver instantiation.
template <class Fn>
decltype(auto) withWidth(int nw, Fn&& fn) {
  switch (nw) {
    case 1: return fn(std::integral_constant<int, 1>{});
    case 2: return fn(std::integral_constant<int, 2>{});
    case 3: return fn(std::integral_constant<int, 3>{});
    case 4: return fn(std::integral_constant<int, 4>{});
    case 5: return fn(std::integral_constant<int, 5>{});
    case 6: return fn(std::integral_constant<int, 6>{});
    case 7: return fn(std::integral_constant<int, 7>{});
    default: return fn(std::integral_constant<int, 8>{});
  }
}

/// Lazily-constructed per-bit-width solver instances. Each aligner owns
/// one, so solver scratch arenas persist across align()/distance() calls
/// — this is the per-worker reuse AlignmentEngine's spare pool relies on.
template <template <int> class S>
struct PerWidthSolvers {
  std::tuple<std::unique_ptr<S<1>>, std::unique_ptr<S<2>>,
             std::unique_ptr<S<3>>, std::unique_ptr<S<4>>,
             std::unique_ptr<S<5>>, std::unique_ptr<S<6>>,
             std::unique_ptr<S<7>>, std::unique_ptr<S<8>>>
      slots;

  template <int NW, class... Args>
  S<NW>& get(Args&&... args) {
    auto& p = std::get<NW - 1>(slots);
    if (!p) p = std::make_unique<S<NW>>(std::forward<Args>(args)...);
    return *p;
  }
};

/// Per-aligner arenas for the batched GenASM routing: the global-vs-
/// march task split, result staging, and the march's own scratch. Owned
/// by each GenASM aligner instance, so steady-state batches through the
/// engine's spare-pooled workers grow nothing (allocs() counts growth
/// events; the bench asserts it stays flat).
struct GenasmBatchScratch {
  std::vector<simd::WindowProblem> globals;
  std::vector<std::size_t> global_idx;
  std::vector<core::BatchedDistanceRequest> d_marches;
  std::vector<core::BatchedAlignRequest> a_marches;
  std::vector<std::size_t> march_idx;
  std::vector<int> ints;                        ///< distance staging
  std::vector<genasm::WindowResult> wrs;        ///< global align staging
  std::vector<common::AlignmentResult> aligns;  ///< march align staging
  core::WindowedBatchScratch march;

  [[nodiscard]] std::uint64_t allocs() const noexcept {
    return grow_events_ + march.allocs();
  }

  template <class T>
  void ensure(std::vector<T>& buf, std::size_t n) {
    if (buf.capacity() < n) ++grow_events_;
    if (buf.size() < n) buf.resize(n);
  }

 private:
  std::uint64_t grow_events_ = 0;
};

/// Shared batched-distance routing for the GenASM backends. Tasks whose
/// query fits a single global window go through the lane-parallel
/// distance kernel (solveDistanceBatch == scalar solveDistance per
/// lane); the rest march through core::distanceWindowedBatch, which
/// packs the current windows of all live tasks into lanes. The
/// windowed-* backends always march, mirroring their scalar distance().
/// Results are identical to the scalar per-task loop in every case.
void genasmDistanceBatch(simd::SimdBatchSolver& solver,
                         const core::WindowConfig& wcfg, int max_edits,
                         bool windowed_only, const DistanceTask* tasks,
                         std::size_t count, int* results,
                         GenasmBatchScratch& sc) {
  // Capacity for the split is bounded by count; clear() preserves it, so
  // the push_backs below never reallocate once the arena is warm.
  sc.ensure(sc.globals, count);
  sc.ensure(sc.global_idx, count);
  sc.ensure(sc.d_marches, count);
  sc.ensure(sc.march_idx, count);
  sc.globals.clear();
  sc.global_idx.clear();
  sc.d_marches.clear();
  sc.march_idx.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const DistanceTask& t = tasks[i];
    if (windowed_only || t.query.size() > kGlobalGenasmMax) {
      sc.d_marches.push_back({t.target, t.query, t.cap});
      sc.march_idx.push_back(i);
      continue;
    }
    if (t.query.empty()) {
      // distanceGlobalWith's degenerate case: delete the whole target.
      const int d = static_cast<int>(t.target.size());
      results[i] = (t.cap >= 0 && d > t.cap) ? -1 : d;
      continue;
    }
    // Fold the result cap into the level cap, as distanceGlobalWith does:
    // hopeless problems stop at cap+1 levels.
    int k = max_edits >= 0
                ? max_edits
                : genasm::autoEditCap(static_cast<int>(t.target.size()),
                                      static_cast<int>(t.query.size()),
                                      genasm::Anchor::BothEnds);
    if (t.cap >= 0 && t.cap < k) k = t.cap;
    sc.globals.push_back({t.target, t.query, k, -1});
    sc.global_idx.push_back(i);
  }
  if (!sc.globals.empty()) {
    sc.ensure(sc.ints, sc.globals.size());
    solver.solveDistanceBatch(genasm::Anchor::BothEnds, sc.globals.data(),
                              sc.globals.size(), sc.ints.data());
    for (std::size_t j = 0; j < sc.global_idx.size(); ++j) {
      results[sc.global_idx[j]] = sc.ints[j];
    }
  }
  if (!sc.d_marches.empty()) {
    sc.ensure(sc.ints, sc.d_marches.size());
    core::distanceWindowedBatch(solver, wcfg, sc.d_marches.data(),
                                sc.d_marches.size(), sc.ints.data(), sc.march);
    for (std::size_t j = 0; j < sc.march_idx.size(); ++j) {
      results[sc.march_idx[j]] = sc.ints[j];
    }
  }
}

/// Batched-alignment routing, mirroring genasmDistanceBatch: global
/// problems run on the lane solver's alignBatch (== alignGlobalWith per
/// lane, cigar included), the rest — everything, for the windowed-*
/// backends — march through core::alignWindowedBatch. results[i] is
/// bit-identical to the backend's scalar align(tasks[i]) in every case.
void genasmAlignBatch(simd::SimdBatchSolver& solver,
                      const core::WindowConfig& wcfg, int max_edits,
                      bool windowed_only, const AlignmentTask* tasks,
                      std::size_t count, AlignmentResult* results,
                      GenasmBatchScratch& sc) {
  sc.ensure(sc.globals, count);
  sc.ensure(sc.global_idx, count);
  sc.ensure(sc.a_marches, count);
  sc.ensure(sc.march_idx, count);
  sc.globals.clear();
  sc.global_idx.clear();
  sc.a_marches.clear();
  sc.march_idx.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const AlignmentTask& t = tasks[i];
    if (windowed_only || t.query.size() > kGlobalGenasmMax) {
      sc.a_marches.push_back({t.target, t.query});
      sc.march_idx.push_back(i);
      continue;
    }
    AlignmentResult& out = results[i];
    out.ok = false;
    out.edit_distance = -1;
    out.score = 0;
    out.cigar.clear();
    if (t.query.empty()) {
      // alignGlobalWith's degenerate case: delete the whole target.
      out.ok = true;
      out.edit_distance = static_cast<int>(t.target.size());
      out.score = -out.edit_distance;
      if (!t.target.empty()) {
        out.cigar.push(common::EditOp::Deletion,
                       static_cast<std::uint32_t>(t.target.size()));
      }
      continue;
    }
    sc.globals.push_back({t.target, t.query, max_edits, -1});
    sc.global_idx.push_back(i);
  }
  if (!sc.globals.empty()) {
    sc.ensure(sc.wrs, sc.globals.size());
    solver.alignBatch(genasm::Anchor::BothEnds, sc.globals.data(),
                      sc.globals.size(), sc.wrs.data());
    for (std::size_t j = 0; j < sc.global_idx.size(); ++j) {
      const genasm::WindowResult& wr = sc.wrs[j];
      AlignmentResult& out = results[sc.global_idx[j]];
      out.ok = false;
      out.edit_distance = -1;
      out.score = 0;
      out.cigar.clear();
      if (!wr.ok) continue;
      out.ok = true;
      out.edit_distance = wr.distance;
      out.score = -wr.distance;
      out.cigar = wr.cigar;
    }
  }
  if (!sc.a_marches.empty()) {
    sc.ensure(sc.aligns, sc.a_marches.size());
    core::alignWindowedBatch(solver, wcfg, sc.a_marches.data(),
                             sc.a_marches.size(), sc.aligns.data(), sc.march);
    for (std::size_t j = 0; j < sc.march_idx.size(); ++j) {
      results[sc.march_idx[j]] = sc.aligns[j];
    }
  }
}

class GlobalBaselineAligner final : public Aligner {
 public:
  // Window geometry is validated up front: the >512 bp fallback would
  // otherwise surface the validate() throw from a worker thread.
  explicit GlobalBaselineAligner(const AlignerConfig& cfg) : cfg_(cfg) {
    cfg_.window.validate();
  }
  AlignmentResult align(std::string_view t, std::string_view q) override {
    if (q.size() <= kGlobalGenasmMax) {
      return withWidth(
          bitvector::wordsNeeded(static_cast<int>(q.size())), [&](auto nw) {
            return genasm::alignGlobalWith(solvers_.template get<nw()>(),
                                           bufs_.t_rev, bufs_.q_rev, t, q,
                                           cfg_.max_edits);
          });
    }
    return withWidth(bitvector::wordsNeeded(cfg_.window.window), [&](auto nw) {
      return core::alignWindowed(solvers_.template get<nw()>(), t, q,
                                 cfg_.window, bufs_);
    });
  }
  int distance(std::string_view t, std::string_view q, int cap) override {
    if (q.size() <= kGlobalGenasmMax) {
      return withWidth(
          bitvector::wordsNeeded(static_cast<int>(q.size())), [&](auto nw) {
            return genasm::distanceGlobalWith(solvers_.template get<nw()>(),
                                              bufs_.t_rev, bufs_.q_rev, t, q,
                                              cfg_.max_edits, cap);
          });
    }
    return withWidth(bitvector::wordsNeeded(cfg_.window.window), [&](auto nw) {
      return core::distanceWindowed(solvers_.template get<nw()>(), t, q,
                                    cfg_.window, cap, bufs_);
    });
  }
  void distanceBatch(const DistanceTask* tasks, std::size_t count,
                     int* results) override {
    genasmDistanceBatch(simd_, cfg_.window, cfg_.max_edits,
                        /*windowed_only=*/false, tasks, count, results,
                        batch_);
  }
  void alignBatch(const AlignmentTask* tasks, std::size_t count,
                  AlignmentResult* results) override {
    genasmAlignBatch(simd_, cfg_.window, cfg_.max_edits,
                     /*windowed_only=*/false, tasks, count, results, batch_);
  }
  std::string_view name() const noexcept override { return "baseline"; }

 private:
  AlignerConfig cfg_;
  PerWidthSolvers<genasm::BaselineWindowSolver> solvers_;
  core::WindowBuffers bufs_;
  simd::SimdBatchSolver simd_;
  GenasmBatchScratch batch_;
};

class GlobalImprovedAligner final : public Aligner {
 public:
  explicit GlobalImprovedAligner(const AlignerConfig& cfg) : cfg_(cfg) {
    cfg_.window.validate();
  }
  AlignmentResult align(std::string_view t, std::string_view q) override {
    if (q.size() <= kGlobalGenasmMax) {
      return withWidth(
          bitvector::wordsNeeded(static_cast<int>(q.size())), [&](auto nw) {
            return genasm::alignGlobalWith(
                solvers_.template get<nw()>(cfg_.improved), bufs_.t_rev,
                bufs_.q_rev, t, q, cfg_.max_edits);
          });
    }
    return withWidth(bitvector::wordsNeeded(cfg_.window.window), [&](auto nw) {
      return core::alignWindowed(solvers_.template get<nw()>(cfg_.improved),
                                 t, q, cfg_.window, bufs_);
    });
  }
  int distance(std::string_view t, std::string_view q, int cap) override {
    if (q.size() <= kGlobalGenasmMax) {
      return withWidth(
          bitvector::wordsNeeded(static_cast<int>(q.size())), [&](auto nw) {
            return genasm::distanceGlobalWith(
                solvers_.template get<nw()>(cfg_.improved), bufs_.t_rev,
                bufs_.q_rev, t, q, cfg_.max_edits, cap);
          });
    }
    return withWidth(bitvector::wordsNeeded(cfg_.window.window), [&](auto nw) {
      return core::distanceWindowed(solvers_.template get<nw()>(cfg_.improved),
                                    t, q, cfg_.window, cap, bufs_);
    });
  }
  void distanceBatch(const DistanceTask* tasks, std::size_t count,
                     int* results) override {
    genasmDistanceBatch(simd_, cfg_.window, cfg_.max_edits,
                        /*windowed_only=*/false, tasks, count, results,
                        batch_);
  }
  void alignBatch(const AlignmentTask* tasks, std::size_t count,
                  AlignmentResult* results) override {
    genasmAlignBatch(simd_, cfg_.window, cfg_.max_edits,
                     /*windowed_only=*/false, tasks, count, results, batch_);
  }
  std::string_view name() const noexcept override { return "improved"; }

 private:
  AlignerConfig cfg_;
  PerWidthSolvers<core::ImprovedWindowSolver> solvers_;
  core::WindowBuffers bufs_;
  simd::SimdBatchSolver simd_;
  GenasmBatchScratch batch_;
};

class WindowedBaselineAligner final : public Aligner {
 public:
  explicit WindowedBaselineAligner(const AlignerConfig& cfg) : cfg_(cfg) {
    cfg_.window.validate();
  }
  AlignmentResult align(std::string_view t, std::string_view q) override {
    return withWidth(bitvector::wordsNeeded(cfg_.window.window), [&](auto nw) {
      return core::alignWindowed(solvers_.template get<nw()>(), t, q,
                                 cfg_.window, bufs_);
    });
  }
  int distance(std::string_view t, std::string_view q, int cap) override {
    return withWidth(bitvector::wordsNeeded(cfg_.window.window), [&](auto nw) {
      return core::distanceWindowed(solvers_.template get<nw()>(), t, q,
                                    cfg_.window, cap, bufs_);
    });
  }
  void distanceBatch(const DistanceTask* tasks, std::size_t count,
                     int* results) override {
    genasmDistanceBatch(simd_, cfg_.window, cfg_.max_edits,
                        /*windowed_only=*/true, tasks, count, results, batch_);
  }
  void alignBatch(const AlignmentTask* tasks, std::size_t count,
                  AlignmentResult* results) override {
    genasmAlignBatch(simd_, cfg_.window, cfg_.max_edits,
                     /*windowed_only=*/true, tasks, count, results, batch_);
  }
  std::string_view name() const noexcept override {
    return "windowed-baseline";
  }

 private:
  AlignerConfig cfg_;
  PerWidthSolvers<genasm::BaselineWindowSolver> solvers_;
  core::WindowBuffers bufs_;
  simd::SimdBatchSolver simd_;
  GenasmBatchScratch batch_;
};

class WindowedImprovedAligner final : public Aligner {
 public:
  explicit WindowedImprovedAligner(const AlignerConfig& cfg) : cfg_(cfg) {
    cfg_.window.validate();
  }
  AlignmentResult align(std::string_view t, std::string_view q) override {
    return withWidth(bitvector::wordsNeeded(cfg_.window.window), [&](auto nw) {
      return core::alignWindowed(solvers_.template get<nw()>(cfg_.improved),
                                 t, q, cfg_.window, bufs_);
    });
  }
  int distance(std::string_view t, std::string_view q, int cap) override {
    return withWidth(bitvector::wordsNeeded(cfg_.window.window), [&](auto nw) {
      return core::distanceWindowed(solvers_.template get<nw()>(cfg_.improved),
                                    t, q, cfg_.window, cap, bufs_);
    });
  }
  void distanceBatch(const DistanceTask* tasks, std::size_t count,
                     int* results) override {
    genasmDistanceBatch(simd_, cfg_.window, cfg_.max_edits,
                        /*windowed_only=*/true, tasks, count, results, batch_);
  }
  void alignBatch(const AlignmentTask* tasks, std::size_t count,
                  AlignmentResult* results) override {
    genasmAlignBatch(simd_, cfg_.window, cfg_.max_edits,
                     /*windowed_only=*/true, tasks, count, results, batch_);
  }
  std::string_view name() const noexcept override {
    return "windowed-improved";
  }

 private:
  AlignerConfig cfg_;
  PerWidthSolvers<core::ImprovedWindowSolver> solvers_;
  core::WindowBuffers bufs_;
  simd::SimdBatchSolver simd_;
  GenasmBatchScratch batch_;
};

class MyersBackend final : public Aligner {
 public:
  explicit MyersBackend(const AlignerConfig& cfg) : aligner_(cfg.myers) {}
  AlignmentResult align(std::string_view t, std::string_view q) override {
    return aligner_.align(t, q);
  }
  int distance(std::string_view t, std::string_view q, int cap) override {
    const int d = aligner_.distance(t, q);  // bit-parallel, no traceback
    if (d < 0) return -1;
    return (cap >= 0 && d > cap) ? -1 : d;
  }
  std::string_view name() const noexcept override { return "myers"; }

 private:
  myers::MyersAligner aligner_;
};

class KswBackend final : public Aligner {
 public:
  explicit KswBackend(const AlignerConfig& cfg) : aligner_(cfg.ksw) {}
  AlignmentResult align(std::string_view t, std::string_view q) override {
    return aligner_.align(t, q);
  }
  std::string_view name() const noexcept override { return "ksw"; }

 private:
  ksw::KswAligner aligner_;
};

class EditDpBackend final : public Aligner {
 public:
  explicit EditDpBackend(const AlignerConfig&) {}
  AlignmentResult align(std::string_view t, std::string_view q) override {
    return refdp::align(t, q);
  }
  int distance(std::string_view t, std::string_view q, int cap) override {
    // O(min(n,m)) space, no traceback; a cap selects the Ukkonen band.
    if (cap >= 0) return refdp::editDistanceBanded(t, q, cap);
    return refdp::editDistance(t, q);
  }
  std::string_view name() const noexcept override { return "edit-dp"; }
};

class AffineDpBackend final : public Aligner {
 public:
  explicit AffineDpBackend(const AlignerConfig& cfg)
      : params_(cfg.ksw.params) {}
  AlignmentResult align(std::string_view t, std::string_view q) override {
    return refdp::alignAffine(t, q, params_);
  }
  std::string_view name() const noexcept override { return "affine-dp"; }

 private:
  refdp::AffineParams params_;
};

}  // namespace

AlignerRegistry::AlignerRegistry() {
  add("baseline", "global unimproved GenASM (MICRO'20; windowed beyond 512 bp)",
      [](const AlignerConfig& cfg) -> AlignerPtr {
        return std::make_unique<GlobalBaselineAligner>(cfg);
      });
  add("improved", "global improved GenASM (windowed beyond 512 bp)",
      [](const AlignerConfig& cfg) -> AlignerPtr {
        return std::make_unique<GlobalImprovedAligner>(cfg);
      });
  add("windowed-baseline", "windowed unimproved GenASM (long reads)",
      [](const AlignerConfig& cfg) -> AlignerPtr {
        return std::make_unique<WindowedBaselineAligner>(cfg);
      });
  add("windowed-improved",
      "windowed improved GenASM — the paper's system (default)",
      [](const AlignerConfig& cfg) -> AlignerPtr {
        return std::make_unique<WindowedImprovedAligner>(cfg);
      });
  add("myers", "Myers bit-parallel + band doubling (Edlib-class)",
      [](const AlignerConfig& cfg) -> AlignerPtr {
        return std::make_unique<MyersBackend>(cfg);
      });
  add("ksw", "banded affine-gap DP (KSW2-class, minimap2's base aligner)",
      [](const AlignerConfig& cfg) -> AlignerPtr {
        return std::make_unique<KswBackend>(cfg);
      });
  add("edit-dp", "O(n*m) unit-cost reference DP (oracle)",
      [](const AlignerConfig& cfg) -> AlignerPtr {
        return std::make_unique<EditDpBackend>(cfg);
      });
  add("affine-dp", "O(n*m) Gotoh affine reference DP (oracle)",
      [](const AlignerConfig& cfg) -> AlignerPtr {
        return std::make_unique<AffineDpBackend>(cfg);
      });
}

AlignerRegistry& AlignerRegistry::instance() {
  static AlignerRegistry registry;
  return registry;
}

void AlignerRegistry::add(std::string name, std::string description,
                          Factory factory) {
  entries_[std::move(name)] =
      Entry{std::move(description), std::move(factory)};
}

bool AlignerRegistry::contains(std::string_view name) const noexcept {
  return entries_.find(name) != entries_.end();
}

AlignerPtr AlignerRegistry::create(std::string_view name,
                                   const AlignerConfig& cfg) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string msg = "unknown aligner backend '";
    msg += name;
    msg += "'; registered:";
    for (const auto& [key, entry] : entries_) {
      (void)entry;
      msg += ' ';
      msg += key;
    }
    throw std::invalid_argument(msg);
  }
  return it->second.factory(cfg);
}

std::vector<std::string> AlignerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    (void)entry;
    out.push_back(key);
  }
  return out;
}

std::string AlignerRegistry::description(std::string_view name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? std::string{} : it->second.description;
}

AlignerPtr makeAligner(std::string_view name, const AlignerConfig& cfg) {
  return AlignerRegistry::instance().create(name, cfg);
}

}  // namespace gx::engine
