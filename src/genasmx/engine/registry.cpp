#include "genasmx/engine/registry.hpp"

#include <stdexcept>
#include <utility>

#include "genasmx/bitvector/bitvector.hpp"
#include "genasmx/genasm/genasm_baseline.hpp"
#include "genasmx/refdp/affine_dp.hpp"
#include "genasmx/refdp/edit_dp.hpp"

namespace gx::engine {
namespace {

using common::AlignmentResult;

// Query lengths the single-window global GenASM solvers can hold; longer
// queries silently switch to the windowed driver with the same config.
constexpr std::size_t kGlobalGenasmMax = bitvector::BitVec<8>::kBits;

class GlobalBaselineAligner final : public Aligner {
 public:
  // Window geometry is validated up front: the >512 bp fallback would
  // otherwise surface the validate() throw from a worker thread.
  explicit GlobalBaselineAligner(const AlignerConfig& cfg) : cfg_(cfg) {
    cfg_.window.validate();
  }
  AlignmentResult align(std::string_view t, std::string_view q) override {
    if (q.size() <= kGlobalGenasmMax) {
      return genasm::alignGlobalBaseline(t, q, cfg_.max_edits);
    }
    return core::alignWindowedBaseline(t, q, cfg_.window);
  }
  std::string_view name() const noexcept override { return "baseline"; }

 private:
  AlignerConfig cfg_;
};

class GlobalImprovedAligner final : public Aligner {
 public:
  explicit GlobalImprovedAligner(const AlignerConfig& cfg) : cfg_(cfg) {
    cfg_.window.validate();
  }
  AlignmentResult align(std::string_view t, std::string_view q) override {
    if (q.size() <= kGlobalGenasmMax) {
      return core::alignGlobalImproved(t, q, cfg_.max_edits, cfg_.improved);
    }
    return core::alignWindowedImproved(t, q, cfg_.window, cfg_.improved);
  }
  std::string_view name() const noexcept override { return "improved"; }

 private:
  AlignerConfig cfg_;
};

template <int NW>
class WindowedBaselineAligner final : public Aligner {
 public:
  explicit WindowedBaselineAligner(const AlignerConfig& cfg) : cfg_(cfg) {}
  AlignmentResult align(std::string_view t, std::string_view q) override {
    return core::alignWindowed(solver_, t, q, cfg_.window);
  }
  std::string_view name() const noexcept override {
    return "windowed-baseline";
  }

 private:
  AlignerConfig cfg_;
  genasm::BaselineWindowSolver<NW> solver_;
};

template <int NW>
class WindowedImprovedAligner final : public Aligner {
 public:
  explicit WindowedImprovedAligner(const AlignerConfig& cfg)
      : cfg_(cfg), solver_(cfg.improved) {}
  AlignmentResult align(std::string_view t, std::string_view q) override {
    return core::alignWindowed(solver_, t, q, cfg_.window);
  }
  std::string_view name() const noexcept override {
    return "windowed-improved";
  }

 private:
  AlignerConfig cfg_;
  core::ImprovedWindowSolver<NW> solver_;
};

// The solver bit-width is fixed by the window geometry at construction,
// so the scratch buffers (DP rows, pattern masks) persist across align()
// calls — this is the per-worker reuse AlignmentEngine relies on.
template <template <int> class A>
AlignerPtr makeWindowed(const AlignerConfig& cfg) {
  cfg.window.validate();
  switch (bitvector::wordsNeeded(cfg.window.window)) {
    case 1: return std::make_unique<A<1>>(cfg);
    case 2: return std::make_unique<A<2>>(cfg);
    case 3: return std::make_unique<A<3>>(cfg);
    case 4: return std::make_unique<A<4>>(cfg);
    default: return std::make_unique<A<8>>(cfg);
  }
}

class MyersBackend final : public Aligner {
 public:
  explicit MyersBackend(const AlignerConfig& cfg) : aligner_(cfg.myers) {}
  AlignmentResult align(std::string_view t, std::string_view q) override {
    return aligner_.align(t, q);
  }
  int distance(std::string_view t, std::string_view q) override {
    return aligner_.distance(t, q);  // bit-parallel, no traceback storage
  }
  std::string_view name() const noexcept override { return "myers"; }

 private:
  myers::MyersAligner aligner_;
};

class KswBackend final : public Aligner {
 public:
  explicit KswBackend(const AlignerConfig& cfg) : aligner_(cfg.ksw) {}
  AlignmentResult align(std::string_view t, std::string_view q) override {
    return aligner_.align(t, q);
  }
  std::string_view name() const noexcept override { return "ksw"; }

 private:
  ksw::KswAligner aligner_;
};

class EditDpBackend final : public Aligner {
 public:
  explicit EditDpBackend(const AlignerConfig&) {}
  AlignmentResult align(std::string_view t, std::string_view q) override {
    return refdp::align(t, q);
  }
  int distance(std::string_view t, std::string_view q) override {
    return refdp::editDistance(t, q);  // O(min(n,m)) space, no traceback
  }
  std::string_view name() const noexcept override { return "edit-dp"; }
};

class AffineDpBackend final : public Aligner {
 public:
  explicit AffineDpBackend(const AlignerConfig& cfg)
      : params_(cfg.ksw.params) {}
  AlignmentResult align(std::string_view t, std::string_view q) override {
    return refdp::alignAffine(t, q, params_);
  }
  std::string_view name() const noexcept override { return "affine-dp"; }

 private:
  refdp::AffineParams params_;
};

}  // namespace

AlignerRegistry::AlignerRegistry() {
  add("baseline", "global unimproved GenASM (MICRO'20; windowed beyond 512 bp)",
      [](const AlignerConfig& cfg) -> AlignerPtr {
        return std::make_unique<GlobalBaselineAligner>(cfg);
      });
  add("improved", "global improved GenASM (windowed beyond 512 bp)",
      [](const AlignerConfig& cfg) -> AlignerPtr {
        return std::make_unique<GlobalImprovedAligner>(cfg);
      });
  add("windowed-baseline", "windowed unimproved GenASM (long reads)",
      [](const AlignerConfig& cfg) {
        return makeWindowed<WindowedBaselineAligner>(cfg);
      });
  add("windowed-improved",
      "windowed improved GenASM — the paper's system (default)",
      [](const AlignerConfig& cfg) {
        return makeWindowed<WindowedImprovedAligner>(cfg);
      });
  add("myers", "Myers bit-parallel + band doubling (Edlib-class)",
      [](const AlignerConfig& cfg) -> AlignerPtr {
        return std::make_unique<MyersBackend>(cfg);
      });
  add("ksw", "banded affine-gap DP (KSW2-class, minimap2's base aligner)",
      [](const AlignerConfig& cfg) -> AlignerPtr {
        return std::make_unique<KswBackend>(cfg);
      });
  add("edit-dp", "O(n*m) unit-cost reference DP (oracle)",
      [](const AlignerConfig& cfg) -> AlignerPtr {
        return std::make_unique<EditDpBackend>(cfg);
      });
  add("affine-dp", "O(n*m) Gotoh affine reference DP (oracle)",
      [](const AlignerConfig& cfg) -> AlignerPtr {
        return std::make_unique<AffineDpBackend>(cfg);
      });
}

AlignerRegistry& AlignerRegistry::instance() {
  static AlignerRegistry registry;
  return registry;
}

void AlignerRegistry::add(std::string name, std::string description,
                          Factory factory) {
  entries_[std::move(name)] =
      Entry{std::move(description), std::move(factory)};
}

bool AlignerRegistry::contains(std::string_view name) const noexcept {
  return entries_.find(name) != entries_.end();
}

AlignerPtr AlignerRegistry::create(std::string_view name,
                                   const AlignerConfig& cfg) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string msg = "unknown aligner backend '";
    msg += name;
    msg += "'; registered:";
    for (const auto& [key, entry] : entries_) {
      (void)entry;
      msg += ' ';
      msg += key;
    }
    throw std::invalid_argument(msg);
  }
  return it->second.factory(cfg);
}

std::vector<std::string> AlignerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    (void)entry;
    out.push_back(key);
  }
  return out;
}

std::string AlignerRegistry::description(std::string_view name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? std::string{} : it->second.description;
}

AlignerPtr makeAligner(std::string_view name, const AlignerConfig& cfg) {
  return AlignerRegistry::instance().create(name, cfg);
}

}  // namespace gx::engine
