#pragma once
// String-keyed factory for alignment backends. Runtime selection point
// for tools (--backend=), benches, and the AlignmentEngine.
//
// Built-in backends (registered on first use):
//   baseline           global unimproved GenASM (windowed beyond 512 bp)
//   improved           global improved GenASM (windowed beyond 512 bp)
//   windowed-baseline  windowed unimproved GenASM (long reads)
//   windowed-improved  windowed improved GenASM — the paper's system
//   myers              Myers bit-parallel + band doubling (Edlib-class)
//   ksw                banded affine DP (KSW2-class)
//   edit-dp            O(n*m) unit-cost reference DP (oracle)
//   affine-dp          O(n*m) Gotoh affine reference DP (oracle)
//
// Additional backends (GPU dispatch, remote shards, ...) register
// through add() without touching any consumer.

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "genasmx/engine/aligner.hpp"

namespace gx::engine {

class AlignerRegistry {
 public:
  using Factory = std::function<AlignerPtr(const AlignerConfig&)>;

  /// The process-wide registry, built-ins pre-registered. Registration
  /// is not synchronized: add backends during startup, before concurrent
  /// create() calls begin.
  [[nodiscard]] static AlignerRegistry& instance();

  /// Register (or replace) a backend.
  void add(std::string name, std::string description, Factory factory);

  [[nodiscard]] bool contains(std::string_view name) const noexcept;

  /// Instantiate a backend. Throws std::invalid_argument for an unknown
  /// name (the message lists the registered ones).
  [[nodiscard]] AlignerPtr create(std::string_view name,
                                  const AlignerConfig& cfg = {}) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// One-line human description of a backend ("" if unknown).
  [[nodiscard]] std::string description(std::string_view name) const;

 private:
  AlignerRegistry();

  struct Entry {
    std::string description;
    Factory factory;
  };
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Convenience: AlignerRegistry::instance().create(name, cfg).
[[nodiscard]] AlignerPtr makeAligner(std::string_view name,
                                     const AlignerConfig& cfg = {});

}  // namespace gx::engine
