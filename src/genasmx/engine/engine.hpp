#pragma once
// AlignmentEngine — the batched execution layer between the mapper and
// the solvers. Owns the thread pool, selects a backend by registry name,
// and runs deterministic batched alignment over mapper::AlignmentPairs:
// the embarrassingly-parallel outer loop the paper drives with 48 CPU
// threads, generalized over every registered backend.
//
// Layer stack:  io -> mapper -> engine -> solvers (genasm / core /
// myers / ksw / refdp). Consumers hold an engine (or a single Aligner
// from the registry) and never name concrete solver entry points.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "genasmx/engine/registry.hpp"
#include "genasmx/mapper/mapper.hpp"
#include "genasmx/util/thread_pool.hpp"

namespace gx::engine {

// AlignmentTask/DistanceTask live in aligner.hpp (via registry.hpp),
// next to the Aligner batch entry points that consume them.

struct EngineConfig {
  /// Registry name of the backend to run (see registry.hpp).
  std::string backend = "windowed-improved";
  AlignerConfig aligner{};
  /// Worker threads; 0 selects hardware concurrency.
  std::size_t threads = 0;
};

class AlignmentEngine {
 public:
  /// Throws std::invalid_argument for an unknown backend and propagates
  /// the backend's own config validation (e.g. bad window geometry).
  explicit AlignmentEngine(EngineConfig cfg = {});

  [[nodiscard]] const EngineConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::string_view backend() const noexcept {
    return cfg_.backend;
  }
  [[nodiscard]] std::size_t threads() const noexcept { return pool_.size(); }

  /// Align one pair on the calling thread (checks an aligner out of the
  /// engine's spare pool, so scratch is shared with alignBatch).
  [[nodiscard]] common::AlignmentResult align(std::string_view target,
                                              std::string_view query);

  /// Distance one pair on the calling thread (same spare-pool checkout).
  [[nodiscard]] int distance(std::string_view target, std::string_view query,
                             int cap = -1);

  /// Align every task; results[i] corresponds to tasks[i]. Deterministic:
  /// identical to the sequential loop regardless of thread count. Each
  /// worker hands its whole contiguous chunk to Aligner::alignBatch, so
  /// backends with a lane-parallel kernel (the GenASM family) pack the
  /// chunk's tasks into SIMD lane batches — results stay bit-identical
  /// to the per-task scalar loop by contract. The viewed storage must
  /// outlive the call.
  [[nodiscard]] std::vector<common::AlignmentResult> alignBatch(
      const std::vector<AlignmentTask>& tasks);

  /// Owning-pair convenience overload (same semantics).
  [[nodiscard]] std::vector<common::AlignmentResult> alignBatch(
      const std::vector<mapper::AlignmentPair>& pairs);

  /// Distance-score every task; results[i] is the edit distance of
  /// tasks[i] (or -1: no alignment, or above tasks[i].cap). Deterministic
  /// like alignBatch; the traceback-free fast path of the two-phase
  /// mapping flow. Each worker hands its whole contiguous chunk to
  /// Aligner::distanceBatch, so backends with a lane-parallel kernel
  /// (the GenASM family) pack the chunk's tasks into SIMD lane batches —
  /// results stay identical to the per-task scalar loop by contract.
  [[nodiscard]] std::vector<int> distanceBatch(
      const std::vector<DistanceTask>& tasks);

  /// RAII checkout of a worker aligner from the spare pool. Callers that
  /// run their own loops on the engine's pool (pipeline candidate
  /// scoring) hold one lease per chunk so solver scratch is reused
  /// without a pool round-trip per problem.
  class AlignerLease {
   public:
    explicit AlignerLease(AlignmentEngine& engine)
        : engine_(&engine), aligner_(engine.acquireAligner()) {}
    ~AlignerLease() {
      if (aligner_) engine_->releaseAligner(std::move(aligner_));
    }
    AlignerLease(const AlignerLease&) = delete;
    AlignerLease& operator=(const AlignerLease&) = delete;
    [[nodiscard]] Aligner* operator->() noexcept { return aligner_.get(); }
    [[nodiscard]] Aligner& operator*() noexcept { return *aligner_; }

    /// Destroy the leased aligner instead of recycling it. Called after
    /// the aligner threw mid-batch: its scratch state is unknown, and a
    /// half-written DP buffer returned to the spare pool would poison a
    /// later, unrelated batch.
    void poison() noexcept { aligner_.reset(); }

   private:
    AlignmentEngine* engine_;
    AlignerPtr aligner_;
  };

  /// The engine's worker pool, for callers (e.g. pipeline::MappingPipeline)
  /// that parallelize their own pre/post-processing around alignBatch()
  /// without spinning up a second competing pool.
  [[nodiscard]] util::ThreadPool& pool() noexcept { return pool_; }

  /// Tasks whose alignment failed even in single-task isolation; their
  /// results[i] slots carry ok=false (alignBatch) or -1 (distanceBatch).
  /// Cumulative over the engine's lifetime.
  [[nodiscard]] std::uint64_t taskFailures() const noexcept {
    return task_failures_.load(std::memory_order_relaxed);
  }
  /// Batched chunk calls that threw and were re-run per task. A nonzero
  /// count with zero taskFailures() means every task recovered on the
  /// isolation rerun.
  [[nodiscard]] std::uint64_t batchFaults() const noexcept {
    return batch_faults_.load(std::memory_order_relaxed);
  }

 private:
  /// Check an aligner out of the spare pool (constructing on a miss) and
  /// return it afterwards, so solver scratch persists across alignBatch
  /// calls instead of being rebuilt per chunk.
  [[nodiscard]] AlignerPtr acquireAligner();
  void releaseAligner(AlignerPtr aligner);

  EngineConfig cfg_;
  util::ThreadPool pool_;
  std::mutex spares_mu_;
  std::vector<AlignerPtr> spares_;
  std::atomic<std::uint64_t> task_failures_{0};
  std::atomic<std::uint64_t> batch_faults_{0};
};

}  // namespace gx::engine
