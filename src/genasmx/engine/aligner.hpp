#pragma once
// The unified aligner abstraction every consumer (tools, examples,
// benches, the batch engine) programs against. Concrete solvers —
// baseline/improved GenASM (global and windowed), Myers bit-vector,
// KSW affine, and the reference DP oracles — are wrapped behind this
// interface and selected by name through the AlignerRegistry
// (genasmx/engine/registry.hpp).
//
// An Aligner instance owns its solver's scratch buffers, so one instance
// per worker amortizes allocations across a batch share. Instances are
// NOT thread-safe; create one per thread (AlignmentEngine does).

#include <cstddef>
#include <memory>
#include <string_view>

#include "genasmx/common/cigar.hpp"
#include "genasmx/core/genasm_improved.hpp"
#include "genasmx/core/windowed.hpp"
#include "genasmx/ksw/ksw_affine.hpp"
#include "genasmx/myers/myers.hpp"

namespace gx::engine {

/// A distance-only problem: views into caller-kept storage, CIGAR-free,
/// with an optional exact result cap — distances above `cap` report -1
/// without paying for the full solve (see Aligner::distance).
struct DistanceTask {
  std::string_view target;
  std::string_view query;
  int cap = -1;
};

/// A non-owning full-alignment problem: views into storage the caller
/// keeps alive for the duration of the batch (see Aligner::alignBatch).
/// The mapping pipeline aligns candidate windows as views into the
/// reference genome, so a batch never copies reference text.
struct AlignmentTask {
  std::string_view target;  ///< reference window
  std::string_view query;   ///< read, oriented to the mapping strand
};

/// Union of the knobs the registered backends understand. Each backend
/// reads only its slice; defaults reproduce the paper's configuration.
struct AlignerConfig {
  /// GenASM windowed geometry (windowed-* backends).
  core::WindowConfig window{};
  /// The paper's three improvements (improved / windowed-improved).
  core::ImprovedOptions improved{};
  /// Per-problem level cap for the global GenASM backends; -1 selects
  /// the always-solvable cap.
  int max_edits = -1;
  /// Myers banding (myers backend).
  myers::MyersConfig myers{};
  /// KSW affine scoring and band (ksw backend).
  ksw::KswConfig ksw{};
};

/// Abstract pairwise aligner: target = reference text, query = read.
class Aligner {
 public:
  virtual ~Aligner() = default;

  /// Globally align query against target. result.ok == false means the
  /// backend could not produce an alignment under its configuration.
  [[nodiscard]] virtual common::AlignmentResult align(
      std::string_view target, std::string_view query) = 0;

  /// Edit cost only, no CIGAR. Backends with a cheaper distance-only
  /// kernel (GenASM's two-row DC loop, Myers without traceback) override
  /// this; the default pays for the full alignment. The contract every
  /// backend must honor (tests enforce it): returns exactly
  /// align(target, query).edit_distance whenever that alignment exists
  /// and its cost is <= cap (cap < 0 = uncapped), and -1 otherwise —
  /// so capped scoring can discard candidates without ever changing
  /// which ones survive.
  [[nodiscard]] virtual int distance(std::string_view target,
                                     std::string_view query, int cap = -1) {
    const common::AlignmentResult res = align(target, query);
    if (!res.ok) return -1;
    if (cap >= 0 && res.edit_distance > cap) return -1;
    return res.edit_distance;
  }

  /// Distance-score `count` tasks; results[i] follows distance()'s
  /// contract for tasks[i] exactly (the default is that loop). Backends
  /// with a lane-parallel batched kernel override this and pack
  /// same-shaped problems into SIMD lanes — results are guaranteed
  /// identical to the scalar loop, so callers may batch freely without
  /// affecting output. The viewed storage must outlive the call.
  virtual void distanceBatch(const DistanceTask* tasks, std::size_t count,
                             int* results) {
    for (std::size_t i = 0; i < count; ++i) {
      results[i] = distance(tasks[i].target, tasks[i].query, tasks[i].cap);
    }
  }

  /// Align `count` tasks; results[i] is bit-identical to
  /// align(tasks[i].target, tasks[i].query) — cigar included — so
  /// callers may batch freely without affecting output (the default is
  /// that loop). Backends with a lane-parallel batched kernel (the
  /// GenASM family) override this and run same-shaped problems in SIMD
  /// lanes: single-window problems lane-parallel, longer ones as a
  /// lock-step windowed march. Each result is reset in place, cigar
  /// capacity preserved, so a reused results arena allocates nothing at
  /// steady state. The viewed storage must outlive the call.
  virtual void alignBatch(const AlignmentTask* tasks, std::size_t count,
                          common::AlignmentResult* results) {
    for (std::size_t i = 0; i < count; ++i) {
      results[i] = align(tasks[i].target, tasks[i].query);
    }
  }

  /// The registry name this instance was created under.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

using AlignerPtr = std::unique_ptr<Aligner>;

}  // namespace gx::engine
