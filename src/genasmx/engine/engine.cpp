#include "genasmx/engine/engine.hpp"

#include <utility>

namespace gx::engine {

AlignmentEngine::AlignmentEngine(EngineConfig cfg)
    : cfg_(std::move(cfg)), pool_(cfg_.threads) {
  // Constructing one aligner up front validates the backend name and its
  // configuration eagerly; the instance seeds the spare pool rather than
  // sitting idle.
  spares_.push_back(makeAligner(cfg_.backend, cfg_.aligner));
}

common::AlignmentResult AlignmentEngine::align(std::string_view target,
                                               std::string_view query) {
  AlignerPtr aligner = acquireAligner();
  common::AlignmentResult result = aligner->align(target, query);
  releaseAligner(std::move(aligner));
  return result;
}

int AlignmentEngine::distance(std::string_view target, std::string_view query,
                              int cap) {
  AlignerLease aligner(*this);
  return aligner->distance(target, query, cap);
}

AlignerPtr AlignmentEngine::acquireAligner() {
  {
    const std::lock_guard<std::mutex> lock(spares_mu_);
    if (!spares_.empty()) {
      AlignerPtr aligner = std::move(spares_.back());
      spares_.pop_back();
      return aligner;
    }
  }
  return makeAligner(cfg_.backend, cfg_.aligner);
}

void AlignmentEngine::releaseAligner(AlignerPtr aligner) {
  const std::lock_guard<std::mutex> lock(spares_mu_);
  spares_.push_back(std::move(aligner));
}

std::vector<common::AlignmentResult> AlignmentEngine::alignBatch(
    const std::vector<AlignmentTask>& tasks) {
  std::vector<common::AlignmentResult> results(tasks.size());
  pool_.parallel_for(tasks.size(), [&](std::size_t begin, std::size_t end) {
    // One checked-out aligner per chunk: solver scratch amortizes across
    // the chunk's share and, via the spare pool, across batches — the
    // pool never holds more aligners than the peak chunk concurrency.
    // The whole chunk goes through the backend's batched entry point.
    AlignerLease aligner(*this);
    aligner->alignBatch(tasks.data() + begin, end - begin,
                        results.data() + begin);
  });
  return results;
}

std::vector<int> AlignmentEngine::distanceBatch(
    const std::vector<DistanceTask>& tasks) {
  std::vector<int> results(tasks.size(), -1);
  pool_.parallel_for(tasks.size(), [&](std::size_t begin, std::size_t end) {
    AlignerLease aligner(*this);
    aligner->distanceBatch(tasks.data() + begin, end - begin,
                           results.data() + begin);
  });
  return results;
}

std::vector<common::AlignmentResult> AlignmentEngine::alignBatch(
    const std::vector<mapper::AlignmentPair>& pairs) {
  std::vector<AlignmentTask> tasks;
  tasks.reserve(pairs.size());
  for (const auto& p : pairs) tasks.push_back({p.target, p.query});
  return alignBatch(tasks);
}

}  // namespace gx::engine
