#include "genasmx/engine/engine.hpp"

#include <utility>

namespace gx::engine {

AlignmentEngine::AlignmentEngine(EngineConfig cfg)
    : cfg_(std::move(cfg)), pool_(cfg_.threads) {
  // Constructing one aligner up front validates the backend name and its
  // configuration eagerly; the instance seeds the spare pool rather than
  // sitting idle.
  spares_.push_back(makeAligner(cfg_.backend, cfg_.aligner));
}

common::AlignmentResult AlignmentEngine::align(std::string_view target,
                                               std::string_view query) {
  AlignerPtr aligner = acquireAligner();
  common::AlignmentResult result = aligner->align(target, query);
  releaseAligner(std::move(aligner));
  return result;
}

int AlignmentEngine::distance(std::string_view target, std::string_view query,
                              int cap) {
  // Like align(): the aligner is recycled only on success — if distance
  // throws, the local unique_ptr destroys it instead of returning a
  // possibly-torn scratch state to the spare pool.
  AlignerPtr aligner = acquireAligner();
  const int d = aligner->distance(target, query, cap);
  releaseAligner(std::move(aligner));
  return d;
}

AlignerPtr AlignmentEngine::acquireAligner() {
  {
    const std::lock_guard<std::mutex> lock(spares_mu_);
    if (!spares_.empty()) {
      AlignerPtr aligner = std::move(spares_.back());
      spares_.pop_back();
      return aligner;
    }
  }
  return makeAligner(cfg_.backend, cfg_.aligner);
}

void AlignmentEngine::releaseAligner(AlignerPtr aligner) {
  const std::lock_guard<std::mutex> lock(spares_mu_);
  spares_.push_back(std::move(aligner));
}

std::vector<common::AlignmentResult> AlignmentEngine::alignBatch(
    const std::vector<AlignmentTask>& tasks) {
  std::vector<common::AlignmentResult> results(tasks.size());
  pool_.parallel_for(tasks.size(), [&](std::size_t begin, std::size_t end) {
    // One checked-out aligner per chunk: solver scratch amortizes across
    // the chunk's share and, via the spare pool, across batches — the
    // pool never holds more aligners than the peak chunk concurrency.
    // The whole chunk goes through the backend's batched entry point.
    {
      AlignerLease aligner(*this);
      try {
        aligner->alignBatch(tasks.data() + begin, end - begin,
                            results.data() + begin);
        return;
      } catch (...) {
        // The batched call died somewhere inside the chunk and may have
        // left partial results and torn solver scratch behind. Drop the
        // aligner (never back to the spare pool) and fall through to the
        // per-task isolation rerun below.
        aligner.poison();
        batch_faults_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Isolation rerun: one task at a time on a fresh aligner, so one bad
    // read costs exactly its own lane. A rerun aligner that survives its
    // tasks is healthy and joins the spare pool.
    AlignerPtr solo;
    for (std::size_t i = begin; i < end; ++i) {
      try {
        if (!solo) solo = makeAligner(cfg_.backend, cfg_.aligner);
        results[i] = solo->align(tasks[i].target, tasks[i].query);
      } catch (...) {
        solo.reset();  // scratch state unknown after the throw
        results[i] = common::AlignmentResult{};  // ok == false
        task_failures_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (solo) releaseAligner(std::move(solo));
  });
  return results;
}

std::vector<int> AlignmentEngine::distanceBatch(
    const std::vector<DistanceTask>& tasks) {
  std::vector<int> results(tasks.size(), -1);
  pool_.parallel_for(tasks.size(), [&](std::size_t begin, std::size_t end) {
    {
      AlignerLease aligner(*this);
      try {
        aligner->distanceBatch(tasks.data() + begin, end - begin,
                               results.data() + begin);
        return;
      } catch (...) {
        aligner.poison();
        batch_faults_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Same per-task isolation as alignBatch; a failed task keeps the -1
    // ("no alignment") the result vector was seeded with.
    AlignerPtr solo;
    for (std::size_t i = begin; i < end; ++i) {
      results[i] = -1;  // the batched call may have part-filled the chunk
      try {
        if (!solo) solo = makeAligner(cfg_.backend, cfg_.aligner);
        results[i] = solo->distance(tasks[i].target, tasks[i].query,
                                    tasks[i].cap);
      } catch (...) {
        solo.reset();
        results[i] = -1;
        task_failures_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (solo) releaseAligner(std::move(solo));
  });
  return results;
}

std::vector<common::AlignmentResult> AlignmentEngine::alignBatch(
    const std::vector<mapper::AlignmentPair>& pairs) {
  std::vector<AlignmentTask> tasks;
  tasks.reserve(pairs.size());
  for (const auto& p : pairs) tasks.push_back({p.target, p.query});
  return alignBatch(tasks);
}

}  // namespace gx::engine
