#pragma once
// MappingPipeline — the paper's end-to-end read-mapping system: FASTQ
// reads stream in batches through candidate generation (minimizer
// seeding + chaining on both strands), windowed GenASM alignment of each
// read's best-N candidates via the AlignmentEngine (any registered
// backend), MAPQ estimation from best-vs-second-best alignment quality,
// and PAF emission with cg:Z: CIGARs.
//
// Layer stack: io -> pipeline -> mapper (over an IndexView) + engine ->
// solvers. The index behind the view may be built in memory or mmap'd
// from a genasmx_index file; both produce byte-identical PAF. The
// pipeline owns the candidate→read fan-out: it flattens every candidate
// of every read in a batch into one engine batch (reference windows are
// passed as views into the genome, never copied), then folds the results
// back per read. Output is deterministic — byte-identical PAF for any
// thread count.
//
// Primary-only mapping runs a two-phase score-then-traceback flow:
// candidates are first distance-scored (no row persistence bookkeeping in
// the output, exact capped scoring against the running second-best), and
// only the winning candidate pays for a traceback alignment — MAPQ needs
// nothing beyond the best and second-best distances.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "genasmx/engine/engine.hpp"
#include "genasmx/io/fastx.hpp"
#include "genasmx/io/paf.hpp"
#include "genasmx/mapper/mapper.hpp"
#include "genasmx/refmodel/reference.hpp"
#include "genasmx/sketch/sketch.hpp"

namespace gx::pipeline {

/// Phase-1 candidate prefilter mode (two-phase primary-only flow).
enum class PrefilterMode {
  kOff,    ///< score every candidate (default; PAF byte-identical to PR-8)
  kSketch  ///< weighted-minhash similarity screen before distanceBatch
};

/// Sketch-prefilter knobs. The filter is *relative*: after the
/// chain-best alignment freezes the read's score cap, the read sketch is
/// compared against the chain-best window's sketch to calibrate what
/// "similar at this read's error rate" looks like, and a non-best
/// candidate is dropped iff its own estimated similarity falls below
/// keep_ratio of that calibration value. An absolute threshold can't
/// work here: a diverged-repeat candidate shares most of the read's
/// k-mers yet still loses by far more than the cap.
struct PrefilterConfig {
  PrefilterMode mode = PrefilterMode::kOff;
  sketch::SketchParams sketch{};
  /// Drop a non-best candidate iff est < keep_ratio * best_est. Lower =
  /// more conservative (fewer drops).
  double keep_ratio = 0.55;
  /// Calibration floor: if the chain-best window itself estimates below
  /// this, the read's sketch carries no signal — filter nothing.
  double min_best_similarity = 0.02;
  /// Reads with fewer minimizers than this are never filtered.
  std::size_t min_minimizers = 8;
};

struct PipelineConfig {
  engine::EngineConfig engine{};  ///< backend, threads, aligner knobs
  mapper::MapperConfig mapper{};  ///< seeding/chaining knobs
  /// Best-N candidate windows aligned per read (the paper aligns every
  /// kept chain; capping bounds worst-case repeat blowup).
  std::size_t max_candidates = 4;
  /// Reads mapped + aligned per streaming batch.
  std::size_t batch_reads = 256;
  /// Emit non-primary alignments (mapq 0) in addition to the primary.
  /// Every emitted record needs a CIGAR, so this flow full-aligns all
  /// candidates and ranks by match count (the original behaviour, byte
  /// for byte). Primary-only mapping instead ranks by edit distance and
  /// can use the two-phase flow below.
  bool emit_secondary = true;
  /// Primary-only fast path: phase 1 distance-scores every candidate
  /// (exact, capped at the running second-best, so hopeless candidates
  /// abort their window march early), phase 2 runs one full traceback
  /// alignment for the winner. Emits byte-identical PAF to the
  /// single-phase primary-only flow; ignored when emit_secondary is set.
  bool two_phase = true;
  /// Phase-1 scoring through Aligner::distanceBatch: each worker packs
  /// its chunk's non-chain-best candidates into the backend's
  /// lane-parallel SIMD kernel, with per-read caps fixed after the
  /// chain-best alignment. Caps only ever tighten as candidates score,
  /// so the fixed cap is >= every cap the sequential flow would have
  /// used — and any cap at or above the dynamic one provably emits the
  /// identical record (see Pick::scoreCap) — so output stays
  /// byte-identical to the sequential scalar scoring (and to the
  /// single-phase flow). Only read by the two-phase flow.
  bool batched_distance = true;
  /// MAPQ ceiling (minimap2 convention).
  int mapq_cap = 60;
  /// What run() does with a malformed input record: kAbort (default,
  /// the historical throw-on-first-error), or kSkip/kWarn — resync to
  /// the next record and keep mapping (io::FastxReader's degradation
  /// policy; every skip is counted in the RunReport).
  io::OnBadRecord on_bad_record = io::OnBadRecord::kAbort;
  /// Admission cap: reads longer than this many bases are rejected
  /// before mapping (counted as rejected_reads / resource-limit in the
  /// RunReport; nothing is emitted for them). 0 = unlimited — the
  /// default keeps clean runs byte-identical to earlier releases.
  std::size_t max_read_len = 0;
  /// Admission cap on sequence bytes per mapping batch: a batch closes
  /// early once it holds this much sequence, bounding peak memory
  /// against pathological read-length mixes. 0 = unlimited. Per-read
  /// output is independent of batch boundaries, so any value emits
  /// byte-identical PAF.
  std::size_t max_batch_bytes = 0;
  /// Phase-1 sketch prefilter (two-phase primary-only flow only): drop
  /// candidates whose estimated read~window similarity says they cannot
  /// beat the frozen score cap, before they reach distanceBatch. Off by
  /// default — may suppress true runner-up distances, so PAF with the
  /// filter on is not guaranteed byte-identical to the unfiltered flow
  /// (recall is bounded by tests instead). Filter decisions use the
  /// frozen post-chain-best cap in every path, so batched vs scalar
  /// scoring and any thread count stay byte-identical to *each other*.
  PrefilterConfig prefilter{};
};

struct PipelineStats {
  std::size_t reads = 0;           ///< reads seen
  std::size_t mapped_reads = 0;    ///< reads with >= 1 emitted record
  std::size_t unmapped_reads = 0;  ///< reads with no candidate
  std::size_t candidates = 0;      ///< candidate windows dispatched
  std::size_t records = 0;         ///< PAF records emitted
};

/// Robustness accounting, accumulated across every run()/mapBatch()
/// call: what came in, what went out, and every degradation in between.
/// A clean run has every counter at zero except records_in/records_out;
/// anything else means input was skipped, rejected, or mapped without a
/// full alignment — visible here instead of silently shaping the output.
struct RunReport {
  std::uint64_t records_in = 0;   ///< records parsed from the input
  std::uint64_t records_out = 0;  ///< PAF records written by run()
  std::uint64_t skipped_bad_records = 0;  ///< malformed, skipped by policy
  std::uint64_t rejected_reads = 0;       ///< admission caps (resource-limit)
  std::uint64_t failed_reads = 0;  ///< degraded after per-read failures
  std::uint64_t failed_tasks = 0;  ///< engine tasks that failed in isolation
  common::ErrorCounts errors;      ///< occurrences per ErrorCode
  common::Status first_error;      ///< first failure seen, ok() if none

  /// True when nothing was skipped, rejected, degraded, or failed.
  [[nodiscard]] bool clean() const noexcept {
    return skipped_bad_records == 0 && rejected_reads == 0 &&
           failed_reads == 0 && failed_tasks == 0 && errors.total() == 0 &&
           first_error.ok();
  }

  /// Compact multi-line summary ("[genasmx] run report: ..."). run()
  /// prints this to stderr whenever !clean(); tools call it explicitly.
  void print(std::ostream& os) const;
};

/// Per-stage wall-clock breakdown, accumulated across every mapBatch()/
/// run() call, so perf work can attribute wins stage by stage. Stage
/// timers wrap whole (possibly parallel) sections, so the five numbers
/// sum to roughly the end-to-end mapping wall time.
struct StageTimes {
  double index_build_s = 0;     ///< reference indexing (constructor)
  double seed_chain_s = 0;      ///< minimizer seeding + chaining
  double phase1_distance_s = 0; ///< two-phase phase 1 (distance scoring)
  /// Sketch-prefilter CPU seconds, summed across workers. A *sub-stage*
  /// of phase 1 (already inside phase1_distance_s, not additive with it);
  /// 0 unless the prefilter is on.
  double sketch_s = 0;
  double traceback_s = 0;       ///< full traceback alignment batches
  double output_s = 0;          ///< record construction + PAF writing
  friend StageTimes operator-(const StageTimes& a, const StageTimes& b) {
    return {a.index_build_s - b.index_build_s,
            a.seed_chain_s - b.seed_chain_s,
            a.phase1_distance_s - b.phase1_distance_s,
            a.sketch_s - b.sketch_s,
            a.traceback_s - b.traceback_s,
            a.output_s - b.output_s};
  }
};

/// Sketch-prefilter accounting, accumulated across every mapBatch()/
/// run() call. sequence_scans counts full-sequence minimizer scans the
/// sketch layer performed; the pipeline performs none — read sketches
/// reuse the minimizers the seeding scan already extracted, and window
/// sketches are served from the position-sorted index table — so this
/// counter staying 0 proves every sequence is scanned exactly once.
struct PrefilterStats {
  std::uint64_t reads_sketched = 0;      ///< reads with an active filter
  std::uint64_t windows_sketched = 0;    ///< candidate windows sketched
  std::uint64_t candidates_seen = 0;     ///< non-chain-best candidates seen
  std::uint64_t candidates_filtered = 0; ///< dropped before distanceBatch
  std::uint64_t sequence_scans = 0;      ///< sketch-layer sequence scans
  std::uint64_t scratch_grow_events = 0; ///< buffer growth; constant once warm
};

/// Cooperative cancellation for one mapBatch() call, checked at pipeline
/// stage boundaries (after seeding/chaining, after each alignment phase,
/// before emission) — the granularity the server's per-request deadlines
/// need without threading a flag through every solver loop. Either
/// trigger aborts the batch with a kResourceLimit error; nothing is
/// emitted for it and the pipeline stays reusable.
struct Cancellation {
  /// Absolute wall deadline; max() (the default) never expires.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Optional external kill switch (e.g. "every owner of this batch has
  /// disconnected"); nullptr = never.
  const std::atomic<bool>* cancelled = nullptr;

  [[nodiscard]] bool expired() const noexcept;
  /// Throws common::Error(kResourceLimit) when expired — the transient,
  /// retryable code the server maps to its shedding reply.
  void check() const;
};

/// Per-read output map filled by mapBatch() for callers that must split
/// one batch's flat record vector back to its originating reads — the
/// server coalesces several requests into one batch and splits replies
/// with exactly these counts. Records are grouped by read in input
/// order, so records_per_read[i] consecutive records belong to read i.
struct BatchOutputMap {
  std::vector<std::uint32_t> records_per_read;
  std::vector<unsigned char> read_failed;  ///< 1 = degraded after a failure
};

class MappingPipeline {
 public:
  /// Indexes `ref` and owns the result (throws what Mapper/
  /// AlignmentEngine construction throws, e.g. std::invalid_argument for
  /// an unknown backend). The index build is parallelized per contig on
  /// the engine's pool; PAF records carry each candidate's contig name,
  /// length, and contig-local coordinates.
  explicit MappingPipeline(refmodel::Reference ref, PipelineConfig cfg = {});

  /// Map against an externally owned index (e.g. a MappedIndex opened
  /// from a `genasmx_index` file): no FASTA parse, no index build —
  /// cfg.mapper's k/w/max_occ are taken from the view. The view's owner
  /// must outlive the pipeline. index_build_s stays 0 on this path.
  explicit MappingPipeline(mapper::IndexView index, PipelineConfig cfg = {});

  /// Map against an externally owned index AND an externally owned
  /// engine. This is the session shape the server layer uses: many
  /// pipelines (one per worker, each with its own scratch and stats)
  /// share one immutable index and one AlignmentEngine, so the SIMD
  /// lanes and the spare-aligner pool are shared process-wide instead of
  /// duplicated per session. cfg.engine is ignored — the shared engine's
  /// backend/threads win. Both `index`'s owner and `shared_engine` must
  /// outlive the pipeline.
  MappingPipeline(mapper::IndexView index, engine::AlignmentEngine& shared_engine,
                  PipelineConfig cfg = {});

  /// Named constructor for the serve-from-disk path; reads as
  /// `MappingPipeline::open(mapped.view(), cfg)` at call sites.
  [[nodiscard]] static MappingPipeline open(mapper::IndexView index,
                                            PipelineConfig cfg = {}) {
    return MappingPipeline(index, std::move(cfg));
  }

  /// Flat-genome convenience: a single contig named `target_name` (the
  /// PAF target-name column).
  [[deprecated(
      "construct a refmodel::Reference (or open an index file) instead; "
      "the flat-string path predates the multi-contig model")]]
  MappingPipeline(std::string target_name, std::string genome,
                  PipelineConfig cfg = {});

  [[nodiscard]] const PipelineConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const mapper::Mapper& mapper() const noexcept {
    return mapper_;
  }
  [[nodiscard]] engine::AlignmentEngine& engine() noexcept { return *engine_; }

  /// Map one batch of reads. Records are grouped by read in input order,
  /// primary record first within each read; deterministic for any thread
  /// count. Reads whose best candidates all fail to align still emit one
  /// CIGAR-less record from the best chain (mapq 0, no cg:Z: tag); reads
  /// with no candidate emit nothing.
  [[nodiscard]] std::vector<io::PafRecord> mapBatch(
      const std::vector<io::FastxRecord>& reads);

  /// mapBatch with cooperative cancellation and an optional per-read
  /// output map (see Cancellation / BatchOutputMap). Identical records
  /// to the plain overload whenever the batch is not cancelled.
  [[nodiscard]] std::vector<io::PafRecord> mapBatch(
      const std::vector<io::FastxRecord>& reads, const Cancellation& cancel,
      BatchOutputMap* outmap = nullptr);

  /// Stream `reads_in` (FASTA/FASTQ) through mapBatch() in
  /// config().batch_reads chunks (closing a batch early if
  /// max_batch_bytes says so), writing PAF to `out`. Returns the
  /// aggregate statistics of this run. Degradations — skipped bad
  /// records, rejected over-cap reads, per-read alignment failures —
  /// are tallied in report(), which is also printed to stderr whenever
  /// it is not clean. `input_path` only labels diagnostics.
  PipelineStats run(std::istream& reads_in, io::PafWriter& out,
                    const std::string& input_path = "");

  /// Statistics accumulated across every mapBatch()/run() call.
  [[nodiscard]] const PipelineStats& stats() const noexcept { return stats_; }

  /// Robustness accounting accumulated across every mapBatch()/run()
  /// call (see RunReport).
  [[nodiscard]] const RunReport& report() const noexcept { return report_; }

  /// Per-stage timing accumulated across every mapBatch()/run() call
  /// (index_build_s is charged once, at construction).
  [[nodiscard]] const StageTimes& stageTimes() const noexcept {
    return times_;
  }

  /// Sketch-prefilter accounting accumulated across every mapBatch()/
  /// run() call; all zeros unless config().prefilter.mode is kSketch.
  [[nodiscard]] const PrefilterStats& prefilterStats() const noexcept {
    return prefilter_stats_;
  }

 private:
  /// Per-worker sketch state, leased per chunk from a spare pool (same
  /// pattern as the engine's AlignerLease) so phase-1 workers never share
  /// scratch and steady-state batches allocate nothing.
  struct SketchWorker {
    sketch::SketchScratch scratch;
    sketch::SequenceSketch read_sketch;
    sketch::SequenceSketch window_sketch;
  };

  /// Re-sort the index's (key -> position) arrays into a position-sorted
  /// (position -> key) table when the sketch prefilter is on; no-op
  /// otherwise. Charged to StageTimes::index_build_s.
  void buildPrefilterTable();

  PipelineConfig cfg_;
  /// Engine storage: owned on the classic ctors, empty when sharing.
  /// Either way engine_ is the one engine every batch dispatches to;
  /// it sits before mapper_ because its pool builds the index.
  std::unique_ptr<engine::AlignmentEngine> owned_engine_;
  engine::AlignmentEngine* engine_;
  StageTimes times_;  ///< before mapper_: ctor times the build
  mapper::Mapper mapper_;
  PipelineStats stats_;
  RunReport report_;
  PrefilterStats prefilter_stats_;
  std::mutex sketch_mu_;  ///< guards sketch_spares_ + prefilter stat folds
  std::vector<std::unique_ptr<SketchWorker>> sketch_spares_;
  /// The reference's kept minimizers re-sorted by global position
  /// (parallel arrays, built once when the prefilter is on): a candidate
  /// window's minimizer keys are the contiguous pf_keys_ subrange whose
  /// pf_positions_ fall inside the window, found by binary search — so
  /// window sketches cost O(window minimizers) and never rescan sequence.
  std::vector<std::uint32_t> pf_positions_;
  std::vector<std::uint64_t> pf_keys_;
};

}  // namespace gx::pipeline
