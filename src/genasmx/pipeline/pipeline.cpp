#include "genasmx/pipeline/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <istream>
#include <limits>
#include <ostream>
#include <utility>

#include "genasmx/common/sequence.hpp"
#include "genasmx/util/timer.hpp"

namespace gx::pipeline {
namespace {

/// Construct the mapper (which builds the index on the engine's pool)
/// under a timer, charging the cost to StageTimes::index_build_s.
mapper::Mapper buildMapperTimed(refmodel::Reference ref,
                                const mapper::MapperConfig& cfg,
                                util::ThreadPool* pool, double& seconds) {
  util::Timer t;
  mapper::Mapper m(std::move(ref), cfg, pool);
  seconds = t.seconds();
  return m;
}

/// Per-read working state for one batch. Slots are written only by the
/// worker that owns the read, so the parallel fan-out stays race-free
/// and thread-count independent.
struct ReadWork {
  std::vector<mapper::Candidate> cands;
  std::string rc;  ///< reverse complement, filled iff a candidate needs it
  /// The read's minimizers, captured from the seeding scan so the sketch
  /// prefilter never rescans the read. Canonical keys are strand-
  /// symmetric, so one set serves forward and reverse candidates alike.
  std::vector<mapper::Minimizer> mins;
};

/// Per-chunk prefilter accounting, folded into the pipeline's totals
/// under the sketch-pool mutex when the chunk releases its worker.
struct PrefilterLocal {
  PrefilterStats stats;
  double seconds = 0;
};

/// minimap2-style confidence from best (s1) vs second-best (s2)
/// alignment quality: full cap when the runner-up is far behind, 0 when
/// the top two candidates are indistinguishable.
int computeMapq(std::uint64_t s1, std::uint64_t s2, int cap) {
  if (s1 == 0 || s2 >= s1) return 0;
  const double frac =
      1.0 - static_cast<double>(s2) / static_cast<double>(s1);
  const int mapq = static_cast<int>(std::lround(cap * frac));
  return std::clamp(mapq, 0, cap);
}

/// The distance-based analogue for the primary-only flow: d1/d2 are the
/// best and second-best candidate edit distances (-1 = absent). Smaller
/// is better; confidence saturates at the full cap once the runner-up
/// has twice the winner's distance. The saturation is what makes capped
/// scoring cheap: any candidate with distance > 2*d1 yields the exact
/// same MAPQ as "no runner-up", so phase 1 may discard it mid-march
/// without ever knowing its true distance.
int computeMapqFromDistances(int d1, int d2, int cap) {
  if (d1 < 0) return 0;
  if (d2 < 0) return cap;  // no runner-up at all
  if (d2 <= d1) return 0;  // indistinguishable (covers d1 == d2 == 0)
  const double frac =
      2.0 * (1.0 - static_cast<double>(d1) / static_cast<double>(d2));
  return std::clamp(static_cast<int>(std::lround(cap * std::min(frac, 1.0))),
                    0, cap);
}

/// Best / second-best tracking over candidates in chain order. The same
/// update rule runs in both the two-phase (capped distances) and the
/// single-phase (edits from full CIGARs) primary-only flows, so the two
/// flows pick identical winners and MAPQs by construction: a candidate
/// whose distance exceeds the running second-best can change neither.
struct Pick {
  int cand = -1;  ///< winning candidate index (chain order), -1 = none
  int d1 = -1;    ///< winner's edit distance
  int d2 = -1;    ///< runner-up's edit distance, -1 = none

  void update(int c, int d) {
    if (cand < 0 || d < d1) {
      d2 = d1;
      d1 = d;
      cand = c;
    } else if (d2 < 0 || d < d2) {
      d2 = d;
    }
  }

  /// Largest distance that could still change the emitted record. A
  /// candidate must beat the winner (>= d1 matters for the tie that
  /// zeroes MAPQ), and as a runner-up it only matters below the MAPQ
  /// saturation point min(d2, 2*d1) — beyond that both flows emit the
  /// full cap either way, so the capped scorer may return -1 without
  /// affecting byte-identity with the uncapped single-phase flow.
  [[nodiscard]] int scoreCap() const {
    if (cand < 0) return -1;
    long long c = 2LL * d1;
    if (d2 >= 0 && d2 < c) c = d2;
    if (c < d1) c = d1;
    return static_cast<int>(
        std::min<long long>(c, std::numeric_limits<int>::max()));
  }
};

PipelineStats operator-(const PipelineStats& a, const PipelineStats& b) {
  PipelineStats d;
  d.reads = a.reads - b.reads;
  d.mapped_reads = a.mapped_reads - b.mapped_reads;
  d.unmapped_reads = a.unmapped_reads - b.unmapped_reads;
  d.candidates = a.candidates - b.candidates;
  d.records = a.records - b.records;
  return d;
}

/// Shared PAF-record construction for both flows. Target name, length,
/// and coordinates are per contig: a candidate carries its contig id and
/// contig-local window, so no record ever reports the concatenated
/// reference size or a coordinate past its own contig.
struct RecordBuilder {
  const refmodel::Reference& ref;
  PipelineStats& stats;
  std::vector<io::PafRecord>& out;

  io::PafRecord base(const io::FastxRecord& read,
                     const mapper::Candidate& cand) const {
    io::PafRecord rec;
    rec.query_name = read.name;
    rec.query_len = read.seq.size();
    rec.reverse = cand.reverse;
    rec.target_name = ref.name(cand.contig);
    rec.target_len = ref.contig(cand.contig).length;
    return rec;
  }

  // Oriented query span -> forward-read PAF coordinates.
  static void setQuerySpan(io::PafRecord& rec, const io::FastxRecord& read,
                           std::size_t qb, std::size_t qe) {
    rec.query_begin = rec.reverse ? read.seq.size() - qe : qb;
    rec.query_end = rec.reverse ? read.seq.size() - qb : qe;
  }

  /// CIGAR-less record from the best chain, so a read whose candidates
  /// all fail to align is not silently dropped (mapq 0, no cg:Z:).
  void emitChainOnly(const io::FastxRecord& read,
                     const mapper::Candidate& cand) {
    io::PafRecord rec = base(read, cand);
    setQuerySpan(rec, read, cand.read_begin, cand.read_end);
    rec.target_begin = cand.ref_begin;
    rec.target_end = cand.ref_end;
    rec.mapq = 0;
    out.push_back(std::move(rec));
    ++stats.records;
  }

  void emitAligned(const io::FastxRecord& read, const mapper::Candidate& cand,
                   const common::AlignmentResult& res, int mapq) {
    io::PafRecord rec = base(read, cand);
    // A window-global alignment pays the candidate window's slack as
    // boundary indels; trim them so the PAF span is the aligned core.
    auto trim = common::trimIndelEnds(res.cigar);
    rec.cigar = std::move(trim.cigar);
    const std::size_t qb = trim.query_lead;
    setQuerySpan(rec, read, qb, qb + rec.cigar.queryLength());
    rec.target_begin = cand.ref_begin + trim.target_lead;
    rec.target_end = rec.target_begin + rec.cigar.targetLength();
    rec.mapq = mapq;
    io::finalizeFromCigar(rec);
    out.push_back(std::move(rec));
    ++stats.records;
  }
};

}  // namespace

void RunReport::print(std::ostream& os) const {
  os << "[genasmx] run report: " << records_in << " records in, "
     << records_out << " records out";
  if (skipped_bad_records != 0) {
    os << ", " << skipped_bad_records << " bad records skipped";
  }
  if (rejected_reads != 0) {
    os << ", " << rejected_reads << " reads rejected (admission caps)";
  }
  if (failed_reads != 0) {
    os << ", " << failed_reads << " reads degraded after failures";
  }
  if (failed_tasks != 0) {
    os << ", " << failed_tasks << " alignment tasks failed";
  }
  os << '\n';
  if (errors.total() != 0) {
    os << "[genasmx]   error counts:";
    for (std::size_t i = 1; i < common::kErrorCodeCount; ++i) {
      const auto code = static_cast<common::ErrorCode>(i);
      if (errors[code] != 0) {
        os << ' ' << common::errorCodeName(code) << '=' << errors[code];
      }
    }
    os << '\n';
  }
  if (!first_error.ok()) {
    os << "[genasmx]   first error: " << first_error.message() << '\n';
  }
}

bool Cancellation::expired() const noexcept {
  if (cancelled != nullptr && cancelled->load(std::memory_order_relaxed)) {
    return true;
  }
  return deadline != std::chrono::steady_clock::time_point::max() &&
         std::chrono::steady_clock::now() >= deadline;
}

void Cancellation::check() const {
  if (expired()) {
    throw common::Error(common::ErrorCode::kResourceLimit,
                        "request deadline exceeded (batch cancelled at a "
                        "pipeline stage boundary)");
  }
}

MappingPipeline::MappingPipeline(refmodel::Reference ref, PipelineConfig cfg)
    : cfg_(std::move(cfg)),
      owned_engine_(std::make_unique<engine::AlignmentEngine>(cfg_.engine)),
      engine_(owned_engine_.get()),
      mapper_(buildMapperTimed(std::move(ref), cfg_.mapper, &engine_->pool(),
                               times_.index_build_s)) {
  buildPrefilterTable();
}

MappingPipeline::MappingPipeline(mapper::IndexView index, PipelineConfig cfg)
    : cfg_(std::move(cfg)),
      owned_engine_(std::make_unique<engine::AlignmentEngine>(cfg_.engine)),
      engine_(owned_engine_.get()),
      mapper_(index, cfg_.mapper) {
  buildPrefilterTable();
}

MappingPipeline::MappingPipeline(mapper::IndexView index,
                                 engine::AlignmentEngine& shared_engine,
                                 PipelineConfig cfg)
    : cfg_(std::move(cfg)),
      engine_(&shared_engine),
      mapper_(index, cfg_.mapper) {
  buildPrefilterTable();
}

void MappingPipeline::buildPrefilterTable() {
  if (cfg_.prefilter.mode != PrefilterMode::kSketch) return;
  util::Timer t;
  const mapper::IndexView& idx = mapper_.index();
  const std::size_t n = idx.size();
  const std::uint64_t* const keys = idx.keysData();
  const std::uint64_t* const values = idx.valuesData();
  // Values encode (global position << 1) | strand; every kept minimizer
  // occupies a distinct position, so sorting (position, key) pairs is a
  // pure permutation of the index — both index sources (in-memory build
  // and mmap'd file) expose identical arrays, hence identical tables.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> entries;
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    entries.emplace_back(static_cast<std::uint32_t>(values[i] >> 1), keys[i]);
  }
  std::sort(entries.begin(), entries.end());
  pf_positions_.resize(n);
  pf_keys_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    pf_positions_[i] = entries[i].first;
    pf_keys_[i] = entries[i].second;
  }
  times_.index_build_s += t.seconds();
}

MappingPipeline::MappingPipeline(std::string target_name, std::string genome,
                                 PipelineConfig cfg)
    : MappingPipeline(
          refmodel::Reference(std::move(target_name), std::move(genome)),
          std::move(cfg)) {}

std::vector<io::PafRecord> MappingPipeline::mapBatch(
    const std::vector<io::FastxRecord>& reads) {
  return mapBatch(reads, Cancellation{}, nullptr);
}

std::vector<io::PafRecord> MappingPipeline::mapBatch(
    const std::vector<io::FastxRecord>& reads, const Cancellation& cancel,
    BatchOutputMap* outmap) {
  // Stage 1 — candidate generation, fanned out on the engine's pool.
  // Each read is isolated: a throw poisons that read alone (it degrades
  // to unmapped), never the batch. failed[i]/read_status[i] are written
  // only by the worker that owns read i, then folded serially at
  // emission, so the accounting is deterministic at any thread count.
  util::Timer stage_timer;
  std::vector<ReadWork> work(reads.size());
  std::vector<unsigned char> failed(reads.size(), 0);
  std::vector<common::Status> read_status(reads.size());
  engine_->pool().parallel_for(
      reads.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          try {
            auto cands = mapper_.map(reads[i].seq, work[i].mins);
            if (cands.size() > cfg_.max_candidates) {
              cands.resize(cfg_.max_candidates);
            }
            const bool any_reverse = std::any_of(
                cands.begin(), cands.end(),
                [](const mapper::Candidate& c) { return c.reverse; });
            if (any_reverse) {
              work[i].rc = common::reverseComplement(reads[i].seq);
            }
            work[i].cands = std::move(cands);
          } catch (...) {
            work[i].cands.clear();
            work[i].rc.clear();
            work[i].mins.clear();
            read_status[i] = common::Status::fromCurrentException();
            failed[i] = 1;
          }
        }
      });
  times_.seed_chain_s += stage_timer.seconds();
  cancel.check();

  const auto targetView = [&](const mapper::Candidate& c) {
    return mapper_.candidateText(c);  // view into the reference backing
  };
  const auto queryView = [&](std::size_t i, const mapper::Candidate& c) {
    return c.reverse ? std::string_view(work[i].rc)
                     : std::string_view(reads[i].seq);
  };

  // ---- sketch prefilter (phase 1, two-phase primary-only flow only) ----
  // After the chain-best alignment freezes a read's score cap, the read's
  // sketch (built from the minimizers the seeding scan already extracted)
  // is calibrated against the chain-best window's sketch; a non-best
  // candidate below keep_ratio of that calibration is dropped before it
  // reaches the distance kernels. Decisions depend only on sequences and
  // the frozen cap's existence, so batched/scalar scoring and the
  // isolation-rerun path all drop the same candidates.
  const bool prefilter_on =
      cfg_.prefilter.mode == PrefilterMode::kSketch && !cfg_.emit_secondary &&
      cfg_.two_phase;
  const sketch::SketchParams& sketch_params = cfg_.prefilter.sketch;
  const int sketch_k = mapper_.config().k;

  // Sketch a candidate window straight from the position-sorted index
  // table: binary-search the window's global k-mer-start range and minhash
  // the contiguous key subrange — no sequence is touched. Table entries
  // are the reference's *globally* extracted, occurrence-capped
  // minimizers, so interior picks match a local window scan (minimizer
  // locality) while ~(w+k) bp of edge effects and repeat masking apply to
  // the chain-best and non-best windows alike — the relative keep_ratio
  // test compares like with like.
  const auto sketchCandidateWindow = [&](const mapper::Candidate& cand,
                                         SketchWorker& wkr) {
    const auto& contig = mapper_.reference().contig(cand.contig);
    const std::uint64_t gb = contig.offset + cand.ref_begin;
    const std::uint64_t ge = contig.offset + cand.ref_end;
    const auto lo_pos = static_cast<std::uint32_t>(gb);
    // Last k-mer fully inside the window starts at ge - k.
    const auto hi_pos = static_cast<std::uint32_t>(
        ge >= gb + static_cast<std::uint64_t>(sketch_k)
            ? ge - static_cast<std::uint64_t>(sketch_k) + 1
            : gb);
    const auto first =
        std::lower_bound(pf_positions_.begin(), pf_positions_.end(), lo_pos);
    const auto last = std::lower_bound(first, pf_positions_.end(), hi_pos);
    const auto off = static_cast<std::size_t>(first - pf_positions_.begin());
    sketch::sketchKeys(pf_keys_.data() + off,
                       static_cast<std::size_t>(last - first), sketch_params,
                       wkr.scratch, wkr.window_sketch);
  };

  // Lease a per-chunk sketch worker from the spare pool (allocates only
  // until the pool has one worker per pool thread).
  const auto leaseSketchWorker = [&]() -> std::unique_ptr<SketchWorker> {
    if (!prefilter_on) return nullptr;
    {
      std::lock_guard<std::mutex> lock(sketch_mu_);
      if (!sketch_spares_.empty()) {
        auto w = std::move(sketch_spares_.back());
        sketch_spares_.pop_back();
        return w;
      }
    }
    return std::make_unique<SketchWorker>();
  };
  const auto releaseSketchWorker = [&](std::unique_ptr<SketchWorker> w,
                                       std::uint64_t grow_before,
                                       std::uint64_t scans_before,
                                       const PrefilterLocal& local) {
    if (!w) return;
    std::lock_guard<std::mutex> lock(sketch_mu_);
    prefilter_stats_.reads_sketched += local.stats.reads_sketched;
    prefilter_stats_.windows_sketched += local.stats.windows_sketched;
    prefilter_stats_.candidates_seen += local.stats.candidates_seen;
    prefilter_stats_.candidates_filtered += local.stats.candidates_filtered;
    prefilter_stats_.sequence_scans +=
        w->scratch.sequenceScans() - scans_before;
    prefilter_stats_.scratch_grow_events +=
        w->scratch.growEvents() - grow_before;
    times_.sketch_s += local.seconds;
    sketch_spares_.push_back(std::move(w));
  };

  // Similarity threshold below which read i's non-best candidates are
  // dropped; < 0 disables filtering for this read (no frozen cap, too few
  // minimizers, or a signal-free chain-best calibration).
  const auto prefilterThreshold = [&](std::size_t i, int cap,
                                      SketchWorker& wkr,
                                      PrefilterLocal& local) -> double {
    if (cap < 0) return -1.0;
    if (work[i].mins.size() < cfg_.prefilter.min_minimizers) return -1.0;
    util::Timer t;
    sketch::sketchMinimizers(work[i].mins.data(), work[i].mins.size(),
                             sketch_params, wkr.scratch, wkr.read_sketch);
    sketchCandidateWindow(work[i].cands[0], wkr);
    const double best_est =
        sketch::estimateSimilarity(wkr.read_sketch, wkr.window_sketch);
    local.seconds += t.seconds();
    ++local.stats.reads_sketched;
    ++local.stats.windows_sketched;
    if (best_est < cfg_.prefilter.min_best_similarity) return -1.0;
    return cfg_.prefilter.keep_ratio * best_est;
  };
  const auto prefilterDrop = [&](const mapper::Candidate& cand, double thr,
                                 SketchWorker& wkr,
                                 PrefilterLocal& local) -> bool {
    if (thr < 0) return false;
    util::Timer t;
    sketchCandidateWindow(cand, wkr);
    const double est =
        sketch::estimateSimilarity(wkr.read_sketch, wkr.window_sketch);
    local.seconds += t.seconds();
    ++local.stats.windows_sketched;
    if (est >= thr) return false;
    ++local.stats.candidates_filtered;
    return true;
  };

  std::vector<io::PafRecord> out;
  RecordBuilder builder{mapper_.reference(), stats_, out};

  // Per-read record counts for callers that split the batch back into
  // requests; called exactly once per read, in input order.
  const auto noteRead = [&](std::size_t i, std::size_t out_before) {
    if (outmap == nullptr) return;
    outmap->records_per_read.push_back(
        static_cast<std::uint32_t>(out.size() - out_before));
    outmap->read_failed.push_back(failed[i]);
  };

  // Fold per-read failure flags into the report during the serial
  // emission walk (input order -> deterministic first_error).
  const auto tallyFailure = [&](std::size_t i) {
    if (failed[i] == 0) return;
    ++report_.failed_reads;
    report_.errors.add(read_status[i].ok() ? common::ErrorCode::kInternal
                                           : read_status[i].code());
    if (report_.first_error.ok() && !read_status[i].ok()) {
      report_.first_error = read_status[i];
    }
  };

  // A read emitted chain-only because its alignment tasks faulted (the
  // engine degrades a throwing lane to ok == false; a healthy backend
  // always produces a result) is a per-read failure too — flag it at
  // the emission site, after the loop-top tallyFailure already ran.
  const auto tallyAlignmentFailure = [&](std::size_t i) {
    if (failed[i] != 0) return;
    failed[i] = 1;
    read_status[i] = common::Status(
        common::ErrorCode::kInternal,
        "candidate alignments failed; emitted chain-only record");
    tallyFailure(i);
  };

  if (!cfg_.emit_secondary) {
    // ------------------------------------------- primary-only flow
    // Ranking and MAPQ come from edit distances (chain order breaks
    // ties), so phase 1 never needs a CIGAR and only the winner is ever
    // traceback-aligned.
    std::vector<Pick> picks(reads.size());
    std::vector<common::AlignmentResult> aligned;
    constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> widx(reads.size(), kNone);

    if (cfg_.two_phase) {
      // Phase 1 — parallel over reads. The chain-best candidate (the
      // winner for almost every read) is fully aligned once and its
      // result cached; every further candidate is distance-scored in
      // chain order with Pick::scoreCap() as the cap, so a candidate
      // provably unable to change the emitted record aborts its window
      // march as soon as its committed edits blow the cap.
      //
      // In batched mode the per-read cap is frozen after the chain-best
      // alignment and every remaining candidate of the worker's chunk is
      // scored through one Aligner::distanceBatch call, packing the
      // problems into the backend's SIMD lanes. The frozen cap is >= the
      // sequential flow's dynamic cap at every candidate (caps only
      // tighten), and every cap above the dynamic one yields the same
      // emitted record (Pick::scoreCap's saturation argument), so the
      // two modes — and any thread count — stay byte-identical.
      stage_timer.reset();
      std::vector<common::AlignmentResult> chain_best(reads.size());
      engine_->pool().parallel_for(
          reads.size(), [&](std::size_t begin, std::size_t end) {
            bool chunk_ok = true;
            auto sketch_worker = leaseSketchWorker();
            const std::uint64_t sketch_grow_before =
                sketch_worker ? sketch_worker->scratch.growEvents() : 0;
            const std::uint64_t sketch_scans_before =
                sketch_worker ? sketch_worker->scratch.sequenceScans() : 0;
            PrefilterLocal prefilter_local;
            {
              engine::AlignmentEngine::AlignerLease aligner(*engine_);
              try {
                if (cfg_.batched_distance) {
                  // Chain-best alignments for the whole chunk through one
                  // batched call, so the winners' tracebacks also run in
                  // SIMD lanes (alignBatch == per-task align by contract).
                  std::vector<engine::AlignmentTask> best_tasks;
                  std::vector<std::size_t> best_reads;
                  for (std::size_t i = begin; i < end; ++i) {
                    if (work[i].cands.empty()) continue;
                    const auto& cand = work[i].cands[0];
                    best_tasks.push_back(
                        {targetView(cand), queryView(i, cand)});
                    best_reads.push_back(i);
                  }
                  std::vector<common::AlignmentResult> best(best_tasks.size());
                  aligner->alignBatch(best_tasks.data(), best_tasks.size(),
                                      best.data());
                  for (std::size_t k = 0; k < best_reads.size(); ++k) {
                    const std::size_t i = best_reads[k];
                    chain_best[i] = std::move(best[k]);
                    if (chain_best[i].ok) {
                      picks[i].update(
                          0,
                          static_cast<int>(chain_best[i].cigar.editDistance()));
                    }
                  }
                  std::size_t task_count = 0;
                  for (std::size_t i = begin; i < end; ++i) {
                    if (work[i].cands.size() > 1) {
                      task_count += work[i].cands.size() - 1;
                    }
                  }
                  std::vector<engine::DistanceTask> tasks;
                  std::vector<std::pair<std::size_t, std::size_t>> task_cand;
                  tasks.reserve(task_count);
                  task_cand.reserve(task_count);
                  for (std::size_t i = begin; i < end; ++i) {
                    const auto& cands = work[i].cands;
                    const int cap = picks[i].scoreCap();
                    double thr = -1.0;
                    if (sketch_worker && cands.size() > 1) {
                      thr = prefilterThreshold(i, cap, *sketch_worker,
                                               prefilter_local);
                    }
                    for (std::size_t c = 1; c < cands.size(); ++c) {
                      if (sketch_worker) {
                        ++prefilter_local.stats.candidates_seen;
                        if (prefilterDrop(cands[c], thr, *sketch_worker,
                                          prefilter_local)) {
                          continue;
                        }
                      }
                      tasks.push_back(
                          {targetView(cands[c]), queryView(i, cands[c]), cap});
                      task_cand.emplace_back(i, c);
                    }
                  }
                  std::vector<int> ds(tasks.size(), -1);
                  aligner->distanceBatch(tasks.data(), tasks.size(),
                                         ds.data());
                  // Fold in chain order (tasks were emitted in chain
                  // order).
                  for (std::size_t k = 0; k < tasks.size(); ++k) {
                    if (ds[k] >= 0) {
                      picks[task_cand[k].first].update(
                          static_cast<int>(task_cand[k].second), ds[k]);
                    }
                  }
                } else {
                  for (std::size_t i = begin; i < end; ++i) {
                    Pick& p = picks[i];
                    const auto& cands = work[i].cands;
                    double thr = -1.0;
                    for (std::size_t c = 0; c < cands.size(); ++c) {
                      const auto target = targetView(cands[c]);
                      const auto query = queryView(i, cands[c]);
                      if (c == 0) {
                        chain_best[i] = aligner->align(target, query);
                        if (chain_best[i].ok) {
                          p.update(0,
                                   static_cast<int>(
                                       chain_best[i].cigar.editDistance()));
                        }
                        // Filter decisions use the cap as frozen right
                        // here — the same cap the batched mode uses — so
                        // both modes drop identical candidates.
                        if (sketch_worker && cands.size() > 1) {
                          thr = prefilterThreshold(i, p.scoreCap(),
                                                   *sketch_worker,
                                                   prefilter_local);
                        }
                        continue;
                      }
                      if (sketch_worker) {
                        ++prefilter_local.stats.candidates_seen;
                        if (prefilterDrop(cands[c], thr, *sketch_worker,
                                          prefilter_local)) {
                          continue;
                        }
                      }
                      const int d =
                          aligner->distance(target, query, p.scoreCap());
                      if (d >= 0) p.update(static_cast<int>(c), d);
                    }
                  }
                }
              } catch (...) {
                // The chunk's batched scoring died mid-flight: partial
                // picks and a torn aligner. Drop the aligner and redo
                // this chunk one read at a time below.
                aligner.poison();
                chunk_ok = false;
              }
            }
            if (!chunk_ok) {
              // Isolation rerun: per-read scalar scoring through the
              // engine's single-pair entry points (which construct fresh
              // aligners and never recycle one that threw). The dynamic
              // scalar cap and the frozen batched cap emit identical
              // records (Pick::scoreCap's saturation argument), and the
              // sketch filter is a pure function of the sequences, so a
              // recovered read is byte-identical to a never-failed one. A
              // read that still throws degrades to its chain-only record.
              for (std::size_t i = begin; i < end; ++i) {
                picks[i] = Pick{};
                chain_best[i] = common::AlignmentResult{};
                const auto& cands = work[i].cands;
                try {
                  Pick& p = picks[i];
                  double thr = -1.0;
                  for (std::size_t c = 0; c < cands.size(); ++c) {
                    const auto target = targetView(cands[c]);
                    const auto query = queryView(i, cands[c]);
                    if (c == 0) {
                      chain_best[i] = engine_->align(target, query);
                      if (chain_best[i].ok) {
                        p.update(0, static_cast<int>(
                                        chain_best[i].cigar.editDistance()));
                      }
                      if (sketch_worker && cands.size() > 1) {
                        thr = prefilterThreshold(i, p.scoreCap(),
                                                 *sketch_worker,
                                                 prefilter_local);
                      }
                      continue;
                    }
                    if (sketch_worker) {
                      ++prefilter_local.stats.candidates_seen;
                      if (prefilterDrop(cands[c], thr, *sketch_worker,
                                        prefilter_local)) {
                        continue;
                      }
                    }
                    const int d =
                        engine_->distance(target, query, p.scoreCap());
                    if (d >= 0) p.update(static_cast<int>(c), d);
                  }
                } catch (...) {
                  picks[i] = Pick{};
                  chain_best[i] = common::AlignmentResult{};
                  read_status[i] = common::Status::fromCurrentException();
                  failed[i] = 1;
                }
              }
            }
            releaseSketchWorker(std::move(sketch_worker), sketch_grow_before,
                                sketch_scans_before, prefilter_local);
          });
      times_.phase1_distance_s += stage_timer.seconds();
      cancel.check();
      // Phase 2 — a traceback alignment only for winners that are not
      // the cached chain-best candidate.
      stage_timer.reset();
      std::vector<engine::AlignmentTask> winner_tasks;
      std::vector<std::size_t> winner_reads;
      for (std::size_t i = 0; i < reads.size(); ++i) {
        if (picks[i].cand <= 0) continue;  // none, or cached chain-best
        const auto& cand = work[i].cands[static_cast<std::size_t>(
            picks[i].cand)];
        winner_reads.push_back(i);
        winner_tasks.push_back({targetView(cand), queryView(i, cand)});
      }
      aligned = engine_->alignBatch(winner_tasks);
      times_.traceback_s += stage_timer.seconds();
      cancel.check();
      // Fold: cached chain-best winners append after the batch results.
      for (std::size_t k = 0; k < winner_reads.size(); ++k) {
        widx[winner_reads[k]] = k;
      }
      for (std::size_t i = 0; i < reads.size(); ++i) {
        if (picks[i].cand == 0) {
          widx[i] = aligned.size();
          aligned.push_back(std::move(chain_best[i]));
        }
      }
    } else {
      // Single-phase comparator: full-align every candidate, then score
      // by the same edit-distance rule. Byte-identical output to the
      // two-phase flow (tests pin this).
      stage_timer.reset();
      std::vector<std::size_t> offset(reads.size() + 1, 0);
      for (std::size_t i = 0; i < reads.size(); ++i) {
        offset[i + 1] = offset[i] + work[i].cands.size();
      }
      std::vector<engine::AlignmentTask> tasks;
      tasks.reserve(offset.back());
      for (std::size_t i = 0; i < reads.size(); ++i) {
        for (const auto& c : work[i].cands) {
          tasks.push_back({targetView(c), queryView(i, c)});
        }
      }
      aligned = engine_->alignBatch(tasks);
      times_.traceback_s += stage_timer.seconds();
      cancel.check();
      for (std::size_t i = 0; i < reads.size(); ++i) {
        for (std::size_t c = 0; c < work[i].cands.size(); ++c) {
          const auto& res = aligned[offset[i] + c];
          if (!res.ok) continue;
          picks[i].update(static_cast<int>(c),
                          static_cast<int>(res.cigar.editDistance()));
        }
        if (picks[i].cand >= 0) {
          widx[i] = offset[i] + static_cast<std::size_t>(picks[i].cand);
        }
      }
    }

    // Stage 3 — serial emission in input order.
    stage_timer.reset();
    for (std::size_t i = 0; i < reads.size(); ++i) {
      const auto& cands = work[i].cands;
      const std::size_t out_before = out.size();
      ++stats_.reads;
      tallyFailure(i);
      if (cands.empty()) {
        ++stats_.unmapped_reads;
        noteRead(i, out_before);
        continue;
      }
      stats_.candidates += cands.size();
      const Pick& p = picks[i];
      if (p.cand < 0) {
        builder.emitChainOnly(reads[i], cands[0]);
      } else {
        const auto& res = aligned[widx[i]];
        const auto& cand = cands[static_cast<std::size_t>(p.cand)];
        if (res.ok) {
          builder.emitAligned(reads[i], cand, res,
                              computeMapqFromDistances(p.d1, p.d2,
                                                       cfg_.mapq_cap));
        } else {
          tallyAlignmentFailure(i);
          builder.emitChainOnly(reads[i], cand);
        }
      }
      ++stats_.mapped_reads;
      noteRead(i, out_before);
    }
    times_.output_s += stage_timer.seconds();
    return out;
  }

  // ------------------------------------- secondary-emitting flow
  // Every record needs a CIGAR anyway, so a distance phase would be pure
  // overhead: flatten every read's candidates into one engine batch.
  // Targets are views into the genome, queries views into the read (or
  // its cached reverse complement): no window text is copied.
  std::vector<std::size_t> offset(reads.size() + 1, 0);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    offset[i + 1] = offset[i] + work[i].cands.size();
  }
  stage_timer.reset();
  std::vector<engine::AlignmentTask> tasks;
  tasks.reserve(offset.back());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    for (const auto& c : work[i].cands) {
      tasks.push_back({targetView(c), queryView(i, c)});
    }
  }
  const auto results = engine_->alignBatch(tasks);
  times_.traceback_s += stage_timer.seconds();
  cancel.check();

  // Fold results back per read, pick the primary, score MAPQ, and emit
  // (serial, so output order is input order).
  stage_timer.reset();
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const auto& read = reads[i];
    const auto& cands = work[i].cands;
    const std::size_t out_before = out.size();
    ++stats_.reads;
    tallyFailure(i);
    if (cands.empty()) {
      ++stats_.unmapped_reads;
      noteRead(i, out_before);
      continue;
    }
    stats_.candidates += cands.size();

    struct Scored {
      std::size_t cand;
      const common::AlignmentResult* res;
      std::uint64_t matches;
      std::uint64_t edits;
    };
    std::vector<Scored> scored;
    for (std::size_t c = 0; c < cands.size(); ++c) {
      const auto& res = results[offset[i] + c];
      if (!res.ok) continue;
      scored.push_back({c, &res, res.cigar.count(common::EditOp::Match),
                        res.cigar.editDistance()});
    }

    if (scored.empty()) {
      tallyAlignmentFailure(i);
      builder.emitChainOnly(read, cands[0]);
      ++stats_.mapped_reads;
      noteRead(i, out_before);
      continue;
    }

    // Primary = most matches; ties to fewer edits, then chain order.
    std::size_t best = 0;
    for (std::size_t k = 1; k < scored.size(); ++k) {
      if (scored[k].matches > scored[best].matches ||
          (scored[k].matches == scored[best].matches &&
           scored[k].edits < scored[best].edits)) {
        best = k;
      }
    }
    std::uint64_t second = 0;
    for (std::size_t k = 0; k < scored.size(); ++k) {
      if (k != best) second = std::max(second, scored[k].matches);
    }
    const int primary_mapq =
        computeMapq(scored[best].matches, second, cfg_.mapq_cap);

    builder.emitAligned(read, cands[scored[best].cand], *scored[best].res,
                        primary_mapq);
    for (std::size_t k = 0; k < scored.size(); ++k) {
      if (k != best) {
        builder.emitAligned(read, cands[scored[k].cand], *scored[k].res, 0);
      }
    }
    ++stats_.mapped_reads;
    noteRead(i, out_before);
  }
  times_.output_s += stage_timer.seconds();
  return out;
}

PipelineStats MappingPipeline::run(std::istream& reads_in, io::PafWriter& out,
                                   const std::string& input_path) {
  const PipelineStats before = stats_;
  const std::uint64_t task_failures_before = engine_->taskFailures();
  const std::size_t batch_reads = cfg_.batch_reads ? cfg_.batch_reads : 256;
  io::FastxPolicy policy;
  policy.on_bad_record = cfg_.on_bad_record;
  policy.path = input_path;
  io::FastxReader reader(reads_in, std::move(policy));

  // Report bookkeeping shared by the clean exit and the throw path: the
  // reader's skip count and the engine's task-failure delta are folded
  // in exactly once, whatever way this run ends.
  const auto finalizeReport = [&] {
    report_.skipped_bad_records += reader.skipped();
    report_.errors.add(common::ErrorCode::kMalformedInput, reader.skipped());
    report_.failed_tasks += engine_->taskFailures() - task_failures_before;
  };

  try {
    std::vector<io::FastxRecord> batch;
    std::size_t batch_bytes = 0;
    const auto dispatch = [&] {
      const auto records = mapBatch(batch);
      util::Timer write_timer;
      for (const auto& rec : records) out.write(rec);
      times_.output_s += write_timer.seconds();
      report_.records_out += records.size();
      batch.clear();
      batch_bytes = 0;
    };
    io::FastxRecord rec;
    while (reader.next(rec)) {
      ++report_.records_in;
      if (cfg_.max_read_len != 0 && rec.seq.size() > cfg_.max_read_len) {
        // Admission cap: the read never reaches the mapper; one counter
        // tick instead of an unbounded DP allocation.
        ++report_.rejected_reads;
        report_.errors.add(common::ErrorCode::kResourceLimit);
        continue;
      }
      batch_bytes += rec.seq.size();
      batch.push_back(std::move(rec));
      if (batch.size() >= batch_reads ||
          (cfg_.max_batch_bytes != 0 && batch_bytes >= cfg_.max_batch_bytes)) {
        dispatch();
      }
    }
    if (!batch.empty()) dispatch();
    util::Timer flush_timer;
    out.flush();
    times_.output_s += flush_timer.seconds();
  } catch (...) {
    finalizeReport();
    if (report_.first_error.ok()) {
      report_.first_error = common::Status::fromCurrentException();
      report_.errors.add(report_.first_error.code());
    }
    report_.print(std::cerr);
    throw;
  }
  finalizeReport();
  if (!report_.clean()) report_.print(std::cerr);
  return stats_ - before;
}

}  // namespace gx::pipeline
