#include "genasmx/pipeline/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <utility>

#include "genasmx/common/sequence.hpp"

namespace gx::pipeline {
namespace {

/// Per-read working state for one batch. Slots are written only by the
/// worker that owns the read, so the parallel fan-out stays race-free
/// and thread-count independent.
struct ReadWork {
  std::vector<mapper::Candidate> cands;
  std::string rc;  ///< reverse complement, filled iff a candidate needs it
};

/// minimap2-style confidence from best (s1) vs second-best (s2)
/// alignment quality: full cap when the runner-up is far behind, 0 when
/// the top two candidates are indistinguishable.
int computeMapq(std::uint64_t s1, std::uint64_t s2, int cap) {
  if (s1 == 0 || s2 >= s1) return 0;
  const double frac =
      1.0 - static_cast<double>(s2) / static_cast<double>(s1);
  const int mapq = static_cast<int>(std::lround(cap * frac));
  return std::clamp(mapq, 0, cap);
}

PipelineStats operator-(const PipelineStats& a, const PipelineStats& b) {
  PipelineStats d;
  d.reads = a.reads - b.reads;
  d.mapped_reads = a.mapped_reads - b.mapped_reads;
  d.unmapped_reads = a.unmapped_reads - b.unmapped_reads;
  d.candidates = a.candidates - b.candidates;
  d.records = a.records - b.records;
  return d;
}

}  // namespace

MappingPipeline::MappingPipeline(std::string target_name, std::string genome,
                                 PipelineConfig cfg)
    : cfg_(std::move(cfg)),
      target_name_(std::move(target_name)),
      mapper_(std::move(genome), cfg_.mapper),
      engine_(cfg_.engine) {}

std::vector<io::PafRecord> MappingPipeline::mapBatch(
    const std::vector<io::FastxRecord>& reads) {
  const std::string& genome = mapper_.genome();
  const auto genome_view = std::string_view(genome);

  // Stage 1 — candidate generation, fanned out on the engine's pool.
  std::vector<ReadWork> work(reads.size());
  engine_.pool().parallel_for(
      reads.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          auto cands = mapper_.map(reads[i].seq);
          if (cands.size() > cfg_.max_candidates) {
            cands.resize(cfg_.max_candidates);
          }
          const bool any_reverse =
              std::any_of(cands.begin(), cands.end(),
                          [](const mapper::Candidate& c) { return c.reverse; });
          if (any_reverse) {
            work[i].rc = common::reverseComplement(reads[i].seq);
          }
          work[i].cands = std::move(cands);
        }
      });

  // Stage 2 — flatten every read's candidates into one engine batch.
  // Targets are views into the genome, queries views into the read (or
  // its cached reverse complement): no window text is copied.
  std::vector<std::size_t> offset(reads.size() + 1, 0);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    offset[i + 1] = offset[i] + work[i].cands.size();
  }
  std::vector<engine::AlignmentTask> tasks;
  tasks.reserve(offset.back());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    for (const auto& c : work[i].cands) {
      tasks.push_back(
          {genome_view.substr(c.ref_begin, c.ref_end - c.ref_begin),
           c.reverse ? std::string_view(work[i].rc)
                     : std::string_view(reads[i].seq)});
    }
  }
  const auto results = engine_.alignBatch(tasks);

  // Stage 3 — fold results back per read, pick the primary, score MAPQ,
  // and emit (serial, so output order is input order).
  std::vector<io::PafRecord> out;
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const auto& read = reads[i];
    const auto& cands = work[i].cands;
    ++stats_.reads;
    if (cands.empty()) {
      ++stats_.unmapped_reads;
      continue;
    }
    stats_.candidates += cands.size();

    auto baseRecord = [&](const mapper::Candidate& cand) {
      io::PafRecord rec;
      rec.query_name = read.name;
      rec.query_len = read.seq.size();
      rec.reverse = cand.reverse;
      rec.target_name = target_name_;
      rec.target_len = genome.size();
      return rec;
    };
    // Oriented query span -> forward-read PAF coordinates.
    auto setQuerySpan = [&](io::PafRecord& rec, std::size_t qb,
                            std::size_t qe) {
      rec.query_begin = rec.reverse ? read.seq.size() - qe : qb;
      rec.query_end = rec.reverse ? read.seq.size() - qb : qe;
    };

    struct Scored {
      std::size_t cand;
      const common::AlignmentResult* res;
      std::uint64_t matches;
      std::uint64_t edits;
    };
    std::vector<Scored> scored;
    for (std::size_t c = 0; c < cands.size(); ++c) {
      const auto& res = results[offset[i] + c];
      if (!res.ok) continue;
      scored.push_back({c, &res, res.cigar.count(common::EditOp::Match),
                        res.cigar.editDistance()});
    }

    if (scored.empty()) {
      // Every candidate failed to align: report the best chain so the
      // locus is not silently dropped — CIGAR-less (no cg:Z:), mapq 0.
      io::PafRecord rec = baseRecord(cands[0]);
      setQuerySpan(rec, cands[0].read_begin, cands[0].read_end);
      rec.target_begin = cands[0].ref_begin;
      rec.target_end = cands[0].ref_end;
      rec.mapq = 0;
      out.push_back(std::move(rec));
      ++stats_.mapped_reads;
      ++stats_.records;
      continue;
    }

    // Primary = most matches; ties to fewer edits, then chain order.
    std::size_t best = 0;
    for (std::size_t k = 1; k < scored.size(); ++k) {
      if (scored[k].matches > scored[best].matches ||
          (scored[k].matches == scored[best].matches &&
           scored[k].edits < scored[best].edits)) {
        best = k;
      }
    }
    std::uint64_t second = 0;
    for (std::size_t k = 0; k < scored.size(); ++k) {
      if (k != best) second = std::max(second, scored[k].matches);
    }
    const int primary_mapq =
        computeMapq(scored[best].matches, second, cfg_.mapq_cap);

    auto emitAligned = [&](const Scored& s, int mapq) {
      const auto& cand = cands[s.cand];
      io::PafRecord rec = baseRecord(cand);
      // A window-global alignment pays the candidate window's slack as
      // boundary indels; trim them so the PAF span is the aligned core.
      auto trim = common::trimIndelEnds(s.res->cigar);
      rec.cigar = std::move(trim.cigar);
      const std::size_t qb = trim.query_lead;
      setQuerySpan(rec, qb, qb + rec.cigar.queryLength());
      rec.target_begin = cand.ref_begin + trim.target_lead;
      rec.target_end = rec.target_begin + rec.cigar.targetLength();
      rec.mapq = mapq;
      io::finalizeFromCigar(rec);
      out.push_back(std::move(rec));
      ++stats_.records;
    };

    emitAligned(scored[best], primary_mapq);
    if (cfg_.emit_secondary) {
      for (std::size_t k = 0; k < scored.size(); ++k) {
        if (k != best) emitAligned(scored[k], 0);
      }
    }
    ++stats_.mapped_reads;
  }
  return out;
}

PipelineStats MappingPipeline::run(std::istream& reads_in,
                                   io::PafWriter& out) {
  const PipelineStats before = stats_;
  const std::size_t batch_reads = cfg_.batch_reads ? cfg_.batch_reads : 256;
  io::FastxReader reader(reads_in);
  while (true) {
    const auto batch = reader.nextBatch(batch_reads);
    if (batch.empty()) break;
    for (const auto& rec : mapBatch(batch)) out.write(rec);
  }
  out.flush();
  return stats_ - before;
}

}  // namespace gx::pipeline
