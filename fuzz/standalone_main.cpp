// Standalone replay driver: runs LLVMFuzzerTestOneInput over the files
// named on the command line (typically the committed seed corpus), so
// the fuzz harnesses double as deterministic regression tests on
// toolchains without libFuzzer (gcc). Exit 0 means every input was
// processed without a crash; the harnesses assert internally.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  int ran = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
    ++ran;
  }
  std::fprintf(stderr, "replayed %d corpus file(s) OK\n", ran);
  return 0;
}
