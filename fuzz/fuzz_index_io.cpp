// libFuzzer harness for the on-disk index loader: arbitrary bytes fed
// through MappedFile::fromBytes into the exact MappedIndex validation
// path that production mmap opens use. Every rejection must be a
// structured IndexIoError (a common::Error) — no crash, no OOB read
// (run under ASan), no acceptance of bytes that then fault in view().
// Build with -DGENASMX_FUZZ=ON.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "genasmx/common/error.hpp"
#include "genasmx/io/mmap_file.hpp"
#include "genasmx/mapper/index_io.hpp"
#include "genasmx/refmodel/reference.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::vector<std::byte> bytes(size);
  if (size != 0) std::memcpy(bytes.data(), data, size);
  try {
    const gx::mapper::MappedIndex idx(
        gx::io::MappedFile::fromBytes(std::move(bytes)), {}, "fuzz");
    // Bytes that validate must also serve: walk the accepted view the
    // way the mapper would.
    const gx::mapper::IndexView view = idx.view();
    const gx::refmodel::Reference& ref = view.reference();
    for (std::uint32_t c = 0; c < ref.contigCount(); ++c) {
      (void)ref.contig(c).name;
      (void)view.perContigKept(c);
    }
  } catch (const gx::common::Error&) {
    // expected: malformed images are rejected with a structured error
  }
  return 0;
}
