// libFuzzer harness for the FASTA/FASTQ parser: arbitrary bytes must
// never crash, hang, or corrupt FastxReader — under kAbort the only
// escape is a structured common::Error, and under kSkip the reader must
// resync and terminate on its own. Build with -DGENASMX_FUZZ=ON; on
// toolchains without libFuzzer the standalone driver replays the
// committed corpus instead (see fuzz/standalone_main.cpp).

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "genasmx/common/error.hpp"
#include "genasmx/io/fastx.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  // kAbort: malformed input throws exactly common::Error, nothing else.
  {
    std::istringstream in(text);
    gx::io::FastxReader reader(in);
    gx::io::FastxRecord rec;
    try {
      while (reader.next(rec)) {
      }
    } catch (const gx::common::Error&) {
      // expected for malformed input
    }
  }

  // kSkip: malformed records are skipped, never thrown; the loop must
  // terminate (a resync that fails to advance would hang right here).
  {
    std::istringstream in(text);
    gx::io::FastxPolicy policy;
    policy.on_bad_record = gx::io::OnBadRecord::kSkip;
    gx::io::FastxReader reader(in, policy);
    gx::io::FastxRecord rec;
    while (reader.next(rec)) {
    }
  }
  return 0;
}
