#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "genasmx/common/sequence.hpp"
#include "genasmx/common/verify.hpp"
#include "genasmx/refdp/affine_dp.hpp"
#include "genasmx/refdp/edit_dp.hpp"
#include "genasmx/util/prng.hpp"

namespace gx::refdp {
namespace {

// ------------------------------------------------------------ edit distance

TEST(EditDistance, KnownCases) {
  EXPECT_EQ(editDistance("", ""), 0);
  EXPECT_EQ(editDistance("ACGT", "ACGT"), 0);
  EXPECT_EQ(editDistance("ACGT", ""), 4);
  EXPECT_EQ(editDistance("", "ACGT"), 4);
  EXPECT_EQ(editDistance("ACGT", "AGGT"), 1);
  EXPECT_EQ(editDistance("ACGT", "AGT"), 1);
  EXPECT_EQ(editDistance("AGT", "ACGT"), 1);
  EXPECT_EQ(editDistance("AAAA", "TTTT"), 4);
  EXPECT_EQ(editDistance("GCTAGCT", "CTAGCTA"), 2);
}

TEST(EditDistance, Symmetry) {
  util::Xoshiro256 rng(21);
  for (int t = 0; t < 20; ++t) {
    const auto a = common::randomSequence(rng, 40 + rng.below(40));
    const auto b = common::randomSequence(rng, 40 + rng.below(40));
    EXPECT_EQ(editDistance(a, b), editDistance(b, a));
  }
}

TEST(EditDistance, TriangleInequality) {
  util::Xoshiro256 rng(22);
  for (int t = 0; t < 20; ++t) {
    const auto a = common::randomSequence(rng, 30);
    const auto b = common::mutateSequence(rng, a, rng.below(8));
    const auto c = common::mutateSequence(rng, b, rng.below(8));
    EXPECT_LE(editDistance(a, c), editDistance(a, b) + editDistance(b, c));
  }
}

TEST(EditDistance, LengthDifferenceLowerBound) {
  util::Xoshiro256 rng(23);
  for (int t = 0; t < 20; ++t) {
    const auto a = common::randomSequence(rng, rng.below(60));
    const auto b = common::randomSequence(rng, rng.below(60));
    const int diff =
        std::abs(static_cast<int>(a.size()) - static_cast<int>(b.size()));
    EXPECT_GE(editDistance(a, b), diff);
    EXPECT_LE(editDistance(a, b),
              static_cast<int>(std::max(a.size(), b.size())));
  }
}

TEST(EditDistanceBanded, MatchesFullWhenBandSuffices) {
  util::Xoshiro256 rng(24);
  for (int t = 0; t < 30; ++t) {
    const auto a = common::randomSequence(rng, 50 + rng.below(30));
    const auto b = common::mutateSequence(rng, a, rng.below(12));
    const int exact = editDistance(a, b);
    EXPECT_EQ(editDistanceBanded(a, b, exact), exact);
    EXPECT_EQ(editDistanceBanded(a, b, exact + 5), exact);
  }
}

TEST(EditDistanceBanded, ReportsFailureWhenBandTooSmall) {
  const std::string a = "AAAAAAAAAA";
  const std::string b = "TTTTTTTTTT";
  EXPECT_EQ(editDistance(a, b), 10);
  EXPECT_EQ(editDistanceBanded(a, b, 9), -1);
  EXPECT_EQ(editDistanceBanded(a, b, 10), 10);
}

TEST(AlignEdit, CigarIsValidAndOptimal) {
  util::Xoshiro256 rng(25);
  for (int t = 0; t < 40; ++t) {
    const auto a = common::randomSequence(rng, rng.below(80));
    const auto b = common::mutateSequence(rng, a, rng.below(15));
    const auto res = align(a, b);
    ASSERT_TRUE(res.ok);
    const auto v = common::verifyAlignment(a, b, res.cigar);
    ASSERT_TRUE(v.valid) << v.error;
    EXPECT_EQ(static_cast<int>(v.cost), res.edit_distance);
    EXPECT_EQ(res.edit_distance, editDistance(a, b));
  }
}

TEST(AlignEdit, EmptyInputs) {
  auto r1 = align("", "");
  EXPECT_TRUE(r1.ok);
  EXPECT_EQ(r1.edit_distance, 0);
  auto r2 = align("ACG", "");
  EXPECT_EQ(r2.edit_distance, 3);
  EXPECT_EQ(r2.cigar.str(), "3D");
  auto r3 = align("", "ACG");
  EXPECT_EQ(r3.cigar.str(), "3I");
}

// ------------------------------------------------------------------ affine

TEST(Affine, PerfectMatchScore) {
  const AffineParams p;
  EXPECT_EQ(affineScore("ACGTACGT", "ACGTACGT", p), 16);  // 8 * match(2)
}

TEST(Affine, SingleMismatch) {
  const AffineParams p;
  // 7 matches (+14), 1 mismatch (-4).
  EXPECT_EQ(affineScore("ACGTACGT", "ACGAACGT", p), 10);
}

TEST(Affine, GapCostOpenPlusExtend) {
  const AffineParams p;  // q=4, e=2
  // 8 matches (+16), one 2-char deletion (-(4+2*2)).
  EXPECT_EQ(affineScore("ACGTAACGTA", "ACGTCGTA", p), 16 - 8 + 0 - 0 - 0);
}

TEST(Affine, PrefersOneLongGapOverTwoShort) {
  const AffineParams p;
  // With affine costs, a combined gap is cheaper than two separated ones;
  // just verify score matches the with-traceback result on tricky input.
  const std::string t = "AAAACCCCGGGGTTTT";
  const std::string q = "AAAAGGGGTTTT";
  const auto res = alignAffine(t, q, p);
  EXPECT_EQ(res.score, affineScore(t, q, p));
  const auto v = common::verifyAlignment(t, q, res.cigar);
  EXPECT_TRUE(v.valid) << v.error;
}

TEST(Affine, ScoreOnlyMatchesTraceback) {
  util::Xoshiro256 rng(26);
  for (int t = 0; t < 30; ++t) {
    const auto a = common::randomSequence(rng, 20 + rng.below(60));
    const auto b = common::mutateSequence(rng, a, rng.below(12));
    const AffineParams p;
    const auto res = alignAffine(a, b, p);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.score, affineScore(a, b, p));
    const auto v = common::verifyAlignment(a, b, res.cigar);
    ASSERT_TRUE(v.valid) << v.error;
  }
}

TEST(Affine, CigarScoreAgreesWithReportedScore) {
  util::Xoshiro256 rng(27);
  const AffineParams p;
  for (int t = 0; t < 30; ++t) {
    const auto a = common::randomSequence(rng, 30 + rng.below(40));
    const auto b = common::mutateSequence(rng, a, rng.below(10));
    const auto res = alignAffine(a, b, p);
    ASSERT_TRUE(res.ok);
    // Recompute the affine score from the cigar.
    int score = 0;
    for (const auto& u : res.cigar.units()) {
      switch (u.op) {
        case common::EditOp::Match: score += p.match * static_cast<int>(u.len); break;
        case common::EditOp::Mismatch: score -= p.mismatch * static_cast<int>(u.len); break;
        case common::EditOp::Insertion:
        case common::EditOp::Deletion:
          score -= p.gap_open + p.gap_extend * static_cast<int>(u.len);
          break;
      }
    }
    EXPECT_EQ(score, res.score);
  }
}

TEST(Affine, EditDistanceEquivalentParams) {
  util::Xoshiro256 rng(28);
  const auto p = AffineParams::editDistanceEquivalent();
  for (int t = 0; t < 30; ++t) {
    const auto a = common::randomSequence(rng, rng.below(70));
    const auto b = common::mutateSequence(rng, a, rng.below(14));
    EXPECT_EQ(-affineScore(a, b, p), editDistance(a, b));
  }
}

TEST(Affine, EmptyInputs) {
  const AffineParams p;
  EXPECT_EQ(affineScore("", "", p), 0);
  EXPECT_EQ(affineScore("ACG", "", p), -(4 + 3 * 2));
  EXPECT_EQ(affineScore("", "ACG", p), -(4 + 3 * 2));
  const auto res = alignAffine("ACG", "", p);
  EXPECT_EQ(res.cigar.str(), "3D");
}

}  // namespace
}  // namespace gx::refdp
