// Executable regression guards for the paper's headline claims, at test
// scale (the full measurements live in bench/). Workloads are
// deterministic, so the instrumented counts are exact and these bounds
// are not flaky: they catch regressions in the improvements or in the
// instrumentation itself.

#include <gtest/gtest.h>

#include "genasmx/common/sequence.hpp"
#include "genasmx/core/windowed.hpp"
#include "genasmx/genasm/genasm_common.hpp"
#include "genasmx/gpukernels/genasm_kernels.hpp"
#include "genasmx/util/prng.hpp"

namespace gx {
namespace {

struct CleanPairs {
  util::MemStats baseline, improved;
  CleanPairs() {
    util::Xoshiro256 rng(7);
    for (int i = 0; i < 6; ++i) {
      const auto t = common::randomSequence(rng, 2'000);
      const auto q = common::mutateSequence(rng, t, 200);  // 10% error
      EXPECT_TRUE(
          core::alignWindowedBaseline(t, q, {}, &baseline).ok);
      EXPECT_TRUE(core::alignWindowedImproved(t, q, {}, {}, &improved).ok);
    }
  }
};

CleanPairs& pairs() {
  static CleanPairs p;
  return p;
}

TEST(PaperClaims, MemoryFootprintReductionOrder24x) {
  // Paper: 24x smaller memory footprint. Steady-state (per window
  // problem) on clean 10%-error pairs measures way above 20x; guard a
  // conservative floor.
  auto& p = pairs();
  const double base = static_cast<double>(p.baseline.bytes_allocated) /
                      static_cast<double>(p.baseline.problems);
  const double impr = static_cast<double>(p.improved.bytes_allocated) /
                      static_cast<double>(p.improved.problems);
  EXPECT_GT(base / impr, 20.0);
  EXPECT_LT(base / impr, 120.0);  // sanity ceiling: instrumentation intact
}

TEST(PaperClaims, MemoryAccessReductionOrder12x) {
  // Paper: 12x fewer memory accesses. Clean pairs measure ~22x, mixed
  // candidate workloads ~8x (see EXPERIMENTS.md); guard the clean floor.
  auto& p = pairs();
  const double ratio = static_cast<double>(p.baseline.accesses()) /
                       static_cast<double>(p.improved.accesses());
  EXPECT_GT(ratio, 10.0);
  EXPECT_LT(ratio, 60.0);
}

TEST(PaperClaims, EarlyTerminationComputesFractionOfLevels) {
  // At 10% error, d_min per 64-char window is far below the 64-level cap;
  // ET must cut computed entries by >4x.
  auto& p = pairs();
  EXPECT_GT(static_cast<double>(p.baseline.dp_entries) /
                static_cast<double>(p.improved.dp_entries),
            4.0);
}

TEST(PaperClaims, ImprovedFitsInGpuSharedMemoryBaselineDoesNot) {
  // The capacity cliff that motivates the paper's GPU design.
  util::Xoshiro256 rng(11);
  std::vector<mapper::AlignmentPair> batch;
  for (int i = 0; i < 4; ++i) {
    mapper::AlignmentPair ap;
    ap.target = common::randomSequence(rng, 1'500);
    ap.query = common::mutateSequence(rng, ap.target, 150);
    batch.push_back(std::move(ap));
  }
  gpusim::Device device;
  const auto impr = gpukernels::alignBatchImproved(device, batch);
  const auto base = gpukernels::alignBatchBaseline(device, batch);
  EXPECT_EQ(impr.spilled_blocks, 0u);
  EXPECT_EQ(base.spilled_blocks, batch.size());
  // And the modeled consequence: improved is multiples faster.
  EXPECT_GT(impr.alignments_per_second / base.alignments_per_second, 3.0);
}

TEST(PaperClaims, WindowCapsMatchGenasmSemantics) {
  // StartOnly windows are always solvable within m edits; fully global
  // ones within max(n, m) — the caps the solvers rely on.
  EXPECT_EQ(genasm::autoEditCap(96, 64, genasm::Anchor::StartOnly), 64);
  EXPECT_EQ(genasm::autoEditCap(96, 64, genasm::Anchor::BothEnds), 96);
  EXPECT_EQ(genasm::autoEditCap(32, 64, genasm::Anchor::BothEnds), 64);
  // Empty-prefix availability: free in StartOnly, costs deletions in
  // BothEnds (affordable only while i <= d).
  EXPECT_FALSE(genasm::shiftInOne(genasm::Anchor::StartOnly, 50, 0));
  EXPECT_TRUE(genasm::shiftInOne(genasm::Anchor::BothEnds, 50, 0));
  EXPECT_FALSE(genasm::shiftInOne(genasm::Anchor::BothEnds, 50, 50));
  EXPECT_TRUE(genasm::shiftInOne(genasm::Anchor::BothEnds, 51, 50));
}

}  // namespace
}  // namespace gx
