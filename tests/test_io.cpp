#include <gtest/gtest.h>

#include <sstream>

#include "genasmx/io/fastx.hpp"
#include "genasmx/io/paf.hpp"

namespace gx::io {
namespace {

TEST(Fastx, ParsesFasta) {
  std::istringstream in(">r1 a comment\nACGT\nACGT\n>r2\nTTTT\n");
  const auto recs = readFastx(in);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].name, "r1");
  EXPECT_EQ(recs[0].comment, "a comment");
  EXPECT_EQ(recs[0].seq, "ACGTACGT");
  EXPECT_TRUE(recs[0].qual.empty());
  EXPECT_EQ(recs[1].name, "r2");
  EXPECT_EQ(recs[1].seq, "TTTT");
}

TEST(Fastx, ParsesFastq) {
  std::istringstream in("@q1\nACGT\n+\nIIII\n@q2 c\nTT\n+\n##\n");
  const auto recs = readFastx(in);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].name, "q1");
  EXPECT_EQ(recs[0].seq, "ACGT");
  EXPECT_EQ(recs[0].qual, "IIII");
  EXPECT_EQ(recs[1].comment, "c");
}

TEST(Fastx, RoundTripFasta) {
  std::vector<FastxRecord> recs;
  recs.push_back({"a", "", std::string(200, 'A'), ""});
  recs.push_back({"b", "note", "ACGT", ""});
  std::ostringstream out;
  writeFastx(out, recs);
  std::istringstream in(out.str());
  const auto back = readFastx(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].seq, recs[0].seq);
  EXPECT_EQ(back[1].name, "b");
  EXPECT_EQ(back[1].comment, "note");
}

TEST(Fastx, RoundTripFastq) {
  std::vector<FastxRecord> recs;
  recs.push_back({"q", "", "ACGTACGT", "IIIIIIII"});
  std::ostringstream out;
  writeFastx(out, recs);
  std::istringstream in(out.str());
  const auto back = readFastx(in);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].seq, recs[0].seq);
  EXPECT_EQ(back[0].qual, recs[0].qual);
}

TEST(Fastx, RejectsMalformed) {
  std::istringstream bad1("ACGT\n");
  EXPECT_THROW(readFastx(bad1), std::runtime_error);
  std::istringstream bad2("@q\nACGT\nIIII\n");  // missing '+'
  EXPECT_THROW(readFastx(bad2), std::runtime_error);
  std::istringstream bad3("@q\nACGT\n+\nII\n");  // length mismatch
  EXPECT_THROW(readFastx(bad3), std::runtime_error);
}

TEST(Fastx, MissingFileThrows) {
  EXPECT_THROW(readFastxFile("/nonexistent/path.fa"), std::runtime_error);
}

TEST(Fastx, EmptyStream) {
  std::istringstream in("");
  EXPECT_TRUE(readFastx(in).empty());
}

TEST(Paf, SerializesAllFields) {
  PafRecord rec;
  rec.query_name = "read_1";
  rec.query_len = 100;
  rec.query_begin = 0;
  rec.query_end = 100;
  rec.reverse = true;
  rec.target_name = "chr";
  rec.target_len = 1'000'000;
  rec.target_begin = 500;
  rec.target_end = 602;
  rec.cigar = common::Cigar::parse("98=2X2D");
  finalizeFromCigar(rec);
  EXPECT_EQ(rec.matches, 98u);
  EXPECT_EQ(rec.alignment_len, 102u);
  const auto line = toPafLine(rec);
  EXPECT_EQ(line,
            "read_1\t100\t0\t100\t-\tchr\t1000000\t500\t602\t98\t102\t255"
            "\tcg:Z:98=2X2D");
}

TEST(Paf, OmitsCigarWhenEmpty) {
  PafRecord rec;
  // std::string("r") sidesteps GCC 12's -Wrestrict false positive
  // (PR105651) on the const char* assignment path.
  rec.query_name = std::string("r");
  rec.target_name = std::string("t");
  const auto line = toPafLine(rec);
  EXPECT_EQ(line.find("cg:Z:"), std::string::npos);
}

TEST(Paf, WriteAppendsNewline) {
  PafRecord rec;
  rec.query_name = std::string("r");
  rec.target_name = std::string("t");
  std::ostringstream out;
  writePaf(out, rec);
  EXPECT_EQ(out.str().back(), '\n');
}

}  // namespace
}  // namespace gx::io
