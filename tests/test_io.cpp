#include <gtest/gtest.h>

#include <sstream>

#include "genasmx/io/fastx.hpp"
#include "genasmx/io/paf.hpp"

namespace gx::io {
namespace {

TEST(Fastx, ParsesFasta) {
  std::istringstream in(">r1 a comment\nACGT\nACGT\n>r2\nTTTT\n");
  const auto recs = readFastx(in);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].name, "r1");
  EXPECT_EQ(recs[0].comment, "a comment");
  EXPECT_EQ(recs[0].seq, "ACGTACGT");
  EXPECT_TRUE(recs[0].qual.empty());
  EXPECT_EQ(recs[1].name, "r2");
  EXPECT_EQ(recs[1].seq, "TTTT");
}

TEST(Fastx, ParsesFastq) {
  std::istringstream in("@q1\nACGT\n+\nIIII\n@q2 c\nTT\n+\n##\n");
  const auto recs = readFastx(in);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].name, "q1");
  EXPECT_EQ(recs[0].seq, "ACGT");
  EXPECT_EQ(recs[0].qual, "IIII");
  EXPECT_EQ(recs[1].comment, "c");
}

TEST(Fastx, RoundTripFasta) {
  std::vector<FastxRecord> recs;
  recs.push_back({"a", "", std::string(200, 'A'), ""});
  recs.push_back({"b", "note", "ACGT", ""});
  std::ostringstream out;
  writeFastx(out, recs);
  std::istringstream in(out.str());
  const auto back = readFastx(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].seq, recs[0].seq);
  EXPECT_EQ(back[1].name, "b");
  EXPECT_EQ(back[1].comment, "note");
}

TEST(Fastx, RoundTripFastq) {
  std::vector<FastxRecord> recs;
  recs.push_back({"q", "", "ACGTACGT", "IIIIIIII"});
  std::ostringstream out;
  writeFastx(out, recs);
  std::istringstream in(out.str());
  const auto back = readFastx(in);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].seq, recs[0].seq);
  EXPECT_EQ(back[0].qual, recs[0].qual);
}

TEST(Fastx, RejectsMalformed) {
  std::istringstream bad1("ACGT\n");
  EXPECT_THROW(readFastx(bad1), std::runtime_error);
  std::istringstream bad2("@q\nACGT\nIIII\n");  // missing '+'
  EXPECT_THROW(readFastx(bad2), std::runtime_error);
  std::istringstream bad3("@q\nACGT\n+\nII\n");  // length mismatch
  EXPECT_THROW(readFastx(bad3), std::runtime_error);
}

TEST(Fastx, MissingFileThrows) {
  EXPECT_THROW(readFastxFile("/nonexistent/path.fa"), std::runtime_error);
}

TEST(Fastx, EmptyStream) {
  std::istringstream in("");
  EXPECT_TRUE(readFastx(in).empty());
}

TEST(Paf, SerializesAllFields) {
  PafRecord rec;
  rec.query_name = "read_1";
  rec.query_len = 100;
  rec.query_begin = 0;
  rec.query_end = 100;
  rec.reverse = true;
  rec.target_name = "chr";
  rec.target_len = 1'000'000;
  rec.target_begin = 500;
  rec.target_end = 602;
  rec.cigar = common::Cigar::parse("98=2X2D");
  finalizeFromCigar(rec);
  EXPECT_EQ(rec.matches, 98u);
  EXPECT_EQ(rec.alignment_len, 102u);
  const auto line = toPafLine(rec);
  EXPECT_EQ(line,
            "read_1\t100\t0\t100\t-\tchr\t1000000\t500\t602\t98\t102\t255"
            "\tcg:Z:98=2X2D");
}

TEST(Paf, OmitsCigarWhenEmpty) {
  PafRecord rec;
  // std::string("r") sidesteps GCC 12's -Wrestrict false positive
  // (PR105651) on the const char* assignment path.
  rec.query_name = std::string("r");
  rec.target_name = std::string("t");
  const auto line = toPafLine(rec);
  EXPECT_EQ(line.find("cg:Z:"), std::string::npos);
}

TEST(Paf, WriteAppendsNewline) {
  PafRecord rec;
  rec.query_name = std::string("r");
  rec.target_name = std::string("t");
  std::ostringstream out;
  writePaf(out, rec);
  EXPECT_EQ(out.str().back(), '\n');
}

TEST(Paf, RejectsMatchesExceedingAlignmentLen) {
  PafRecord rec;
  rec.query_name = std::string("r");
  rec.target_name = std::string("t");
  rec.matches = 10;
  rec.alignment_len = 9;  // inconsistent: must never be serialized
  EXPECT_THROW((void)toPafLine(rec), std::invalid_argument);
  std::ostringstream out;
  EXPECT_THROW(writePaf(out, rec), std::invalid_argument);
  rec.alignment_len = 10;
  EXPECT_NO_THROW((void)toPafLine(rec));
}

TEST(Paf, FinalizeFromCigarIsAlwaysConsistent) {
  PafRecord rec;
  rec.query_name = std::string("r");
  rec.target_name = std::string("t");
  rec.cigar = common::Cigar::parse("10=2X3I1D7=");
  finalizeFromCigar(rec);
  EXPECT_LE(rec.matches, rec.alignment_len);
  EXPECT_EQ(rec.matches, 17u);
  EXPECT_EQ(rec.alignment_len, 23u);
  EXPECT_NO_THROW((void)toPafLine(rec));
}

TEST(Paf, EmptyCigarFinalizesToZerosAndOmitsTag) {
  PafRecord rec;
  rec.query_name = std::string("r");
  rec.target_name = std::string("t");
  rec.matches = 42;  // stale aggregates must be reset, not serialized
  rec.alignment_len = 7;
  finalizeFromCigar(rec);
  EXPECT_EQ(rec.matches, 0u);
  EXPECT_EQ(rec.alignment_len, 0u);
  const auto line = toPafLine(rec);
  EXPECT_EQ(line.find("cg:Z:"), std::string::npos);
}

// --------------------------------------------------------------- PafWriter

PafRecord sampleRecord(int i) {
  PafRecord rec;
  rec.query_name = "q" + std::to_string(i);
  rec.query_len = 100;
  rec.query_end = 100;
  rec.target_name = std::string("t");
  rec.target_len = 1'000;
  rec.target_begin = static_cast<std::size_t>(i);
  rec.target_end = static_cast<std::size_t>(i) + 100;
  rec.cigar = common::Cigar::parse("100=");
  finalizeFromCigar(rec);
  return rec;
}

TEST(PafWriter, MatchesUnbufferedOutput) {
  std::ostringstream buffered, direct;
  {
    PafWriter writer(buffered);
    for (int i = 0; i < 50; ++i) {
      writer.write(sampleRecord(i));
      writePaf(direct, sampleRecord(i));
    }
    EXPECT_EQ(writer.written(), 50u);
  }  // destructor flushes
  EXPECT_EQ(buffered.str(), direct.str());
}

TEST(PafWriter, FlushThresholdPreservesOrderAndContent) {
  std::ostringstream small_buf, big_buf;
  {
    PafWriter a(small_buf, 64);  // forces many intermediate flushes
    PafWriter b(big_buf, 1 << 20);
    for (int i = 0; i < 200; ++i) {
      a.write(sampleRecord(i));
      b.write(sampleRecord(i));
    }
  }
  EXPECT_EQ(small_buf.str(), big_buf.str());
}

// ------------------------------------------------------------- FastxReader

TEST(FastxReader, StreamsSameRecordsAsBulkRead) {
  const std::string text =
      ">a c1\nACGT\nACGT\n@q1\nACGTACGT\n+\nIIIIIIII\n>b\nTTTT\n@q2 c\nGG\n+\n##\n";
  std::istringstream bulk_in(text);
  const auto bulk = readFastx(bulk_in);
  std::istringstream stream_in(text);
  FastxReader reader(stream_in);
  std::vector<FastxRecord> streamed;
  FastxRecord rec;
  while (reader.next(rec)) streamed.push_back(rec);
  ASSERT_EQ(streamed.size(), bulk.size());
  for (std::size_t i = 0; i < bulk.size(); ++i) {
    EXPECT_EQ(streamed[i].name, bulk[i].name) << i;
    EXPECT_EQ(streamed[i].comment, bulk[i].comment) << i;
    EXPECT_EQ(streamed[i].seq, bulk[i].seq) << i;
    EXPECT_EQ(streamed[i].qual, bulk[i].qual) << i;
  }
}

TEST(FastxReader, NextBatchHonorsLimitAndDrains) {
  std::string text;
  for (int i = 0; i < 10; ++i) {
    text += "@r" + std::to_string(i) + "\nACGT\n+\nIIII\n";
  }
  std::istringstream in(text);
  FastxReader reader(in);
  const auto b1 = reader.nextBatch(4);
  ASSERT_EQ(b1.size(), 4u);
  EXPECT_EQ(b1[0].name, "r0");
  const auto b2 = reader.nextBatch(4);
  ASSERT_EQ(b2.size(), 4u);
  EXPECT_EQ(b2[0].name, "r4");
  const auto b3 = reader.nextBatch(4);
  ASSERT_EQ(b3.size(), 2u);  // tail batch
  EXPECT_EQ(b3[1].name, "r9");
  EXPECT_TRUE(reader.nextBatch(4).empty());  // EOF
}

TEST(FastxReader, PropagatesMalformedInput) {
  std::istringstream bad("@q\nACGT\nIIII\n");  // missing '+'
  FastxReader reader(bad);
  FastxRecord rec;
  EXPECT_THROW(reader.next(rec), std::runtime_error);
}

}  // namespace
}  // namespace gx::io
