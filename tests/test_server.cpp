// Server layer: wire protocol round-trips, the latency histogram, the
// conn-site fault grammar, and the resident mapping server end to end —
// concurrent-client PAF byte-identity against the batch pipeline,
// deadline and queue-full shedding, per-connection isolation under
// malformed headers / torn frames / stalled readers, graceful drain
// with zero leaked sessions, and the close/stall/torn fault matrix.

#include <gtest/gtest.h>

#include <csignal>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "genasmx/common/error.hpp"
#include "genasmx/engine/engine.hpp"
#include "genasmx/engine/registry.hpp"
#include "genasmx/io/fastx.hpp"
#include "genasmx/io/fault.hpp"
#include "genasmx/io/paf.hpp"
#include "genasmx/mapper/index.hpp"
#include "genasmx/pipeline/pipeline.hpp"
#include "genasmx/readsim/genome.hpp"
#include "genasmx/readsim/read_simulator.hpp"
#include "genasmx/refmodel/reference.hpp"
#include "genasmx/server/client.hpp"
#include "genasmx/server/histogram.hpp"
#include "genasmx/server/protocol.hpp"
#include "genasmx/server/server.hpp"
#include "genasmx/server/session.hpp"
#include "genasmx/util/thread_pool.hpp"

#ifdef __GLIBCXX__
#include <ext/stdio_filebuf.h>
#endif

namespace gx::server {
namespace {

using common::ErrorCode;

// ------------------------------------------------------------ fixture

/// One simulated genome + index + read set shared by every server test
/// (index builds are the expensive part; the contract under test is
/// identical for any input).
struct TestWorld {
  std::string genome;
  refmodel::Reference ref;
  mapper::MinimizerIndex index;
  std::vector<io::FastxRecord> reads;
  std::vector<bool> reverse_strand;  ///< simulation truth, per read

  [[nodiscard]] mapper::IndexView view() const { return index.view(ref); }
};

TestWorld& world() {
  static TestWorld* w = [] {
    auto* t = new TestWorld;
    readsim::GenomeConfig g;
    g.length = 120'000;
    g.seed = 17;
    g.repeat_fraction = 0.05;
    t->genome = readsim::generateGenome(g);
    t->ref = refmodel::Reference("ref", std::string(t->genome));
    t->index.build(t->ref, 15, 10, 64);
    auto rcfg = readsim::ReadSimConfig::pacbioClr(96, 700);
    rcfg.seed = 23;
    for (const auto& r : readsim::simulateReads(t->genome, rcfg)) {
      io::FastxRecord rec;
      rec.name = r.name;
      rec.seq = r.seq;
      rec.qual.assign(r.seq.size(), 'I');
      t->reads.push_back(std::move(rec));
      t->reverse_strand.push_back(r.reverse_strand);
    }
    return t;
  }();
  return *w;
}

std::string toFastq(const io::FastxRecord& rec) {
  std::string out = "@" + rec.name + "\n" + rec.seq + "\n+\n" + rec.qual +
                    "\n";
  return out;
}

std::string toFastq(const std::vector<io::FastxRecord>& recs) {
  std::string out;
  for (const auto& r : recs) out += toFastq(r);
  return out;
}

/// The batch-tool ground truth: map `reads` through a run-to-completion
/// pipeline over the same index and serialize exactly as the server does.
std::string expectedPaf(const std::vector<io::FastxRecord>& reads,
                        pipeline::PipelineConfig cfg = {}) {
  pipeline::MappingPipeline pipe(world().view(), std::move(cfg));
  std::string out;
  for (const auto& rec : pipe.mapBatch(reads)) {
    out += io::toPafLine(rec);
    out += '\n';
  }
  return out;
}

std::vector<io::FastxRecord> slice(std::size_t begin, std::size_t end) {
  const auto& all = world().reads;
  end = std::min(end, all.size());
  return {all.begin() + static_cast<std::ptrdiff_t>(begin),
          all.begin() + static_cast<std::ptrdiff_t>(end)};
}

/// Owns a MapServer on a unique unix socket plus its serve() thread.
struct ServerHandle {
  std::string path;
  std::unique_ptr<MapServer> server;
  std::thread thread;

  explicit ServerHandle(ServerConfig cfg) {
    static std::atomic<int> counter{0};
    path = "/tmp/gx_test_srv_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock";
    cfg.unix_path = path;
    server = std::make_unique<MapServer>(world().view(), cfg);
    server->start();  // listener bound: clients may connect immediately
    thread = std::thread([this] { server->serve(); });
  }

  ~ServerHandle() {
    if (thread.joinable()) stop();
  }

  /// Drain, join, and assert the no-leak invariant every test inherits.
  ServerStats stop() {
    server->requestDrain();
    thread.join();
    const ServerStats stats = server->statsSnapshot();
    EXPECT_EQ(stats.connections_accepted, stats.connections_closed)
        << "leaked sessions";
    return stats;
  }

  [[nodiscard]] MapClient client() const {
    MapClient c;
    const common::Status st = c.connectUnix(path);
    EXPECT_TRUE(st.ok()) << st.message();
    return c;
  }
};

// ----------------------------------------------------------- protocol

TEST(Protocol, MapHeaderRoundTrip) {
  RequestHeader h;
  h.kind = RequestKind::kMap;
  h.id = "req-7";
  h.bytes = 1234;
  h.deadline_ms = 250;
  const std::string line = formatRequestHeader(h);
  EXPECT_EQ(line, "MAP id=req-7 bytes=1234 deadline_ms=250\n");

  RequestHeader back;
  const auto st =
      parseRequestHeader(std::string_view(line).substr(0, line.size() - 1),
                         back);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(back.kind, RequestKind::kMap);
  EXPECT_EQ(back.id, "req-7");
  EXPECT_EQ(back.bytes, 1234u);
  EXPECT_EQ(back.deadline_ms, 250u);
}

TEST(Protocol, StatsAndPingParse) {
  RequestHeader h;
  ASSERT_TRUE(parseRequestHeader("STATS", h).ok());
  EXPECT_EQ(h.kind, RequestKind::kStats);
  ASSERT_TRUE(parseRequestHeader("PING", h).ok());
  EXPECT_EQ(h.kind, RequestKind::kPing);
}

TEST(Protocol, RejectsMalformedRequests) {
  RequestHeader h;
  for (const char* bad :
       {"", "NOP id=x bytes=1", "MAP bytes=1", "MAP id=x", "MAP id=x bytes=-1",
        "MAP id=x bytes=1 deadline_ms=zz", "MAP id=x bytes=1 extra=1",
        "MAP id bytes=1", "STATS now", "MAP id= bytes=1",
        "MAP id=has\ttab bytes=1"}) {
    const auto st = parseRequestHeader(bad, h);
    EXPECT_FALSE(st.ok()) << "accepted: '" << bad << "'";
    EXPECT_EQ(st.code(), ErrorCode::kMalformedInput) << bad;
  }
}

TEST(Protocol, OkHeaderRoundTrip) {
  ResponseHeader h;
  h.ok = true;
  h.id = "r1";
  h.reads = 3;
  h.records = 4;
  h.bytes = 512;
  h.skipped = 1;
  h.failed = 2;
  h.usec = 9876;
  const std::string line = formatOkHeader(h);
  ResponseHeader back;
  const auto st = parseResponseHeader(
      std::string_view(line).substr(0, line.size() - 1), back);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.id, "r1");
  EXPECT_EQ(back.reads, 3u);
  EXPECT_EQ(back.records, 4u);
  EXPECT_EQ(back.bytes, 512u);
  EXPECT_EQ(back.skipped, 1u);
  EXPECT_EQ(back.failed, 2u);
  EXPECT_EQ(back.usec, 9876u);
}

TEST(Protocol, ErrHeaderRoundTripAndNewlineSanitized) {
  const std::string line =
      formatErrHeader("r2", ErrorCode::kResourceLimit, true, "queue-full",
                      "try\nlater");
  EXPECT_EQ(line.find('\n'), line.size() - 1) << "embedded newline survived";
  ResponseHeader back;
  const auto st = parseResponseHeader(
      std::string_view(line).substr(0, line.size() - 1), back);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.id, "r2");
  EXPECT_EQ(back.code, ErrorCode::kResourceLimit);
  EXPECT_TRUE(back.retry);
  EXPECT_EQ(back.reason, "queue-full");
  EXPECT_EQ(back.msg, "try later");
}

// ---------------------------------------------------------- histogram

TEST(LatencyHistogramTest, SmallValuesExactAndQuantilesMonotone) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 15u);
  EXPECT_EQ(h.max(), 15u);

  LatencyHistogram big;
  for (std::uint64_t v = 1; v <= 100'000; v += 97) big.record(v);
  std::uint64_t prev = 0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const std::uint64_t cur = big.quantile(q);
    EXPECT_GE(cur, prev) << q;
    prev = cur;
  }
  // Log-bucketed: relative error stays within one sub-bucket (~1/16).
  EXPECT_NEAR(static_cast<double>(big.quantile(0.5)), 50'000.0, 50'000.0 / 8);
}

TEST(LatencyHistogramTest, MergeAddsCounts) {
  LatencyHistogram a, b;
  a.record(100);
  b.record(1'000'000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 1'000'000u);
  EXPECT_GE(a.quantile(1.0), 900'000u);
}

// ------------------------------------------------------- fault grammar

TEST(ConnFaults, GrammarAcceptsConnSiteKinds) {
  const auto plan = io::FaultPlan::parse("close@conn:2,stall@conn:0,torn@conn:5");
  EXPECT_TRUE(plan.connClose(2));
  EXPECT_FALSE(plan.connClose(1));
  EXPECT_TRUE(plan.connStall(0));
  EXPECT_FALSE(plan.connStall(2));
  EXPECT_TRUE(plan.connTorn(5));
  EXPECT_FALSE(plan.connTorn(0));
}

TEST(ConnFaults, GrammarRejectsMismatchedSites) {
  for (const char* bad : {"close@rec:1", "stall@out:0", "torn@4096",
                          "eio@conn:1", "truncate@conn:0", "close@conn"}) {
    EXPECT_THROW((void)io::FaultPlan::parse(bad), common::Error) << bad;
  }
}

// ------------------------------------------------- pipeline foundation

TEST(Cancellation, ExpiredDeadlineCancelsAtStageBoundary) {
  pipeline::MappingPipeline pipe(world().view(), pipeline::PipelineConfig{});
  pipeline::Cancellation cancel;
  cancel.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  try {
    (void)pipe.mapBatch(world().reads, cancel, nullptr);
    FAIL() << "expired deadline did not cancel";
  } catch (const common::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceLimit);
  }
}

TEST(BatchOutputMap, CountsPartitionTheRecordVector) {
  pipeline::MappingPipeline pipe(world().view(), pipeline::PipelineConfig{});
  pipeline::BatchOutputMap outmap;
  const auto records =
      pipe.mapBatch(world().reads, pipeline::Cancellation{}, &outmap);
  ASSERT_EQ(outmap.records_per_read.size(), world().reads.size());
  ASSERT_EQ(outmap.read_failed.size(), world().reads.size());
  std::size_t total = 0;
  for (const auto n : outmap.records_per_read) total += n;
  EXPECT_EQ(total, records.size());
}

TEST(ThreadPoolGroups, ConcurrentParallelForCallsAreIsolated) {
  util::ThreadPool pool(4);
  std::atomic<std::uint64_t> sum_a{0}, sum_b{0};
  std::thread ta([&] {
    for (int round = 0; round < 50; ++round) {
      pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          sum_a.fetch_add(i, std::memory_order_relaxed);
        }
      });
    }
  });
  std::thread tb([&] {
    for (int round = 0; round < 50; ++round) {
      pool.parallel_for(2000, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          sum_b.fetch_add(i, std::memory_order_relaxed);
        }
      });
    }
  });
  ta.join();
  tb.join();
  EXPECT_EQ(sum_a.load(), 50ull * (999ull * 1000ull / 2));
  EXPECT_EQ(sum_b.load(), 50ull * (1999ull * 2000ull / 2));
}

TEST(ThreadPoolGroups, ParallelForExceptionStaysInItsGroup) {
  util::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t b, std::size_t) {
                                   if (b == 0) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  // The pool survives and the next caller is unaffected.
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](std::size_t b, std::size_t e) {
    ran.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(ran.load(), 8);
}

// ------------------------------------------------------------ session

TEST(MapSessionTest, GroupSplitsPerRequestAndIsolatesBadPayloads) {
  engine::AlignmentEngine engine{engine::EngineConfig{}};
  pipeline::PipelineConfig cfg;  // on_bad_record = abort
  MapSession session(world().view(), engine, cfg);

  const std::string good1 = toFastq(slice(0, 4));
  const std::string bad = "@broken\nACGT\n+\nI\n";  // qual length mismatch
  const std::string good2 = toFastq(slice(4, 9));
  std::vector<RequestResult> results;
  session.mapGroup({good1, bad, good2}, pipeline::Cancellation{}, results);
  ASSERT_EQ(results.size(), 3u);

  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[0].reads, 4u);
  EXPECT_EQ(results[0].paf, expectedPaf(slice(0, 4)));

  EXPECT_FALSE(results[1].status.ok());
  EXPECT_EQ(results[1].status.code(), ErrorCode::kMalformedInput);

  EXPECT_TRUE(results[2].status.ok());
  EXPECT_EQ(results[2].reads, 5u);
  EXPECT_EQ(results[2].paf, expectedPaf(slice(4, 9)));
}

// ---------------------------------------------------- server: identity

TEST(MapServerTest, ConcurrentClientsGetByteIdenticalPafOneWorker) {
  ServerConfig cfg;
  cfg.workers = 1;
  ServerHandle srv(cfg);

  constexpr std::size_t kClients = 6;
  constexpr std::size_t kPerClient = 16;
  std::vector<std::string> expected(kClients), payload(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    const auto reads = slice(c * kPerClient, (c + 1) * kPerClient);
    payload[c] = toFastq(reads);
    expected[c] = expectedPaf(reads);
  }

  std::vector<std::thread> threads;
  std::vector<std::string> got(kClients);
  // char, not bool: vector<bool> bit-packs, and adjacent flags written
  // from different client threads would share a word (a TSan-visible
  // race in the test itself).
  std::vector<char> ok(kClients, 0);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      MapClient client = srv.client();
      ResponseHeader reply;
      const auto st = client.map("id" + std::to_string(c), payload[c], 0,
                                 reply, got[c]);
      ok[c] = st.ok() && reply.ok && reply.reads == kPerClient;
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_TRUE(ok[c]) << c;
    EXPECT_EQ(got[c], expected[c]) << "client " << c;
  }
  const ServerStats stats = srv.stop();
  EXPECT_EQ(stats.ok_replies, kClients);
  EXPECT_EQ(stats.latency.count(), kClients);
}

TEST(MapServerTest, ConcurrentClientsGetByteIdenticalPafFourWorkers) {
  ServerConfig cfg;
  cfg.workers = 4;
  cfg.coalesce_requests = 3;  // exercise cross-request coalescing
  ServerHandle srv(cfg);

  constexpr std::size_t kClients = 8;
  std::vector<std::string> expected(kClients), payload(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    const auto reads = slice(c * 12, (c + 1) * 12);
    payload[c] = toFastq(reads);
    expected[c] = expectedPaf(reads);
  }

  std::vector<std::thread> threads;
  std::vector<std::string> got(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      MapClient client = srv.client();
      // Two rounds per client so requests interleave with other clients'.
      for (int round = 0; round < 2; ++round) {
        ResponseHeader reply;
        std::string body;
        const auto st = client.map("x", payload[c], 0, reply, body);
        if (!st.ok() || !reply.ok) return;
        if (round == 0) got[c] = body;
        if (body != got[c]) got[c] = "<nondeterministic>";
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(got[c], expected[c]) << "client " << c;
  }
  srv.stop();
}

// ---------------------------------------------------- server: shedding

TEST(MapServerTest, DeadlineExpiryIsARetryableErrNotAHang) {
  ServerConfig cfg;
  cfg.workers = 1;
  ServerHandle srv(cfg);

  // Big enough that the deadline is long gone by the first stage
  // boundary; the reply must be an explicit retryable deadline ERR.
  std::string big;
  for (int i = 0; i < 4; ++i) big += toFastq(world().reads);
  MapClient client = srv.client();
  ResponseHeader reply;
  std::string body;
  const auto st = client.map("dl", big, 1, reply, body);
  ASSERT_TRUE(st.ok()) << st.message();
  ASSERT_FALSE(reply.ok);
  EXPECT_EQ(reply.reason, "deadline");
  EXPECT_TRUE(reply.retry);
  EXPECT_EQ(reply.code, ErrorCode::kResourceLimit);

  // The same connection keeps working afterwards.
  const auto again = client.map("ok", toFastq(slice(0, 3)), 0, reply, body);
  ASSERT_TRUE(again.ok()) << again.message();
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(body, expectedPaf(slice(0, 3)));

  const ServerStats stats = srv.stop();
  EXPECT_GE(stats.shed_deadline, 1u);
}

TEST(MapServerTest, FullQueueShedsWithExplicitRetryReply) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_queue = 1;
  cfg.coalesce_requests = 1;
  cfg.pipeline.engine.threads = 1;  // slow the worker down deterministically
  ServerHandle srv(cfg);

  // Big enough to keep the single worker busy for seconds — the shed
  // probe below lands ~300ms in, so the margin is wide.
  std::string big;
  for (int i = 0; i < 32; ++i) big += toFastq(world().reads);

  std::atomic<bool> a_ok{false};
  std::thread ta([&] {
    MapClient client = srv.client();
    ResponseHeader reply;
    std::string body;
    const auto st = client.map("big", big, 0, reply, body);
    a_ok = st.ok() && reply.ok;
  });
  // Let the worker pick up the big request, then park one request in the
  // queue and overflow it with a third.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  std::atomic<bool> b_sent{false};
  std::thread tb([&] {
    MapClient client = srv.client();
    ResponseHeader reply;
    std::string body;
    b_sent = true;
    (void)client.map("queued", toFastq(slice(0, 2)), 0, reply, body);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(b_sent.load());

  MapClient shed_client = srv.client();
  ResponseHeader reply;
  std::string body;
  const auto st = shed_client.map("shed", toFastq(slice(2, 4)), 0, reply,
                                  body);
  ta.join();
  tb.join();
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_TRUE(a_ok.load());
  ASSERT_FALSE(reply.ok) << "queue-full request was admitted";
  EXPECT_EQ(reply.reason, "queue-full");
  EXPECT_TRUE(reply.retry);

  const ServerStats stats = srv.stop();
  EXPECT_GE(stats.shed_queue_full, 1u);
}

// --------------------------------------------------- server: isolation

TEST(MapServerTest, MalformedHeaderKillsOnlyItsConnection) {
  ServerHandle srv(ServerConfig{});
  MapClient bad = srv.client();
  ASSERT_TRUE(bad.sendRaw("BOGUS gibberish\n").ok());
  ResponseHeader reply;
  std::string body;
  ASSERT_TRUE(bad.readReply(reply, body).ok());
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.reason, "bad-header");
  EXPECT_FALSE(reply.retry);
  EXPECT_EQ(reply.code, ErrorCode::kMalformedInput);

  MapClient good = srv.client();
  const auto st = good.map("after", toFastq(slice(0, 2)), 0, reply, body);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(body, expectedPaf(slice(0, 2)));

  const ServerStats stats = srv.stop();
  EXPECT_EQ(stats.malformed, 1u);
}

TEST(MapServerTest, TornFrameDisconnectLeavesServerServing) {
  ServerHandle srv(ServerConfig{});
  {
    MapClient torn = srv.client();
    const std::string payload = toFastq(slice(0, 4));
    torn.abortMidFrame("torn", payload.size(),
                       std::string_view(payload).substr(0, 10));
  }
  // The server must absorb the torn frame and keep serving.
  MapClient good = srv.client();
  ResponseHeader reply;
  std::string body;
  const auto st = good.map("after", toFastq(slice(0, 2)), 0, reply, body);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(body, expectedPaf(slice(0, 2)));

  const ServerStats stats = srv.stop();
  EXPECT_EQ(stats.torn_frames, 1u);
}

TEST(MapServerTest, OversizedRequestRejectedWithoutBuffering) {
  ServerConfig cfg;
  cfg.max_request_bytes = 64;
  ServerHandle srv(cfg);
  MapClient client = srv.client();
  ResponseHeader reply;
  std::string body;
  const auto st = client.map("huge", toFastq(slice(0, 4)), 0, reply, body);
  ASSERT_TRUE(st.ok()) << st.message();
  ASSERT_FALSE(reply.ok);
  EXPECT_EQ(reply.reason, "too-large");
  EXPECT_FALSE(reply.retry);
  srv.stop();
}

TEST(MapServerTest, AbortPolicyFailsBadPayloadOnly) {
  ServerConfig cfg;  // pipeline default on_bad_record = abort
  ServerHandle srv(cfg);

  MapClient bad = srv.client();
  ResponseHeader reply;
  std::string body;
  auto st = bad.map("bad", "@r\nACGT\n+\nI\n", 0, reply, body);
  ASSERT_TRUE(st.ok()) << st.message();
  ASSERT_FALSE(reply.ok);
  EXPECT_EQ(reply.reason, "bad-payload");
  EXPECT_EQ(reply.code, ErrorCode::kMalformedInput);
  EXPECT_FALSE(reply.retry);

  MapClient good = srv.client();
  st = good.map("good", toFastq(slice(0, 2)), 0, reply, body);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(body, expectedPaf(slice(0, 2)));
  srv.stop();
}

TEST(MapServerTest, SkipPolicyDegradesMalformedRecordsPerRequest) {
  ServerConfig cfg;
  cfg.pipeline.on_bad_record = io::OnBadRecord::kSkip;  // the mapd default
  ServerHandle srv(cfg);

  const std::string payload = toFastq(slice(0, 2)) + "@broken\nACGT\n+\nI\n" +
                              toFastq(slice(2, 4));
  MapClient client = srv.client();
  ResponseHeader reply;
  std::string body;
  const auto st = client.map("skip", payload, 0, reply, body);
  ASSERT_TRUE(st.ok()) << st.message();
  ASSERT_TRUE(reply.ok) << reply.msg;
  EXPECT_EQ(reply.reads, 4u);
  EXPECT_EQ(reply.skipped, 1u);
  EXPECT_EQ(body, expectedPaf(slice(0, 4)));
  srv.stop();
}

// ---------------------------------------------- server: fault matrix

TEST(MapServerFaults, CloseFaultDropsConnectionServerKeepsServing) {
  const io::ScopedFaultInjection guard(io::FaultPlan::parse("close@conn:0"));
  ServerHandle srv(ServerConfig{});

  MapClient victim = srv.client();  // accept order 0
  ResponseHeader reply;
  std::string body;
  const auto st = victim.map("v", toFastq(slice(0, 2)), 0, reply, body);
  EXPECT_FALSE(st.ok()) << "injected close still produced a reply";

  MapClient next = srv.client();  // accept order 1: unaffected
  const auto st2 = next.map("n", toFastq(slice(0, 2)), 0, reply, body);
  ASSERT_TRUE(st2.ok()) << st2.message();
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(body, expectedPaf(slice(0, 2)));

  const ServerStats stats = srv.stop();
  EXPECT_EQ(stats.faults_injected, 1u);
}

TEST(MapServerFaults, TornFaultCountsAndIsolates) {
  const io::ScopedFaultInjection guard(io::FaultPlan::parse("torn@conn:0"));
  ServerHandle srv(ServerConfig{});

  MapClient victim = srv.client();
  ResponseHeader reply;
  std::string body;
  const auto st = victim.map("v", toFastq(slice(0, 4)), 0, reply, body);
  EXPECT_FALSE(st.ok());

  MapClient next = srv.client();
  const auto st2 = next.map("n", toFastq(slice(0, 2)), 0, reply, body);
  ASSERT_TRUE(st2.ok()) << st2.message();
  EXPECT_TRUE(reply.ok);

  const ServerStats stats = srv.stop();
  EXPECT_EQ(stats.torn_frames, 1u);
  EXPECT_EQ(stats.faults_injected, 1u);
}

TEST(MapServerFaults, StallFaultShedsSlowClientWithinTimeout) {
  const io::ScopedFaultInjection guard(io::FaultPlan::parse("stall@conn:0"));
  ServerConfig cfg;
  cfg.write_timeout_ms = 100;
  ServerHandle srv(cfg);

  MapClient victim = srv.client();
  ResponseHeader reply;
  std::string body;
  const auto t0 = std::chrono::steady_clock::now();
  const auto st = victim.map("v", toFastq(slice(0, 2)), 0, reply, body);
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(st.ok()) << "stalled connection still got a reply";
  // Shed in about one write timeout — a mapping worker was not wedged.
  EXPECT_LT(waited, std::chrono::seconds(5));

  MapClient next = srv.client();
  const auto st2 = next.map("n", toFastq(slice(0, 2)), 0, reply, body);
  ASSERT_TRUE(st2.ok()) << st2.message();
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(body, expectedPaf(slice(0, 2)));

  const ServerStats stats = srv.stop();
  EXPECT_EQ(stats.write_timeouts, 1u);
  EXPECT_EQ(stats.faults_injected, 1u);
}

// -------------------------------------------------------- server: drain

TEST(MapServerTest, DrainFinishesInFlightRequests) {
  ServerConfig cfg;
  cfg.workers = 1;
  ServerHandle srv(cfg);

  std::string big;
  for (int i = 0; i < 3; ++i) big += toFastq(world().reads);
  std::atomic<bool> got_reply{false};
  std::thread client_thread([&] {
    MapClient client = srv.client();
    ResponseHeader reply;
    std::string body;
    const auto st = client.map("inflight", big, 0, reply, body);
    got_reply = st.ok() && reply.ok && reply.reads == world().reads.size() * 3;
  });
  // Give the request time to be admitted, then drain mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  const ServerStats stats = srv.stop();  // requestDrain + join + no-leak check
  client_thread.join();
  EXPECT_TRUE(got_reply.load()) << "drain dropped an in-flight request";
  EXPECT_EQ(stats.ok_replies, 1u);

  // Draining means not accepting: a fresh connection must be refused.
  MapClient late;
  EXPECT_FALSE(late.connectUnix(srv.path).ok());
}

TEST(MapServerTest, StatsVerbReturnsJson) {
  ServerHandle srv(ServerConfig{});
  MapClient client = srv.client();
  ASSERT_TRUE(client.ping().ok());
  ResponseHeader reply;
  std::string body;
  ASSERT_TRUE(client.map("one", toFastq(slice(0, 2)), 0, reply, body).ok());
  std::string json;
  ASSERT_TRUE(client.stats(json).ok());
  for (const char* key :
       {"\"connections\"", "\"requests\"", "\"latency_usec\"",
        "\"stage_seconds\"", "\"reads_per_sec\"", "\"workers\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing";
  }
  srv.stop();
}

// ------------------------------------- server: per-read poison (PR-8)

/// Wraps the real backend but throws on any query containing 'Z' — the
/// same deterministic poison idiom the engine fault matrix uses.
class ThrowingAligner final : public engine::Aligner {
 public:
  explicit ThrowingAligner(const engine::AlignerConfig& cfg)
      : inner_(engine::makeAligner("windowed-improved", cfg)) {}
  common::AlignmentResult align(std::string_view target,
                                std::string_view query) override {
    maybeThrow(query);
    return inner_->align(target, query);
  }
  int distance(std::string_view target, std::string_view query,
               int cap) override {
    maybeThrow(query);
    return inner_->distance(target, query, cap);
  }
  std::string_view name() const noexcept override { return "throwing-test"; }

 private:
  static void maybeThrow(std::string_view query) {
    if (query.find('Z') != std::string_view::npos) {
      throw common::Error(ErrorCode::kInternal, "injected solver failure");
    }
  }
  engine::AlignerPtr inner_;
};

TEST(MapServerFaults, PoisonReadDegradesInPlaceServerStaysUp) {
  auto& registry = engine::AlignerRegistry::instance();
  if (!registry.contains("throwing-test")) {
    registry.add("throwing-test", "fault-matrix test backend",
                 [](const engine::AlignerConfig& cfg) {
                   return std::make_unique<ThrowingAligner>(cfg);
                 });
  }
  ServerConfig cfg;
  cfg.pipeline.engine.backend = "throwing-test";
  ServerHandle srv(cfg);

  // The poison marker must survive into the aligner's query text: a
  // minus-strand read is reverse-complemented first, and complement()
  // folds any non-ACGT byte to 'A' — so poison a plus-strand read.
  std::size_t fwd = 0;
  while (fwd < world().reads.size() && world().reverse_strand[fwd]) ++fwd;
  ASSERT_LT(fwd, world().reads.size()) << "no plus-strand read simulated";
  io::FastxRecord poison;
  poison.name = "poison";
  poison.seq = world().reads[fwd].seq;
  poison.seq[poison.seq.size() / 2] = 'Z';
  poison.qual.assign(poison.seq.size(), 'I');

  const std::string payload = toFastq(slice(0, 2)) + toFastq(poison) +
                              toFastq(slice(2, 4));
  MapClient client = srv.client();
  ResponseHeader reply;
  std::string body;
  const auto st = client.map("poison", payload, 0, reply, body);
  ASSERT_TRUE(st.ok()) << st.message();
  ASSERT_TRUE(reply.ok) << "per-read failure escalated to request failure: "
                        << reply.msg;
  EXPECT_EQ(reply.reads, 5u);
  EXPECT_GE(reply.failed, 1u);

  // A clean follow-up request on the same server is unaffected.
  const auto st2 = client.map("clean", toFastq(slice(0, 2)), 0, reply, body);
  ASSERT_TRUE(st2.ok()) << st2.message();
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(body, expectedPaf(slice(0, 2), [] {
              pipeline::PipelineConfig c;
              c.engine.backend = "throwing-test";
              return c;
            }()));
  const ServerStats stats = srv.stop();
  EXPECT_GE(stats.failed_reads, 1u);
}

// ------------------------------------------------------------ sigpipe

#ifdef __GLIBCXX__
TEST(Sigpipe, ClosedPipeSurfacesAsIoFatalNotSignalDeath) {
  // Every tool main() ignores SIGPIPE (cli::ignoreSigpipe); replicate
  // that disposition, then write PAF into a pipe whose read end is gone.
  // The contract: the process survives (no SIGPIPE kill) and the writer
  // surfaces one kIoFatal error at flush/close.
  std::signal(SIGPIPE, SIG_IGN);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);
  {
    __gnu_cxx::stdio_filebuf<char> buf(fds[1], std::ios::out);
    std::ostream out(&buf);
    io::PafWriter writer(out, 1);  // flush every record
    io::PafRecord rec;
    rec.query_name = "q";
    rec.query_len = 4;
    rec.query_end = 4;
    rec.target_name = "t";
    rec.target_len = 4;
    rec.target_end = 4;
    bool io_fatal = false;
    try {
      for (int i = 0; i < 4096; ++i) writer.write(rec);
      writer.close();
    } catch (const common::Error& e) {
      io_fatal = e.code() == ErrorCode::kIoFatal;
    }
    EXPECT_TRUE(io_fatal) << "EPIPE did not surface as kIoFatal";
  }
  // fd already closed by the filebuf; reaching this line IS the test —
  // with the default disposition the process would have died on signal.
}
#endif

}  // namespace
}  // namespace gx::server
