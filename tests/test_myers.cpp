#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "genasmx/common/sequence.hpp"
#include "genasmx/common/verify.hpp"
#include "genasmx/myers/myers.hpp"
#include "genasmx/refdp/edit_dp.hpp"
#include "genasmx/util/prng.hpp"

namespace gx::myers {
namespace {

TEST(MyersDistance, KnownCases) {
  EXPECT_EQ(myersDistance("", ""), 0);
  EXPECT_EQ(myersDistance("ACGT", "ACGT"), 0);
  EXPECT_EQ(myersDistance("ACGT", ""), 4);
  EXPECT_EQ(myersDistance("", "ACGT"), 4);
  EXPECT_EQ(myersDistance("ACGT", "AGGT"), 1);
  EXPECT_EQ(myersDistance("ACGT", "AGT"), 1);
  EXPECT_EQ(myersDistance("AGT", "ACGT"), 1);
  EXPECT_EQ(myersDistance("AAAA", "TTTT"), 4);
  EXPECT_EQ(myersDistance("GCTAGCT", "CTAGCTA"), 2);
}

TEST(MyersDistance, MaxKCapFailsGracefully) {
  MyersConfig cfg;
  cfg.max_k = 3;
  EXPECT_EQ(myersDistance("AAAAAAAA", "TTTTTTTT", cfg), -1);
  cfg.max_k = 8;
  EXPECT_EQ(myersDistance("AAAAAAAA", "TTTTTTTT", cfg), 8);
}

TEST(MyersDistance, SmallInitialBandStillExact) {
  // Force repeated band doubling.
  util::Xoshiro256 rng(31);
  MyersConfig cfg;
  cfg.initial_k = 1;
  for (int t = 0; t < 15; ++t) {
    const auto a = common::randomSequence(rng, 100 + rng.below(100));
    const auto b = common::mutateSequence(rng, a, rng.below(40));
    EXPECT_EQ(myersDistance(a, b, cfg), refdp::editDistance(a, b));
  }
}

class MyersSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MyersSweep, MatchesOracle) {
  const auto [seed, len, edits] = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 6151 + 7);
  for (int trial = 0; trial < 6; ++trial) {
    const auto t = common::randomSequence(rng, static_cast<std::size_t>(len));
    const auto q =
        common::mutateSequence(rng, t, static_cast<std::size_t>(edits));
    EXPECT_EQ(myersDistance(t, q), refdp::editDistance(t, q))
        << "t=" << t << "\nq=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    LengthsByEdits, MyersSweep,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::Values(1, 30, 63, 64, 65, 127, 128, 129,
                                         200, 500),
                       ::testing::Values(0, 1, 5, 20)),
    [](const auto& info) {
      // Built left-to-right from a std::string: the const char* +
      // std::string&& overload trips GCC 12's -Wrestrict (PR105651).
      return std::string("s") + std::to_string(std::get<0>(info.param)) +
             "_len" + std::to_string(std::get<1>(info.param)) + "_e" +
             std::to_string(std::get<2>(info.param));
    });

TEST(MyersDistance, UnrelatedPairs) {
  util::Xoshiro256 rng(33);
  for (int t = 0; t < 15; ++t) {
    const auto a = common::randomSequence(rng, 10 + rng.below(150));
    const auto b = common::randomSequence(rng, 10 + rng.below(150));
    EXPECT_EQ(myersDistance(a, b), refdp::editDistance(a, b));
  }
}

TEST(MyersAlign, CigarValidAndOptimal) {
  util::Xoshiro256 rng(35);
  for (int t = 0; t < 30; ++t) {
    const auto a = common::randomSequence(rng, 10 + rng.below(200));
    const auto b = common::mutateSequence(rng, a, rng.below(25));
    const auto res = myersAlign(a, b);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.edit_distance, refdp::editDistance(a, b));
    const auto v = common::verifyAlignment(a, b, res.cigar);
    ASSERT_TRUE(v.valid) << v.error;
    EXPECT_EQ(static_cast<int>(v.cost), res.edit_distance);
  }
}

TEST(MyersAlign, EmptyInputs) {
  EXPECT_EQ(myersAlign("", "").edit_distance, 0);
  EXPECT_EQ(myersAlign("ACGT", "").cigar.str(), "4D");
  EXPECT_EQ(myersAlign("", "ACGT").cigar.str(), "4I");
}

TEST(MyersAlign, IdenticalLongSequences) {
  util::Xoshiro256 rng(36);
  const auto s = common::randomSequence(rng, 3000);
  const auto res = myersAlign(s, s);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.edit_distance, 0);
  EXPECT_EQ(res.cigar.str(), "3000=");
}

TEST(MyersAlign, MultiBlockBoundaries) {
  util::Xoshiro256 rng(37);
  for (int len : {63, 64, 65, 127, 128, 129, 191, 192, 193, 320}) {
    const auto t = common::randomSequence(rng, static_cast<std::size_t>(len));
    const auto q = common::mutateSequence(rng, t, 7);
    const auto res = myersAlign(t, q);
    ASSERT_TRUE(res.ok) << len;
    EXPECT_EQ(res.edit_distance, refdp::editDistance(t, q)) << len;
    EXPECT_TRUE(common::verifyAlignment(t, q, res.cigar).valid) << len;
  }
}

TEST(MyersAlign, LongReadScale) {
  // 10kb at ~10% error — the paper's workload shape for Edlib.
  util::Xoshiro256 rng(38);
  const auto t = common::randomSequence(rng, 10000);
  const auto q = common::mutateSequence(rng, t, 1000);
  const auto res = myersAlign(t, q);
  ASSERT_TRUE(res.ok);
  const auto v = common::verifyAlignment(t, q, res.cigar);
  ASSERT_TRUE(v.valid) << v.error;
  EXPECT_EQ(static_cast<int>(v.cost), res.edit_distance);
  EXPECT_LE(res.edit_distance, 1000);
}

TEST(MyersAligner, ReusableAcrossCalls) {
  MyersAligner aligner;
  util::Xoshiro256 rng(39);
  for (int t = 0; t < 10; ++t) {
    const auto a = common::randomSequence(rng, 50 + rng.below(100));
    const auto b = common::mutateSequence(rng, a, rng.below(12));
    EXPECT_EQ(aligner.distance(a, b), refdp::editDistance(a, b));
    const auto res = aligner.align(a, b);
    ASSERT_TRUE(res.ok);
    EXPECT_TRUE(common::verifyAlignment(a, b, res.cigar).valid);
  }
}

TEST(MyersDistance, VeryAsymmetricLengths) {
  util::Xoshiro256 rng(40);
  const auto a = common::randomSequence(rng, 500);
  const auto b = a.substr(100, 80);
  EXPECT_EQ(myersDistance(a, b), refdp::editDistance(a, b));
  EXPECT_EQ(myersDistance(b, a), refdp::editDistance(b, a));
}

}  // namespace
}  // namespace gx::myers
