// Sketch layer + candidate prefilter: pinned weighted-minhash estimator
// behaviour (identical / disjoint / shifted-repeat / multiplicity),
// zero-allocation steady state, monotone-deque extraction equivalence
// against a reference window rescan, and the pipeline-level prefilter
// contracts — recall within tolerance of the unfiltered flow, byte-
// identical PAF across thread counts and scoring modes, keep_ratio=0
// equivalence with the filter off, and single-scan minimizer reuse.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "genasmx/common/sequence.hpp"
#include "genasmx/io/fastx.hpp"
#include "genasmx/io/paf.hpp"
#include "genasmx/mapper/minimizer.hpp"
#include "genasmx/pipeline/pipeline.hpp"
#include "genasmx/readsim/genome.hpp"
#include "genasmx/readsim/read_simulator.hpp"
#include "genasmx/refmodel/reference.hpp"
#include "genasmx/sketch/sketch.hpp"

namespace gx::sketch {
namespace {

std::string randomSeq(std::size_t n, std::uint64_t seed) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::mt19937_64 rng(seed);
  std::string s(n, 'A');
  for (auto& c : s) c = kBases[rng() & 3];
  return s;
}

SequenceSketch sketchOf(std::string_view seq, const SketchParams& p = {}) {
  SketchScratch scratch;
  SequenceSketch out;
  sketchWindow(seq, 15, 10, p, scratch, out);
  return out;
}

TEST(Sketch, IdenticalSequencesEstimateOne) {
  const auto seq = randomSeq(5'000, 1);
  const auto a = sketchOf(seq);
  const auto b = sketchOf(seq);
  EXPECT_FALSE(a.empty());
  EXPECT_DOUBLE_EQ(estimateSimilarity(a, b), 1.0);
}

TEST(Sketch, DisjointSequencesEstimateNearZero) {
  const auto a = sketchOf(randomSeq(5'000, 2));
  const auto b = sketchOf(randomSeq(5'000, 3));
  // Two independent random sequences share essentially no 15-mers; the
  // estimator's noise floor is ~1/sqrt(slots) ~= 0.09, so stay below 0.15.
  EXPECT_LT(estimateSimilarity(a, b), 0.15);
}

TEST(Sketch, ShiftedRepeatKeepsHighSimilarity) {
  // A window placed 300 bp off the true origin still shares most of its
  // minimizers with the read — exactly the near-miss candidate the
  // prefilter must NOT drop relative to the best window.
  const auto seq = randomSeq(5'300, 4);
  const auto a = sketchOf(std::string_view(seq).substr(0, 5'000));
  const auto b = sketchOf(std::string_view(seq).substr(300, 5'000));
  EXPECT_GT(estimateSimilarity(a, b), 0.5);
}

TEST(Sketch, MultiplicityDistinguishesCopyNumber) {
  // Collapsed-set MinHash would score 10 copies vs 2 copies of the same
  // unit as identical (same k-mer *set*); the weighted sketch must not.
  const auto unit = randomSeq(600, 5);
  std::string ten, two;
  for (int i = 0; i < 10; ++i) ten += unit;
  for (int i = 0; i < 2; ++i) two += unit;
  const auto a = sketchOf(ten);
  const auto b = sketchOf(two);
  const double cross = estimateSimilarity(a, b);
  EXPECT_DOUBLE_EQ(estimateSimilarity(a, sketchOf(ten)), 1.0);
  EXPECT_LT(cross, 0.9);
  EXPECT_GT(cross, 0.0);
}

TEST(Sketch, EmptySketchComparesAsZeroAndErrorsThrow) {
  const auto a = sketchOf(randomSeq(5'000, 6));
  const auto empty = sketchOf("ACGTACGT");  // shorter than k: no minimizers
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(estimateSimilarity(a, empty), 0.0);
  EXPECT_DOUBLE_EQ(estimateSimilarity(empty, empty), 0.0);

  SketchParams p64;
  p64.slots = 64;
  const auto c = sketchOf(randomSeq(5'000, 6), p64);
  EXPECT_THROW((void)estimateSimilarity(a, c), std::invalid_argument);

  SketchParams bad;
  bad.slots = 100;  // not a power of two
  SketchScratch scratch;
  SequenceSketch out;
  EXPECT_THROW(sketchWindow("ACGT", 15, 10, bad, scratch, out),
               std::invalid_argument);
}

TEST(Sketch, SketchKeysMatchesSketchMinimizers) {
  const auto seq = randomSeq(4'000, 7);
  const auto mins = mapper::extractMinimizers(seq, 15, 10);
  ASSERT_FALSE(mins.empty());
  std::vector<std::uint64_t> keys;
  for (const auto& m : mins) keys.push_back(m.key);

  SketchParams p;
  SketchScratch scratch;
  SequenceSketch from_mins, from_keys;
  sketchMinimizers(mins.data(), mins.size(), p, scratch, from_mins);
  sketchKeys(keys.data(), keys.size(), p, scratch, from_keys);
  EXPECT_EQ(from_mins.signature(), from_keys.signature());
  EXPECT_EQ(from_mins.elements(), from_keys.elements());
}

TEST(Sketch, SteadyStateAllocatesNothing) {
  SketchParams p;
  SketchScratch scratch;
  SequenceSketch out;
  // Warm pass over the full workload, then the same workload again must
  // not grow any internal buffer.
  std::vector<std::string> seqs;
  for (int i = 0; i < 8; ++i) seqs.push_back(randomSeq(3'000, 100 + i));
  for (const auto& s : seqs) sketchWindow(s, 15, 10, p, scratch, out);
  const std::uint64_t warm = scratch.growEvents();
  for (int pass = 0; pass < 3; ++pass) {
    for (const auto& s : seqs) sketchWindow(s, 15, 10, p, scratch, out);
  }
  EXPECT_EQ(scratch.growEvents(), warm);
}

/// The pre-deque extraction semantics, kept as the test oracle: rescan
/// each w-wide window for its minimal key (ties to the newest position),
/// suppressing consecutive duplicate picks.
std::vector<mapper::Minimizer> referenceExtract(std::string_view seq, int k,
                                                int w) {
  std::vector<mapper::Minimizer> out;
  const std::size_t n = seq.size();
  if (n < static_cast<std::size_t>(k)) return out;
  const std::uint64_t mask = (1ULL << (2 * k)) - 1;
  const int shift = 2 * (k - 1);
  std::uint64_t fwd = 0, rev = 0;
  struct E {
    std::uint64_t key;
    std::uint32_t pos;
    bool reverse;
  };
  std::vector<E> kmers;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t code = common::baseCode(seq[i]);
    fwd = ((fwd << 2) | code) & mask;
    rev = (rev >> 2) | ((3ULL ^ code) << shift);
    if (i + 1 < static_cast<std::size_t>(k)) continue;
    const bool use_rev = rev < fwd;
    kmers.push_back(E{mapper::hash64(use_rev ? rev : fwd),
                      static_cast<std::uint32_t>(i + 1 - k), use_rev});
  }
  std::uint32_t last_pos = ~0u;
  for (std::size_t end = static_cast<std::size_t>(w); end <= kmers.size();
       ++end) {
    const E* best = &kmers[end - w];
    for (std::size_t j = end - w + 1; j < end; ++j) {
      if (kmers[j].key <= best->key) best = &kmers[j];  // newest of equals
    }
    if (best->pos != last_pos) {
      out.push_back(mapper::Minimizer{best->key, best->pos, best->reverse});
      last_pos = best->pos;
    }
  }
  return out;
}

TEST(Sketch, DequeExtractionMatchesReferenceRescan) {
  for (const int k : {5, 15, 21}) {
    for (const int w : {1, 5, 10, 32}) {
      for (std::uint64_t seed = 0; seed < 4; ++seed) {
        const auto seq = randomSeq(2'000, 200 + seed);
        const auto fast = mapper::extractMinimizers(seq, k, w);
        const auto slow = referenceExtract(seq, k, w);
        ASSERT_EQ(fast.size(), slow.size()) << "k=" << k << " w=" << w;
        for (std::size_t i = 0; i < fast.size(); ++i) {
          EXPECT_EQ(fast[i].key, slow[i].key);
          EXPECT_EQ(fast[i].pos, slow[i].pos);
          EXPECT_EQ(fast[i].reverse, slow[i].reverse);
        }
      }
    }
  }
}

}  // namespace
}  // namespace gx::sketch

namespace gx::pipeline {
namespace {

/// Repeat-rich workload: the divergent repeat copies spawn the plausible
/// wrong-locus candidates the prefilter exists to drop.
std::string repeatGenome() {
  readsim::GenomeConfig cfg;
  cfg.length = 300'000;
  cfg.seed = 1234;
  cfg.repeat_fraction = 0.25;
  cfg.repeat_unit = 2'000;
  cfg.repeat_divergence = 0.02;
  return readsim::generateGenome(cfg);
}

std::vector<io::FastxRecord> toFastx(
    const std::vector<readsim::SimulatedRead>& reads) {
  std::vector<io::FastxRecord> out;
  for (const auto& r : reads) {
    io::FastxRecord rec;
    rec.name = r.name;
    rec.seq = r.seq;
    rec.qual.assign(r.seq.size(), 'I');
    out.push_back(std::move(rec));
  }
  return out;
}

PipelineConfig primaryOnlyConfig(PrefilterMode mode,
                                 std::size_t threads = 1) {
  PipelineConfig cfg;
  cfg.emit_secondary = false;
  cfg.two_phase = true;
  cfg.engine.threads = threads;
  cfg.prefilter.mode = mode;
  return cfg;
}

std::string runPaf(const std::string& genome,
                   const std::vector<io::FastxRecord>& fastx,
                   const PipelineConfig& cfg,
                   MappingPipeline** out_pipe = nullptr) {
  static std::vector<std::unique_ptr<MappingPipeline>> keep_alive;
  auto pipe = std::make_unique<MappingPipeline>(
      refmodel::Reference("ref", std::string(genome)), cfg);
  std::ostringstream fq;
  io::writeFastx(fq, fastx);
  std::istringstream in(fq.str());
  std::ostringstream out;
  io::PafWriter writer(out);
  (void)pipe->run(in, writer);
  if (out_pipe != nullptr) {
    *out_pipe = pipe.get();
    keep_alive.push_back(std::move(pipe));
  }
  return out.str();
}

/// Fraction of reads whose primary record overlaps the simulated origin
/// on the correct strand (the recall harness of ISSUE PR-9).
double recallOf(const std::vector<readsim::SimulatedRead>& reads,
                const std::string& paf) {
  std::istringstream in(paf);
  std::string line;
  // First record per read is the primary.
  std::map<std::string, std::pair<std::size_t, std::size_t>> span;
  std::map<std::string, bool> strand;
  for (const auto& r : reads) {
    span[r.name] = {r.origin_pos, r.origin_pos + r.origin_len};
    strand[r.name] = r.reverse_strand;
  }
  std::set<std::string> seen;
  int recovered = 0;
  while (std::getline(in, line)) {
    std::istringstream f(line);
    std::string qname, rel, tname;
    std::size_t qlen, qb, qe, tlen, tb, te;
    f >> qname >> qlen >> qb >> qe >> rel >> tname >> tlen >> tb >> te;
    if (!seen.insert(qname).second) continue;  // primary only
    const auto it = span.find(qname);
    if (it == span.end()) continue;
    const bool overlaps = tb < it->second.second && it->second.first < te;
    if (overlaps && (rel == "-") == strand[qname]) ++recovered;
  }
  return static_cast<double>(recovered) / static_cast<double>(reads.size());
}

TEST(SketchPrefilter, RecallWithinToleranceAndFiltersCandidates) {
  const auto genome = repeatGenome();
  auto rcfg = readsim::ReadSimConfig::pacbioClr(100, 2'500);
  rcfg.seed = 5;
  const auto reads = readsim::simulateReads(genome, rcfg);
  const auto fastx = toFastx(reads);

  MappingPipeline* on_pipe = nullptr;
  const auto paf_off =
      runPaf(genome, fastx, primaryOnlyConfig(PrefilterMode::kOff));
  const auto paf_on =
      runPaf(genome, fastx, primaryOnlyConfig(PrefilterMode::kSketch),
             &on_pipe);

  const double recall_off = recallOf(reads, paf_off);
  const double recall_on = recallOf(reads, paf_on);
  EXPECT_GE(recall_on, recall_off - 0.001);
  EXPECT_GT(recall_off, 0.9);

  ASSERT_NE(on_pipe, nullptr);
  const auto& pf = on_pipe->prefilterStats();
  EXPECT_GT(pf.candidates_seen, 0u);
  EXPECT_GT(pf.candidates_filtered, 0u);
  // The acceptance bar: >= 30% of non-chain-best candidates dropped on
  // the repeat-rich workload.
  EXPECT_GE(pf.candidates_filtered * 10, pf.candidates_seen * 3);
}

TEST(SketchPrefilter, ByteIdenticalAcrossThreadsAndScoringModes) {
  const auto genome = repeatGenome();
  auto rcfg = readsim::ReadSimConfig::pacbioClr(40, 2'000);
  rcfg.seed = 6;
  const auto fastx = toFastx(readsim::simulateReads(genome, rcfg));

  const auto paf_t1 =
      runPaf(genome, fastx, primaryOnlyConfig(PrefilterMode::kSketch, 1));
  EXPECT_FALSE(paf_t1.empty());
  EXPECT_EQ(paf_t1,
            runPaf(genome, fastx, primaryOnlyConfig(PrefilterMode::kSketch, 8)));
  auto scalar = primaryOnlyConfig(PrefilterMode::kSketch, 1);
  scalar.batched_distance = false;
  EXPECT_EQ(paf_t1, runPaf(genome, fastx, scalar));
}

TEST(SketchPrefilter, KeepRatioZeroMatchesFilterOff) {
  // keep_ratio 0 keeps every candidate, so the whole sketch path must be
  // behaviour-free: byte-identical PAF to mode=off proves the wiring
  // never perturbs scoring, only (when tuned) candidate sets.
  const auto genome = repeatGenome();
  auto rcfg = readsim::ReadSimConfig::pacbioClr(40, 2'000);
  rcfg.seed = 7;
  const auto fastx = toFastx(readsim::simulateReads(genome, rcfg));

  auto keep_all = primaryOnlyConfig(PrefilterMode::kSketch);
  keep_all.prefilter.keep_ratio = 0.0;
  MappingPipeline* pipe = nullptr;
  const auto paf_keep_all = runPaf(genome, fastx, keep_all, &pipe);
  const auto paf_off =
      runPaf(genome, fastx, primaryOnlyConfig(PrefilterMode::kOff));
  EXPECT_EQ(paf_keep_all, paf_off);
  ASSERT_NE(pipe, nullptr);
  EXPECT_GT(pipe->prefilterStats().windows_sketched, 0u);
  EXPECT_EQ(pipe->prefilterStats().candidates_filtered, 0u);
}

TEST(SketchPrefilter, SingleScanReuseAndWarmScratch) {
  const auto genome = repeatGenome();
  auto rcfg = readsim::ReadSimConfig::pacbioClr(40, 2'000);
  rcfg.seed = 8;
  const auto fastx = toFastx(readsim::simulateReads(genome, rcfg));

  MappingPipeline pipe(refmodel::Reference("ref", std::string(genome)),
                       primaryOnlyConfig(PrefilterMode::kSketch));
  (void)pipe.mapBatch(fastx);
  const auto& pf = pipe.prefilterStats();
  EXPECT_GT(pf.reads_sketched, 0u);
  EXPECT_GT(pf.windows_sketched, 0u);
  // Reads reuse the seeding scan's minimizers and windows sketch from the
  // index table: the sketch layer never scans a sequence in the pipeline.
  EXPECT_EQ(pf.sequence_scans, 0u);

  // Steady state: a second pass over the same batch grows nothing.
  const std::uint64_t warm_grow = pf.scratch_grow_events;
  (void)pipe.mapBatch(fastx);
  EXPECT_EQ(pipe.prefilterStats().scratch_grow_events, warm_grow);
}

TEST(SketchPrefilter, OffByDefaultAndStatsStayZero) {
  PipelineConfig cfg;
  EXPECT_EQ(cfg.prefilter.mode, PrefilterMode::kOff);
  const auto genome = repeatGenome();
  auto rcfg = readsim::ReadSimConfig::pacbioClr(10, 2'000);
  rcfg.seed = 9;
  MappingPipeline pipe(refmodel::Reference("ref", std::string(genome)),
                       primaryOnlyConfig(PrefilterMode::kOff));
  (void)pipe.mapBatch(toFastx(readsim::simulateReads(genome, rcfg)));
  const auto& pf = pipe.prefilterStats();
  EXPECT_EQ(pf.reads_sketched, 0u);
  EXPECT_EQ(pf.windows_sketched, 0u);
  EXPECT_EQ(pf.candidates_seen, 0u);
  EXPECT_EQ(pf.candidates_filtered, 0u);
}

}  // namespace
}  // namespace gx::pipeline
