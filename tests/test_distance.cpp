// Distance-mode contract: for every registered backend,
// distance(t, q, cap) returns exactly align(t, q).edit_distance whenever
// that alignment exists with cost <= cap, and -1 otherwise. The two-phase
// mapping flow's byte-identity with the single-phase flow rests entirely
// on this equivalence, so it is hammered with randomized pairs across the
// global/windowed switchover. Also pins the arena guarantees: MemStats
// alloc/free balance and zero steady-state scratch allocations.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "genasmx/common/sequence.hpp"
#include "genasmx/core/genasm_improved.hpp"
#include "genasmx/core/windowed.hpp"
#include "genasmx/engine/engine.hpp"
#include "genasmx/engine/registry.hpp"
#include "genasmx/genasm/genasm_baseline.hpp"
#include "genasmx/util/mem_stats.hpp"
#include "genasmx/util/prng.hpp"

namespace gx {
namespace {

struct Pair {
  std::string t, q;
};

/// Read-like pairs straddling the 512 bp global/windowed switchover,
/// plus degenerate shapes (empty, disjoint, indel-skewed).
std::vector<Pair> equivalencePairs(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Pair> out;
  for (const std::size_t len : {8UL, 60UL, 64UL, 100UL, 300UL, 511UL, 513UL,
                                900UL, 1500UL}) {
    const auto t = common::randomSequence(rng, len + rng.below(40));
    out.push_back({t, common::mutateSequence(rng, t, rng.below(len / 4 + 2))});
  }
  // Unrelated sequences: distances near the scatter regime.
  out.push_back({common::randomSequence(rng, 200),
                 common::randomSequence(rng, 180)});
  out.push_back({common::randomSequence(rng, 800),
                 common::randomSequence(rng, 700)});
  // Degenerate shapes.
  out.push_back({"", ""});
  out.push_back({"ACGTACGT", ""});
  out.push_back({"", "ACGTACGT"});
  out.push_back({"A", std::string(700, 'A')});
  return out;
}

class DistanceEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(DistanceEquivalence, MatchesAlignEditDistanceUncapped) {
  const auto aligner = engine::makeAligner(GetParam());
  for (const auto& [t, q] : equivalencePairs(2024)) {
    const auto res = aligner->align(t, q);
    const int expected = res.ok ? res.edit_distance : -1;
    EXPECT_EQ(aligner->distance(t, q), expected)
        << GetParam() << " |t|=" << t.size() << " |q|=" << q.size();
  }
}

TEST_P(DistanceEquivalence, CappedScoringNeverChangesSurvivors) {
  const auto aligner = engine::makeAligner(GetParam());
  // The O(n*m) oracle backends answer capped queries through a full
  // align; keep their pairs moderate so the suite stays fast.
  const bool quadratic = std::string_view(GetParam()) == "ksw" ||
                         std::string_view(GetParam()) == "affine-dp";
  for (const auto& [t, q] : equivalencePairs(4048)) {
    if (quadratic && t.size() > 600) continue;
    const auto res = aligner->align(t, q);
    const int ed = res.ok ? res.edit_distance : -1;
    // Caps straddling the true distance, plus edge caps.
    std::vector<int> caps = {0};
    if (ed >= 0) {
      caps.insert(caps.end(), {ed, ed + 1, ed > 0 ? ed - 1 : 0, 2 * ed + 7});
    }
    for (const int cap : caps) {
      const int expected = (ed >= 0 && ed <= cap) ? ed : -1;
      EXPECT_EQ(aligner->distance(t, q, cap), expected)
          << GetParam() << " |t|=" << t.size() << " |q|=" << q.size()
          << " ed=" << ed << " cap=" << cap;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, DistanceEquivalence,
                         ::testing::ValuesIn(
                             []() {
                               static std::vector<std::string> names =
                                   engine::AlignerRegistry::instance().names();
                               std::vector<const char*> out;
                               for (const auto& n : names)
                                 out.push_back(n.c_str());
                               return out;
                             }()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// ------------------------------------------------- engine batch API

TEST(DistanceBatch, MatchesPerPairDistanceAndHonorsCaps) {
  engine::EngineConfig ecfg;
  ecfg.threads = 4;
  engine::AlignmentEngine eng(ecfg);
  util::Xoshiro256 rng(31);

  std::vector<std::string> targets, queries;
  for (int i = 0; i < 24; ++i) {
    const auto t = common::randomSequence(rng, 80 + rng.below(900));
    targets.push_back(t);
    queries.push_back(common::mutateSequence(rng, t, rng.below(60)));
  }
  std::vector<engine::DistanceTask> tasks;
  std::vector<int> expected;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto res = eng.align(targets[i], queries[i]);
    const int ed = res.ok ? res.edit_distance : -1;
    // Alternate uncapped / tight / impossible caps across the batch.
    const int cap = (i % 3 == 0) ? -1 : (i % 3 == 1) ? ed : ed / 2 - 1;
    tasks.push_back({targets[i], queries[i], cap});
    expected.push_back((ed >= 0 && (cap < 0 || ed <= cap)) ? ed : -1);
    // The single-pair engine entry point agrees.
    EXPECT_EQ(eng.distance(targets[i], queries[i], cap), expected.back());
  }
  EXPECT_EQ(eng.distanceBatch(tasks), expected);
  // Deterministic: same results on a single-threaded engine.
  engine::AlignmentEngine eng1(engine::EngineConfig{});
  EXPECT_EQ(eng1.distanceBatch(tasks), expected);
}

// ------------------------------------------------- solver-level kernels

TEST(SolveDistance, AgreesWithFullSolveAcrossAnchorsAndCaps) {
  util::Xoshiro256 rng(555);
  genasm::BaselineWindowSolver<1> baseline;
  core::ImprovedWindowSolver<1> improved;
  for (int trial = 0; trial < 25; ++trial) {
    const auto text = common::randomSequence(rng, 40 + rng.below(60));
    const auto pattern = common::mutateSequence(
        rng, text.substr(0, 20 + rng.below(40)), rng.below(10));
    if (pattern.empty() || pattern.size() > 64) continue;
    const auto t_rev = common::reversed(text);
    const auto q_rev = common::reversed(pattern);
    for (const auto anchor :
         {genasm::Anchor::StartOnly, genasm::Anchor::BothEnds}) {
      for (const int max_edits : {-1, 3, 12}) {
        genasm::WindowSpec spec;
        spec.anchor = anchor;
        spec.max_edits = max_edits;
        const auto full = improved.solve(t_rev, q_rev, spec);
        const int expected = full.ok ? full.distance : -1;
        EXPECT_EQ(improved.solveDistance(t_rev, q_rev, spec), expected);
        EXPECT_EQ(baseline.solveDistance(t_rev, q_rev, spec), expected);
        // The baseline's full solve agrees too (pre-existing invariant).
        const auto fb = baseline.solve(t_rev, q_rev, spec);
        EXPECT_EQ(fb.ok ? fb.distance : -1, expected);
      }
    }
  }
}

// ------------------------------------------------- MemStats invariants

TEST(MemStatsBalance, EverySolverEntryPointFreesWhatItAllocates) {
  util::Xoshiro256 rng(99);
  const auto t = common::randomSequence(rng, 900);
  const auto q = common::mutateSequence(rng, t, 60);

  for (int mask = 0; mask < 8; ++mask) {
    core::ImprovedOptions opts;
    opts.compress_entries = mask & 1;
    opts.early_termination = mask & 2;
    opts.traceback_pruning = mask & 4;
    util::MemStats stats;
    ASSERT_TRUE(core::alignWindowedImproved(t, q, {}, opts, &stats).ok);
    EXPECT_TRUE(stats.balanced())
        << "mask=" << mask << " alloc=" << stats.bytes_allocated
        << " freed=" << stats.bytes_freed;
  }
  util::MemStats base;
  ASSERT_TRUE(core::alignWindowedBaseline(t, q, {}, &base).ok);
  EXPECT_TRUE(base.balanced());

  util::MemStats dist;
  EXPECT_GE(core::distanceWindowedImproved(t, q, {}, {}, -1, &dist), 0);
  EXPECT_TRUE(dist.balanced());

  const auto small_q = q.substr(0, 300);
  const auto small_t = t.substr(0, 340);
  util::MemStats glob;
  ASSERT_TRUE(core::alignGlobalImproved(small_t, small_q, -1, {}, &glob).ok);
  EXPECT_TRUE(glob.balanced());
  util::MemStats gbase;
  ASSERT_TRUE(genasm::alignGlobalBaseline(small_t, small_q, -1, &gbase).ok);
  EXPECT_TRUE(gbase.balanced());
}

TEST(ArenaReuse, SteadyStateSolvesAllocateNothing) {
  util::Xoshiro256 rng(7);
  const auto t = common::randomSequence(rng, 1200);
  const auto q = common::mutateSequence(rng, t, 90);

  for (const bool compress : {true, false}) {
    core::ImprovedOptions opts;
    opts.compress_entries = compress;
    core::ImprovedWindowSolver<1> solver(opts);
    core::WindowBuffers bufs;
    core::WindowConfig cfg;
    // Cold pass grows the arenas...
    util::MemStats cold;
    ASSERT_TRUE(core::alignWindowed(solver, t, q, cfg, bufs,
                                    util::CountingMemCounter(cold))
                    .ok);
    EXPECT_GT(cold.scratch_allocs, 0u);
    // ...every later pass over the same geometry allocates zero.
    util::MemStats warm;
    ASSERT_TRUE(core::alignWindowed(solver, t, q, cfg, bufs,
                                    util::CountingMemCounter(warm))
                    .ok);
    EXPECT_EQ(warm.scratch_allocs, 0u) << "compress=" << compress;
    EXPECT_GT(warm.problems, 10u);  // many windows, still zero allocs
  }

  genasm::BaselineWindowSolver<1> baseline;
  core::WindowBuffers bufs;
  util::MemStats cold, warm;
  ASSERT_TRUE(core::alignWindowed(baseline, t, q, core::WindowConfig{}, bufs,
                                  util::CountingMemCounter(cold))
                  .ok);
  ASSERT_TRUE(core::alignWindowed(baseline, t, q, core::WindowConfig{}, bufs,
                                  util::CountingMemCounter(warm))
                  .ok);
  EXPECT_EQ(warm.scratch_allocs, 0u);

  // The distance kernel shares the same guarantee.
  core::ImprovedWindowSolver<1> dsolver;
  genasm::WindowSpec spec;
  const auto t_rev = common::reversed(t.substr(0, 96));
  const auto q_rev = common::reversed(q.substr(0, 64));
  util::MemStats d1, d2;
  (void)dsolver.solveDistance(t_rev, q_rev, spec,
                              util::CountingMemCounter(d1));
  (void)dsolver.solveDistance(t_rev, q_rev, spec,
                              util::CountingMemCounter(d2));
  EXPECT_EQ(d2.scratch_allocs, 0u);
}

}  // namespace
}  // namespace gx
