#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "genasmx/common/sequence.hpp"
#include "genasmx/common/verify.hpp"
#include "genasmx/core/windowed.hpp"
#include "genasmx/gpukernels/genasm_kernels.hpp"
#include "genasmx/util/prng.hpp"

namespace gx::gpukernels {
namespace {

std::vector<mapper::AlignmentPair> makePairs(int count, std::size_t len,
                                             std::size_t edits,
                                             std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<mapper::AlignmentPair> pairs;
  pairs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    mapper::AlignmentPair p;
    p.target = common::randomSequence(rng, len);
    p.query = common::mutateSequence(rng, p.target, edits);
    pairs.push_back(std::move(p));
  }
  return pairs;
}

TEST(GpuKernels, ImprovedResultsAreBitExactWithCpu) {
  const auto pairs = makePairs(20, 800, 60, 1);
  gpusim::Device dev;
  const auto out = alignBatchImproved(dev, pairs);
  ASSERT_EQ(out.results.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto cpu =
        core::alignWindowedImproved(pairs[i].target, pairs[i].query);
    ASSERT_TRUE(out.results[i].ok);
    EXPECT_EQ(out.results[i].edit_distance, cpu.edit_distance);
    EXPECT_EQ(out.results[i].cigar, cpu.cigar);
    EXPECT_TRUE(common::verifyAlignment(pairs[i].target, pairs[i].query,
                                        out.results[i].cigar)
                    .valid);
  }
}

TEST(GpuKernels, BaselineResultsMatchImprovedResults) {
  const auto pairs = makePairs(10, 600, 50, 2);
  gpusim::Device dev;
  const auto impr = alignBatchImproved(dev, pairs);
  const auto base = alignBatchBaseline(dev, pairs);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_TRUE(impr.results[i].ok);
    ASSERT_TRUE(base.results[i].ok);
    EXPECT_EQ(impr.results[i].cigar, base.results[i].cigar);
  }
}

TEST(GpuKernels, ImprovedFitsInSharedMemory) {
  const auto pairs = makePairs(8, 1'000, 80, 3);
  gpusim::Device dev;
  const auto out = alignBatchImproved(dev, pairs);
  EXPECT_EQ(out.spilled_blocks, 0u);
  EXPECT_EQ(out.launch.failed_shared_allocs, 0u);
  EXPECT_GT(out.launch.shared_bytes, 0u);
  // Per-block shared footprint is a few KiB, far below the 100 KiB limit.
  EXPECT_LT(out.launch.shared_per_block, 16u * 1024u);
}

TEST(GpuKernels, BaselineSpillsToGlobalMemory) {
  const auto pairs = makePairs(8, 1'000, 80, 3);
  gpusim::Device dev;
  const auto out = alignBatchBaseline(dev, pairs);
  // The unimproved working set (~130 KiB/window set) exceeds the 100 KiB
  // per-block shared limit: every block spills and DP traffic hits DRAM.
  EXPECT_EQ(out.spilled_blocks, pairs.size());
  EXPECT_GT(out.launch.global_bytes,
            out.mem.accesses() * 8);  // DP traffic + sequences
}

TEST(GpuKernels, ImprovedModeledFasterThanBaseline) {
  const auto pairs = makePairs(12, 2'000, 160, 4);
  gpusim::Device dev;
  const auto impr = alignBatchImproved(dev, pairs);
  const auto base = alignBatchBaseline(dev, pairs);
  EXPECT_GT(impr.alignments_per_second, base.alignments_per_second);
  // The paper reports 5.9x; the analytical model must land clearly above 2x.
  EXPECT_GT(impr.alignments_per_second / base.alignments_per_second, 2.0);
}

TEST(GpuKernels, AblationMattersOnGpu) {
  // E5: without the improvements the GPU kernel degenerates to baseline
  // behaviour (spills); each single improvement must not break results.
  const auto pairs = makePairs(6, 500, 40, 5);
  gpusim::Device dev;
  const auto reference = alignBatchImproved(dev, pairs);
  for (int mask = 0; mask < 8; ++mask) {
    core::ImprovedOptions opts;
    opts.compress_entries = mask & 1;
    opts.early_termination = mask & 2;
    opts.traceback_pruning = mask & 4;
    const auto out =
        alignBatchImproved(dev, pairs, core::WindowConfig{}, opts);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(out.results[i].cigar, reference.results[i].cigar)
          << "mask=" << mask;
    }
  }
}

TEST(GpuKernels, RejectsOversizedWindows) {
  gpusim::Device dev;
  core::WindowConfig wide;
  wide.window = 128;
  wide.overlap = 48;
  EXPECT_THROW(alignBatchImproved(dev, {}, wide), std::invalid_argument);
  EXPECT_THROW(alignBatchBaseline(dev, {}, wide), std::invalid_argument);
}

TEST(GpuKernels, EmptyBatch) {
  gpusim::Device dev;
  const auto out = alignBatchImproved(dev, {});
  EXPECT_TRUE(out.results.empty());
  EXPECT_EQ(out.launch.grid, 0);
}

}  // namespace
}  // namespace gx::gpukernels
