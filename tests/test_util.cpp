#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "genasmx/util/mem_stats.hpp"
#include "genasmx/util/prng.hpp"
#include "genasmx/util/stats.hpp"
#include "genasmx/util/thread_pool.hpp"
#include "genasmx/util/timer.hpp"

namespace gx::util {
namespace {

TEST(Prng, DeterministicBySeed) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto x = a();
    EXPECT_EQ(x, b());
    (void)c;
  }
  Xoshiro256 d(42), e(43);
  int diff = 0;
  for (int i = 0; i < 100; ++i) diff += d() != e();
  EXPECT_GT(diff, 90);  // different seeds -> different streams
}

TEST(Prng, BelowStaysInBounds) {
  Xoshiro256 rng(1);
  for (int bound : {1, 2, 3, 17, 1000}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(static_cast<std::uint64_t>(bound)),
                static_cast<std::uint64_t>(bound));
    }
  }
}

TEST(Prng, BelowCoversRange) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Prng, RangeInclusive) {
  Xoshiro256 rng(3);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    hit_lo |= v == -2;
    hit_hi |= v == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Prng, Uniform01InUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, ForkProducesIndependentStream) {
  Xoshiro256 rng(5);
  Xoshiro256 child = rng.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += rng() == child();
  EXPECT_LT(same, 5);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  volatile double keep = sink;
  (void)keep;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.nanos(), 0u);
}

TEST(Summary, MeanAndStddev) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.median(), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(95), 95.05, 0.1);
}

TEST(Summary, MergeMatchesCombinedStream) {
  Summary a, b, all;
  Xoshiro256 rng(9);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform01() * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) pool.submit([&done] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, EmptyParallelFor) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(MemStats, CountingCounterAccumulates) {
  MemStats stats;
  CountingMemCounter c(stats);
  c.problem();
  c.alloc(1000);
  c.store(5);
  c.load(3);
  c.alloc(500);
  c.free(1500);
  EXPECT_EQ(stats.dp_stores, 5u);
  EXPECT_EQ(stats.dp_loads, 3u);
  EXPECT_EQ(stats.accesses(), 8u);
  EXPECT_EQ(stats.bytes_allocated, 1500u);
  EXPECT_EQ(stats.bytes_peak, 1500u);
  EXPECT_EQ(stats.problems, 1u);
}

TEST(MemStats, PeakTracksHighWater) {
  MemStats stats;
  CountingMemCounter c(stats);
  c.alloc(100);
  c.free(100);
  c.alloc(60);
  c.free(60);
  EXPECT_EQ(stats.bytes_peak, 100u);
  EXPECT_EQ(stats.bytes_allocated, 160u);
}

TEST(MemStats, Accumulate) {
  MemStats a, b;
  a.dp_stores = 10;
  a.bytes_peak = 100;
  a.problems = 1;
  b.dp_stores = 5;
  b.bytes_peak = 200;
  b.problems = 2;
  a += b;
  EXPECT_EQ(a.dp_stores, 15u);
  EXPECT_EQ(a.bytes_peak, 200u);  // max, not sum
  EXPECT_EQ(a.problems, 3u);
}

TEST(MemStats, NullCounterCompilesAway) {
  NullMemCounter c;
  c.store();
  c.load();
  c.alloc(10);
  c.free(10);
  c.problem();
  SUCCEED();
}

}  // namespace
}  // namespace gx::util
