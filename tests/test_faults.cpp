// The failure-isolation fault matrix: every io seam driven through the
// deterministic FaultPlan (truncated index at every section boundary,
// FASTQ corrupted and truncated mid-record, failing output writes), the
// structured error taxonomy, thread-pool exception propagation, and the
// engine's per-task degradation under a throwing backend. The invariants
// throughout: one-line actionable errors (never a crash), correct skip/
// failure counts, and untouched results in every lane a fault did not
// hit.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "genasmx/common/error.hpp"
#include "genasmx/engine/engine.hpp"
#include "genasmx/engine/registry.hpp"
#include "genasmx/io/fastx.hpp"
#include "genasmx/io/fault.hpp"
#include "genasmx/io/mmap_file.hpp"
#include "genasmx/io/paf.hpp"
#include "genasmx/mapper/index.hpp"
#include "genasmx/mapper/index_io.hpp"
#include "genasmx/pipeline/pipeline.hpp"
#include "genasmx/readsim/genome.hpp"
#include "genasmx/readsim/read_simulator.hpp"
#include "genasmx/refmodel/reference.hpp"
#include "genasmx/util/thread_pool.hpp"

namespace gx {
namespace {

using common::Error;
using common::ErrorCode;

void expectOneLine(const std::string& what) {
  EXPECT_EQ(what.find('\n'), std::string::npos) << what;
  EXPECT_FALSE(what.empty());
}

// ------------------------------------------------------------ taxonomy

TEST(ErrorModel, RendersOneActionableLine) {
  common::ErrorContext ctx;
  ctx.path = "reads.fq";
  ctx.record = "read_17";
  ctx.line = 69;
  ctx.byte_offset = 4096;
  const Error e(ErrorCode::kMalformedInput, "quality length mismatch", ctx);
  const std::string what = e.what();
  expectOneLine(what);
  EXPECT_NE(what.find("quality length mismatch"), std::string::npos);
  EXPECT_NE(what.find("malformed-input"), std::string::npos);
  EXPECT_NE(what.find("reads.fq"), std::string::npos);
  EXPECT_NE(what.find("read_17"), std::string::npos);
  EXPECT_NE(what.find("69"), std::string::npos);
  EXPECT_NE(what.find("4096"), std::string::npos);
  EXPECT_EQ(e.code(), ErrorCode::kMalformedInput);
}

TEST(ErrorModel, StatusFromCurrentExceptionKeepsTheCode) {
  auto capture = [](auto thrower) {
    try {
      thrower();
    } catch (...) {
      return common::Status::fromCurrentException();
    }
    return common::Status{};
  };
  EXPECT_EQ(capture([] {
              throw Error(ErrorCode::kIoFatal, "disk gone");
            }).code(),
            ErrorCode::kIoFatal);
  EXPECT_EQ(capture([] { throw std::bad_alloc(); }).code(),
            ErrorCode::kResourceLimit);
  EXPECT_EQ(capture([] { throw std::runtime_error("foreign"); }).code(),
            ErrorCode::kInternal);
  EXPECT_EQ(capture([] { throw 42; }).code(), ErrorCode::kInternal);
  EXPECT_TRUE(capture([] {}).ok());
}

TEST(ErrorModel, CountsIndexByCodeAndExcludeOk) {
  common::ErrorCounts counts;
  counts.add(ErrorCode::kMalformedInput, 3);
  counts.add(ErrorCode::kIoFatal);
  EXPECT_EQ(counts[ErrorCode::kMalformedInput], 3u);
  EXPECT_EQ(counts[ErrorCode::kIoFatal], 1u);
  EXPECT_EQ(counts.total(), 4u);
  counts.add(ErrorCode::kOk, 100);  // never part of total()
  EXPECT_EQ(counts.total(), 4u);
}

// ------------------------------------------------------- fault grammar

TEST(FaultPlanParse, AcceptsTheDocumentedGrammar) {
  const io::FaultPlan plan = io::FaultPlan::parse(
      "truncate@4096,eio@rec:17,truncate@map:128,enospc@out:2,"
      "eintr@out:0,eagain@out:1,short@out:3,eio@out:4,truncate@in:9000");
  EXPECT_EQ(plan.clauses().size(), 9u);
  EXPECT_EQ(plan.inputTruncateAt(), 4096u);  // smallest of 4096/9000
  EXPECT_TRUE(plan.inputRecordEio(17));
  EXPECT_FALSE(plan.inputRecordEio(16));
  EXPECT_EQ(plan.mapTruncateAt(), 128u);
  EXPECT_EQ(plan.outputFault(2, 0), io::FaultKind::kEnospc);
  EXPECT_EQ(plan.outputFault(2, 1), io::FaultKind::kEnospc);  // persistent
  EXPECT_EQ(plan.outputFault(0, 0), io::FaultKind::kEintr);
  EXPECT_EQ(plan.outputFault(0, 1), io::FaultKind::kNone);  // transient
  EXPECT_EQ(plan.outputFault(3, 0), io::FaultKind::kShortWrite);
  EXPECT_EQ(plan.outputFault(4, 1), io::FaultKind::kEio);  // persistent
  EXPECT_EQ(plan.outputFault(99, 0), io::FaultKind::kNone);
  EXPECT_TRUE(io::FaultPlan::parse("").empty());
  EXPECT_TRUE(io::FaultPlan::parse("  ").empty());
}

TEST(FaultPlanParse, RejectsBadSpecsWithTheGrammarInTheMessage) {
  for (const char* bad :
       {"frobnicate@4096", "truncate", "truncate@", "eio@rec:",
        "truncate@out:4", "enospc@rec:1", "eio@4096", "truncate@in:huge",
        "truncate@in:99999999999999999999999", "eintr@out:1x"}) {
    try {
      (void)io::FaultPlan::parse(bad);
      FAIL() << "accepted bad spec: " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kMalformedInput) << bad;
      expectOneLine(e.what());
    }
  }
}

// -------------------------------------------------- pool propagation

TEST(ThreadPoolFaults, TaskExceptionSurfacesInWaitIdleAndPoolSurvives) {
  util::ThreadPool pool(4);
  std::atomic<int> done{0};
  pool.parallel_for(64, [&](std::size_t b, std::size_t e) {
    done += static_cast<int>(e - b);
  });
  EXPECT_EQ(done.load(), 64);

  // A throwing chunk must not terminate the process (the pre-layer
  // behaviour); parallel_for rethrows the first exception instead.
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t b, std::size_t) {
                                   if (b == 0) {
                                     throw Error(ErrorCode::kInternal,
                                                 "injected task failure");
                                   }
                                 }),
               Error);

  // The pool remains fully usable: the error does not wedge in_flight_
  // and does not resurface on the next wait.
  done = 0;
  pool.parallel_for(32, [&](std::size_t b, std::size_t e) {
    done += static_cast<int>(e - b);
  });
  EXPECT_EQ(done.load(), 32);
}

// --------------------------------------------- index section boundaries

std::string tempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string builtIndexBytes() {
  refmodel::Reference ref;
  readsim::GenomeConfig gcfg;
  gcfg.length = 30'000;
  gcfg.seed = 7;
  ref.addContig("ctgA", readsim::generateGenome(gcfg));
  gcfg.length = 20'000;
  gcfg.seed = 8;
  ref.addContig("ctgB", readsim::generateGenome(gcfg));
  mapper::MinimizerIndex index;
  index.build(ref, 15, 10, 64);
  const std::string path = tempPath("faults.gxi");
  mapper::writeIndexFile(path, index, ref);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::byte> toBytes(const std::string& s, std::size_t n) {
  std::vector<std::byte> out(n);
  if (n != 0) std::memcpy(out.data(), s.data(), n);
  return out;
}

TEST(IndexFaults, TruncationAtEverySectionBoundaryRejectsCleanly) {
  const std::string bytes = builtIndexBytes();
  mapper::IndexFileHeader h{};
  std::memcpy(&h, bytes.data(), sizeof(h));
  ASSERT_EQ(h.file_bytes, bytes.size());

  // Every section boundary the format defines, plus one byte inside the
  // header and one byte short of complete: all must reject with a
  // one-line IndexIoError, never crash or read out of bounds.
  const std::vector<std::uint64_t> cuts = {
      0,          64,         sizeof(h),      h.kept_off, h.names_off,
      h.seq_off,  h.keys_off, h.values_off,   h.file_bytes - 1};
  for (const std::uint64_t cut : cuts) {
    ASSERT_LT(cut, bytes.size());
    try {
      const mapper::MappedIndex idx(
          io::MappedFile::fromBytes(
              toBytes(bytes, static_cast<std::size_t>(cut))),
          {}, "cut@" + std::to_string(cut));
      FAIL() << "accepted index truncated at " << cut;
    } catch (const mapper::IndexIoError& e) {
      expectOneLine(e.what());
      const std::string what = e.what();
      // Sub-header cuts report truncation; longer cuts report the
      // size/declared mismatch. Both are actionable.
      EXPECT_TRUE(what.find("truncated") != std::string::npos ||
                  what.find("does not match") != std::string::npos)
          << "cut " << cut << ": " << what;
      EXPECT_NE(what.find("cut@" + std::to_string(cut)), std::string::npos)
          << what;
    }
  }

  // The untruncated bytes load fine through the same in-memory seam.
  const mapper::MappedIndex ok(
      io::MappedFile::fromBytes(toBytes(bytes, bytes.size())), {}, "whole");
  EXPECT_EQ(ok.view().size(), h.n_entries);
}

TEST(IndexFaults, MapTruncateFaultClampsRealFileOpens) {
  const std::string bytes = builtIndexBytes();
  const std::string path = tempPath("faults.gxi");  // written above
  const io::ScopedFaultInjection guard(
      io::FaultPlan::parse("truncate@map:" + std::to_string(bytes.size() / 2)));
  try {
    const mapper::MappedIndex idx(path);
    FAIL() << "accepted a fault-truncated mapping";
  } catch (const mapper::IndexIoError& e) {
    expectOneLine(e.what());
    EXPECT_NE(std::string(e.what()).find("does not match"), std::string::npos);
  }
}

// ------------------------------------------------------- fastx faults

std::string fastqText(const std::vector<std::pair<std::string, std::string>>&
                          reads) {
  std::string text;
  for (const auto& [name, seq] : reads) {
    text += "@" + name + "\n" + seq + "\n+\n" + std::string(seq.size(), 'I') +
            "\n";
  }
  return text;
}

TEST(FastxFaults, AbortPolicyReportsLineAndByteOffset) {
  // Record 2's quality line is short; its header line is line 5, and the
  // quality line itself is line 8.
  const std::string text =
      "@r1\nACGTACGT\n+\nIIIIIIII\n"
      "@r2\nACGTACGTACGT\n+\nIII\n";
  std::istringstream in(text);
  io::FastxPolicy policy;
  policy.path = "clients.fq";
  io::FastxReader reader(in, policy);
  io::FastxRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.name, "r1");
  try {
    (void)reader.next(rec);
    FAIL() << "expected malformed-input";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kMalformedInput);
    expectOneLine(e.what());
    EXPECT_EQ(e.context().path, "clients.fq");
    EXPECT_EQ(e.context().record, "r2");
    EXPECT_EQ(e.context().line, 8u);  // the offending quality line
    EXPECT_EQ(e.context().byte_offset, text.rfind("III\n"));
    EXPECT_NE(std::string(e.what()).find("quality length 3"),
              std::string::npos);
  }
}

TEST(FastxFaults, SkipPolicyResyncsPastEveryMalformedClass) {
  // Interleave good records with: a quality-length mismatch, a header
  // with no sequence, junk between records, and a record truncated after
  // '+'. The reader must return exactly the good records, in order.
  const std::string text =
      "@good1\nACGTACGT\n+\nIIIIIIII\n"
      "@bad_qual\nACGTACGT\n+\nII\n"
      "@good2\nCCCCAAAA\n+\nIIIIIIII\n"
      "not_a_header_line\n"
      "@good3\nGGGGTTTT\n+\nIIIIIIII\n"
      "@bad_truncated\nACGT\n+\n";
  std::istringstream in(text);
  io::FastxPolicy policy;
  policy.on_bad_record = io::OnBadRecord::kSkip;
  io::FastxReader reader(in, policy);
  std::vector<std::string> names;
  io::FastxRecord rec;
  while (reader.next(rec)) names.push_back(rec.name);
  EXPECT_EQ(names, (std::vector<std::string>{"good1", "good2", "good3"}));
  EXPECT_EQ(reader.skipped(), 3u);
  EXPECT_EQ(reader.records(), 3u);
}

TEST(FastxFaults, WarnPolicyPrintsTheOneLineError) {
  std::istringstream in("@bad\nACGT\n+\nII\n@ok\nACGT\n+\nIIII\n");
  std::ostringstream warnings;
  io::FastxPolicy policy;
  policy.on_bad_record = io::OnBadRecord::kWarn;
  policy.warn_stream = &warnings;
  io::FastxReader reader(in, policy);
  io::FastxRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.name, "ok");
  EXPECT_FALSE(reader.next(rec));
  const std::string warned = warnings.str();
  EXPECT_NE(warned.find("skipping bad record"), std::string::npos);
  EXPECT_NE(warned.find("quality length 2"), std::string::npos);
  EXPECT_EQ(std::count(warned.begin(), warned.end(), '\n'), 1);
}

TEST(FastxFaults, InputTruncationFaultEndsMidRecord) {
  const std::string text = fastqText(
      {{"r1", "ACGTACGTACGT"}, {"r2", "TTTTCCCCGGGG"}, {"r3", "AAAACCCC"}});
  // Cut inside r2's sequence line.
  const std::uint64_t cut = text.find("TTTTCCCCGGGG") + 5;

  {  // abort: the truncated record is a malformed-input error
    const io::ScopedFaultInjection guard(
        io::FaultPlan::parse("truncate@" + std::to_string(cut)));
    std::istringstream in(text);
    io::FastxReader reader(in);
    io::FastxRecord rec;
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.name, "r1");
    try {
      (void)reader.next(rec);
      FAIL() << "expected malformed-input after truncation";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kMalformedInput);
      expectOneLine(e.what());
    }
  }
  {  // skip: the truncated record is counted and the stream ends cleanly
    const io::ScopedFaultInjection guard(
        io::FaultPlan::parse("truncate@" + std::to_string(cut)));
    std::istringstream in(text);
    io::FastxPolicy policy;
    policy.on_bad_record = io::OnBadRecord::kSkip;
    io::FastxReader reader(in, policy);
    io::FastxRecord rec;
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.name, "r1");
    EXPECT_FALSE(reader.next(rec));
    EXPECT_EQ(reader.skipped(), 1u);
  }
}

TEST(FastxFaults, RecordEioIsFatalEvenUnderSkipPolicy) {
  const std::string text =
      fastqText({{"r0", "ACGT"}, {"r1", "ACGT"}, {"r2", "ACGT"}});
  const io::ScopedFaultInjection guard(io::FaultPlan::parse("eio@rec:1"));
  std::istringstream in(text);
  io::FastxPolicy policy;
  policy.on_bad_record = io::OnBadRecord::kSkip;  // must NOT swallow EIO
  io::FastxReader reader(in, policy);
  io::FastxRecord rec;
  ASSERT_TRUE(reader.next(rec));
  try {
    (void)reader.next(rec);
    FAIL() << "expected io-fatal EIO";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoFatal);
    expectOneLine(e.what());
    EXPECT_NE(std::string(e.what()).find("EIO"), std::string::npos);
  }
}

// --------------------------------------------------- paf write faults

io::PafRecord tinyRecord(const std::string& name) {
  io::PafRecord rec;
  rec.query_name = name;
  rec.query_len = 10;
  rec.query_begin = 0;
  rec.query_end = 10;
  rec.target_name = "t";
  rec.target_len = 100;
  rec.target_begin = 0;
  rec.target_end = 10;
  rec.matches = 9;
  rec.alignment_len = 10;
  rec.mapq = 60;
  return rec;
}

std::string cleanPafOutput(int records) {
  std::ostringstream out;
  io::PafWriter writer(out, 1);  // flush per record
  for (int i = 0; i < records; ++i) writer.write(tinyRecord("r" + std::to_string(i)));
  writer.close();
  return out.str();
}

TEST(PafFaults, EnospcSurfacesAsCleanIoFatal) {
  const io::ScopedFaultInjection guard(io::FaultPlan::parse("enospc@out:0"));
  std::ostringstream out;
  io::PafWriter writer(out, 1);
  try {
    writer.write(tinyRecord("r0"));  // flush_threshold 1: flushes inline
    writer.close();
    FAIL() << "expected ENOSPC";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoFatal);
    expectOneLine(e.what());
    EXPECT_NE(std::string(e.what()).find("ENOSPC"), std::string::npos);
  }
}

TEST(PafFaults, PersistentEioOnLaterWriteSurfaces) {
  const io::ScopedFaultInjection guard(io::FaultPlan::parse("eio@out:1"));
  std::ostringstream out;
  io::PafWriter writer(out, 1);
  writer.write(tinyRecord("r0"));  // write 0 is fine
  try {
    writer.write(tinyRecord("r1"));  // write 1 fails every attempt
    writer.close();
    FAIL() << "expected EIO";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoFatal);
    EXPECT_NE(std::string(e.what()).find("EIO"), std::string::npos);
  }
}

TEST(PafFaults, TransientFaultsRetryToByteIdenticalOutput) {
  const std::string expected = cleanPafOutput(3);
  for (const char* spec : {"eintr@out:0", "eagain@out:1", "short@out:2",
                           "eintr@out:0,short@out:1,eagain@out:2"}) {
    const io::ScopedFaultInjection guard(io::FaultPlan::parse(spec));
    std::ostringstream out;
    io::PafWriter writer(out, 1);
    for (int i = 0; i < 3; ++i) writer.write(tinyRecord("r" + std::to_string(i)));
    writer.close();
    EXPECT_EQ(out.str(), expected) << spec;
    EXPECT_GE(writer.retries(), 1u) << spec;
  }
}

// ------------------------------------------------ engine degradation

/// Wraps the real paper backend but throws on any task whose query
/// contains the poison marker 'Z' — the deterministic stand-in for a
/// read that tickles a solver bug.
class ThrowingAligner final : public engine::Aligner {
 public:
  explicit ThrowingAligner(const engine::AlignerConfig& cfg)
      : inner_(engine::makeAligner("windowed-improved", cfg)) {}

  common::AlignmentResult align(std::string_view target,
                                std::string_view query) override {
    maybeThrow(query);
    return inner_->align(target, query);
  }
  int distance(std::string_view target, std::string_view query,
               int cap) override {
    maybeThrow(query);
    return inner_->distance(target, query, cap);
  }
  std::string_view name() const noexcept override { return "throwing-test"; }

 private:
  static void maybeThrow(std::string_view query) {
    if (query.find('Z') != std::string_view::npos) {
      throw Error(ErrorCode::kInternal, "injected solver failure");
    }
  }
  engine::AlignerPtr inner_;
};

TEST(EngineFaults, ThrowingBackendPoisonsOnlyItsOwnLanes) {
  auto& registry = engine::AlignerRegistry::instance();
  if (!registry.contains("throwing-test")) {
    registry.add("throwing-test", "fault-matrix test backend",
                 [](const engine::AlignerConfig& cfg) {
                   return std::make_unique<ThrowingAligner>(cfg);
                 });
  }

  // 40 well-formed pairs, two poisoned ones in the middle of chunks.
  std::vector<std::string> targets, queries;
  for (int i = 0; i < 40; ++i) {
    std::string t;
    for (int j = 0; j < 120; ++j) t += "ACGT"[(i * 31 + j * 7) % 4];
    std::string q = t.substr(5, 100);
    q[50] = q[50] == 'A' ? 'C' : 'A';  // one mismatch
    targets.push_back(std::move(t));
    queries.push_back(std::move(q));
  }
  queries[7] = "ZZZZZZZZZZ";
  queries[23] = "AAAAZAAAA";

  std::vector<engine::AlignmentTask> tasks;
  std::vector<engine::DistanceTask> dtasks;
  for (int i = 0; i < 40; ++i) {
    tasks.push_back({targets[static_cast<std::size_t>(i)],
                     queries[static_cast<std::size_t>(i)]});
    dtasks.push_back({targets[static_cast<std::size_t>(i)],
                      queries[static_cast<std::size_t>(i)], -1});
  }

  engine::EngineConfig clean_cfg;
  clean_cfg.backend = "windowed-improved";
  clean_cfg.threads = 4;
  engine::AlignmentEngine clean(clean_cfg);
  // The clean engine never sees the poison marker's tasks.
  auto clean_tasks = tasks;
  clean_tasks[7] = tasks[6];
  clean_tasks[23] = tasks[22];
  const auto clean_results = clean.alignBatch(clean_tasks);

  engine::EngineConfig cfg;
  cfg.backend = "throwing-test";
  cfg.threads = 4;
  engine::AlignmentEngine eng(cfg);
  const auto results = eng.alignBatch(tasks);
  ASSERT_EQ(results.size(), tasks.size());

  // Poisoned lanes degrade to ok == false; every other lane is
  // bit-identical to the clean engine's answer for the same pair.
  EXPECT_FALSE(results[7].ok);
  EXPECT_FALSE(results[23].ok);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == 7 || i == 23) continue;
    ASSERT_TRUE(results[i].ok) << i;
    EXPECT_EQ(results[i].edit_distance, clean_results[i].edit_distance) << i;
    EXPECT_EQ(results[i].cigar.str(), clean_results[i].cigar.str()) << i;
  }
  EXPECT_EQ(eng.taskFailures(), 2u);
  EXPECT_GE(eng.batchFaults(), 1u);

  // Same isolation for the distance path: poisoned lanes -1, the rest
  // identical to the clean engine (which, like clean_tasks above, never
  // sees the poison marker).
  auto clean_dtasks = dtasks;
  clean_dtasks[7] = dtasks[6];
  clean_dtasks[23] = dtasks[22];
  const auto clean_ds = clean.distanceBatch(clean_dtasks);
  const auto ds = eng.distanceBatch(dtasks);
  ASSERT_EQ(ds.size(), dtasks.size());
  EXPECT_EQ(ds[7], -1);
  EXPECT_EQ(ds[23], -1);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (i == 7 || i == 23) continue;
    EXPECT_EQ(ds[i], clean_ds[i]) << i;
  }
  EXPECT_EQ(eng.taskFailures(), 4u);

  // The single-pair entry points degrade by throwing (callers isolate),
  // and a throwing aligner is never recycled into the spare pool: a
  // subsequent clean call must still work.
  EXPECT_THROW((void)eng.align(targets[0], "ZZZZ"), Error);
  const auto again = eng.align(targets[0], queries[0]);
  EXPECT_TRUE(again.ok);
  EXPECT_EQ(again.cigar.str(), clean_results[0].cigar.str());
}

// ------------------------------------------------- pipeline run report

TEST(PipelineFaults, SkipPolicyKeepsGoodReadPafByteIdentical) {
  refmodel::Reference ref;
  readsim::GenomeConfig gcfg;
  gcfg.length = 50'000;
  gcfg.seed = 11;
  ref.addContig("chr", readsim::generateGenome(gcfg));
  auto rcfg = readsim::ReadSimConfig::pacbioClr(12, 900);
  rcfg.seed = 13;
  const auto reads = readsim::simulateReads(ref, rcfg);
  ASSERT_GE(reads.size(), 6u);

  std::string clean_text, dirty_text;
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const std::string rec = "@" + reads[i].name + "\n" + reads[i].seq +
                            "\n+\n" + std::string(reads[i].seq.size(), 'I') +
                            "\n";
    clean_text += rec;
    dirty_text += rec;
    if (i == 2) {  // wedge a corrupt record between good ones
      dirty_text += "@broken\nACGTACGT\n+\nII\n";
    }
  }

  const auto runOnce = [&](const std::string& text, io::OnBadRecord policy,
                           pipeline::RunReport& report) {
    pipeline::PipelineConfig cfg;
    cfg.engine.threads = 4;
    cfg.batch_reads = 5;
    cfg.on_bad_record = policy;
    pipeline::MappingPipeline pipe(ref, cfg);
    std::istringstream in(text);
    std::ostringstream out;
    io::PafWriter writer(out);
    (void)pipe.run(in, writer, "reads.fq");
    writer.close();
    report = pipe.report();
    return out.str();
  };

  pipeline::RunReport clean_report, dirty_report;
  const std::string clean_paf =
      runOnce(clean_text, io::OnBadRecord::kAbort, clean_report);
  ASSERT_FALSE(clean_paf.empty());
  EXPECT_TRUE(clean_report.clean());
  EXPECT_EQ(clean_report.records_in, reads.size());
  EXPECT_EQ(clean_report.skipped_bad_records, 0u);

  const std::string dirty_paf =
      runOnce(dirty_text, io::OnBadRecord::kSkip, dirty_report);
  EXPECT_EQ(dirty_paf, clean_paf);  // good reads unaffected, byte for byte
  EXPECT_FALSE(dirty_report.clean());
  EXPECT_EQ(dirty_report.skipped_bad_records, 1u);
  EXPECT_EQ(dirty_report.errors[ErrorCode::kMalformedInput], 1u);

  // Same corrupt input under the abort policy: run() throws and the
  // report captures the first error.
  pipeline::PipelineConfig cfg;
  cfg.engine.threads = 2;
  cfg.on_bad_record = io::OnBadRecord::kAbort;
  pipeline::MappingPipeline pipe(ref, cfg);
  std::istringstream in(dirty_text);
  std::ostringstream out;
  io::PafWriter writer(out);
  EXPECT_THROW((void)pipe.run(in, writer, "reads.fq"), Error);
  EXPECT_FALSE(pipe.report().first_error.ok());
  EXPECT_EQ(pipe.report().first_error.code(), ErrorCode::kMalformedInput);
}

TEST(PipelineFaults, AdmissionCapsRejectWithoutCrashing) {
  refmodel::Reference ref;
  readsim::GenomeConfig gcfg;
  gcfg.length = 30'000;
  gcfg.seed = 21;
  ref.addContig("chr", readsim::generateGenome(gcfg));
  auto rcfg = readsim::ReadSimConfig::pacbioClr(8, 700);
  rcfg.seed = 23;
  const auto reads = readsim::simulateReads(ref, rcfg);
  std::string text;
  for (const auto& r : reads) {
    text += "@" + r.name + "\n" + r.seq + "\n+\n" +
            std::string(r.seq.size(), 'I') + "\n";
  }

  pipeline::PipelineConfig cfg;
  cfg.engine.threads = 2;
  cfg.max_read_len = 10;  // every simulated read is far longer
  pipeline::MappingPipeline pipe(ref, cfg);
  std::istringstream in(text);
  std::ostringstream out;
  io::PafWriter writer(out);
  (void)pipe.run(in, writer);
  writer.close();
  EXPECT_TRUE(out.str().empty());
  EXPECT_EQ(pipe.report().rejected_reads, reads.size());
  EXPECT_EQ(pipe.report().errors[ErrorCode::kResourceLimit], reads.size());
  EXPECT_EQ(pipe.report().records_in, reads.size());
}

}  // namespace
}  // namespace gx
