// Cross-cutting property tests and regression tests for the failure modes
// discovered during integration (DESIGN.md section 4, "decisions
// discovered during implementation").

#include <gtest/gtest.h>

#include <string>

#include "genasmx/common/sequence.hpp"
#include "genasmx/common/verify.hpp"
#include "genasmx/core/batch.hpp"
#include "genasmx/core/windowed.hpp"
#include "genasmx/ksw/ksw_affine.hpp"
#include "genasmx/myers/myers.hpp"
#include "genasmx/refdp/edit_dp.hpp"
#include "genasmx/util/prng.hpp"

namespace gx {
namespace {

// ---------------------------------------------------------- regressions

// Regression: a candidate start flank below ~0.45*W must be absorbed
// exactly (the equal-window geometry used to derail stitching at flank
// >= 13 on insertion-heavy reads).
class StartFlankRegression : public ::testing::TestWithParam<int> {};

TEST_P(StartFlankRegression, FlankAbsorbedExactly) {
  const int flank = GetParam();
  util::Xoshiro256 rng(2024);
  // Insertion-heavy mutation pattern, like PacBio CLR reads.
  const auto origin = common::randomSequence(rng, 1'500);
  std::string query;
  for (char c : origin) {
    if (rng.chance(0.06)) query.push_back(common::kBases[rng.below(4)]);
    if (!rng.chance(0.03)) query.push_back(c);
  }
  const std::string target =
      common::randomSequence(rng, static_cast<std::size_t>(flank)) + origin;
  const auto windowed = core::alignWindowedImproved(target, query);
  const auto optimal = myers::myersAlign(target, query);
  ASSERT_TRUE(windowed.ok);
  ASSERT_TRUE(optimal.ok);
  EXPECT_TRUE(common::verifyAlignment(target, query, windowed.cigar).valid);
  // Near-exact: small slack for genuinely ambiguous window commits.
  EXPECT_LE(windowed.edit_distance, optimal.edit_distance + 6)
      << "flank=" << flank;
}

INSTANTIATE_TEST_SUITE_P(Flanks, StartFlankRegression,
                         ::testing::Values(0, 1, 4, 8, 12, 16, 20, 24));

// Regression: with lookahead disabled, the equal-window pathology exists
// (documents why the default is W/2 — if this ever starts passing with
// lookahead=0, the guard can be reconsidered).
TEST(LookaheadRegression, ZeroLookaheadDegradesFlankedAlignments) {
  util::Xoshiro256 rng(2025);
  const auto origin = common::randomSequence(rng, 1'500);
  std::string query;
  for (char c : origin) {
    if (rng.chance(0.06)) query.push_back(common::kBases[rng.below(4)]);
    if (!rng.chance(0.03)) query.push_back(c);
  }
  const std::string target = common::randomSequence(rng, 16) + origin;
  core::WindowConfig no_look;
  no_look.lookahead = 0;
  const auto degraded = core::alignWindowedImproved(target, query, no_look);
  const auto healthy = core::alignWindowedImproved(target, query);
  ASSERT_TRUE(degraded.ok);
  ASSERT_TRUE(healthy.ok);
  // Both stay valid alignments regardless.
  EXPECT_TRUE(common::verifyAlignment(target, query, degraded.cigar).valid);
  EXPECT_LE(healthy.edit_distance, degraded.edit_distance);
}

// Regression: trailing text beyond the final window becomes deletions and
// the alignment stays valid and near-optimal.
TEST(FinalWindowRegression, TrailingTextBecomesDeletions) {
  util::Xoshiro256 rng(2026);
  const auto origin = common::randomSequence(rng, 900);
  const auto query = common::mutateSequence(rng, origin, 70);
  const std::string target = origin + common::randomSequence(rng, 25);
  const auto res = core::alignWindowedImproved(target, query);
  ASSERT_TRUE(res.ok);
  const auto v = common::verifyAlignment(target, query, res.cigar);
  ASSERT_TRUE(v.valid) << v.error;
  const auto optimal = myers::myersAlign(target, query);
  EXPECT_LE(res.edit_distance, optimal.edit_distance + 10);
}

// ------------------------------------------------- cross-aligner equality

// For global alignment all exact aligners must agree on the cost, and
// GenASM's global mode is exact.
class GlobalCostAgreement : public ::testing::TestWithParam<int> {};

TEST_P(GlobalCostAgreement, AllExactAlignersAgree) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  for (int t = 0; t < 10; ++t) {
    const auto a = common::randomSequence(rng, 20 + rng.below(280));
    const auto b = common::mutateSequence(rng, a, rng.below(30));
    const int oracle = refdp::editDistance(a, b);
    EXPECT_EQ(myers::myersDistance(a, b), oracle);
    EXPECT_EQ(core::alignGlobalImproved(a, b).edit_distance, oracle);
    ksw::KswConfig unit;
    unit.params = refdp::AffineParams::editDistanceEquivalent();
    EXPECT_EQ(-ksw::kswScore(a, b, unit), oracle);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobalCostAgreement, ::testing::Range(0, 8));

// Windowed GenASM never beats the optimal aligner (sanity of "cost
// ratio" metrics in E7) and always verifies.
TEST(WindowedVsOptimal, NeverBelowOptimalAlwaysValid) {
  util::Xoshiro256 rng(77);
  for (int t = 0; t < 12; ++t) {
    const auto a = common::randomSequence(rng, 300 + rng.below(900));
    const auto b = common::mutateSequence(rng, a, rng.below(120));
    const auto windowed = core::alignWindowedImproved(a, b);
    ASSERT_TRUE(windowed.ok);
    ASSERT_TRUE(common::verifyAlignment(a, b, windowed.cigar).valid);
    EXPECT_GE(windowed.edit_distance, myers::myersDistance(a, b));
  }
}

// ------------------------------------------------------------ batch API

TEST(Batch, MatchesSequentialAndThreadCountInvariant) {
  util::Xoshiro256 rng(88);
  std::vector<mapper::AlignmentPair> pairs;
  for (int i = 0; i < 24; ++i) {
    mapper::AlignmentPair p;
    p.target = common::randomSequence(rng, 400 + rng.below(400));
    p.query = common::mutateSequence(rng, p.target, rng.below(60));
    pairs.push_back(std::move(p));
  }
  core::BatchConfig one_thread;
  one_thread.threads = 1;
  core::BatchConfig four_threads;
  four_threads.threads = 4;
  const auto r1 = core::alignBatch(pairs, one_thread);
  const auto r4 = core::alignBatch(pairs, four_threads);
  ASSERT_EQ(r1.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_TRUE(r1[i].ok);
    EXPECT_EQ(r1[i].cigar, r4[i].cigar);
    const auto direct =
        core::alignWindowedImproved(pairs[i].target, pairs[i].query);
    EXPECT_EQ(r1[i].cigar, direct.cigar);
  }
}

TEST(Batch, BaselineModeMatchesImproved) {
  util::Xoshiro256 rng(89);
  std::vector<mapper::AlignmentPair> pairs;
  for (int i = 0; i < 8; ++i) {
    mapper::AlignmentPair p;
    p.target = common::randomSequence(rng, 500);
    p.query = common::mutateSequence(rng, p.target, 40);
    pairs.push_back(std::move(p));
  }
  core::BatchConfig base_cfg;
  base_cfg.baseline = true;
  base_cfg.threads = 2;
  const auto base = core::alignBatch(pairs, base_cfg);
  const auto impr = core::alignBatch(pairs, core::BatchConfig{});
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(base[i].cigar, impr[i].cigar);
  }
}

TEST(Batch, EmptyBatch) {
  EXPECT_TRUE(core::alignBatch({}, core::BatchConfig{}).empty());
}

// ------------------------------------------------ adversarial inputs

TEST(Adversarial, HomopolymersAndTandemRepeats) {
  // Highly ambiguous inputs (every traceback tie triggers): all aligners
  // must stay valid and exact-cost in global mode.
  const std::string cases[][2] = {
      {"AAAAAAAAAAAAAAAA", "AAAAAAAA"},
      {"ACACACACACACACAC", "ACACACAC"},
      {"ACGACGACGACGACGACG", "ACGACGACG"},
      {"AAAAAAAACCCCCCCC", "AAAACCCC"},
      {"ACGTACGTACGTACGT", "TGCATGCATGCATGCA"},
  };
  for (const auto& c : cases) {
    const std::string t = c[0];
    const std::string q = c[1];
    const int oracle = refdp::editDistance(t, q);
    const auto g = core::alignGlobalImproved(t, q);
    ASSERT_TRUE(g.ok) << t << " vs " << q;
    EXPECT_EQ(g.edit_distance, oracle);
    EXPECT_TRUE(common::verifyAlignment(t, q, g.cigar).valid);
    const auto m = myers::myersAlign(t, q);
    EXPECT_EQ(m.edit_distance, oracle);
    EXPECT_TRUE(common::verifyAlignment(t, q, m.cigar).valid);
  }
}

TEST(Adversarial, SingleCharAndExtremeLengthRatios) {
  EXPECT_EQ(core::alignGlobalImproved("A", "T").edit_distance, 1);
  EXPECT_EQ(core::alignGlobalImproved(std::string(500, 'A'), "A")
                .edit_distance,
            499);
  EXPECT_EQ(core::alignGlobalImproved("A", std::string(500, 'A'))
                .edit_distance,
            499);
  const auto res =
      core::alignWindowedImproved(std::string(3'000, 'G'), "G");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.edit_distance, 2'999);
}

TEST(Adversarial, WindowedOnPeriodicLongSequences) {
  // Periodic sequences maximize traceback ambiguity across windows.
  std::string t, q;
  for (int i = 0; i < 300; ++i) t += "ACGT";
  q = t;
  q.erase(200, 7);  // one deletion burst
  q.insert(600, "TTT");
  const auto res = core::alignWindowedImproved(t, q);
  ASSERT_TRUE(res.ok);
  const auto v = common::verifyAlignment(t, q, res.cigar);
  ASSERT_TRUE(v.valid) << v.error;
  EXPECT_LE(res.edit_distance, 10 + 4);
}

}  // namespace
}  // namespace gx
