#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "genasmx/common/sequence.hpp"
#include "genasmx/mapper/chain.hpp"
#include "genasmx/mapper/index.hpp"
#include "genasmx/mapper/mapper.hpp"
#include "genasmx/mapper/minimizer.hpp"
#include "genasmx/readsim/genome.hpp"
#include "genasmx/readsim/read_simulator.hpp"
#include "genasmx/refmodel/reference.hpp"
#include "genasmx/util/prng.hpp"
#include "genasmx/util/thread_pool.hpp"

namespace gx::mapper {
namespace {

std::string testGenome(std::size_t len = 300'000, std::uint64_t seed = 11) {
  readsim::GenomeConfig cfg;
  cfg.length = len;
  cfg.seed = seed;
  cfg.repeat_fraction = 0.05;
  return readsim::generateGenome(cfg);
}

// -------------------------------------------------------------- minimizers

TEST(Minimizer, BasicProperties) {
  util::Xoshiro256 rng(1);
  const auto seq = common::randomSequence(rng, 10'000);
  const auto mins = extractMinimizers(seq, 15, 10);
  ASSERT_FALSE(mins.empty());
  // Density: roughly 2/(w+1) of positions.
  const double density =
      static_cast<double>(mins.size()) / static_cast<double>(seq.size());
  EXPECT_GT(density, 0.10);
  EXPECT_LT(density, 0.30);
  // Positions strictly increasing, in range.
  for (std::size_t i = 1; i < mins.size(); ++i) {
    EXPECT_LT(mins[i - 1].pos, mins[i].pos);
  }
  EXPECT_LE(mins.back().pos + 15, seq.size());
}

TEST(Minimizer, DeterministicAndSubstringConsistent) {
  util::Xoshiro256 rng(2);
  const auto seq = common::randomSequence(rng, 5'000);
  const auto a = extractMinimizers(seq, 15, 10);
  const auto b = extractMinimizers(seq, 15, 10);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].pos, b[i].pos);
  }
}

TEST(Minimizer, StrandSymmetry) {
  // Canonical k-mers: a sequence and its reverse complement share keys.
  util::Xoshiro256 rng(3);
  const auto seq = common::randomSequence(rng, 2'000);
  const auto rc = common::reverseComplement(seq);
  auto keys_f = extractMinimizers(seq, 15, 10);
  auto keys_r = extractMinimizers(rc, 15, 10);
  std::vector<std::uint64_t> kf, kr;
  for (const auto& m : keys_f) kf.push_back(m.key);
  for (const auto& m : keys_r) kr.push_back(m.key);
  std::sort(kf.begin(), kf.end());
  std::sort(kr.begin(), kr.end());
  // The two sets are (near-)identical: window boundaries can differ
  // slightly at the ends, but the overwhelming majority must agree.
  std::vector<std::uint64_t> common_keys;
  std::set_intersection(kf.begin(), kf.end(), kr.begin(), kr.end(),
                        std::back_inserter(common_keys));
  EXPECT_GT(common_keys.size() * 10, kf.size() * 9);
}

TEST(Minimizer, ShortSequenceAndValidation) {
  EXPECT_TRUE(extractMinimizers("ACGT", 15, 10).empty());
  EXPECT_THROW(extractMinimizers("ACGT", 2, 10), std::invalid_argument);
  EXPECT_THROW(extractMinimizers("ACGT", 40, 10), std::invalid_argument);
  EXPECT_THROW(extractMinimizers("ACGT", 15, 0), std::invalid_argument);
}

// -------------------------------------------------------------------- index

TEST(Index, LookupFindsIndexedPositions) {
  const auto genome = testGenome(100'000);
  MinimizerIndex index;
  index.build(genome, 15, 10, 1'000);
  const auto mins = extractMinimizers(genome, 15, 10);
  ASSERT_FALSE(mins.empty());
  // Every indexed minimizer must be findable at its own position.
  for (std::size_t i = 0; i < mins.size(); i += 97) {
    const auto hits = index.lookup(mins[i].key);
    const bool found = std::any_of(hits.begin(), hits.end(), [&](const IndexHit& h) {
      return h.pos == mins[i].pos;
    });
    EXPECT_TRUE(found) << "minimizer " << i;
  }
}

TEST(Index, UnknownKeyReturnsEmpty) {
  const auto genome = testGenome(50'000);
  MinimizerIndex index;
  index.build(genome, 15, 10, 64);
  EXPECT_TRUE(index.lookup(0xdeadbeefcafef00dULL).empty());
}

TEST(Index, OccurrenceCapMasksRepeats) {
  // A genome that is one repeated unit: high-occurrence minimizers.
  std::string unit;
  util::Xoshiro256 rng(4);
  unit = common::randomSequence(rng, 500);
  std::string genome;
  for (int i = 0; i < 100; ++i) genome += unit;
  MinimizerIndex capped, uncapped;
  capped.build(genome, 15, 10, 8);
  uncapped.build(genome, 15, 10, 1'000'000);
  EXPECT_LT(capped.size(), uncapped.size() / 4);
}

// -------------------------------------------------------------------- chain

TEST(Chain, PerfectColinearAnchorsFormOneChain) {
  std::vector<Anchor> anchors;
  for (std::uint32_t i = 0; i < 20; ++i) {
    anchors.push_back(Anchor{i * 40, 5'000 + i * 40});
  }
  ChainParams params;
  const auto chains = chainAnchors(anchors, params);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].anchors, 20);
  EXPECT_EQ(chains[0].ref_begin, 5'000u);
  EXPECT_EQ(chains[0].read_begin, 0u);
}

TEST(Chain, TwoLociFormTwoChains) {
  std::vector<Anchor> anchors;
  for (std::uint32_t i = 0; i < 10; ++i) {
    anchors.push_back(Anchor{i * 40, 5'000 + i * 40});
    anchors.push_back(Anchor{i * 40, 150'000 + i * 40});
  }
  ChainParams params;
  const auto chains = chainAnchors(anchors, params);
  ASSERT_EQ(chains.size(), 2u);  // -P behaviour: both loci reported
  EXPECT_EQ(chains[0].anchors, 10);
  EXPECT_EQ(chains[1].anchors, 10);
}

TEST(Chain, MinAnchorsFiltersNoise) {
  std::vector<Anchor> anchors = {{100, 900}, {50'000, 200'000}};
  ChainParams params;
  params.min_anchors = 3;
  EXPECT_TRUE(chainAnchors(anchors, params).empty());
}

TEST(Chain, EmptyInput) {
  EXPECT_TRUE(chainAnchors({}, ChainParams{}).empty());
}

// ------------------------------------------------------------------- mapper

TEST(Mapper, FindsTrueOriginOfSimulatedReads) {
  const auto genome = testGenome(300'000);
  Mapper mapper{std::string(genome)};
  auto rcfg = readsim::ReadSimConfig::pacbioClr(25, 3'000);
  const auto reads = readsim::simulateReads(genome, rcfg);
  int located = 0;
  for (const auto& r : reads) {
    const auto candidates = mapper.map(r.seq);
    for (const auto& c : candidates) {
      const bool overlaps = c.ref_begin < r.origin_pos + r.origin_len &&
                            r.origin_pos < c.ref_end;
      if (overlaps && c.reverse == r.reverse_strand) {
        ++located;
        break;
      }
    }
  }
  // 10%-error long reads must map reliably.
  EXPECT_GE(located, 23) << "of " << reads.size();
}

TEST(Mapper, BestCandidateCoversMostOfTheRead) {
  const auto genome = testGenome(200'000, 13);
  Mapper mapper{std::string(genome)};
  auto rcfg = readsim::ReadSimConfig::pacbioClr(10, 2'000);
  rcfg.both_strands = false;
  const auto reads = readsim::simulateReads(genome, rcfg);
  for (const auto& r : reads) {
    const auto candidates = mapper.map(r.seq);
    ASSERT_FALSE(candidates.empty());
    const auto& best = candidates.front();
    const std::size_t span = best.ref_end - best.ref_begin;
    EXPECT_GT(span, r.seq.size() / 2);
    EXPECT_LT(span, r.seq.size() * 2);
  }
}

TEST(Mapper, RepeatsYieldMultipleCandidates) {
  // Heavy repeats: reads from a repeat land in several places (-P shape).
  readsim::GenomeConfig gcfg;
  gcfg.length = 200'000;
  gcfg.repeat_fraction = 0.5;
  gcfg.repeat_unit = 5'000;
  gcfg.repeat_divergence = 0.01;
  gcfg.seed = 17;
  const auto genome = readsim::generateGenome(gcfg);
  Mapper mapper{std::string(genome)};
  auto rcfg = readsim::ReadSimConfig::pacbioClr(20, 2'000);
  rcfg.seed = 5;
  const auto reads = readsim::simulateReads(genome, rcfg);
  std::size_t total_candidates = 0;
  for (const auto& r : reads) {
    total_candidates += mapper.map(r.seq).size();
  }
  EXPECT_GT(total_candidates, reads.size());  // secondaries exist
}

TEST(Mapper, BuildAlignmentPairsOrientsQueries) {
  const auto genome = testGenome(150'000, 19);
  Mapper mapper{std::string(genome)};
  auto rcfg = readsim::ReadSimConfig::pacbioClr(6, 1'500);
  const auto reads = readsim::simulateReads(genome, rcfg);
  for (const auto& r : reads) {
    const auto pairs = buildAlignmentPairs(mapper, r.seq, 3);
    for (const auto& p : pairs) {
      EXPECT_FALSE(p.target.empty());
      EXPECT_EQ(p.query.size(), r.seq.size());
    }
  }
}

// ------------------------------------------------------- multi-contig

refmodel::Reference multiContigRef(std::uint64_t seed = 71) {
  refmodel::Reference ref;
  readsim::GenomeConfig gcfg;
  gcfg.repeat_fraction = 0.05;
  const std::size_t lens[] = {60'000, 140'000, 90'000};
  for (std::size_t c = 0; c < 3; ++c) {
    gcfg.length = lens[c];
    gcfg.seed = seed + c;
    ref.addContig("chr" + std::to_string(c + 1),
                  readsim::generateGenome(gcfg));
  }
  return ref;
}

TEST(Index, ParallelBuildIsIdenticalToSerial) {
  const auto ref = multiContigRef();
  MinimizerIndex serial, parallel;
  serial.build(ref, 15, 10, 64, nullptr);
  util::ThreadPool pool(4);
  parallel.build(ref, 15, 10, 64, &pool);
  EXPECT_TRUE(serial == parallel);
  EXPECT_GT(serial.size(), 0u);
  // Shard stats line up with the contig table.
  ASSERT_EQ(serial.perContigKept().size(), 3u);
  std::size_t total = 0;
  for (const std::size_t n : serial.perContigKept()) total += n;
  EXPECT_EQ(total, serial.size());
}

TEST(Index, BlockSplitExtractionIsIdenticalToMonolithic) {
  // Block-split extraction of one sequence reproduces the monolithic
  // pick sequence exactly: the warm-up window reconstructs the
  // duplicate-suppression state across every block boundary.
  readsim::GenomeConfig gcfg;
  gcfg.length = 50'000;
  gcfg.seed = 99;
  gcfg.repeat_fraction = 0.3;  // repeats stress the suppression state
  const auto genome = readsim::generateGenome(gcfg);
  const auto whole = extractMinimizers(genome, 15, 10);
  for (const std::size_t block : {1'000UL, 4'096UL, 49'999UL}) {
    std::vector<Minimizer> stitched;
    for (std::size_t start = 0; start < genome.size(); start += block) {
      const std::size_t end = std::min(genome.size(), start + block);
      const std::size_t tstart = start >= 10 ? start - 10 : 0;
      const std::size_t tend = std::min(genome.size(), end + 14);
      const auto part =
          extractMinimizers(std::string_view(genome).substr(tstart,
                                                            tend - tstart),
                            15, 10, start - tstart);
      for (Minimizer m : part) {
        m.pos += static_cast<std::uint32_t>(tstart);
        stitched.push_back(m);
      }
    }
    ASSERT_EQ(stitched.size(), whole.size()) << "block=" << block;
    for (std::size_t i = 0; i < whole.size(); ++i) {
      EXPECT_EQ(stitched[i].key, whole[i].key) << i;
      EXPECT_EQ(stitched[i].pos, whole[i].pos) << i;
      EXPECT_EQ(stitched[i].reverse, whole[i].reverse) << i;
    }
  }
}

TEST(Index, LargeContigBlockBuildIsIdenticalAcrossBlockSizesAndPools) {
  // A single-contig reference: the build must fan out over blocks and
  // still produce a bit-identical index for every (block size, pool)
  // schedule, including the no-split monolithic build.
  readsim::GenomeConfig gcfg;
  gcfg.length = 120'000;
  gcfg.seed = 123;
  gcfg.repeat_fraction = 0.25;
  refmodel::Reference ref;
  ref.addContig("chrOnly", readsim::generateGenome(gcfg));

  MinimizerIndex mono;
  mono.build(ref, 15, 10, 64, nullptr, /*block_bp=*/0);
  EXPECT_GT(mono.size(), 0u);
  util::ThreadPool pool(4);
  for (const std::size_t block : {3'000UL, 10'000UL, 1UL << 18}) {
    MinimizerIndex serial, parallel;
    serial.build(ref, 15, 10, 64, nullptr, block);
    parallel.build(ref, 15, 10, 64, &pool, block);
    EXPECT_TRUE(mono == serial) << "block=" << block;
    EXPECT_TRUE(serial == parallel) << "block=" << block;
  }
  // Per-contig stats still line up after block accumulation.
  ASSERT_EQ(mono.perContigKept().size(), 1u);
  EXPECT_EQ(mono.perContigKept()[0], mono.size());
}

TEST(Index, MultiContigBuildNeverEmitsCrossBoundarySeeds) {
  // Contig-sharded extraction vs flat extraction over the concatenation:
  // the only missing minimizers must be boundary-window artifacts, and
  // every kept position must lie >= k inside its own contig's end.
  const auto ref = multiContigRef(5);
  MinimizerIndex index;
  index.build(ref, 15, 10, 1'000'000);
  for (std::uint32_t c = 0; c < ref.contigCount(); ++c) {
    const auto mins = extractMinimizers(ref.contigView(c), 15, 10);
    for (std::size_t i = 0; i < mins.size(); i += 101) {
      const auto hits = index.lookup(mins[i].key);
      const std::size_t global = ref.contig(c).offset + mins[i].pos;
      const bool found =
          std::any_of(hits.begin(), hits.end(),
                      [&](const IndexHit& h) { return h.pos == global; });
      EXPECT_TRUE(found) << "contig " << c << " minimizer " << i;
    }
  }
}

TEST(Chain, CrossContigAnchorsNeverChainTogether) {
  // Perfectly co-linear anchors in global coordinates, but the second
  // half belongs to another contig: one chain per contig, never one
  // spanning both.
  std::vector<Anchor> anchors;
  for (std::uint32_t i = 0; i < 10; ++i) {
    anchors.push_back(Anchor{i * 40, 5'000 + i * 40, 0});
    anchors.push_back(Anchor{(i + 10) * 40, 5'400 + i * 40, 1});
  }
  const auto chains = chainAnchors(anchors, ChainParams{});
  ASSERT_EQ(chains.size(), 2u);
  for (const auto& c : chains) {
    EXPECT_EQ(c.anchors, 10);
    EXPECT_TRUE(c.contig == 0 || c.contig == 1);
  }
  EXPECT_NE(chains[0].contig, chains[1].contig);
}

TEST(Mapper, MultiContigCandidatesStayInBoundsAndFindOrigins) {
  const auto ref = multiContigRef();
  Mapper mapper{ref};
  auto rcfg = readsim::ReadSimConfig::pacbioClr(40, 2'500);
  rcfg.seed = 3;
  const auto reads = readsim::simulateReads(ref, rcfg);
  int located = 0;
  for (const auto& r : reads) {
    const auto candidates = mapper.map(r.seq);
    for (const auto& c : candidates) {
      // No candidate window ever leaves its contig.
      ASSERT_LT(c.contig, ref.contigCount());
      EXPECT_LE(c.ref_end, ref.contig(c.contig).length);
      EXPECT_LE(c.ref_begin, c.ref_end);
      EXPECT_EQ(mapper.candidateText(c).size(), c.ref_end - c.ref_begin);
    }
    const bool hit = std::any_of(
        candidates.begin(), candidates.end(), [&](const Candidate& c) {
          return c.contig == r.origin_contig &&
                 c.ref_begin < r.origin_pos + r.origin_len &&
                 r.origin_pos < c.ref_end && c.reverse == r.reverse_strand;
        });
    located += hit;
  }
  EXPECT_GE(located * 100, static_cast<int>(reads.size()) * 90)
      << located << " of " << reads.size();
}

TEST(Mapper, BoundaryReadsMapToTheirOwnContig) {
  // Exact-copy reads taken flush against every contig boundary: each
  // must come back as a candidate on its own contig, in bounds.
  const auto ref = multiContigRef(29);
  Mapper mapper{ref};
  const std::size_t rl = 1'200;
  for (std::uint32_t c = 0; c < ref.contigCount(); ++c) {
    const auto text = ref.contigView(c);
    const std::string suffix(text.substr(text.size() - rl));
    const std::string prefix(text.substr(0, rl));
    for (const auto& [read, where] :
         {std::pair{suffix, text.size() - rl}, std::pair{prefix, 0ul}}) {
      const auto candidates = mapper.map(read);
      ASSERT_FALSE(candidates.empty()) << "contig " << c;
      const auto& best = candidates.front();
      EXPECT_EQ(best.contig, c);
      EXPECT_FALSE(best.reverse);
      EXPECT_LE(best.ref_end, ref.contig(c).length);
      // The window overlaps the true span.
      EXPECT_LT(best.ref_begin, where + rl);
      EXPECT_LT(where, best.ref_end);
    }
  }
}

TEST(Mapper, RandomReadYieldsNoConfidentCandidate) {
  const auto genome = testGenome(100'000, 23);
  Mapper mapper{std::string(genome)};
  util::Xoshiro256 rng(99);
  const auto junk = common::randomSequence(rng, 2'000);
  const auto candidates = mapper.map(junk);
  // A random 2 kb sequence should produce at most incidental hits.
  EXPECT_LE(candidates.size(), 2u);
}

}  // namespace
}  // namespace gx::mapper
