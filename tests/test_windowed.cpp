#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <tuple>

#include "genasmx/common/sequence.hpp"
#include "genasmx/common/verify.hpp"
#include "genasmx/core/windowed.hpp"
#include "genasmx/refdp/edit_dp.hpp"
#include "genasmx/util/prng.hpp"

namespace gx::core {
namespace {

TEST(WindowConfig, Validation) {
  WindowConfig ok;
  EXPECT_NO_THROW(ok.validate());
  WindowConfig bad_w;
  bad_w.window = 1;
  EXPECT_THROW(bad_w.validate(), std::invalid_argument);
  WindowConfig huge_w;
  huge_w.window = 1000;
  EXPECT_THROW(huge_w.validate(), std::invalid_argument);
  WindowConfig bad_o;
  bad_o.overlap = 0;
  EXPECT_THROW(bad_o.validate(), std::invalid_argument);
  WindowConfig o_ge_w;
  o_ge_w.window = 32;
  o_ge_w.overlap = 32;
  EXPECT_THROW(o_ge_w.validate(), std::invalid_argument);
}

TEST(Windowed, IdenticalSequencesAlignPerfectly) {
  util::Xoshiro256 rng(1);
  const auto s = common::randomSequence(rng, 1000);
  const auto res = alignWindowedImproved(s, s);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.edit_distance, 0);
  EXPECT_EQ(res.cigar.str(), "1000=");
}

TEST(Windowed, EmptyInputs) {
  EXPECT_EQ(alignWindowedImproved("", "").edit_distance, 0);
  EXPECT_EQ(alignWindowedImproved("ACGT", "").cigar.str(), "4D");
  EXPECT_EQ(alignWindowedImproved("", "ACGT").cigar.str(), "4I");
}

TEST(Windowed, ShortInputsBelowOneWindow) {
  // Everything fits in the final (global) window => exact distances.
  util::Xoshiro256 rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto t = common::randomSequence(rng, 1 + rng.below(60));
    const auto q = common::mutateSequence(rng, t, rng.below(6));
    if (q.empty()) continue;
    const auto res = alignWindowedImproved(t, q);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.edit_distance, refdp::editDistance(t, q));
    EXPECT_TRUE(common::verifyAlignment(t, q, res.cigar).valid);
  }
}

// Windowed alignment is a heuristic: always valid, cost >= optimal, and
// near-optimal at realistic long-read error rates.
class WindowedQuality
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // len, err%

TEST_P(WindowedQuality, ValidAndNearOptimal) {
  const auto [len, err_pct] = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(len) * 131 + err_pct);
  for (int trial = 0; trial < 3; ++trial) {
    const auto t = common::randomSequence(rng, static_cast<std::size_t>(len));
    const auto q = common::mutateSequence(
        rng, t, static_cast<std::size_t>(len) * err_pct / 100);
    const int oracle = refdp::editDistance(t, q);
    const auto res = alignWindowedImproved(t, q);
    ASSERT_TRUE(res.ok);
    const auto v = common::verifyAlignment(t, q, res.cigar);
    ASSERT_TRUE(v.valid) << v.error;
    EXPECT_EQ(static_cast<int>(v.cost), res.edit_distance);
    EXPECT_GE(res.edit_distance, oracle);
    // Generous quality bound; EXPERIMENTS.md tracks the typical overhead,
    // which is far smaller at long-read error rates.
    EXPECT_LE(res.edit_distance, oracle * 2 + 8)
        << "len=" << len << " err=" << err_pct << "%";
  }
}

INSTANTIATE_TEST_SUITE_P(
    LenByError, WindowedQuality,
    ::testing::Combine(::testing::Values(200, 500, 1200),
                       ::testing::Values(0, 1, 5, 10, 15)),
    [](const auto& info) {
      return "len" + std::to_string(std::get<0>(info.param)) + "_err" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Windowed, BaselineAndImprovedProduceIdenticalAlignments) {
  // Shared windowing + identical recurrence + identical traceback priority
  // => bit-identical output, independent of all improvement toggles.
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    const auto t = common::randomSequence(rng, 400 + rng.below(400));
    const auto q = common::mutateSequence(rng, t, 30 + rng.below(30));
    const auto rb = alignWindowedBaseline(t, q);
    const auto ri = alignWindowedImproved(t, q);
    ASSERT_TRUE(rb.ok);
    ASSERT_TRUE(ri.ok);
    EXPECT_EQ(rb.edit_distance, ri.edit_distance);
    EXPECT_EQ(rb.cigar, ri.cigar);
  }
}

TEST(Windowed, AblationVariantsProduceIdenticalAlignments) {
  util::Xoshiro256 rng(4);
  const auto t = common::randomSequence(rng, 700);
  const auto q = common::mutateSequence(rng, t, 60);
  const auto reference = alignWindowedImproved(t, q);
  ASSERT_TRUE(reference.ok);
  for (int mask = 0; mask < 8; ++mask) {
    ImprovedOptions o;
    o.compress_entries = mask & 1;
    o.early_termination = mask & 2;
    o.traceback_pruning = mask & 4;
    const auto res = alignWindowedImproved(t, q, WindowConfig{}, o);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.cigar, reference.cigar) << "mask=" << mask;
  }
}

class WindowedConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // W, O

TEST_P(WindowedConfigSweep, ValidAcrossWindowGeometometry) {
  const auto [W, O] = GetParam();
  WindowConfig cfg;
  cfg.window = W;
  cfg.overlap = O;
  util::Xoshiro256 rng(static_cast<std::uint64_t>(W) * 1000 + O);
  const auto t = common::randomSequence(rng, 600);
  const auto q = common::mutateSequence(rng, t, 45);
  const auto res = alignWindowedImproved(t, q, cfg);
  ASSERT_TRUE(res.ok) << "W=" << W << " O=" << O;
  const auto v = common::verifyAlignment(t, q, res.cigar);
  ASSERT_TRUE(v.valid) << v.error;
  EXPECT_GE(res.edit_distance, refdp::editDistance(t, q));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, WindowedConfigSweep,
    ::testing::Values(std::tuple{32, 8}, std::tuple{32, 16},
                      std::tuple{48, 16}, std::tuple{64, 16},
                      std::tuple{64, 24}, std::tuple{64, 32},
                      std::tuple{96, 32}, std::tuple{128, 48},
                      std::tuple{256, 64}),
    [](const auto& info) {
      return "W" + std::to_string(std::get<0>(info.param)) + "_O" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Windowed, TargetMuchLongerThanQuery) {
  // Candidate regions can carry extra reference margin; the alignment must
  // stay valid, absorbing the slack as deletions.
  util::Xoshiro256 rng(5);
  const auto q = common::randomSequence(rng, 150);
  const auto t = q + common::randomSequence(rng, 300);
  const auto res = alignWindowedImproved(t, q);
  ASSERT_TRUE(res.ok);
  EXPECT_TRUE(common::verifyAlignment(t, q, res.cigar).valid);
}

TEST(Windowed, QueryMuchLongerThanTarget) {
  util::Xoshiro256 rng(6);
  const auto t = common::randomSequence(rng, 150);
  const auto q = t + common::randomSequence(rng, 300);
  const auto res = alignWindowedImproved(t, q);
  ASSERT_TRUE(res.ok);
  EXPECT_TRUE(common::verifyAlignment(t, q, res.cigar).valid);
}

TEST(Windowed, LongReadRealisticScale) {
  // One 10kb read at ~10% error: the paper's workload shape.
  util::Xoshiro256 rng(7);
  const auto t = common::randomSequence(rng, 10000);
  const auto q = common::mutateSequence(rng, t, 1000);
  const auto res = alignWindowedImproved(t, q);
  ASSERT_TRUE(res.ok);
  const auto v = common::verifyAlignment(t, q, res.cigar);
  ASSERT_TRUE(v.valid) << v.error;
  EXPECT_LE(res.edit_distance, 2200);  // sane cost for ~1000 true edits
}

TEST(Windowed, MemStatsAccumulateAcrossWindows) {
  util::Xoshiro256 rng(8);
  const auto t = common::randomSequence(rng, 1000);
  const auto q = common::mutateSequence(rng, t, 80);
  util::MemStats stats;
  const auto res = alignWindowedImproved(t, q, WindowConfig{},
                                         ImprovedOptions{}, &stats);
  ASSERT_TRUE(res.ok);
  EXPECT_GT(stats.problems, 10u);  // ~1000/40 windows
  EXPECT_GT(stats.dp_stores, 0u);
  // Peak footprint is per-window, not per-read: must stay tiny.
  EXPECT_LT(stats.bytes_peak, 64u * 1024u);
}

}  // namespace
}  // namespace gx::core
