// Reference model: contig table over one backing buffer, O(log C)
// global<->local coordinate mapping, FASTA construction.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "genasmx/readsim/genome.hpp"
#include "genasmx/refmodel/reference.hpp"

namespace gx::refmodel {
namespace {

Reference threeContigs() {
  Reference ref;
  ref.addContig("chrA", std::string(100, 'A'));
  ref.addContig("chrB", std::string(250, 'C'));
  ref.addContig("chrC", std::string(50, 'G'));
  return ref;
}

TEST(Reference, ContigTableLayout) {
  const auto ref = threeContigs();
  EXPECT_EQ(ref.contigCount(), 3u);
  EXPECT_EQ(ref.size(), 400u);
  EXPECT_EQ(ref.contig(0).offset, 0u);
  EXPECT_EQ(ref.contig(0).length, 100u);
  EXPECT_EQ(ref.contig(1).offset, 100u);
  EXPECT_EQ(ref.contig(1).length, 250u);
  EXPECT_EQ(ref.contig(2).offset, 350u);
  EXPECT_EQ(ref.contig(2).length, 50u);
  EXPECT_EQ(ref.name(1), "chrB");
  EXPECT_EQ(ref.contigView(1), std::string(250, 'C'));
  // The backing buffer is the concatenation, with views into it.
  EXPECT_EQ(ref.view().size(), 400u);
  EXPECT_EQ(ref.contigView(2).data(), ref.view().data() + 350);
}

TEST(Reference, GlobalLocalRoundTrip) {
  const auto ref = threeContigs();
  // Every boundary-adjacent position resolves to the right contig.
  struct Case {
    std::size_t global;
    std::uint32_t contig;
    std::size_t local;
  };
  for (const auto& c : {Case{0, 0, 0}, Case{99, 0, 99}, Case{100, 1, 0},
                        Case{349, 1, 249}, Case{350, 2, 0},
                        Case{399, 2, 49}}) {
    const auto p = ref.globalToLocal(c.global);
    EXPECT_EQ(p.contig, c.contig) << "global " << c.global;
    EXPECT_EQ(p.pos, c.local) << "global " << c.global;
    EXPECT_EQ(ref.localToGlobal(p.contig, p.pos), c.global);
    EXPECT_EQ(ref.contigOf(c.global), c.contig);
  }
  // Half-open ends convert: local == length is a valid interval end.
  EXPECT_EQ(ref.localToGlobal(0, 100), 100u);
}

TEST(Reference, ExhaustiveRoundTripMatchesLinearScan) {
  const auto ref = threeContigs();
  for (std::size_t g = 0; g < ref.size(); ++g) {
    const auto p = ref.globalToLocal(g);
    EXPECT_EQ(ref.localToGlobal(p.contig, p.pos), g);
    EXPECT_LT(p.pos, ref.contig(p.contig).length);
  }
}

TEST(Reference, OutOfRangeThrows) {
  const auto ref = threeContigs();
  EXPECT_THROW((void)ref.globalToLocal(400), std::out_of_range);
  EXPECT_THROW((void)ref.localToGlobal(0, 101), std::out_of_range);
  EXPECT_THROW((void)ref.localToGlobal(3, 0), std::out_of_range);
}

TEST(Reference, SingleContigConvenienceCtor) {
  const Reference ref("chr1", "ACGTACGT");
  EXPECT_EQ(ref.contigCount(), 1u);
  EXPECT_EQ(ref.name(0), "chr1");
  EXPECT_EQ(ref.size(), 8u);
  EXPECT_EQ(ref.globalToLocal(5).pos, 5u);
}

TEST(Reference, RejectsEmptyContig) {
  Reference ref;
  EXPECT_THROW(ref.addContig("empty", ""), std::invalid_argument);
  EXPECT_THROW(Reference("empty", ""), std::invalid_argument);
}

TEST(Reference, FromFastxPreservesOrderAndRejectsDuplicates) {
  std::vector<io::FastxRecord> records;
  records.push_back({"chr2", "", "ACGTACGTAC", ""});
  records.push_back({"chr1", "", "GGGG", ""});
  const auto ref = referenceFromFastx(records);
  EXPECT_EQ(ref.name(0), "chr2");  // record order, not name order
  EXPECT_EQ(ref.name(1), "chr1");
  EXPECT_EQ(ref.contigView(1), "GGGG");

  records.push_back({"chr2", "", "TTTT", ""});
  EXPECT_THROW((void)referenceFromFastx(records), std::invalid_argument);
  EXPECT_THROW((void)referenceFromFastx({}), std::invalid_argument);
}

TEST(Reference, ManyContigsLookupStaysConsistent) {
  // A larger table so the binary search sees a non-trivial C.
  Reference ref;
  readsim::GenomeConfig gcfg;
  gcfg.length = 1'000;
  std::size_t expect_offset = 0;
  for (int c = 0; c < 64; ++c) {
    gcfg.seed = 100 + static_cast<std::uint64_t>(c);
    gcfg.length = 500 + static_cast<std::size_t>(c) * 37;
    std::string name = "c";  // two-step append: GCC-12 -Wrestrict workaround
    name += std::to_string(c);
    ref.addContig(std::move(name), readsim::generateGenome(gcfg));
    EXPECT_EQ(ref.contig(static_cast<std::uint32_t>(c)).offset, expect_offset);
    expect_offset += gcfg.length;
  }
  for (std::uint32_t c = 0; c < 64; ++c) {
    const auto& ct = ref.contig(c);
    EXPECT_EQ(ref.contigOf(ct.offset), c);
    EXPECT_EQ(ref.contigOf(ct.offset + ct.length - 1), c);
  }
}

}  // namespace
}  // namespace gx::refmodel
