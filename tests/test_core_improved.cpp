#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "genasmx/common/sequence.hpp"
#include "genasmx/common/verify.hpp"
#include "genasmx/core/genasm_improved.hpp"
#include "genasmx/genasm/genasm_baseline.hpp"
#include "genasmx/refdp/edit_dp.hpp"
#include "genasmx/util/prng.hpp"

namespace gx::core {
namespace {

ImprovedOptions optionsFromMask(int mask) {
  ImprovedOptions o;
  o.compress_entries = mask & 1;
  o.early_termination = mask & 2;
  o.traceback_pruning = mask & 4;
  return o;
}

// ------------------------------------------------- correctness vs the oracle

TEST(ImprovedGlobal, KnownCases) {
  struct Case {
    const char* t;
    const char* q;
    int dist;
  };
  for (const Case& c : {Case{"ACGT", "ACGT", 0}, Case{"ACGT", "AGGT", 1},
                        Case{"ACGT", "AGT", 1}, Case{"AGT", "ACGT", 1},
                        Case{"AAAA", "TTTT", 4}, Case{"GCTAGCT", "CTAGCTA", 2},
                        Case{"AG", "G", 1}, Case{"G", "AG", 1}}) {
    const auto res = alignGlobalImproved(c.t, c.q);
    ASSERT_TRUE(res.ok) << c.t << " vs " << c.q;
    EXPECT_EQ(res.edit_distance, c.dist) << c.t << " vs " << c.q;
    const auto v = common::verifyAlignment(c.t, c.q, res.cigar);
    EXPECT_TRUE(v.valid) << v.error;
  }
}

TEST(ImprovedGlobal, EmptyInputs) {
  EXPECT_EQ(alignGlobalImproved("", "").edit_distance, 0);
  EXPECT_EQ(alignGlobalImproved("ACGT", "").cigar.str(), "4D");
  EXPECT_EQ(alignGlobalImproved("", "ACGT").cigar.str(), "4I");
}

class ImprovedSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ImprovedSweep, MatchesOracleAndVerifies) {
  const auto [seed, len, edits] = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 104729 + 1);
  for (int trial = 0; trial < 8; ++trial) {
    const auto t = common::randomSequence(rng, static_cast<std::size_t>(len));
    const auto q =
        common::mutateSequence(rng, t, static_cast<std::size_t>(edits));
    const int oracle = refdp::editDistance(t, q);
    const auto res = alignGlobalImproved(t, q);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.edit_distance, oracle) << "t=" << t << " q=" << q;
    const auto v = common::verifyAlignment(t, q, res.cigar);
    ASSERT_TRUE(v.valid) << v.error;
    EXPECT_EQ(static_cast<int>(v.cost), oracle);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LengthsByEdits, ImprovedSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1, 8, 33, 64, 100, 200),
                       ::testing::Values(0, 1, 4, 12)),
    [](const auto& info) {
      return std::string("s") + std::to_string(std::get<0>(info.param)) + "_len" +
             std::to_string(std::get<1>(info.param)) + "_e" +
             std::to_string(std::get<2>(info.param));
    });

// ------------------------------------------- ablation grid: all 8 variants

// Every combination of the three improvements must produce *identical*
// results: the improvements change where table entries live and how many
// are computed/stored, never the recurrence or the traceback priority.
class AblationGrid : public ::testing::TestWithParam<int> {};

TEST_P(AblationGrid, AllOptionCombinationsAgreeWithBaseline) {
  const ImprovedOptions opts = optionsFromMask(GetParam());
  util::Xoshiro256 rng(777);
  genasm::BaselineWindowSolver<1> baseline;
  ImprovedWindowSolver<1> improved(opts);
  for (int trial = 0; trial < 20; ++trial) {
    const auto text = common::randomSequence(rng, 30 + rng.below(34));
    const auto pattern = common::mutateSequence(
        rng, text.substr(0, 20 + rng.below(30)), rng.below(8));
    if (pattern.empty() || pattern.size() > 64) continue;
    const auto t_rev = common::reversed(text);
    const auto q_rev = common::reversed(pattern);
    for (const auto anchor : {Anchor::StartOnly, Anchor::BothEnds}) {
      for (const int limit : {-1, 7, 40}) {
        WindowSpec spec;
        spec.anchor = anchor;
        spec.tb_op_limit = limit;
        const auto wb = baseline.solve(t_rev, q_rev, spec);
        const auto wi = improved.solve(t_rev, q_rev, spec);
        ASSERT_EQ(wb.ok, wi.ok);
        if (!wb.ok) continue;
        EXPECT_EQ(wb.distance, wi.distance);
        // Identical deterministic traceback priority => identical cigars.
        EXPECT_EQ(wb.cigar, wi.cigar)
            << "mask=" << GetParam() << " anchor=" << static_cast<int>(anchor)
            << " limit=" << limit << "\n baseline=" << wb.cigar.str()
            << "\n improved=" << wi.cigar.str();
        EXPECT_EQ(wb.traceback_complete, wi.traceback_complete);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Masks, AblationGrid, ::testing::Range(0, 8));

// ------------------------------------------------------ memory instrumentation

TEST(ImprovedMemory, FootprintAndAccessesBelowBaseline) {
  util::Xoshiro256 rng(99);
  const auto text = common::randomSequence(rng, 64);
  const auto pattern = common::mutateSequence(rng, text, 6);
  if (pattern.size() > 64) return;

  util::MemStats base_stats, impr_stats;
  const auto rb =
      genasm::alignGlobalBaseline(text, pattern, -1, &base_stats);
  const auto ri = alignGlobalImproved(text, pattern, -1, ImprovedOptions{},
                                      &impr_stats);
  ASSERT_TRUE(rb.ok);
  ASSERT_TRUE(ri.ok);
  EXPECT_EQ(rb.edit_distance, ri.edit_distance);
  EXPECT_LT(impr_stats.bytes_peak, base_stats.bytes_peak);
  EXPECT_LT(impr_stats.accesses(), base_stats.accesses());
  // The paper's claims are measured properly in bench_memory_*; here we
  // only pin that the reductions are substantial (>3x each).
  EXPECT_GT(base_stats.bytes_peak, 3 * impr_stats.bytes_peak);
  EXPECT_GT(base_stats.accesses(), 3 * impr_stats.accesses());
}

TEST(ImprovedMemory, EarlyTerminationSkipsLevels) {
  // Identical sequences => d_min = 0; with ET a single level is computed.
  const std::string s(64, 'A');
  util::MemStats with_et, without_et;
  ImprovedOptions on;
  ImprovedOptions off;
  off.early_termination = false;
  ASSERT_TRUE(alignGlobalImproved(s, s, -1, on, &with_et).ok);
  ASSERT_TRUE(alignGlobalImproved(s, s, -1, off, &without_et).ok);
  // Without ET all 65 levels are computed; with ET exactly 1.
  EXPECT_GT(without_et.dp_stores, 30 * with_et.dp_stores);
}

TEST(ImprovedMemory, CompressionReducesStores) {
  util::Xoshiro256 rng(101);
  const auto text = common::randomSequence(rng, 64);
  const auto pattern = common::mutateSequence(rng, text, 8);
  util::MemStats comp, uncomp;
  ImprovedOptions on;
  ImprovedOptions off;
  off.compress_entries = false;
  ASSERT_TRUE(alignGlobalImproved(text, pattern, -1, on, &comp).ok);
  ASSERT_TRUE(alignGlobalImproved(text, pattern, -1, off, &uncomp).ok);
  EXPECT_LT(comp.dp_stores, uncomp.dp_stores);
  EXPECT_LT(comp.bytes_peak, uncomp.bytes_peak);
}

TEST(ImprovedMemory, PruningShrinksStoresUnderOpLimit) {
  util::Xoshiro256 rng(103);
  const auto text = common::randomSequence(rng, 64);
  const auto pattern = common::mutateSequence(rng, text, 4);
  const auto t_rev = common::reversed(text);
  const auto q_rev = common::reversed(pattern);
  WindowSpec spec;
  spec.anchor = Anchor::StartOnly;
  spec.tb_op_limit = 16;

  util::MemStats pruned_stats, full_stats;
  ImprovedOptions pruned_opts;
  ImprovedOptions full_opts;
  full_opts.traceback_pruning = false;
  ImprovedWindowSolver<1> pruned(pruned_opts), full(full_opts);
  const auto wp =
      pruned.solve(t_rev, q_rev, spec, util::CountingMemCounter(pruned_stats));
  const auto wf =
      full.solve(t_rev, q_rev, spec, util::CountingMemCounter(full_stats));
  ASSERT_TRUE(wp.ok);
  ASSERT_TRUE(wf.ok);
  EXPECT_EQ(wp.cigar, wf.cigar);
  EXPECT_LT(pruned_stats.bytes_peak, full_stats.bytes_peak);
}

// ----------------------------------------------------------- multiword core

class ImprovedMultiWordSweep : public ::testing::TestWithParam<int> {};

TEST_P(ImprovedMultiWordSweep, MatchesOracle) {
  const int len = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(len) * 17 + 3);
  const auto t = common::randomSequence(rng, static_cast<std::size_t>(len));
  const auto q = common::mutateSequence(rng, t, 12);
  const int oracle = refdp::editDistance(t, q);
  const auto res = alignGlobalImproved(t, q);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.edit_distance, oracle);
  EXPECT_TRUE(common::verifyAlignment(t, q, res.cigar).valid);
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, ImprovedMultiWordSweep,
                         ::testing::Values(63, 64, 65, 127, 128, 129, 200,
                                           256, 300, 480));

TEST(ImprovedSolver, RespectsMaxEditsCap) {
  EXPECT_FALSE(alignGlobalImproved("AAAA", "TTTT", 3).ok);
  EXPECT_TRUE(alignGlobalImproved("AAAA", "TTTT", 4).ok);
}

TEST(ImprovedSolver, TracebackOpLimitTruncates) {
  ImprovedWindowSolver<1> solver;
  const std::string text = "ACGTACGTACGT";
  WindowSpec spec;
  spec.anchor = Anchor::StartOnly;
  spec.tb_op_limit = 5;
  const auto wr = solver.solve(common::reversed(text),
                               common::reversed(text), spec);
  ASSERT_TRUE(wr.ok);
  EXPECT_EQ(wr.cigar.str(), "5=");
  EXPECT_FALSE(wr.traceback_complete);
}

}  // namespace
}  // namespace gx::core
