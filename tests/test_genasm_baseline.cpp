#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "genasmx/common/sequence.hpp"
#include "genasmx/common/verify.hpp"
#include "genasmx/genasm/genasm_baseline.hpp"
#include "genasmx/refdp/edit_dp.hpp"
#include "genasmx/util/prng.hpp"

namespace gx::genasm {
namespace {

// --------------------------------------------------------- global alignment

TEST(BaselineGlobal, KnownCases) {
  struct Case {
    const char* t;
    const char* q;
    int dist;
  };
  for (const Case& c : {Case{"ACGT", "ACGT", 0}, Case{"ACGT", "AGGT", 1},
                        Case{"ACGT", "AGT", 1}, Case{"AGT", "ACGT", 1},
                        Case{"AAAA", "TTTT", 4}, Case{"GCTAGCT", "CTAGCTA", 2},
                        Case{"A", "A", 0}, Case{"A", "T", 1},
                        Case{"AG", "G", 1}}) {
    const auto res = alignGlobalBaseline(c.t, c.q);
    ASSERT_TRUE(res.ok) << c.t << " vs " << c.q;
    EXPECT_EQ(res.edit_distance, c.dist) << c.t << " vs " << c.q;
    const auto v = common::verifyAlignment(c.t, c.q, res.cigar);
    EXPECT_TRUE(v.valid) << v.error;
    EXPECT_EQ(static_cast<int>(v.cost), c.dist);
  }
}

TEST(BaselineGlobal, EmptyInputs) {
  auto r1 = alignGlobalBaseline("", "");
  EXPECT_TRUE(r1.ok);
  EXPECT_EQ(r1.edit_distance, 0);
  auto r2 = alignGlobalBaseline("ACGT", "");
  EXPECT_TRUE(r2.ok);
  EXPECT_EQ(r2.cigar.str(), "4D");
  auto r3 = alignGlobalBaseline("", "ACGT");
  EXPECT_TRUE(r3.ok);
  EXPECT_EQ(r3.cigar.str(), "4I");
}

TEST(BaselineGlobal, RespectsMaxEditsCap) {
  // Distance is 4; a cap of 3 must fail, a cap of 4 succeed.
  EXPECT_FALSE(alignGlobalBaseline("AAAA", "TTTT", 3).ok);
  const auto res = alignGlobalBaseline("AAAA", "TTTT", 4);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.edit_distance, 4);
}

// Property sweep: baseline == oracle over lengths x mutation loads.
class BaselineSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BaselineSweep, MatchesOracleAndVerifies) {
  const auto [seed, len, edits] = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  for (int trial = 0; trial < 8; ++trial) {
    const auto t = common::randomSequence(rng, static_cast<std::size_t>(len));
    const auto q =
        common::mutateSequence(rng, t, static_cast<std::size_t>(edits));
    const int oracle = refdp::editDistance(t, q);
    const auto res = alignGlobalBaseline(t, q);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.edit_distance, oracle) << "t=" << t << " q=" << q;
    const auto v = common::verifyAlignment(t, q, res.cigar);
    ASSERT_TRUE(v.valid) << v.error;
    EXPECT_EQ(static_cast<int>(v.cost), oracle);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LengthsByEdits, BaselineSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1, 8, 33, 64, 100, 200),
                       ::testing::Values(0, 1, 4, 12)),
    [](const auto& info) {
      return std::string("s") + std::to_string(std::get<0>(info.param)) + "_len" +
             std::to_string(std::get<1>(info.param)) + "_e" +
             std::to_string(std::get<2>(info.param));
    });

// Random unrelated pairs (high distance regime).
class BaselineUnrelatedSweep : public ::testing::TestWithParam<int> {};

TEST_P(BaselineUnrelatedSweep, MatchesOracle) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 5; ++trial) {
    const auto t = common::randomSequence(rng, 20 + rng.below(60));
    const auto q = common::randomSequence(rng, 20 + rng.below(60));
    const int oracle = refdp::editDistance(t, q);
    const auto res = alignGlobalBaseline(t, q);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.edit_distance, oracle);
    EXPECT_TRUE(common::verifyAlignment(t, q, res.cigar).valid);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineUnrelatedSweep,
                         ::testing::Range(100, 110));

// Multi-word patterns (m > 64).
class BaselineMultiWordSweep : public ::testing::TestWithParam<int> {};

TEST_P(BaselineMultiWordSweep, MatchesOracle) {
  const int len = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(len) * 31 + 7);
  const auto t = common::randomSequence(rng, static_cast<std::size_t>(len));
  const auto q = common::mutateSequence(rng, t, 10);
  const int oracle = refdp::editDistance(t, q);
  const auto res = alignGlobalBaseline(t, q);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.edit_distance, oracle);
  EXPECT_TRUE(common::verifyAlignment(t, q, res.cigar).valid);
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, BaselineMultiWordSweep,
                         ::testing::Values(63, 64, 65, 127, 128, 129, 200,
                                           256, 300, 480));

// ------------------------------------------------------- solver-level tests

TEST(BaselineSolver, StartOnlyLeavesTextEndFree) {
  // Pattern equals a prefix of the text: with a free original-text end the
  // window distance must be 0 even though the text is longer.
  BaselineWindowSolver<1> solver;
  const std::string text = "ACGTACGTAAAA";
  const std::string pattern = "ACGTACGT";
  WindowSpec spec;
  spec.anchor = Anchor::StartOnly;
  const auto wr = solver.solve(common::reversed(text),
                               common::reversed(pattern), spec);
  ASSERT_TRUE(wr.ok);
  EXPECT_EQ(wr.distance, 0);
  EXPECT_EQ(wr.cigar.str(), "8=");
  EXPECT_TRUE(wr.traceback_complete);
}

TEST(BaselineSolver, StartOnlyDistanceNeverAboveGlobal) {
  util::Xoshiro256 rng(55);
  BaselineWindowSolver<1> solver;
  for (int trial = 0; trial < 25; ++trial) {
    const auto text = common::randomSequence(rng, 40 + rng.below(25));
    const auto pattern =
        common::mutateSequence(rng, text.substr(0, 30), rng.below(6));
    if (pattern.empty() || pattern.size() > 64) continue;
    WindowSpec spec;
    spec.anchor = Anchor::StartOnly;
    const auto wr = solver.solve(common::reversed(text),
                                 common::reversed(pattern), spec);
    ASSERT_TRUE(wr.ok);
    EXPECT_LE(wr.distance, refdp::editDistance(text, pattern));
    // The committed ops must align the pattern against a text *prefix*.
    const auto consumed = wr.cigar.targetLength();
    const auto v = common::verifyAlignment(
        std::string_view(text).substr(0, consumed), pattern, wr.cigar);
    ASSERT_TRUE(v.valid) << v.error;
    EXPECT_EQ(v.cost, static_cast<std::uint64_t>(wr.distance));
  }
}

TEST(BaselineSolver, TracebackOpLimitTruncates) {
  BaselineWindowSolver<1> solver;
  const std::string text = "ACGTACGTACGT";
  WindowSpec spec;
  spec.anchor = Anchor::StartOnly;
  spec.tb_op_limit = 5;
  const auto wr = solver.solve(common::reversed(text),
                               common::reversed(text), spec);
  ASSERT_TRUE(wr.ok);
  EXPECT_EQ(wr.distance, 0);
  EXPECT_EQ(wr.cigar.opCount(), 5u);
  EXPECT_FALSE(wr.traceback_complete);
  EXPECT_EQ(wr.cigar.str(), "5=");
}

TEST(BaselineSolver, CountsMemoryTraffic) {
  util::MemStats stats;
  const auto res = alignGlobalBaseline("ACGTACGTACGTACGT",
                                       "ACGTACGTACGTACGT", -1, &stats);
  ASSERT_TRUE(res.ok);
  EXPECT_GT(stats.dp_stores, 0u);
  EXPECT_GT(stats.dp_loads, 0u);
  EXPECT_GT(stats.bytes_peak, 0u);
  EXPECT_EQ(stats.problems, 1u);
  // Baseline stores 4 edge vectors + 1 working entry per (column, level):
  // 16 columns x 17 levels x 5 stores + 17 column-0 inits.
  EXPECT_GE(stats.dp_stores, 16u * 17u * 5u);
}

TEST(BaselineSolver, RejectsOversizedPattern) {
  BaselineWindowSolver<1> solver;
  const std::string pattern(65, 'A');
  const std::string text(65, 'A');
  WindowSpec spec;
  const auto wr = solver.solve(text, pattern, spec);
  EXPECT_FALSE(wr.ok);
}

}  // namespace
}  // namespace gx::genasm
