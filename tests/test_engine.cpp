// Engine layer: registry lookup semantics, backend-vs-oracle agreement,
// and deterministic batched execution (1 thread == N threads).

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "genasmx/common/sequence.hpp"
#include "genasmx/common/verify.hpp"
#include "genasmx/engine/engine.hpp"
#include "genasmx/refdp/affine_dp.hpp"
#include "genasmx/refdp/edit_dp.hpp"
#include "genasmx/util/prng.hpp"

namespace gx {
namespace {

// ------------------------------------------------------------- registry

TEST(AlignerRegistry, UnknownNameThrows) {
  EXPECT_THROW((void)engine::makeAligner("no-such-backend"),
               std::invalid_argument);
  engine::EngineConfig cfg;
  cfg.backend = "bogus";
  EXPECT_THROW(engine::AlignmentEngine{cfg}, std::invalid_argument);
}

TEST(AlignerRegistry, UnknownNameMessageListsBackends) {
  try {
    (void)engine::makeAligner("no-such-backend");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-backend"), std::string::npos);
    EXPECT_NE(msg.find("windowed-improved"), std::string::npos);
  }
}

TEST(AlignerRegistry, RegistersAllDocumentedBackends) {
  auto& registry = engine::AlignerRegistry::instance();
  for (const char* name :
       {"baseline", "improved", "windowed-baseline", "windowed-improved",
        "myers", "ksw", "edit-dp", "affine-dp"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_FALSE(registry.description(name).empty()) << name;
    const auto aligner = registry.create(name);
    ASSERT_NE(aligner, nullptr) << name;
    EXPECT_EQ(aligner->name(), name);
  }
  EXPECT_FALSE(registry.contains("definitely-not-registered"));
  EXPECT_GE(registry.names().size(), 8u);
}

TEST(AlignerRegistry, InvalidWindowGeometryPropagates) {
  engine::AlignerConfig cfg;
  cfg.window.window = 64;
  cfg.window.overlap = 64;  // overlap must be < window
  // The global GenASM backends validate too: they fall back to the
  // windowed driver beyond 512 bp, and the throw must happen at
  // construction, not later on a worker thread.
  for (const char* name : {"windowed-improved", "windowed-baseline",
                           "improved", "baseline"}) {
    EXPECT_THROW((void)engine::makeAligner(name, cfg), std::invalid_argument)
        << name;
  }
}

TEST(AlignerRegistry, ExternalBackendsCanRegister) {
  // New backends (GPU dispatch, remote shards, ...) plug in by name.
  class Delegating final : public engine::Aligner {
   public:
    Delegating() : inner_(engine::makeAligner("edit-dp")) {}
    common::AlignmentResult align(std::string_view t,
                                  std::string_view q) override {
      return inner_->align(t, q);
    }
    std::string_view name() const noexcept override { return "test-stub"; }

   private:
    engine::AlignerPtr inner_;
  };
  engine::AlignerRegistry::instance().add(
      "test-stub", "unit-test delegating backend",
      [](const engine::AlignerConfig&) -> engine::AlignerPtr {
        return std::make_unique<Delegating>();
      });
  const auto aligner = engine::makeAligner("test-stub");
  EXPECT_EQ(aligner->align("ACGT", "AGGT").edit_distance, 1);
}

// --------------------------------------------- backend-vs-oracle parity

// Every exact backend reproduces refdp::editDistance on random pairs and
// emits a CIGAR that verifies at that cost. The affine backends run with
// the unit-cost-equivalent parameters so -score ties to edit distance.
class ExactBackendOracle : public ::testing::TestWithParam<const char*> {};

TEST_P(ExactBackendOracle, MatchesReferenceDpOnRandomPairs) {
  engine::AlignerConfig cfg;
  cfg.ksw.params = refdp::AffineParams::editDistanceEquivalent();
  const auto aligner = engine::makeAligner(GetParam(), cfg);
  util::Xoshiro256 rng(4242);
  for (int t = 0; t < 12; ++t) {
    const auto a = common::randomSequence(rng, 20 + rng.below(240));
    const auto b = common::mutateSequence(rng, a, rng.below(25));
    const int oracle = refdp::editDistance(a, b);
    const auto res = aligner->align(a, b);
    ASSERT_TRUE(res.ok) << GetParam() << " trial " << t;
    const auto v = common::verifyAlignment(a, b, res.cigar);
    ASSERT_TRUE(v.valid) << GetParam() << ": " << v.error;
    EXPECT_EQ(static_cast<int>(res.cigar.editDistance()), oracle)
        << GetParam() << " trial " << t;
    // The distance-only fast path (overridden or defaulted) agrees.
    EXPECT_EQ(aligner->distance(a, b),
              static_cast<int>(res.cigar.editDistance()))
        << GetParam() << " trial " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ExactBackendOracle,
                         ::testing::Values("baseline", "improved", "myers",
                                           "ksw", "edit-dp", "affine-dp"));

// The windowed backends are heuristic: never better than the oracle,
// always valid, and near-exact on read-like pairs.
class WindowedBackendOracle : public ::testing::TestWithParam<const char*> {};

TEST_P(WindowedBackendOracle, ValidAndNearOptimalOnReadLikePairs) {
  const auto aligner = engine::makeAligner(GetParam());
  util::Xoshiro256 rng(99);
  for (int t = 0; t < 6; ++t) {
    const auto a = common::randomSequence(rng, 600 + rng.below(600));
    const auto b = common::mutateSequence(rng, a, 40 + rng.below(40));
    const int oracle = refdp::editDistance(a, b);
    const auto res = aligner->align(a, b);
    ASSERT_TRUE(res.ok) << GetParam() << " trial " << t;
    const auto v = common::verifyAlignment(a, b, res.cigar);
    ASSERT_TRUE(v.valid) << GetParam() << ": " << v.error;
    EXPECT_GE(res.edit_distance, oracle);
    EXPECT_LE(res.edit_distance, oracle + 10) << GetParam() << " trial " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, WindowedBackendOracle,
                         ::testing::Values("windowed-baseline",
                                           "windowed-improved"));

// ----------------------------------------------------- batched execution

std::vector<mapper::AlignmentPair> makePairs(std::size_t count) {
  util::Xoshiro256 rng(7);
  std::vector<mapper::AlignmentPair> pairs;
  for (std::size_t i = 0; i < count; ++i) {
    // Mixed short/long so both the global and windowed paths execute.
    const std::size_t len = i % 3 == 0 ? 150 + rng.below(100)
                                       : 600 + rng.below(700);
    mapper::AlignmentPair p;
    p.target = common::randomSequence(rng, len);
    p.query = common::mutateSequence(
        rng, p.target, static_cast<std::size_t>(len / 20) + rng.below(10));
    pairs.push_back(std::move(p));
  }
  return pairs;
}

void expectSameResults(const std::vector<common::AlignmentResult>& a,
                       const std::vector<common::AlignmentResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ok, b[i].ok) << i;
    EXPECT_EQ(a[i].edit_distance, b[i].edit_distance) << i;
    EXPECT_EQ(a[i].score, b[i].score) << i;
    EXPECT_EQ(a[i].cigar, b[i].cigar) << i;
  }
}

TEST(AlignmentEngine, BatchIsDeterministicAcrossThreadCounts) {
  const auto pairs = makePairs(36);
  engine::EngineConfig one;
  one.threads = 1;
  engine::EngineConfig four;
  four.threads = 4;
  engine::EngineConfig eight;
  eight.threads = 8;
  const auto r1 = engine::AlignmentEngine(one).alignBatch(pairs);
  const auto r4 = engine::AlignmentEngine(four).alignBatch(pairs);
  const auto r8 = engine::AlignmentEngine(eight).alignBatch(pairs);
  expectSameResults(r1, r4);
  expectSameResults(r1, r8);
}

TEST(AlignmentEngine, BatchMatchesSequentialAlignForEveryBackend) {
  const auto pairs = makePairs(9);
  for (const auto& name : engine::AlignerRegistry::instance().names()) {
    engine::EngineConfig cfg;
    cfg.backend = name;
    cfg.threads = 3;
    engine::AlignmentEngine eng(cfg);
    const auto batch = eng.alignBatch(pairs);
    ASSERT_EQ(batch.size(), pairs.size());
    std::vector<common::AlignmentResult> sequential;
    sequential.reserve(pairs.size());
    const auto aligner = engine::makeAligner(name);
    for (const auto& p : pairs) {
      sequential.push_back(aligner->align(p.target, p.query));
    }
    expectSameResults(batch, sequential);
  }
}

TEST(AlignmentEngine, ViewBatchMatchesOwningBatch) {
  const auto pairs = makePairs(12);
  std::vector<engine::AlignmentTask> tasks;
  tasks.reserve(pairs.size());
  for (const auto& p : pairs) tasks.push_back({p.target, p.query});
  engine::EngineConfig cfg;
  cfg.threads = 4;
  engine::AlignmentEngine eng(cfg);
  expectSameResults(eng.alignBatch(tasks), eng.alignBatch(pairs));
}

TEST(AlignmentEngine, EmptyBatchAndAccessors) {
  engine::EngineConfig cfg;
  cfg.backend = "windowed-improved";
  cfg.threads = 2;
  engine::AlignmentEngine eng(cfg);
  EXPECT_TRUE(eng.alignBatch(std::vector<mapper::AlignmentPair>{}).empty());
  EXPECT_TRUE(eng.alignBatch(std::vector<engine::AlignmentTask>{}).empty());
  EXPECT_EQ(eng.backend(), "windowed-improved");
  EXPECT_EQ(eng.threads(), 2u);
  const auto res = eng.align("ACGTACGT", "ACGTTCGT");
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.edit_distance, 1);
}

}  // namespace
}  // namespace gx
