#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "genasmx/common/sequence.hpp"
#include "genasmx/readsim/genome.hpp"
#include "genasmx/readsim/read_simulator.hpp"
#include "genasmx/refdp/edit_dp.hpp"

namespace gx::readsim {
namespace {

TEST(Genome, LengthAndAlphabet) {
  GenomeConfig cfg;
  cfg.length = 50'000;
  const auto g = generateGenome(cfg);
  EXPECT_EQ(g.size(), 50'000u);
  for (char c : g) {
    ASSERT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');
  }
}

TEST(Genome, DeterministicBySeed) {
  GenomeConfig cfg;
  cfg.length = 20'000;
  EXPECT_EQ(generateGenome(cfg), generateGenome(cfg));
  cfg.seed = 43;
  EXPECT_NE(generateGenome(cfg), generateGenome(GenomeConfig{}));
}

TEST(Genome, RepeatsCreateDuplicatedContent) {
  GenomeConfig with;
  with.length = 200'000;
  with.repeat_fraction = 0.30;
  with.repeat_unit = 1'000;
  with.repeat_divergence = 0.0;
  const auto g = generateGenome(with);
  // Count exact 64-mers occurring more than once via sampling.
  std::vector<std::string> kmers;
  for (std::size_t i = 0; i + 64 <= g.size(); i += 512) {
    kmers.push_back(g.substr(i, 64));
  }
  std::sort(kmers.begin(), kmers.end());
  int dupes = 0;
  for (std::size_t i = 1; i < kmers.size(); ++i) {
    dupes += kmers[i] == kmers[i - 1];
  }
  EXPECT_GT(dupes, 0);  // repeats exist
}

TEST(ReadSim, CountLengthStrand) {
  GenomeConfig gcfg;
  gcfg.length = 100'000;
  const auto genome = generateGenome(gcfg);
  auto cfg = ReadSimConfig::pacbioClr(50, 2'000);
  const auto reads = simulateReads(genome, cfg);
  ASSERT_EQ(reads.size(), 50u);
  int reverse = 0;
  for (const auto& r : reads) {
    EXPECT_EQ(r.seq.size(), 2'000u);
    EXPECT_LE(r.origin_pos + r.origin_len, genome.size());
    reverse += r.reverse_strand;
  }
  EXPECT_GT(reverse, 10);  // both strands sampled
  EXPECT_LT(reverse, 40);
}

TEST(ReadSim, DeterministicBySeed) {
  GenomeConfig gcfg;
  gcfg.length = 60'000;
  const auto genome = generateGenome(gcfg);
  const auto cfg = ReadSimConfig::pacbioClr(10, 1'000);
  const auto a = simulateReads(genome, cfg);
  const auto b = simulateReads(genome, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].origin_pos, b[i].origin_pos);
  }
}

TEST(ReadSim, ErrorRateNearConfigured) {
  GenomeConfig gcfg;
  gcfg.length = 400'000;
  const auto genome = generateGenome(gcfg);
  auto cfg = ReadSimConfig::pacbioClr(40, 4'000);
  const auto reads = simulateReads(genome, cfg);
  double total_edits = 0, total_bases = 0;
  for (const auto& r : reads) {
    total_edits += r.true_edits;
    total_bases += static_cast<double>(r.seq.size());
  }
  const double rate = total_edits / total_bases;
  EXPECT_GT(rate, 0.07);
  EXPECT_LT(rate, 0.14);
}

TEST(ReadSim, TrueEditsBoundTheRealDistance) {
  // The injected-error count upper-bounds the true edit distance between
  // the read and its origin window.
  GenomeConfig gcfg;
  gcfg.length = 80'000;
  const auto genome = generateGenome(gcfg);
  auto cfg = ReadSimConfig::pacbioClr(15, 600);
  cfg.both_strands = false;
  const auto reads = simulateReads(genome, cfg);
  for (const auto& r : reads) {
    const auto origin =
        std::string_view(genome).substr(r.origin_pos, r.origin_len);
    const int d = refdp::editDistance(origin, r.seq);
    EXPECT_LE(d, static_cast<int>(r.true_edits));
    EXPECT_GT(d, 0);  // 600 bases at 10% errors: certainly nonzero
  }
}

TEST(ReadSim, ReverseStrandReadsMatchRevCompOrigin) {
  GenomeConfig gcfg;
  gcfg.length = 80'000;
  const auto genome = generateGenome(gcfg);
  auto cfg = ReadSimConfig::pacbioClr(30, 500);
  const auto reads = simulateReads(genome, cfg);
  for (const auto& r : reads) {
    if (!r.reverse_strand) continue;
    const auto origin =
        std::string(genome).substr(r.origin_pos, r.origin_len);
    const auto rc_read = common::reverseComplement(r.seq);
    EXPECT_LE(refdp::editDistance(origin, rc_read),
              static_cast<int>(r.true_edits));
    return;  // one deep check is enough (O(n*m) oracle)
  }
}

TEST(ReadSim, IlluminaPresetIsSubstitutionDominated) {
  GenomeConfig gcfg;
  gcfg.length = 100'000;
  const auto genome = generateGenome(gcfg);
  auto cfg = ReadSimConfig::illumina(200, 150);
  cfg.both_strands = false;
  const auto reads = simulateReads(genome, cfg);
  double edits = 0, len_dev = 0;
  for (const auto& r : reads) {
    edits += r.true_edits;
    len_dev += std::abs(static_cast<double>(r.origin_len) -
                        static_cast<double>(r.seq.size()));
  }
  EXPECT_LT(edits / (200.0 * 150.0), 0.01);  // ~0.3% error rate
  EXPECT_LT(len_dev / 200.0, 2.0);  // indels rare => origin ~ read length
}

TEST(ReadSim, RejectsTinyGenome) {
  EXPECT_THROW(simulateReads("ACGT", ReadSimConfig::pacbioClr(1, 100)),
               std::invalid_argument);
}

}  // namespace
}  // namespace gx::readsim
