#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "genasmx/common/sequence.hpp"
#include "genasmx/readsim/genome.hpp"
#include "genasmx/readsim/read_simulator.hpp"
#include "genasmx/refdp/edit_dp.hpp"
#include "genasmx/refmodel/reference.hpp"

namespace gx::readsim {
namespace {

TEST(Genome, LengthAndAlphabet) {
  GenomeConfig cfg;
  cfg.length = 50'000;
  const auto g = generateGenome(cfg);
  EXPECT_EQ(g.size(), 50'000u);
  for (char c : g) {
    ASSERT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');
  }
}

TEST(Genome, DeterministicBySeed) {
  GenomeConfig cfg;
  cfg.length = 20'000;
  EXPECT_EQ(generateGenome(cfg), generateGenome(cfg));
  cfg.seed = 43;
  EXPECT_NE(generateGenome(cfg), generateGenome(GenomeConfig{}));
}

TEST(Genome, RepeatsCreateDuplicatedContent) {
  GenomeConfig with;
  with.length = 200'000;
  with.repeat_fraction = 0.30;
  with.repeat_unit = 1'000;
  with.repeat_divergence = 0.0;
  const auto g = generateGenome(with);
  // Count exact 64-mers occurring more than once via sampling.
  std::vector<std::string> kmers;
  for (std::size_t i = 0; i + 64 <= g.size(); i += 512) {
    kmers.push_back(g.substr(i, 64));
  }
  std::sort(kmers.begin(), kmers.end());
  int dupes = 0;
  for (std::size_t i = 1; i < kmers.size(); ++i) {
    dupes += kmers[i] == kmers[i - 1];
  }
  EXPECT_GT(dupes, 0);  // repeats exist
}

TEST(ReadSim, CountLengthStrand) {
  GenomeConfig gcfg;
  gcfg.length = 100'000;
  const auto genome = generateGenome(gcfg);
  auto cfg = ReadSimConfig::pacbioClr(50, 2'000);
  const auto reads = simulateReads(genome, cfg);
  ASSERT_EQ(reads.size(), 50u);
  int reverse = 0;
  for (const auto& r : reads) {
    EXPECT_EQ(r.seq.size(), 2'000u);
    EXPECT_LE(r.origin_pos + r.origin_len, genome.size());
    reverse += r.reverse_strand;
  }
  EXPECT_GT(reverse, 10);  // both strands sampled
  EXPECT_LT(reverse, 40);
}

TEST(ReadSim, DeterministicBySeed) {
  GenomeConfig gcfg;
  gcfg.length = 60'000;
  const auto genome = generateGenome(gcfg);
  const auto cfg = ReadSimConfig::pacbioClr(10, 1'000);
  const auto a = simulateReads(genome, cfg);
  const auto b = simulateReads(genome, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].origin_pos, b[i].origin_pos);
  }
}

TEST(ReadSim, ErrorRateNearConfigured) {
  GenomeConfig gcfg;
  gcfg.length = 400'000;
  const auto genome = generateGenome(gcfg);
  auto cfg = ReadSimConfig::pacbioClr(40, 4'000);
  const auto reads = simulateReads(genome, cfg);
  double total_edits = 0, total_bases = 0;
  for (const auto& r : reads) {
    total_edits += r.true_edits;
    total_bases += static_cast<double>(r.seq.size());
  }
  const double rate = total_edits / total_bases;
  EXPECT_GT(rate, 0.07);
  EXPECT_LT(rate, 0.14);
}

TEST(ReadSim, TrueEditsBoundTheRealDistance) {
  // The injected-error count upper-bounds the true edit distance between
  // the read and its origin window.
  GenomeConfig gcfg;
  gcfg.length = 80'000;
  const auto genome = generateGenome(gcfg);
  auto cfg = ReadSimConfig::pacbioClr(15, 600);
  cfg.both_strands = false;
  const auto reads = simulateReads(genome, cfg);
  for (const auto& r : reads) {
    const auto origin =
        std::string_view(genome).substr(r.origin_pos, r.origin_len);
    const int d = refdp::editDistance(origin, r.seq);
    EXPECT_LE(d, static_cast<int>(r.true_edits));
    EXPECT_GT(d, 0);  // 600 bases at 10% errors: certainly nonzero
  }
}

TEST(ReadSim, ReverseStrandReadsMatchRevCompOrigin) {
  GenomeConfig gcfg;
  gcfg.length = 80'000;
  const auto genome = generateGenome(gcfg);
  auto cfg = ReadSimConfig::pacbioClr(30, 500);
  const auto reads = simulateReads(genome, cfg);
  for (const auto& r : reads) {
    if (!r.reverse_strand) continue;
    const auto origin =
        std::string(genome).substr(r.origin_pos, r.origin_len);
    const auto rc_read = common::reverseComplement(r.seq);
    EXPECT_LE(refdp::editDistance(origin, rc_read),
              static_cast<int>(r.true_edits));
    return;  // one deep check is enough (O(n*m) oracle)
  }
}

TEST(ReadSim, IlluminaPresetIsSubstitutionDominated) {
  GenomeConfig gcfg;
  gcfg.length = 100'000;
  const auto genome = generateGenome(gcfg);
  auto cfg = ReadSimConfig::illumina(200, 150);
  cfg.both_strands = false;
  const auto reads = simulateReads(genome, cfg);
  double edits = 0, len_dev = 0;
  for (const auto& r : reads) {
    edits += r.true_edits;
    len_dev += std::abs(static_cast<double>(r.origin_len) -
                        static_cast<double>(r.seq.size()));
  }
  EXPECT_LT(edits / (200.0 * 150.0), 0.01);  // ~0.3% error rate
  EXPECT_LT(len_dev / 200.0, 2.0);  // indels rare => origin ~ read length
}

TEST(ReadSim, RejectsTinyGenome) {
  EXPECT_THROW(simulateReads("ACGT", ReadSimConfig::pacbioClr(1, 100)),
               std::invalid_argument);
}

// --------------------------------------------------------- multi-contig

TEST(ReadSim, MultiContigOriginsNeverCrossBoundaries) {
  refmodel::Reference ref;
  readsim::GenomeConfig gcfg;
  for (std::size_t c = 0; c < 4; ++c) {
    gcfg.length = 30'000 + c * 20'000;
    gcfg.seed = 50 + c;
    ref.addContig("ctg" + std::to_string(c), readsim::generateGenome(gcfg));
  }
  auto cfg = ReadSimConfig::pacbioClr(80, 1'000);
  const auto reads = simulateReads(ref, cfg);
  ASSERT_EQ(reads.size(), 80u);
  for (const auto& r : reads) {
    ASSERT_LT(r.origin_contig, ref.contigCount());
    // Origin span lies entirely inside its contig.
    EXPECT_LE(r.origin_pos + r.origin_len,
              ref.contig(r.origin_contig).length);
    // The read really comes from that contig-local window.
    const auto origin =
        ref.contigView(r.origin_contig).substr(r.origin_pos, r.origin_len);
    const auto oriented =
        r.reverse_strand ? common::reverseComplement(r.seq) : r.seq;
    EXPECT_LE(refdp::editDistance(origin, oriented),
              static_cast<int>(r.true_edits));
  }
}

TEST(ReadSim, MultiContigSamplingIsLengthProportional) {
  refmodel::Reference ref;
  readsim::GenomeConfig gcfg;
  // 1:3 length ratio -> read counts should split roughly 1:3.
  gcfg.length = 50'000;
  gcfg.seed = 60;
  ref.addContig("small", readsim::generateGenome(gcfg));
  gcfg.length = 150'000;
  gcfg.seed = 61;
  ref.addContig("large", readsim::generateGenome(gcfg));
  auto cfg = ReadSimConfig::pacbioClr(400, 1'000);
  const auto reads = simulateReads(ref, cfg);
  int small = 0;
  for (const auto& r : reads) small += r.origin_contig == 0;
  // E[small] = 100 of 400; allow a generous band.
  EXPECT_GT(small, 55);
  EXPECT_LT(small, 160);
}

TEST(ReadSim, MultiContigNamesEncodeTruth) {
  refmodel::Reference ref;
  readsim::GenomeConfig gcfg;
  gcfg.length = 40'000;
  gcfg.seed = 70;
  ref.addContig("chrX", readsim::generateGenome(gcfg));
  gcfg.seed = 71;
  ref.addContig("chrY", readsim::generateGenome(gcfg));
  auto cfg = ReadSimConfig::pacbioClr(20, 800);
  const auto reads = simulateReads(ref, cfg);
  for (const auto& r : reads) {
    const std::string expect =
        "!" + ref.name(r.origin_contig) + "!" + std::to_string(r.origin_pos) +
        "!" + (r.reverse_strand ? "-" : "+");
    ASSERT_GE(r.name.size(), expect.size());
    EXPECT_EQ(r.name.substr(r.name.size() - expect.size()), expect) << r.name;
    EXPECT_EQ(r.name.rfind("read_", 0), 0u) << r.name;
  }
}

TEST(ReadSim, SingleContigReferenceMatchesFlatOverload) {
  // Same seed, one contig: the Reference overload samples the same
  // origins and sequences as the flat-genome overload (names aside).
  readsim::GenomeConfig gcfg;
  gcfg.length = 80'000;
  const auto genome = readsim::generateGenome(gcfg);
  auto cfg = ReadSimConfig::pacbioClr(25, 1'200);
  const auto flat = simulateReads(std::string_view(genome), cfg);
  const auto via_ref =
      simulateReads(refmodel::Reference("chr1", genome), cfg);
  ASSERT_EQ(flat.size(), via_ref.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i].seq, via_ref[i].seq);
    EXPECT_EQ(flat[i].origin_pos, via_ref[i].origin_pos);
    EXPECT_EQ(flat[i].origin_len, via_ref[i].origin_len);
    EXPECT_EQ(flat[i].reverse_strand, via_ref[i].reverse_strand);
    EXPECT_EQ(via_ref[i].origin_contig, 0u);
  }
}

TEST(ReadSim, MultiContigRejectsAllContigsTooShort) {
  refmodel::Reference ref;
  ref.addContig("tiny1", std::string(300, 'A'));
  ref.addContig("tiny2", std::string(400, 'C'));
  EXPECT_THROW(simulateReads(ref, ReadSimConfig::pacbioClr(5, 1'000)),
               std::invalid_argument);
}

}  // namespace
}  // namespace gx::readsim
