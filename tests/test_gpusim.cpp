#include <gtest/gtest.h>

#include "genasmx/gpusim/device.hpp"
#include "genasmx/gpusim/perf_model.hpp"

namespace gx::gpusim {
namespace {

TEST(DeviceSpecTest, A6000Defaults) {
  const auto spec = DeviceSpec::a6000();
  EXPECT_EQ(spec.num_sms, 84);
  EXPECT_EQ(spec.shared_mem_per_block, 100u * 1024u);
  EXPECT_GT(spec.dram_bandwidth_gbps, 700.0);
}

TEST(BlockContextTest, SharedCapacityEnforced) {
  BlockContext ctx(0, 64, 1'000);
  EXPECT_TRUE(ctx.sharedAlloc(600));
  EXPECT_FALSE(ctx.sharedAlloc(600));  // 1200 > 1000
  EXPECT_EQ(ctx.failedSharedAllocs(), 1u);
  EXPECT_TRUE(ctx.sharedAlloc(400));
  EXPECT_EQ(ctx.sharedHighWater(), 1'000u);
  ctx.sharedFree(1'000);
  EXPECT_TRUE(ctx.sharedAlloc(1'000));
  EXPECT_EQ(ctx.sharedHighWater(), 1'000u);
}

TEST(DeviceTest, LaunchRunsEveryBlockAndAggregates) {
  Device dev;
  std::vector<int> seen;
  const auto stats = dev.launch(10, 32, [&](BlockContext& ctx) {
    seen.push_back(ctx.blockId());
    ctx.work(100.0, 50.0);
    ctx.globalLoad(1'000);
    ctx.sharedStore(500);
    ASSERT_TRUE(ctx.sharedAlloc(2'048));
  });
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(stats.grid, 10);
  EXPECT_EQ(stats.block_threads, 32);
  EXPECT_DOUBLE_EQ(stats.total_ops, 1'000.0);
  EXPECT_DOUBLE_EQ(stats.critical_cycles_total, 500.0);
  EXPECT_EQ(stats.global_bytes, 10'000u);
  EXPECT_EQ(stats.shared_bytes, 5'000u);
  EXPECT_EQ(stats.shared_per_block, 2'048u);
  EXPECT_EQ(stats.failed_shared_allocs, 0u);
}

TEST(DeviceTest, LaunchValidatesArguments) {
  Device dev;
  EXPECT_THROW(dev.launch(-1, 32, [](BlockContext&) {}),
               std::invalid_argument);
  EXPECT_THROW(dev.launch(1, 0, [](BlockContext&) {}), std::invalid_argument);
  EXPECT_THROW(dev.launch(1, 2'000, [](BlockContext&) {}),
               std::invalid_argument);
}

TEST(PerfModel, OccupancyLimiters) {
  DeviceSpec spec;
  // Thread-limited: 1536 / 256 = 6 blocks.
  EXPECT_EQ(blocksPerSm(spec, 256, 0), 6);
  // Block-count limited.
  EXPECT_EQ(blocksPerSm(spec, 32, 0), 16);
  // Shared-memory limited: 128K / 40K = 3 blocks.
  EXPECT_EQ(blocksPerSm(spec, 32, 40 * 1024), 3);
  // Never below 1.
  EXPECT_EQ(blocksPerSm(spec, 1'024, 120 * 1024), 1);
}

TEST(PerfModel, DramBoundKernel) {
  DeviceSpec spec;
  LaunchStats stats;
  stats.grid = 1'000;
  stats.block_threads = 64;
  stats.total_ops = 1e6;          // tiny compute
  stats.global_bytes = 768ull << 30;  // exactly 1 second of DRAM traffic
  const auto t = modelTime(spec, stats);
  EXPECT_NEAR(t.dram_s, 1.073, 0.08);  // 768 GiB over 768 GB/s
  EXPECT_EQ(t.total_s, t.dram_s);
  EXPECT_GT(t.dram_s, t.compute_s);
}

TEST(PerfModel, ComputeBoundKernel) {
  DeviceSpec spec;
  LaunchStats stats;
  stats.grid = 1'000;
  stats.block_threads = 64;
  // One second of compute at the modeled issue rate.
  stats.total_ops = spec.num_sms * spec.issue_ops_per_cycle_per_sm *
                    spec.core_clock_ghz * 1e9;
  stats.global_bytes = 1'000;
  const auto t = modelTime(spec, stats);
  EXPECT_NEAR(t.compute_s, 1.0, 1e-9);
  EXPECT_EQ(t.total_s, t.compute_s);
}

TEST(PerfModel, LatencyBoundKernel) {
  DeviceSpec spec;
  LaunchStats stats;
  stats.grid = 84 * 16;  // exactly one wave
  stats.block_threads = 64;
  stats.shared_per_block = 0;
  // Each block: 1.41e6 cycles of pure dependency chain = 1 ms.
  stats.critical_cycles_total = 1.41e6 * stats.grid;
  const auto t = modelTime(spec, stats);
  // 1344 blocks, concurrency 1344 => one block-chain per slot: 1 ms.
  EXPECT_NEAR(t.latency_s, 1e-3, 1e-6);
  EXPECT_EQ(t.total_s, t.latency_s);
}

TEST(PerfModel, SharedSpillRaisesModeledTime) {
  // The capacity cliff: identical work, but one kernel's DP traffic goes
  // to DRAM instead of shared memory => strictly slower.
  DeviceSpec spec;
  LaunchStats fits;
  fits.grid = 10'000;
  fits.block_threads = 64;
  fits.shared_per_block = 8 * 1024;
  fits.shared_bytes = 400ull << 30;
  fits.total_ops = 1e9;
  LaunchStats spills = fits;
  spills.shared_per_block = 0;
  spills.shared_bytes = 0;
  spills.global_bytes = 400ull << 30;
  const auto t_fits = modelTime(spec, fits);
  const auto t_spills = modelTime(spec, spills);
  EXPECT_GT(t_spills.total_s, 5.0 * t_fits.total_s);
}

}  // namespace
}  // namespace gx::gpusim
