// On-disk minimizer index (index_io): build -> save -> mmap load
// round-trips on single- and multi-contig repeat-rich references, the
// IndexView query-parity contract between both index sources (the
// substrate of byte-identical PAF from `genasmx_map --index=`), and
// rejection of every malformed-file class — wrong magic, bumped
// version, endianness mismatch, truncation, corrupt payload, corrupt
// header — with IndexIoError, never a crash.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "genasmx/io/paf.hpp"
#include "genasmx/mapper/index.hpp"
#include "genasmx/mapper/index_io.hpp"
#include "genasmx/mapper/index_view.hpp"
#include "genasmx/mapper/mapper.hpp"
#include "genasmx/pipeline/pipeline.hpp"
#include "genasmx/readsim/genome.hpp"
#include "genasmx/readsim/read_simulator.hpp"
#include "genasmx/refmodel/reference.hpp"

namespace gx::mapper {
namespace {

refmodel::Reference repeatRichRef(std::size_t contigs, std::uint64_t seed) {
  refmodel::Reference ref;
  readsim::GenomeConfig cfg;
  cfg.repeat_fraction = 0.30;  // force capped (masked) minimizers
  cfg.repeat_unit = 800;
  cfg.repeat_divergence = 0.02;
  for (std::size_t c = 0; c < contigs; ++c) {
    cfg.length = 40'000 + 25'000 * c;
    cfg.seed = seed + c;
    ref.addContig("ctg" + std::to_string(c + 1),
                  readsim::generateGenome(cfg));
  }
  return ref;
}

std::string tempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Every field the format stores, compared via the IndexView surfaces of
/// the in-memory build and the mapped file.
void expectSameIndex(const MinimizerIndex& built,
                     const refmodel::Reference& ref,
                     const MappedIndex& mapped) {
  const IndexView a = built.view(ref);
  const IndexView& b = mapped.view();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.k(), b.k());
  EXPECT_EQ(a.w(), b.w());
  EXPECT_EQ(a.maxOcc(), b.maxOcc());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.keysData()[i], b.keysData()[i]) << "key " << i;
    ASSERT_EQ(a.valuesData()[i], b.valuesData()[i]) << "value " << i;
  }
  const refmodel::Reference& rref = mapped.reference();
  ASSERT_EQ(ref.contigCount(), rref.contigCount());
  EXPECT_TRUE(rref.externallyBacked());
  EXPECT_EQ(ref.view(), rref.view());
  for (std::uint32_t c = 0; c < ref.contigCount(); ++c) {
    EXPECT_EQ(ref.name(c), rref.name(c));
    EXPECT_EQ(ref.contig(c).offset, rref.contig(c).offset);
    EXPECT_EQ(ref.contig(c).length, rref.contig(c).length);
    EXPECT_EQ(a.perContigKept(c), b.perContigKept(c));
  }
  EXPECT_EQ(a.distinctKeys(), b.distinctKeys());
}

TEST(IndexIo, RoundTripSingleContig) {
  const auto ref = repeatRichRef(1, 5);
  MinimizerIndex index;
  index.build(ref, 15, 10, 64);
  const std::string path = tempPath("single.gxi");
  writeIndexFile(path, index, ref);
  const MappedIndex mapped(path);
  expectSameIndex(index, ref, mapped);
}

TEST(IndexIo, RoundTripMultiContigRepeatRich) {
  const auto ref = repeatRichRef(4, 17);
  MinimizerIndex index;
  index.build(ref, 15, 10, 8);  // tight cap: repeats actually mask
  const std::string path = tempPath("multi.gxi");
  writeIndexFile(path, index, ref);
  const MappedIndex mapped(path);
  expectSameIndex(index, ref, mapped);
  // The masked-repeat accounting survives the round-trip: at least one
  // contig kept fewer minimizers than it extracted.
  std::uint64_t kept = 0;
  for (std::uint32_t c = 0; c < ref.contigCount(); ++c) {
    kept += mapped.view().perContigKept(c);
  }
  EXPECT_EQ(kept, mapped.view().size());
}

TEST(IndexIo, LookupParityBetweenSources) {
  const auto ref = repeatRichRef(3, 29);
  MinimizerIndex index;
  index.build(ref, 15, 10, 16);
  const std::string path = tempPath("parity.gxi");
  writeIndexFile(path, index, ref);
  const MappedIndex mapped(path);
  // Every stored key — including capped-adjacent ones — answers
  // identically from the sorted arrays and from the mmap'd file, plus a
  // probe of absent keys.
  const IndexView& disk = mapped.view();
  for (std::size_t i = 0; i < index.size(); i += 97) {
    const std::uint64_t key = index.keys()[i];
    const auto a = index.lookup(key);
    const auto b = disk.lookup(key);
    ASSERT_EQ(a.size(), b.size()) << "key " << key;
    for (std::size_t h = 0; h < a.size(); ++h) {
      EXPECT_EQ(a[h].pos, b[h].pos);
      EXPECT_EQ(a[h].reverse, b[h].reverse);
    }
  }
  EXPECT_TRUE(disk.lookup(~std::uint64_t(0)).empty());
}

TEST(IndexIo, MapperEmitsSameCandidatesFromBothSources) {
  const auto ref = repeatRichRef(3, 41);
  auto rcfg = readsim::ReadSimConfig::pacbioClr(25, 1'500);
  rcfg.seed = 43;
  const auto reads = readsim::simulateReads(ref, rcfg);

  const std::string path = tempPath("mapper.gxi");
  {
    MinimizerIndex index;
    index.build(ref, 15, 10, 64);
    writeIndexFile(path, index, ref);
  }
  const Mapper built(ref);  // builds its own index with the same params
  const MappedIndex mapped(path);
  const Mapper served(mapped.view());
  EXPECT_EQ(served.config().k, built.config().k);
  EXPECT_EQ(served.config().w, built.config().w);

  for (const auto& r : reads) {
    const auto a = built.map(r.seq);
    const auto b = served.map(r.seq);
    ASSERT_EQ(a.size(), b.size()) << r.name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].contig, b[i].contig) << r.name;
      EXPECT_EQ(a[i].ref_begin, b[i].ref_begin) << r.name;
      EXPECT_EQ(a[i].ref_end, b[i].ref_end) << r.name;
      EXPECT_EQ(a[i].reverse, b[i].reverse) << r.name;
      EXPECT_EQ(a[i].score, b[i].score) << r.name;
    }
  }
}

TEST(IndexIo, PipelinePafByteIdenticalFromBothSources) {
  const auto ref = repeatRichRef(3, 53);
  auto rcfg = readsim::ReadSimConfig::pacbioClr(20, 1'200);
  rcfg.seed = 59;
  const auto reads = readsim::simulateReads(ref, rcfg);
  std::ostringstream fq;
  {
    std::vector<io::FastxRecord> fastx;
    for (const auto& r : reads) {
      io::FastxRecord rec;
      rec.name = r.name;
      rec.seq = r.seq;
      rec.qual.assign(r.seq.size(), 'I');
      fastx.push_back(std::move(rec));
    }
    io::writeFastx(fq, fastx);
  }
  const std::string path = tempPath("pipeline.gxi");
  {
    MinimizerIndex index;
    index.build(ref, 15, 10, 64);
    writeIndexFile(path, index, ref);
  }

  auto run = [&](bool from_disk, std::size_t threads) {
    pipeline::PipelineConfig cfg;
    cfg.engine.threads = threads;
    cfg.batch_reads = 7;
    std::istringstream in(fq.str());
    std::ostringstream out;
    io::PafWriter writer(out);
    if (from_disk) {
      const MappedIndex mapped(path);
      auto pipe = pipeline::MappingPipeline::open(mapped.view(), cfg);
      (void)pipe.run(in, writer);
    } else {
      pipeline::MappingPipeline pipe(ref, cfg);
      (void)pipe.run(in, writer);
    }
    return out.str();
  };

  const std::string memory1 = run(false, 1);
  ASSERT_FALSE(memory1.empty());
  EXPECT_EQ(memory1, run(true, 1));
  EXPECT_EQ(memory1, run(true, 8));
}

// ------------------------------------------------------------ rejection

struct Prepared {
  std::string path;
  std::string bytes;
};

Prepared preparedIndex(const std::string& name) {
  const auto ref = repeatRichRef(2, 71);
  MinimizerIndex index;
  index.build(ref, 15, 10, 64);
  Prepared p;
  p.path = tempPath(name);
  writeIndexFile(p.path, index, ref);
  p.bytes = slurp(p.path);
  return p;
}

void expectRejected(const std::string& path, const std::string& needle) {
  try {
    const MappedIndex mapped(path);
    FAIL() << "expected IndexIoError mentioning '" << needle << "'";
  } catch (const IndexIoError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(IndexIo, RejectsWrongMagic) {
  auto p = preparedIndex("magic.gxi");
  p.bytes[0] = 'X';
  spill(p.path, p.bytes);
  expectRejected(p.path, "not a genasmx minimizer index");
}

TEST(IndexIo, RejectsVersionBump) {
  auto p = preparedIndex("version.gxi");
  p.bytes[8] = static_cast<char>(kIndexFormatVersion + 1);  // version field
  spill(p.path, p.bytes);
  expectRejected(p.path, "unsupported format version");
}

TEST(IndexIo, RejectsForeignEndianness) {
  auto p = preparedIndex("endian.gxi");
  // Byte-swap the endianness marker, as a file written on an opposite-
  // endian host would present it.
  std::swap(p.bytes[12], p.bytes[15]);
  std::swap(p.bytes[13], p.bytes[14]);
  spill(p.path, p.bytes);
  expectRejected(p.path, "endianness");
}

TEST(IndexIo, RejectsTruncation) {
  auto p = preparedIndex("trunc.gxi");
  spill(p.path, p.bytes.substr(0, 64));  // shorter than the header
  expectRejected(p.path, "truncated");
  spill(p.path, p.bytes.substr(0, p.bytes.size() - 128));  // lost tail
  expectRejected(p.path, "does not match the file");
}

TEST(IndexIo, RejectsCorruptPayload) {
  auto p = preparedIndex("payload.gxi");
  p.bytes[p.bytes.size() / 2] ^= 0x20;  // one bit deep in a section
  spill(p.path, p.bytes);
  expectRejected(p.path, "payload checksum");
  // Opting out of payload verification accepts the file (the corruption
  // is invisible to the header) — the knob exists for lazy cold starts.
  MappedIndex::Options opt;
  opt.verify_payload = false;
  EXPECT_NO_THROW(MappedIndex(p.path, opt));
}

TEST(IndexIo, RejectsCorruptHeader) {
  auto p = preparedIndex("header.gxi");
  p.bytes[40] ^= 0x01;  // a section offset: header checksum must catch it
  spill(p.path, p.bytes);
  expectRejected(p.path, "checksum");
}

TEST(IndexIo, RejectsMissingFile) {
  EXPECT_THROW(MappedIndex(tempPath("does-not-exist.gxi")),
               std::runtime_error);
}

TEST(IndexIo, WriterRejectsForeignReference) {
  const auto ref = repeatRichRef(2, 83);
  const auto other = repeatRichRef(3, 89);
  MinimizerIndex index;
  index.build(ref, 15, 10, 64);
  EXPECT_THROW(writeIndexFile(tempPath("foreign.gxi"), index, other),
               IndexIoError);
}

// --------------------------------------------- external-backing model

TEST(Reference, FromExternalValidatesTiling) {
  const std::string backing = "ACGTACGTACGT";
  using refmodel::Contig;
  using refmodel::Reference;
  EXPECT_NO_THROW(Reference::fromExternal(
      backing, {Contig{"a", 0, 4}, Contig{"b", 4, 8}}));
  EXPECT_THROW(Reference::fromExternal(backing, {Contig{"a", 0, 4}}),
               std::invalid_argument);  // lengths don't cover the buffer
  EXPECT_THROW(Reference::fromExternal(
                   backing, {Contig{"a", 0, 4}, Contig{"b", 5, 7}}),
               std::invalid_argument);  // gap after contig a
  EXPECT_THROW(Reference::fromExternal(backing, {}),
               std::invalid_argument);
}

TEST(Reference, ExternalBackingIsImmutable) {
  const std::string backing = "ACGTACGT";
  auto ref = refmodel::Reference::fromExternal(
      backing, {refmodel::Contig{"a", 0, 8}});
  EXPECT_TRUE(ref.externallyBacked());
  EXPECT_EQ(ref.view(), backing);
  EXPECT_THROW(ref.addContig("b", "ACGT"), std::logic_error);
}

}  // namespace
}  // namespace gx::mapper
