#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "genasmx/common/sequence.hpp"
#include "genasmx/common/verify.hpp"
#include "genasmx/ksw/ksw_affine.hpp"
#include "genasmx/refdp/affine_dp.hpp"
#include "genasmx/refdp/edit_dp.hpp"
#include "genasmx/util/prng.hpp"

namespace gx::ksw {
namespace {

int cigarAffineScore(const common::Cigar& cigar,
                     const refdp::AffineParams& p) {
  int score = 0;
  for (const auto& u : cigar.units()) {
    switch (u.op) {
      case common::EditOp::Match:
        score += p.match * static_cast<int>(u.len);
        break;
      case common::EditOp::Mismatch:
        score -= p.mismatch * static_cast<int>(u.len);
        break;
      case common::EditOp::Insertion:
      case common::EditOp::Deletion:
        score -= p.gap_open + p.gap_extend * static_cast<int>(u.len);
        break;
    }
  }
  return score;
}

TEST(KswScore, KnownCases) {
  EXPECT_EQ(kswScore("ACGTACGT", "ACGTACGT"), 16);
  EXPECT_EQ(kswScore("ACGTACGT", "ACGAACGT"), 10);
  EXPECT_EQ(kswScore("", ""), 0);
  EXPECT_EQ(kswScore("ACG", ""), -(4 + 3 * 2));
  EXPECT_EQ(kswScore("", "ACG"), -(4 + 3 * 2));
}

class KswFullSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // seed, len

TEST_P(KswFullSweep, UnbandedMatchesGotohOracle) {
  const auto [seed, len] = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 2713 + 5);
  const refdp::AffineParams p;
  for (int trial = 0; trial < 6; ++trial) {
    const auto t = common::randomSequence(rng, static_cast<std::size_t>(len));
    const auto q = common::mutateSequence(rng, t, rng.below(12));
    EXPECT_EQ(kswScore(t, q), refdp::affineScore(t, q, p));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KswFullSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 10, 40, 100,
                                                              250)),
                         [](const auto& info) {
                           return std::string("s") + std::to_string(std::get<0>(info.param)) +
                                  "_len" +
                                  std::to_string(std::get<1>(info.param));
                         });

TEST(KswScore, BandedExactWhenBandCoversPath) {
  util::Xoshiro256 rng(41);
  const refdp::AffineParams p;
  for (int trial = 0; trial < 20; ++trial) {
    const auto t = common::randomSequence(rng, 100 + rng.below(100));
    const auto q = common::mutateSequence(rng, t, rng.below(10));
    KswConfig banded;
    banded.band = 24;  // mutation load <= 10 edits => path within band
    EXPECT_EQ(kswScore(t, q, banded), refdp::affineScore(t, q, p));
  }
}

TEST(KswScore, NarrowBandNeverOverestimates) {
  util::Xoshiro256 rng(42);
  const refdp::AffineParams p;
  for (int trial = 0; trial < 20; ++trial) {
    const auto t = common::randomSequence(rng, 80);
    const auto q = common::randomSequence(rng, 80);
    KswConfig banded;
    banded.band = 3;
    EXPECT_LE(kswScore(t, q, banded), refdp::affineScore(t, q, p));
  }
}

TEST(KswAlign, CigarValidAndScoreConsistent) {
  util::Xoshiro256 rng(43);
  const refdp::AffineParams p;
  for (int trial = 0; trial < 30; ++trial) {
    const auto t = common::randomSequence(rng, 10 + rng.below(150));
    const auto q = common::mutateSequence(rng, t, rng.below(20));
    const auto res = kswAlign(t, q);
    ASSERT_TRUE(res.ok);
    const auto v = common::verifyAlignment(t, q, res.cigar);
    ASSERT_TRUE(v.valid) << v.error;
    EXPECT_EQ(cigarAffineScore(res.cigar, p), res.score);
    EXPECT_EQ(res.score, refdp::affineScore(t, q, p));
  }
}

TEST(KswAlign, BandedLongReadScale) {
  util::Xoshiro256 rng(44);
  const auto t = common::randomSequence(rng, 8000);
  const auto q = common::mutateSequence(rng, t, 800);
  KswConfig cfg;
  cfg.band = 1000;
  const auto res = kswAlign(t, q, cfg);
  ASSERT_TRUE(res.ok);
  const auto v = common::verifyAlignment(t, q, res.cigar);
  ASSERT_TRUE(v.valid) << v.error;
  EXPECT_EQ(cigarAffineScore(res.cigar, refdp::AffineParams{}), res.score);
}

TEST(KswAlign, EmptyInputs) {
  EXPECT_EQ(kswAlign("", "").score, 0);
  EXPECT_EQ(kswAlign("ACGT", "").cigar.str(), "4D");
  EXPECT_EQ(kswAlign("", "ACGT").cigar.str(), "4I");
}

TEST(KswAlign, EditDistanceEquivalentParams) {
  // With {0,1,0,1} parameters, -score equals unit edit distance: ties the
  // affine machinery to the edit-distance aligners.
  util::Xoshiro256 rng(45);
  KswConfig cfg;
  cfg.params = refdp::AffineParams::editDistanceEquivalent();
  for (int trial = 0; trial < 20; ++trial) {
    const auto t = common::randomSequence(rng, 20 + rng.below(120));
    const auto q = common::mutateSequence(rng, t, rng.below(15));
    const auto res = kswAlign(t, q, cfg);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(-res.score, refdp::editDistance(t, q));
    EXPECT_TRUE(common::verifyAlignment(t, q, res.cigar).valid);
  }
}

TEST(KswAlign, AffinePrefersContiguousGaps) {
  // 3 separated 1-char gaps cost 3*(q+e)=18; one 3-char gap costs q+3e=10.
  // The aligner must produce the contiguous-gap alignment when available.
  const std::string t = "AAAATTTCCCCGGGG";
  const std::string q = "AAAACCCCGGGG";
  const auto res = kswAlign(t, q);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.cigar.count(common::EditOp::Deletion), 3u);
  // One contiguous deletion run.
  int runs = 0;
  for (const auto& u : res.cigar.units()) {
    runs += u.op == common::EditOp::Deletion;
  }
  EXPECT_EQ(runs, 1);
}

TEST(KswAligner, ReusableAcrossCalls) {
  KswAligner aligner;
  util::Xoshiro256 rng(46);
  const refdp::AffineParams p;
  for (int t_i = 0; t_i < 10; ++t_i) {
    const auto t = common::randomSequence(rng, 30 + rng.below(100));
    const auto q = common::mutateSequence(rng, t, rng.below(10));
    EXPECT_EQ(aligner.score(t, q), refdp::affineScore(t, q, p));
    const auto res = aligner.align(t, q);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.score, refdp::affineScore(t, q, p));
  }
}

}  // namespace
}  // namespace gx::ksw
