// SimdBatchSolver contract: every lane result is bit-identical to the
// scalar solver on the same problem, for every supported ISA level and
// the forced scalar-lane fallback. This is the guarantee the batched
// distance path in the engine and the two-phase mapping flow rest on,
// so it is hammered fuzz-style: window widths across the 64/128/256/512
// instantiations, ragged batch sizes around the lane count, cap
// saturation, degenerate shapes, and the full windowed-distance march.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "genasmx/bitvector/bitvector.hpp"
#include "genasmx/common/sequence.hpp"
#include "genasmx/core/genasm_improved.hpp"
#include "genasmx/core/windowed.hpp"
#include "genasmx/genasm/genasm_baseline.hpp"
#include "genasmx/simd/batch_solver.hpp"
#include "genasmx/simd/dispatch.hpp"
#include "genasmx/util/prng.hpp"

namespace gx {
namespace {

std::vector<simd::IsaLevel> supportedLevels() {
  std::vector<simd::IsaLevel> out = {simd::IsaLevel::Scalar};
  if (simd::isaSupported(simd::IsaLevel::Sse2)) {
    out.push_back(simd::IsaLevel::Sse2);
  }
  if (simd::isaSupported(simd::IsaLevel::Avx2)) {
    out.push_back(simd::IsaLevel::Avx2);
  }
  return out;
}

/// Scalar reference at the width the production aligners would pick for
/// this pattern (wordsNeeded), for both window solvers.
template <int NW>
int scalarDistanceAt(std::string_view t_rev, std::string_view q_rev,
                     const genasm::WindowSpec& spec, bool baseline) {
  if (baseline) {
    genasm::BaselineWindowSolver<NW> solver;
    return solver.solveDistance(t_rev, q_rev, spec);
  }
  core::ImprovedWindowSolver<NW> solver;
  return solver.solveDistance(t_rev, q_rev, spec);
}

int scalarDistance(const simd::WindowProblem& p, genasm::Anchor anchor,
                   bool baseline) {
  const auto t_rev = common::reversed(p.text);
  const auto q_rev = common::reversed(p.pattern);
  genasm::WindowSpec spec;
  spec.anchor = anchor;
  spec.max_edits = p.max_edits;
  const int nw =
      bitvector::wordsNeeded(static_cast<int>(p.pattern.size()));
  switch (nw) {
    case 1: return scalarDistanceAt<1>(t_rev, q_rev, spec, baseline);
    case 2: return scalarDistanceAt<2>(t_rev, q_rev, spec, baseline);
    case 3: return scalarDistanceAt<3>(t_rev, q_rev, spec, baseline);
    case 4: return scalarDistanceAt<4>(t_rev, q_rev, spec, baseline);
    case 5: return scalarDistanceAt<5>(t_rev, q_rev, spec, baseline);
    case 6: return scalarDistanceAt<6>(t_rev, q_rev, spec, baseline);
    case 7: return scalarDistanceAt<7>(t_rev, q_rev, spec, baseline);
    default: return scalarDistanceAt<8>(t_rev, q_rev, spec, baseline);
  }
}

template <int NW>
genasm::WindowResult scalarSolveAt(std::string_view t_rev,
                                   std::string_view q_rev,
                                   const genasm::WindowSpec& spec,
                                   bool baseline) {
  if (baseline) {
    genasm::BaselineWindowSolver<NW> solver;
    return solver.solve(t_rev, q_rev, spec);
  }
  core::ImprovedWindowSolver<NW> solver;
  return solver.solve(t_rev, q_rev, spec);
}

genasm::WindowResult scalarSolve(const simd::WindowProblem& p,
                                 genasm::Anchor anchor, bool baseline) {
  const auto t_rev = common::reversed(p.text);
  const auto q_rev = common::reversed(p.pattern);
  genasm::WindowSpec spec;
  spec.anchor = anchor;
  spec.max_edits = p.max_edits;
  spec.tb_op_limit = p.tb_op_limit;
  const int nw =
      bitvector::wordsNeeded(static_cast<int>(p.pattern.size()));
  switch (nw) {
    case 1: return scalarSolveAt<1>(t_rev, q_rev, spec, baseline);
    case 2: return scalarSolveAt<2>(t_rev, q_rev, spec, baseline);
    case 4: return scalarSolveAt<4>(t_rev, q_rev, spec, baseline);
    default: return scalarSolveAt<8>(t_rev, q_rev, spec, baseline);
  }
}

/// Random window problems with a mix of widths (pattern length up to
/// `max_m`), error levels, caps, and traceback limits. Backing strings
/// are owned by `store` so the views stay alive.
std::vector<simd::WindowProblem> randomProblems(
    util::Xoshiro256& rng, std::size_t count, std::size_t max_m,
    std::vector<std::string>& store) {
  std::vector<simd::WindowProblem> out;
  // Short strings live in SSO storage, which vector reallocation moves;
  // reserve up front so the views handed out stay valid.
  store.reserve(store.size() + 2 * count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t m = 1 + rng.below(max_m);
    const std::size_t n = 1 + rng.below(max_m + max_m / 2);
    store.push_back(common::randomSequence(rng, n));
    const std::string& text = store.back();
    // Half the patterns derive from the text (realistic low distances,
    // exercises convergence masking); half are unrelated (cap blowups).
    if (rng.below(2) == 0) {
      store.push_back(common::mutateSequence(
          rng, std::string_view(text).substr(0, std::min(n, m)),
          rng.below(m / 4 + 2)));
      if (store.back().empty() || store.back().size() > max_m) {
        store.back() = common::randomSequence(rng, m);
      }
    } else {
      store.push_back(common::randomSequence(rng, m));
    }
    simd::WindowProblem p;
    p.text = text;
    p.pattern = store.back();
    // Cap mix: always-solvable, saturating-small, and mid caps.
    const int mode = static_cast<int>(rng.below(4));
    p.max_edits = mode == 0 ? -1
                  : mode == 1 ? static_cast<int>(rng.below(3))
                              : static_cast<int>(rng.below(m + 4));
    p.tb_op_limit =
        rng.below(3) == 0 ? static_cast<int>(1 + rng.below(m + 8)) : -1;
    out.push_back(p);
  }
  return out;
}

TEST(SimdDispatch, ScalarAlwaysSupportedAndForceClamps) {
  EXPECT_TRUE(simd::isaSupported(simd::IsaLevel::Scalar));
  const auto active = simd::activeIsa();
  EXPECT_TRUE(simd::isaSupported(active));
  // Forcing an unsupported level clamps to a supported one.
  const auto forced = simd::forceIsa(simd::IsaLevel::Avx2);
  EXPECT_TRUE(simd::isaSupported(forced));
  EXPECT_EQ(simd::forceIsa(simd::IsaLevel::Scalar), simd::IsaLevel::Scalar);
  simd::forceIsa(active);  // restore
  EXPECT_FALSE(simd::isaName(active).empty());
  EXPECT_EQ(simd::isaLanes(simd::IsaLevel::Scalar), 1);
}

TEST(SimdBatchDistance, MatchesScalarSolveDistanceAcrossWidths) {
  // Width classes straddling every BitVec instantiation the production
  // dispatch uses: 64 / 128 / 256 / 512 plus ragged in-between sizes.
  for (const std::size_t max_m : {64UL, 128UL, 256UL, 512UL}) {
    util::Xoshiro256 rng(1000 + max_m);
    std::vector<std::string> store;
    const auto problems = randomProblems(rng, 48, max_m, store);
    for (const auto level : supportedLevels()) {
      simd::SimdBatchSolver solver(level);
      for (const auto anchor :
           {genasm::Anchor::StartOnly, genasm::Anchor::BothEnds}) {
        std::vector<int> got(problems.size(), -2);
        solver.solveDistanceBatch(anchor, problems.data(), problems.size(),
                                  got.data());
        for (std::size_t i = 0; i < problems.size(); ++i) {
          const int want = scalarDistance(problems[i], anchor, false);
          EXPECT_EQ(got[i], want)
              << simd::isaName(level) << " i=" << i << " max_m=" << max_m
              << " |t|=" << problems[i].text.size()
              << " |q|=" << problems[i].pattern.size()
              << " k=" << problems[i].max_edits;
          // The baseline solver's distance kernel agrees too.
          EXPECT_EQ(scalarDistance(problems[i], anchor, true), want);
        }
      }
    }
  }
}

TEST(SimdBatchDistance, RaggedBatchSizesAroundTheLaneCount) {
  util::Xoshiro256 rng(77);
  std::vector<std::string> store;
  const auto all = randomProblems(rng, 32, 80, store);
  for (const auto level : supportedLevels()) {
    simd::SimdBatchSolver solver(level);
    const std::size_t lanes = static_cast<std::size_t>(solver.lanes());
    for (std::size_t batch = 1; batch <= lanes + 3; ++batch) {
      std::vector<int> got(batch, -2);
      solver.solveDistanceBatch(genasm::Anchor::BothEnds, all.data(), batch,
                                got.data());
      for (std::size_t i = 0; i < batch; ++i) {
        EXPECT_EQ(got[i],
                  scalarDistance(all[i], genasm::Anchor::BothEnds, false))
            << simd::isaName(level) << " batch=" << batch << " i=" << i;
      }
    }
  }
}

TEST(SimdBatchDistance, DegenerateShapes) {
  util::Xoshiro256 rng(5);
  const std::string text = common::randomSequence(rng, 600);
  const std::string big(600, 'A');
  const std::vector<simd::WindowProblem> problems = {
      {text, "", -1, -1},                         // empty pattern -> -1
      {text, big, -1, -1},                        // pattern > 512 -> -1
      {"", "ACGT", -1, -1},                       // empty text
      {"", "ACGT", 2, -1},                        // empty text, capped out
      {std::string_view(text).substr(0, 64),
       std::string_view(text).substr(0, 64), 0, -1},  // exact match, k=0
  };
  for (const auto level : supportedLevels()) {
    simd::SimdBatchSolver solver(level);
    std::vector<int> got(problems.size(), -2);
    solver.solveDistanceBatch(genasm::Anchor::BothEnds, problems.data(),
                              problems.size(), got.data());
    EXPECT_EQ(got[0], -1);
    EXPECT_EQ(got[1], -1);
    // Empty text, pattern of 4: four insertions (or capped out at 2).
    EXPECT_EQ(got[2], 4);
    EXPECT_EQ(got[3], -1);
    EXPECT_EQ(got[4], 0);
  }
}

TEST(SimdWindowBatch, MatchesScalarSolveForBothSolvers) {
  util::Xoshiro256 rng(4242);
  std::vector<std::string> store;
  // Window-march shapes: patterns up to one window, tb limits like the
  // mid-window W-O truncation.
  const auto problems = randomProblems(rng, 64, 64, store);
  for (const auto level : supportedLevels()) {
    simd::SimdBatchSolver solver(level);
    for (const auto anchor :
         {genasm::Anchor::StartOnly, genasm::Anchor::BothEnds}) {
      std::vector<simd::WindowOutcome> got(problems.size());
      solver.solveWindowBatch(anchor, problems.data(), problems.size(),
                              got.data());
      for (std::size_t i = 0; i < problems.size(); ++i) {
        for (const bool baseline : {false, true}) {
          const auto want = scalarSolve(problems[i], anchor, baseline);
          EXPECT_EQ(got[i].ok, want.ok)
              << simd::isaName(level) << " i=" << i << " bl=" << baseline;
          if (!want.ok) continue;
          EXPECT_EQ(got[i].distance, want.distance) << i;
          EXPECT_EQ(got[i].edits, want.cigar.editDistance()) << i;
          EXPECT_EQ(got[i].text_consumed, want.cigar.targetLength()) << i;
          EXPECT_EQ(got[i].pattern_consumed, want.cigar.queryLength()) << i;
        }
      }
    }
  }
}

TEST(SimdWindowedMarch, MatchesScalarDistanceWindowedWithCaps) {
  util::Xoshiro256 rng(9090);
  for (const int window : {64, 128}) {
    core::WindowConfig cfg;
    cfg.window = window;
    cfg.overlap = window / 3;
    std::vector<std::string> store;
    store.reserve(40);
    std::vector<core::BatchedDistanceRequest> requests;
    std::vector<int> want;
    for (int i = 0; i < 20; ++i) {
      const std::size_t qlen = 300 + rng.below(1200);
      store.push_back(common::randomSequence(rng, qlen + rng.below(200)));
      const std::string& t = store.back();
      store.push_back(
          common::mutateSequence(rng, t.substr(0, qlen), rng.below(qlen / 6)));
      const std::string& q = store.back();
      // Reference march (improved solver at the production width).
      core::ImprovedOptions opts;
      const int ed = core::distanceWindowedImproved(t, q, cfg, opts, -1);
      const int mode = static_cast<int>(rng.below(4));
      const int cap = mode == 0   ? -1
                      : mode == 1 ? ed
                      : mode == 2 ? (ed > 0 ? ed - 1 : 0)
                                  : ed / 2;
      requests.push_back({t, q, cap});
      want.push_back(core::distanceWindowedImproved(t, q, cfg, opts, cap));
      // The baseline march agrees with the improved one (shared
      // windowing, identical per-window results).
      EXPECT_EQ(core::distanceWindowedBaseline(t, q, cfg, cap), want.back());
    }
    for (const auto level : supportedLevels()) {
      simd::SimdBatchSolver solver(level);
      std::vector<int> got(requests.size(), -2);
      core::distanceWindowedBatch(solver, cfg, requests.data(),
                                  requests.size(), got.data());
      EXPECT_EQ(got, want) << simd::isaName(level) << " window=" << window;
    }
  }
}

TEST(SimdWindowedMarch, EmptyAndShortRequests) {
  core::WindowConfig cfg;
  util::Xoshiro256 rng(3);
  const auto t = common::randomSequence(rng, 300);
  const std::vector<core::BatchedDistanceRequest> requests = {
      {t, "", -1},                                    // all deletions
      {t, "", 10},                                    // capped out
      {"", std::string_view(t).substr(0, 40), -1},    // all insertions
      {t, std::string_view(t).substr(0, 40), -1},     // final-window only
  };
  for (const auto level : supportedLevels()) {
    simd::SimdBatchSolver solver(level);
    std::vector<int> got(requests.size(), -2);
    core::distanceWindowedBatch(solver, cfg, requests.data(), requests.size(),
                                got.data());
    EXPECT_EQ(got[0], static_cast<int>(t.size()));
    EXPECT_EQ(got[1], -1);
    EXPECT_EQ(got[2], 40);
    core::WindowBuffers bufs;
    core::ImprovedWindowSolver<1> ref;
    EXPECT_EQ(got[3], core::distanceWindowed(ref, t,
                                             std::string_view(t).substr(0, 40),
                                             cfg, -1, bufs));
  }
}

}  // namespace
}  // namespace gx
