// SimdBatchSolver contract: every lane result is bit-identical to the
// scalar solver on the same problem, for every supported ISA level and
// the forced scalar-lane fallback. This is the guarantee the batched
// distance path in the engine and the two-phase mapping flow rest on,
// so it is hammered fuzz-style: window widths across the 64/128/256/512
// instantiations, ragged batch sizes around the lane count, cap
// saturation, degenerate shapes, and the full windowed-distance march.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "genasmx/bitvector/bitvector.hpp"
#include "genasmx/common/sequence.hpp"
#include "genasmx/core/genasm_improved.hpp"
#include "genasmx/core/windowed.hpp"
#include "genasmx/genasm/genasm_baseline.hpp"
#include "genasmx/simd/batch_solver.hpp"
#include "genasmx/simd/dispatch.hpp"
#include "genasmx/util/prng.hpp"

namespace gx {
namespace {

std::vector<simd::IsaLevel> supportedLevels() {
  std::vector<simd::IsaLevel> out = {simd::IsaLevel::Scalar};
  if (simd::isaSupported(simd::IsaLevel::Sse2)) {
    out.push_back(simd::IsaLevel::Sse2);
  }
  if (simd::isaSupported(simd::IsaLevel::Avx2)) {
    out.push_back(simd::IsaLevel::Avx2);
  }
  if (simd::isaSupported(simd::IsaLevel::Avx512)) {
    out.push_back(simd::IsaLevel::Avx512);
  }
  return out;
}

/// Scalar reference at the width the production aligners would pick for
/// this pattern (wordsNeeded), for both window solvers.
template <int NW>
int scalarDistanceAt(std::string_view t_rev, std::string_view q_rev,
                     const genasm::WindowSpec& spec, bool baseline) {
  if (baseline) {
    genasm::BaselineWindowSolver<NW> solver;
    return solver.solveDistance(t_rev, q_rev, spec);
  }
  core::ImprovedWindowSolver<NW> solver;
  return solver.solveDistance(t_rev, q_rev, spec);
}

int scalarDistance(const simd::WindowProblem& p, genasm::Anchor anchor,
                   bool baseline) {
  const auto t_rev = common::reversed(p.text);
  const auto q_rev = common::reversed(p.pattern);
  genasm::WindowSpec spec;
  spec.anchor = anchor;
  spec.max_edits = p.max_edits;
  const int nw =
      bitvector::wordsNeeded(static_cast<int>(p.pattern.size()));
  switch (nw) {
    case 1: return scalarDistanceAt<1>(t_rev, q_rev, spec, baseline);
    case 2: return scalarDistanceAt<2>(t_rev, q_rev, spec, baseline);
    case 3: return scalarDistanceAt<3>(t_rev, q_rev, spec, baseline);
    case 4: return scalarDistanceAt<4>(t_rev, q_rev, spec, baseline);
    case 5: return scalarDistanceAt<5>(t_rev, q_rev, spec, baseline);
    case 6: return scalarDistanceAt<6>(t_rev, q_rev, spec, baseline);
    case 7: return scalarDistanceAt<7>(t_rev, q_rev, spec, baseline);
    default: return scalarDistanceAt<8>(t_rev, q_rev, spec, baseline);
  }
}

template <int NW>
genasm::WindowResult scalarSolveAt(std::string_view t_rev,
                                   std::string_view q_rev,
                                   const genasm::WindowSpec& spec,
                                   bool baseline,
                                   const core::ImprovedOptions& opts = {}) {
  if (baseline) {
    genasm::BaselineWindowSolver<NW> solver;
    return solver.solve(t_rev, q_rev, spec);
  }
  core::ImprovedWindowSolver<NW> solver(opts);
  return solver.solve(t_rev, q_rev, spec);
}

genasm::WindowResult scalarSolve(const simd::WindowProblem& p,
                                 genasm::Anchor anchor, bool baseline,
                                 const core::ImprovedOptions& opts = {}) {
  const auto t_rev = common::reversed(p.text);
  const auto q_rev = common::reversed(p.pattern);
  genasm::WindowSpec spec;
  spec.anchor = anchor;
  spec.max_edits = p.max_edits;
  spec.tb_op_limit = p.tb_op_limit;
  const int nw =
      bitvector::wordsNeeded(static_cast<int>(p.pattern.size()));
  switch (nw) {
    case 1: return scalarSolveAt<1>(t_rev, q_rev, spec, baseline, opts);
    case 2: return scalarSolveAt<2>(t_rev, q_rev, spec, baseline, opts);
    case 4: return scalarSolveAt<4>(t_rev, q_rev, spec, baseline, opts);
    default: return scalarSolveAt<8>(t_rev, q_rev, spec, baseline, opts);
  }
}

/// Random window problems with a mix of widths (pattern length up to
/// `max_m`), error levels, caps, and traceback limits. Backing strings
/// are owned by `store` so the views stay alive.
std::vector<simd::WindowProblem> randomProblems(
    util::Xoshiro256& rng, std::size_t count, std::size_t max_m,
    std::vector<std::string>& store) {
  std::vector<simd::WindowProblem> out;
  // Short strings live in SSO storage, which vector reallocation moves;
  // reserve up front so the views handed out stay valid.
  store.reserve(store.size() + 2 * count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t m = 1 + rng.below(max_m);
    const std::size_t n = 1 + rng.below(max_m + max_m / 2);
    store.push_back(common::randomSequence(rng, n));
    const std::string& text = store.back();
    // Half the patterns derive from the text (realistic low distances,
    // exercises convergence masking); half are unrelated (cap blowups).
    if (rng.below(2) == 0) {
      store.push_back(common::mutateSequence(
          rng, std::string_view(text).substr(0, std::min(n, m)),
          rng.below(m / 4 + 2)));
      if (store.back().empty() || store.back().size() > max_m) {
        store.back() = common::randomSequence(rng, m);
      }
    } else {
      store.push_back(common::randomSequence(rng, m));
    }
    simd::WindowProblem p;
    p.text = text;
    p.pattern = store.back();
    // Cap mix: always-solvable, saturating-small, and mid caps.
    const int mode = static_cast<int>(rng.below(4));
    p.max_edits = mode == 0 ? -1
                  : mode == 1 ? static_cast<int>(rng.below(3))
                              : static_cast<int>(rng.below(m + 4));
    p.tb_op_limit =
        rng.below(3) == 0 ? static_cast<int>(1 + rng.below(m + 8)) : -1;
    out.push_back(p);
  }
  return out;
}

TEST(SimdDispatch, ScalarAlwaysSupportedAndForceClamps) {
  EXPECT_TRUE(simd::isaSupported(simd::IsaLevel::Scalar));
  const auto active = simd::activeIsa();
  EXPECT_TRUE(simd::isaSupported(active));
  // Forcing an unsupported level clamps to a supported one.
  const auto forced = simd::forceIsa(simd::IsaLevel::Avx2);
  EXPECT_TRUE(simd::isaSupported(forced));
  EXPECT_EQ(simd::forceIsa(simd::IsaLevel::Scalar), simd::IsaLevel::Scalar);
  simd::forceIsa(active);  // restore
  EXPECT_FALSE(simd::isaName(active).empty());
  EXPECT_EQ(simd::isaLanes(simd::IsaLevel::Scalar), 1);
}

TEST(SimdBatchDistance, MatchesScalarSolveDistanceAcrossWidths) {
  // Width classes straddling every BitVec instantiation the production
  // dispatch uses: 64 / 128 / 256 / 512 plus ragged in-between sizes.
  for (const std::size_t max_m : {64UL, 128UL, 256UL, 512UL}) {
    util::Xoshiro256 rng(1000 + max_m);
    std::vector<std::string> store;
    const auto problems = randomProblems(rng, 48, max_m, store);
    for (const auto level : supportedLevels()) {
      simd::SimdBatchSolver solver(level);
      for (const auto anchor :
           {genasm::Anchor::StartOnly, genasm::Anchor::BothEnds}) {
        std::vector<int> got(problems.size(), -2);
        solver.solveDistanceBatch(anchor, problems.data(), problems.size(),
                                  got.data());
        for (std::size_t i = 0; i < problems.size(); ++i) {
          const int want = scalarDistance(problems[i], anchor, false);
          EXPECT_EQ(got[i], want)
              << simd::isaName(level) << " i=" << i << " max_m=" << max_m
              << " |t|=" << problems[i].text.size()
              << " |q|=" << problems[i].pattern.size()
              << " k=" << problems[i].max_edits;
          // The baseline solver's distance kernel agrees too.
          EXPECT_EQ(scalarDistance(problems[i], anchor, true), want);
        }
      }
    }
  }
}

TEST(SimdBatchDistance, RaggedBatchSizesAroundTheLaneCount) {
  util::Xoshiro256 rng(77);
  std::vector<std::string> store;
  const auto all = randomProblems(rng, 32, 80, store);
  for (const auto level : supportedLevels()) {
    simd::SimdBatchSolver solver(level);
    const std::size_t lanes = static_cast<std::size_t>(solver.lanes());
    for (std::size_t batch = 1; batch <= lanes + 3; ++batch) {
      std::vector<int> got(batch, -2);
      solver.solveDistanceBatch(genasm::Anchor::BothEnds, all.data(), batch,
                                got.data());
      for (std::size_t i = 0; i < batch; ++i) {
        EXPECT_EQ(got[i],
                  scalarDistance(all[i], genasm::Anchor::BothEnds, false))
            << simd::isaName(level) << " batch=" << batch << " i=" << i;
      }
    }
  }
}

TEST(SimdBatchDistance, DegenerateShapes) {
  util::Xoshiro256 rng(5);
  const std::string text = common::randomSequence(rng, 600);
  const std::string big(600, 'A');
  const std::vector<simd::WindowProblem> problems = {
      {text, "", -1, -1},                         // empty pattern -> -1
      {text, big, -1, -1},                        // pattern > 512 -> -1
      {"", "ACGT", -1, -1},                       // empty text
      {"", "ACGT", 2, -1},                        // empty text, capped out
      {std::string_view(text).substr(0, 64),
       std::string_view(text).substr(0, 64), 0, -1},  // exact match, k=0
  };
  for (const auto level : supportedLevels()) {
    simd::SimdBatchSolver solver(level);
    std::vector<int> got(problems.size(), -2);
    solver.solveDistanceBatch(genasm::Anchor::BothEnds, problems.data(),
                              problems.size(), got.data());
    EXPECT_EQ(got[0], -1);
    EXPECT_EQ(got[1], -1);
    // Empty text, pattern of 4: four insertions (or capped out at 2).
    EXPECT_EQ(got[2], 4);
    EXPECT_EQ(got[3], -1);
    EXPECT_EQ(got[4], 0);
  }
}

TEST(SimdWindowBatch, MatchesScalarSolveForBothSolvers) {
  util::Xoshiro256 rng(4242);
  std::vector<std::string> store;
  // Window-march shapes: patterns up to one window, tb limits like the
  // mid-window W-O truncation.
  const auto problems = randomProblems(rng, 64, 64, store);
  for (const auto level : supportedLevels()) {
    simd::SimdBatchSolver solver(level);
    for (const auto anchor :
         {genasm::Anchor::StartOnly, genasm::Anchor::BothEnds}) {
      std::vector<simd::WindowOutcome> got(problems.size());
      solver.solveWindowBatch(anchor, problems.data(), problems.size(),
                              got.data());
      for (std::size_t i = 0; i < problems.size(); ++i) {
        for (const bool baseline : {false, true}) {
          const auto want = scalarSolve(problems[i], anchor, baseline);
          EXPECT_EQ(got[i].ok, want.ok)
              << simd::isaName(level) << " i=" << i << " bl=" << baseline;
          if (!want.ok) continue;
          EXPECT_EQ(got[i].distance, want.distance) << i;
          EXPECT_EQ(got[i].edits, want.cigar.editDistance()) << i;
          EXPECT_EQ(got[i].text_consumed, want.cigar.targetLength()) << i;
          EXPECT_EQ(got[i].pattern_consumed, want.cigar.queryLength()) << i;
        }
      }
    }
  }
}

TEST(SimdWindowedMarch, MatchesScalarDistanceWindowedWithCaps) {
  util::Xoshiro256 rng(9090);
  for (const int window : {64, 128}) {
    core::WindowConfig cfg;
    cfg.window = window;
    cfg.overlap = window / 3;
    std::vector<std::string> store;
    store.reserve(40);
    std::vector<core::BatchedDistanceRequest> requests;
    std::vector<int> want;
    for (int i = 0; i < 20; ++i) {
      const std::size_t qlen = 300 + rng.below(1200);
      store.push_back(common::randomSequence(rng, qlen + rng.below(200)));
      const std::string& t = store.back();
      store.push_back(
          common::mutateSequence(rng, t.substr(0, qlen), rng.below(qlen / 6)));
      const std::string& q = store.back();
      // Reference march (improved solver at the production width).
      core::ImprovedOptions opts;
      const int ed = core::distanceWindowedImproved(t, q, cfg, opts, -1);
      const int mode = static_cast<int>(rng.below(4));
      const int cap = mode == 0   ? -1
                      : mode == 1 ? ed
                      : mode == 2 ? (ed > 0 ? ed - 1 : 0)
                                  : ed / 2;
      requests.push_back({t, q, cap});
      want.push_back(core::distanceWindowedImproved(t, q, cfg, opts, cap));
      // The baseline march agrees with the improved one (shared
      // windowing, identical per-window results).
      EXPECT_EQ(core::distanceWindowedBaseline(t, q, cfg, cap), want.back());
    }
    for (const auto level : supportedLevels()) {
      simd::SimdBatchSolver solver(level);
      std::vector<int> got(requests.size(), -2);
      core::distanceWindowedBatch(solver, cfg, requests.data(),
                                  requests.size(), got.data());
      EXPECT_EQ(got, want) << simd::isaName(level) << " window=" << window;
    }
  }
}

// --------------------------------------------------------- batched align

/// alignBatch's contract is scalar solve() equality, cigar included.
void expectSameWindowResult(const genasm::WindowResult& got,
                            const genasm::WindowResult& want,
                            const std::string& ctx) {
  EXPECT_EQ(got.ok, want.ok) << ctx;
  if (!want.ok) return;
  EXPECT_EQ(got.distance, want.distance) << ctx;
  EXPECT_EQ(got.traceback_complete, want.traceback_complete) << ctx;
  EXPECT_EQ(got.cigar, want.cigar)
      << ctx << " got=" << got.cigar.str() << " want=" << want.cigar.str();
}

TEST(SimdBatchAlign, MatchesScalarSolveAcrossWidths) {
  // Width classes straddling every BitVec instantiation, both anchors,
  // every supported ISA: the batched alignment the engine's alignBatch
  // chunks ride on must reproduce the scalar solve cigar for cigar —
  // including tb_op_limit truncation and cap failures.
  for (const std::size_t max_m : {64UL, 128UL, 256UL, 512UL}) {
    util::Xoshiro256 rng(7000 + max_m);
    std::vector<std::string> store;
    const auto problems = randomProblems(rng, 40, max_m, store);
    for (const auto level : supportedLevels()) {
      simd::SimdBatchSolver solver(level);
      for (const auto anchor :
           {genasm::Anchor::StartOnly, genasm::Anchor::BothEnds}) {
        std::vector<genasm::WindowResult> got(problems.size());
        solver.alignBatch(anchor, problems.data(), problems.size(),
                          got.data());
        for (std::size_t i = 0; i < problems.size(); ++i) {
          for (const bool baseline : {false, true}) {
            const auto want = scalarSolve(problems[i], anchor, baseline);
            expectSameWindowResult(
                got[i], want,
                std::string(simd::isaName(level)) + " i=" +
                    std::to_string(i) + " max_m=" + std::to_string(max_m) +
                    " bl=" + std::to_string(baseline));
          }
        }
      }
    }
  }
}

TEST(SimdBatchAlign, EveryImprovedOptionsMaskAgrees) {
  // The lane solves ignore ImprovedOptions (they change the scalar
  // solver's storage/accounting, never its results); pin that against
  // all eight masks.
  util::Xoshiro256 rng(31337);
  std::vector<std::string> store;
  const auto problems = randomProblems(rng, 24, 96, store);
  simd::SimdBatchSolver solver;  // active ISA
  for (const auto anchor :
       {genasm::Anchor::StartOnly, genasm::Anchor::BothEnds}) {
    std::vector<genasm::WindowResult> got(problems.size());
    solver.alignBatch(anchor, problems.data(), problems.size(), got.data());
    for (int mask = 0; mask < 8; ++mask) {
      core::ImprovedOptions opts;
      opts.compress_entries = (mask & 1) != 0;
      opts.early_termination = (mask & 2) != 0;
      opts.traceback_pruning = (mask & 4) != 0;
      for (std::size_t i = 0; i < problems.size(); ++i) {
        expectSameWindowResult(
            got[i], scalarSolve(problems[i], anchor, false, opts),
            "mask=" + std::to_string(mask) + " i=" + std::to_string(i));
      }
    }
  }
}

TEST(SimdBatchAlign, RaggedBatchesAndShapeSortOffAreIdentical) {
  // Batch sizes around the lane count (partial final groups), with shape
  // sorting on and off: scatter-back must restore input order and the
  // results must be bit-identical either way.
  util::Xoshiro256 rng(555);
  std::vector<std::string> store;
  const auto all = randomProblems(rng, 40, 200, store);
  for (const auto level : supportedLevels()) {
    simd::SimdBatchSolver sorted(level);
    simd::SimdBatchSolver unsorted(level);
    unsorted.setShapeSort(false);
    EXPECT_TRUE(sorted.shapeSort());
    EXPECT_FALSE(unsorted.shapeSort());
    const std::size_t lanes = static_cast<std::size_t>(sorted.lanes());
    for (const std::size_t batch :
         {std::size_t{1}, lanes, lanes + 3, all.size()}) {
      std::vector<genasm::WindowResult> a(batch), b(batch);
      sorted.alignBatch(genasm::Anchor::StartOnly, all.data(), batch,
                        a.data());
      unsorted.alignBatch(genasm::Anchor::StartOnly, all.data(), batch,
                          b.data());
      for (std::size_t i = 0; i < batch; ++i) {
        const std::string ctx = std::string(simd::isaName(level)) +
                                " batch=" + std::to_string(batch) +
                                " i=" + std::to_string(i);
        expectSameWindowResult(a[i], b[i], ctx + " (sort A/B)");
        expectSameWindowResult(
            a[i], scalarSolve(all[i], genasm::Anchor::StartOnly, false), ctx);
      }
    }
  }
}

TEST(SimdBatchAlign, OccupancyStatsTrackPackingAndShapeSortReducesPadding) {
  // Alternating tiny/huge shapes: unsorted groups pad every tiny lane to
  // the huge geometry; shape sorting separates them into homogeneous
  // groups. The occupancy counters are what BENCH_pipeline.json reports.
  util::Xoshiro256 rng(808);
  std::vector<std::string> store;
  store.reserve(64);
  std::vector<simd::WindowProblem> problems;
  for (int i = 0; i < 32; ++i) {
    const bool big = (i % 2) == 0;
    store.push_back(common::randomSequence(rng, big ? 700 : 12));
    const std::string& text = store.back();
    store.push_back(common::randomSequence(rng, big ? 480 : 8));
    problems.push_back({text, store.back(), -1, -1});
  }
  simd::SimdBatchSolver sorted;
  simd::SimdBatchSolver unsorted;
  unsorted.setShapeSort(false);
  std::vector<genasm::WindowResult> outs(problems.size());
  sorted.alignBatch(genasm::Anchor::BothEnds, problems.data(),
                    problems.size(), outs.data());
  unsorted.alignBatch(genasm::Anchor::BothEnds, problems.data(),
                      problems.size(), outs.data());
  for (const auto* solver : {&sorted, &unsorted}) {
    const simd::BatchStats& s = solver->stats();
    EXPECT_GT(s.groups, 0u);
    EXPECT_EQ(s.lanes_filled, problems.size());
    EXPECT_GE(s.lane_slots, s.lanes_filled);
    EXPECT_GE(s.packed_words, s.useful_words);
    EXPECT_GT(s.useful_words, 0u);
  }
  // Same useful work either way; strictly less padded work when sorting
  // actually has lanes to group (more than one lane per group).
  EXPECT_EQ(sorted.stats().useful_words, unsorted.stats().useful_words);
  if (sorted.lanes() > 1) {
    EXPECT_LT(sorted.stats().packed_words, unsorted.stats().packed_words);
  }
  sorted.resetStats();
  EXPECT_EQ(sorted.stats().groups, 0u);
  EXPECT_EQ(sorted.stats().packed_words, 0u);
}

TEST(SimdWindowedMarch, AlignBatchedMatchesScalarAlignWindowed) {
  // The batched windowed-alignment march vs the scalar driver, full
  // AlignmentResult equality (ok, distance, score, cigar) for both
  // window solvers, plus degenerate requests.
  util::Xoshiro256 rng(2024);
  for (const int window : {64, 128}) {
    core::WindowConfig cfg;
    cfg.window = window;
    cfg.overlap = window / 3;
    std::vector<std::string> store;
    store.reserve(40);
    std::vector<core::BatchedAlignRequest> requests;
    for (int i = 0; i < 14; ++i) {
      const std::size_t qlen = 200 + rng.below(1400);
      store.push_back(common::randomSequence(rng, qlen + rng.below(300)));
      const std::string& t = store.back();
      store.push_back(
          common::mutateSequence(rng, t.substr(0, qlen), rng.below(qlen / 5)));
      requests.push_back({t, store.back()});
    }
    const std::string long_t = common::randomSequence(rng, 500);
    requests.push_back({long_t, ""});                            // deletions
    requests.push_back({"", std::string_view(long_t).substr(0, 50)});
    requests.push_back({long_t, std::string_view(long_t).substr(0, 40)});
    for (const auto level : supportedLevels()) {
      simd::SimdBatchSolver solver(level);
      std::vector<common::AlignmentResult> got(requests.size());
      core::alignWindowedBatch(solver, cfg, requests.data(), requests.size(),
                               got.data());
      for (std::size_t i = 0; i < requests.size(); ++i) {
        const auto want = core::alignWindowedImproved(
            requests[i].target, requests[i].query, cfg);
        const std::string ctx = std::string(simd::isaName(level)) +
                                " window=" + std::to_string(window) +
                                " i=" + std::to_string(i);
        EXPECT_EQ(got[i].ok, want.ok) << ctx;
        EXPECT_EQ(got[i].edit_distance, want.edit_distance) << ctx;
        EXPECT_EQ(got[i].score, want.score) << ctx;
        EXPECT_EQ(got[i].cigar, want.cigar) << ctx;
        // The baseline driver commits the identical alignment.
        const auto base = core::alignWindowedBaseline(
            requests[i].target, requests[i].query, cfg);
        EXPECT_EQ(got[i].cigar, base.cigar) << ctx;
      }
    }
  }
}

TEST(SimdWindowedMarch, SteadyStateBatchedMarchesAllocateNothing) {
  // The batched marches (alignment and distance) must be allocation-free
  // once their arenas are warm: re-running the same request set grows
  // neither the lane solver's arenas nor the march scratch.
  util::Xoshiro256 rng(606);
  std::vector<std::string> store;
  store.reserve(24);
  std::vector<core::BatchedAlignRequest> areqs;
  std::vector<core::BatchedDistanceRequest> dreqs;
  for (int i = 0; i < 12; ++i) {
    const std::size_t qlen = 600 + rng.below(900);
    store.push_back(common::randomSequence(rng, qlen + 100));
    const std::string& t = store.back();
    store.push_back(
        common::mutateSequence(rng, t.substr(0, qlen), rng.below(60)));
    areqs.push_back({t, store.back()});
    dreqs.push_back({t, store.back(), -1});
  }
  core::WindowConfig cfg;
  simd::SimdBatchSolver solver;
  core::WindowedBatchScratch scratch;
  std::vector<common::AlignmentResult> ares(areqs.size());
  std::vector<int> dres(dreqs.size());
  // Cold pass: arenas grow to the request set's peak geometry.
  core::alignWindowedBatch(solver, cfg, areqs.data(), areqs.size(),
                           ares.data(), scratch);
  core::distanceWindowedBatch(solver, cfg, dreqs.data(), dreqs.size(),
                              dres.data(), scratch);
  const std::uint64_t solver_cold = solver.scratchAllocs();
  const std::uint64_t scratch_cold = scratch.allocs();
  EXPECT_GT(solver_cold, 0u);
  EXPECT_GT(scratch_cold, 0u);
  // Warm passes: identical request set, identical sweep geometry — the
  // steady-state contract the bench's
  // steady_scratch_allocs_per_window == 0 figure reports.
  for (int rep = 0; rep < 3; ++rep) {
    core::alignWindowedBatch(solver, cfg, areqs.data(), areqs.size(),
                             ares.data(), scratch);
    core::distanceWindowedBatch(solver, cfg, dreqs.data(), dreqs.size(),
                                dres.data(), scratch);
  }
  EXPECT_EQ(solver.scratchAllocs(), solver_cold);
  EXPECT_EQ(scratch.allocs(), scratch_cold);
}

// The GenASM traceback is ONE implementation (genasm::walkTraceback):
// the baseline solver, the improved solver under every options mask, and
// the SIMD lane solver are probe+emit adapters over the same walk. This
// regression pins them op-for-op — including truncation at tb_op_limit
// and BothEnds bulk-deletion tails — so any future fork of the walk
// logic in one backend fails here.
TEST(TracebackUnification, AllBackendsCommitIdenticalOperationSequences) {
  util::Xoshiro256 rng(90210);
  std::vector<std::string> store;
  auto problems = randomProblems(rng, 32, 120, store);
  // Force tight traceback budgets on half the set so Truncated walks are
  // exercised, not just Complete ones.
  for (std::size_t i = 0; i < problems.size(); i += 2) {
    problems[i].tb_op_limit =
        static_cast<int>(1 + rng.below(problems[i].pattern.size() + 4));
  }
  simd::SimdBatchSolver solver;
  for (const auto anchor :
       {genasm::Anchor::StartOnly, genasm::Anchor::BothEnds}) {
    std::vector<genasm::WindowResult> lane(problems.size());
    solver.alignBatch(anchor, problems.data(), problems.size(), lane.data());
    for (std::size_t i = 0; i < problems.size(); ++i) {
      const auto base = scalarSolve(problems[i], anchor, true);
      const std::string ctx = "i=" + std::to_string(i) +
                              " tb=" + std::to_string(problems[i].tb_op_limit);
      expectSameWindowResult(lane[i], base, ctx + " (lane vs baseline)");
      for (int mask = 0; mask < 8; ++mask) {
        core::ImprovedOptions opts;
        opts.compress_entries = (mask & 1) != 0;
        opts.early_termination = (mask & 2) != 0;
        opts.traceback_pruning = (mask & 4) != 0;
        expectSameWindowResult(
            scalarSolve(problems[i], anchor, false, opts), base,
            ctx + " (improved mask " + std::to_string(mask) + ")");
      }
    }
  }
}

TEST(SimdWindowedMarch, EmptyAndShortRequests) {
  core::WindowConfig cfg;
  util::Xoshiro256 rng(3);
  const auto t = common::randomSequence(rng, 300);
  const std::vector<core::BatchedDistanceRequest> requests = {
      {t, "", -1},                                    // all deletions
      {t, "", 10},                                    // capped out
      {"", std::string_view(t).substr(0, 40), -1},    // all insertions
      {t, std::string_view(t).substr(0, 40), -1},     // final-window only
  };
  for (const auto level : supportedLevels()) {
    simd::SimdBatchSolver solver(level);
    std::vector<int> got(requests.size(), -2);
    core::distanceWindowedBatch(solver, cfg, requests.data(), requests.size(),
                                got.data());
    EXPECT_EQ(got[0], static_cast<int>(t.size()));
    EXPECT_EQ(got[1], -1);
    EXPECT_EQ(got[2], 40);
    core::WindowBuffers bufs;
    core::ImprovedWindowSolver<1> ref;
    EXPECT_EQ(got[3], core::distanceWindowed(ref, t,
                                             std::string_view(t).substr(0, 40),
                                             cfg, -1, bufs));
  }
}

}  // namespace
}  // namespace gx
