// Pipeline layer: end-to-end simulated-genome round-trip, deterministic
// PAF output across thread counts, reverse-strand correctness, and PAF
// well-formedness of every emitted record.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "genasmx/io/fastx.hpp"
#include "genasmx/io/paf.hpp"
#include "genasmx/pipeline/pipeline.hpp"
#include "genasmx/simd/dispatch.hpp"
#include "genasmx/readsim/genome.hpp"
#include "genasmx/readsim/read_simulator.hpp"
#include "genasmx/refmodel/reference.hpp"

namespace gx::pipeline {
namespace {

std::string testGenome(std::size_t len = 250'000, std::uint64_t seed = 11) {
  readsim::GenomeConfig cfg;
  cfg.length = len;
  cfg.seed = seed;
  cfg.repeat_fraction = 0.05;
  return readsim::generateGenome(cfg);
}

std::vector<io::FastxRecord> toFastx(
    const std::vector<readsim::SimulatedRead>& reads) {
  std::vector<io::FastxRecord> out;
  out.reserve(reads.size());
  for (const auto& r : reads) {
    io::FastxRecord rec;
    rec.name = r.name;
    rec.seq = r.seq;
    rec.qual.assign(r.seq.size(), 'I');
    out.push_back(std::move(rec));
  }
  return out;
}

/// First (= primary) record of each read, keyed by query name.
std::map<std::string, io::PafRecord> primaries(
    const std::vector<io::PafRecord>& records) {
  std::map<std::string, io::PafRecord> out;
  for (const auto& rec : records) {
    out.emplace(rec.query_name, rec);  // emplace keeps the first
  }
  return out;
}

TEST(MappingPipeline, RoundTripRecoversTrueOrigins) {
  const auto genome = testGenome();
  auto rcfg = readsim::ReadSimConfig::pacbioClr(60, 2'500);
  rcfg.seed = 3;
  const auto reads = readsim::simulateReads(genome, rcfg);
  MappingPipeline pipe(refmodel::Reference("ref", std::string(genome)),
                       PipelineConfig{});
  const auto records = pipe.mapBatch(toFastx(reads));
  const auto primary = primaries(records);

  int recovered = 0;
  for (const auto& r : reads) {
    const auto it = primary.find(r.name);
    if (it == primary.end()) continue;
    const auto& rec = it->second;
    const bool overlaps = rec.target_begin < r.origin_pos + r.origin_len &&
                          r.origin_pos < rec.target_end;
    if (overlaps && rec.reverse == r.reverse_strand) ++recovered;
  }
  // >= 95% of simulated reads map back to their true origin.
  EXPECT_GE(recovered * 100, static_cast<int>(reads.size()) * 95)
      << recovered << " of " << reads.size();
  EXPECT_EQ(pipe.stats().reads, reads.size());
  EXPECT_EQ(pipe.stats().mapped_reads + pipe.stats().unmapped_reads,
            reads.size());
}

TEST(MappingPipeline, PafIsByteIdenticalAcrossThreadCounts) {
  const auto genome = testGenome(180'000, 21);
  auto rcfg = readsim::ReadSimConfig::pacbioClr(30, 1'800);
  rcfg.seed = 9;
  const auto fastx = toFastx(readsim::simulateReads(genome, rcfg));
  std::ostringstream fq;
  io::writeFastx(fq, fastx);

  auto run_with_threads = [&](std::size_t threads) {
    PipelineConfig cfg;
    cfg.engine.threads = threads;
    cfg.batch_reads = 7;  // several batches, boundaries thread-independent
    MappingPipeline pipe(refmodel::Reference("ref", std::string(genome)), cfg);
    std::istringstream in(fq.str());
    std::ostringstream out;
    io::PafWriter writer(out);
    const auto stats = pipe.run(in, writer);
    EXPECT_EQ(stats.reads, fastx.size());
    return out.str();
  };
  const std::string paf1 = run_with_threads(1);
  EXPECT_FALSE(paf1.empty());
  EXPECT_EQ(paf1, run_with_threads(4));
  EXPECT_EQ(paf1, run_with_threads(8));
}

TEST(MappingPipeline, ReverseStrandReadsMapBackCorrectly) {
  const auto genome = testGenome(200'000, 31);
  auto rcfg = readsim::ReadSimConfig::pacbioClr(30, 2'000);
  rcfg.seed = 17;  // both_strands defaults to true
  const auto reads = readsim::simulateReads(genome, rcfg);
  MappingPipeline pipe(refmodel::Reference("ref", std::string(genome)),
                       PipelineConfig{});
  const auto primary = primaries(pipe.mapBatch(toFastx(reads)));

  int reverse_reads = 0, reverse_recovered = 0;
  for (const auto& r : reads) {
    if (!r.reverse_strand) continue;
    ++reverse_reads;
    const auto it = primary.find(r.name);
    if (it == primary.end()) continue;
    const auto& rec = it->second;
    const bool overlaps = rec.target_begin < r.origin_pos + r.origin_len &&
                          r.origin_pos < rec.target_end;
    if (rec.reverse && overlaps) ++reverse_recovered;
  }
  ASSERT_GT(reverse_reads, 5);  // the simulation must exercise '-' reads
  EXPECT_GE(reverse_recovered * 100, reverse_reads * 95)
      << reverse_recovered << " of " << reverse_reads;
}

TEST(MappingPipeline, EveryRecordIsWellFormed) {
  const auto genome = testGenome(150'000, 41);
  auto rcfg = readsim::ReadSimConfig::pacbioClr(25, 1'500);
  rcfg.seed = 23;
  MappingPipeline pipe(refmodel::Reference("ref", std::string(genome)),
                       PipelineConfig{});
  const auto records =
      pipe.mapBatch(toFastx(readsim::simulateReads(genome, rcfg)));
  ASSERT_FALSE(records.empty());
  for (const auto& rec : records) {
    EXPECT_LE(rec.query_begin, rec.query_end) << rec.query_name;
    EXPECT_LE(rec.query_end, rec.query_len) << rec.query_name;
    EXPECT_LE(rec.target_begin, rec.target_end) << rec.query_name;
    EXPECT_LE(rec.target_end, rec.target_len) << rec.query_name;
    EXPECT_LE(rec.matches, rec.alignment_len) << rec.query_name;
    EXPECT_GE(rec.mapq, 0) << rec.query_name;
    EXPECT_LE(rec.mapq, 60) << rec.query_name;
    if (!rec.cigar.empty()) {
      // Coordinates are exactly what the cg:Z: CIGAR consumes.
      EXPECT_EQ(rec.cigar.queryLength(), rec.query_end - rec.query_begin)
          << rec.query_name;
      EXPECT_EQ(rec.cigar.targetLength(), rec.target_end - rec.target_begin)
          << rec.query_name;
    }
    const auto line = toPafLine(rec);  // must not throw
    const auto tabs = std::count(line.begin(), line.end(), '\t');
    EXPECT_GE(tabs, 11) << line;  // 12 mandatory fields
  }
}

TEST(MappingPipeline, PrimaryOnlyEmitsAtMostOneRecordPerRead) {
  const auto genome = testGenome(150'000, 51);
  auto rcfg = readsim::ReadSimConfig::pacbioClr(20, 1'500);
  rcfg.seed = 29;
  const auto fastx = toFastx(readsim::simulateReads(genome, rcfg));
  PipelineConfig cfg;
  cfg.emit_secondary = false;
  MappingPipeline pipe(refmodel::Reference("ref", std::string(genome)), cfg);
  const auto records = pipe.mapBatch(fastx);
  std::map<std::string, int> per_read;
  for (const auto& rec : records) ++per_read[rec.query_name];
  for (const auto& [name, count] : per_read) {
    EXPECT_EQ(count, 1) << name;
  }
  EXPECT_EQ(records.size(), pipe.stats().mapped_reads);
}

// The two-phase (distance-score then single traceback) flow must emit
// byte-identical PAF to the single-phase full-alignment flow — the
// acceptance bar for the distance-first restructuring — at 1 and 8
// threads, over a repeat-rich genome so reads carry competing candidates.
TEST(MappingPipeline, TwoPhasePafIsByteIdenticalToSinglePhase) {
  readsim::GenomeConfig gcfg;
  gcfg.length = 200'000;
  gcfg.seed = 67;
  gcfg.repeat_fraction = 0.30;  // force multi-candidate reads
  gcfg.repeat_unit = 1'500;
  gcfg.repeat_divergence = 0.02;
  const auto genome = readsim::generateGenome(gcfg);
  auto rcfg = readsim::ReadSimConfig::pacbioClr(40, 2'000);
  rcfg.seed = 71;
  const auto fastx = toFastx(readsim::simulateReads(genome, rcfg));
  std::ostringstream fq;
  io::writeFastx(fq, fastx);

  auto run = [&](bool two_phase, std::size_t threads, bool batched) {
    PipelineConfig cfg;
    cfg.emit_secondary = false;
    cfg.two_phase = two_phase;
    cfg.batched_distance = batched;
    cfg.engine.threads = threads;
    cfg.batch_reads = 11;
    MappingPipeline pipe(refmodel::Reference("ref", std::string(genome)), cfg);
    std::istringstream in(fq.str());
    std::ostringstream out;
    io::PafWriter writer(out);
    const auto stats = pipe.run(in, writer);
    EXPECT_EQ(stats.reads, fastx.size());
    return out.str();
  };

  const std::string single1 = run(false, 1, true);
  ASSERT_FALSE(single1.empty());
  EXPECT_EQ(single1, run(true, 1, true));
  EXPECT_EQ(single1, run(true, 8, true));
  EXPECT_EQ(single1, run(false, 8, true));
  // The runs above used the default SIMD-batched phase 1 (frozen
  // per-read caps); the sequential dynamically-capped scalar scoring
  // must emit the identical records at 1 and 8 threads — the batched
  // flow's loosened caps are provably output-preserving.
  EXPECT_EQ(single1, run(true, 1, false));
  EXPECT_EQ(single1, run(true, 8, false));
}

// The emitted PAF must not depend on which SIMD ISA the lane kernels run
// at: every supported level — scalar lanes, SSE2, AVX2, AVX-512 where the
// host has it — emits byte-identical records for the full/secondary,
// single-phase primary-only, and two-phase flows.
TEST(MappingPipeline, PafIsByteIdenticalAcrossIsaLevels) {
  const auto genome = testGenome(120'000, 77);
  auto rcfg = readsim::ReadSimConfig::pacbioClr(20, 1'600);
  rcfg.seed = 83;
  const auto fastx = toFastx(readsim::simulateReads(genome, rcfg));
  std::ostringstream fq;
  io::writeFastx(fq, fastx);

  auto run = [&](bool two_phase, bool emit_secondary) {
    PipelineConfig cfg;
    cfg.two_phase = two_phase;
    cfg.emit_secondary = emit_secondary;
    cfg.engine.threads = 2;
    cfg.batch_reads = 9;
    MappingPipeline pipe(refmodel::Reference("ref", std::string(genome)), cfg);
    std::istringstream in(fq.str());
    std::ostringstream out;
    io::PafWriter writer(out);
    (void)pipe.run(in, writer);
    return out.str();
  };

  const auto active = simd::activeIsa();
  // Reference PAF per flow at whatever level the host dispatched.
  const std::string full = run(false, true);
  const std::string single = run(false, false);
  const std::string two = run(true, false);
  ASSERT_FALSE(full.empty());
  for (const auto level :
       {simd::IsaLevel::Scalar, simd::IsaLevel::Sse2, simd::IsaLevel::Avx2,
        simd::IsaLevel::Avx512}) {
    if (!simd::isaSupported(level)) continue;
    simd::forceIsa(level);
    EXPECT_EQ(full, run(false, true)) << simd::isaName(level);
    EXPECT_EQ(single, run(false, false)) << simd::isaName(level);
    EXPECT_EQ(two, run(true, false)) << simd::isaName(level);
  }
  simd::forceIsa(active);
}

// ------------------------------------------------------- multi-contig

refmodel::Reference multiContigRef(std::uint64_t seed = 81) {
  refmodel::Reference ref;
  readsim::GenomeConfig cfg;
  cfg.repeat_fraction = 0.05;
  const std::size_t lens[] = {50'000, 120'000, 80'000};
  for (std::size_t c = 0; c < 3; ++c) {
    cfg.length = lens[c];
    cfg.seed = seed + c;
    ref.addContig("chr" + std::to_string(c + 1),
                  readsim::generateGenome(cfg));
  }
  return ref;
}

TEST(MappingPipeline, MultiContigRoundTripRecoversOriginContigs) {
  const auto ref = multiContigRef();
  auto rcfg = readsim::ReadSimConfig::pacbioClr(60, 2'000);
  rcfg.seed = 13;
  const auto reads = readsim::simulateReads(ref, rcfg);
  MappingPipeline pipe(ref, PipelineConfig{});
  const auto records = pipe.mapBatch(toFastx(reads));
  const auto primary = primaries(records);

  int recovered = 0;
  for (const auto& r : reads) {
    const auto it = primary.find(r.name);
    if (it == primary.end()) continue;
    const auto& rec = it->second;
    // Correct contig by name AND overlapping contig-local coordinates.
    if (rec.target_name != ref.name(r.origin_contig)) continue;
    const bool overlaps = rec.target_begin < r.origin_pos + r.origin_len &&
                          r.origin_pos < rec.target_end;
    if (overlaps && rec.reverse == r.reverse_strand) ++recovered;
  }
  // >= 95% of simulated reads map back to their origin contig+span,
  // matching the single-contig round-trip bar.
  EXPECT_GE(recovered * 100, static_cast<int>(reads.size()) * 95)
      << recovered << " of " << reads.size();
}

// Regression for the concatenation bug: target_len must be the contig's
// own length (and coordinates inside it), never the summed reference
// size the old flat model reported for every record.
TEST(MappingPipeline, TargetLenIsPerContigNotConcatenated) {
  const auto ref = multiContigRef(91);
  auto rcfg = readsim::ReadSimConfig::pacbioClr(40, 1'800);
  rcfg.seed = 7;
  MappingPipeline pipe(ref, PipelineConfig{});
  const auto records = pipe.mapBatch(toFastx(readsim::simulateReads(ref, rcfg)));
  ASSERT_FALSE(records.empty());
  std::map<std::string, std::size_t> contig_len;
  for (const auto& c : ref.contigs()) contig_len[c.name] = c.length;
  std::map<std::string, int> per_contig;
  for (const auto& rec : records) {
    ASSERT_TRUE(contig_len.count(rec.target_name))
        << "unknown target " << rec.target_name;
    EXPECT_EQ(rec.target_len, contig_len[rec.target_name]) << rec.query_name;
    EXPECT_LT(rec.target_len, ref.size());  // never the concatenation
    EXPECT_LE(rec.target_end, rec.target_len) << rec.query_name;
    ++per_contig[rec.target_name];
  }
  EXPECT_GE(per_contig.size(), 2u);  // records actually span contigs
}

TEST(MappingPipeline, BoundaryReadsStayInBoundsOnTheirContig) {
  // Error-free reads flush against both ends of every contig: each maps
  // primary to its own contig with coordinates inside that contig.
  const auto ref = multiContigRef(101);
  MappingPipeline pipe(ref, PipelineConfig{});
  std::vector<io::FastxRecord> reads;
  const std::size_t rl = 1'500;
  for (std::uint32_t c = 0; c < ref.contigCount(); ++c) {
    const auto text = ref.contigView(c);
    io::FastxRecord head, tail;
    head.name = "head_" + ref.name(c);
    head.seq = std::string(text.substr(0, rl));
    tail.name = "tail_" + ref.name(c);
    tail.seq = std::string(text.substr(text.size() - rl));
    reads.push_back(std::move(head));
    reads.push_back(std::move(tail));
  }
  const auto primary = primaries(pipe.mapBatch(reads));
  ASSERT_EQ(primary.size(), reads.size());
  for (const auto& read : reads) {
    const auto& rec = primary.at(read.name);
    const std::string contig = read.name.substr(5);  // strip head_/tail_
    EXPECT_EQ(rec.target_name, contig) << read.name;
    EXPECT_LE(rec.target_end, rec.target_len) << read.name;
    if (read.name.rfind("head_", 0) == 0) {
      EXPECT_EQ(rec.target_begin, 0u) << read.name;
    } else {
      EXPECT_EQ(rec.target_end, rec.target_len) << read.name;
    }
  }
}

TEST(MappingPipeline, MultiContigPafByteIdenticalAcrossThreadsAndFlows) {
  const auto ref = multiContigRef(111);
  auto rcfg = readsim::ReadSimConfig::pacbioClr(30, 1'500);
  rcfg.seed = 19;
  const auto fastx = toFastx(readsim::simulateReads(ref, rcfg));
  std::ostringstream fq;
  io::writeFastx(fq, fastx);

  auto run = [&](std::size_t threads, bool emit_secondary, bool two_phase) {
    PipelineConfig cfg;
    cfg.engine.threads = threads;
    cfg.batch_reads = 7;
    cfg.emit_secondary = emit_secondary;
    cfg.two_phase = two_phase;
    MappingPipeline pipe(ref, cfg);
    std::istringstream in(fq.str());
    std::ostringstream out;
    io::PafWriter writer(out);
    (void)pipe.run(in, writer);
    return out.str();
  };

  const std::string full1 = run(1, true, false);
  ASSERT_FALSE(full1.empty());
  EXPECT_EQ(full1, run(8, true, false));
  const std::string single1 = run(1, false, false);
  EXPECT_EQ(single1, run(1, false, true));
  EXPECT_EQ(single1, run(8, false, true));
}

TEST(MappingPipeline, UnknownBackendThrows) {
  PipelineConfig cfg;
  cfg.engine.backend = "no-such-backend";
  EXPECT_THROW(MappingPipeline(refmodel::Reference("ref", testGenome(50'000)),
                               cfg),
               std::invalid_argument);
}

TEST(MappingPipeline, EmptyBatchAndJunkReads) {
  const auto genome = testGenome(100'000, 61);
  MappingPipeline pipe(refmodel::Reference("ref", std::string(genome)),
                       PipelineConfig{});
  EXPECT_TRUE(pipe.mapBatch({}).empty());
  // A read with no minimizer hits maps nowhere and emits nothing.
  io::FastxRecord junk;
  junk.name = "junk";
  junk.seq = std::string(500, 'A');
  const auto records = pipe.mapBatch({junk});
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(pipe.stats().unmapped_reads, 1u);
}

}  // namespace
}  // namespace gx::pipeline
