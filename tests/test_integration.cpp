// End-to-end integration: the paper's full methodology at reduced scale.
// Genome -> PBSIM2-class reads -> minimap2-class candidates -> alignment
// with every aligner -> verified CIGARs and consistent costs.

#include <gtest/gtest.h>

#include <string>

#include "genasmx/common/verify.hpp"
#include "genasmx/core/windowed.hpp"
#include "genasmx/gpukernels/genasm_kernels.hpp"
#include "genasmx/ksw/ksw_affine.hpp"
#include "genasmx/mapper/mapper.hpp"
#include "genasmx/myers/myers.hpp"
#include "genasmx/readsim/genome.hpp"
#include "genasmx/readsim/read_simulator.hpp"
#include "genasmx/util/thread_pool.hpp"

namespace gx {
namespace {

struct Pipeline {
  std::string genome;
  mapper::Mapper mapper_;
  std::vector<readsim::SimulatedRead> reads;
  std::vector<mapper::AlignmentPair> pairs;

  Pipeline() : genome(makeGenome()), mapper_(std::string(genome)) {
    auto rcfg = readsim::ReadSimConfig::pacbioClr(8, 2'000);
    rcfg.seed = 31;
    reads = readsim::simulateReads(genome, rcfg);
    for (const auto& r : reads) {
      auto rp = mapper::buildAlignmentPairs(mapper_, r.seq, 4);
      for (auto& p : rp) pairs.push_back(std::move(p));
    }
  }

  static std::string makeGenome() {
    readsim::GenomeConfig cfg;
    cfg.length = 250'000;
    cfg.seed = 29;
    return readsim::generateGenome(cfg);
  }
};

Pipeline& pipeline() {
  static Pipeline p;
  return p;
}

TEST(Integration, PipelineProducesCandidatePairs) {
  auto& p = pipeline();
  EXPECT_EQ(p.reads.size(), 8u);
  EXPECT_GE(p.pairs.size(), p.reads.size());  // at least one pair per read
}

TEST(Integration, AllAlignersProduceValidAlignments) {
  auto& p = pipeline();
  myers::MyersAligner edlib_class;
  ksw::KswConfig kcfg;
  kcfg.band = 400;
  ksw::KswAligner ksw_class(kcfg);
  for (const auto& pair : p.pairs) {
    const auto improved =
        core::alignWindowedImproved(pair.target, pair.query);
    const auto baseline =
        core::alignWindowedBaseline(pair.target, pair.query);
    const auto myr = edlib_class.align(pair.target, pair.query);
    const auto kw = ksw_class.align(pair.target, pair.query);
    ASSERT_TRUE(improved.ok);
    ASSERT_TRUE(baseline.ok);
    ASSERT_TRUE(myr.ok);
    ASSERT_TRUE(kw.ok);
    for (const auto* res : {&improved, &baseline, &myr, &kw}) {
      const auto v =
          common::verifyAlignment(pair.target, pair.query, res->cigar);
      ASSERT_TRUE(v.valid) << v.error;
    }
    // GenASM variants agree with each other; Myers is optimal, so GenASM's
    // windowed cost can only be >= Myers' cost.
    EXPECT_EQ(improved.edit_distance, baseline.edit_distance);
    EXPECT_GE(improved.edit_distance, myr.edit_distance);
  }
}

TEST(Integration, BestCandidateCostMatchesInjectedErrors) {
  auto& p = pipeline();
  for (const auto& r : p.reads) {
    const auto rp = mapper::buildAlignmentPairs(p.mapper_, r.seq, 1);
    if (rp.empty()) continue;
    const auto res = core::alignWindowedImproved(rp[0].target, rp[0].query);
    ASSERT_TRUE(res.ok);
    // Cost is near the injected error count (margins add deletions).
    EXPECT_LT(res.edit_distance,
              static_cast<int>(r.true_edits) + 2 * 64 + 64);
  }
}

TEST(Integration, GpuPipelineMatchesCpu) {
  auto& p = pipeline();
  gpusim::Device dev;
  const auto gpu = gpukernels::alignBatchImproved(dev, p.pairs);
  for (std::size_t i = 0; i < p.pairs.size(); ++i) {
    const auto cpu =
        core::alignWindowedImproved(p.pairs[i].target, p.pairs[i].query);
    ASSERT_TRUE(gpu.results[i].ok);
    EXPECT_EQ(gpu.results[i].cigar, cpu.cigar);
  }
  EXPECT_EQ(gpu.spilled_blocks, 0u);
}

TEST(Integration, ThreadPoolBatchMatchesSerial) {
  auto& p = pipeline();
  std::vector<int> serial(p.pairs.size()), parallel(p.pairs.size());
  for (std::size_t i = 0; i < p.pairs.size(); ++i) {
    serial[i] =
        core::alignWindowedImproved(p.pairs[i].target, p.pairs[i].query)
            .edit_distance;
  }
  util::ThreadPool pool(4);
  pool.parallel_for(p.pairs.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      parallel[i] =
          core::alignWindowedImproved(p.pairs[i].target, p.pairs[i].query)
              .edit_distance;
    }
  });
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace gx
