#include <gtest/gtest.h>

#include <string>

#include "genasmx/bitvector/bitvector.hpp"
#include "genasmx/common/sequence.hpp"
#include "genasmx/util/prng.hpp"

namespace gx::bitvector {
namespace {

template <int NW>
void checkOnesAbove() {
  for (int n : {0, 1, 63, 64, 65, NW * 64 - 1, NW * 64}) {
    if (n > BitVec<NW>::kBits) continue;
    const auto v = BitVec<NW>::onesAbove(n);
    for (int j = 0; j < BitVec<NW>::kBits; ++j) {
      EXPECT_EQ(v.bit(j), j >= n) << "NW=" << NW << " n=" << n << " j=" << j;
    }
  }
}

TEST(BitVec, OnesAboveAllWidths) {
  checkOnesAbove<1>();
  checkOnesAbove<2>();
  checkOnesAbove<4>();
}

TEST(BitVec, ZerosAndAllOnes) {
  const auto z = BitVec<2>::zeros();
  const auto o = BitVec<2>::allOnes();
  for (int j = 0; j < 128; ++j) {
    EXPECT_FALSE(z.bit(j));
    EXPECT_TRUE(o.bit(j));
  }
  EXPECT_EQ(~z, o);
}

TEST(BitVec, SetClearBit) {
  BitVec<2> v;
  v.setBit(0);
  v.setBit(63);
  v.setBit(64);
  v.setBit(127);
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_TRUE(v.bit(64));
  EXPECT_TRUE(v.bit(127));
  EXPECT_FALSE(v.bit(1));
  v.clearBit(64);
  EXPECT_FALSE(v.bit(64));
}

template <int NW>
void checkShiftAgainstNaive(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  for (int trial = 0; trial < 50; ++trial) {
    BitVec<NW> v;
    for (auto& w : v.w) w = rng();
    for (bool insert_one : {false, true}) {
      const auto s = v.shl1(insert_one);
      EXPECT_EQ(s.bit(0), insert_one);
      for (int j = 1; j < BitVec<NW>::kBits; ++j) {
        EXPECT_EQ(s.bit(j), v.bit(j - 1)) << "NW=" << NW << " j=" << j;
      }
    }
  }
}

TEST(BitVec, ShiftLeftCarriesAcrossWords) {
  checkShiftAgainstNaive<1>(11);
  checkShiftAgainstNaive<2>(12);
  checkShiftAgainstNaive<3>(13);
  checkShiftAgainstNaive<4>(14);
}

TEST(BitVec, BitwiseOperators) {
  util::Xoshiro256 rng(5);
  BitVec<3> a, b;
  for (auto& w : a.w) w = rng();
  for (auto& w : b.w) w = rng();
  const auto both_and = a & b;
  const auto both_or = a | b;
  for (int j = 0; j < 192; ++j) {
    EXPECT_EQ(both_and.bit(j), a.bit(j) && b.bit(j));
    EXPECT_EQ(both_or.bit(j), a.bit(j) || b.bit(j));
  }
}

TEST(BitVec, EqualityIsStructural) {
  BitVec<2> a, b;
  EXPECT_EQ(a, b);
  a.setBit(100);
  EXPECT_NE(a, b);
  b.setBit(100);
  EXPECT_EQ(a, b);
}

TEST(PatternMasks, ActiveLowMatchBits) {
  const std::string pattern = "ACGTAC";
  PatternMasks<1> masks(pattern);
  for (char c : {'A', 'C', 'G', 'T'}) {
    const auto& pm = masks.forChar(c);
    for (std::size_t j = 0; j < pattern.size(); ++j) {
      // Active low: 0 where pattern[j] == c.
      EXPECT_EQ(pm.bit(static_cast<int>(j)), pattern[j] != c)
          << "c=" << c << " j=" << j;
    }
    // Bits beyond the pattern stay 1.
    for (int j = static_cast<int>(pattern.size()); j < 64; ++j) {
      EXPECT_TRUE(pm.bit(j));
    }
  }
}

TEST(PatternMasks, MultiWordPattern) {
  util::Xoshiro256 rng(6);
  const auto pattern = common::randomSequence(rng, 150);
  PatternMasks<3> masks(pattern);
  for (std::size_t j = 0; j < pattern.size(); ++j) {
    const auto& pm = masks.forChar(pattern[j]);
    EXPECT_FALSE(pm.bit(static_cast<int>(j)));
  }
}

TEST(PatternMasks, EmptyPatternAllOnes) {
  PatternMasks<1> masks{std::string_view("")};
  for (char c : {'A', 'C', 'G', 'T'}) {
    EXPECT_EQ(masks.forChar(c), BitVec<1>::allOnes());
  }
}

TEST(WordsNeeded, Boundaries) {
  EXPECT_EQ(wordsNeeded(0), 1);
  EXPECT_EQ(wordsNeeded(1), 1);
  EXPECT_EQ(wordsNeeded(64), 1);
  EXPECT_EQ(wordsNeeded(65), 2);
  EXPECT_EQ(wordsNeeded(128), 2);
  EXPECT_EQ(wordsNeeded(129), 3);
  EXPECT_EQ(wordsNeeded(512), 8);
}

}  // namespace
}  // namespace gx::bitvector
