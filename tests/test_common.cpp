#include <gtest/gtest.h>

#include <stdexcept>

#include "genasmx/common/cigar.hpp"
#include "genasmx/common/sequence.hpp"
#include "genasmx/common/verify.hpp"
#include "genasmx/refdp/edit_dp.hpp"
#include "genasmx/util/prng.hpp"

namespace gx::common {
namespace {

// ---------------------------------------------------------------- sequence

TEST(Sequence, BaseCodeRoundTrip) {
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(baseCode(codeBase(static_cast<std::uint8_t>(c))), c);
  }
  EXPECT_EQ(baseCode('a'), baseCode('A'));
  EXPECT_EQ(baseCode('N'), 0);  // N folds to A by convention
}

TEST(Sequence, Complement) {
  EXPECT_EQ(complement('A'), 'T');
  EXPECT_EQ(complement('T'), 'A');
  EXPECT_EQ(complement('C'), 'G');
  EXPECT_EQ(complement('G'), 'C');
}

TEST(Sequence, ReversedAndReverseComplement) {
  EXPECT_EQ(reversed("ACGT"), "TGCA");
  EXPECT_EQ(reversed(""), "");
  EXPECT_EQ(reverseComplement("ACGT"), "ACGT");  // palindrome
  EXPECT_EQ(reverseComplement("AAAC"), "GTTT");
}

TEST(Sequence, RandomSequenceAlphabetAndLength) {
  util::Xoshiro256 rng(1);
  const auto s = randomSequence(rng, 5000);
  EXPECT_EQ(s.size(), 5000u);
  int counts[4] = {0, 0, 0, 0};
  for (char c : s) {
    ASSERT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');
    counts[baseCode(c)]++;
  }
  for (int c : counts) EXPECT_GT(c, 1000);  // roughly uniform
}

TEST(Sequence, MutateRespectsEditBudget) {
  util::Xoshiro256 rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const auto s = randomSequence(rng, 80);
    const std::size_t edits = rng.below(10);
    const auto t = mutateSequence(rng, s, edits);
    EXPECT_LE(refdp::editDistance(s, t), static_cast<int>(edits));
  }
}

TEST(Sequence, MutateZeroEditsIsIdentity) {
  util::Xoshiro256 rng(3);
  const auto s = randomSequence(rng, 50);
  EXPECT_EQ(mutateSequence(rng, s, 0), s);
}

TEST(PackedSequence, RoundTrip) {
  util::Xoshiro256 rng(4);
  for (std::size_t len : {0u, 1u, 31u, 32u, 33u, 64u, 100u, 1000u}) {
    const auto s = randomSequence(rng, len);
    PackedSequence p(s);
    EXPECT_EQ(p.size(), len);
    EXPECT_EQ(p.decode(0, len), s);
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_EQ(p.at(i), s[i]);
      EXPECT_EQ(p.code(i), baseCode(s[i]));
    }
  }
}

TEST(PackedSequence, DecodeClampsAtEnd) {
  PackedSequence p(std::string_view("ACGTACGT"));
  EXPECT_EQ(p.decode(6, 100), "GT");
  EXPECT_EQ(p.decode(8, 10), "");
  EXPECT_EQ(p.decode(100, 1), "");
}

// ------------------------------------------------------------------- cigar

TEST(Cigar, PushMergesAdjacentRuns) {
  Cigar c;
  c.push(EditOp::Match, 3);
  c.push(EditOp::Match, 2);
  c.push(EditOp::Mismatch);
  c.push(EditOp::Match, 1);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.str(), "5=1X1=");
}

TEST(Cigar, PushZeroIsNoop) {
  Cigar c;
  c.push(EditOp::Match, 0);
  EXPECT_TRUE(c.empty());
}

TEST(Cigar, Lengths) {
  const Cigar c = Cigar::parse("10=2X3I4D");
  EXPECT_EQ(c.opCount(), 19u);
  EXPECT_EQ(c.queryLength(), 15u);   // = + X + I
  EXPECT_EQ(c.targetLength(), 16u);  // = + X + D
  EXPECT_EQ(c.editDistance(), 9u);   // X + I + D
  EXPECT_EQ(c.count(EditOp::Match), 10u);
  EXPECT_EQ(c.count(EditOp::Insertion), 3u);
}

TEST(Cigar, ParseStrRoundTrip) {
  for (const char* s : {"", "1=", "100=25X3I4D7=", "12D", "999I1D"}) {
    EXPECT_EQ(Cigar::parse(s).str(), s);
  }
}

TEST(Cigar, ParseAcceptsMAsMatch) {
  EXPECT_EQ(Cigar::parse("5M").str(), "5=");
}

TEST(Cigar, ParseRejectsGarbage) {
  EXPECT_THROW(Cigar::parse("=="), std::invalid_argument);
  EXPECT_THROW(Cigar::parse("5"), std::invalid_argument);
  EXPECT_THROW(Cigar::parse("3Q"), std::invalid_argument);
}

TEST(Cigar, PrefixSplitsRuns) {
  const Cigar c = Cigar::parse("5=2X3=");
  EXPECT_EQ(c.prefix(0).str(), "");
  EXPECT_EQ(c.prefix(5).str(), "5=");
  EXPECT_EQ(c.prefix(6).str(), "5=1X");
  EXPECT_EQ(c.prefix(100).str(), "5=2X3=");
}

TEST(Cigar, AppendMergesAcrossBoundary) {
  Cigar a = Cigar::parse("3=");
  a.append(Cigar::parse("2=1X"));
  EXPECT_EQ(a.str(), "5=1X");
}

TEST(Cigar, TrimIndelEndsStripsFlankingRuns) {
  const auto trim = trimIndelEnds(Cigar::parse("3D2I10=1D5=4I2D"));
  EXPECT_EQ(trim.cigar.str(), "10=1D5=");
  EXPECT_EQ(trim.target_lead, 3u);
  EXPECT_EQ(trim.query_lead, 2u);
  EXPECT_EQ(trim.query_trail, 4u);
  EXPECT_EQ(trim.target_trail, 2u);
}

TEST(Cigar, TrimIndelEndsKeepsInteriorAndMismatchFlanks) {
  // Mismatches are consuming columns: nothing to trim.
  const auto trim = trimIndelEnds(Cigar::parse("1X3=2I3=1X"));
  EXPECT_EQ(trim.cigar.str(), "1X3=2I3=1X");
  EXPECT_EQ(trim.query_lead + trim.query_trail + trim.target_lead +
                trim.target_trail,
            0u);
}

TEST(Cigar, TrimIndelEndsAllIndelCigar) {
  const auto trim = trimIndelEnds(Cigar::parse("5D3I"));
  EXPECT_TRUE(trim.cigar.empty());
  EXPECT_EQ(trim.target_lead, 5u);
  EXPECT_EQ(trim.query_lead, 3u);
  EXPECT_TRUE(trimIndelEnds(Cigar{}).cigar.empty());
}

// ------------------------------------------------------------------ verify

TEST(Verify, AcceptsCorrectAlignment) {
  //   T: AC-GT
  //   Q: ACTGA
  const auto r = verifyAlignment("ACGT", "ACTGA", Cigar::parse("2=1I1=1X"));
  EXPECT_TRUE(r.valid) << r.error;
  EXPECT_EQ(r.cost, 2u);
}

TEST(Verify, RejectsWrongMatch) {
  const auto r = verifyAlignment("AAAA", "AAAT", Cigar::parse("4="));
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.error.find("disagrees"), std::string::npos);
}

TEST(Verify, RejectsMismatchOnEqualChars) {
  const auto r = verifyAlignment("AAAA", "AAAA", Cigar::parse("3=1X"));
  EXPECT_FALSE(r.valid);
}

TEST(Verify, RejectsUnderConsumption) {
  EXPECT_FALSE(verifyAlignment("ACGT", "ACGT", Cigar::parse("3=")).valid);
  EXPECT_FALSE(verifyAlignment("ACGT", "ACG", Cigar::parse("3=")).valid);
}

TEST(Verify, RejectsOverConsumption) {
  EXPECT_FALSE(verifyAlignment("AC", "AC", Cigar::parse("3=")).valid);
  EXPECT_FALSE(verifyAlignment("AC", "AC", Cigar::parse("2=1I")).valid);
  EXPECT_FALSE(verifyAlignment("AC", "AC", Cigar::parse("2=1D")).valid);
}

TEST(Verify, EmptyPair) {
  EXPECT_TRUE(verifyAlignment("", "", Cigar()).valid);
  EXPECT_FALSE(verifyAlignment("A", "", Cigar()).valid);
}

TEST(Verify, PureIndelAlignments) {
  EXPECT_TRUE(verifyAlignment("", "ACG", Cigar::parse("3I")).valid);
  EXPECT_TRUE(verifyAlignment("ACG", "", Cigar::parse("3D")).valid);
}

TEST(Render, ProducesThreeLines) {
  const auto text =
      renderAlignment("ACGT", "ACTGA", Cigar::parse("2=1I1=1X"));
  EXPECT_NE(text.find("T: AC-GT"), std::string::npos);
  EXPECT_NE(text.find("Q: ACTGA"), std::string::npos);
}

}  // namespace
}  // namespace gx::common
