// genasmx_map — the paper's end-to-end read mapper: minimizer
// seeding/chaining candidates feeding windowed GenASM (or any registered
// backend) through the batched MappingPipeline, emitting PAF with cg:Z:
// CIGARs. Multi-contig references map per contig (contig-table reference
// model; PAF target name/length/coordinates are contig-local, never a
// merged coordinate space), and the index build parallelizes per contig
// on the worker pool. Output is byte-identical for any --threads value
// and for either index source (--ref rebuild vs --index mmap).
//
//   genasmx_map --ref <reference.fa> --reads <reads.fa|fq> [options]
//   genasmx_map --index <ref.gxi>    --reads <reads.fa|fq> [options]
//   genasmx_map <reference.fa> <reads.fa|fq> [options]        (compat)
//
// Options (--opt VALUE and --opt=VALUE are both accepted):
//   --ref FILE             reference FASTA (parsed + indexed in memory)
//   --index FILE           prebuilt index from genasmx_index (mmap'd;
//                          contains the reference — no FASTA needed)
//   --reads FILE           reads FASTA/FASTQ
//   --out FILE             write PAF to FILE instead of stdout
//                          (--paf FILE is an accepted alias)
//   --backend NAME         alignment backend (default windowed-improved);
//                          see --list-backends
//   --threads N            worker threads (0=auto)
//   --max-candidates N     candidate windows aligned per read (default 4)
//   --batch N              reads per streaming batch (default 256)
//   --window W --overlap O window geometry (GenASM backends)
//   --primary-only         suppress secondary (mapq 0) records; enables
//                          the two-phase distance-first fast path
//   --single-phase         disable the two-phase fast path (A/B testing;
//                          output is byte-identical either way)
//   --prefilter MODE       off (default) | sketch: weighted-minhash
//                          similarity screen that drops hopeless
//                          candidates before phase-1 distance scoring
//                          (requires --primary-only, two-phase flow)
//   --stats-json FILE      write stage times + run counters as one JSON
//                          object to FILE (stderr text unchanged)
//   --no-verify            skip the index payload checksum at --index
//                          load (header checksum is always verified)
//   --on-bad-record MODE   abort (default) | skip | warn: what to do
//                          with a malformed input record — abort throws,
//                          skip/warn resync to the next record and count
//                          it (warn also prints the one-line error)
//   --max-read-len N       reject reads longer than N bases before
//                          mapping (0 = unlimited)
//   --max-batch-bytes N    close a mapping batch early once it holds N
//                          sequence bytes (0 = unlimited)
//   --fault SPEC           deterministic fault injection (testing), e.g.
//                          truncate@4096, eio@rec:17, enospc@out:2;
//                          GENASMX_FAULT env is the no-flag equivalent
//                          (the flag wins when both are set)
//   --list-backends        print registered backends and exit
//
// Exit codes: 0 success, 1 runtime failure (including any output write
// failure — a truncated PAF is never reported as success), 2 usage.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cli.hpp"
#include "genasmx/common/error.hpp"
#include "genasmx/engine/registry.hpp"
#include "genasmx/io/fastx.hpp"
#include "genasmx/io/fault.hpp"
#include "genasmx/io/paf.hpp"
#include "genasmx/mapper/index_io.hpp"
#include "genasmx/pipeline/pipeline.hpp"
#include "genasmx/refmodel/reference.hpp"
#include "genasmx/util/timer.hpp"

namespace {

struct Options {
  std::string ref_path;
  std::string index_path;
  std::string reads_path;
  std::string out_path;  ///< empty = stdout
  std::string backend = "windowed-improved";
  std::size_t threads = 0;
  std::size_t max_candidates = 4;
  std::size_t batch = 256;
  int window = 64;
  int overlap = 24;
  bool primary_only = false;
  bool single_phase = false;
  std::string prefilter = "off";
  std::string stats_json_path;
  bool no_verify = false;
  bool list_backends = false;
  std::string on_bad_record = "abort";
  std::size_t max_read_len = 0;
  std::size_t max_batch_bytes = 0;
  std::string fault;  ///< fault-injection spec ("" = GENASMX_FAULT env)
};

bool parseArgs(int argc, char** argv, Options& opt) {
  std::string pos_ref, pos_reads;
  gx::cli::Parser cli;
  cli.option("--ref", opt.ref_path);
  cli.option("--index", opt.index_path);
  cli.option("--reads", opt.reads_path);
  cli.option("--out", opt.out_path);
  cli.option("--paf", opt.out_path);  // pre---out alias
  cli.option("--backend", opt.backend);
  cli.option("--threads", opt.threads);
  cli.option("--max-candidates", opt.max_candidates);
  cli.option("--batch", opt.batch);
  cli.option("--window", opt.window);
  cli.option("--overlap", opt.overlap);
  cli.flag("--primary-only", opt.primary_only);
  cli.flag("--single-phase", opt.single_phase);
  cli.option("--prefilter", opt.prefilter);
  cli.option("--stats-json", opt.stats_json_path);
  cli.flag("--no-verify", opt.no_verify);
  cli.flag("--list-backends", opt.list_backends);
  cli.option("--on-bad-record", opt.on_bad_record);
  cli.option("--max-read-len", opt.max_read_len);
  cli.option("--max-batch-bytes", opt.max_batch_bytes);
  cli.option("--fault", opt.fault);
  cli.positional(pos_ref);    // compat: genasmx_map ref.fa reads.fq
  cli.positional(pos_reads);
  if (!cli.parse(argc, argv)) return false;
  if (opt.ref_path.empty() && !pos_ref.empty()) opt.ref_path = pos_ref;
  if (opt.reads_path.empty() && !pos_reads.empty()) opt.reads_path = pos_reads;
  if (opt.list_backends) return true;
  if (!opt.ref_path.empty() && !opt.index_path.empty()) {
    std::fprintf(stderr, "--ref and --index are mutually exclusive\n");
    return false;
  }
  if (opt.prefilter != "off" && opt.prefilter != "sketch") {
    std::fprintf(stderr, "--prefilter must be off or sketch (got '%s')\n",
                 opt.prefilter.c_str());
    return false;
  }
  if (opt.prefilter == "sketch" && (!opt.primary_only || opt.single_phase)) {
    std::fprintf(stderr,
                 "--prefilter=sketch requires --primary-only and the "
                 "two-phase flow (drop --single-phase)\n");
    return false;
  }
  if (opt.on_bad_record != "abort" && opt.on_bad_record != "skip" &&
      opt.on_bad_record != "warn") {
    std::fprintf(stderr,
                 "--on-bad-record must be abort, skip, or warn (got '%s')\n",
                 opt.on_bad_record.c_str());
    return false;
  }
  return (!opt.ref_path.empty() || !opt.index_path.empty()) &&
         !opt.reads_path.empty();
}

/// --stats-json: everything the stderr report says — stage times, mapping
/// stats, the PR-8 RunReport counters, and the prefilter accounting — as
/// one machine-readable object. Stderr text stays the authoritative
/// human surface; this file is for harnesses and dashboards.
bool writeStatsJson(const std::string& path,
                    const gx::pipeline::MappingPipeline& pipe,
                    const gx::pipeline::PipelineStats& stats,
                    double map_seconds) {
  const gx::pipeline::StageTimes& st = pipe.stageTimes();
  const gx::pipeline::RunReport& rr = pipe.report();
  const gx::pipeline::PrefilterStats& pf = pipe.prefilterStats();
  const bool sketch_on =
      pipe.config().prefilter.mode == gx::pipeline::PrefilterMode::kSketch;
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n";
  out << "  \"stage_seconds\": {\"index_build\": " << st.index_build_s
      << ", \"seed_chain\": " << st.seed_chain_s
      << ", \"phase1_distance\": " << st.phase1_distance_s
      << ", \"sketch\": " << st.sketch_s
      << ", \"phase2_traceback\": " << st.traceback_s
      << ", \"output\": " << st.output_s << "},\n";
  out << "  \"stats\": {\"reads\": " << stats.reads
      << ", \"mapped_reads\": " << stats.mapped_reads
      << ", \"unmapped_reads\": " << stats.unmapped_reads
      << ", \"candidates\": " << stats.candidates
      << ", \"records\": " << stats.records << "},\n";
  out << "  \"report\": {\"records_in\": " << rr.records_in
      << ", \"records_out\": " << rr.records_out
      << ", \"skipped_bad_records\": " << rr.skipped_bad_records
      << ", \"rejected_reads\": " << rr.rejected_reads
      << ", \"failed_reads\": " << rr.failed_reads
      << ", \"failed_tasks\": " << rr.failed_tasks
      << ", \"clean\": " << (rr.clean() ? "true" : "false") << "},\n";
  out << "  \"prefilter\": {\"mode\": \"" << (sketch_on ? "sketch" : "off")
      << "\", \"reads_sketched\": " << pf.reads_sketched
      << ", \"windows_sketched\": " << pf.windows_sketched
      << ", \"candidates_seen\": " << pf.candidates_seen
      << ", \"candidates_filtered\": " << pf.candidates_filtered
      << ", \"sequence_scans\": " << pf.sequence_scans
      << ", \"scratch_grow_events\": " << pf.scratch_grow_events << "},\n";
  out << "  \"map_seconds\": " << map_seconds << ",\n";
  out << "  \"reads_per_sec\": "
      << (map_seconds > 0 ? static_cast<double>(stats.reads) / map_seconds
                          : 0.0)
      << "\n}\n";
  out.close();
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gx;
  cli::ignoreSigpipe();
  Options opt;
  if (!parseArgs(argc, argv, opt)) {
    std::fprintf(
        stderr,
        "usage: genasmx_map (--ref <reference.fa> | --index <ref.gxi>) "
        "--reads <reads.fa|fq> [--out FILE] [--backend NAME] [--threads N] "
        "[--max-candidates N] [--batch N] [--window W] [--overlap O] "
        "[--primary-only] [--single-phase] [--prefilter off|sketch] "
        "[--stats-json FILE] [--no-verify] "
        "[--on-bad-record abort|skip|warn] [--max-read-len N] "
        "[--max-batch-bytes N] [--fault SPEC] [--list-backends]\n"
        "       genasmx_map <reference.fa> <reads.fa|fq> [options]\n");
    return 2;
  }
  auto& registry = engine::AlignerRegistry::instance();
  if (opt.list_backends) {
    for (const auto& name : registry.names()) {
      std::printf("%-20s %s\n", name.c_str(),
                  registry.description(name).c_str());
    }
    return 0;
  }
  if (!registry.contains(opt.backend)) {
    std::fprintf(stderr, "error: unknown backend '%s' (see --list-backends)\n",
                 opt.backend.c_str());
    return 2;
  }

  // Fault injection: --fault wins over GENASMX_FAULT; an empty spec
  // installs nothing. The guard must outlive everything that touches
  // I/O, so it sits above index loading.
  std::string fault_spec = opt.fault;
  if (fault_spec.empty()) {
    if (const char* env = std::getenv("GENASMX_FAULT")) fault_spec = env;
  }
  io::FaultPlan fault_plan;
  if (!fault_spec.empty()) {
    try {
      fault_plan = io::FaultPlan::parse(fault_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  const io::ScopedFaultInjection fault_guard(std::move(fault_plan));

  pipeline::PipelineConfig cfg;
  cfg.engine.backend = opt.backend;
  cfg.engine.threads = opt.threads;
  cfg.engine.aligner.window.window = opt.window;
  cfg.engine.aligner.window.overlap = opt.overlap;
  cfg.engine.aligner.ksw.band = 751;  // minimap2's long-read band regime
  cfg.max_candidates = opt.max_candidates;
  cfg.batch_reads = opt.batch;
  cfg.emit_secondary = !opt.primary_only;
  cfg.two_phase = !opt.single_phase;
  cfg.on_bad_record = opt.on_bad_record == "skip"   ? io::OnBadRecord::kSkip
                      : opt.on_bad_record == "warn" ? io::OnBadRecord::kWarn
                                                    : io::OnBadRecord::kAbort;
  cfg.max_read_len = opt.max_read_len;
  cfg.max_batch_bytes = opt.max_batch_bytes;
  cfg.prefilter.mode = opt.prefilter == "sketch"
                           ? pipeline::PrefilterMode::kSketch
                           : pipeline::PrefilterMode::kOff;

  util::Timer timer;
  std::unique_ptr<mapper::MappedIndex> mapped;  // keeps --index storage alive
  std::unique_ptr<pipeline::MappingPipeline> pipe;
  if (!opt.index_path.empty()) {
    // Serve-from-disk path: the index file carries the reference, so the
    // pipeline opens with zero FASTA parsing and zero index building.
    try {
      mapper::MappedIndex::Options mopt;
      mopt.verify_payload = !opt.no_verify;
      mapped = std::make_unique<mapper::MappedIndex>(opt.index_path, mopt);
      pipe = std::make_unique<pipeline::MappingPipeline>(mapped->view(), cfg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::fprintf(stderr, "[%.2fs] index %s mapped (%zu bytes)\n",
                 timer.seconds(), opt.index_path.c_str(),
                 mapped->fileBytes());
  } else {
    std::vector<io::FastxRecord> ref_records;
    refmodel::Reference reference;
    try {
      ref_records = io::readFastxFile(opt.ref_path);
      if (ref_records.empty()) {
        std::fprintf(stderr, "error: empty reference %s\n",
                     opt.ref_path.c_str());
        return 1;
      }
      reference = refmodel::referenceFromFastx(ref_records);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    ref_records.clear();
    ref_records.shrink_to_fit();
    std::fprintf(stderr, "[%.2fs] reference %zu bp (%u contigs)\n",
                 timer.seconds(), reference.size(), reference.contigCount());
    try {
      pipe = std::make_unique<pipeline::MappingPipeline>(std::move(reference),
                                                         cfg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  const auto& ref = pipe->mapper().reference();
  const mapper::IndexView& index = pipe->mapper().index();
  std::fprintf(stderr,
               "[%.2fs] index ready (%zu minimizers over %u contigs, %s), "
               "%s backend, %zu threads\n",
               timer.seconds(), index.size(), ref.contigCount(),
               opt.index_path.empty() ? "parallel per-contig build"
                                      : "served from disk",
               opt.backend.c_str(), pipe->engine().threads());
  const std::uint32_t shown = std::min(ref.contigCount(), 16u);
  for (std::uint32_t c = 0; c < shown; ++c) {
    std::fprintf(stderr, "  contig %-20s %10zu bp  %8zu minimizers\n",
                 ref.name(c).c_str(), ref.contig(c).length,
                 static_cast<std::size_t>(index.perContigKept(c)));
  }
  if (shown < ref.contigCount()) {
    std::fprintf(stderr, "  ... and %u more contigs\n",
                 ref.contigCount() - shown);
  }

  std::ifstream reads_in(opt.reads_path);
  if (!reads_in) {
    std::fprintf(stderr, "error: cannot open %s\n", opt.reads_path.c_str());
    return 1;
  }
  std::ofstream paf_file;
  if (!opt.out_path.empty()) {
    paf_file.open(opt.out_path);
    if (!paf_file) {
      std::fprintf(stderr, "error: cannot open %s\n", opt.out_path.c_str());
      return 1;
    }
  }
  std::ostream& paf_out = opt.out_path.empty() ? std::cout : paf_file;

  pipeline::PipelineStats stats;
  util::Timer map_timer;
  try {
    io::PafWriter writer(paf_out);
    stats = pipe->run(reads_in, writer, opt.reads_path);
    writer.close();  // final flush + stream check: surfaces here, not in ~
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  // A PAF that did not fully reach the file is a failure, not a success
  // with a warning: check the sink's final state before reporting.
  if (!opt.out_path.empty()) {
    paf_file.close();
    if (!paf_file) {
      std::fprintf(stderr, "error: %s\n",
                   common::formatError(common::ErrorCode::kIoFatal,
                                       "closing " + opt.out_path +
                                           " failed (disk full?)",
                                       {})
                       .c_str());
      return 1;
    }
  } else if (!std::cout) {
    std::fprintf(
        stderr, "error: %s\n",
        common::formatError(common::ErrorCode::kIoFatal,
                            "writing PAF to stdout failed (closed pipe?)", {})
            .c_str());
    return 1;
  }
  const double map_seconds = map_timer.seconds();
  std::fprintf(stderr,
               "[%.2fs] %zu reads: %zu mapped, %zu unmapped; %zu candidates "
               "aligned, %zu PAF records (%.1f reads/s)\n",
               timer.seconds(), stats.reads, stats.mapped_reads,
               stats.unmapped_reads, stats.candidates, stats.records,
               map_seconds > 0 ? static_cast<double>(stats.reads) / map_seconds
                               : 0.0);
  // Per-stage breakdown so perf work can attribute wins. Phase-1 /
  // phase-2 split only exists in the two-phase flow; the full-alignment
  // flows charge their engine batches to the traceback stage.
  const pipeline::StageTimes& st = pipe->stageTimes();
  std::fprintf(stderr,
               "[%.2fs] stage breakdown: index-build %.2fs, seed+chain "
               "%.2fs, phase1-distance %.2fs (sketch %.2fs), "
               "phase2-traceback %.2fs, output %.2fs\n",
               timer.seconds(), st.index_build_s, st.seed_chain_s,
               st.phase1_distance_s, st.sketch_s, st.traceback_s,
               st.output_s);
  const pipeline::PrefilterStats& pf = pipe->prefilterStats();
  if (opt.prefilter == "sketch") {
    std::fprintf(stderr,
                 "[%.2fs] prefilter: %llu of %llu non-best candidates "
                 "dropped (%llu reads, %llu windows sketched)\n",
                 timer.seconds(),
                 static_cast<unsigned long long>(pf.candidates_filtered),
                 static_cast<unsigned long long>(pf.candidates_seen),
                 static_cast<unsigned long long>(pf.reads_sketched),
                 static_cast<unsigned long long>(pf.windows_sketched));
  }
  if (!opt.stats_json_path.empty() &&
      !writeStatsJson(opt.stats_json_path, *pipe, stats, map_seconds)) {
    std::fprintf(stderr, "error: cannot write %s\n",
                 opt.stats_json_path.c_str());
    return 1;
  }
  return 0;
}
