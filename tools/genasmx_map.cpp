// genasmx_map — the paper's end-to-end read mapper: minimizer
// seeding/chaining candidates feeding windowed GenASM (or any registered
// backend) through the batched MappingPipeline, emitting PAF with cg:Z:
// CIGARs. Multi-contig references map per contig (contig-table reference
// model; PAF target name/length/coordinates are contig-local, never a
// merged coordinate space), and the index build parallelizes per contig
// on the worker pool. Output is byte-identical for any --threads value.
//
//   genasmx_map <reference.fa> <reads.fa|fq> [options]
//
// Options (--opt VALUE and --opt=VALUE are both accepted):
//   --backend NAME         alignment backend (default windowed-improved);
//                          see --list-backends
//   --threads N            worker threads (0=auto)
//   --max-candidates N     candidate windows aligned per read (default 4)
//   --batch N              reads per streaming batch (default 256)
//   --window W --overlap O window geometry (GenASM backends)
//   --paf FILE             write PAF to FILE instead of stdout
//   --primary-only         suppress secondary (mapq 0) records; enables
//                          the two-phase distance-first fast path
//   --single-phase         disable the two-phase fast path (A/B testing;
//                          output is byte-identical either way)
//   --list-backends        print registered backends and exit

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "genasmx/engine/registry.hpp"
#include "genasmx/io/fastx.hpp"
#include "genasmx/io/paf.hpp"
#include "genasmx/pipeline/pipeline.hpp"
#include "genasmx/refmodel/reference.hpp"
#include "genasmx/util/timer.hpp"

namespace {

struct Options {
  std::string reference_path;
  std::string reads_path;
  std::string paf_path;  ///< empty = stdout
  std::string backend = "windowed-improved";
  std::size_t threads = 0;
  std::size_t max_candidates = 4;
  std::size_t batch = 256;
  int window = 64;
  int overlap = 24;
  bool primary_only = false;
  bool single_phase = false;
  bool list_backends = false;
};

/// Strict non-negative integer parse: rejects signs, trailing junk, and
/// out-of-range values, so typos fail at the usage line instead of deep
/// inside the pipeline.
bool parseCount(const char* s, std::size_t& out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parseCount(const char* s, int& out) {
  std::size_t v = 0;
  if (!parseCount(s, v) || v > 1'000'000) return false;
  out = static_cast<int>(v);
  return true;
}

bool parseArgs(int argc, char** argv, Options& opt) {
  std::size_t positional = 0;
  bool missing_value = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept "--opt VALUE" (next argv, unless it is another option) and
    // "--opt=VALUE". A matched key with no usable value is an error.
    auto value_of = [&](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      if (arg.compare(0, n, key) != 0) return nullptr;
      if (arg.size() > n && arg[n] == '=') return arg.c_str() + n + 1;
      if (arg.size() == n) {
        if (i + 1 < argc && argv[i + 1][0] != '-') return argv[++i];
        std::fprintf(stderr, "option %s requires a value\n", key);
        missing_value = true;
      }
      return nullptr;
    };
    auto bad_value = [&](const char* key, const char* v) {
      std::fprintf(stderr, "option %s: invalid value '%s'\n", key, v);
      return false;
    };
    if (const char* v = value_of("--backend")) opt.backend = v;
    else if (const char* v = value_of("--threads")) {
      if (!parseCount(v, opt.threads)) return bad_value("--threads", v);
    } else if (const char* v = value_of("--max-candidates")) {
      if (!parseCount(v, opt.max_candidates)) return bad_value("--max-candidates", v);
    } else if (const char* v = value_of("--batch")) {
      if (!parseCount(v, opt.batch)) return bad_value("--batch", v);
    } else if (const char* v = value_of("--window")) {
      if (!parseCount(v, opt.window)) return bad_value("--window", v);
    } else if (const char* v = value_of("--overlap")) {
      if (!parseCount(v, opt.overlap)) return bad_value("--overlap", v);
    } else if (const char* v = value_of("--paf")) opt.paf_path = v;
    else if (missing_value) return false;
    else if (arg == "--primary-only") opt.primary_only = true;
    else if (arg == "--single-phase") opt.single_phase = true;
    else if (arg == "--list-backends") opt.list_backends = true;
    else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    } else if (positional == 0) {
      opt.reference_path = arg;
      ++positional;
    } else if (positional == 1) {
      opt.reads_path = arg;
      ++positional;
    } else {
      return false;
    }
  }
  return opt.list_backends || positional == 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gx;
  Options opt;
  if (!parseArgs(argc, argv, opt)) {
    std::fprintf(
        stderr,
        "usage: genasmx_map <reference.fa> <reads.fa|fq> [--backend NAME] "
        "[--threads N] [--max-candidates N] [--batch N] [--window W] "
        "[--overlap O] [--paf FILE] [--primary-only] [--single-phase] "
        "[--list-backends]\n");
    return 2;
  }
  auto& registry = engine::AlignerRegistry::instance();
  if (opt.list_backends) {
    for (const auto& name : registry.names()) {
      std::printf("%-20s %s\n", name.c_str(),
                  registry.description(name).c_str());
    }
    return 0;
  }
  if (!registry.contains(opt.backend)) {
    std::fprintf(stderr, "error: unknown backend '%s' (see --list-backends)\n",
                 opt.backend.c_str());
    return 2;
  }

  util::Timer timer;
  std::vector<io::FastxRecord> ref_records;
  try {
    ref_records = io::readFastxFile(opt.reference_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (ref_records.empty()) {
    std::fprintf(stderr, "error: empty reference %s\n",
                 opt.reference_path.c_str());
    return 1;
  }
  refmodel::Reference reference;
  try {
    reference = refmodel::referenceFromFastx(ref_records);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  ref_records.clear();
  ref_records.shrink_to_fit();
  std::fprintf(stderr, "[%.2fs] reference %zu bp (%u contigs)\n",
               timer.seconds(), reference.size(), reference.contigCount());

  pipeline::PipelineConfig cfg;
  cfg.engine.backend = opt.backend;
  cfg.engine.threads = opt.threads;
  cfg.engine.aligner.window.window = opt.window;
  cfg.engine.aligner.window.overlap = opt.overlap;
  cfg.engine.aligner.ksw.band = 751;  // minimap2's long-read band regime
  cfg.max_candidates = opt.max_candidates;
  cfg.batch_reads = opt.batch;
  cfg.emit_secondary = !opt.primary_only;
  cfg.two_phase = !opt.single_phase;

  std::unique_ptr<pipeline::MappingPipeline> pipe;
  try {
    pipe = std::make_unique<pipeline::MappingPipeline>(std::move(reference),
                                                       cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const auto& ref = pipe->mapper().reference();
  const auto& per_contig = pipe->mapper().index().perContigKept();
  std::fprintf(stderr,
               "[%.2fs] index built (%zu minimizers over %u contigs, "
               "parallel per-contig build), %s backend, %zu threads\n",
               timer.seconds(), pipe->mapper().index().size(),
               ref.contigCount(), opt.backend.c_str(),
               pipe->engine().threads());
  const std::uint32_t shown = std::min(ref.contigCount(), 16u);
  for (std::uint32_t c = 0; c < shown; ++c) {
    std::fprintf(stderr, "  contig %-20s %10zu bp  %8zu minimizers\n",
                 ref.name(c).c_str(), ref.contig(c).length, per_contig[c]);
  }
  if (shown < ref.contigCount()) {
    std::fprintf(stderr, "  ... and %u more contigs\n",
                 ref.contigCount() - shown);
  }

  std::ifstream reads_in(opt.reads_path);
  if (!reads_in) {
    std::fprintf(stderr, "error: cannot open %s\n", opt.reads_path.c_str());
    return 1;
  }
  std::ofstream paf_file;
  if (!opt.paf_path.empty()) {
    paf_file.open(opt.paf_path);
    if (!paf_file) {
      std::fprintf(stderr, "error: cannot open %s\n", opt.paf_path.c_str());
      return 1;
    }
  }
  std::ostream& paf_out = opt.paf_path.empty() ? std::cout : paf_file;

  pipeline::PipelineStats stats;
  util::Timer map_timer;
  try {
    io::PafWriter writer(paf_out);
    stats = pipe->run(reads_in, writer);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const double map_seconds = map_timer.seconds();
  std::fprintf(stderr,
               "[%.2fs] %zu reads: %zu mapped, %zu unmapped; %zu candidates "
               "aligned, %zu PAF records (%.1f reads/s)\n",
               timer.seconds(), stats.reads, stats.mapped_reads,
               stats.unmapped_reads, stats.candidates, stats.records,
               map_seconds > 0 ? static_cast<double>(stats.reads) / map_seconds
                               : 0.0);
  // Per-stage breakdown so perf work can attribute wins. Phase-1 /
  // phase-2 split only exists in the two-phase flow; the full-alignment
  // flows charge their engine batches to the traceback stage.
  const pipeline::StageTimes& st = pipe->stageTimes();
  std::fprintf(stderr,
               "[%.2fs] stage breakdown: index-build %.2fs, seed+chain "
               "%.2fs, phase1-distance %.2fs, phase2-traceback %.2fs, "
               "output %.2fs\n",
               timer.seconds(), st.index_build_s, st.seed_chain_s,
               st.phase1_distance_s, st.traceback_s, st.output_s);
  return 0;
}
