// genasmx_simulate — generate a synthetic genome and PBSIM2-class reads
// (the paper's workload) as FASTA/FASTQ files.
//
//   genasmx_simulate <out_prefix> [--genome=BP] [--reads=N] [--length=BP]
//                    [--error=FRAC] [--illumina] [--seed=S]
//
// Writes <out_prefix>.fa (genome) and <out_prefix>.reads.fq (reads with
// their true origins in the comment field).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "genasmx/io/fastx.hpp"
#include "genasmx/readsim/genome.hpp"
#include "genasmx/readsim/read_simulator.hpp"

int main(int argc, char** argv) {
  using namespace gx;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: genasmx_simulate <out_prefix> [--genome=BP] "
                 "[--reads=N] [--length=BP] [--error=FRAC] [--illumina] "
                 "[--seed=S]\n");
    return 2;
  }
  const std::string prefix = argv[1];
  std::size_t genome_len = 1'000'000;
  std::size_t n_reads = 500;
  std::size_t read_len = 10'000;
  double error = 0.10;
  bool illumina = false;
  std::uint64_t seed = 42;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      return arg.rfind(key, 0) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = val("--genome=")) genome_len = std::strtoull(v, nullptr, 10);
    else if (const char* v2 = val("--reads=")) n_reads = std::strtoull(v2, nullptr, 10);
    else if (const char* v3 = val("--length=")) read_len = std::strtoull(v3, nullptr, 10);
    else if (const char* v4 = val("--error=")) error = std::strtod(v4, nullptr);
    else if (const char* v5 = val("--seed=")) seed = std::strtoull(v5, nullptr, 10);
    else if (arg == "--illumina") illumina = true;
    else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    }
  }

  readsim::GenomeConfig gcfg;
  gcfg.length = genome_len;
  gcfg.seed = seed;
  const auto genome = readsim::generateGenome(gcfg);

  auto rcfg = illumina ? readsim::ReadSimConfig::illumina(n_reads, read_len)
                       : readsim::ReadSimConfig::pacbioClr(n_reads, read_len);
  rcfg.errors.error_rate = error;
  rcfg.seed = seed + 1;
  const auto reads = readsim::simulateReads(genome, rcfg);

  io::writeFastxFile(prefix + ".fa",
                     {{"synthetic_genome",
                       "len=" + std::to_string(genome.size()), genome, ""}});
  std::vector<io::FastxRecord> read_records;
  read_records.reserve(reads.size());
  for (const auto& r : reads) {
    io::FastxRecord rec;
    rec.name = r.name;
    rec.comment = "origin=" + std::to_string(r.origin_pos) + "-" +
                  std::to_string(r.origin_pos + r.origin_len) +
                  " strand=" + (r.reverse_strand ? "-" : "+") +
                  " edits=" + std::to_string(r.true_edits);
    rec.seq = r.seq;
    rec.qual.assign(r.seq.size(), 'I');
    read_records.push_back(std::move(rec));
  }
  io::writeFastxFile(prefix + ".reads.fq", read_records);
  std::fprintf(stderr, "wrote %s.fa (%zu bp) and %s.reads.fq (%zu reads)\n",
               prefix.c_str(), genome.size(), prefix.c_str(), reads.size());
  return 0;
}
