// genasmx_simulate — generate a synthetic genome and PBSIM2-class reads
// (the paper's workload) as FASTA/FASTQ files.
//
//   genasmx_simulate --out <out_prefix> [--genome=BP] [--contigs=N]
//                    [--reads=N] [--length=BP] [--error=FRAC] [--illumina]
//                    [--seed=S]
//   genasmx_simulate <out_prefix> [options]                  (compat)
//
// Options accept both --opt=VALUE and --opt VALUE (shared tools/cli.hpp
// dialect). Writes <out_prefix>.fa (genome) and <out_prefix>.reads.fq.
//
// --contigs=N > 1 emits a multi-contig reference (contigs chr1..chrN of
// staggered lengths summing to --genome) and samples read origins across
// contigs proportional to length; the (contig, offset, strand) truth is
// encoded in each read name (read_<i>!<contig>!<pos>!<+|->) and repeated
// in the comment field. With the default --contigs=1 the output is byte-
// identical to the pre-multi-contig tool (single "synthetic_genome"
// record, plain read_<i> names, origin in the comment only).

#include <cstdio>
#include <string>
#include <vector>

#include "cli.hpp"
#include "genasmx/io/fastx.hpp"
#include "genasmx/readsim/genome.hpp"
#include "genasmx/readsim/read_simulator.hpp"
#include "genasmx/refmodel/reference.hpp"

int main(int argc, char** argv) {
  using namespace gx;
  cli::ignoreSigpipe();
  std::string prefix;
  std::string pos_prefix;
  std::size_t genome_len = 1'000'000;
  std::size_t n_contigs = 1;
  std::size_t n_reads = 500;
  std::size_t read_len = 10'000;
  double error = 0.10;
  bool illumina = false;
  std::size_t seed = 42;
  cli::Parser parser;
  parser.option("--out", prefix);
  parser.option("--genome", genome_len);
  parser.option("--contigs", n_contigs);
  parser.option("--reads", n_reads);
  parser.option("--length", read_len);
  parser.option("--error", error);
  parser.option("--seed", seed);
  parser.flag("--illumina", illumina);
  parser.positional(pos_prefix);  // compat: genasmx_simulate <out_prefix>
  if (!parser.parse(argc, argv) ||
      (prefix.empty() && pos_prefix.empty())) {
    std::fprintf(stderr,
                 "usage: genasmx_simulate --out <out_prefix> [--genome=BP] "
                 "[--contigs=N] [--reads=N] [--length=BP] [--error=FRAC] "
                 "[--illumina] [--seed=S]\n"
                 "       genasmx_simulate <out_prefix> [options]\n");
    return 2;
  }
  if (prefix.empty()) prefix = pos_prefix;
  if (n_contigs == 0 || genome_len / (n_contigs * (n_contigs + 1) / 2) == 0) {
    std::fprintf(stderr, "error: --genome too small for --contigs=%zu\n",
                 n_contigs);
    return 2;
  }

  auto rcfg = illumina ? readsim::ReadSimConfig::illumina(n_reads, read_len)
                       : readsim::ReadSimConfig::pacbioClr(n_reads, read_len);
  rcfg.errors.error_rate = error;
  rcfg.seed = seed + 1;

  std::vector<io::FastxRecord> genome_records;
  std::vector<io::FastxRecord> read_records;

  if (n_contigs == 1) {
    readsim::GenomeConfig gcfg;
    gcfg.length = genome_len;
    gcfg.seed = seed;
    const auto genome = readsim::generateGenome(gcfg);
    const auto reads = readsim::simulateReads(genome, rcfg);
    genome_records.push_back({"synthetic_genome",
                              "len=" + std::to_string(genome.size()), genome,
                              ""});
    read_records.reserve(reads.size());
    for (const auto& r : reads) {
      io::FastxRecord rec;
      rec.name = r.name;
      rec.comment = "origin=" + std::to_string(r.origin_pos) + "-" +
                    std::to_string(r.origin_pos + r.origin_len) +
                    " strand=" + (r.reverse_strand ? "-" : "+") +
                    " edits=" + std::to_string(r.true_edits);
      rec.seq = r.seq;
      rec.qual.assign(r.seq.size(), 'I');
      read_records.push_back(std::move(rec));
    }
  } else {
    // Staggered contig lengths (1:2:...:N, summing to --genome) so
    // length-proportional origin sampling is visible in the output; each
    // contig gets its own genome seed so content is contig-distinct.
    refmodel::Reference ref;
    const std::size_t weight_total = n_contigs * (n_contigs + 1) / 2;
    for (std::size_t c = 0; c < n_contigs; ++c) {
      readsim::GenomeConfig gcfg;
      gcfg.length = genome_len * (c + 1) / weight_total;
      gcfg.seed = seed + c;
      const std::string name = "chr" + std::to_string(c + 1);
      const auto contig = readsim::generateGenome(gcfg);
      ref.addContig(name, contig);
      genome_records.push_back(
          {name, "len=" + std::to_string(contig.size()), contig, ""});
    }
    const auto reads = readsim::simulateReads(ref, rcfg);
    read_records.reserve(reads.size());
    for (const auto& r : reads) {
      io::FastxRecord rec;
      rec.name = r.name;  // truth-encoding: read_<i>!<contig>!<pos>!<+|->
      rec.comment = "origin=" + ref.name(r.origin_contig) + ":" +
                    std::to_string(r.origin_pos) + "-" +
                    std::to_string(r.origin_pos + r.origin_len) +
                    " strand=" + (r.reverse_strand ? "-" : "+") +
                    " edits=" + std::to_string(r.true_edits);
      rec.seq = r.seq;
      rec.qual.assign(r.seq.size(), 'I');
      read_records.push_back(std::move(rec));
    }
  }

  io::writeFastxFile(prefix + ".fa", genome_records);
  io::writeFastxFile(prefix + ".reads.fq", read_records);
  std::size_t total_bp = 0;
  for (const auto& rec : genome_records) total_bp += rec.seq.size();
  std::fprintf(stderr,
               "wrote %s.fa (%zu bp, %zu contigs) and %s.reads.fq (%zu reads)\n",
               prefix.c_str(), total_bp, genome_records.size(), prefix.c_str(),
               read_records.size());
  return 0;
}
