#!/usr/bin/env bash
# Tracked perf harness: run the quick deterministic benches and write the
# BENCH_*.json trajectory files at the repo root.
#
#   tools/run_bench.sh [--quick] [--build-dir DIR] [--out-dir DIR]
#
# --quick is the default (and the mode CI runs); it selects each bench's
# fixed, seeded workload so the JSON is comparable across commits on the
# same machine. The JSON files are committed: every PR records the perf
# it was measured at (see README "Performance").
set -euo pipefail

build_dir=build
out_dir=.
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) shift ;;  # default; accepted for symmetry with CI
    --build-dir) build_dir=$2; shift 2 ;;
    --out-dir) out_dir=$2; shift 2 ;;
    *) echo "usage: $0 [--quick] [--build-dir DIR] [--out-dir DIR]" >&2
       exit 2 ;;
  esac
done

repo_root=$(cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

for bench in bench_pipeline bench_cpu_aligners; do
  if [[ ! -x "$build_dir/bench/$bench" ]]; then
    echo "error: $build_dir/bench/$bench not built (configure with" \
         "-DGENASMX_BUILD_BENCH=ON and build first)" >&2
    exit 1
  fi
done

"$build_dir"/bench/bench_pipeline --quick \
  --json="$out_dir/BENCH_pipeline.json"
"$build_dir"/bench/bench_cpu_aligners --quick \
  --json="$out_dir/BENCH_cpu_aligners.json"

# Fail on malformed JSON so CI catches emitter regressions.
if command -v python3 >/dev/null 2>&1; then
  for f in "$out_dir"/BENCH_pipeline.json "$out_dir"/BENCH_cpu_aligners.json; do
    python3 -m json.tool "$f" >/dev/null
  done
  echo "JSON validated: BENCH_pipeline.json BENCH_cpu_aligners.json"
else
  echo "warning: python3 not found, skipping JSON validation" >&2
fi
