#!/usr/bin/env bash
# Tracked perf harness: run the quick deterministic benches and write the
# BENCH_*.json trajectory files at the repo root.
#
#   tools/run_bench.sh [--quick] [--build-dir DIR] [--out-dir DIR]
#
# --quick is the default (and the mode CI runs); it selects each bench's
# fixed, seeded workload so the JSON is comparable across commits on the
# same machine. The JSON files are committed: every PR records the perf
# it was measured at (see README "Performance").
set -euo pipefail

build_dir=build
out_dir=.
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) shift ;;  # default; accepted for symmetry with CI
    --build-dir) build_dir=$2; shift 2 ;;
    --out-dir) out_dir=$2; shift 2 ;;
    *) echo "usage: $0 [--quick] [--build-dir DIR] [--out-dir DIR]" >&2
       exit 2 ;;
  esac
done

repo_root=$(cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

for bench in bench_pipeline bench_cpu_aligners; do
  if [[ ! -x "$build_dir/bench/$bench" ]]; then
    echo "error: $build_dir/bench/$bench not built (configure with" \
         "-DGENASMX_BUILD_BENCH=ON and build first)" >&2
    exit 1
  fi
done

"$build_dir"/bench/bench_pipeline --quick \
  --json="$out_dir/BENCH_pipeline.json"
"$build_dir"/bench/bench_cpu_aligners --quick \
  --json="$out_dir/BENCH_cpu_aligners.json"

# Server round-trip bench: a resident genasmx_mapd under a seeded
# concurrent loadgen run (8 connections, mixed request sizes). The JSON
# records client-observed p50/p90/p99 latency and reads/sec through the
# full socket + admission + coalescing path — the resident-serving
# counterpart of BENCH_pipeline's in-process numbers.
for tool in genasmx_simulate genasmx_index genasmx_mapd genasmx_loadgen; do
  if [[ ! -x "$build_dir/$tool" ]]; then
    echo "error: $build_dir/$tool not built" >&2
    exit 1
  fi
done
srv_tmp=$(mktemp -d)
mapd_pid=
cleanup_server_bench() {
  [[ -n $mapd_pid ]] && kill -9 "$mapd_pid" 2>/dev/null || true
  rm -rf "$srv_tmp"
}
trap cleanup_server_bench EXIT

"$build_dir"/genasmx_simulate --out "$srv_tmp/bench" \
  --genome=300000 --contigs=2 --reads=600 --length=1200 --seed=42
"$build_dir"/genasmx_index --ref "$srv_tmp/bench.fa" \
  --out "$srv_tmp/bench.gxi"
"$build_dir"/genasmx_mapd --index "$srv_tmp/bench.gxi" \
  --unix "$srv_tmp/mapd.sock" --workers 4 \
  --stats-json "$srv_tmp/mapd.stats.json" 2>"$srv_tmp/mapd.log" &
mapd_pid=$!
for _ in $(seq 1 200); do
  [[ -S "$srv_tmp/mapd.sock" ]] && break
  sleep 0.05
done
[[ -S "$srv_tmp/mapd.sock" ]] || {
  echo "error: genasmx_mapd did not come up:" >&2
  cat "$srv_tmp/mapd.log" >&2
  exit 1
}
"$build_dir"/genasmx_loadgen --unix "$srv_tmp/mapd.sock" \
  --input "$srv_tmp/bench.reads.fq" --connections 8 \
  --reads-min 1 --reads-max 16 --seed 42 \
  --json "$out_dir/BENCH_server.json"
kill -TERM "$mapd_pid"
wait "$mapd_pid"
mapd_pid=

# Fail on malformed JSON so CI catches emitter regressions.
if command -v python3 >/dev/null 2>&1; then
  for f in "$out_dir"/BENCH_pipeline.json "$out_dir"/BENCH_cpu_aligners.json \
           "$out_dir"/BENCH_server.json; do
    python3 -m json.tool "$f" >/dev/null
  done
  echo "JSON validated: BENCH_pipeline.json BENCH_cpu_aligners.json" \
       "BENCH_server.json"
else
  echo "warning: python3 not found, skipping JSON validation" >&2
fi
