// genasmx_align — command-line long/short read aligner over the unified
// AlignmentEngine; any registered backend is selectable by name.
//
//   genasmx_align <reference.fa> <reads.fa|fq> [options] > out.paf
//
// Options:
//   --backend=NAME         alignment backend (default windowed-improved);
//                          see --list-backends for the registry contents
//   --list-backends        print registered backends and exit
//   --threads=N            worker threads (0=auto)
//   --max-candidates=N     candidates aligned per read (default 4)
//   --window=W --overlap=O window geometry (GenASM backends)
//   --all                  emit every candidate (default: best only)
//
// --aligner=NAME is kept as a deprecated alias of --backend; the legacy
// names map onto registry names (improved -> windowed-improved,
// baseline -> windowed-baseline, edlib -> myers).
//
// Output: PAF with cg:Z: CIGAR tags.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <string>

#include "cli.hpp"
#include "genasmx/engine/engine.hpp"
#include "genasmx/io/fastx.hpp"
#include "genasmx/io/paf.hpp"
#include "genasmx/mapper/mapper.hpp"
#include "genasmx/util/timer.hpp"

namespace {

struct Options {
  std::string reference_path;
  std::string reads_path;
  std::string backend = "windowed-improved";
  std::size_t threads = 0;
  std::size_t max_candidates = 4;
  int window = 64;
  int overlap = 24;
  bool all = false;
  bool list_backends = false;
};

std::string canonicalBackend(std::string name) {
  if (name == "edlib") return "myers";
  return name;
}

/// Legacy --aligner names predate the windowed/global split.
std::string legacyBackend(std::string name) {
  if (name == "improved") return "windowed-improved";
  if (name == "baseline") return "windowed-baseline";
  return canonicalBackend(std::move(name));
}

bool parseArgs(int argc, char** argv, Options& opt) {
  std::size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      return arg.rfind(key, 0) == 0 ? arg.c_str() + n : nullptr;
    };
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (const char* v = val("--backend=")) opt.backend = canonicalBackend(v);
    else if (arg == "--backend") {
      const char* v2 = next();
      if (!v2) return false;
      opt.backend = canonicalBackend(v2);
    }
    else if (const char* va = val("--aligner=")) opt.backend = legacyBackend(va);
    else if (arg == "--list-backends") opt.list_backends = true;
    else if (const char* vt = val("--threads=")) opt.threads = std::strtoull(vt, nullptr, 10);
    else if (const char* vc = val("--max-candidates=")) opt.max_candidates = std::strtoull(vc, nullptr, 10);
    else if (const char* vw = val("--window=")) opt.window = std::atoi(vw);
    else if (const char* vo = val("--overlap=")) opt.overlap = std::atoi(vo);
    else if (arg == "--all") opt.all = true;
    else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    } else if (positional == 0) {
      opt.reference_path = arg;
      ++positional;
    } else if (positional == 1) {
      opt.reads_path = arg;
      ++positional;
    } else {
      return false;
    }
  }
  return opt.list_backends || positional == 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gx;
  cli::ignoreSigpipe();
  Options opt;
  if (!parseArgs(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: genasmx_align <reference.fa> <reads.fa|fq> "
                 "[--backend=NAME] [--list-backends] [--threads=N] "
                 "[--max-candidates=N] [--window=W] [--overlap=O] [--all]\n");
    return 2;
  }
  auto& registry = engine::AlignerRegistry::instance();
  if (opt.list_backends) {
    for (const auto& name : registry.names()) {
      std::printf("%-20s %s\n", name.c_str(),
                  registry.description(name).c_str());
    }
    return 0;
  }
  // Fail fast on a backend typo, before any reference I/O or indexing.
  if (!registry.contains(opt.backend)) {
    std::fprintf(stderr,
                 "error: unknown backend '%s' (see --list-backends)\n",
                 opt.backend.c_str());
    return 2;
  }

  util::Timer timer;
  std::vector<io::FastxRecord> ref_records, reads;
  try {
    ref_records = io::readFastxFile(opt.reference_path);
    reads = io::readFastxFile(opt.reads_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (ref_records.empty()) {
    std::fprintf(stderr, "error: empty reference %s\n",
                 opt.reference_path.c_str());
    return 1;
  }
  // Concatenate contigs (offsets tracked for reporting).
  std::string genome;
  std::vector<std::pair<std::size_t, std::string>> contigs;
  for (const auto& rec : ref_records) {
    contigs.emplace_back(genome.size(), rec.name);
    genome += rec.seq;
  }
  std::fprintf(stderr, "[%.2fs] reference %zu bp (%zu contigs), %zu reads\n",
               timer.seconds(), genome.size(), contigs.size(), reads.size());

  mapper::Mapper mapper{std::string(genome)};
  std::fprintf(stderr, "[%.2fs] index built (%zu minimizers)\n",
               timer.seconds(), mapper.index().size());

  engine::EngineConfig ec;
  ec.backend = opt.backend;
  ec.threads = opt.threads;
  ec.aligner.window.window = opt.window;
  ec.aligner.window.overlap = opt.overlap;
  ec.aligner.ksw.band = 751;  // minimap2's long-read bandwidth regime
  std::unique_ptr<engine::AlignmentEngine> eng;
  try {
    eng = std::make_unique<engine::AlignmentEngine>(ec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::size_t emitted = 0;
  for (const auto& read : reads) {
    const auto candidates = mapper.map(read.seq);
    const std::size_t n =
        std::min<std::size_t>(candidates.size(),
                              opt.all ? opt.max_candidates : 1);
    std::vector<mapper::AlignmentPair> pairs;
    for (std::size_t c = 0; c < n; ++c) {
      mapper::AlignmentPair p;
      p.target = std::string(mapper.candidateText(candidates[c]));
      p.query = candidates[c].reverse
                    ? common::reverseComplement(read.seq)
                    : read.seq;
      pairs.push_back(std::move(p));
    }
    const auto results = eng->alignBatch(pairs);
    for (std::size_t c = 0; c < results.size(); ++c) {
      if (!results[c].ok) continue;
      const auto& cand = candidates[c];
      io::PafRecord paf;
      paf.query_name = read.name;
      paf.query_len = read.seq.size();
      paf.query_begin = 0;
      paf.query_end = read.seq.size();
      paf.reverse = cand.reverse;
      paf.target_name = contigs.size() == 1 ? contigs[0].second : "merged";
      paf.target_len = genome.size();
      paf.target_begin = cand.ref_begin;
      paf.target_end = cand.ref_end;
      paf.mapq = c == 0 ? 60 : 0;
      paf.cigar = results[c].cigar;
      io::finalizeFromCigar(paf);
      io::writePaf(std::cout, paf);
      ++emitted;
    }
  }
  std::fprintf(stderr, "[%.2fs] wrote %zu alignments (%s backend)\n",
               timer.seconds(), emitted, opt.backend.c_str());
  return 0;
}
