// genasmx_align — command-line long/short read aligner built on the
// improved GenASM algorithm.
//
//   genasmx_align <reference.fa> <reads.fa|fq> [options] > out.paf
//
// Options:
//   --aligner=improved|baseline|edlib|ksw   (default improved)
//   --threads=N            worker threads (improved/baseline only; 0=auto)
//   --max-candidates=N     candidates aligned per read (default 4)
//   --window=W --overlap=O window geometry (GenASM aligners)
//   --all                  emit every candidate (default: best only)
//
// Output: PAF with cg:Z: CIGAR tags.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "genasmx/core/batch.hpp"
#include "genasmx/io/fastx.hpp"
#include "genasmx/io/paf.hpp"
#include "genasmx/ksw/ksw_affine.hpp"
#include "genasmx/mapper/mapper.hpp"
#include "genasmx/myers/myers.hpp"
#include "genasmx/util/timer.hpp"

namespace {

struct Options {
  std::string reference_path;
  std::string reads_path;
  std::string aligner = "improved";
  std::size_t threads = 0;
  std::size_t max_candidates = 4;
  int window = 64;
  int overlap = 24;
  bool all = false;
};

bool parseArgs(int argc, char** argv, Options& opt) {
  std::size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      return arg.rfind(key, 0) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = val("--aligner=")) opt.aligner = v;
    else if (const char* v2 = val("--threads=")) opt.threads = std::strtoull(v2, nullptr, 10);
    else if (const char* v3 = val("--max-candidates=")) opt.max_candidates = std::strtoull(v3, nullptr, 10);
    else if (const char* v4 = val("--window=")) opt.window = std::atoi(v4);
    else if (const char* v5 = val("--overlap=")) opt.overlap = std::atoi(v5);
    else if (arg == "--all") opt.all = true;
    else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    } else if (positional == 0) {
      opt.reference_path = arg;
      ++positional;
    } else if (positional == 1) {
      opt.reads_path = arg;
      ++positional;
    } else {
      return false;
    }
  }
  return positional == 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gx;
  Options opt;
  if (!parseArgs(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: genasmx_align <reference.fa> <reads.fa|fq> "
                 "[--aligner=improved|baseline|edlib|ksw] [--threads=N] "
                 "[--max-candidates=N] [--window=W] [--overlap=O] [--all]\n");
    return 2;
  }

  util::Timer timer;
  const auto ref_records = io::readFastxFile(opt.reference_path);
  if (ref_records.empty()) {
    std::fprintf(stderr, "error: empty reference %s\n",
                 opt.reference_path.c_str());
    return 1;
  }
  // Concatenate contigs (offsets tracked for reporting).
  std::string genome;
  std::vector<std::pair<std::size_t, std::string>> contigs;
  for (const auto& rec : ref_records) {
    contigs.emplace_back(genome.size(), rec.name);
    genome += rec.seq;
  }
  const auto reads = io::readFastxFile(opt.reads_path);
  std::fprintf(stderr, "[%.2fs] reference %zu bp (%zu contigs), %zu reads\n",
               timer.seconds(), genome.size(), contigs.size(), reads.size());

  mapper::Mapper mapper{std::string(genome)};
  std::fprintf(stderr, "[%.2fs] index built (%zu minimizers)\n",
               timer.seconds(), mapper.index().size());

  core::BatchConfig batch;
  batch.threads = opt.threads;
  batch.window.window = opt.window;
  batch.window.overlap = opt.overlap;
  batch.baseline = opt.aligner == "baseline";
  const bool use_genasm =
      opt.aligner == "improved" || opt.aligner == "baseline";
  myers::MyersAligner edlib_class;
  ksw::KswAligner ksw_class(ksw::KswConfig{{}, 751});

  std::size_t emitted = 0;
  for (const auto& read : reads) {
    const auto candidates = mapper.map(read.seq);
    const std::size_t n =
        std::min<std::size_t>(candidates.size(),
                              opt.all ? opt.max_candidates : 1);
    std::vector<mapper::AlignmentPair> pairs;
    for (std::size_t c = 0; c < n; ++c) {
      mapper::AlignmentPair p;
      p.target = std::string(mapper.candidateText(candidates[c]));
      p.query = candidates[c].reverse
                    ? common::reverseComplement(read.seq)
                    : read.seq;
      pairs.push_back(std::move(p));
    }
    std::vector<common::AlignmentResult> results;
    if (use_genasm) {
      results = core::alignBatch(pairs, batch);
    } else {
      for (const auto& p : pairs) {
        results.push_back(opt.aligner == "edlib"
                              ? edlib_class.align(p.target, p.query)
                              : ksw_class.align(p.target, p.query));
      }
    }
    for (std::size_t c = 0; c < results.size(); ++c) {
      if (!results[c].ok) continue;
      const auto& cand = candidates[c];
      io::PafRecord paf;
      paf.query_name = read.name;
      paf.query_len = read.seq.size();
      paf.query_begin = 0;
      paf.query_end = read.seq.size();
      paf.reverse = cand.reverse;
      paf.target_name = contigs.size() == 1 ? contigs[0].second : "merged";
      paf.target_len = genome.size();
      paf.target_begin = cand.ref_begin;
      paf.target_end = cand.ref_end;
      paf.mapq = c == 0 ? 60 : 0;
      paf.cigar = results[c].cigar;
      io::finalizeFromCigar(paf);
      io::writePaf(std::cout, paf);
      ++emitted;
    }
  }
  std::fprintf(stderr, "[%.2fs] wrote %zu alignments (%s aligner)\n",
               timer.seconds(), emitted, opt.aligner.c_str());
  return 0;
}
