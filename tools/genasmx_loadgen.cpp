// genasmx_loadgen — seeded concurrent load generator for genasmx_mapd.
// Splits an input FASTA/FASTQ round-robin across N client connections
// (connection c gets records c, c+N, c+2N, ... in order), chops each
// share into requests of seeded-random size, and drives them
// request/reply with client-side latency histograms. The same seed
// replays the same request stream byte for byte, so benchmark numbers
// and fault reproductions are deterministic.
//
//   genasmx_loadgen (--unix PATH | --port N) --input reads.fq [options]
//
// Options:
//   --connections N     concurrent client connections (default 8)
//   --reads-min N       request size bounds, in reads (default 1..16,
//   --reads-max N       seeded-uniform per request)
//   --deadline-ms D     per-request deadline (0 = none)
//   --seed S            RNG seed (default 42)
//   --retries N         max resends after a retryable shed (default 3,
//                       linear backoff)
//   --abort-prob P      before a request, with probability P send a torn
//                       frame (header promising more bytes than follow)
//                       and reconnect — client-side fault pressure
//   --paf-out PREFIX    write PREFIX.<c>.paf per connection: OK bodies
//                       concatenated in send order (byte-identity checks)
//   --json FILE         write the run summary (latency quantiles,
//                       throughput, shed counters) as one JSON object
//
// Exit codes: 0 all requests eventually succeeded, 1 any request failed
// terminally (non-retryable error, retries exhausted, wire failure), 2
// usage.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "cli.hpp"
#include "genasmx/io/fastx.hpp"
#include "genasmx/server/client.hpp"
#include "genasmx/server/histogram.hpp"

namespace {

struct Options {
  std::string unix_path;
  int tcp_port = -1;
  std::string input_path;
  std::size_t connections = 8;
  std::size_t reads_min = 1;
  std::size_t reads_max = 16;
  std::size_t deadline_ms = 0;
  std::size_t seed = 42;
  std::size_t retries = 3;
  double abort_prob = 0.0;
  std::string paf_out_prefix;
  std::string json_path;
};

bool parseArgs(int argc, char** argv, Options& opt) {
  gx::cli::Parser cli;
  cli.option("--unix", opt.unix_path);
  cli.option("--port", opt.tcp_port);
  cli.option("--input", opt.input_path);
  cli.option("--connections", opt.connections);
  cli.option("--reads-min", opt.reads_min);
  cli.option("--reads-max", opt.reads_max);
  cli.option("--deadline-ms", opt.deadline_ms);
  cli.option("--seed", opt.seed);
  cli.option("--retries", opt.retries);
  cli.option("--abort-prob", opt.abort_prob);
  cli.option("--paf-out", opt.paf_out_prefix);
  cli.option("--json", opt.json_path);
  if (!cli.parse(argc, argv)) return false;
  if (opt.input_path.empty()) {
    std::fprintf(stderr, "--input is required\n");
    return false;
  }
  if (opt.unix_path.empty() && opt.tcp_port < 0) {
    std::fprintf(stderr, "need a target: --unix PATH or --port N\n");
    return false;
  }
  if (opt.connections == 0) opt.connections = 1;
  if (opt.reads_min == 0) opt.reads_min = 1;
  if (opt.reads_max < opt.reads_min) opt.reads_max = opt.reads_min;
  if (opt.abort_prob < 0.0 || opt.abort_prob > 1.0) {
    std::fprintf(stderr, "--abort-prob must be in [0, 1]\n");
    return false;
  }
  return true;
}

/// Serialize a record back to FASTQ/FASTA text (qual present selects @).
std::string toFastx(const gx::io::FastxRecord& rec) {
  std::string out;
  out += rec.qual.empty() ? '>' : '@';
  out += rec.name;
  if (!rec.comment.empty()) {
    out += ' ';
    out += rec.comment;
  }
  out += '\n';
  out += rec.seq;
  out += '\n';
  if (!rec.qual.empty()) {
    out += "+\n";
    out += rec.qual;
    out += '\n';
  }
  return out;
}

struct ConnStats {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed_queue_full = 0;  ///< retryable sheds absorbed
  std::uint64_t shed_deadline = 0;
  std::uint64_t failed = 0;  ///< terminal failures (exit 1)
  std::uint64_t torn_sent = 0;
  std::uint64_t reads = 0;
  std::uint64_t records = 0;
  gx::server::LatencyHistogram latency;  ///< client-side, usec
  std::string paf;  ///< OK bodies in send order (--paf-out)
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gx;
  cli::ignoreSigpipe();
  Options opt;
  if (!parseArgs(argc, argv, opt)) {
    std::fprintf(
        stderr,
        "usage: genasmx_loadgen (--unix PATH | --port N) --input reads.fq "
        "[--connections N] [--reads-min N] [--reads-max N] [--deadline-ms D] "
        "[--seed S] [--retries N] [--abort-prob P] [--paf-out PREFIX] "
        "[--json FILE]\n");
    return 2;
  }

  std::vector<io::FastxRecord> records;
  try {
    records = io::readFastxFile(opt.input_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (records.empty()) {
    std::fprintf(stderr, "error: no records in %s\n", opt.input_path.c_str());
    return 1;
  }

  // Round-robin split, then pre-render each connection's request stream
  // so the timed loop does nothing but socket I/O.
  const std::size_t conns = std::min(opt.connections, records.size());
  std::vector<std::vector<std::string>> requests(conns);  // FASTQ payloads
  std::vector<std::vector<std::uint64_t>> request_reads(conns);
  for (std::size_t c = 0; c < conns; ++c) {
    std::mt19937_64 rng(opt.seed * 1000003ULL + c);
    std::uniform_int_distribution<std::size_t> size_dist(opt.reads_min,
                                                         opt.reads_max);
    std::string payload;
    std::uint64_t in_payload = 0;
    std::size_t target = size_dist(rng);
    for (std::size_t i = c; i < records.size(); i += conns) {
      payload += toFastx(records[i]);
      if (++in_payload >= target) {
        requests[c].push_back(std::move(payload));
        request_reads[c].push_back(in_payload);
        payload.clear();
        in_payload = 0;
        target = size_dist(rng);
      }
    }
    if (in_payload > 0) {
      requests[c].push_back(std::move(payload));
      request_reads[c].push_back(in_payload);
    }
  }

  std::vector<ConnStats> stats(conns);
  std::atomic<bool> any_failed{false};
  const auto connect = [&](server::MapClient& client) {
    return opt.unix_path.empty() ? client.connectTcp(opt.tcp_port)
                                 : client.connectUnix(opt.unix_path);
  };

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (std::size_t c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      ConnStats& cs = stats[c];
      std::mt19937_64 fault_rng(opt.seed * 7777777ULL + c);
      std::uniform_real_distribution<double> coin(0.0, 1.0);
      server::MapClient client;
      common::Status st = connect(client);
      if (!st.ok()) {
        std::fprintf(stderr, "conn %zu: %s\n", c, st.message().c_str());
        any_failed.store(true);
        return;
      }
      for (std::size_t r = 0; r < requests[c].size(); ++r) {
        if (opt.abort_prob > 0.0 && coin(fault_rng) < opt.abort_prob) {
          // Torn frame: promise the payload, send half, vanish. The
          // server must absorb it; we reconnect and continue.
          const std::string& p = requests[c][r];
          std::string torn_id = "torn-";
          torn_id += std::to_string(c);
          client.abortMidFrame(torn_id, p.size(),
                               std::string_view(p).substr(0, p.size() / 2));
          ++cs.torn_sent;
          st = connect(client);
          if (!st.ok()) {
            std::fprintf(stderr, "conn %zu reconnect: %s\n", c,
                         st.message().c_str());
            any_failed.store(true);
            return;
          }
        }
        std::string id = "c";
        id += std::to_string(c);
        id += "-r";
        id += std::to_string(r);
        bool done = false;
        for (std::size_t attempt = 0; attempt <= opt.retries && !done;
             ++attempt) {
          if (attempt > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10 * attempt));
          }
          server::ResponseHeader reply;
          std::string body;
          ++cs.requests;
          const auto t0 = std::chrono::steady_clock::now();
          st = client.map(id, requests[c][r], opt.deadline_ms, reply, body);
          const auto usec =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0);
          if (!st.ok()) {
            // Wire-level failure (server shed this connection?):
            // reconnect once per attempt, then retry the request.
            client.close();
            const common::Status rc = connect(client);
            if (!rc.ok()) {
              std::fprintf(stderr, "conn %zu: %s\n", c, st.message().c_str());
              any_failed.store(true);
              return;
            }
            continue;
          }
          if (reply.ok) {
            ++cs.ok;
            cs.reads += reply.reads;
            cs.records += reply.records;
            cs.latency.record(static_cast<std::uint64_t>(usec.count()));
            if (!opt.paf_out_prefix.empty()) cs.paf += body;
            done = true;
          } else if (reply.retry) {
            if (reply.reason == "deadline") {
              ++cs.shed_deadline;
            } else {
              ++cs.shed_queue_full;
            }
          } else {
            std::fprintf(stderr, "conn %zu request %s: %s\n", c, id.c_str(),
                         reply.msg.c_str());
            ++cs.failed;
            any_failed.store(true);
            done = true;
          }
        }
        if (!done && cs.failed == 0) {
          ++cs.failed;  // retries exhausted
          any_failed.store(true);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

  ConnStats total;
  for (const ConnStats& cs : stats) {
    total.requests += cs.requests;
    total.ok += cs.ok;
    total.shed_queue_full += cs.shed_queue_full;
    total.shed_deadline += cs.shed_deadline;
    total.failed += cs.failed;
    total.torn_sent += cs.torn_sent;
    total.reads += cs.reads;
    total.records += cs.records;
    total.latency.merge(cs.latency);
  }

  if (!opt.paf_out_prefix.empty()) {
    for (std::size_t c = 0; c < conns; ++c) {
      const std::string path =
          opt.paf_out_prefix + "." + std::to_string(c) + ".paf";
      std::ofstream out(path);
      out << stats[c].paf;
      out.close();
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
        return 1;
      }
    }
  }

  std::fprintf(stderr,
               "[loadgen] %zu conns, %llu requests (%llu ok, %llu shed, "
               "%llu failed), %llu reads -> %llu records in %.2fs "
               "(%.1f reads/s)\n",
               conns, static_cast<unsigned long long>(total.requests),
               static_cast<unsigned long long>(total.ok),
               static_cast<unsigned long long>(total.shed_queue_full +
                                               total.shed_deadline),
               static_cast<unsigned long long>(total.failed),
               static_cast<unsigned long long>(total.reads),
               static_cast<unsigned long long>(total.records), wall_s,
               wall_s > 0 ? static_cast<double>(total.reads) / wall_s : 0.0);
  std::fprintf(stderr,
               "[loadgen] latency usec: p50=%llu p90=%llu p99=%llu max=%llu\n",
               static_cast<unsigned long long>(total.latency.quantile(0.5)),
               static_cast<unsigned long long>(total.latency.quantile(0.9)),
               static_cast<unsigned long long>(total.latency.quantile(0.99)),
               static_cast<unsigned long long>(total.latency.max()));

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    out << "{\n";
    out << "  \"connections\": " << conns << ",\n";
    out << "  \"seed\": " << opt.seed << ",\n";
    out << "  \"deadline_ms\": " << opt.deadline_ms << ",\n";
    out << "  \"requests\": {\"sent\": " << total.requests
        << ", \"ok\": " << total.ok
        << ", \"shed_queue_full\": " << total.shed_queue_full
        << ", \"shed_deadline\": " << total.shed_deadline
        << ", \"failed\": " << total.failed
        << ", \"torn_sent\": " << total.torn_sent << "},\n";
    out << "  \"reads\": " << total.reads << ",\n";
    out << "  \"records\": " << total.records << ",\n";
    out << "  \"latency_usec\": {\"count\": " << total.latency.count()
        << ", \"p50\": " << total.latency.quantile(0.50)
        << ", \"p90\": " << total.latency.quantile(0.90)
        << ", \"p99\": " << total.latency.quantile(0.99)
        << ", \"max\": " << total.latency.max() << "},\n";
    out << "  \"wall_seconds\": " << wall_s << ",\n";
    out << "  \"reads_per_sec\": "
        << (wall_s > 0 ? static_cast<double>(total.reads) / wall_s : 0.0)
        << ",\n";
    out << "  \"requests_per_sec\": "
        << (wall_s > 0 ? static_cast<double>(total.ok) / wall_s : 0.0)
        << "\n}\n";
    out.close();
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.json_path.c_str());
      return 1;
    }
  }
  return any_failed.load() ? 1 : 0;
}
