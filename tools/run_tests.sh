#!/usr/bin/env bash
# Convenience wrapper for the tier-1 verify: configure, build, ctest.
#
#   tools/run_tests.sh [--asan] [build-dir]
#
# --asan configures a Debug + AddressSanitizer/UBSan build (what the CI
# sanitizer matrix legs run), defaulting the build dir to build-asan so
# it never collides with a plain build tree.
#
# Extra CMake arguments go through GENASMX_CMAKE_ARGS, e.g.
#   GENASMX_CMAKE_ARGS="-G Ninja -DGENASMX_WERROR=ON" tools/run_tests.sh

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

asan=0
build_dir=""
for arg in "$@"; do
  case "${arg}" in
    --asan) asan=1 ;;
    --help|-h)
      echo "usage: tools/run_tests.sh [--asan] [build-dir]"
      exit 0
      ;;
    -*)
      echo "unknown option: ${arg}" >&2
      exit 2
      ;;
    *) build_dir="${arg}" ;;
  esac
done

extra_cmake_args=()
if [[ "${asan}" == 1 ]]; then
  build_dir="${build_dir:-${repo_root}/build-asan}"
  extra_cmake_args+=(-DCMAKE_BUILD_TYPE=Debug -DGENASMX_SANITIZE=ON)
  # Fail on any sanitizer report, exactly like CI.
  export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:halt_on_error=1:detect_leaks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
else
  build_dir="${build_dir:-${repo_root}/build}"
fi

# shellcheck disable=SC2086  # GENASMX_CMAKE_ARGS is intentionally split
cmake -B "${build_dir}" -S "${repo_root}" "${extra_cmake_args[@]}" \
  ${GENASMX_CMAKE_ARGS:-}
cmake --build "${build_dir}" -j "$(nproc)"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
