#!/usr/bin/env bash
# Convenience wrapper for the tier-1 verify: configure, build, ctest.
#
#   tools/run_tests.sh [build-dir]
#
# Extra CMake arguments go through GENASMX_CMAKE_ARGS, e.g.
#   GENASMX_CMAKE_ARGS="-G Ninja -DGENASMX_WERROR=ON" tools/run_tests.sh

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

# shellcheck disable=SC2086  # GENASMX_CMAKE_ARGS is intentionally split
cmake -B "${build_dir}" -S "${repo_root}" ${GENASMX_CMAKE_ARGS:-}
cmake --build "${build_dir}" -j "$(nproc)"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
