// genasmx_mapd — the resident mapping server: mmap a prebuilt index
// once, then serve many concurrent clients over a Unix-domain or TCP
// (127.0.0.1) socket speaking the protocol in server/protocol.hpp
// (FASTQ in, PAF with cg:Z: CIGARs out). Replies are byte-identical to
// `genasmx_map --index=` for any worker count, client interleaving, or
// request batching — the determinism contract extends to serving.
//
//   genasmx_mapd --index <ref.gxi> --unix <path> [options]
//   genasmx_mapd --index <ref.gxi> --port 0     [options]
//
// Options (--opt VALUE and --opt=VALUE are both accepted):
//   --index FILE           prebuilt index from genasmx_index (required)
//   --unix PATH            Unix-domain listener path
//   --port N               TCP listener on 127.0.0.1:N (0 = ephemeral;
//                          the bound port is printed on stderr)
//   --workers N            mapping worker threads (default 1)
//   --threads N            engine pool threads (0=auto), shared by all
//                          workers
//   --backend NAME         alignment backend (default windowed-improved)
//   --window W --overlap O window geometry (GenASM backends)
//   --max-candidates N     candidate windows aligned per read (default 4)
//   --primary-only         suppress secondary (mapq 0) records
//   --single-phase         disable the two-phase fast path
//   --max-queue N          bounded admission queue (default 64); beyond
//                          it requests are shed with a retryable
//                          queue-full reply
//   --coalesce-requests N  cross-request batch coalescing: at most N
//                          requests mapped as one pipeline batch
//   --coalesce-bytes N     ... and at most N payload bytes per group
//   --max-request-bytes N  reject larger MAP requests (too-large reply)
//   --write-timeout-ms N   shed a connection whose reply write blocks
//                          longer than this (slow client)
//   --on-bad-record MODE   abort | skip (default) | warn — the server
//                          default degrades malformed records per
//                          request instead of failing it
//   --stats-json FILE      write the aggregate stats JSON on exit (the
//                          same object the STATS verb returns live)
//   --no-verify            skip the index payload checksum at load
//   --fault SPEC           deterministic fault injection (testing), e.g.
//                          close@conn:2, stall@conn:1, torn@conn:0;
//                          GENASMX_FAULT env is the no-flag equivalent
//
// SIGTERM/SIGINT trigger a graceful drain: stop accepting, finish every
// in-flight request, flush --stats-json, exit 0.
//
// Exit codes: 0 clean drain, 1 runtime failure, 2 usage.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <memory>
#include <string>

#include "cli.hpp"
#include "genasmx/engine/registry.hpp"
#include "genasmx/io/fastx.hpp"
#include "genasmx/io/fault.hpp"
#include "genasmx/mapper/index_io.hpp"
#include "genasmx/server/server.hpp"

namespace {

struct Options {
  std::string index_path;
  std::string unix_path;
  int tcp_port = -1;
  std::size_t workers = 1;
  std::size_t threads = 0;
  std::string backend = "windowed-improved";
  int window = 64;
  int overlap = 24;
  std::size_t max_candidates = 4;
  bool primary_only = false;
  bool single_phase = false;
  std::size_t max_queue = 64;
  std::size_t coalesce_requests = 8;
  std::size_t coalesce_bytes = std::size_t{1} << 20;
  std::size_t max_request_bytes = std::size_t{64} << 20;
  std::size_t write_timeout_ms = 5000;
  std::string on_bad_record = "skip";
  std::string stats_json_path;
  bool no_verify = false;
  std::string fault;
};

bool parseArgs(int argc, char** argv, Options& opt) {
  gx::cli::Parser cli;
  cli.option("--index", opt.index_path);
  cli.option("--unix", opt.unix_path);
  cli.option("--port", opt.tcp_port);
  cli.option("--workers", opt.workers);
  cli.option("--threads", opt.threads);
  cli.option("--backend", opt.backend);
  cli.option("--window", opt.window);
  cli.option("--overlap", opt.overlap);
  cli.option("--max-candidates", opt.max_candidates);
  cli.flag("--primary-only", opt.primary_only);
  cli.flag("--single-phase", opt.single_phase);
  cli.option("--max-queue", opt.max_queue);
  cli.option("--coalesce-requests", opt.coalesce_requests);
  cli.option("--coalesce-bytes", opt.coalesce_bytes);
  cli.option("--max-request-bytes", opt.max_request_bytes);
  cli.option("--write-timeout-ms", opt.write_timeout_ms);
  cli.option("--on-bad-record", opt.on_bad_record);
  cli.option("--stats-json", opt.stats_json_path);
  cli.flag("--no-verify", opt.no_verify);
  cli.option("--fault", opt.fault);
  if (!cli.parse(argc, argv)) return false;
  if (opt.index_path.empty()) {
    std::fprintf(stderr, "--index is required\n");
    return false;
  }
  if (opt.unix_path.empty() && opt.tcp_port < 0) {
    std::fprintf(stderr, "need a listener: --unix PATH and/or --port N\n");
    return false;
  }
  if (opt.on_bad_record != "abort" && opt.on_bad_record != "skip" &&
      opt.on_bad_record != "warn") {
    std::fprintf(stderr,
                 "--on-bad-record must be abort, skip, or warn (got '%s')\n",
                 opt.on_bad_record.c_str());
    return false;
  }
  if (opt.workers == 0) opt.workers = 1;
  return true;
}

gx::server::MapServer* g_server = nullptr;

extern "C" void handleDrainSignal(int) {
  // Async-signal-safe: requestDrain is a single atomic store; the accept
  // loop observes it within one poll tick.
  if (g_server != nullptr) g_server->requestDrain();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gx;
  cli::ignoreSigpipe();
  Options opt;
  if (!parseArgs(argc, argv, opt)) {
    std::fprintf(
        stderr,
        "usage: genasmx_mapd --index <ref.gxi> (--unix PATH | --port N) "
        "[--workers N] [--threads N] [--backend NAME] [--window W] "
        "[--overlap O] [--max-candidates N] [--primary-only] "
        "[--single-phase] [--max-queue N] [--coalesce-requests N] "
        "[--coalesce-bytes N] [--max-request-bytes N] "
        "[--write-timeout-ms N] [--on-bad-record abort|skip|warn] "
        "[--stats-json FILE] [--no-verify] [--fault SPEC]\n");
    return 2;
  }
  auto& registry = engine::AlignerRegistry::instance();
  if (!registry.contains(opt.backend)) {
    std::fprintf(stderr, "error: unknown backend '%s'\n", opt.backend.c_str());
    return 2;
  }

  // Fault injection sits above index loading so every subsystem —
  // including the connection-site clauses the server consults at accept
  // time — sees the plan.
  std::string fault_spec = opt.fault;
  if (fault_spec.empty()) {
    if (const char* env = std::getenv("GENASMX_FAULT")) fault_spec = env;
  }
  io::FaultPlan fault_plan;
  if (!fault_spec.empty()) {
    try {
      fault_plan = io::FaultPlan::parse(fault_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  const io::ScopedFaultInjection fault_guard(std::move(fault_plan));

  server::ServerConfig cfg;
  cfg.unix_path = opt.unix_path;
  cfg.tcp_port = opt.tcp_port;
  cfg.workers = opt.workers;
  cfg.max_queue = opt.max_queue;
  cfg.coalesce_requests = opt.coalesce_requests;
  cfg.coalesce_bytes = opt.coalesce_bytes;
  cfg.max_request_bytes = opt.max_request_bytes;
  cfg.write_timeout_ms = static_cast<int>(opt.write_timeout_ms);
  // Pipeline defaults MUST mirror genasmx_map's: they are what make the
  // server's PAF byte-identical to the batch tool's.
  cfg.pipeline.engine.backend = opt.backend;
  cfg.pipeline.engine.threads = opt.threads;
  cfg.pipeline.engine.aligner.window.window = opt.window;
  cfg.pipeline.engine.aligner.window.overlap = opt.overlap;
  cfg.pipeline.engine.aligner.ksw.band = 751;
  cfg.pipeline.max_candidates = opt.max_candidates;
  cfg.pipeline.emit_secondary = !opt.primary_only;
  cfg.pipeline.two_phase = !opt.single_phase;
  cfg.pipeline.on_bad_record = opt.on_bad_record == "abort"
                                   ? io::OnBadRecord::kAbort
                               : opt.on_bad_record == "warn"
                                   ? io::OnBadRecord::kWarn
                                   : io::OnBadRecord::kSkip;

  try {
    mapper::MappedIndex::Options mopt;
    mopt.verify_payload = !opt.no_verify;
    const mapper::MappedIndex mapped(opt.index_path, mopt);
    server::MapServer server(mapped.view(), cfg);
    server.start();
    std::fprintf(stderr, "[mapd] index %s mapped (%zu bytes)\n",
                 opt.index_path.c_str(), mapped.fileBytes());
    if (!opt.unix_path.empty()) {
      std::fprintf(stderr, "[mapd] listening unix=%s\n",
                   opt.unix_path.c_str());
    }
    if (server.tcpPort() >= 0) {
      std::fprintf(stderr, "[mapd] listening tcp=127.0.0.1:%d\n",
                   server.tcpPort());
    }
    std::fprintf(stderr,
                 "[mapd] %zu workers, max_queue=%zu, coalesce=%zu req / %zu "
                 "bytes (SIGTERM drains)\n",
                 cfg.workers, cfg.max_queue, cfg.coalesce_requests,
                 cfg.coalesce_bytes);

    g_server = &server;
    std::signal(SIGTERM, handleDrainSignal);
    std::signal(SIGINT, handleDrainSignal);

    server.serve();  // returns after a graceful drain

    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    g_server = nullptr;

    const std::string json = server.statsJson();
    if (!opt.stats_json_path.empty()) {
      std::ofstream out(opt.stats_json_path);
      out << json;
      out.close();
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     opt.stats_json_path.c_str());
        return 1;
      }
    }
    const server::ServerStats stats = server.statsSnapshot();
    std::fprintf(stderr,
                 "[mapd] drained: %llu connections, %llu requests (%llu ok, "
                 "%llu shed), %llu reads -> %llu records\n",
                 static_cast<unsigned long long>(stats.connections_accepted),
                 static_cast<unsigned long long>(stats.requests),
                 static_cast<unsigned long long>(stats.ok_replies),
                 static_cast<unsigned long long>(stats.shed_queue_full +
                                                 stats.shed_deadline),
                 static_cast<unsigned long long>(stats.reads),
                 static_cast<unsigned long long>(stats.records));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
