#pragma once
// Shared command-line parsing for the genasmx_* tools, so every tool
// speaks the same dialect: --key=VALUE and --key VALUE are both
// accepted, numeric values parse strictly (no signs, no trailing junk —
// typos die at the usage line, not deep inside the pipeline), unknown
// options are errors, and positionals fill declared slots in order.
//
// Usage: declare options against the tool's variables, then parse.
//
//   gx::cli::Parser cli;
//   cli.option("--ref", opt.ref_path);
//   cli.option("--threads", opt.threads);
//   cli.flag("--primary-only", opt.primary_only);
//   cli.positional(opt.reference_path);   // compat slot
//   if (!cli.parse(argc, argv)) { ...print usage...; return 2; }

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace gx::cli {

/// Ignore SIGPIPE process-wide. Every tool main() calls this first:
/// with the default disposition, `genasmx_map ... | head` kills the
/// mapper by signal the moment head exits, with no diagnostic and an
/// exit status tests cannot reason about. Ignored, the write fails with
/// EPIPE, the stream goes bad, and the existing sink-state checks turn
/// it into a one-line io-fatal error and a clean non-zero exit.
inline void ignoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }

/// Strict non-negative integer parse: rejects signs, trailing junk, and
/// out-of-range values.
inline bool parseCount(const char* s, std::size_t& out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = static_cast<std::size_t>(v);
  return true;
}

inline bool parseCount(const char* s, int& out) {
  std::size_t v = 0;
  if (!parseCount(s, v) || v > 1'000'000) return false;
  out = static_cast<int>(v);
  return true;
}

/// Strict double parse (whole string must be consumed).
inline bool parseReal(const char* s, double& out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = v;
  return true;
}

class Parser {
 public:
  void flag(const char* key, bool& out) {
    opts_.push_back({key, Kind::Flag, &out});
  }
  void option(const char* key, std::string& out) {
    opts_.push_back({key, Kind::String, &out});
  }
  void option(const char* key, std::size_t& out) {
    opts_.push_back({key, Kind::Count, &out});
  }
  void option(const char* key, int& out) {
    opts_.push_back({key, Kind::Int, &out});
  }
  void option(const char* key, double& out) {
    opts_.push_back({key, Kind::Real, &out});
  }
  /// Declare a positional slot; slots fill with non-option arguments in
  /// declaration order. Undeclared extras are errors, unfilled slots
  /// stay untouched (callers enforce their own required-argument rules).
  void positional(std::string& out) { pos_.push_back(&out); }

  /// Parse argv. On error, prints a one-line diagnostic to stderr and
  /// returns false (the caller prints its usage string).
  [[nodiscard]] bool parse(int argc, char** argv) {
    std::size_t next_pos = 0;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
        const Opt* opt = nullptr;
        const char* value = nullptr;
        for (const Opt& o : opts_) {
          const std::size_t n = std::strlen(o.key);
          if (arg.compare(0, n, o.key) != 0) continue;
          if (arg.size() == n) {
            opt = &o;
            break;
          }
          if (arg[n] == '=') {
            opt = &o;
            value = arg.c_str() + n + 1;
            break;
          }
        }
        if (opt == nullptr) {
          std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
          return false;
        }
        if (opt->kind == Kind::Flag) {
          if (value != nullptr) {
            std::fprintf(stderr, "option %s takes no value\n", opt->key);
            return false;
          }
          *static_cast<bool*>(opt->target) = true;
          continue;
        }
        if (value == nullptr) {
          if (i + 1 >= argc || argv[i + 1][0] == '-') {
            std::fprintf(stderr, "option %s requires a value\n", opt->key);
            return false;
          }
          value = argv[++i];
        }
        if (!store(*opt, value)) {
          std::fprintf(stderr, "option %s: invalid value '%s'\n", opt->key,
                       value);
          return false;
        }
        continue;
      }
      if (!arg.empty() && arg[0] == '-' && arg != "-") {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        return false;
      }
      if (next_pos >= pos_.size()) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        return false;
      }
      *pos_[next_pos++] = arg;
    }
    return true;
  }

 private:
  enum class Kind { Flag, String, Count, Int, Real };
  struct Opt {
    const char* key;
    Kind kind;
    void* target;
  };

  static bool store(const Opt& opt, const char* value) {
    switch (opt.kind) {
      case Kind::String:
        *static_cast<std::string*>(opt.target) = value;
        return true;
      case Kind::Count:
        return parseCount(value, *static_cast<std::size_t*>(opt.target));
      case Kind::Int:
        return parseCount(value, *static_cast<int*>(opt.target));
      case Kind::Real:
        return parseReal(value, *static_cast<double*>(opt.target));
      case Kind::Flag:
        return false;  // handled before store()
    }
    return false;
  }

  std::vector<Opt> opts_;
  std::vector<std::string*> pos_;
};

}  // namespace gx::cli
