// genasmx_index — build a reference's minimizer index once and persist
// it (reference sequence included) as a versioned, checksummed .gxi
// file, so every later `genasmx_map --index=ref.gxi` run mmaps it in
// milliseconds instead of re-parsing the FASTA and rebuilding the index.
//
//   genasmx_index --ref <reference.fa> --out <ref.gxi> [options]
//   genasmx_index <reference.fa> <ref.gxi>                 (compat)
//
// Options (--opt VALUE and --opt=VALUE are both accepted):
//   --ref FILE      reference FASTA
//   --out FILE      output index file (convention: .gxi)
//   --k N           minimizer k-mer length (default 15)
//   --w N           minimizer window (default 10)
//   --max-occ N     occurrence cap / repeat masking (default 64)
//   --threads N     index-build worker threads (0=auto)
//
// The build is the same parallel per-contig build genasmx_map runs
// in-memory (bit-identical to the serial build), so mapping from the
// file and mapping from a fresh build produce byte-identical PAF.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "cli.hpp"
#include "genasmx/io/fastx.hpp"
#include "genasmx/mapper/index.hpp"
#include "genasmx/mapper/index_io.hpp"
#include "genasmx/refmodel/reference.hpp"
#include "genasmx/util/thread_pool.hpp"
#include "genasmx/util/timer.hpp"

namespace {

struct Options {
  std::string ref_path;
  std::string out_path;
  int k = 15;
  int w = 10;
  int max_occ = 64;
  std::size_t threads = 0;
};

bool parseArgs(int argc, char** argv, Options& opt) {
  std::string pos_ref, pos_out;
  gx::cli::Parser cli;
  cli.option("--ref", opt.ref_path);
  cli.option("--out", opt.out_path);
  cli.option("--k", opt.k);
  cli.option("--w", opt.w);
  cli.option("--max-occ", opt.max_occ);
  cli.option("--threads", opt.threads);
  cli.positional(pos_ref);
  cli.positional(pos_out);
  if (!cli.parse(argc, argv)) return false;
  if (opt.ref_path.empty() && !pos_ref.empty()) opt.ref_path = pos_ref;
  if (opt.out_path.empty() && !pos_out.empty()) opt.out_path = pos_out;
  if (opt.k <= 0 || opt.w <= 0 || opt.max_occ <= 0) {
    std::fprintf(stderr, "--k, --w and --max-occ must be positive\n");
    return false;
  }
  return !opt.ref_path.empty() && !opt.out_path.empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gx;
  cli::ignoreSigpipe();
  Options opt;
  if (!parseArgs(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: genasmx_index --ref <reference.fa> --out <ref.gxi> "
                 "[--k N] [--w N] [--max-occ N] [--threads N]\n"
                 "       genasmx_index <reference.fa> <ref.gxi> [options]\n");
    return 2;
  }

  util::Timer timer;
  refmodel::Reference reference;
  try {
    const auto records = io::readFastxFile(opt.ref_path);
    if (records.empty()) {
      std::fprintf(stderr, "error: empty reference %s\n", opt.ref_path.c_str());
      return 1;
    }
    reference = refmodel::referenceFromFastx(records);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "[%.2fs] reference %zu bp (%u contigs)\n",
               timer.seconds(), reference.size(), reference.contigCount());

  mapper::MinimizerIndex index;
  util::Timer build_timer;
  try {
    util::ThreadPool pool(opt.threads);
    index.build(reference, opt.k, opt.w, opt.max_occ, &pool);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const double build_s = build_timer.seconds();
  std::fprintf(stderr,
               "[%.2fs] index built: %zu minimizers (%zu distinct keys), "
               "k=%d w=%d max-occ=%d\n",
               timer.seconds(), index.size(), index.distinctKeys(), opt.k,
               opt.w, opt.max_occ);

  util::Timer write_timer;
  try {
    mapper::writeIndexFile(opt.out_path, index, reference);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const double write_s = write_timer.seconds();

  // Reopen what we just wrote: catches I/O bit-rot at build time, when
  // rebuilding is cheap, and prints the cold-start the file buys.
  util::Timer load_timer;
  try {
    const mapper::MappedIndex mapped(opt.out_path);
    if (mapped.view().size() != index.size() ||
        mapped.reference().size() != reference.size()) {
      std::fprintf(stderr, "error: %s readback mismatch\n",
                   opt.out_path.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "[%.2fs] wrote %s (%zu bytes) in %.2fs; verified load "
                 "%.3fs vs %.2fs build\n",
                 timer.seconds(), opt.out_path.c_str(), mapped.fileBytes(),
                 write_s, load_timer.seconds(), build_s);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
