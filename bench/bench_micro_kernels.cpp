// E9 — Microbenchmarks of the bit-parallel kernels (google-benchmark).
//
// Nanosecond-scale costs of the primitives every experiment above is
// built from: bitvector ops, pattern-mask construction, one DC window
// solve (baseline vs improved, by window size), Myers blocks, and
// traceback.

#include <benchmark/benchmark.h>

#include <string>

#include "genasmx/bitvector/bitvector.hpp"
#include "genasmx/common/sequence.hpp"
#include "genasmx/core/genasm_improved.hpp"
#include "genasmx/core/windowed.hpp"
#include "genasmx/genasm/genasm_baseline.hpp"
#include "genasmx/myers/myers.hpp"
#include "genasmx/util/prng.hpp"

namespace {

using namespace gx;

template <int NW>
void BM_BitvecShl1(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  bitvector::BitVec<NW> v;
  for (auto& w : v.w) w = rng();
  for (auto _ : state) {
    v = v.shl1(false);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_BitvecShl1<1>);
BENCHMARK(BM_BitvecShl1<2>);
BENCHMARK(BM_BitvecShl1<4>);

void BM_PatternMasks(benchmark::State& state) {
  util::Xoshiro256 rng(2);
  const auto pattern =
      common::randomSequence(rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    bitvector::PatternMasks<1> masks(pattern);
    benchmark::DoNotOptimize(masks);
  }
}
BENCHMARK(BM_PatternMasks)->Arg(32)->Arg(64);

void BM_WindowSolveBaseline(benchmark::State& state) {
  util::Xoshiro256 rng(3);
  const auto text = common::randomSequence(rng, 96);
  const auto pattern = common::mutateSequence(rng, text.substr(0, 64), 6);
  const auto t_rev = common::reversed(text);
  const auto q_rev = common::reversed(pattern);
  genasm::BaselineWindowSolver<1> solver;
  genasm::WindowSpec spec;
  spec.anchor = genasm::Anchor::StartOnly;
  spec.tb_op_limit = 40;
  for (auto _ : state) {
    auto wr = solver.solve(t_rev, q_rev, spec);
    benchmark::DoNotOptimize(wr);
  }
}
BENCHMARK(BM_WindowSolveBaseline);

void BM_WindowSolveImproved(benchmark::State& state) {
  util::Xoshiro256 rng(3);
  const auto text = common::randomSequence(rng, 96);
  const auto pattern = common::mutateSequence(rng, text.substr(0, 64), 6);
  const auto t_rev = common::reversed(text);
  const auto q_rev = common::reversed(pattern);
  core::ImprovedWindowSolver<1> solver;
  genasm::WindowSpec spec;
  spec.anchor = genasm::Anchor::StartOnly;
  spec.tb_op_limit = 40;
  for (auto _ : state) {
    auto wr = solver.solve(t_rev, q_rev, spec);
    benchmark::DoNotOptimize(wr);
  }
}
BENCHMARK(BM_WindowSolveImproved);

void BM_WindowedLongRead(benchmark::State& state) {
  util::Xoshiro256 rng(4);
  const auto len = static_cast<std::size_t>(state.range(0));
  const auto t = common::randomSequence(rng, len);
  const auto q = common::mutateSequence(rng, t, len / 10);
  for (auto _ : state) {
    auto res = core::alignWindowedImproved(t, q);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_WindowedLongRead)->Arg(1'000)->Arg(10'000);

void BM_MyersDistanceLongRead(benchmark::State& state) {
  util::Xoshiro256 rng(5);
  const auto len = static_cast<std::size_t>(state.range(0));
  const auto t = common::randomSequence(rng, len);
  const auto q = common::mutateSequence(rng, t, len / 10);
  myers::MyersAligner aligner;
  for (auto _ : state) {
    auto d = aligner.distance(t, q);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_MyersDistanceLongRead)->Arg(1'000)->Arg(10'000);

void BM_CigarRoundTrip(benchmark::State& state) {
  common::Cigar c;
  for (int i = 0; i < 200; ++i) {
    c.push(common::EditOp::Match, 13);
    c.push(common::EditOp::Insertion, 1);
  }
  const auto text = c.str();
  for (auto _ : state) {
    auto parsed = common::Cigar::parse(text);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_CigarRoundTrip);

}  // namespace

BENCHMARK_MAIN();
