// E8 — Read-length / error-rate series (supporting experiment).
//
// Paper: the implementations are "capable of aligning both short and
// long reads". This series runs every aligner across read lengths and
// error rates and prints the per-configuration throughput, showing where
// each aligner wins.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "genasmx/core/windowed.hpp"
#include "genasmx/ksw/ksw_affine.hpp"
#include "genasmx/myers/myers.hpp"

int main(int argc, char** argv) {
  using namespace gx;
  auto base_cfg = bench::WorkloadConfig::fromArgs(argc, argv);
  bench::printHeader("E8: read length / error rate series (bench_read_length)",
                     "improved GenASM serves both short and long reads");

  struct Point {
    std::size_t length;
    double error;
  };
  const std::vector<Point> points = {
      {100, 0.01}, {100, 0.05}, {250, 0.01}, {250, 0.05},
      {1'000, 0.05}, {1'000, 0.10}, {5'000, 0.10}, {5'000, 0.15},
  };

  std::printf("%-8s %-6s %8s | %12s %12s %12s %12s   (alignments/s)\n",
              "length", "err", "pairs", "KSW2-class", "Edlib-class",
              "GenASM-base", "GenASM-impr");
  for (const auto& pt : points) {
    bench::WorkloadConfig cfg = base_cfg;
    cfg.read_length = pt.length;
    cfg.error_rate = pt.error;
    cfg.read_count = pt.length >= 1'000 ? 10 : 60;
    cfg.genome_len = std::max<std::size_t>(200'000, pt.length * 40);
    const auto w = bench::buildWorkload(cfg);
    if (w.pairs.empty()) continue;
    const double n = static_cast<double>(w.pairs.size());

    ksw::KswConfig kcfg;
    kcfg.band = pt.length >= 1'000 ? 751 : -1;
    ksw::KswAligner ksw_aligner(kcfg);
    const double ksw_s = bench::timeIt([&] {
      for (const auto& p : w.pairs) (void)ksw_aligner.align(p.target, p.query);
    });
    myers::MyersAligner myers_aligner;
    const double myers_s = bench::timeIt([&] {
      for (const auto& p : w.pairs) (void)myers_aligner.align(p.target, p.query);
    });
    const double base_s = bench::timeIt([&] {
      for (const auto& p : w.pairs) {
        (void)core::alignWindowedBaseline(p.target, p.query);
      }
    });
    const double impr_s = bench::timeIt([&] {
      for (const auto& p : w.pairs) {
        (void)core::alignWindowedImproved(p.target, p.query);
      }
    });
    std::printf("%-8zu %-6.2f %8zu | %12.1f %12.1f %12.1f %12.1f\n",
                pt.length, pt.error, w.pairs.size(), n / ksw_s, n / myers_s,
                n / base_s, n / impr_s);
  }
  std::printf(
      "\nExpected shape: GenASM-improved leads at long lengths; at very "
      "short lengths all aligners are fast and differences compress.\n");
  return 0;
}
